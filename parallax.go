// Package parallax is a Go reproduction of Parallax (Kim et al., EuroSys
// 2019): sparsity-aware data-parallel training of deep neural networks.
//
// Parallax observes that the variables of a model fall into two classes by
// how their gradients are produced — dense variables (every element
// touched each iteration) and sparse variables (only the rows an
// embedding lookup gathers) — and that the efficient synchronization
// mechanism differs per class: ring AllReduce for dense gradients,
// parameter servers for sparse ones. This package exposes the paper's
// programming interface (Fig. 3) in Go idiom:
//
//	g := parallax.NewGraph()
//	tokens := g.Input("tokens", parallax.Int, batch)
//	labels := g.Input("labels", parallax.Int, batch)
//	var emb *parallax.Node
//	g.InPartitioner(func() {                       // partitioner scope
//		emb = g.Variable("embedding", init)
//	})
//	logits := g.MatMul(g.Gather(emb, tokens), w)
//	g.SoftmaxCE(logits, labels)
//
//	sess, err := parallax.Open(ctx, g, resources, opts...)
//	defer sess.Close()
//	for stats, err := range sess.Steps(ctx, dataset) {
//		...                                        // one StepStats per synchronous step
//	}
//
// Open analyzes the graph, classifies every variable by its gradient
// type, builds the hybrid plan (AllReduce for dense variables, partitioned
// parameter servers for sparse ones), optionally searches for the optimal
// number of sparse-variable partitions, and starts the persistent
// runtime that executes synchronous data-parallel steps — in one
// process, or spanning agent processes over TCP (WithDist).
//
// # Sessions
//
// The Session is context-first: cancelling the Steps context ends the
// loop at the next step boundary (cluster-agreed in distributed mode,
// so every agent stops at the same step), and Open's context bounds the
// peer rendezvous. Configuration is functional options (WithArch,
// WithOptimizer, WithAutoPartition, ...; WithConfig installs a legacy
// Config wholesale). Session.Save and OpenFromCheckpoint capture and
// restore the full training state — variable values, optimizer slots,
// step counter, dataset cursor — with bit-identical resume on either
// fabric. Failures carry typed sentinels (ErrClosed,
// ErrTopologyMismatch, ErrCheckpointVersion) matched with errors.Is.
//
// GetRunner, Runner.Run, and Runner.RunLoop/RunLoopFeeds remain as thin
// compatibility wrappers over the same machinery for pre-Session code.
//
// # Persistent runtime
//
// Open starts a persistent runtime: one long-lived worker goroutine
// per GPU and one parameter server per machine, with every variable's
// aggregation slot resolved to preallocated, index-addressed buffers. A
// step dispatches work over channels and pushes dense partitions as
// zero-copy views, so the hot loop allocates no per-step bookkeeping (see
// DESIGN.md §3). Call Close to stop the workers when training is done.
//
// The sparse-variable partition count can be tuned against the live
// runtime: WithAutoPartition runs the §3.2 sampling search on real
// measured steps during the first Steps loop, resharding the running job
// between candidates (Session.Repartition) without a restart — the
// migration is lossless, so the loss trajectory is unchanged. The
// decision and the resulting layout are observable through
// Session.PartitionDecision and Session.ShardMap.
package parallax

import (
	"net"
	"time"

	"parallax/internal/cluster"
	"parallax/internal/core"
	"parallax/internal/data"
	"parallax/internal/graph"
	"parallax/internal/optim"
	"parallax/internal/tensor"
)

// Re-exported graph-construction types: the single-GPU graph the user
// writes is exactly what GetRunner transforms (§4.1 "transparency").
type (
	// Graph is a single-GPU computation graph under construction.
	Graph = graph.Graph
	// Node is a graph vertex.
	Node = graph.Node
	// Feed supplies one step's input values by input name.
	Feed = graph.Feed
	// Dense is a dense float32 tensor.
	Dense = tensor.Dense
	// Sparse is an IndexedSlices-style sparse tensor.
	Sparse = tensor.Sparse
	// RNG is a deterministic random source for initializers and data.
	RNG = tensor.RNG
	// ResourceInfo describes the machines and GPUs to train on.
	ResourceInfo = cluster.ResourceInfo
	// Dataset is an endless batch stream.
	Dataset = data.Dataset
	// Optimizer applies gradients to variables.
	Optimizer = optim.Optimizer
)

// Input dtypes.
const (
	// Float marks a float32 tensor input.
	Float = graph.Float
	// Int marks an integer vector input (token ids, labels).
	Int = graph.Int
)

// NewGraph returns an empty single-GPU computation graph.
func NewGraph() *Graph { return graph.New() }

// NewRNG returns a deterministic random generator.
func NewRNG(seed int64) *RNG { return tensor.NewRNG(seed) }

// NewDense returns a zero-filled tensor.
func NewDense(shape ...int) *Dense { return tensor.NewDense(shape...) }

// NewSGD returns a stateless SGD optimizer with the given learning rate.
func NewSGD(lr float32) Optimizer { return optim.NewSGD(lr) }

// NewMomentum returns a momentum-SGD optimizer.
func NewMomentum(lr, mu float32) Optimizer { return optim.NewMomentum(lr, mu) }

// Uniform returns a cluster of n machines with g GPUs each.
func Uniform(n, g int) ResourceInfo { return cluster.Uniform(n, g) }

// ParseResources reads a "host:gpu,gpu,..." resource file (the paper's
// resource_info_file).
func ParseResources(text string) (ResourceInfo, error) { return cluster.Parse(text) }

// Shard splits a dataset so worker w of n consumes a disjoint subset (the
// paper's parallax.shard, Fig. 3 line 6).
func Shard(d Dataset, w, n int) Dataset { return data.NewShard(d, w, n) }

// AggMethod selects how worker gradients combine.
type AggMethod = optim.AggMethod

// Aggregation methods for Config.
const (
	// AggMean averages gradients over workers (the synchronous-SGD
	// convention and the default).
	AggMean = optim.AggMean
	// AggSum keeps the raw sum.
	AggSum = optim.AggSum
)

// Arch selects the training architecture; the zero value (Hybrid) is
// Parallax's sparsity-aware default. The alternatives exist for baselines
// and experiments.
type Arch int

// Architectures.
const (
	// Hybrid uses AllReduce for dense variables and parameter servers for
	// sparse ones (the paper's contribution).
	Hybrid Arch = iota
	// AllReduceOnly forces collectives for everything (Horovod-style).
	AllReduceOnly
	// PSOnly forces naive parameter servers for everything (TF-PS-style).
	PSOnly
	// OptimizedPS forces Parallax's optimized parameter servers.
	OptimizedPS
)

// coreArch maps the public architecture to the planner's.
func (a Arch) coreArch() core.Arch {
	switch a {
	case AllReduceOnly:
		return core.ArchAR
	case PSOnly:
		return core.ArchNaivePS
	case OptimizedPS:
		return core.ArchOptPS
	default:
		return core.ArchHybrid
	}
}

// Config is the ParallaxConfig of §4.1: optional knobs; the zero value is
// a sensible default (hybrid architecture, local aggregation, mean
// aggregation, automatic partition search).
type Config struct {
	// Arch selects the architecture; default Hybrid.
	Arch Arch
	// NewOptimizer constructs optimizer instances (one per replica, one
	// per server). Default: SGD with learning rate 0.1.
	NewOptimizer func() Optimizer
	// DenseAgg / SparseAgg choose mean or sum aggregation per gradient
	// type (§4.1). Default AggMean for both.
	DenseAgg, SparseAgg AggMethod
	// DisableLocalAggregation turns off intra-machine gradient merging
	// (enabled by default for PS-managed variables, §4.3).
	DisableLocalAggregation bool
	// SparsePartitions fixes the partition count for variables declared
	// inside partitioner scopes. 0 means search automatically: over the
	// simulated cluster by default, or online against real measured
	// steps when AutoPartition is set.
	SparsePartitions int
	// AutoPartition switches the §3.2 partition search from the
	// simulator to the live runtime: the runner starts at one partition
	// per machine and, during the first RunLoop/RunLoopFeeds call,
	// samples real per-step times at candidate counts (doubling/halving
	// from the machine count, at most 5 measurement runs), fits the cost
	// model, and reshards the running job to the optimum — training
	// continues through the whole search (tune-while-training). The
	// resharding is lossless, so the loss trajectory is the same as a
	// run configured with the chosen count from the start (exception:
	// ClipNorm > 0, whose global-norm summation groups by partition).
	// In distributed mode the agents agree on every measurement through
	// the collective layer, so all of them reshard in lockstep. Ignored
	// when SparsePartitions > 0 or no partitioner scope exists.
	AutoPartition bool
	// AlphaHint estimates, per sparse variable, the fraction of rows one
	// worker's batch touches; used only by the automatic partition search
	// and the α-threshold rule. Unset entries default to 0.05. Measure
	// real values with MeasureAlpha.
	AlphaHint map[string]float64
	// AlphaDenseThreshold promotes sparse variables with α at or above
	// the threshold to dense AllReduce treatment (§3.1). 0 disables the
	// rule (the default, matching the paper's deployed configuration).
	AlphaDenseThreshold float64
	// ClipNorm > 0 enables global-norm gradient clipping via the
	// chief-worker aggregated-gradient read-back (§5).
	ClipNorm float64
	// FusionBytes caps one dense-AllReduce fusion bucket (the trainer
	// packs all dense AR variables into contiguous fusion buffers and
	// runs one collective per bucket per step). 0 selects the 4 MiB
	// default; negative disables fusion, running one collective per
	// variable. Results are bit-identical either way; the knob trades
	// per-collective latency against how early the first bucket can
	// overlap the backward pass.
	FusionBytes int64
	// Compression selects the wire-compression policy for gradient
	// traffic (DESIGN.md §11; see WithCompression and the
	// CompressionF16/CompressionBF16/CompressionTopK presets). The zero
	// value keeps every frame exact f32. The policy must match across
	// distributed agents and between a checkpoint and the session
	// restoring it.
	Compression CompressionPolicy
	// Async switches PS variables to asynchronous updates (§2.1 —
	// supported, though the paper's evaluation uses synchronous training).
	Async bool
	// Dist runs this process as one agent of a multi-process cluster over
	// transport.TCP: it hosts one machine's workers and parameter server
	// and exchanges gradients with peer agents over persistent framed
	// connections. nil (the default) runs the whole cluster in-process
	// over the channel fabric. See DistConfig for the contract.
	Dist *DistConfig
	// AutoCheckpoint periodically saves the full training state under a
	// directory tree the session manages, which is what failure recovery
	// restores from (DESIGN.md §12). The zero value disables it.
	AutoCheckpoint AutoCheckpointSpec
	// Recovery lets a distributed session survive a peer agent's failure:
	// on ErrPeerFailed the survivors re-rendezvous at the next fabric
	// epoch, restore the latest complete auto-checkpoint, and continue the
	// Steps iterator bit-identically. Requires AutoCheckpoint. The zero
	// value (disabled) surfaces the failure as a step error instead.
	Recovery RecoveryPolicy
	// Elastic enables elastic cluster membership (DESIGN.md §14): a new
	// agent started with DistConfig.JoinTarget is admitted into the
	// running cluster at a step boundary, and departures — voluntary
	// (Session.Leave) or crash-driven (Recovery.AllowShrink) — reshard
	// the departing machine's parameter-server state onto the survivors
	// without a restart. Requires AutoCheckpoint (transitions hand state
	// between topologies through the checkpoint root); it also relaxes
	// OpenFromCheckpoint's topology check so a checkpoint from one
	// machine count restores onto another via the resharding path.
	Elastic bool
	// ResidentPS hosts this session's parameter-server variables on a
	// long-lived shared fleet under PSNamespace instead of private
	// per-session servers — the multi-tenant service mode (see NewPSFleet
	// and WithResidentPS). Requires single-process mode (no Dist) and a
	// non-empty namespace; the fleet must span at least as many machines
	// as the session's resources.
	ResidentPS *PSFleet
	// PSNamespace is the tenant namespace (e.g. "tenant/jobID") this
	// session's variables are served under on the resident fleet.
	PSNamespace string
}

// AutoCheckpointSpec configures periodic automatic checkpoints: every
// EveryN completed steps the session saves a full checkpoint under
// Dir/step-<n>/ (see Session.Save for what is captured), keeps the most
// recent few, and records the fabric epoch in Dir/EPOCH. In distributed
// mode every agent must see the same Dir (shared or replicated
// filesystem) — each writes its own machine's shard, and a step's
// checkpoint counts as complete only once every shard is present.
type AutoCheckpointSpec struct {
	// Dir is the auto-checkpoint root. Empty disables auto-checkpointing.
	Dir string
	// EveryN saves after every EveryN completed steps; <= 0 defaults
	// to 10.
	EveryN int
	// Keep is how many complete step checkpoints to retain; <= 0
	// defaults to 3.
	Keep int
}

// RecoveryPolicy configures automatic failure recovery for distributed
// sessions (DESIGN.md §12). When a peer agent dies mid-run, every
// survivor's step driver observes ErrPeerFailed, tears down the dead
// fabric, bumps the epoch in the auto-checkpoint root, re-dials its
// peers at the new epoch, restores the latest complete auto-checkpoint,
// verifies cluster agreement on the restore step, and resumes — the
// Steps iterator continues as if the failure never happened (each step
// is yielded exactly once; replayed steps after the restore point are
// suppressed). The failed agent rejoins the same way: its supervisor
// restarts it with the same flags, it reads the epoch from the
// auto-checkpoint root, and the rendezvous completes.
type RecoveryPolicy struct {
	// Enabled turns recovery on; requires AutoCheckpoint and Dist.
	Enabled bool
	// MaxRecoveries bounds how many failures one session survives before
	// giving up and surfacing the error; <= 0 defaults to 3.
	MaxRecoveries int
	// RedialTimeout bounds the re-rendezvous after a failure — it must
	// outlast the failed agent's restart. <= 0 defaults to 2 minutes.
	RedialTimeout time.Duration
	// AllowShrink, with Config.Elastic, changes what happens when a peer
	// fails and does not come back: instead of re-dialing the same
	// topology and waiting for a restart, the survivors agree on a
	// membership without the dead machine, reshard its parameter-server
	// partitions onto themselves, and continue at the reduced world size
	// (DESIGN.md §14). The excluded agent, if it was merely partitioned
	// rather than dead, fails fast instead of recovering in place. The
	// post-shrink loss trajectory necessarily diverges from the
	// uninterrupted run (a machine's workers vanished), but every step is
	// still yielded exactly once.
	AllowShrink bool
}

// DistConfig places one agent process inside a multi-machine cluster.
// Every agent must be built from the identical graph, resources, and
// Config (deterministic initializers, same seeds): the plan is
// recomputed per agent and must agree. AR-managed variables are
// broadcast from worker 0 at startup, so replicas begin bit-identical;
// each agent's RunLoop must also draw from identically seeded datasets,
// which keeps shard alignment without any data traffic.
type DistConfig struct {
	// Machine is the index of the cluster machine this process hosts
	// (its GPUs' workers and its parameter server).
	Machine int
	// Addrs[i] is machine i's agent address ("host:port"); must list one
	// address per machine of the ResourceInfo.
	Addrs []string
	// DialTimeout bounds the whole peer rendezvous (agents may start in
	// any order and retry dials until then). Default 10s. The context
	// passed to Open tightens this further: its deadline caps the
	// rendezvous and cancelling it aborts the rendezvous immediately.
	DialTimeout time.Duration
	// Listener optionally supplies a pre-bound listener for
	// Addrs[Machine] (tests bind ":0" and hand the resolved address to
	// peers). The session takes ownership. A recovery re-rendezvous
	// always rebinds from Addrs, so tests that exercise recovery must
	// list real addresses even when they hand over a listener.
	Listener net.Listener
	// JoinTarget, when non-empty, starts this agent as a JOINER instead
	// of a founding member: rather than rendezvousing from Addrs, Open
	// sends a join request to the given running agent's address
	// ("host:port"), waits to be admitted at a step boundary, pulls its
	// shard of the training state from the cluster's auto-checkpoint
	// root, and enters the collective at the agreed step. Requires
	// Config.Elastic, JoinAddr, and AutoCheckpoint on the shared root.
	// Machine and Addrs are ignored (the admission offer assigns them).
	JoinTarget string
	// JoinAddr is the address this joining agent will serve on — the
	// address the survivors will dial at the post-admission rendezvous.
	// Only used with JoinTarget.
	JoinAddr string
	// Chaos arms the deterministic fault-injection harness on this
	// agent's fabric (internal/chaos): a comma-separated fault spec such
	// as "kill@17" or "delay@5:50ms". Testing/CI knob — not for
	// production use; see the chaos package for the grammar.
	Chaos string
	// ChaosSeed seeds the jitter source of randomized chaos faults
	// (slow-peer throttling). Step-indexed faults ignore it.
	ChaosSeed int64
}

// MeasureAlpha estimates the α a dataset induces on a vocabulary of the
// given size (§2.2): the mean fraction of rows touched per batch.
func MeasureAlpha(d Dataset, vocab, iters int) float64 {
	return data.MeasureAlpha(d, vocab, iters)
}
