package parallax

import "parallax/internal/psrt"

// PSFleet is a resident parameter-server fleet: one long-lived server
// per machine, shared by many concurrent Sessions opened with
// WithResidentPS. It is the serving-side half of the multi-tenant
// training service (internal/serve, DESIGN.md §13) — the fleet is
// created once for the daemon's cluster and each admitted job joins it
// under its own namespace, so the paper's one-server-per-machine layout
// (§4.2) becomes a persistent substrate instead of per-job scaffolding.
//
// A PSFleet carries no goroutines and needs no explicit shutdown;
// sessions unregister their namespaces when they close, and the fleet
// is garbage once the last reference drops.
type PSFleet struct {
	f *psrt.Fleet
}

// NewPSFleet creates a resident fleet spanning the given machine count.
// Sessions opened against the fleet may use at most that many machines.
func NewPSFleet(machines int) (*PSFleet, error) {
	f, err := psrt.NewFleet(machines)
	if err != nil {
		return nil, err
	}
	return &PSFleet{f: f}, nil
}

// Machines returns the fleet's machine count.
func (p *PSFleet) Machines() int { return p.f.Machines() }

// Namespaces returns the tenant namespaces currently registered on
// machine m's server — the daemon's observability hook.
func (p *PSFleet) Namespaces(m int) []string { return p.f.Server(m).Namespaces() }

// fleet unwraps to the internal fleet; nil-safe so open() can pass it
// through unconditionally.
func (p *PSFleet) fleet() *psrt.Fleet {
	if p == nil {
		return nil
	}
	return p.f
}
