package parallax

// Functional options for Open / OpenFromCheckpoint. Each option sets
// one facet of the job configuration; the zero configuration (no
// options) is the paper's sensible default — hybrid architecture, SGD
// with learning rate 0.1, mean aggregation, local aggregation on, and
// the automatic partition search over the simulated cluster.
//
// The options compose left to right, so later options win; WithConfig
// replaces the whole configuration at once, which is the migration path
// for code that already builds a Config literal for GetRunner.

// Option configures a Session being opened.
type Option func(*Config)

// WithConfig replaces the entire configuration with c — the bridge from
// the legacy Config-literal style: Open(ctx, g, res, WithConfig(cfg))
// behaves exactly like GetRunner(g, res, cfg). Options after it refine
// c further.
func WithConfig(c Config) Option { return func(dst *Config) { *dst = c } }

// WithArch selects the training architecture (default Hybrid).
func WithArch(a Arch) Option { return func(c *Config) { c.Arch = a } }

// WithOptimizer sets the optimizer constructor (one instance per
// replica and one per server; default SGD with learning rate 0.1).
func WithOptimizer(newOptimizer func() Optimizer) Option {
	return func(c *Config) { c.NewOptimizer = newOptimizer }
}

// WithAggregation chooses mean or sum aggregation per gradient type
// (§4.1; default mean for both).
func WithAggregation(dense, sparse AggMethod) Option {
	return func(c *Config) { c.DenseAgg, c.SparseAgg = dense, sparse }
}

// WithoutLocalAggregation disables intra-machine gradient merging for
// PS-managed variables (enabled by default, §4.3).
func WithoutLocalAggregation() Option {
	return func(c *Config) { c.DisableLocalAggregation = true }
}

// WithSparsePartitions fixes the sparse-variable partition count,
// disabling the automatic search.
func WithSparsePartitions(p int) Option {
	return func(c *Config) { c.SparsePartitions = p }
}

// WithAutoPartition switches the §3.2 partition search to the live
// runtime: the first Steps iteration samples real step times and
// reshards the running job to the optimum (tune-while-training).
func WithAutoPartition() Option { return func(c *Config) { c.AutoPartition = true } }

// WithAlphaHints supplies per-variable sparsity estimates for the
// partition search and the α-threshold rule (see MeasureAlpha).
func WithAlphaHints(hints map[string]float64) Option {
	return func(c *Config) { c.AlphaHint = hints }
}

// WithAlphaDenseThreshold promotes sparse variables with α at or above
// the threshold to dense AllReduce treatment (§3.1; 0 disables).
func WithAlphaDenseThreshold(threshold float64) Option {
	return func(c *Config) { c.AlphaDenseThreshold = threshold }
}

// WithClipNorm enables global-norm gradient clipping via the
// chief-worker aggregated-gradient read-back (§5).
func WithClipNorm(norm float64) Option { return func(c *Config) { c.ClipNorm = norm } }

// WithFusionBytes caps one dense-AllReduce fusion bucket (0 selects the
// 4 MiB default, negative disables fusion; results are bit-identical
// either way).
func WithFusionBytes(n int64) Option { return func(c *Config) { c.FusionBytes = n } }

// WithCompression selects the wire-compression policy for the job's
// gradient traffic (DESIGN.md §11): CompressionF16/CompressionBF16 for
// half-precision payloads, CompressionTopK for sparsified dense buckets
// with error feedback, or a hand-built CompressionPolicy. The default
// (CompressionNone) keeps every frame exact f32. The policy is part of
// the job's identity: in distributed mode every agent must configure
// the same policy (the TCP rendezvous verifies this), and a checkpoint
// can only be restored under the policy that wrote it.
func WithCompression(p CompressionPolicy) Option {
	return func(c *Config) { c.Compression = p }
}

// WithAsync switches PS variables to asynchronous updates (§2.1).
func WithAsync() Option { return func(c *Config) { c.Async = true } }

// WithDist places this process as machine `machine` of a multi-process
// cluster: addrs lists one agent address per machine. The rendezvous
// deadline comes from Open's context (tightened by DistConfig's
// DialTimeout, default 10s); use WithDistConfig for the full contract.
func WithDist(machine int, addrs ...string) Option {
	return func(c *Config) { c.Dist = &DistConfig{Machine: machine, Addrs: addrs} }
}

// WithDistConfig places this process in a multi-process cluster with
// full control over the rendezvous (pre-bound listener, dial timeout).
func WithDistConfig(dc DistConfig) Option {
	return func(c *Config) { c.Dist = &dc }
}

// WithAutoCheckpoint saves the full training state under dir every
// everyN completed steps (everyN <= 0 selects the default of 10). The
// periodic checkpoints are what failure recovery restores from
// (WithRecovery); they also make the session resumable after a crash —
// Open with the same AutoCheckpoint directory restores the latest
// complete one automatically. In distributed mode every agent must use
// the same directory on a shared or replicated filesystem.
func WithAutoCheckpoint(dir string, everyN int) Option {
	return func(c *Config) { c.AutoCheckpoint = AutoCheckpointSpec{Dir: dir, EveryN: everyN} }
}

// WithResidentPS hosts the session's parameter-server variables on a
// shared long-lived fleet (NewPSFleet) under the given tenant namespace
// (e.g. "tenant/jobID") instead of launching private per-session
// servers — the multi-tenant service mode (DESIGN.md §13). Variables are
// registered namespace-qualified, so concurrent sessions may use
// identical variable names without collision, and the namespace is
// released when the session closes. The namespace must be unique among
// the sessions currently open on the fleet. Resident mode is
// single-process only: it cannot be combined with WithDist.
func WithResidentPS(fleet *PSFleet, namespace string) Option {
	return func(c *Config) { c.ResidentPS, c.PSNamespace = fleet, namespace }
}

// WithElastic enables elastic cluster membership (DESIGN.md §14): new
// agents join the running cluster with DistConfig.JoinTarget, members
// depart voluntarily with Session.Leave, and — with
// RecoveryPolicy.AllowShrink — the cluster sheds a dead machine instead
// of waiting for its restart. Transitions happen at step boundaries and
// move state through the auto-checkpoint root, so WithAutoCheckpoint is
// required. WithElastic also unlocks cross-topology restores: a
// checkpoint written at one machine count opens at another through the
// resharding path (without it, OpenFromCheckpoint hard-rejects the
// mismatch with ErrTopologyMismatch).
func WithElastic() Option { return func(c *Config) { c.Elastic = true } }

// WithRecovery installs the failure-recovery policy (DESIGN.md §12):
// with policy.Enabled, a distributed session survives a peer agent's
// death by re-rendezvousing at the next fabric epoch and restoring the
// latest complete auto-checkpoint — the Steps iterator continues
// bit-identically instead of yielding ErrPeerFailed. Requires
// WithAutoCheckpoint. WithRecovery(RecoveryPolicy{Enabled: true})
// selects the defaults (3 recoveries, 2-minute redial window).
func WithRecovery(policy RecoveryPolicy) Option {
	return func(c *Config) { c.Recovery = policy }
}
