module parallax

go 1.24
