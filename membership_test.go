package parallax

// Property tests for the membership state machine (DESIGN.md §14): the
// proposal encoding round-trips, the scalar fold is order-independent,
// and simulated agents driven through seeded random admission/departure
// orderings converge on the same epoch, world size, and member list —
// no split-brain under any observation order.

import (
	"fmt"
	"math/rand"
	"testing"

	"parallax/internal/checkpoint"
	"parallax/internal/transport"
)

func TestProposalCodeRoundTrip(t *testing.T) {
	for machine := 0; machine < 64; machine++ {
		for _, kind := range []int{proposeJoin, proposeLeave} {
			code := proposalCode(machine, kind)
			if code <= 0 {
				t.Fatalf("code(%d,%d) = %v, want positive", machine, kind, code)
			}
			m, k, err := decodeProposal(code)
			if err != nil || m != machine || k != kind {
				t.Fatalf("decode(code(%d,%d)) = (%d,%d,%v)", machine, kind, m, k, err)
			}
		}
	}
	for _, bad := range []float64{-1, 0, 1, 4, 4.5, 7, 8, 12, proposalCode(3, proposeJoin) + 0.25} {
		if _, _, err := decodeProposal(bad); err == nil {
			t.Fatalf("decodeProposal(%v) accepted", bad)
		}
	}
}

// TestProposalPrecedence pins the two ordering rules the fold relies
// on: higher machines beat lower ones, and a machine's leave beats its
// own join.
func TestProposalPrecedence(t *testing.T) {
	if proposalCode(1, proposeJoin) <= proposalCode(0, proposeLeave) {
		t.Fatal("machine 1's join must outrank machine 0's leave")
	}
	if proposalCode(2, proposeLeave) <= proposalCode(2, proposeJoin) {
		t.Fatal("a machine's leave must outrank its own join")
	}
}

// memberState is one simulated agent's view of the cluster.
type memberState struct {
	epoch   int
	members []transport.Member
}

func (st *memberState) topoFP() string {
	m := &transport.Membership{Epoch: st.epoch, Parts: 1, Joiner: -1, Members: st.members}
	return checkpoint.TopoFingerprint(resourceFromMembers(m))
}

// applyWinner advances one agent's state by the elected proposal,
// exactly as transition does: read the winner's proposed list, adopt
// it, bump the epoch.
func (st *memberState) applyWinner(winner, kind int, t *testing.T) {
	t.Helper()
	if winner < 0 || winner >= len(st.members) {
		t.Fatalf("winner %d outside %d members", winner, len(st.members))
	}
	switch kind {
	case proposeJoin:
		st.members = admitMember(st.members, transport.Member{
			Addr: fmt.Sprintf("joiner-e%d:%d", st.epoch+1, winner), GPUs: 2,
		})
	case proposeLeave:
		st.members = removeMember(st.members, winner)
	default:
		t.Fatalf("bad kind %d", kind)
	}
	st.epoch++
}

// TestMembershipConvergesUnderRandomOrderings drives N simulated agents
// through R rounds of randomized concurrent proposals. Each agent
// observes the round's proposal codes in its own seeded shuffle; the
// fold must elect the same winner regardless, and after applying it
// every agent must hold the identical epoch, world size, member list,
// and topology fingerprint.
func TestMembershipConvergesUnderRandomOrderings(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1234} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			start := []transport.Member{
				{Addr: "a0:1", GPUs: 2}, {Addr: "a1:1", GPUs: 2}, {Addr: "a2:1", GPUs: 2},
			}
			agents := make([]*memberState, 3)
			for i := range agents {
				agents[i] = &memberState{members: append([]transport.Member(nil), start...)}
			}
			for round := 0; round < 40; round++ {
				n := len(agents[0].members)
				// Random subset of machines proposes this round; leaves are
				// only legal while a second member remains.
				var codes []float64
				for m := 0; m < n; m++ {
					switch rng.Intn(4) {
					case 0:
						codes = append(codes, proposalCode(m, proposeJoin))
					case 1:
						if n > 1 {
							codes = append(codes, proposalCode(m, proposeLeave))
						}
					}
				}
				for len(codes) < n {
					codes = append(codes, 0) // silent agents contribute 0
				}
				// Every agent folds its own shuffle of the same multiset.
				winners := make([]float64, len(agents))
				for i := range agents {
					shuffled := append([]float64(nil), codes...)
					rng.Shuffle(len(shuffled), func(a, b int) {
						shuffled[a], shuffled[b] = shuffled[b], shuffled[a]
					})
					winners[i] = foldProposals(shuffled)
				}
				for i := 1; i < len(winners); i++ {
					if winners[i] != winners[0] {
						t.Fatalf("round %d: agent %d folded %v, agent 0 folded %v (split-brain)",
							round, i, winners[i], winners[0])
					}
				}
				if winners[0] == 0 {
					continue
				}
				winner, kind, err := decodeProposal(winners[0])
				if err != nil {
					t.Fatalf("round %d: elected code %v does not decode: %v", round, winners[0], err)
				}
				for _, a := range agents {
					a.applyWinner(winner, kind, t)
				}
				// Convergence invariants after every transition.
				ref := agents[0]
				if len(ref.members) < 1 {
					t.Fatalf("round %d: cluster emptied", round)
				}
				seen := map[string]bool{}
				for _, m := range ref.members {
					if seen[m.Addr] {
						t.Fatalf("round %d: duplicate member %q", round, m.Addr)
					}
					seen[m.Addr] = true
				}
				for i, a := range agents[1:] {
					if a.epoch != ref.epoch || len(a.members) != len(ref.members) {
						t.Fatalf("round %d: agent %d at epoch %d/%d members, agent 0 at %d/%d",
							round, i+1, a.epoch, len(a.members), ref.epoch, len(ref.members))
					}
					for j := range a.members {
						if a.members[j] != ref.members[j] {
							t.Fatalf("round %d: agent %d member %d = %+v, agent 0 has %+v",
								round, i+1, j, a.members[j], ref.members[j])
						}
					}
					if a.topoFP() != ref.topoFP() {
						t.Fatalf("round %d: topology fingerprints diverged", round)
					}
				}
			}
		})
	}
}

// TestMembershipLeaveBeatsJoinSameMachine: when one machine both hosts
// a parked joiner and wants to leave, the departure wins — a leaving
// machine must not admit a joiner it won't be around to serve.
func TestMembershipLeaveBeatsJoinSameMachine(t *testing.T) {
	got := foldProposals([]float64{
		proposalCode(1, proposeJoin),
		proposalCode(1, proposeLeave),
		0,
	})
	m, k, err := decodeProposal(got)
	if err != nil || m != 1 || k != proposeLeave {
		t.Fatalf("fold elected (%d,%d,%v), want machine 1 leave", m, k, err)
	}
}
