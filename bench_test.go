package parallax

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§6). Each iteration regenerates the experiment on
// the simulated cluster; key measured values are attached as custom
// benchmark metrics so `go test -bench` output doubles as the
// paper-vs-measured record (EXPERIMENTS.md is generated from the same
// code paths via cmd/parallax-bench).

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"parallax/internal/core"
	"parallax/internal/data"
	"parallax/internal/engine"
	"parallax/internal/experiments"
	"parallax/internal/models"
)

func BenchmarkTable1_ArchitectureThroughput(b *testing.B) {
	b.ReportAllocs()
	env := experiments.DefaultEnv()
	var res experiments.Table1Result
	for i := 0; i < b.N; i++ {
		res = experiments.Table1(env)
	}
	for _, row := range res.Rows {
		b.ReportMetric(row.PS, row.Model+"_PS_units/s")
		b.ReportMetric(row.AR, row.Model+"_AR_units/s")
	}
}

func BenchmarkTable2_PartitionSweep(b *testing.B) {
	b.ReportAllocs()
	env := experiments.DefaultEnv()
	var res experiments.Table2Result
	for i := 0; i < b.N; i++ {
		res = experiments.Table2(env)
	}
	lm := res.Throughput["LM"]
	b.ReportMetric(lm[0], "LM_P8_words/s")
	b.ReportMetric(lm[4], "LM_P128_words/s")
	b.ReportMetric(lm[5], "LM_P256_words/s")
}

func BenchmarkTable3_NetworkTransfer(b *testing.B) {
	b.ReportAllocs()
	env := experiments.DefaultEnv()
	var res experiments.Table3Result
	for i := 0; i < b.N; i++ {
		res = experiments.Table3(env)
	}
	for _, row := range res.Rows {
		b.ReportMetric(row.Measured/row.Formula, row.Case+"_measured/formula")
	}
}

func BenchmarkTable4_HybridAblation(b *testing.B) {
	b.ReportAllocs()
	env := experiments.DefaultEnv()
	var res experiments.Table4Result
	for i := 0; i < b.N; i++ {
		res = experiments.Table4(env)
	}
	for _, m := range res.Models {
		b.ReportMetric(res.Tp[m]["HYB"]/res.Tp[m]["AR"], m+"_HYB/AR")
		b.ReportMetric(res.Tp[m]["HYB"]/res.Tp[m]["NaivePS"], m+"_HYB/NaivePS")
	}
}

func BenchmarkTable5_PartitioningMethods(b *testing.B) {
	b.ReportAllocs()
	env := experiments.DefaultEnv()
	var res experiments.Table5Result
	for i := 0; i < b.N; i++ {
		res = experiments.Table5(env)
	}
	for _, row := range res.Rows {
		b.ReportMetric(row.Parallax/row.Min, row.Model+"_Parallax/Min")
		b.ReportMetric(float64(row.ParallaxRuns), row.Model+"_search_runs")
		b.ReportMetric(float64(row.BruteRuns), row.Model+"_brute_runs")
	}
}

func BenchmarkTable6_SparsityDegree(b *testing.B) {
	b.ReportAllocs()
	env := experiments.DefaultEnv()
	var res experiments.Table6Result
	for i := 0; i < b.N; i++ {
		res = experiments.Table6(env)
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	b.ReportMetric(first.Speedup, "speedup_alpha1.0")
	b.ReportMetric(last.Speedup, "speedup_alpha0.04")
}

func BenchmarkFigure7_Convergence(b *testing.B) {
	b.ReportAllocs()
	env := experiments.DefaultEnv()
	var res experiments.Figure7Result
	for i := 0; i < b.N; i++ {
		res = experiments.Figure7(env)
	}
	for _, row := range res.Rows {
		name := strings.NewReplacer(" ", "", "(", "", ")", "").Replace(row.Model)
		b.ReportMetric(row.SpeedupVsTFPS(), name+"_vsTFPS")
		b.ReportMetric(row.SpeedupVsHorovod(), name+"_vsHorovod")
	}
}

func BenchmarkFigure8_Scaling(b *testing.B) {
	b.ReportAllocs()
	env := experiments.DefaultEnv()
	var res experiments.Figure8Result
	for i := 0; i < b.N; i++ {
		res = experiments.Figure8(env)
	}
	for _, m := range []string{"ResNet-50", "LM"} {
		s := res.Tp[m]["Parallax"]
		b.ReportMetric(s[3]/s[0], m+"_8m/1m")
	}
}

func BenchmarkFigure9_NormalizedThroughput(b *testing.B) {
	b.ReportAllocs()
	env := experiments.DefaultEnv()
	var res experiments.Figure9Result
	for i := 0; i < b.N; i++ {
		res = experiments.Figure9(env)
	}
	for _, m := range []string{"ResNet-50", "Inception-v3", "LM", "NMT"} {
		s := res.Normalized[m]
		b.ReportMetric(s[len(s)-1], m+"_norm48")
	}
}

func BenchmarkAblation_AlphaThreshold(b *testing.B) {
	b.ReportAllocs()
	env := experiments.DefaultEnv()
	var rows []experiments.AblationAlphaRow
	for i := 0; i < b.N; i++ {
		rows = experiments.AblationAlphaThreshold(env)
	}
	b.ReportMetric(rows[0].AsPS/rows[0].AsDense, "lowAlpha_PS/dense")
	last := rows[len(rows)-1]
	b.ReportMetric(last.AsDense/last.AsPS, "highAlpha_dense/PS")
}

func BenchmarkAblation_LocalAggregation(b *testing.B) {
	b.ReportAllocs()
	env := experiments.DefaultEnv()
	var rows []experiments.AblationLocalAggRow
	for i := 0; i < b.N; i++ {
		rows = experiments.AblationLocalAggregation(env)
	}
	for _, r := range rows {
		b.ReportMetric(r.WithLocal/r.Without, r.Model+"_gain")
	}
}

// Micro-benchmarks of the substrate hot paths.

func BenchmarkEngineStep_LMHybrid(b *testing.B) {
	b.ReportAllocs()
	hw := experiments.DefaultEnv().HW
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.RunArch(models.LM(), core.ArchHybrid, 8, 6, 128, hw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRealTrainingStep(b *testing.B) {
	b.ReportAllocs()
	g := buildAPIModel(16, 500)
	runner, err := GetRunner(g, Uniform(2, 2), Config{SparsePartitions: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer runner.Close()
	ds := data.NewZipfText(500, 16, 1, 1.0, 3)
	feeds := make([]Feed, runner.Workers())
	for w := range feeds {
		batch := ds.Next()
		feeds[w] = Feed{Ints: map[string][]int{"tokens": batch.Tokens, "labels": batch.Labels}}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.Run(feeds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainerStep measures one synchronous step of the functional
// data plane on a hybrid LM-style workload: a partitioned sparse embedding
// synchronized through parameter servers with local aggregation, plus
// dense hidden/softmax layers synchronized through fused ring AllReduce,
// on a 2-machine × 2-GPU cluster. ns/op and allocs/op here are the
// persistent-runtime regression guard (see CHANGES.md for the
// before/after record); BenchmarkTrainerStepUnfused is the same workload
// with per-variable collectives.
func BenchmarkTrainerStep(b *testing.B) {
	benchTrainerSteps(b, buildLMBenchGraph(1000, 32, 32),
		Config{SparsePartitions: 8}, 1000, 32)
}

// buildLMBenchGraph is the hybrid LM-style workload of
// BenchmarkTrainerStep: a partitioned sparse embedding (PS route) plus
// dense hidden/softmax layers (fused AllReduce routes).
func buildLMBenchGraph(vocab, batch, dim int) *Graph {
	rng := NewRNG(11)
	g := NewGraph()
	tokens := g.Input("tokens", Int, batch)
	labels := g.Input("labels", Int, batch)
	var emb *Node
	g.InPartitioner(func() {
		emb = g.Variable("embedding", rng.RandN(0.1, vocab, dim))
	})
	w1 := g.Variable("hidden/kernel", rng.RandN(0.1, dim, 64))
	b1 := g.Variable("hidden/bias", NewDense(64))
	w2 := g.Variable("softmax/kernel", rng.RandN(0.1, 64, vocab))
	h := g.Tanh(g.AddBias(g.MatMul(g.Gather(emb, tokens), w1), b1))
	g.SoftmaxCE(g.MatMul(h, w2), labels)
	return g
}

func benchTrainerSteps(b *testing.B, g *Graph, cfg Config, vocab, batch int) {
	b.Helper()
	b.ReportAllocs()
	runner, err := GetRunner(g, Uniform(2, 2), cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer runner.Close()
	ds := data.NewZipfText(vocab, batch, 1, 1.0, 13)
	feeds := make([]Feed, runner.Workers())
	for w := range feeds {
		bt := ds.Next()
		feeds[w] = Feed{Ints: map[string][]int{"tokens": bt.Tokens, "labels": bt.Labels}}
	}
	var comm, wait time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.Run(feeds); err != nil {
			b.Fatal(err)
		}
		ph := runner.PhaseStatsLastStep()
		comm += ph.Comm
		wait += ph.SyncWait
	}
	b.StopTimer()
	// comm_ns/op is the synchronization busy time per step — the
	// "collective invocations' worth of latency" fusion removes;
	// syncwait_ns/op is the part of it not hidden under backward compute.
	b.ReportMetric(float64(comm.Nanoseconds())/float64(b.N), "comm_ns/op")
	b.ReportMetric(float64(wait.Nanoseconds())/float64(b.N), "syncwait_ns/op")
}

// BenchmarkTrainerStepUnfused is BenchmarkTrainerStep with fusion
// disabled (one collective per dense variable): the before/after pair for
// the fused synchronization schedule on the LM hybrid workload.
func BenchmarkTrainerStepUnfused(b *testing.B) {
	benchTrainerSteps(b, buildLMBenchGraph(1000, 32, 32),
		Config{SparsePartitions: 8, FusionBytes: -1}, 1000, 32)
}

// BenchmarkTrainerStepFusedManySmallDense measures the schedule where
// fusion matters most: a deep MLP with dozens of small dense variables,
// where the per-variable schedule pays one full collective latency per
// tensor and the fused schedule runs a single bucket. The "unfused"
// sub-benchmark is the per-variable baseline.
func BenchmarkTrainerStepFusedManySmallDense(b *testing.B) {
	const (
		vocab  = 32
		batch  = 4
		dim    = 8
		layers = 64
	)
	build := func() *Graph {
		rng := NewRNG(7)
		g := NewGraph()
		tokens := g.Input("tokens", Int, batch)
		labels := g.Input("labels", Int, batch)
		emb := g.Variable("embedding", rng.RandN(0.1, vocab, dim))
		h := g.Gather(emb, tokens)
		for l := 0; l < layers; l++ {
			w := g.Variable(fmt.Sprintf("layer%02d/kernel", l), rng.RandN(0.1, dim, dim))
			bias := g.Variable(fmt.Sprintf("layer%02d/bias", l), NewDense(dim))
			h = g.Tanh(g.AddBias(g.MatMul(h, w), bias))
		}
		out := g.Variable("softmax/kernel", rng.RandN(0.1, dim, vocab))
		g.SoftmaxCE(g.MatMul(h, out), labels)
		return g
	}
	b.Run("fused", func(b *testing.B) {
		benchTrainerSteps(b, build(), Config{Arch: AllReduceOnly}, vocab, batch)
	})
	b.Run("unfused", func(b *testing.B) {
		benchTrainerSteps(b, build(), Config{Arch: AllReduceOnly, FusionBytes: -1}, vocab, batch)
	})
}

func BenchmarkExtension_PrunedDenseModel(b *testing.B) {
	b.ReportAllocs()
	env := experiments.DefaultEnv()
	var rows []experiments.PruningRow
	for i := 0; i < b.N; i++ {
		rows = experiments.ExtensionPruning(env)
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.PureAR/last.PurePS, "pruned99_AR/PS")
}
