package parallax

// Tests for the context-first Session API: the streaming step iterator,
// cluster-synchronized cancellation, and checkpoint/restore with
// bit-identical resume — over the in-process fabric here and over TCP
// in TestSessionTCP*. The Runner compatibility surface is pinned by the
// pre-existing tests in parallax_test.go, which must keep passing
// unmodified.

import (
	"context"
	"errors"
	"math"
	"net"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"parallax/internal/data"
)

// waitSessionGoroutines polls until the goroutine count settles near
// base (the persistent runtime fully unwound).
func waitSessionGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d before", runtime.NumGoroutine(), base)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// momentumOpts is the option set the checkpoint tests train under:
// momentum exercises slot state on both the server (PS embedding) and
// replica (AllReduce projection) paths.
func momentumOpts() []Option {
	return []Option{
		WithSparsePartitions(3),
		WithOptimizer(func() Optimizer { return NewMomentum(0.3, 0.9) }),
	}
}

// runSessionSteps opens a session, drives it to totalSteps completed
// steps, and returns the per-step losses indexed by absolute step.
func runSessionSteps(t *testing.T, totalSteps int, opts ...Option) ([]float64, []float32) {
	t.Helper()
	g := buildAPIModel(8, 150)
	s, err := Open(context.Background(), g, Uniform(2, 2), opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	losses := make([]float64, totalSteps)
	for st, err := range s.Steps(context.Background(), data.NewZipfText(150, 8, 1, 1.0, 5)) {
		if err != nil {
			t.Fatal(err)
		}
		losses[st.Step] = st.Loss
		if st.Step == totalSteps-1 {
			break
		}
	}
	emb, err := s.VarValue("embedding")
	if err != nil {
		t.Fatal(err)
	}
	return losses, emb.Data()
}

// TestSessionStepsMatchesRunLoop: the streaming iterator and the legacy
// RunLoop drive the identical schedule — per-step losses agree bit for
// bit, and the iterator reports absolute step numbers.
func TestSessionStepsMatchesRunLoop(t *testing.T) {
	const steps = 8
	g := buildAPIModel(8, 150)
	runner, err := GetRunner(g, Uniform(2, 2), Config{SparsePartitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer runner.Close()
	var loopLosses []float64
	if _, err := runner.RunLoop(data.NewZipfText(150, 8, 1, 1.0, 5), steps,
		func(st StepStats) { loopLosses = append(loopLosses, st.Loss) }); err != nil {
		t.Fatal(err)
	}

	iterLosses, _ := runSessionSteps(t, steps, WithSparsePartitions(3))
	for i := range loopLosses {
		if math.Float64bits(loopLosses[i]) != math.Float64bits(iterLosses[i]) {
			t.Fatalf("step %d: RunLoop loss %x, Steps loss %x",
				i, math.Float64bits(loopLosses[i]), math.Float64bits(iterLosses[i]))
		}
	}
}

// TestSessionCheckpointResumeBitIdentical is the tentpole acceptance
// check on the in-process fabric: a run saved at step k and restored
// continues with per-step losses (and final variable bits) equal to an
// uninterrupted run's, momentum slot state included.
func TestSessionCheckpointResumeBitIdentical(t *testing.T) {
	const saveAt, total = 4, 10
	refLosses, refEmb := runSessionSteps(t, total, momentumOpts()...)

	dir := t.TempDir()
	g := buildAPIModel(8, 150)
	s, err := Open(context.Background(), g, Uniform(2, 2), momentumOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	for st, err := range s.Steps(context.Background(), data.NewZipfText(150, 8, 1, 1.0, 5)) {
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(st.Loss) != math.Float64bits(refLosses[st.Step]) {
			t.Fatalf("pre-save step %d diverged", st.Step)
		}
		if st.Step == saveAt-1 {
			break
		}
	}
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	s.Close()

	g2 := buildAPIModel(8, 150)
	s2, err := OpenFromCheckpoint(context.Background(), dir, g2, Uniform(2, 2), momentumOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.StepCount() != saveAt {
		t.Fatalf("restored StepCount = %d, want %d", s2.StepCount(), saveAt)
	}
	sawFirst := false
	for st, err := range s2.Steps(context.Background(), data.NewZipfText(150, 8, 1, 1.0, 5)) {
		if err != nil {
			t.Fatal(err)
		}
		if !sawFirst {
			sawFirst = true
			if st.Step != saveAt {
				t.Fatalf("resume started at step %d, want %d", st.Step, saveAt)
			}
		}
		if math.Float64bits(st.Loss) != math.Float64bits(refLosses[st.Step]) {
			t.Fatalf("resumed step %d loss %x, uninterrupted %x",
				st.Step, math.Float64bits(st.Loss), math.Float64bits(refLosses[st.Step]))
		}
		if st.Step == total-1 {
			break
		}
	}
	emb, err := s2.VarValue("embedding")
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range refEmb {
		if math.Float32bits(emb.Data()[i]) != math.Float32bits(v) {
			t.Fatalf("embedding[%d] %x after resume, want %x",
				i, math.Float32bits(emb.Data()[i]), math.Float32bits(v))
		}
	}
}

// TestSessionCheckpointValidation: restores that cannot be correct are
// refused with the typed sentinels — wrong cluster shape, wrong
// architecture (plan fingerprint), wrong optimizer (slot state), and a
// checkpoint from a future format version.
func TestSessionCheckpointValidation(t *testing.T) {
	dir := t.TempDir()
	g := buildAPIModel(8, 150)
	s, err := Open(context.Background(), g, Uniform(2, 2), momentumOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	var n int
	for _, err := range s.Steps(context.Background(), data.NewZipfText(150, 8, 1, 1.0, 5)) {
		if err != nil {
			t.Fatal(err)
		}
		if n++; n == 2 {
			break
		}
	}
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	s.Close()

	open := func(res ResourceInfo, opts ...Option) error {
		_, err := OpenFromCheckpoint(context.Background(), dir, buildAPIModel(8, 150), res, opts...)
		return err
	}
	if err := open(Uniform(2, 3), momentumOpts()...); !errors.Is(err, ErrTopologyMismatch) {
		t.Fatalf("wrong GPU count: err = %v, want ErrTopologyMismatch", err)
	}
	if err := open(Uniform(2, 2), append(momentumOpts(), WithArch(AllReduceOnly))...); !errors.Is(err, ErrTopologyMismatch) {
		t.Fatalf("wrong architecture: err = %v, want ErrTopologyMismatch", err)
	}
	if err := open(Uniform(2, 2), WithSparsePartitions(3)); !errors.Is(err, ErrTopologyMismatch) {
		t.Fatalf("wrong optimizer (no slots): err = %v, want ErrTopologyMismatch", err)
	}
	// Corrupt the format version byte of shard 0.
	path := dir + "/machine-0.ckpt"
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[7] = 99
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := open(Uniform(2, 2), momentumOpts()...); !errors.Is(err, ErrCheckpointVersion) {
		t.Fatalf("future version: err = %v, want ErrCheckpointVersion", err)
	}
}

// TestSessionCancelMidLoop: cancelling the Steps context ends the
// iterator at the next step boundary with the context error, and
// closing the session afterwards leaks no goroutines under -race.
func TestSessionCancelMidLoop(t *testing.T) {
	base := runtime.NumGoroutine()
	g := buildAPIModel(8, 150)
	s, err := Open(context.Background(), g, Uniform(2, 2), WithSparsePartitions(3))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var steps int
	var sawErr error
	for st, err := range s.Steps(ctx, data.NewZipfText(150, 8, 1, 1.0, 5)) {
		if err != nil {
			sawErr = err
			continue // the iterator must stop on its own after an error
		}
		steps++
		if st.Step == 2 {
			cancel()
		}
	}
	if !errors.Is(sawErr, context.Canceled) {
		t.Fatalf("iterator ended with %v, want context.Canceled", sawErr)
	}
	if steps != 3 {
		t.Fatalf("ran %d steps after cancel at step 2, want 3 (cancel returns within one step)", steps)
	}
	s.Close()
	waitSessionGoroutines(t, base)
}

// TestSessionClosedErrors: every post-Close operation fails fast with
// ErrClosed (errors.Is), including a second loop.
func TestSessionClosedErrors(t *testing.T) {
	g := buildAPIModel(8, 150)
	s, err := Open(context.Background(), g, Uniform(2, 2), WithSparsePartitions(3))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent

	for _, err := range s.Steps(context.Background(), data.NewZipfText(150, 8, 1, 1.0, 5)) {
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Steps after Close: err = %v, want ErrClosed", err)
		}
	}
	if err := s.Save(t.TempDir()); !errors.Is(err, ErrClosed) {
		t.Fatalf("Save after Close: err = %v, want ErrClosed", err)
	}
	if _, err := s.RunStep(make([]Feed, s.Workers())); !errors.Is(err, ErrClosed) {
		t.Fatalf("RunStep after Close: err = %v, want ErrClosed", err)
	}
	if err := s.Repartition(2); !errors.Is(err, ErrClosed) {
		t.Fatalf("Repartition after Close: err = %v, want ErrClosed", err)
	}
}

// TestSessionAutoPartitionCheckpoint: a checkpoint taken after the
// online partition search settles records the decision; the restored
// session runs at the tuned P without re-tuning, and — because live
// resharding is lossless — its losses match an uninterrupted
// auto-partitioned run bit for bit even though the two runs' probe
// sequences measured different wall-clock times.
func TestSessionAutoPartitionCheckpoint(t *testing.T) {
	const saveAt, total = 18, 22 // tuning consumes at most 5 probes × 3 steps
	auto := []Option{WithAutoPartition(), WithAlphaHints(map[string]float64{"embedding": 0.05})}
	refLosses, _ := runSessionSteps(t, total, auto...)

	dir := t.TempDir()
	g := buildAPIModel(8, 150)
	s, err := Open(context.Background(), g, Uniform(2, 2), auto...)
	if err != nil {
		t.Fatal(err)
	}
	for st, err := range s.Steps(context.Background(), data.NewZipfText(150, 8, 1, 1.0, 5)) {
		if err != nil {
			t.Fatal(err)
		}
		if st.Step == saveAt-1 {
			break
		}
	}
	d := s.PartitionDecision()
	if d.Pending || d.Source != "online" {
		t.Fatalf("decision before save = %+v, want settled online", d)
	}
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := OpenFromCheckpoint(context.Background(), dir, buildAPIModel(8, 150), Uniform(2, 2), auto...)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	d2 := s2.PartitionDecision()
	if d2.Pending || d2.P != d.P || s2.SparsePartitions() != d.P {
		t.Fatalf("restored decision %+v, saved was %+v", d2, d)
	}
	for st, err := range s2.Steps(context.Background(), data.NewZipfText(150, 8, 1, 1.0, 5)) {
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(st.Loss) != math.Float64bits(refLosses[st.Step]) {
			t.Fatalf("resumed step %d loss %x, uninterrupted %x",
				st.Step, math.Float64bits(st.Loss), math.Float64bits(refLosses[st.Step]))
		}
		if st.Step == total-1 {
			break
		}
	}
}

// sessionTCPPair opens the two agents of a 2-machine × 2-GPU cluster
// over TCP on loopback, each built from an identical graph.
func sessionTCPPair(t *testing.T, opts ...Option) [2]*Session {
	t.Helper()
	ln0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{ln0.Addr().String(), "127.0.0.1:0"}
	var sessions [2]*Session
	errs := [2]error{}
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			dc := DistConfig{Machine: p, Addrs: addrs, DialTimeout: 10 * time.Second}
			if p == 0 {
				dc.Listener = ln0
			}
			sessions[p], errs[p] = Open(context.Background(), buildAPIModel(8, 150), Uniform(2, 2),
				append(append([]Option{}, opts...), WithDistConfig(dc))...)
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("agent %d: %v", p, err)
		}
	}
	return sessions
}

// TestSessionTCPCancelAgreed: with cancellable contexts, one agent's
// cancellation ends BOTH agents' iterators at the same step boundary
// (cluster-agreed stop), both sessions close cleanly, and no goroutines
// leak.
func TestSessionTCPCancelAgreed(t *testing.T) {
	base := runtime.NumGoroutine()
	sessions := sessionTCPPair(t, WithSparsePartitions(3))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	lastStep := [2]int{-1, -1}
	finalErr := [2]error{}
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for st, err := range sessions[p].Steps(ctx, data.NewZipfText(150, 8, 1, 1.0, 5)) {
				if err != nil {
					finalErr[p] = err
					continue
				}
				lastStep[p] = st.Step
				// Only agent 0 cancels; agent 1 must stop via the agreement.
				if p == 0 && st.Step == 2 {
					cancel()
				}
			}
		}(p)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("agreed cancellation did not end both loops")
	}
	for p := 0; p < 2; p++ {
		if !errors.Is(finalErr[p], context.Canceled) {
			t.Fatalf("agent %d ended with %v, want context.Canceled", p, finalErr[p])
		}
	}
	if lastStep[0] != lastStep[1] {
		t.Fatalf("agents stopped at different steps: %d vs %d", lastStep[0], lastStep[1])
	}
	sessions[0].Close()
	sessions[1].Close()
	waitSessionGoroutines(t, base)
}

// TestSessionTCPCheckpointResume is the cross-fabric half of the
// tentpole acceptance: two TCP agents save at step k (each writing its
// machine's shard), fresh agents restore from the same directory, and
// the continued run matches the uninterrupted single-process run bit
// for bit.
func TestSessionTCPCheckpointResume(t *testing.T) {
	const saveAt, total = 4, 8
	refLosses, refEmb := runSessionSteps(t, total, momentumOpts()...)
	dir := t.TempDir()

	phase := func(restore bool, from, to int) {
		var sessions [2]*Session
		if restore {
			ln0, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			addrs := []string{ln0.Addr().String(), "127.0.0.1:0"}
			errs := [2]error{}
			var wg sync.WaitGroup
			for p := 0; p < 2; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					dc := DistConfig{Machine: p, Addrs: addrs, DialTimeout: 10 * time.Second}
					if p == 0 {
						dc.Listener = ln0
					}
					sessions[p], errs[p] = OpenFromCheckpoint(context.Background(), dir,
						buildAPIModel(8, 150), Uniform(2, 2),
						append(momentumOpts(), WithDistConfig(dc))...)
				}(p)
			}
			wg.Wait()
			for p, err := range errs {
				if err != nil {
					t.Fatalf("restore agent %d: %v", p, err)
				}
			}
		} else {
			sessions = sessionTCPPair(t, momentumOpts()...)
		}
		var wg sync.WaitGroup
		agentErr := [2]error{}
		for p := 0; p < 2; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				s := sessions[p]
				defer s.Close()
				first := true
				for st, err := range s.Steps(context.Background(), data.NewZipfText(150, 8, 1, 1.0, 5)) {
					if err != nil {
						agentErr[p] = err
						return
					}
					if first && st.Step != from {
						agentErr[p] = errors.New("wrong resume step")
						return
					}
					first = false
					if math.Float64bits(st.Loss) != math.Float64bits(refLosses[st.Step]) {
						t.Errorf("agent %d step %d loss %x, reference %x",
							p, st.Step, math.Float64bits(st.Loss), math.Float64bits(refLosses[st.Step]))
						return
					}
					if st.Step == to-1 {
						break
					}
				}
				if err := s.Save(dir); err != nil {
					agentErr[p] = err
					return
				}
				if !restore {
					return
				}
				emb, err := s.VarValue("embedding")
				if err != nil {
					agentErr[p] = err
					return
				}
				for i, v := range refEmb {
					if math.Float32bits(emb.Data()[i]) != math.Float32bits(v) {
						t.Errorf("agent %d embedding[%d] diverged after resume", p, i)
						return
					}
				}
			}(p)
		}
		wg.Wait()
		for p, err := range agentErr {
			if err != nil {
				t.Fatalf("agent %d: %v", p, err)
			}
		}
	}
	phase(false, 0, saveAt)    // run to k over TCP, save shards
	phase(true, saveAt, total) // restart both agents from the checkpoint
}
