package parallax

// Chaos-driven elasticity suite (DESIGN.md §14): a TCP cluster grows
// 2→3 mid-run when a joiner knocks, shrinks 3→2 on a voluntary (chaos
// leave fault) departure and on an unrecovered kill with AllowShrink,
// stays bit-identical to the uninterrupted reference across a same-size
// kill+recover with elastic membership enabled, and resizes a
// single-process session in place. Every test counts each step exactly
// once per agent and checks for leaked goroutines.

import (
	"context"
	"errors"
	"math"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"parallax/internal/checkpoint"
	"parallax/internal/data"
)

// elasticTCPCluster opens the n agents of an n×2 TCP cluster with every
// listener pre-bound (an elastic fabric keeps its listener for joiners,
// so every address must be real and re-bindable), returning the
// sessions and the address list.
func elasticTCPCluster(t *testing.T, n int, perProc func(p int, dc *DistConfig) []Option) ([]*Session, []string) {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for p := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[p] = ln
		addrs[p] = ln.Addr().String()
	}
	sessions := make([]*Session, n)
	oerrs := make([]error, n)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			dc := DistConfig{
				Machine: p, Addrs: append([]string(nil), addrs...),
				Listener: lns[p], DialTimeout: 15 * time.Second,
			}
			opts := perProc(p, &dc)
			sessions[p], oerrs[p] = Open(context.Background(), buildAPIModel(8, 150), Uniform(n, 2),
				append(opts, WithDistConfig(dc))...)
		}(p)
	}
	wg.Wait()
	for p, err := range oerrs {
		if err != nil {
			t.Fatalf("agent %d: %v", p, err)
		}
	}
	return sessions, addrs
}

// elasticOpts is the option set every member of an elastic test cluster
// runs under: the shared auto-checkpoint root, recovery, and elastic
// membership.
func elasticOpts(root string) []Option {
	return append(momentumOpts(),
		WithAutoCheckpoint(root, 4),
		WithElastic(),
		WithRecovery(RecoveryPolicy{Enabled: true, RedialTimeout: 30 * time.Second}))
}

type elasticResult struct {
	losses map[int]float64
	err    error
}

// driveElastic consumes a session's Steps up to step total-1, recording
// each step's loss and failing on any step emitted twice. onStep (when
// set) runs inside the loop body — on the driver's goroutine, so it may
// touch session state.
func driveElastic(sess *Session, total int, onStep func(st StepStats)) elasticResult {
	r := elasticResult{losses: map[int]float64{}}
	for st, err := range sess.Steps(context.Background(), data.NewZipfText(150, 8, 1, 1.0, 5)) {
		if err != nil {
			r.err = err
			return r
		}
		if _, dup := r.losses[st.Step]; dup {
			r.err = errDupStep(st.Step)
			return r
		}
		r.losses[st.Step] = st.Loss
		if onStep != nil {
			onStep(st)
		}
		if st.Step == total-1 {
			return r
		}
	}
	return r
}

func waitElastic(t *testing.T, wg *sync.WaitGroup, what string) {
	t.Helper()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatalf("%s did not complete", what)
	}
}

func varBits(t *testing.T, s *Session, name string) []uint32 {
	t.Helper()
	v, err := s.VarValue(name)
	if err != nil {
		t.Fatal(err)
	}
	bits := make([]uint32, len(v.Data()))
	for i, x := range v.Data() {
		bits[i] = math.Float32bits(x)
	}
	return bits
}

// TestSessionElasticGrowTCP is the scale-out tentpole: a 2-agent TCP
// cluster is mid-run when a third agent knocks with DistConfig.
// JoinTarget. The survivors admit it at a step boundary, bump the
// fabric epoch, and re-rendezvous at world size 3; the joiner restores
// its share of the boundary checkpoint and enters the collective. The
// survivors emit every step exactly once, the joiner emits a contiguous
// suffix, and all three agents' losses agree bit for bit on every
// shared step.
func TestSessionElasticGrowTCP(t *testing.T) {
	const total = 16
	base := runtime.NumGoroutine()
	root := t.TempDir()
	sessions, addrs := elasticTCPCluster(t, 2, func(p int, dc *DistConfig) []Option {
		return elasticOpts(root)
	})

	lnJ, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	joinAddr := lnJ.Addr().String()

	var joiner *Session
	res := make([]elasticResult, 3)
	var wg sync.WaitGroup
	var launchOnce sync.Once
	launch := func() {
		launchOnce.Do(func() {
			wg.Add(1)
			go func() {
				defer wg.Done()
				dc := DistConfig{
					JoinTarget: addrs[0], JoinAddr: joinAddr, Addrs: []string{joinAddr},
					Listener: lnJ, DialTimeout: 60 * time.Second,
				}
				js, jerr := Open(context.Background(), buildAPIModel(8, 150), Uniform(1, 2),
					append(elasticOpts(root), WithDistConfig(dc))...)
				if jerr != nil {
					res[2] = elasticResult{err: jerr}
					return
				}
				joiner = js
				res[2] = driveElastic(js, total, nil)
			}()
		})
	}

	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			sess := sessions[p]
			res[p] = driveElastic(sess, total, func(st StepStats) {
				if st.Step < 3 {
					return
				}
				if p == 0 {
					launch()
				}
				// Pace the survivors until the admission lands so the join
				// request cannot miss every remaining boundary; once the
				// cluster is 3-wide the run flies again.
				if len(sess.Members()) < 3 {
					time.Sleep(150 * time.Millisecond)
				}
			})
		}(p)
	}
	waitElastic(t, &wg, "elastic grow")

	for p := 0; p < 2; p++ {
		if res[p].err != nil {
			t.Fatalf("agent %d: %v", p, res[p].err)
		}
		if len(res[p].losses) != total {
			t.Fatalf("agent %d emitted %d steps, want %d (each exactly once)", p, len(res[p].losses), total)
		}
		if n := sessions[p].Recoveries(); n != 0 {
			t.Fatalf("agent %d recoveries = %d, want 0 (a grow is not a recovery)", p, n)
		}
	}
	if res[2].err != nil {
		t.Fatalf("joiner: %v", res[2].err)
	}
	if joiner == nil {
		t.Fatal("joiner session was never opened")
	}
	joinStep := total
	for step := range res[2].losses {
		if step < joinStep {
			joinStep = step
		}
	}
	if joinStep < 4 || joinStep >= total {
		t.Fatalf("joiner's first step %d, want within [4, %d)", joinStep, total)
	}
	if len(res[2].losses) != total-joinStep {
		t.Fatalf("joiner emitted %d steps from step %d, want %d (contiguous suffix)",
			len(res[2].losses), joinStep, total-joinStep)
	}
	for step, loss := range res[1].losses {
		if math.Float64bits(loss) != math.Float64bits(res[0].losses[step]) {
			t.Fatalf("step %d: agent 1 loss %x, agent 0 loss %x",
				step, math.Float64bits(loss), math.Float64bits(res[0].losses[step]))
		}
	}
	for step, loss := range res[2].losses {
		if math.Float64bits(loss) != math.Float64bits(res[0].losses[step]) {
			t.Fatalf("step %d: joiner loss %x, agent 0 loss %x",
				step, math.Float64bits(loss), math.Float64bits(res[0].losses[step]))
		}
	}
	for i, s := range []*Session{sessions[0], sessions[1], joiner} {
		if got := len(s.Members()); got != 3 {
			t.Fatalf("member %d sees %d members, want 3", i, got)
		}
		if e := s.Epoch(); e != 1 {
			t.Fatalf("member %d at epoch %d, want 1", i, e)
		}
	}
	if e, err := checkpoint.ReadEpoch(root); err != nil || e != 1 {
		t.Fatalf("recorded epoch %d (err %v), want 1", e, err)
	}
	m, err := checkpoint.ReadMembers(root)
	if err != nil || m == nil || len(m.Members) != 3 {
		t.Fatalf("MEMBERS record %+v (err %v), want 3 members", m, err)
	}
	if m.Members[2].Addr != joinAddr {
		t.Fatalf("MEMBERS[2] = %q, want the joiner %q", m.Members[2].Addr, joinAddr)
	}
	sessions[0].Close()
	sessions[1].Close()
	joiner.Close()
	waitSessionGoroutines(t, base)
}

// TestSessionElasticLeaveTCP scales in 3→2 through the chaos harness: a
// leave@5:2 fault arms agent 2's voluntary departure at step 5. At the
// next boundary the cluster agrees on the shrunken membership, the
// leaver's iterator ends with ErrLeft after emitting steps 0..5 exactly
// once, and the survivors reshard its parameter-server state and finish
// the run bit-identically to each other.
func TestSessionElasticLeaveTCP(t *testing.T) {
	const total = 12
	base := runtime.NumGoroutine()
	root := t.TempDir()
	sessions, _ := elasticTCPCluster(t, 3, func(p int, dc *DistConfig) []Option {
		if p == 2 {
			dc.Chaos = "leave@5:2"
			dc.ChaosSeed = 1
		}
		return elasticOpts(root)
	})

	res := make([]elasticResult, 3)
	var wg sync.WaitGroup
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			res[p] = driveElastic(sessions[p], total, nil)
		}(p)
	}
	waitElastic(t, &wg, "elastic leave")

	if res[2].err == nil || !errors.Is(res[2].err, ErrLeft) {
		t.Fatalf("leaver ended with %v, want ErrLeft", res[2].err)
	}
	if len(res[2].losses) != 6 {
		t.Fatalf("leaver emitted %d steps, want 6 (0..5 then departure)", len(res[2].losses))
	}
	for step := 0; step < 6; step++ {
		if _, ok := res[2].losses[step]; !ok {
			t.Fatalf("leaver missed step %d", step)
		}
	}
	for p := 0; p < 2; p++ {
		if res[p].err != nil {
			t.Fatalf("survivor %d: %v", p, res[p].err)
		}
		if len(res[p].losses) != total {
			t.Fatalf("survivor %d emitted %d steps, want %d (each exactly once)", p, len(res[p].losses), total)
		}
		if n := sessions[p].Recoveries(); n != 0 {
			t.Fatalf("survivor %d recoveries = %d, want 0 (a leave is not a failure)", p, n)
		}
		if e := sessions[p].Epoch(); e != 1 {
			t.Fatalf("survivor %d at epoch %d, want 1", p, e)
		}
		if got := len(sessions[p].Members()); got != 2 {
			t.Fatalf("survivor %d sees %d members, want 2", p, got)
		}
	}
	for step, loss := range res[1].losses {
		if math.Float64bits(loss) != math.Float64bits(res[0].losses[step]) {
			t.Fatalf("step %d: survivors' losses diverged", step)
		}
	}
	for step, loss := range res[2].losses {
		if math.Float64bits(loss) != math.Float64bits(res[0].losses[step]) {
			t.Fatalf("step %d: leaver's pre-departure loss diverged from the survivors'", step)
		}
	}
	m, err := checkpoint.ReadMembers(root)
	if err != nil || m == nil || len(m.Members) != 2 {
		t.Fatalf("MEMBERS record %+v (err %v), want 2 members", m, err)
	}
	// A distributed session resizes through membership, never in place.
	if err := sessions[0].Resize(context.Background(), Uniform(2, 2)); err == nil {
		t.Fatal("Resize on a distributed session must refuse")
	}
	for _, s := range sessions {
		s.Close()
	}
	waitSessionGoroutines(t, base)
}

// TestSessionElasticShrinkOnKillTCP scales in on failure: a chaos fault
// kills agent 2's fabric at step 6 and every agent runs with
// AllowShrink. The killed agent fails fast (its own rank is the
// attributed failure, so it must not redial a cluster that re-formed
// without it); the survivors agree the machine is gone, reshard its
// partitions onto themselves from the step-4 auto-checkpoint, and
// finish at world size 2 with every step emitted exactly once.
func TestSessionElasticShrinkOnKillTCP(t *testing.T) {
	const total = 12
	base := runtime.NumGoroutine()
	root := t.TempDir()
	sessions, _ := elasticTCPCluster(t, 3, func(p int, dc *DistConfig) []Option {
		if p == 2 {
			dc.Chaos = "kill@6"
			dc.ChaosSeed = 1
		}
		return append(momentumOpts(),
			WithAutoCheckpoint(root, 4),
			WithElastic(),
			WithRecovery(RecoveryPolicy{Enabled: true, AllowShrink: true, RedialTimeout: 30 * time.Second}))
	})

	res := make([]elasticResult, 3)
	var wg sync.WaitGroup
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			res[p] = driveElastic(sessions[p], total, nil)
		}(p)
	}
	waitElastic(t, &wg, "elastic shrink")

	if res[2].err == nil || !errors.Is(res[2].err, ErrPeerFailed) {
		t.Fatalf("killed agent ended with %v, want ErrPeerFailed (fail fast, no self-recovery)", res[2].err)
	}
	if len(res[2].losses) != 6 {
		t.Fatalf("killed agent emitted %d steps, want 6 (0..5 then the kill)", len(res[2].losses))
	}
	for p := 0; p < 2; p++ {
		if res[p].err != nil {
			t.Fatalf("survivor %d: %v", p, res[p].err)
		}
		if len(res[p].losses) != total {
			t.Fatalf("survivor %d emitted %d steps, want %d (each exactly once)", p, len(res[p].losses), total)
		}
		if n := sessions[p].Recoveries(); n != 1 {
			t.Fatalf("survivor %d recoveries = %d, want 1", p, n)
		}
		if e := sessions[p].Epoch(); e != 1 {
			t.Fatalf("survivor %d at epoch %d, want 1", p, e)
		}
		if got := len(sessions[p].Members()); got != 2 {
			t.Fatalf("survivor %d sees %d members, want 2", p, got)
		}
	}
	for step, loss := range res[1].losses {
		if math.Float64bits(loss) != math.Float64bits(res[0].losses[step]) {
			t.Fatalf("step %d: survivors' losses diverged", step)
		}
	}
	for step, loss := range res[2].losses {
		if math.Float64bits(loss) != math.Float64bits(res[0].losses[step]) {
			t.Fatalf("step %d: killed agent's pre-kill loss diverged from the survivors'", step)
		}
	}
	if e, err := checkpoint.ReadEpoch(root); err != nil || e != 1 {
		t.Fatalf("recorded epoch %d (err %v), want 1", e, err)
	}
	m, err := checkpoint.ReadMembers(root)
	if err != nil || m == nil || len(m.Members) != 2 {
		t.Fatalf("MEMBERS record %+v (err %v), want 2 members", m, err)
	}
	for _, s := range sessions {
		s.Close()
	}
	waitSessionGoroutines(t, base)
}

// TestSessionElasticKillRecoverBitIdentical pins that enabling elastic
// membership does not perturb the same-size recovery path: a kill@6
// with AllowShrink off recovers in place exactly as without
// WithElastic, and the loss trajectory stays bit-identical to an
// uninterrupted single-process reference.
func TestSessionElasticKillRecoverBitIdentical(t *testing.T) {
	const every, total = 4, 12
	refLosses, _ := runSessionSteps(t, total, momentumOpts()...)

	base := runtime.NumGoroutine()
	root := t.TempDir()
	sessions := recoveryTCPPair(t, func(p int, dc *DistConfig) []Option {
		if p == 1 {
			dc.Chaos = "kill@6"
			dc.ChaosSeed = 1
		}
		return append(momentumOpts(),
			WithAutoCheckpoint(root, every),
			WithElastic(),
			WithRecovery(RecoveryPolicy{Enabled: true, RedialTimeout: 30 * time.Second}))
	})

	res := [2]elasticResult{}
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			res[p] = driveElastic(sessions[p], total, nil)
		}(p)
	}
	waitElastic(t, &wg, "elastic same-size recovery")

	for p := 0; p < 2; p++ {
		if res[p].err != nil {
			t.Fatalf("agent %d: %v", p, res[p].err)
		}
		if len(res[p].losses) != total {
			t.Fatalf("agent %d emitted %d steps, want %d (each exactly once)", p, len(res[p].losses), total)
		}
		for step, loss := range res[p].losses {
			if math.Float64bits(loss) != math.Float64bits(refLosses[step]) {
				t.Fatalf("agent %d step %d loss %x, uninterrupted reference %x",
					p, step, math.Float64bits(loss), math.Float64bits(refLosses[step]))
			}
		}
		if n := sessions[p].Recoveries(); n != 1 {
			t.Fatalf("agent %d recoveries = %d, want 1 (in-place, same size)", p, n)
		}
		if got := len(sessions[p].Members()); got != 2 {
			t.Fatalf("agent %d sees %d members, want 2 (no membership change)", p, got)
		}
	}
	sessions[0].Close()
	sessions[1].Close()
	waitSessionGoroutines(t, base)
}

// TestSessionElasticResizeInProc drives the single-process resharding
// path: a 2×2 elastic session grows to 3×2 and back mid-run. Every
// resize preserves the variables bit for bit, the step counter, and the
// exactly-once step numbering across the Steps calls that bracket it.
func TestSessionElasticResizeInProc(t *testing.T) {
	ctx := context.Background()
	refLosses, _ := runSessionSteps(t, 6, momentumOpts()...)

	s, err := Open(ctx, buildAPIModel(8, 150), Uniform(2, 2), append(momentumOpts(), WithElastic())...)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ds := data.NewZipfText(150, 8, 1, 1.0, 5)
	seen := map[int]float64{}
	runTo := func(last int) {
		t.Helper()
		for st, err := range s.Steps(ctx, ds) {
			if err != nil {
				t.Fatal(err)
			}
			if _, dup := seen[st.Step]; dup {
				t.Fatalf("step %d emitted twice", st.Step)
			}
			seen[st.Step] = st.Loss
			if st.Step == last {
				break
			}
		}
	}
	runTo(5)
	for step := 0; step < 6; step++ {
		if math.Float64bits(seen[step]) != math.Float64bits(refLosses[step]) {
			t.Fatalf("pre-resize step %d diverged from the reference", step)
		}
	}
	before := varBits(t, s, "embedding")
	if err := s.Resize(ctx, Uniform(3, 2)); err != nil {
		t.Fatal(err)
	}
	if s.StepCount() != 6 {
		t.Fatalf("StepCount after grow = %d, want 6", s.StepCount())
	}
	if s.Workers() != 6 {
		t.Fatalf("Workers after grow = %d, want 6", s.Workers())
	}
	after := varBits(t, s, "embedding")
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("embedding[%d] changed across the grow resize", i)
		}
	}
	runTo(9)
	mid := varBits(t, s, "embedding")
	if err := s.Resize(ctx, Uniform(2, 2)); err != nil {
		t.Fatal(err)
	}
	if s.Workers() != 4 {
		t.Fatalf("Workers after shrink = %d, want 4", s.Workers())
	}
	back := varBits(t, s, "embedding")
	for i := range mid {
		if mid[i] != back[i] {
			t.Fatalf("embedding[%d] changed across the shrink resize", i)
		}
	}
	runTo(11)
	if len(seen) != 12 {
		t.Fatalf("emitted %d distinct steps across resizes, want 12", len(seen))
	}
}

// TestSessionElasticCrossTopologyRestore pins OpenFromCheckpoint's
// topology contract both ways: restoring a checkpoint onto a different
// machine count is a hard ErrTopologyMismatch without WithElastic and
// an explicit resharding restore with it — in both directions, with the
// variables surviving bit for bit.
func TestSessionElasticCrossTopologyRestore(t *testing.T) {
	ctx := context.Background()
	dir2 := t.TempDir()
	s, err := Open(ctx, buildAPIModel(8, 150), Uniform(2, 2), momentumOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	for st, err := range s.Steps(ctx, data.NewZipfText(150, 8, 1, 1.0, 5)) {
		if err != nil {
			t.Fatal(err)
		}
		if st.Step == 4 {
			break
		}
	}
	if err := s.Save(dir2); err != nil {
		t.Fatal(err)
	}
	ref := varBits(t, s, "embedding")
	s.Close()

	if _, err := OpenFromCheckpoint(ctx, dir2, buildAPIModel(8, 150), Uniform(3, 2), momentumOpts()...); !errors.Is(err, ErrTopologyMismatch) {
		t.Fatalf("2→3 restore without WithElastic: %v, want ErrTopologyMismatch", err)
	}
	s3, err := OpenFromCheckpoint(ctx, dir2, buildAPIModel(8, 150), Uniform(3, 2),
		append(momentumOpts(), WithElastic())...)
	if err != nil {
		t.Fatal(err)
	}
	if s3.StepCount() != 5 {
		t.Fatalf("grown restore StepCount = %d, want 5", s3.StepCount())
	}
	grown := varBits(t, s3, "embedding")
	for i := range ref {
		if ref[i] != grown[i] {
			t.Fatalf("embedding[%d] changed across the 2→3 restore", i)
		}
	}
	// The grown cluster trains on: steps 5 and 6 each exactly once (the
	// fresh dataset fast-forwards to the checkpointed cursor).
	steps := map[int]bool{}
	for st, err := range s3.Steps(ctx, data.NewZipfText(150, 8, 1, 1.0, 5)) {
		if err != nil {
			t.Fatal(err)
		}
		if steps[st.Step] {
			t.Fatalf("step %d emitted twice after the grown restore", st.Step)
		}
		steps[st.Step] = true
		if st.Step == 6 {
			break
		}
	}
	if !steps[5] || !steps[6] || len(steps) != 2 {
		t.Fatalf("grown restore emitted steps %v, want exactly {5, 6}", steps)
	}
	dir3 := t.TempDir()
	if err := s3.Save(dir3); err != nil {
		t.Fatal(err)
	}
	ref3 := varBits(t, s3, "embedding")
	s3.Close()

	if _, err := OpenFromCheckpoint(ctx, dir3, buildAPIModel(8, 150), Uniform(2, 2), momentumOpts()...); !errors.Is(err, ErrTopologyMismatch) {
		t.Fatalf("3→2 restore without WithElastic: %v, want ErrTopologyMismatch", err)
	}
	s4, err := OpenFromCheckpoint(ctx, dir3, buildAPIModel(8, 150), Uniform(2, 2),
		append(momentumOpts(), WithElastic())...)
	if err != nil {
		t.Fatal(err)
	}
	defer s4.Close()
	if s4.StepCount() != 7 {
		t.Fatalf("shrunken restore StepCount = %d, want 7", s4.StepCount())
	}
	shrunk := varBits(t, s4, "embedding")
	for i := range ref3 {
		if ref3[i] != shrunk[i] {
			t.Fatalf("embedding[%d] changed across the 3→2 restore", i)
		}
	}
}

// TestSessionElasticValidation pins the API preconditions: Resize and
// Leave demand the elastic opt-in (and a live session), and a joiner
// cannot target a cluster without WithElastic.
func TestSessionElasticValidation(t *testing.T) {
	ctx := context.Background()
	s, err := Open(ctx, buildAPIModel(8, 150), Uniform(2, 2), momentumOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Resize(ctx, Uniform(3, 2)); err == nil {
		t.Fatal("Resize without WithElastic must fail")
	}
	if err := s.Leave(); err == nil {
		t.Fatal("Leave on a non-elastic single-process session must fail")
	}
	s.Close()
	if err := s.Resize(ctx, Uniform(3, 2)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Resize after Close: %v, want ErrClosed", err)
	}
	if err := s.Leave(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Leave after Close: %v, want ErrClosed", err)
	}
	if _, err := Open(ctx, buildAPIModel(8, 150), Uniform(1, 2),
		WithDistConfig(DistConfig{JoinTarget: "127.0.0.1:1", JoinAddr: "127.0.0.1:2"})); err == nil {
		t.Fatal("JoinTarget without WithElastic must fail")
	}
}
