// LM example: sparse-model training plus a look at why the hybrid
// architecture wins.
//
// The real-data-plane part trains a language model with a partitioned
// embedding on in-process workers. The what-if part then asks the
// discrete-event engine how the same model's paper-scale counterpart
// (800K-word vocabulary, 813M sparse elements) would behave on the
// paper's 48-GPU cluster under each architecture — the Table 1 / Table 4
// story in one program.
package main

import (
	"fmt"
	"log"

	"parallax"
	"parallax/internal/cluster"
	"parallax/internal/core"
	"parallax/internal/data"
	"parallax/internal/engine"
	"parallax/internal/metrics"
	"parallax/internal/models"
)

func main() {
	const (
		vocab  = 3000
		dim    = 32
		hidden = 64
		batch  = 32
	)
	rng := parallax.NewRNG(23)

	g := parallax.NewGraph()
	tokens := g.Input("tokens", parallax.Int, batch)
	labels := g.Input("labels", parallax.Int, batch)
	var emb *parallax.Node
	g.InPartitioner(func() {
		emb = g.Variable("embedding", rng.RandN(0.1, vocab, dim))
	})
	w1 := g.Variable("lstm/kernel", rng.RandN(0.1, dim, hidden))
	b1 := g.Variable("lstm/bias", parallax.NewDense(hidden))
	w2 := g.Variable("softmax/kernel", rng.RandN(0.1, hidden, vocab))
	h := g.Tanh(g.AddBias(g.MatMul(g.Gather(emb, tokens), w1), b1))
	g.SoftmaxCE(g.MatMul(h, w2), labels)

	alpha := parallax.MeasureAlpha(data.NewZipfText(vocab, batch, 1, 1.0, 31), vocab, 10)
	runner, err := parallax.GetRunner(g, parallax.Uniform(2, 2), parallax.Config{
		NewOptimizer: func() parallax.Optimizer { return parallax.NewSGD(0.5) },
		AlphaHint:    map[string]float64{"embedding": alpha},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer runner.Close()
	fmt.Print(runner.Describe())
	fmt.Printf("measured alpha %.4f, searched partitions %d\n\n", alpha, runner.SparsePartitions())

	shards := make([]parallax.Dataset, runner.Workers())
	for w := range shards {
		shards[w] = parallax.Shard(data.NewZipfText(vocab, batch, 1, 1.0, 31), w, runner.Workers())
	}
	for step := 0; step < 50; step++ {
		feeds := make([]parallax.Feed, runner.Workers())
		for w := range feeds {
			b := shards[w].Next()
			feeds[w] = parallax.Feed{Ints: map[string][]int{"tokens": b.Tokens, "labels": b.Labels}}
		}
		loss, err := runner.Run(feeds)
		if err != nil {
			log.Fatal(err)
		}
		if step%10 == 0 || step == 49 {
			fmt.Printf("step %2d  loss %.4f\n", step, loss)
		}
	}

	// What-if: the paper-scale LM on the paper's cluster, per architecture.
	fmt.Println("\npaper-scale LM on the simulated 8x6 cluster:")
	hw := cluster.DefaultHardware()
	for _, arch := range []core.Arch{core.ArchAR, core.ArchNaivePS, core.ArchOptPS, core.ArchHybrid} {
		res, err := engine.RunArch(models.LM(), arch, 8, 6, 128, hw)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s %8s words/s  (%.0f ms/step, %s per machine)\n",
			arch, metrics.Humanize(res.Throughput), res.StepTime*1000,
			metrics.HumanBytes(res.AvgMachineBytes()))
	}
}
