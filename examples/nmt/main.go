// NMT example: the paper's Figure 3 program, in Go.
//
// A translation-style model with encoder and decoder embeddings declared
// inside one partitioner scope (both get the same partition count), a
// dense recurrent stack, and a softmax over the destination vocabulary.
// Parallax routes the two embeddings through partitioned parameter servers
// and everything else through AllReduce, with global-norm clipping via the
// chief-worker read-back path.
package main

import (
	"fmt"
	"log"

	"parallax"
	"parallax/internal/data"
)

func main() {
	const (
		srcVocab = 1200
		dstVocab = 900
		dim      = 24
		hidden   = 48
		batch    = 16
	)
	rng := parallax.NewRNG(5)

	g := parallax.NewGraph()
	enTexts := g.Input("en_texts", parallax.Int, batch)
	deTexts := g.Input("de_texts", parallax.Int, batch)
	labels := g.Input("labels", parallax.Int, batch)

	var embEnc, embDec *parallax.Node
	g.InPartitioner(func() { // Fig. 3 line 9: `with parallax.partitioner():`
		embEnc = g.Variable("emb_enc", rng.RandN(0.1, srcVocab, dim))
		embDec = g.Variable("emb_dec", rng.RandN(0.1, dstVocab, dim))
	})
	w1 := g.Variable("rnn/kernel", rng.RandN(0.1, 2*dim, hidden))
	b1 := g.Variable("rnn/bias", parallax.NewDense(hidden))
	w2 := g.Variable("softmax/kernel", rng.RandN(0.1, hidden, dstVocab))

	h := g.ConcatCols(g.Gather(embEnc, enTexts), g.Gather(embDec, deTexts))
	h = g.Relu(g.AddBias(g.MatMul(h, w1), b1))
	g.SoftmaxCE(g.MatMul(h, w2), labels)

	// Measure the α each embedding sees under this workload (§2.2) and let
	// Parallax search the partition count with the cost model of §3.2.
	srcAlpha := parallax.MeasureAlpha(data.NewZipfText(srcVocab, batch, 1, 1.0, 11), srcVocab, 8)
	dstAlpha := parallax.MeasureAlpha(data.NewZipfText(dstVocab, batch, 1, 1.0, 12), dstVocab, 8)

	runner, err := parallax.GetRunner(g, parallax.Uniform(2, 2), parallax.Config{
		NewOptimizer: func() parallax.Optimizer { return parallax.NewSGD(0.3) },
		AlphaHint:    map[string]float64{"emb_enc": srcAlpha, "emb_dec": dstAlpha},
		ClipNorm:     5.0,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer runner.Close()
	fmt.Print(runner.Describe())
	fmt.Printf("alpha enc %.4f dec %.4f, partitions %d\n\n", srcAlpha, dstAlpha, runner.SparsePartitions())

	srcShards := make([]parallax.Dataset, runner.Workers())
	dstShards := make([]parallax.Dataset, runner.Workers())
	for w := range srcShards {
		srcShards[w] = parallax.Shard(data.NewZipfText(srcVocab, batch, 1, 1.0, 11), w, runner.Workers())
		dstShards[w] = parallax.Shard(data.NewZipfText(dstVocab, batch, 1, 1.0, 12), w, runner.Workers())
	}
	for step := 0; step < 40; step++ {
		feeds := make([]parallax.Feed, runner.Workers())
		for w := range feeds {
			src := srcShards[w].Next()
			dst := dstShards[w].Next()
			feeds[w] = parallax.Feed{Ints: map[string][]int{
				"en_texts": src.Tokens, "de_texts": dst.Tokens, "labels": dst.Labels,
			}}
		}
		loss, err := runner.Run(feeds)
		if err != nil {
			log.Fatal(err)
		}
		if step%10 == 0 || step == 39 {
			fmt.Printf("step %2d  loss %.4f\n", step, loss)
		}
	}
}
