// Quickstart: the smallest end-to-end Parallax program.
//
// It builds a single-GPU graph with one sparse embedding and one dense
// projection, lets Parallax transform it for a 2-machine × 2-GPU cluster,
// and trains for a few synchronous steps. Note what the code does NOT
// contain: no server/worker processes, no AllReduce calls, no pull/push —
// the transformation inserts all of that from the variables' gradient
// types (the paper's transparency claim, §4.1).
package main

import (
	"fmt"
	"log"

	"parallax"
	"parallax/internal/data"
)

func main() {
	const (
		vocab = 1000
		dim   = 24
		batch = 16
	)
	rng := parallax.NewRNG(1)

	// 1. A single-GPU computation graph (Fig. 3 lines 4-17).
	g := parallax.NewGraph()
	tokens := g.Input("tokens", parallax.Int, batch)
	labels := g.Input("labels", parallax.Int, batch)
	var emb *parallax.Node
	g.InPartitioner(func() { // partitioner scope marks partition targets
		emb = g.Variable("embedding", rng.RandN(0.1, vocab, dim))
	})
	proj := g.Variable("proj", rng.RandN(0.1, dim, vocab))
	g.SoftmaxCE(g.MatMul(g.Gather(emb, tokens), proj), labels)

	// 2. Transform for the cluster (Fig. 3 lines 19-22). GetRunner starts
	// the persistent runtime (worker goroutines + parameter servers);
	// Close stops it.
	runner, err := parallax.GetRunner(g, parallax.Uniform(2, 2), parallax.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer runner.Close()
	fmt.Print(runner.Describe())

	// 3. Train (Fig. 3 lines 24-25): RunLoop shards the stream across the
	// workers and drives the synchronous steps, reporting per-step
	// metrics to the hook.
	stats, err := runner.RunLoop(data.NewZipfText(vocab, batch, 1, 1.0, 9), 30,
		func(s parallax.StepStats) {
			if s.Step%10 == 0 {
				fmt.Printf("step %2d  loss %.4f\n", s.Step, s.Loss)
			}
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(stats)
}
