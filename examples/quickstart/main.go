// Quickstart: the smallest end-to-end Parallax program.
//
// It builds a single-GPU graph with one sparse embedding and one dense
// projection, lets Parallax transform it for a 2-machine × 2-GPU cluster,
// and trains for a few synchronous steps. Note what the code does NOT
// contain: no server/worker processes, no AllReduce calls, no pull/push —
// the transformation inserts all of that from the variables' gradient
// types (the paper's transparency claim, §4.1).
package main

import (
	"context"
	"fmt"
	"log"

	"parallax"
	"parallax/internal/data"
)

func main() {
	const (
		vocab = 1000
		dim   = 24
		batch = 16
	)
	rng := parallax.NewRNG(1)

	// 1. A single-GPU computation graph (Fig. 3 lines 4-17).
	g := parallax.NewGraph()
	tokens := g.Input("tokens", parallax.Int, batch)
	labels := g.Input("labels", parallax.Int, batch)
	var emb *parallax.Node
	g.InPartitioner(func() { // partitioner scope marks partition targets
		emb = g.Variable("embedding", rng.RandN(0.1, vocab, dim))
	})
	proj := g.Variable("proj", rng.RandN(0.1, dim, vocab))
	g.SoftmaxCE(g.MatMul(g.Gather(emb, tokens), proj), labels)

	// 2. Open a session for the cluster (Fig. 3 lines 19-22). Open starts
	// the persistent runtime (worker goroutines + parameter servers);
	// Close stops it. Options refine the default configuration.
	ctx := context.Background()
	sess, err := parallax.Open(ctx, g, parallax.Uniform(2, 2))
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	fmt.Print(sess.Describe())

	// 3. Train (Fig. 3 lines 24-25): Steps shards the stream across the
	// workers and streams one StepStats per synchronous step. The
	// iterator is endless — break (or cancel ctx) when done. A
	// sess.Save(dir) call here would checkpoint the job for a
	// bit-identical resume via parallax.OpenFromCheckpoint.
	var stats parallax.LoopStats
	for st, err := range sess.Steps(ctx, data.NewZipfText(vocab, batch, 1, 1.0, 9)) {
		if err != nil {
			log.Fatal(err)
		}
		stats.Observe(st)
		if st.Step%10 == 0 {
			fmt.Printf("step %2d  loss %.4f\n", st.Step, st.Loss)
		}
		if st.Step == 29 {
			break
		}
	}
	fmt.Println(stats)
}
