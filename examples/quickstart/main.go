// Quickstart: the smallest end-to-end Parallax program.
//
// It builds a single-GPU graph with one sparse embedding and one dense
// projection, lets Parallax transform it for a 2-machine × 2-GPU cluster,
// and trains for a few synchronous steps. Note what the code does NOT
// contain: no server/worker processes, no AllReduce calls, no pull/push —
// the transformation inserts all of that from the variables' gradient
// types (the paper's transparency claim, §4.1).
package main

import (
	"fmt"
	"log"

	"parallax"
	"parallax/internal/data"
)

func main() {
	const (
		vocab = 1000
		dim   = 24
		batch = 16
	)
	rng := parallax.NewRNG(1)

	// 1. A single-GPU computation graph (Fig. 3 lines 4-17).
	g := parallax.NewGraph()
	tokens := g.Input("tokens", parallax.Int, batch)
	labels := g.Input("labels", parallax.Int, batch)
	var emb *parallax.Node
	g.InPartitioner(func() { // partitioner scope marks partition targets
		emb = g.Variable("embedding", rng.RandN(0.1, vocab, dim))
	})
	proj := g.Variable("proj", rng.RandN(0.1, dim, vocab))
	g.SoftmaxCE(g.MatMul(g.Gather(emb, tokens), proj), labels)

	// 2. Transform for the cluster (Fig. 3 lines 19-22).
	runner, err := parallax.GetRunner(g, parallax.Uniform(2, 2), parallax.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(runner.Describe())

	// 3. Shard the input stream and train (Fig. 3 lines 24-25).
	shards := make([]parallax.Dataset, runner.Workers())
	for w := range shards {
		shards[w] = parallax.Shard(data.NewZipfText(vocab, batch, 1, 1.0, 9), w, runner.Workers())
	}
	for step := 0; step < 30; step++ {
		feeds := make([]parallax.Feed, runner.Workers())
		for w := range feeds {
			b := shards[w].Next()
			feeds[w] = parallax.Feed{Ints: map[string][]int{"tokens": b.Tokens, "labels": b.Labels}}
		}
		loss, err := runner.Run(feeds)
		if err != nil {
			log.Fatal(err)
		}
		if step%10 == 0 {
			fmt.Printf("step %2d  loss %.4f\n", step, loss)
		}
	}
}
