// Sweep example: how the sparsity degree α shapes the architecture choice
// (the paper's §6.6 / Table 6).
//
// For a range of data-instance lengths, it measures the α the workload
// induces on the embedding (longer instances touch more vocabulary rows),
// then simulates the constructed LM at paper scale under Parallax's hybrid
// architecture and under pure PS, printing the speedup — which grows as
// the model gets sparser, peaking at the shortest instances.
package main

import (
	"fmt"
	"log"

	"parallax"
	"parallax/internal/cluster"
	"parallax/internal/core"
	"parallax/internal/data"
	"parallax/internal/engine"
	"parallax/internal/metrics"
	"parallax/internal/models"
)

func main() {
	const vocab = 50_000
	hw := cluster.DefaultHardware()

	fmt.Println("length  alpha(data)  alpha_model  Parallax   TF-PS      speedup")
	for _, length := range []int{120, 60, 30, 15, 8, 4, 1} {
		// α measured from an actual Zipf token stream with this instance
		// length (batch 128 as in the paper).
		measured := parallax.MeasureAlpha(
			data.NewZipfText(vocab, 128, length, 1.0, int64(length)), vocab, 5)

		spec := models.ConstructedLM(measured, length)
		prlx, err := engine.RunArch(spec, core.ArchHybrid, 8, 6, 64, hw)
		if err != nil {
			log.Fatal(err)
		}
		tfps, err := engine.RunArch(spec, core.ArchNaivePS, 8, 6, 64, hw)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d  %11.4f  %11.3f  %-9s  %-9s  %.2fx\n",
			length, measured, spec.AlphaModel(),
			metrics.Humanize(prlx.Throughput), metrics.Humanize(tfps.Throughput),
			prlx.Throughput/tfps.Throughput)
	}
}
