package parallax

import (
	"context"
	"fmt"

	"parallax/internal/metrics"
	"parallax/internal/partition"
	"parallax/internal/transform"
)

// Runner is the legacy handle on a training job, the object
// parallax.get_runner returns in Fig. 3. It is a thin compatibility
// wrapper over Session: GetRunner(g, res, cfg) is Open(ctx, g, res,
// WithConfig(cfg)) with a background context, and RunLoop/RunLoopFeeds
// drive the same step iterator Session.Steps streams — bounded, with
// loop-relative step numbers, exactly as before. New code should use
// Open and the Session API directly (which add context cancellation,
// functional options, and checkpoint/restore); Runner exists so
// existing callers keep compiling and behaving identically. Call
// Session to reach the underlying session (for Save, for example).
type Runner struct {
	s *Session
}

// PartitionSearch is the sampling search's outcome: the sampled
// operating points, the fitted Eq. 1 cost model, the chosen P, and the
// measurement-run budget consumed.
type PartitionSearch = partition.SearchResult

// PartitionSample is one measured (P, iteration time) operating point.
type PartitionSample = partition.Sample

// PartitionCostModel is the fitted iter_time(P) = θ0 + θ1/P + θ2·P.
type PartitionCostModel = partition.CostModel

// PartitionDecision reports how the sparse-variable partition count was
// chosen (§3.2): fixed by configuration, searched over the simulated
// cluster, or tuned online against real measured steps.
type PartitionDecision struct {
	// P is the partition count in effect.
	P int
	// Source is "fixed", "simulated" (search over the discrete-event
	// engine), or "online" (WithAutoPartition's tune-while-training
	// search on the live runtime).
	Source string
	// Pending marks an online search that has not run yet; it runs
	// during the first Steps / RunLoop iteration.
	Pending bool
	// Search is the search outcome; nil for fixed decisions (and for
	// online decisions still pending).
	Search *PartitionSearch
}

// String renders the decision the way parallax-info does.
func (d PartitionDecision) String() string {
	src := d.Source
	if d.Pending {
		src += ", pending first step loop"
		return metrics.FormatPartitionDecision(src, d.P, nil)
	}
	return metrics.FormatPartitionDecision(src, d.P, d.Search)
}

// GetRunner analyzes the single-GPU graph, builds the sparsity-aware
// plan for the given cluster, transforms the graph into per-GPU
// replicas plus parameter servers, and returns a Runner (§4.1's
// get_runner). It is equivalent to Open with WithConfig(cfg) and a
// background context; see Session for the context-first API.
func GetRunner(g *Graph, resource ResourceInfo, cfg Config) (*Runner, error) {
	s, err := open(context.Background(), g, resource, cfg, nil, nil)
	if err != nil {
		return nil, err
	}
	return &Runner{s: s}, nil
}

// Session returns the underlying Session, the migration path to the
// context-first API (checkpointing via Session.Save, streaming via
// Session.Steps).
func (r *Runner) Session() *Session { return r.s }

// Run executes one synchronous training step; feeds[w] is worker w's batch
// (use Shard to produce disjoint batches). It returns the mean loss.
func (r *Runner) Run(feeds []Feed) (float64, error) {
	return r.s.RunStep(feeds)
}

// StepStats is one training step's measurements (loss, wall-clock step
// time, gradient bytes pushed to the synchronization layer).
type StepStats = metrics.StepStats

// LoopStats aggregates StepStats over a whole RunLoop.
type LoopStats = metrics.LoopStats

// StepHook observes each step of RunLoop (logging, early-stop bookkeeping,
// metric export). Hooks run synchronously on the loop goroutine.
type StepHook func(StepStats)

// RunLoop drives steps against the persistent runtime for a token-model
// graph: each step it draws one batch from ds per worker (successive
// batches go to successive workers, so one endless stream is consumed as
// disjoint shards, the effect of parallax.shard in Fig. 3) and feeds them
// to the graph's "tokens" and "labels" inputs. Per-step metrics flow to
// the hooks and into the returned aggregate. Step numbers in the stats
// and hooks are relative to this call, starting at zero.
//
// Graphs with differently named inputs (or float inputs) should use
// RunLoopFeeds, which accepts an arbitrary feed source.
func (r *Runner) RunLoop(ds Dataset, steps int, hooks ...StepHook) (LoopStats, error) {
	for _, name := range []string{"tokens", "labels"} {
		if !hasIntInput(r.s.g, name) {
			return LoopStats{}, fmt.Errorf(
				"parallax: RunLoop needs an int input named %q (use RunLoopFeeds for custom feeds)", name)
		}
	}
	return r.RunLoopFeeds(r.s.datasetFeeds(ds), steps, hooks...)
}

// RunLoopFeeds is RunLoop's generic core: next(step, worker) supplies
// worker w's feed for each (loop-relative) step. It runs the loop,
// timing every step, and stops on the first error.
//
// With AutoPartition set, the first call additionally runs the online
// §3.2 partition search: its leading steps are real training steps
// (reported to hooks and stats like any other) during which the runtime
// measures candidate partition counts and reshards live; the remaining
// budget then runs at the tuned P. The total step count is exactly
// steps either way.
func (r *Runner) RunLoopFeeds(next func(step, worker int) (Feed, error), steps int, hooks ...StepHook) (LoopStats, error) {
	var stats LoopStats
	var retErr error
	base := r.s.trainer.StepCount()
	r.s.drive(context.Background(), func(abs, worker int) (Feed, error) {
		return next(abs-base, worker)
	}, steps, func(st StepStats, err error) bool {
		if err != nil {
			retErr = err
			return false
		}
		st.Step -= base
		stats.Observe(st)
		for _, h := range hooks {
			h(st)
		}
		return true
	})
	return stats, retErr
}

// Repartition reshards the partition-target sparse variables to p
// partitions on the live runtime, without restarting it: parameter
// servers migrate values and optimizer slot state to the new row ranges
// and the routing tables are rebuilt between steps (DESIGN.md §9). The
// migration is lossless — training continues bit-identically to a run
// that used p from the start. It must not run concurrently with
// Run/RunLoop; in distributed mode every agent must call it with the
// same p between the same steps (Config.AutoPartition does this
// automatically).
func (r *Runner) Repartition(p int) error { return r.s.Repartition(p) }

// PartitionDecision reports how the current partition count was chosen
// and, for searched decisions, the sampled points and fitted cost model.
func (r *Runner) PartitionDecision() PartitionDecision { return r.s.PartitionDecision() }

// ShardMap renders the live per-route shard map: every variable's
// synchronization method and, for PS variables, the partition→machine
// assignment currently in effect (it reflects live repartitioning).
func (r *Runner) ShardMap() string { return r.s.ShardMap() }

// PhaseStats is the per-step phase breakdown of the slowest worker
// (compute, synchronization busy time, and the exposed non-overlapped
// part of it).
type PhaseStats = transform.PhaseStats

// PhaseStatsLastStep returns the previous step's phase breakdown. Valid
// after Run (RunLoop reports the same numbers through StepStats).
func (r *Runner) PhaseStatsLastStep() PhaseStats { return r.s.PhaseStatsLastStep() }

// Close stops the runner's persistent worker goroutines. The runner must
// not be used afterwards (operations return ErrClosed); Close is
// idempotent.
func (r *Runner) Close() { r.s.Close() }

// Workers returns the number of model replicas (total GPUs) across the
// whole cluster.
func (r *Runner) Workers() int { return r.s.Workers() }

// LocalWorkers returns the global ranks this process hosts — all workers
// in single-process mode, one machine's share under Config.Dist. The
// returned slice must not be mutated.
func (r *Runner) LocalWorkers() []int { return r.s.LocalWorkers() }

// SparsePartitions returns the partition count in effect (searched or
// configured).
func (r *Runner) SparsePartitions() int { return r.s.SparsePartitions() }

// VarValue returns the current full value of a variable (assembled from
// the servers for PS variables).
func (r *Runner) VarValue(name string) (*Dense, error) { return r.s.VarValue(name) }

// Describe summarizes the plan: how each variable is synchronized,
// which transport the job runs over, and how the partition count was
// decided.
func (r *Runner) Describe() string { return r.s.Describe() }
