package parallax

import (
	"fmt"
	"math"
	"time"

	"parallax/internal/cluster"
	"parallax/internal/core"
	"parallax/internal/engine"
	"parallax/internal/graph"
	"parallax/internal/metrics"
	"parallax/internal/models"
	"parallax/internal/partition"
	"parallax/internal/transform"
	"parallax/internal/transport"
)

// Runner executes synchronous data-parallel training steps for a
// transformed graph, the object parallax.get_runner returns in Fig. 3.
// Its trainer is a persistent runtime — worker goroutines and parameter
// servers live as long as the Runner — so call Close when done with it.
type Runner struct {
	g        *Graph
	trainer  *transform.Trainer
	plan     *core.Plan
	resource ResourceInfo
	cfg      Config
	workers  int
	parts    int
	dist     *DistConfig

	decision    PartitionDecision
	tunePending bool
}

// PartitionSearch is the sampling search's outcome: the sampled
// operating points, the fitted Eq. 1 cost model, the chosen P, and the
// measurement-run budget consumed.
type PartitionSearch = partition.SearchResult

// PartitionSample is one measured (P, iteration time) operating point.
type PartitionSample = partition.Sample

// PartitionCostModel is the fitted iter_time(P) = θ0 + θ1/P + θ2·P.
type PartitionCostModel = partition.CostModel

// PartitionDecision reports how the sparse-variable partition count was
// chosen (§3.2): fixed by Config.SparsePartitions, searched over the
// simulated cluster, or tuned online against real measured steps.
type PartitionDecision struct {
	// P is the partition count in effect.
	P int
	// Source is "fixed", "simulated" (search over the discrete-event
	// engine), or "online" (Config.AutoPartition's tune-while-training
	// search on the live runtime).
	Source string
	// Pending marks an online search that has not run yet; it runs
	// during the first RunLoop / RunLoopFeeds call.
	Pending bool
	// Search is the search outcome; nil for fixed decisions (and for
	// online decisions still pending).
	Search *PartitionSearch
}

// String renders the decision the way parallax-info does.
func (d PartitionDecision) String() string {
	src := d.Source
	if d.Pending {
		src += ", pending first RunLoop"
		return metrics.FormatPartitionDecision(src, d.P, nil)
	}
	return metrics.FormatPartitionDecision(src, d.P, d.Search)
}

// GetRunner analyzes the single-GPU graph, builds the sparsity-aware plan
// for the given cluster, transforms the graph into per-GPU replicas plus
// parameter servers, and returns a Runner (§4.1's get_runner).
func GetRunner(g *Graph, resource ResourceInfo, cfg Config) (*Runner, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := resource.Validate(); err != nil {
		return nil, err
	}
	if cfg.NewOptimizer == nil {
		cfg.NewOptimizer = func() Optimizer { return NewSGD(0.1) }
	}

	parts := cfg.SparsePartitions
	decision := PartitionDecision{Source: "fixed"}
	tunePending := false
	if parts <= 0 {
		if cfg.AutoPartition && hasPartitionTarget(g) {
			// Online tuning starts from the paper's initial sample point
			// (the machine count); the search itself runs against real
			// steps during the first RunLoop and reshards live.
			parts = resource.NumMachines()
			tunePending = true
			decision = PartitionDecision{Source: "online", Pending: true}
		} else {
			var sr *partition.SearchResult
			parts, sr = searchPartitions(g, resource, cfg)
			if sr != nil {
				decision = PartitionDecision{Source: "simulated", Search: sr}
			}
		}
	}
	decision.P = parts
	arch := cfg.Arch.coreArch()
	plan, err := buildPlan(g, resource, cfg, parts)
	if err != nil {
		return nil, err
	}
	localAgg := !cfg.DisableLocalAggregation &&
		(arch == core.ArchHybrid || arch == core.ArchOptPS)
	var fab transport.Fabric
	if cfg.Dist != nil {
		fab, err = transport.DialTCP(transport.TCPConfig{
			Topo: transport.Topology{
				Workers:         resource.TotalGPUs(),
				Machines:        resource.NumMachines(),
				MachineOfWorker: resource.WorkerMachines(),
			},
			Process:     cfg.Dist.Machine,
			Addrs:       cfg.Dist.Addrs,
			DialTimeout: cfg.Dist.DialTimeout,
		})
		if err != nil {
			return nil, err
		}
	}
	tr, err := transform.New(g, transform.Options{
		Plan:             plan,
		Resource:         resource,
		NewOptimizer:     cfg.NewOptimizer,
		DenseAgg:         cfg.DenseAgg,
		SparseAgg:        cfg.SparseAgg,
		LocalAggregation: localAgg,
		ClipNorm:         cfg.ClipNorm,
		Async:            cfg.Async,
		FusionBytes:      cfg.FusionBytes,
		Fabric:           fab,
	})
	if err != nil {
		return nil, err
	}
	return &Runner{
		g: g, trainer: tr, plan: plan, resource: resource, cfg: cfg,
		workers: resource.TotalGPUs(), parts: parts, dist: cfg.Dist,
		decision: decision, tunePending: tunePending,
	}, nil
}

// buildPlan derives the sparsity-aware plan for the given partition
// count — shared between GetRunner and live repartitioning so both
// produce identical placements for identical inputs.
func buildPlan(g *Graph, resource ResourceInfo, cfg Config, parts int) (*core.Plan, error) {
	arch := cfg.Arch.coreArch()
	return core.BuildPlan(planVars(g, cfg.AlphaHint), core.Options{
		Arch:                arch,
		NumMachines:         resource.NumMachines(),
		SparsePartitions:    parts,
		AlphaDenseThreshold: cfg.AlphaDenseThreshold,
		SmartPlacement:      arch == core.ArchHybrid || arch == core.ArchOptPS,
	})
}

// hasPartitionTarget reports whether the graph declares any sparse
// variable inside a partitioner scope — the variables the §3.2 search
// (and live resharding) applies to.
func hasPartitionTarget(g *Graph) bool {
	for _, v := range g.Variables() {
		if v.PartitionScope >= 0 && g.GradKind(v) == graph.GradSparse {
			return true
		}
	}
	return false
}

// maxPartitionBound is the search's upper bracket: the largest
// partition-target variable's row count, clamped by partition.Bound.
func maxPartitionBound(g *Graph) int {
	maxRows := 1
	for _, v := range g.Variables() {
		if v.PartitionScope >= 0 && v.Shape[0] > maxRows {
			maxRows = v.Shape[0]
		}
	}
	return partition.Bound(maxRows)
}

// planVars converts graph variables to planner inputs using the α hints.
func planVars(g *Graph, alphaHint map[string]float64) []core.VarInfo {
	var vars []core.VarInfo
	for _, v := range g.Variables() {
		width := int64(1)
		for _, d := range v.Shape[1:] {
			width *= int64(d)
		}
		sparse := g.GradKind(v) == graph.GradSparse
		alpha := 1.0
		if sparse {
			alpha = alphaHint[v.Name]
			if alpha <= 0 || alpha > 1 {
				alpha = 0.05
			}
		}
		vars = append(vars, core.VarInfo{
			Name: v.Name, Rows: int64(v.Shape[0]), Width: width,
			Sparse: sparse, Alpha: alpha, PartitionTarget: v.PartitionScope >= 0,
		})
	}
	return vars
}

// searchPartitions runs the §3.2 sampling search over the simulated
// cluster: a spec is derived from the user's graph, each candidate P is
// "trained for a few iterations" on the discrete-event engine, and the
// cost model picks the best count. (The real system samples on the
// physical cluster; Config.AutoPartition does exactly that on the live
// runtime, see DESIGN.md §9.) The returned search result is nil when the
// graph has no partition-target variable.
func searchPartitions(g *Graph, resource ResourceInfo, cfg Config) (int, *partition.SearchResult) {
	if !hasPartitionTarget(g) {
		return 1, nil
	}
	batch := firstBatchDim(g)
	spec := models.SpecFromGraph(g, cfg.AlphaHint, batch)
	hw := cluster.DefaultHardware()
	measure := func(p int) float64 {
		res, err := engine.RunArch(spec, core.ArchHybrid, resource.NumMachines(),
			maxGPUs(resource), p, hw)
		if err != nil {
			return 1e9
		}
		return res.StepTime
	}
	res, err := partition.Search(measure, resource.NumMachines(), maxPartitionBound(g))
	if err != nil || res.BestP < 1 {
		return resource.NumMachines(), nil
	}
	return res.BestP, &res
}

func firstBatchDim(g *Graph) int {
	for _, n := range g.Nodes() {
		if n.Kind == graph.OpInput && len(n.Shape) > 0 {
			return n.Shape[0]
		}
	}
	return 1
}

func maxGPUs(r ResourceInfo) int {
	m := 1
	for i := 0; i < r.NumMachines(); i++ {
		if g := r.GPUsPerMachine(i); g > m {
			m = g
		}
	}
	return m
}

// Run executes one synchronous training step; feeds[w] is worker w's batch
// (use Shard to produce disjoint batches). It returns the mean loss.
func (r *Runner) Run(feeds []Feed) (float64, error) {
	return r.trainer.Step(feeds)
}

// StepStats is one training step's measurements (loss, wall-clock step
// time, gradient bytes pushed to the synchronization layer).
type StepStats = metrics.StepStats

// LoopStats aggregates StepStats over a whole RunLoop.
type LoopStats = metrics.LoopStats

// StepHook observes each step of RunLoop (logging, early-stop bookkeeping,
// metric export). Hooks run synchronously on the loop goroutine.
type StepHook func(StepStats)

// RunLoop drives steps against the persistent runtime for a token-model
// graph: each step it draws one batch from ds per worker (successive
// batches go to successive workers, so one endless stream is consumed as
// disjoint shards, the effect of parallax.shard in Fig. 3) and feeds them
// to the graph's "tokens" and "labels" inputs. Per-step metrics flow to
// the hooks and into the returned aggregate.
//
// Graphs with differently named inputs (or float inputs) should use
// RunLoopFeeds, which accepts an arbitrary feed source.
func (r *Runner) RunLoop(ds Dataset, steps int, hooks ...StepHook) (LoopStats, error) {
	for _, name := range []string{"tokens", "labels"} {
		if !hasIntInput(r.g, name) {
			return LoopStats{}, fmt.Errorf(
				"parallax: RunLoop needs an int input named %q (use RunLoopFeeds for custom feeds)", name)
		}
	}
	return r.RunLoopFeeds(func(step, worker int) (Feed, error) {
		b := ds.Next()
		return Feed{Ints: map[string][]int{"tokens": b.Tokens, "labels": b.Labels}}, nil
	}, steps, hooks...)
}

// RunLoopFeeds is RunLoop's generic core: next(step, worker) supplies
// worker w's feed for each step. It runs the loop, timing every step and
// collecting the trainer's per-step push-byte counter, and stops on the
// first error.
//
// With Config.AutoPartition set, the first call additionally runs the
// online §3.2 partition search: its leading steps are real training
// steps (reported to hooks and stats like any other) during which the
// runtime measures candidate partition counts and reshards live; the
// remaining budget then runs at the tuned P. The total step count is
// exactly steps either way.
func (r *Runner) RunLoopFeeds(next func(step, worker int) (Feed, error), steps int, hooks ...StepHook) (LoopStats, error) {
	var stats LoopStats
	feeds := make([]Feed, r.workers)
	s := 0
	if r.tunePending {
		r.tunePending = false
		if err := r.tunePartitions(next, feeds, steps, &s, &stats, hooks); err != nil {
			return stats, err
		}
	}
	for ; s < steps; s++ {
		if _, err := r.oneStep(next, feeds, s, &stats, hooks); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// oneStep draws every worker's feed, runs one synchronous step, and
// folds the measurements into stats and the hooks.
func (r *Runner) oneStep(next func(step, worker int) (Feed, error), feeds []Feed, s int, stats *LoopStats, hooks []StepHook) (StepStats, error) {
	for w := 0; w < r.workers; w++ {
		f, err := next(s, w)
		if err != nil {
			return StepStats{}, err
		}
		feeds[w] = f
	}
	start := time.Now()
	loss, err := r.trainer.Step(feeds)
	if err != nil {
		return StepStats{}, err
	}
	ph := r.trainer.PhaseStatsLastStep()
	wireSent, wireRecv := r.trainer.WireStatsLastStep()
	st := StepStats{
		Step:          s,
		Loss:          loss,
		StepTime:      time.Since(start),
		BytesPushed:   r.trainer.BytesPushedLastStep(),
		WireSentBytes: wireSent,
		WireRecvBytes: wireRecv,
		ComputeTime:   ph.Compute,
		CommTime:      ph.Comm,
		SyncWait:      ph.SyncWait,
	}
	stats.Observe(st)
	for _, h := range hooks {
		h(st)
	}
	return st, nil
}

// Online tuning constants: each candidate partition count is measured
// over tuneStepsPerProbe real training steps, and the whole search stays
// within the paper's §6.5 budget of tuneMaxRuns measurement runs.
const (
	tuneStepsPerProbe = 3
	tuneMaxRuns       = 5
)

// tunePartitions is the tune-while-training phase: it drives the §3.2
// sampling search with real measured steps, resharding the live runtime
// to each candidate P, and settles on the optimum. Measured times are
// folded to a cluster-wide maximum through the collective layer, so in
// distributed mode every agent derives the same probe sequence from the
// same numbers and the repartition protocol stays in lockstep. Steps
// consumed here advance *s; probes that would overrun the loop's step
// budget are skipped identically on every agent.
func (r *Runner) tunePartitions(next func(step, worker int) (Feed, error), feeds []Feed, steps int, s *int, stats *LoopStats, hooks []StepHook) error {
	var runErr error
	measure := func(p int) float64 {
		if runErr != nil {
			return math.Inf(1)
		}
		// Budget first, reshard second: an exhausted budget must not pay
		// for a state migration it will never measure. The check depends
		// only on *s and steps, which are identical on every agent, so
		// the skip stays in lockstep.
		if *s+tuneStepsPerProbe > steps {
			return math.Inf(1)
		}
		if err := r.Repartition(p); err != nil {
			runErr = err
			return math.Inf(1)
		}
		var total time.Duration
		for k := 0; k < tuneStepsPerProbe; k++ {
			st, err := r.oneStep(next, feeds, *s, stats, hooks)
			if err != nil {
				runErr = err
				return math.Inf(1)
			}
			*s++
			total += st.StepTime
		}
		return r.trainer.AgreeScalarMax(total.Seconds() / tuneStepsPerProbe)
	}
	res, err := partition.SearchN(measure, r.resource.NumMachines(), maxPartitionBound(r.g), tuneMaxRuns)
	if runErr != nil {
		return runErr
	}
	if err != nil {
		return err
	}
	if err := r.Repartition(res.BestP); err != nil {
		return err
	}
	r.decision = PartitionDecision{P: res.BestP, Source: "online", Search: &res}
	return nil
}

// Repartition reshards the partition-target sparse variables to p
// partitions on the live runtime, without restarting it: parameter
// servers migrate values and optimizer slot state to the new row ranges
// and the routing tables are rebuilt between steps (DESIGN.md §9). The
// migration is lossless — training continues bit-identically to a run
// that used p from the start. It must not run concurrently with
// Run/RunLoop; in distributed mode every agent must call it with the
// same p between the same steps (Config.AutoPartition does this
// automatically).
func (r *Runner) Repartition(p int) error {
	if p < 1 {
		return fmt.Errorf("parallax: repartition to %d partitions", p)
	}
	plan, err := buildPlan(r.g, r.resource, r.cfg, p)
	if err != nil {
		return err
	}
	if err := r.trainer.Repartition(plan); err != nil {
		return err
	}
	r.plan = plan
	r.parts = p
	r.decision.P = p
	return nil
}

// PartitionDecision reports how the current partition count was chosen
// and, for searched decisions, the sampled points and fitted cost model.
func (r *Runner) PartitionDecision() PartitionDecision { return r.decision }

// ShardMap renders the live per-route shard map: every variable's
// synchronization method and, for PS variables, the partition→machine
// assignment currently in effect (it reflects live repartitioning).
func (r *Runner) ShardMap() string {
	return metrics.FormatShardMap(metrics.ShardRoutes(r.plan.Assignments))
}

func hasIntInput(g *Graph, name string) bool {
	for _, n := range g.Nodes() {
		if n.Kind == graph.OpInput && n.DType == graph.Int && n.Name == name {
			return true
		}
	}
	return false
}

// PhaseStats is the per-step phase breakdown of the slowest worker
// (compute, synchronization busy time, and the exposed non-overlapped
// part of it).
type PhaseStats = transform.PhaseStats

// PhaseStatsLastStep returns the previous step's phase breakdown. Valid
// after Run (RunLoop reports the same numbers through StepStats).
func (r *Runner) PhaseStatsLastStep() PhaseStats { return r.trainer.PhaseStatsLastStep() }

// Close stops the runner's persistent worker goroutines. The runner must
// not be used afterwards; Close is idempotent.
func (r *Runner) Close() { r.trainer.Close() }

// Workers returns the number of model replicas (total GPUs) across the
// whole cluster.
func (r *Runner) Workers() int { return r.workers }

// LocalWorkers returns the global ranks this process hosts — all workers
// in single-process mode, one machine's share under Config.Dist. The
// returned slice must not be mutated.
func (r *Runner) LocalWorkers() []int { return r.trainer.LocalWorkers() }

// SparsePartitions returns the partition count in effect (searched or
// configured).
func (r *Runner) SparsePartitions() int { return r.parts }

// VarValue returns the current full value of a variable (assembled from
// the servers for PS variables).
func (r *Runner) VarValue(name string) (*Dense, error) {
	return r.trainer.VarValue(name)
}

// Describe summarizes the plan: how each variable is synchronized,
// which transport the job runs over, and how the partition count was
// decided.
func (r *Runner) Describe() string {
	s := fmt.Sprintf("parallax: %d workers, %s architecture\n", r.workers, r.plan.Arch)
	if r.dist != nil {
		s += fmt.Sprintf("transport: tcp, agent for machine %d of %d (inproc within the agent)\n",
			r.dist.Machine, len(r.dist.Addrs))
	} else {
		s += "transport: inproc (single process)\n"
	}
	s += r.decision.String()
	for _, a := range r.plan.Assignments {
		extra := ""
		if a.Method == core.MethodPS && a.Partitions > 1 {
			extra = fmt.Sprintf(" x%d partitions", a.Partitions)
		}
		if a.TreatAsDense {
			extra += " (promoted to dense)"
		}
		kind := "dense"
		if a.Sparse {
			kind = "sparse"
		}
		s += fmt.Sprintf("  %-24s %-6s -> %s%s\n", a.Name, kind, a.Method, extra)
	}
	return s
}
