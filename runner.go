package parallax

import (
	"fmt"
	"time"

	"parallax/internal/cluster"
	"parallax/internal/core"
	"parallax/internal/engine"
	"parallax/internal/graph"
	"parallax/internal/metrics"
	"parallax/internal/models"
	"parallax/internal/partition"
	"parallax/internal/transform"
	"parallax/internal/transport"
)

// Runner executes synchronous data-parallel training steps for a
// transformed graph, the object parallax.get_runner returns in Fig. 3.
// Its trainer is a persistent runtime — worker goroutines and parameter
// servers live as long as the Runner — so call Close when done with it.
type Runner struct {
	g       *Graph
	trainer *transform.Trainer
	plan    *core.Plan
	workers int
	parts   int
	dist    *DistConfig
}

// GetRunner analyzes the single-GPU graph, builds the sparsity-aware plan
// for the given cluster, transforms the graph into per-GPU replicas plus
// parameter servers, and returns a Runner (§4.1's get_runner).
func GetRunner(g *Graph, resource ResourceInfo, cfg Config) (*Runner, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := resource.Validate(); err != nil {
		return nil, err
	}
	if cfg.NewOptimizer == nil {
		cfg.NewOptimizer = func() Optimizer { return NewSGD(0.1) }
	}

	vars := planVars(g, cfg.AlphaHint)
	parts := cfg.SparsePartitions
	if parts <= 0 {
		parts = searchPartitions(g, resource, cfg)
	}
	arch := cfg.Arch.coreArch()
	plan, err := core.BuildPlan(vars, core.Options{
		Arch:                arch,
		NumMachines:         resource.NumMachines(),
		SparsePartitions:    parts,
		AlphaDenseThreshold: cfg.AlphaDenseThreshold,
		SmartPlacement:      arch == core.ArchHybrid || arch == core.ArchOptPS,
	})
	if err != nil {
		return nil, err
	}
	localAgg := !cfg.DisableLocalAggregation &&
		(arch == core.ArchHybrid || arch == core.ArchOptPS)
	var fab transport.Fabric
	if cfg.Dist != nil {
		fab, err = transport.DialTCP(transport.TCPConfig{
			Topo: transport.Topology{
				Workers:         resource.TotalGPUs(),
				Machines:        resource.NumMachines(),
				MachineOfWorker: resource.WorkerMachines(),
			},
			Process:     cfg.Dist.Machine,
			Addrs:       cfg.Dist.Addrs,
			DialTimeout: cfg.Dist.DialTimeout,
		})
		if err != nil {
			return nil, err
		}
	}
	tr, err := transform.New(g, transform.Options{
		Plan:             plan,
		Resource:         resource,
		NewOptimizer:     cfg.NewOptimizer,
		DenseAgg:         cfg.DenseAgg,
		SparseAgg:        cfg.SparseAgg,
		LocalAggregation: localAgg,
		ClipNorm:         cfg.ClipNorm,
		Async:            cfg.Async,
		FusionBytes:      cfg.FusionBytes,
		Fabric:           fab,
	})
	if err != nil {
		return nil, err
	}
	return &Runner{g: g, trainer: tr, plan: plan, workers: resource.TotalGPUs(), parts: parts, dist: cfg.Dist}, nil
}

// planVars converts graph variables to planner inputs using the α hints.
func planVars(g *Graph, alphaHint map[string]float64) []core.VarInfo {
	var vars []core.VarInfo
	for _, v := range g.Variables() {
		width := int64(1)
		for _, d := range v.Shape[1:] {
			width *= int64(d)
		}
		sparse := g.GradKind(v) == graph.GradSparse
		alpha := 1.0
		if sparse {
			alpha = alphaHint[v.Name]
			if alpha <= 0 || alpha > 1 {
				alpha = 0.05
			}
		}
		vars = append(vars, core.VarInfo{
			Name: v.Name, Rows: int64(v.Shape[0]), Width: width,
			Sparse: sparse, Alpha: alpha, PartitionTarget: v.PartitionScope >= 0,
		})
	}
	return vars
}

// searchPartitions runs the §3.2 sampling search over the simulated
// cluster: a spec is derived from the user's graph, each candidate P is
// "trained for a few iterations" on the discrete-event engine, and the
// cost model picks the best count. (The real system samples on the
// physical cluster; the simulator stands in for it here, see DESIGN.md.)
func searchPartitions(g *Graph, resource ResourceInfo, cfg Config) int {
	hasTarget := false
	for _, v := range g.Variables() {
		if v.PartitionScope >= 0 && g.GradKind(v) == graph.GradSparse {
			hasTarget = true
			break
		}
	}
	if !hasTarget {
		return 1
	}
	batch := firstBatchDim(g)
	spec := models.SpecFromGraph(g, cfg.AlphaHint, batch)
	hw := cluster.DefaultHardware()
	measure := func(p int) float64 {
		res, err := engine.RunArch(spec, core.ArchHybrid, resource.NumMachines(),
			maxGPUs(resource), p, hw)
		if err != nil {
			return 1e9
		}
		return res.StepTime
	}
	maxP := 1
	for _, v := range g.Variables() {
		if v.PartitionScope >= 0 && v.Shape[0] > maxP {
			maxP = v.Shape[0]
		}
	}
	if maxP > 2048 {
		maxP = 2048
	}
	res, err := partition.Search(measure, resource.NumMachines(), maxP)
	if err != nil || res.BestP < 1 {
		return resource.NumMachines()
	}
	return res.BestP
}

func firstBatchDim(g *Graph) int {
	for _, n := range g.Nodes() {
		if n.Kind == graph.OpInput && len(n.Shape) > 0 {
			return n.Shape[0]
		}
	}
	return 1
}

func maxGPUs(r ResourceInfo) int {
	m := 1
	for i := 0; i < r.NumMachines(); i++ {
		if g := r.GPUsPerMachine(i); g > m {
			m = g
		}
	}
	return m
}

// Run executes one synchronous training step; feeds[w] is worker w's batch
// (use Shard to produce disjoint batches). It returns the mean loss.
func (r *Runner) Run(feeds []Feed) (float64, error) {
	return r.trainer.Step(feeds)
}

// StepStats is one training step's measurements (loss, wall-clock step
// time, gradient bytes pushed to the synchronization layer).
type StepStats = metrics.StepStats

// LoopStats aggregates StepStats over a whole RunLoop.
type LoopStats = metrics.LoopStats

// StepHook observes each step of RunLoop (logging, early-stop bookkeeping,
// metric export). Hooks run synchronously on the loop goroutine.
type StepHook func(StepStats)

// RunLoop drives steps against the persistent runtime for a token-model
// graph: each step it draws one batch from ds per worker (successive
// batches go to successive workers, so one endless stream is consumed as
// disjoint shards, the effect of parallax.shard in Fig. 3) and feeds them
// to the graph's "tokens" and "labels" inputs. Per-step metrics flow to
// the hooks and into the returned aggregate.
//
// Graphs with differently named inputs (or float inputs) should use
// RunLoopFeeds, which accepts an arbitrary feed source.
func (r *Runner) RunLoop(ds Dataset, steps int, hooks ...StepHook) (LoopStats, error) {
	for _, name := range []string{"tokens", "labels"} {
		if !hasIntInput(r.g, name) {
			return LoopStats{}, fmt.Errorf(
				"parallax: RunLoop needs an int input named %q (use RunLoopFeeds for custom feeds)", name)
		}
	}
	return r.RunLoopFeeds(func(step, worker int) (Feed, error) {
		b := ds.Next()
		return Feed{Ints: map[string][]int{"tokens": b.Tokens, "labels": b.Labels}}, nil
	}, steps, hooks...)
}

// RunLoopFeeds is RunLoop's generic core: next(step, worker) supplies
// worker w's feed for each step. It runs the loop, timing every step and
// collecting the trainer's per-step push-byte counter, and stops on the
// first error.
func (r *Runner) RunLoopFeeds(next func(step, worker int) (Feed, error), steps int, hooks ...StepHook) (LoopStats, error) {
	var stats LoopStats
	feeds := make([]Feed, r.workers)
	for s := 0; s < steps; s++ {
		for w := 0; w < r.workers; w++ {
			f, err := next(s, w)
			if err != nil {
				return stats, err
			}
			feeds[w] = f
		}
		start := time.Now()
		loss, err := r.trainer.Step(feeds)
		if err != nil {
			return stats, err
		}
		ph := r.trainer.PhaseStatsLastStep()
		wireSent, wireRecv := r.trainer.WireStatsLastStep()
		st := StepStats{
			Step:          s,
			Loss:          loss,
			StepTime:      time.Since(start),
			BytesPushed:   r.trainer.BytesPushedLastStep(),
			WireSentBytes: wireSent,
			WireRecvBytes: wireRecv,
			ComputeTime:   ph.Compute,
			CommTime:      ph.Comm,
			SyncWait:      ph.SyncWait,
		}
		stats.Observe(st)
		for _, h := range hooks {
			h(st)
		}
	}
	return stats, nil
}

func hasIntInput(g *Graph, name string) bool {
	for _, n := range g.Nodes() {
		if n.Kind == graph.OpInput && n.DType == graph.Int && n.Name == name {
			return true
		}
	}
	return false
}

// PhaseStats is the per-step phase breakdown of the slowest worker
// (compute, synchronization busy time, and the exposed non-overlapped
// part of it).
type PhaseStats = transform.PhaseStats

// PhaseStatsLastStep returns the previous step's phase breakdown. Valid
// after Run (RunLoop reports the same numbers through StepStats).
func (r *Runner) PhaseStatsLastStep() PhaseStats { return r.trainer.PhaseStatsLastStep() }

// Close stops the runner's persistent worker goroutines. The runner must
// not be used afterwards; Close is idempotent.
func (r *Runner) Close() { r.trainer.Close() }

// Workers returns the number of model replicas (total GPUs) across the
// whole cluster.
func (r *Runner) Workers() int { return r.workers }

// LocalWorkers returns the global ranks this process hosts — all workers
// in single-process mode, one machine's share under Config.Dist. The
// returned slice must not be mutated.
func (r *Runner) LocalWorkers() []int { return r.trainer.LocalWorkers() }

// SparsePartitions returns the partition count in effect (searched or
// configured).
func (r *Runner) SparsePartitions() int { return r.parts }

// VarValue returns the current full value of a variable (assembled from
// the servers for PS variables).
func (r *Runner) VarValue(name string) (*Dense, error) {
	return r.trainer.VarValue(name)
}

// Describe summarizes the plan: how each variable is synchronized and
// which transport the job runs over.
func (r *Runner) Describe() string {
	s := fmt.Sprintf("parallax: %d workers, %s architecture\n", r.workers, r.plan.Arch)
	if r.dist != nil {
		s += fmt.Sprintf("transport: tcp, agent for machine %d of %d (inproc within the agent)\n",
			r.dist.Machine, len(r.dist.Addrs))
	} else {
		s += "transport: inproc (single process)\n"
	}
	for _, a := range r.plan.Assignments {
		extra := ""
		if a.Method == core.MethodPS && a.Partitions > 1 {
			extra = fmt.Sprintf(" x%d partitions", a.Partitions)
		}
		if a.TreatAsDense {
			extra += " (promoted to dense)"
		}
		kind := "dense"
		if a.Sparse {
			kind = "sparse"
		}
		s += fmt.Sprintf("  %-24s %-6s -> %s%s\n", a.Name, kind, a.Method, extra)
	}
	return s
}
