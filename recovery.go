package parallax

// Failure recovery (DESIGN.md §12). A distributed session configured
// with WithAutoCheckpoint + WithRecovery survives a peer agent's death:
//
//  1. Detection — the TCP fabric's heartbeats and read deadlines turn a
//     dead peer into a rank-attributed ErrPeerFailed on every survivor
//     within the heartbeat window; the trainer converts the torn fabric
//     into a step error carrying that attribution.
//  2. Recovery — each survivor tears down its dead runtime, bumps the
//     fabric epoch recorded in the auto-checkpoint root, re-dials its
//     peers at the new epoch (waiting out the failed agent's restart),
//     restores the latest complete auto-checkpoint, and verifies
//     cluster-wide agreement on the restore step through the scalar
//     agreement collective. The Steps iterator then continues: steps
//     between the restore point and the failure replay from the feed
//     log with their emissions suppressed, so the caller sees every
//     step exactly once and the loss trajectory is bit-identical to an
//     uninterrupted run.
//  3. The failed agent rejoins by plain restart: Open with the same
//     AutoCheckpoint directory reads the new epoch and the same
//     checkpoint, and the rendezvous completes once all peers arrive.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"parallax/internal/chaos"
	"parallax/internal/checkpoint"
	"parallax/internal/data"
	"parallax/internal/transport"
)

// feedLog buffers the batches the step driver has drawn since the
// oldest auto-checkpoint a recovery might restore, so a survivor can
// replay the exact feeds of the steps it re-runs. The forward-only
// Resumable contract makes re-reading the dataset impossible; the log
// is the rewind. It is trimmed after every auto-save to the
// second-most-recent save's cursor — the restore point falls back to
// the previous checkpoint when a peer died mid-save, so that save's
// feeds must stay replayable.
type feedLog struct {
	base    int64 // dataset cursor of entries[0]
	pos     int   // next index to serve; == len(entries) means live
	entries []data.Batch
	saves   []int64 // cursors of the two most recent auto-saves
}

// next serves the replayed batch when rewound, otherwise draws live
// from ds and records the batch for future replays.
func (l *feedLog) next(ds Dataset) data.Batch {
	if l.pos < len(l.entries) {
		b := l.entries[l.pos]
		l.pos++
		return b
	}
	b := ds.Next()
	l.entries = append(l.entries, b)
	l.pos++
	return b
}

// noteSave records an auto-save at the given cursor and trims entries
// no recovery can need anymore.
func (l *feedLog) noteSave(cursor int64) {
	l.saves = append(l.saves, cursor)
	if len(l.saves) > 2 {
		l.saves = l.saves[len(l.saves)-2:]
	}
	if drop := l.saves[0] - l.base; drop > 0 {
		n := int(drop)
		if n > l.pos {
			n = l.pos
		}
		l.entries = append(l.entries[:0], l.entries[n:]...)
		l.base += int64(n)
		l.pos -= n
	}
}

// rewindTo repositions the log at the given dataset cursor.
func (l *feedLog) rewindTo(cursor int64) error {
	if cursor < l.base || cursor > l.base+int64(len(l.entries)) {
		return fmt.Errorf("parallax: restore cursor %d outside the replay window [%d, %d]",
			cursor, l.base, l.base+int64(len(l.entries)))
	}
	l.pos = int(cursor - l.base)
	return nil
}

// checkpointHooks are the fault-injection points around an
// auto-checkpoint write (crash-before-save / crash-after-save faults).
type checkpointHooks interface {
	BeforeSave(step int)
	AfterSave(step int)
}

// dialFabric establishes this agent's TCP fabric at the current fabric
// epoch. The epoch is read from the auto-checkpoint root (absent file =
// epoch 0); on ErrEpochMismatch — this agent raced a survivor's epoch
// bump — it re-reads and retries until the rendezvous deadline. The
// injector, when armed, wraps the fabric with the chaos harness.
func dialFabric(ctx context.Context, resource ResourceInfo, cfg Config, inj *chaos.Injector) (transport.Fabric, error) {
	d := cfg.Dist
	timeout := d.DialTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	deadline := time.Now().Add(timeout)
	listener := d.Listener
	for {
		epoch := 0
		if cfg.AutoCheckpoint.Dir != "" {
			var err error
			if epoch, err = checkpoint.ReadEpoch(cfg.AutoCheckpoint.Dir); err != nil {
				return nil, err
			}
		}
		fab, err := transport.DialTCP(ctx, transport.TCPConfig{
			Topo: transport.Topology{
				Workers:         resource.TotalGPUs(),
				Machines:        resource.NumMachines(),
				MachineOfWorker: resource.WorkerMachines(),
			},
			Process:     d.Machine,
			Addrs:       d.Addrs,
			Listener:    listener,
			DialTimeout: time.Until(deadline),
			Policy:      cfg.Compression,
			Epoch:       epoch,
			Elastic:     cfg.Elastic,
		})
		if err == nil {
			if inj != nil {
				return inj.Wrap(fab), nil
			}
			return fab, nil
		}
		if !errors.Is(err, ErrEpochMismatch) || time.Now().After(deadline) || ctx.Err() != nil {
			return nil, err
		}
		// The fabric consumed (and closed) the listener; retries rebind
		// from the address list.
		listener = nil
		time.Sleep(250 * time.Millisecond)
	}
}

// verifyJoin runs one scalar agreement right after a recovery-enabled
// distributed session joins its fabric epoch: every agent proposes its
// restored step count and checks the cluster maximum equals it. An
// agent that restored an older checkpoint than its peers fails here
// (and its failure propagates to the rest), instead of silently
// diverging. Every agent under the same configuration performs exactly
// one verifyJoin per fabric generation, keeping the collective schedule
// aligned.
func (s *Session) verifyJoin() error {
	if s.dist == nil || !s.cfg.Recovery.Enabled || s.cfg.AutoCheckpoint.Dir == "" {
		return nil
	}
	step := s.trainer.StepCount()
	agreed, err := s.trainer.AgreeScalarMax(float64(step))
	if err != nil {
		return err
	}
	if int(agreed) != step {
		return fmt.Errorf("parallax: %w: this agent restored step %d but a peer is at step %d",
			ErrTopologyMismatch, step, int(agreed))
	}
	return nil
}

// autoEvery returns the auto-checkpoint cadence, 0 when disabled.
func (s *Session) autoEvery() int {
	if s.cfg.AutoCheckpoint.Dir == "" {
		return 0
	}
	if s.cfg.AutoCheckpoint.EveryN <= 0 {
		return 10
	}
	return s.cfg.AutoCheckpoint.EveryN
}

// maybeAutoSave writes the periodic checkpoint when the step count
// crosses the cadence. The schedule is a pure function of the step
// count, so every agent saves between the same steps without
// coordination — and a replayed step after a recovery re-saves the
// identical bytes over the identical directory.
func (s *Session) maybeAutoSave() error {
	every := s.autoEvery()
	step := s.trainer.StepCount()
	if every == 0 || step == 0 || step%every != 0 {
		return nil
	}
	root := s.cfg.AutoCheckpoint.Dir
	dir := checkpoint.StepDir(root, step)
	if s.saveHook != nil {
		s.saveHook.BeforeSave(step)
	}
	if err := s.Save(dir); err != nil {
		return fmt.Errorf("parallax: auto-checkpoint at step %d: %w", step, err)
	}
	if s.saveHook != nil {
		s.saveHook.AfterSave(step)
	}
	// One agent prunes (machine 0's host — always present); racing
	// removals from every agent would trip over each other's partial
	// deletes on a shared filesystem.
	for _, m := range s.trainer.LocalMachines() {
		if m == 0 {
			keep := s.cfg.AutoCheckpoint.Keep
			if keep <= 0 {
				keep = 3
			}
			if err := checkpoint.PruneAuto(root, s.resource.NumMachines(), keep); err != nil {
				return err
			}
			break
		}
	}
	if s.replay != nil {
		s.replay.noteSave(s.cursor)
	}
	return nil
}

// recoverable reports whether the driver should attempt in-place
// recovery for err rather than surfacing it.
func (d *stepDriver) recoverable(err error) bool {
	s := d.s
	if !errors.Is(err, ErrPeerFailed) {
		return false
	}
	if s.dist == nil || !s.cfg.Recovery.Enabled || s.cfg.AutoCheckpoint.Dir == "" {
		return false
	}
	// Recovery rewinds the step counter, which only the unbounded
	// iterators tolerate; it also needs the feed log to replay from.
	if d.limit != math.MaxInt || s.replay == nil {
		return false
	}
	// Under an elastic shrink policy a self-attributed failure is
	// terminal: the survivors will re-form without this machine, so
	// recovering in place would redial a cluster that no longer lists
	// it. Without AllowShrink the peers wait, and the in-place path
	// (kill + instant restart) still applies.
	if s.cfg.Elastic && s.cfg.Recovery.AllowShrink {
		if pf := peerFailureOf(err); pf != nil && pf.Rank == s.dist.Machine {
			return false
		}
	}
	max := s.cfg.Recovery.MaxRecoveries
	if max <= 0 {
		max = 3
	}
	return s.recoveries < max
}

// recover performs one in-place recovery; on success the driver
// continues its loop (replaying suppressed steps up to the failure
// point), on failure the combined error is surfaced.
func (d *stepDriver) recover(cause error) error {
	s := d.s
	start := time.Now()
	if failed, ok := s.shrinkTarget(cause); ok {
		// Elastic shrink (elastic.go): shed the dead machine instead of
		// waiting out its restart. The world size changes, so the
		// driver's agreement flag must track the rebuilt trainer.
		if err := s.shrinkRecover(d.ctx, failed); err != nil {
			return fmt.Errorf("parallax: elastic shrink after peer failure gave up: %v (original failure: %w)", err, cause)
		}
		d.agree = s.trainer.Distributed()
		s.lastRecovery = time.Since(start)
		return nil
	}
	if err := s.recoverInPlace(d.ctx); err != nil {
		return fmt.Errorf("parallax: recovery from peer failure gave up: %v (original failure: %w)", err, cause)
	}
	s.lastRecovery = time.Since(start)
	return nil
}

// recoverInPlace rebuilds this agent's runtime at the next fabric epoch
// and restores the latest complete auto-checkpoint; see the file
// comment for the protocol.
func (s *Session) recoverInPlace(ctx context.Context) error {
	root := s.cfg.AutoCheckpoint.Dir
	machines := s.resource.NumMachines()
	step, sdir, err := checkpoint.LatestComplete(root, machines)
	if err != nil {
		return err
	}
	if step < 0 {
		return fmt.Errorf("parallax: no complete auto-checkpoint under %s to recover from", root)
	}
	// Tear the dead runtime down first: the fabric is already closed
	// (the failure did that), but the worker/server goroutines and the
	// listener port must be gone before the re-rendezvous.
	s.trainer.Close()

	epoch := s.epoch + 1
	if err := checkpoint.WriteEpoch(root, epoch); err != nil {
		return err
	}
	machine := s.dist.Machine
	meta, recs, err := checkpoint.ReadShard(sdir, machine)
	if err != nil {
		return err
	}
	// Rebuild through the normal restore path, with a rendezvous window
	// wide enough for the failed agent's supervisor to restart it. The
	// listener (if any) died with the old fabric; rebind from Addrs.
	cfg := s.cfg
	dc := *s.cfg.Dist
	dc.Listener = nil
	dc.DialTimeout = s.cfg.Recovery.RedialTimeout
	if dc.DialTimeout <= 0 {
		dc.DialTimeout = 2 * time.Minute
	}
	cfg.Dist = &dc
	ns, err := open(ctx, s.g, s.resource, cfg, &restoreSpec{meta: meta}, s.chaos)
	if err != nil {
		return err
	}
	if err := ns.install(sdir, machine, meta, recs); err != nil {
		ns.Close()
		return err
	}
	if err := ns.verifyJoin(); err != nil {
		ns.Close()
		return err
	}
	// Adopt the rebuilt runtime and rewind the feed log to the restore
	// point; the driver replays the steps in between with their
	// emissions suppressed. The live dataset keeps its position — the
	// replayed feeds come from the log, not from FastForward.
	if err := s.replay.rewindTo(meta.Cursor); err != nil {
		ns.Close()
		return err
	}
	s.trainer = ns.trainer
	s.plan = ns.plan
	s.parts = ns.parts
	s.decision = ns.decision
	s.tunePending = ns.tunePending
	s.saveHook = ns.saveHook
	s.cursor = meta.Cursor
	s.pendingSkip = 0
	s.epoch = epoch
	s.recoveries++
	return nil
}

// Epoch returns the fabric generation the session is currently running
// at: 0 until a failure recovery, +1 per re-rendezvous.
func (s *Session) Epoch() int { return s.epoch }

// Recoveries returns how many in-place failure recoveries this session
// has performed.
func (s *Session) Recoveries() int { return s.recoveries }

// LastRecoveryDuration returns the wall-clock cost of the most recent
// in-place recovery (teardown through re-rendezvous, restore, and
// verification), or 0 if none happened.
func (s *Session) LastRecoveryDuration() time.Duration { return s.lastRecovery }
