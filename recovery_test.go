package parallax

// Tests for the failure-recovery protocol (DESIGN.md §12): periodic
// auto-checkpoints, auto-resume on restart, and — the tentpole — a
// chaos-killed agent mid-run with both survivors recovering in place at
// the next fabric epoch, the loss trajectory staying bit-identical to
// an uninterrupted run, and every step emitted exactly once.

import (
	"context"
	"math"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"parallax/internal/checkpoint"
	"parallax/internal/data"
)

func TestFeedLogTrimAndRewind(t *testing.T) {
	ds := data.NewZipfText(150, 8, 1, 1.0, 5)
	l := &feedLog{saves: []int64{0}}
	var drawn []data.Batch
	for i := 0; i < 10; i++ {
		drawn = append(drawn, l.next(ds))
	}
	// Rewind to the start and replay: identical batches, no new draws.
	if err := l.rewindTo(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		b := l.next(ds)
		if &b.Tokens[0] != &drawn[i].Tokens[0] {
			t.Fatalf("replayed batch %d is not the logged batch", i)
		}
	}
	// A save at cursor 4 then 8 trims everything before cursor 4 (the
	// second-most-recent save stays replayable).
	l.noteSave(4)
	l.noteSave(8)
	if l.base != 4 || len(l.entries) != 6 {
		t.Fatalf("after trims base %d entries %d, want 4 and 6", l.base, len(l.entries))
	}
	if err := l.rewindTo(4); err != nil {
		t.Fatal(err)
	}
	b := l.next(ds)
	if &b.Tokens[0] != &drawn[4].Tokens[0] {
		t.Fatal("rewind to the older save replays the wrong batch")
	}
	if err := l.rewindTo(3); err == nil {
		t.Fatal("rewind before the replay window must fail")
	}
	if err := l.rewindTo(11); err == nil {
		t.Fatal("rewind past the live position must fail")
	}
}

// TestSessionAutoCheckpointResume: a session with WithAutoCheckpoint
// saves periodically without any Save call; a fresh Open on the same
// root resumes from the latest complete save, and the continued run
// matches an uninterrupted one bit for bit.
func TestSessionAutoCheckpointResume(t *testing.T) {
	const every, total = 4, 10
	refLosses, refEmb := runSessionSteps(t, total, momentumOpts()...)

	root := t.TempDir()
	opts := append(momentumOpts(), WithAutoCheckpoint(root, every))
	s, err := Open(context.Background(), buildAPIModel(8, 150), Uniform(2, 2), opts...)
	if err != nil {
		t.Fatal(err)
	}
	for st, err := range s.Steps(context.Background(), data.NewZipfText(150, 8, 1, 1.0, 5)) {
		if err != nil {
			t.Fatal(err)
		}
		if st.Step == total-1 {
			break
		}
	}
	s.Close()
	step, _, err := checkpoint.LatestComplete(root, 2)
	if err != nil || step != 8 {
		t.Fatalf("latest auto-save at step %d (err %v), want 8", step, err)
	}

	s2, err := Open(context.Background(), buildAPIModel(8, 150), Uniform(2, 2), opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.StepCount() != 8 {
		t.Fatalf("auto-resumed StepCount = %d, want 8", s2.StepCount())
	}
	for st, err := range s2.Steps(context.Background(), data.NewZipfText(150, 8, 1, 1.0, 5)) {
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(st.Loss) != math.Float64bits(refLosses[st.Step]) {
			t.Fatalf("auto-resumed step %d loss %x, reference %x",
				st.Step, math.Float64bits(st.Loss), math.Float64bits(refLosses[st.Step]))
		}
		if st.Step == total-1 {
			break
		}
	}
	emb, err := s2.VarValue("embedding")
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range refEmb {
		if math.Float32bits(emb.Data()[i]) != math.Float32bits(v) {
			t.Fatalf("embedding[%d] diverged after auto-resume", i)
		}
	}
}

// recoveryTCPPair opens the two agents of a 2×2 TCP cluster with
// per-process option hooks (so one agent can carry the chaos spec).
func recoveryTCPPair(t *testing.T, perProc func(p int, dc *DistConfig) []Option) [2]*Session {
	t.Helper()
	ln0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{ln0.Addr().String(), "127.0.0.1:0"}
	var sessions [2]*Session
	oerrs := [2]error{}
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			dc := DistConfig{Machine: p, Addrs: addrs, DialTimeout: 10 * time.Second}
			if p == 0 {
				dc.Listener = ln0
			}
			opts := perProc(p, &dc)
			sessions[p], oerrs[p] = Open(context.Background(), buildAPIModel(8, 150), Uniform(2, 2),
				append(opts, WithDistConfig(dc))...)
		}(p)
	}
	wg.Wait()
	for p, err := range oerrs {
		if err != nil {
			t.Fatalf("agent %d: %v", p, err)
		}
	}
	return sessions
}

// TestSessionChaosKillRecoversBitIdentical is the recovery tentpole: a
// chaos fault kills agent 1's fabric at step 6 of a 2-agent TCP run.
// Both agents recover in place — epoch bump, re-rendezvous, restore of
// the step-4 auto-checkpoint, feed-log replay — and the run continues.
// Every step is emitted exactly once per agent, the losses are
// bit-identical to an uninterrupted single-process run, and the stats
// report the recovery.
func TestSessionChaosKillRecoversBitIdentical(t *testing.T) {
	const every, total = 4, 12
	refLosses, _ := runSessionSteps(t, total, momentumOpts()...)

	base := runtime.NumGoroutine()
	root := t.TempDir()
	sessions := recoveryTCPPair(t, func(p int, dc *DistConfig) []Option {
		if p == 1 {
			dc.Chaos = "kill@6"
			dc.ChaosSeed = 1
		}
		return append(momentumOpts(),
			WithAutoCheckpoint(root, every),
			WithRecovery(RecoveryPolicy{Enabled: true, RedialTimeout: 30 * time.Second}))
	})

	type result struct {
		losses map[int]float64
		last   StepStats
		err    error
	}
	res := [2]result{}
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			r := result{losses: map[int]float64{}}
			defer func() { res[p] = r }()
			for st, err := range sessions[p].Steps(context.Background(), data.NewZipfText(150, 8, 1, 1.0, 5)) {
				if err != nil {
					r.err = err
					return
				}
				if _, dup := r.losses[st.Step]; dup {
					r.err = errDupStep(st.Step)
					return
				}
				r.losses[st.Step] = st.Loss
				r.last = st
				if st.Step == total-1 {
					return
				}
			}
		}(p)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("recovery did not complete")
	}

	for p := 0; p < 2; p++ {
		if res[p].err != nil {
			t.Fatalf("agent %d: %v", p, res[p].err)
		}
		if len(res[p].losses) != total {
			t.Fatalf("agent %d emitted %d steps, want %d (each exactly once)", p, len(res[p].losses), total)
		}
		for step, loss := range res[p].losses {
			if math.Float64bits(loss) != math.Float64bits(refLosses[step]) {
				t.Fatalf("agent %d step %d loss %x, uninterrupted reference %x",
					p, step, math.Float64bits(loss), math.Float64bits(refLosses[step]))
			}
		}
		if n := sessions[p].Recoveries(); n != 1 {
			t.Fatalf("agent %d recoveries = %d, want 1", p, n)
		}
		if e := sessions[p].Epoch(); e != 1 {
			t.Fatalf("agent %d epoch = %d, want 1", p, e)
		}
		if res[p].last.Epoch != 1 || res[p].last.RecoveryCount != 1 {
			t.Fatalf("agent %d final stats epoch %d recoveries %d, want 1 and 1",
				p, res[p].last.Epoch, res[p].last.RecoveryCount)
		}
		if d := sessions[p].LastRecoveryDuration(); d <= 0 {
			t.Fatalf("agent %d recovery duration %v, want > 0", p, d)
		}
	}
	if e, err := checkpoint.ReadEpoch(root); err != nil || e != 1 {
		t.Fatalf("recorded epoch %d (err %v), want 1", e, err)
	}
	sessions[0].Close()
	sessions[1].Close()
	waitSessionGoroutines(t, base)
}

type errDupStep int

func (e errDupStep) Error() string { return "step emitted twice" }
