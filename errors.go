package parallax

import "parallax/internal/errs"

// Sentinel errors of the public API. Every error the runtime returns
// for one of these conditions wraps the corresponding sentinel, so
// callers branch with errors.Is instead of matching message strings:
//
//	if errors.Is(err, parallax.ErrTopologyMismatch) { ... }
var (
	// ErrClosed marks an operation against a closed Session (or Runner):
	// stepping, saving, or resharding after Close. It also surfaces when
	// the wire transport shuts down underneath an in-flight
	// parameter-server call.
	ErrClosed = errs.ErrClosed

	// ErrTopologyMismatch marks a disagreement between two descriptions
	// of the cluster that must be identical: a transport fabric whose
	// endpoint layout differs from the resource specification, or a
	// checkpoint whose topology or plan fingerprint does not match the
	// session being restored (different machine/GPU layout, different
	// variables, different partitioning).
	ErrTopologyMismatch = errs.ErrTopologyMismatch

	// ErrCheckpointVersion marks a checkpoint file whose magic bytes or
	// format version this build cannot read.
	ErrCheckpointVersion = errs.ErrCheckpointVersion

	// ErrCompressionMismatch marks a disagreement over the wire
	// compression policy: a distributed peer configured with a different
	// policy (caught at the TCP rendezvous), or a checkpoint restored
	// under a policy other than the one that wrote it.
	ErrCompressionMismatch = errs.ErrCompressionMismatch

	// ErrPeerFailed marks the death of a peer agent: a heartbeat timeout,
	// a broken connection, or a peer-down notification relayed by another
	// survivor. The chain usually carries a *PeerFailure with the failed
	// rank and fabric epoch:
	//
	//	var pf *parallax.PeerFailure
	//	if errors.As(err, &pf) { log.Printf("rank %d died", pf.Rank) }
	//
	// With WithRecovery and WithAutoCheckpoint configured, the Steps loop
	// recovers from this condition instead of surfacing it.
	ErrPeerFailed = errs.ErrPeerFailed

	// ErrEpochMismatch marks a rendezvous between agents that disagree
	// about the fabric generation — one side recovered into a newer epoch
	// while the other still carries a stale one. The stale side re-reads
	// the epoch record in the auto-checkpoint directory and retries.
	ErrEpochMismatch = errs.ErrEpochMismatch

	// ErrLeft marks this agent's clean voluntary departure from an
	// elastic cluster (Session.Leave): survivors agreed on a membership
	// without this machine and resharded its parameter-server state, and
	// the session closed itself. Steps returns an error wrapping ErrLeft
	// exactly once; treat it as a normal shutdown, not a failure.
	ErrLeft = errs.ErrLeft
)

// PeerFailure is the rank-attributed failure record produced by the
// transport when a peer agent dies. It matches ErrPeerFailed under
// errors.Is and unwraps to the raw symptom (EOF, heartbeat timeout).
type PeerFailure = errs.PeerFailure
