package parallax

import "parallax/internal/errs"

// Sentinel errors of the public API. Every error the runtime returns
// for one of these conditions wraps the corresponding sentinel, so
// callers branch with errors.Is instead of matching message strings:
//
//	if errors.Is(err, parallax.ErrTopologyMismatch) { ... }
var (
	// ErrClosed marks an operation against a closed Session (or Runner):
	// stepping, saving, or resharding after Close. It also surfaces when
	// the wire transport shuts down underneath an in-flight
	// parameter-server call.
	ErrClosed = errs.ErrClosed

	// ErrTopologyMismatch marks a disagreement between two descriptions
	// of the cluster that must be identical: a transport fabric whose
	// endpoint layout differs from the resource specification, or a
	// checkpoint whose topology or plan fingerprint does not match the
	// session being restored (different machine/GPU layout, different
	// variables, different partitioning).
	ErrTopologyMismatch = errs.ErrTopologyMismatch

	// ErrCheckpointVersion marks a checkpoint file whose magic bytes or
	// format version this build cannot read.
	ErrCheckpointVersion = errs.ErrCheckpointVersion

	// ErrCompressionMismatch marks a disagreement over the wire
	// compression policy: a distributed peer configured with a different
	// policy (caught at the TCP rendezvous), or a checkpoint restored
	// under a policy other than the one that wrote it.
	ErrCompressionMismatch = errs.ErrCompressionMismatch
)
