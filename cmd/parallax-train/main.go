// Command parallax-train demonstrates real distributed training through
// the public Session API: a small language model with a sparse embedding
// trains on in-process workers under the hybrid architecture, printing
// the loss curve and the per-variable synchronization plan. Ctrl-C
// drains the in-flight step and exits cleanly (writing a final
// checkpoint when -checkpoint is set); -resume continues a checkpointed
// run bit-identically.
//
// Usage:
//
//	parallax-train [-machines 2] [-gpus 2] [-vocab 2000] [-steps 100]
//	               [-arch hybrid|ar|ps|optps] [-async] [-clip 5.0]
//	               [-compression none|f16|bf16|topk[=FRAC]]
//	               [-checkpoint dir [-resume]]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"parallax"
	"parallax/internal/buildinfo"
	"parallax/internal/jobspec"
)

func main() {
	spec := jobspec.Default()
	// parallax-train measures the embedding's real α before opening; the
	// agent binary skips this so every agent plans from identical inputs.
	spec.MeasureAlpha = true
	machines := flag.Int("machines", 2, "machines")
	gpus := flag.Int("gpus", 2, "GPUs per machine")
	spec.BindCommonFlags(flag.CommandLine)
	flag.BoolVar(&spec.Async, "async", false, "asynchronous PS updates")
	ckpt := flag.String("checkpoint", "", "checkpoint directory: written on exit (normal completion or Ctrl-C drain)")
	resume := flag.Bool("resume", false, "resume from -checkpoint instead of initializing")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Get())
		return
	}

	spec.Machines, spec.GPUs = *machines, *gpus
	if err := spec.Validate(); err != nil {
		log.Fatal(err)
	}
	if *resume && *ckpt == "" {
		log.Fatal("-resume requires -checkpoint")
	}
	policy, err := parallax.ParseCompression(spec.Compression)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	g := spec.Graph()
	resources := spec.Resources()
	ds := spec.Dataset()
	opts, err := spec.Options()
	if err != nil {
		log.Fatal(err)
	}

	var sess *parallax.Session
	if *resume {
		sess, err = parallax.OpenFromCheckpoint(ctx, *ckpt, g, resources, opts...)
	} else {
		sess, err = parallax.Open(ctx, g, resources, opts...)
	}
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	fmt.Print(sess.Describe())
	fmt.Print(policy.Describe())
	fmt.Printf("measured alpha(embedding) = %.4f, sparse partitions = %d\n",
		spec.Alpha(), sess.SparsePartitions())
	if *resume {
		fmt.Printf("resumed from %s at step %d\n", *ckpt, sess.StepCount())
	}
	fmt.Println()

	if sess.StepCount() >= spec.Steps {
		fmt.Printf("nothing to do: checkpoint at step %d >= -steps %d\n", sess.StepCount(), spec.Steps)
		return
	}

	// The streaming step driver: one endless stream, consumed as disjoint
	// per-worker shards, each iteration yielding the step's metrics.
	var stats parallax.LoopStats
	interrupted := false
	for st, err := range sess.Steps(ctx, ds) {
		if err != nil {
			if errors.Is(err, context.Canceled) {
				interrupted = true
				break
			}
			log.Fatal(err)
		}
		stats.Observe(st)
		if st.Step%10 == 0 || st.Step == spec.Steps-1 {
			fmt.Printf("step %4d  loss %.4f  (%v, %d KB pushed)\n",
				st.Step, st.Loss, st.StepTime.Round(10*time.Microsecond), st.BytesPushed/1024)
		}
		if st.Step >= spec.Steps-1 {
			break
		}
	}
	if *ckpt != "" {
		if err := sess.Save(*ckpt); err != nil {
			log.Fatalf("checkpoint: %v", err)
		}
		fmt.Printf("checkpoint saved to %s at step %d\n", *ckpt, sess.StepCount())
	}
	if interrupted {
		fmt.Printf("interrupted: drained cleanly after step %d\n", sess.StepCount()-1)
		return
	}
	fmt.Printf("\n%s\n", stats)
}
