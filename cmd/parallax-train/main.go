// Command parallax-train demonstrates real distributed training through
// the public Session API: a small language model with a sparse embedding
// trains on in-process workers under the hybrid architecture, printing
// the loss curve and the per-variable synchronization plan. Ctrl-C
// drains the in-flight step and exits cleanly (writing a final
// checkpoint when -checkpoint is set); -resume continues a checkpointed
// run bit-identically.
//
// Usage:
//
//	parallax-train [-machines 2] [-gpus 2] [-vocab 2000] [-steps 100]
//	               [-arch hybrid|ar|ps|optps] [-async] [-clip 5.0]
//	               [-compression none|f16|bf16|topk[=FRAC]]
//	               [-checkpoint dir [-resume]]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"parallax"
	"parallax/internal/data"
)

func main() {
	machines := flag.Int("machines", 2, "machines")
	gpus := flag.Int("gpus", 2, "GPUs per machine")
	vocab := flag.Int("vocab", 2000, "vocabulary size")
	batch := flag.Int("batch", 32, "batch size per GPU")
	steps := flag.Int("steps", 100, "run until this many total steps have completed (checkpointed steps included)")
	archFlag := flag.String("arch", "hybrid", "architecture: hybrid|ar|ps|optps")
	async := flag.Bool("async", false, "asynchronous PS updates")
	clip := flag.Float64("clip", 0, "global-norm clip (0 = off)")
	lr := flag.Float64("lr", 0.5, "learning rate")
	compression := flag.String("compression", "none",
		"wire compression: none|f16|bf16|topk[=FRAC] (a -resume must match the checkpoint's policy)")
	ckpt := flag.String("checkpoint", "", "checkpoint directory: written on exit (normal completion or Ctrl-C drain)")
	resume := flag.Bool("resume", false, "resume from -checkpoint instead of initializing")
	flag.Parse()

	arch := map[string]parallax.Arch{
		"hybrid": parallax.Hybrid, "ar": parallax.AllReduceOnly,
		"ps": parallax.PSOnly, "optps": parallax.OptimizedPS,
	}[*archFlag]
	if *resume && *ckpt == "" {
		log.Fatal("-resume requires -checkpoint")
	}
	policy, err := parallax.ParseCompression(*compression)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rng := parallax.NewRNG(42)
	g := parallax.NewGraph()
	tokens := g.Input("tokens", parallax.Int, *batch)
	labels := g.Input("labels", parallax.Int, *batch)
	var emb *parallax.Node
	g.InPartitioner(func() {
		emb = g.Variable("embedding", rng.RandN(0.1, *vocab, 32))
	})
	w1 := g.Variable("hidden/kernel", rng.RandN(0.1, 32, 64))
	b1 := g.Variable("hidden/bias", parallax.NewDense(64))
	w2 := g.Variable("softmax/kernel", rng.RandN(0.1, 64, *vocab))
	h := g.Tanh(g.AddBias(g.MatMul(g.Gather(emb, tokens), w1), b1))
	g.SoftmaxCE(g.MatMul(h, w2), labels)

	resources := parallax.Uniform(*machines, *gpus)
	ds := data.NewZipfText(*vocab, *batch, 1, 1.0, 7)
	alpha := parallax.MeasureAlpha(data.NewZipfText(*vocab, *batch, 1, 1.0, 7), *vocab, 5)

	opts := []parallax.Option{
		parallax.WithArch(arch),
		parallax.WithOptimizer(func() parallax.Optimizer { return parallax.NewSGD(float32(*lr)) }),
		parallax.WithAlphaHints(map[string]float64{"embedding": alpha}),
		parallax.WithClipNorm(*clip),
		parallax.WithCompression(policy),
	}
	if *async {
		opts = append(opts, parallax.WithAsync())
	}
	var sess *parallax.Session
	if *resume {
		sess, err = parallax.OpenFromCheckpoint(ctx, *ckpt, g, resources, opts...)
	} else {
		sess, err = parallax.Open(ctx, g, resources, opts...)
	}
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	fmt.Print(sess.Describe())
	fmt.Print(policy.Describe())
	fmt.Printf("measured alpha(embedding) = %.4f, sparse partitions = %d\n",
		alpha, sess.SparsePartitions())
	if *resume {
		fmt.Printf("resumed from %s at step %d\n", *ckpt, sess.StepCount())
	}
	fmt.Println()

	if sess.StepCount() >= *steps {
		fmt.Printf("nothing to do: checkpoint at step %d >= -steps %d\n", sess.StepCount(), *steps)
		return
	}

	// The streaming step driver: one endless stream, consumed as disjoint
	// per-worker shards, each iteration yielding the step's metrics.
	var stats parallax.LoopStats
	interrupted := false
	for st, err := range sess.Steps(ctx, ds) {
		if err != nil {
			if errors.Is(err, context.Canceled) {
				interrupted = true
				break
			}
			log.Fatal(err)
		}
		stats.Observe(st)
		if st.Step%10 == 0 || st.Step == *steps-1 {
			fmt.Printf("step %4d  loss %.4f  (%v, %d KB pushed)\n",
				st.Step, st.Loss, st.StepTime.Round(10*time.Microsecond), st.BytesPushed/1024)
		}
		if st.Step >= *steps-1 {
			break
		}
	}
	if *ckpt != "" {
		if err := sess.Save(*ckpt); err != nil {
			log.Fatalf("checkpoint: %v", err)
		}
		fmt.Printf("checkpoint saved to %s at step %d\n", *ckpt, sess.StepCount())
	}
	if interrupted {
		fmt.Printf("interrupted: drained cleanly after step %d\n", sess.StepCount()-1)
		return
	}
	fmt.Printf("\n%s\n", stats)
}
