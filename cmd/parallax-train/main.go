// Command parallax-train demonstrates real distributed training through
// the public API: a small language model with a sparse embedding trains on
// in-process workers under the hybrid architecture, printing the loss
// curve and the per-variable synchronization plan.
//
// Usage:
//
//	parallax-train [-machines 2] [-gpus 2] [-vocab 2000] [-steps 100]
//	               [-arch hybrid|ar|ps|optps] [-async] [-clip 5.0]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"parallax"
	"parallax/internal/data"
)

func main() {
	machines := flag.Int("machines", 2, "machines")
	gpus := flag.Int("gpus", 2, "GPUs per machine")
	vocab := flag.Int("vocab", 2000, "vocabulary size")
	batch := flag.Int("batch", 32, "batch size per GPU")
	steps := flag.Int("steps", 100, "training steps")
	archFlag := flag.String("arch", "hybrid", "architecture: hybrid|ar|ps|optps")
	async := flag.Bool("async", false, "asynchronous PS updates")
	clip := flag.Float64("clip", 0, "global-norm clip (0 = off)")
	lr := flag.Float64("lr", 0.5, "learning rate")
	flag.Parse()

	arch := map[string]parallax.Arch{
		"hybrid": parallax.Hybrid, "ar": parallax.AllReduceOnly,
		"ps": parallax.PSOnly, "optps": parallax.OptimizedPS,
	}[*archFlag]

	rng := parallax.NewRNG(42)
	g := parallax.NewGraph()
	tokens := g.Input("tokens", parallax.Int, *batch)
	labels := g.Input("labels", parallax.Int, *batch)
	var emb *parallax.Node
	g.InPartitioner(func() {
		emb = g.Variable("embedding", rng.RandN(0.1, *vocab, 32))
	})
	w1 := g.Variable("hidden/kernel", rng.RandN(0.1, 32, 64))
	b1 := g.Variable("hidden/bias", parallax.NewDense(64))
	w2 := g.Variable("softmax/kernel", rng.RandN(0.1, 64, *vocab))
	h := g.Tanh(g.AddBias(g.MatMul(g.Gather(emb, tokens), w1), b1))
	g.SoftmaxCE(g.MatMul(h, w2), labels)

	resources := parallax.Uniform(*machines, *gpus)
	ds := data.NewZipfText(*vocab, *batch, 1, 1.0, 7)
	alpha := parallax.MeasureAlpha(data.NewZipfText(*vocab, *batch, 1, 1.0, 7), *vocab, 5)

	runner, err := parallax.GetRunner(g, resources, parallax.Config{
		Arch:         arch,
		NewOptimizer: func() parallax.Optimizer { return parallax.NewSGD(float32(*lr)) },
		AlphaHint:    map[string]float64{"embedding": alpha},
		Async:        *async,
		ClipNorm:     *clip,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer runner.Close()
	fmt.Print(runner.Describe())
	fmt.Printf("measured alpha(embedding) = %.4f, sparse partitions = %d\n\n",
		alpha, runner.SparsePartitions())

	// The persistent runtime's loop driver: one endless stream, consumed
	// as disjoint per-worker shards, with per-step metrics via the hook.
	stats, err := runner.RunLoop(ds, *steps, func(s parallax.StepStats) {
		if s.Step%10 == 0 || s.Step == *steps-1 {
			fmt.Printf("step %4d  loss %.4f  (%v, %d KB pushed)\n",
				s.Step, s.Loss, s.StepTime.Round(10*time.Microsecond), s.BytesPushed/1024)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s\n", stats)
}
