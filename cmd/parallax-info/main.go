// Command parallax-info inspects the paper models and the sparsity-aware
// plan: per-variable sizes, α values, Table 3's network-transfer formulas
// evaluated for the configured cluster, the §3.2 partition decision
// (searched or fixed, with the sampled points and the fitted cost-model
// θ), and the per-route shard map of the hybrid plan each model gets.
//
// Usage:
//
//	parallax-info [-model all|resnet50|inception|lm|nmt] [-machines 8] [-gpus 6] [-partitions 128]
//
// With -partitions 0 (the default) the §3.2 sampling search runs over
// the simulated cluster and the full decision is printed; a positive
// -partitions fixes the count instead.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"parallax"
	"parallax/internal/buildinfo"
	"parallax/internal/cluster"
	"parallax/internal/core"
	"parallax/internal/engine"
	"parallax/internal/metrics"
	"parallax/internal/models"
	"parallax/internal/partition"
)

func main() {
	model := flag.String("model", "all", "model: all|resnet50|inception|lm|nmt")
	machines := flag.Int("machines", 8, "machines")
	gpus := flag.Int("gpus", 6, "GPUs per machine")
	partitions := flag.Int("partitions", 0, "sparse partitions (0 = run the §3.2 search on the simulated cluster)")
	compression := flag.String("compression", "none", "wire compression policy to describe: none|f16|bf16|topk[=FRAC]")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Get())
		return
	}

	policy, err := parallax.ParseCompression(*compression)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	specs := map[string]*models.Spec{
		"resnet50": models.ResNet50(), "inception": models.InceptionV3(),
		"lm": models.LM(), "nmt": models.NMT(),
	}
	var order []string
	if *model == "all" {
		order = []string{"resnet50", "inception", "lm", "nmt"}
	} else if _, ok := specs[*model]; ok {
		order = []string{*model}
	} else {
		fmt.Fprintf(os.Stderr, "unknown model %q\n", *model)
		os.Exit(2)
	}

	hw := cluster.DefaultHardware()
	for _, name := range order {
		spec := specs[name]
		fmt.Printf("== %s ==\n", spec.Name)
		fmt.Printf("dense %.1fM elements, sparse %.1fM elements, alpha_model %.3f\n",
			float64(spec.DenseElements())/1e6, float64(spec.SparseElements())/1e6, spec.AlphaModel())
		fmt.Printf("batch/GPU %d, step compute %.0f ms\n\n",
			spec.BatchPerGPU, (spec.FwdTime+spec.BwdTime)*1000)

		// Partition decision: fixed by flag, or the §3.2 sampling search
		// with the discrete-event engine standing in for the real cluster
		// (the live runtime's Config.AutoPartition runs the same search
		// against measured steps).
		planVars := engine.PlanVars(spec)
		p := *partitions
		var searched *partition.SearchResult
		if p <= 0 {
			maxRows, hasTarget := 1, false
			for _, v := range planVars {
				if v.PartitionTarget {
					hasTarget = true
					if int(v.Rows) > maxRows {
						maxRows = int(v.Rows)
					}
				}
			}
			p = 1
			if hasTarget {
				res, err := partition.Search(func(cand int) float64 {
					r, err := engine.RunArch(spec, core.ArchHybrid, *machines, *gpus, cand, hw)
					if err != nil {
						return 1e9
					}
					return r.StepTime
				}, *machines, partition.Bound(maxRows))
				if err == nil && res.BestP >= 1 {
					p = res.BestP
					searched = &res
				}
			}
		}
		if searched != nil {
			fmt.Print(metrics.FormatPartitionDecision("simulated", p, searched))
		} else {
			fmt.Print(metrics.FormatPartitionDecision("fixed", p, nil))
		}

		plan, err := core.BuildPlan(planVars, core.Options{
			Arch: core.ArchHybrid, NumMachines: *machines,
			SparsePartitions: p, SmartPlacement: true,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// Transport assignment: each route's traffic runs over the wire
		// fabric exactly when it crosses a machine boundary — collective
		// rings span all workers, PS pushes/pulls reach every machine's
		// server — so on a multi-machine cluster every route is a tcp
		// route (worker pairs and servers colocated in one agent still
		// short-circuit over the in-process channel fabric).
		n := float64(*machines)
		if *machines > 1 {
			fmt.Printf("transport: tcp across %d agents (inproc within an agent)\n", *machines)
		} else {
			fmt.Println("transport: inproc (single process)")
		}
		fmt.Print(policy.Describe())
		fmt.Printf("%-24s %-7s %-10s %-12s %-14s %-22s\n", "variable", "kind", "alpha", "method", "transport", "Table-3 bytes/machine")
		fmt.Println(strings.Repeat("-", 95))
		for i, v := range spec.Vars {
			a := plan.Assignments[i]
			w := float64(v.Bytes())
			var formula float64
			var wire string
			switch a.Method {
			case core.MethodAllReduce:
				formula = 4 * w * (n - 1) / n
				wire = "collective"
			case core.MethodAllGatherv:
				formula = 2 * v.Alpha * w * (n - 1)
				wire = "collective"
			case core.MethodPS:
				formula = 4 * v.Alpha * w * (n - 1) / n
				wire = "ps"
			}
			if *machines > 1 {
				wire += "/tcp"
			} else {
				wire += "/inproc"
			}
			kind := "dense"
			if v.Sparse {
				kind = "sparse"
			}
			method := a.Method.String()
			if a.Partitions > 1 {
				method = fmt.Sprintf("%s x%d", method, a.Partitions)
			}
			fmt.Printf("%-24s %-7s %-10.4f %-12s %-14s %-22s\n",
				v.Name, kind, v.Alpha, method, wire, metrics.HumanBytes(formula))
		}

		fmt.Printf("\n%s", metrics.FormatShardMap(metrics.ShardRoutes(plan.Assignments)))

		res, err := engine.RunArch(spec, core.ArchHybrid, *machines, *gpus, p, hw)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nsimulated hybrid: %.1f ms/step, %s %s/s, avg %s per machine per step\n\n",
			res.StepTime*1000, metrics.Humanize(res.Throughput), spec.Unit,
			metrics.HumanBytes(res.AvgMachineBytes()))
	}
}
