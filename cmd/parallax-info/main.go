// Command parallax-info inspects the paper models and the sparsity-aware
// plan: per-variable sizes, α values, Table 3's network-transfer formulas
// evaluated for the configured cluster, and the hybrid plan each model
// gets.
//
// Usage:
//
//	parallax-info [-model all|resnet50|inception|lm|nmt] [-machines 8] [-gpus 6] [-partitions 128]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"parallax/internal/cluster"
	"parallax/internal/core"
	"parallax/internal/engine"
	"parallax/internal/metrics"
	"parallax/internal/models"
)

func main() {
	model := flag.String("model", "all", "model: all|resnet50|inception|lm|nmt")
	machines := flag.Int("machines", 8, "machines")
	gpus := flag.Int("gpus", 6, "GPUs per machine")
	partitions := flag.Int("partitions", 0, "sparse partitions (0 = paper's best)")
	flag.Parse()

	specs := map[string]*models.Spec{
		"resnet50": models.ResNet50(), "inception": models.InceptionV3(),
		"lm": models.LM(), "nmt": models.NMT(),
	}
	var order []string
	if *model == "all" {
		order = []string{"resnet50", "inception", "lm", "nmt"}
	} else if _, ok := specs[*model]; ok {
		order = []string{*model}
	} else {
		fmt.Fprintf(os.Stderr, "unknown model %q\n", *model)
		os.Exit(2)
	}

	hw := cluster.DefaultHardware()
	for _, name := range order {
		spec := specs[name]
		p := *partitions
		if p <= 0 {
			if spec.Name == "LM" {
				p = 128
			} else if spec.Name == "NMT" {
				p = 64
			} else {
				p = 1
			}
		}
		fmt.Printf("== %s ==\n", spec.Name)
		fmt.Printf("dense %.1fM elements, sparse %.1fM elements, alpha_model %.3f\n",
			float64(spec.DenseElements())/1e6, float64(spec.SparseElements())/1e6, spec.AlphaModel())
		fmt.Printf("batch/GPU %d, step compute %.0f ms\n\n",
			spec.BatchPerGPU, (spec.FwdTime+spec.BwdTime)*1000)

		plan, err := core.BuildPlan(engine.PlanVars(spec), core.Options{
			Arch: core.ArchHybrid, NumMachines: *machines,
			SparsePartitions: p, SmartPlacement: true,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// Transport assignment: each route's traffic runs over the wire
		// fabric exactly when it crosses a machine boundary — collective
		// rings span all workers, PS pushes/pulls reach every machine's
		// server — so on a multi-machine cluster every route is a tcp
		// route (worker pairs and servers colocated in one agent still
		// short-circuit over the in-process channel fabric).
		n := float64(*machines)
		if *machines > 1 {
			fmt.Printf("transport: tcp across %d agents (inproc within an agent)\n", *machines)
		} else {
			fmt.Println("transport: inproc (single process)")
		}
		fmt.Printf("%-24s %-7s %-10s %-12s %-14s %-22s\n", "variable", "kind", "alpha", "method", "transport", "Table-3 bytes/machine")
		fmt.Println(strings.Repeat("-", 95))
		for i, v := range spec.Vars {
			a := plan.Assignments[i]
			w := float64(v.Bytes())
			var formula float64
			var wire string
			switch a.Method {
			case core.MethodAllReduce:
				formula = 4 * w * (n - 1) / n
				wire = "collective"
			case core.MethodAllGatherv:
				formula = 2 * v.Alpha * w * (n - 1)
				wire = "collective"
			case core.MethodPS:
				formula = 4 * v.Alpha * w * (n - 1) / n
				wire = "ps"
			}
			if *machines > 1 {
				wire += "/tcp"
			} else {
				wire += "/inproc"
			}
			kind := "dense"
			if v.Sparse {
				kind = "sparse"
			}
			method := a.Method.String()
			if a.Partitions > 1 {
				method = fmt.Sprintf("%s x%d", method, a.Partitions)
			}
			fmt.Printf("%-24s %-7s %-10.4f %-12s %-14s %-22s\n",
				v.Name, kind, v.Alpha, method, wire, metrics.HumanBytes(formula))
		}

		res, err := engine.RunArch(spec, core.ArchHybrid, *machines, *gpus, p, hw)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nsimulated hybrid: %.1f ms/step, %s %s/s, avg %s per machine per step\n\n",
			res.StepTime*1000, metrics.Humanize(res.Throughput), spec.Unit,
			metrics.HumanBytes(res.AvgMachineBytes()))
	}
}
