// Command bench2json converts `go test -bench` text output into a
// machine-readable JSON document, so CI can publish the benchmark smoke
// as a structured artifact (BENCH.json) instead of only a text log.
//
// Usage:
//
//	go test -bench . | bench2json -o BENCH.json
//	bench2json -o BENCH.json bench.txt
//
// Context lines (goos/goarch/cpu) become top-level fields; every
// "Benchmark..." result line becomes one entry with the unit pairs
// (ns/op, MB/s, B/op, allocs/op) parsed into numbers. Unknown units are
// preserved under extra so future benchmark metrics survive the
// conversion. Input that contains no benchmark lines is an error: a
// silently empty artifact would read as "benchmarks ran, found nothing".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"parallax/internal/buildinfo"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Get())
		return
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	raw, err := io.ReadAll(in)
	if err != nil {
		log.Fatal(err)
	}
	doc, err := Parse(string(raw))
	if err != nil {
		log.Fatal(err)
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
}

func usageErr(format string, args ...any) error {
	return fmt.Errorf("bench2json: "+format, args...)
}
