package main

import "testing"

const sample = `goos: linux
goarch: amd64
pkg: parallax
cpu: AMD EPYC 7B13
BenchmarkTrainerStep/fused-8         	       1	  20724340 ns/op
PASS
ok  	parallax	0.296s
goos: linux
goarch: amd64
pkg: parallax/internal/transport
BenchmarkCodecRoundTrip/dense64k-8   	     100	    118519 ns/op	2211.85 MB/s	      13 B/op	       0 allocs/op
BenchmarkCodecCompressedRoundTrip/topk10pct_64k-8 	     100	    116374 ns/op	2252.62 MB/s	      44 B/op	       1 allocs/op
PASS
`

func TestParse(t *testing.T) {
	doc, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	if doc.GOOS != "linux" || doc.GOARCH != "amd64" || doc.CPU != "AMD EPYC 7B13" {
		t.Fatalf("context = %q %q %q", doc.GOOS, doc.GOARCH, doc.CPU)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks", len(doc.Benchmarks))
	}
	b0 := doc.Benchmarks[0]
	if b0.Name != "BenchmarkTrainerStep/fused" || b0.Procs != 8 ||
		b0.Pkg != "parallax" || b0.Iterations != 1 || b0.NsPerOp != 20724340 {
		t.Fatalf("first result: %+v", b0)
	}
	b2 := doc.Benchmarks[2]
	if b2.Name != "BenchmarkCodecCompressedRoundTrip/topk10pct_64k" ||
		b2.Pkg != "parallax/internal/transport" ||
		b2.MBPerS != 2252.62 || b2.BytesPerOp != 44 || b2.AllocsPerOp != 1 {
		t.Fatalf("compressed result: %+v", b2)
	}
}

func TestParseRejectsEmptyAndMalformed(t *testing.T) {
	if _, err := Parse("PASS\nok parallax 0.1s\n"); err == nil {
		t.Fatal("benchmark-free input accepted")
	}
	if _, err := Parse("BenchmarkX-8 notanumber 5 ns/op\n"); err == nil {
		t.Fatal("malformed iteration count accepted")
	}
	if _, err := Parse("BenchmarkX-8 1 bad ns/op\n"); err == nil {
		t.Fatal("malformed value accepted")
	}
}

func TestParseCustomUnits(t *testing.T) {
	doc, err := Parse("BenchmarkY 7 12.5 ns/op 3.25 rounds/op\n")
	if err != nil {
		t.Fatal(err)
	}
	b := doc.Benchmarks[0]
	if b.Name != "BenchmarkY" || b.Procs != 0 || b.Extra["rounds/op"] != 3.25 {
		t.Fatalf("custom-unit result: %+v", b)
	}
}
