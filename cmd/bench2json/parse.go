package main

import (
	"strconv"
	"strings"
)

// Doc is the top-level BENCH.json shape.
type Doc struct {
	GOOS       string   `json:"goos,omitempty"`
	GOARCH     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// Result is one "Benchmark..." line. Procs is the -N GOMAXPROCS suffix
// go test appends to the name (0 if absent); Name keeps the suffix
// stripped so the same benchmark diffs cleanly across machines.
type Result struct {
	Pkg         string             `json:"pkg,omitempty"`
	Name        string             `json:"name"`
	Procs       int                `json:"procs,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	MBPerS      float64            `json:"mb_per_s,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Parse converts `go test -bench` text output (possibly the
// concatenation of several package runs) into a Doc.
func Parse(text string) (*Doc, error) {
	doc := &Doc{}
	pkg := ""
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			r, err := parseResult(line)
			if err != nil {
				return nil, usageErr("line %d: %v", ln+1, err)
			}
			r.Pkg = pkg
			doc.Benchmarks = append(doc.Benchmarks, r)
		}
	}
	if len(doc.Benchmarks) == 0 {
		return nil, usageErr("no benchmark result lines in input")
	}
	return doc, nil
}

func parseResult(line string) (Result, error) {
	f := strings.Fields(line)
	if len(f) < 2 {
		return Result{}, usageErr("truncated result %q", line)
	}
	r := Result{Name: f[0]}
	// BenchmarkFoo/case-8 -> name BenchmarkFoo/case, procs 8.
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Name, r.Procs = r.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, usageErr("iteration count %q: %v", f[1], err)
	}
	r.Iterations = iters
	// The rest of the line is (value, unit) pairs.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Result{}, usageErr("value %q: %v", f[i], err)
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "MB/s":
			r.MBPerS = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[unit] = v
		}
	}
	return r, nil
}
