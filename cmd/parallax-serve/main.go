// Command parallax-serve runs the multi-tenant training service: a
// long-lived daemon hosting many concurrent training jobs on one
// resident parameter-server fleet. Jobs are submitted over HTTP as
// jobspec JSON documents, scheduled against the cluster's GPU
// inventory with per-tenant fair share, and observable live — step
// streams as NDJSON, cluster and per-job metrics as Prometheus text.
//
// Usage:
//
//	parallax-serve [-listen :7600] [-machines 2] [-gpus 2]
//
//	# submit a job and follow it:
//	curl -s localhost:7600/jobs -d '{"tenant":"acme","spec":{"steps":50}}'
//	curl -N localhost:7600/jobs/job-000001/steps
//
// SIGINT/SIGTERM drain: every running job is cancelled at its next
// step boundary, the HTTP server shuts down, and the process exits.
// See docs/OPERATIONS.md for the full API and metrics catalog.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"parallax/internal/buildinfo"
	"parallax/internal/serve"
)

func main() {
	listen := flag.String("listen", ":7600", "HTTP listen address")
	machines := flag.Int("machines", 2, "cluster machines (resident PS fleet size and admission bound)")
	gpus := flag.Int("gpus", 2, "GPUs per machine (admission bound)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Get())
		return
	}

	svc, err := serve.New(*machines, *gpus)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Addr: *listen, Handler: serve.Handler(svc)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("parallax-serve %s listening on %s (%d machines x %d GPUs)",
		buildinfo.Version, *listen, *machines, *gpus)

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Print("draining: cancelling jobs and shutting down")
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Shutdown(drainCtx); err != nil {
		log.Printf("job drain: %v", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
}
