// Command parallaxvet runs the parallax static-analysis suite
// (internal/analysis: detfold, detsource, wrapsentinel, lockheld)
// over the module and exits non-zero on any finding. It is the tier-1
// CI gate for the determinism, error-discipline, and lock-safety
// invariants (DESIGN.md §15).
//
// Usage:
//
//	parallaxvet [-list] [-analyzers name,name] [packages...]
//
// Patterns default to ./... and are resolved at the module root, so
// the tool means the same thing from any working directory. The
// self-check in internal/analysis/self_test.go runs the identical
// suite under plain `go test ./...`, so CI catches regressions even
// where the vet binary is not wired in.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"parallax/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: parallaxvet [-list] [-analyzers name,name] [packages...]\n\n")
		fmt.Fprintf(os.Stderr, "Runs the parallax determinism/error/lock analyzers; exits 1 on findings.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := analysis.Analyzers()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range suite {
			byName[a.Name] = a
		}
		var picked []*analysis.Analyzer
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "parallaxvet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			picked = append(picked, a)
		}
		suite = picked
	}

	pkgs, err := analysis.Load(flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "parallaxvet:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "parallaxvet:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "parallaxvet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
