// Command parallax-agent hosts one machine's share of a distributed
// training run — its GPUs' worker replicas and its parameter server —
// wired to peer agents over transport.TCP. Launching one agent per
// machine on a shared address list runs the same hybrid LM workload
// parallax-train runs in-process, now spanning OS processes: every agent
// builds the identical graph from the same seed, the plan is recomputed
// identically everywhere, and the per-step losses (exchanged over the
// wire in rank order) are bit-identical to the single-process run.
//
// The agent is driven through the Session API: SIGINT/SIGTERM cancel
// the step loop at the next cluster-agreed step boundary (all agents
// stop at the same step), a final checkpoint is written when
// -checkpoint is set, and the fabric tears down cleanly. Restarting
// every agent with -resume continues the run bit-identically.
//
// -compression enables the sparsity-aware wire compression layer
// (DESIGN.md §11): none|f16|bf16|topk[=FRAC]. The policy is part of the
// job's identity — every agent must pass the same value (the TCP
// rendezvous refuses mismatched peers) and a -resume must match the
// checkpoint. Because the lossy transforms run deterministically in the
// data plane, a compressed TCP run still reproduces the compressed
// in-process reference bit for bit.
//
// Usage:
//
//	# in-process reference (no wire):
//	parallax-agent -machines 2 -gpus 2 -steps 50
//
//	# the same cluster as two agent processes on loopback:
//	parallax-agent -machine 0 -addrs 127.0.0.1:7701,127.0.0.1:7702 -gpus 2 -steps 50 &
//	parallax-agent -machine 1 -addrs 127.0.0.1:7701,127.0.0.1:7702 -gpus 2 -steps 50
//
//	# stop at step 20 with a checkpoint, then resume to 50:
//	parallax-agent ... -steps 20 -checkpoint /ckpt/run1
//	parallax-agent ... -steps 50 -checkpoint /ckpt/run1 -resume
//
// Both print "final loss bits=..." lines that must match bit for bit —
// including across a checkpoint/resume split.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"parallax"
	"parallax/internal/buildinfo"
	"parallax/internal/jobspec"
)

func main() {
	spec := jobspec.Default()
	// Fixed partitions by default so every agent plans identically; the
	// agent never measures α for the same reason.
	spec.Partitions = 8
	machine := flag.Int("machine", -1, "machine index this agent hosts (-1 = run the whole cluster in-process)")
	addrs := flag.String("addrs", "", "comma-separated agent addresses, one per machine (required with -machine >= 0)")
	machines := flag.Int("machines", 2, "machine count for the in-process reference mode (ignored when -addrs is set)")
	gpus := flag.Int("gpus", 2, "GPUs per machine")
	spec.BindCommonFlags(flag.CommandLine)
	flag.IntVar(&spec.Partitions, "partitions", spec.Partitions, "sparse partitions (fixed so every agent plans identically)")
	flag.BoolVar(&spec.AutoPartition, "auto-partition", false,
		"tune the partition count online during the first steps (overrides -partitions; agents agree on every measurement, so they reshard in lockstep)")
	dialTimeout := flag.Duration("dial-timeout", 15*time.Second, "peer rendezvous timeout")
	ckpt := flag.String("checkpoint", "", "checkpoint directory: written on exit (normal completion or SIGINT/SIGTERM drain)")
	resume := flag.Bool("resume", false, "resume from -checkpoint instead of initializing (run it on every agent)")
	autoCkpt := flag.String("auto-checkpoint", "",
		"auto-checkpoint root (shared across agents): periodic saves land under it, and a (re)started agent resumes from the latest complete one automatically")
	autoEvery := flag.Int("auto-checkpoint-every", 10, "auto-checkpoint cadence in steps")
	recov := flag.Bool("recover", false,
		"survive peer-agent failures: re-rendezvous at the next fabric epoch and restore the latest auto-checkpoint (requires -auto-checkpoint; see OPERATIONS.md)")
	elastic := flag.Bool("elastic", false,
		"enable elastic membership (DESIGN.md §14): the cluster admits joiners and sheds leavers at step boundaries without a restart (requires -auto-checkpoint on a shared root)")
	join := flag.String("join", "",
		"join a running elastic cluster through the given agent address instead of rendezvousing from -addrs (requires -elastic and -listen)")
	listen := flag.String("listen", "",
		"address this agent serves on when joining with -join (the survivors dial it at the post-admission rendezvous)")
	allowShrink := flag.Bool("allow-shrink", false,
		"with -elastic and -recover: shed a dead peer by resharding onto the survivors instead of waiting out its restart")
	leaveAt := flag.Int("leave-at", -1, "request a voluntary departure from the elastic cluster after completing this step (testing/preemption drills)")
	chaosSpec := flag.String("chaos", "", "fault-injection spec, e.g. kill@17 (internal testing knob; see internal/chaos)")
	chaosSeed := flag.Int64("chaos-seed", 1, "seed for randomized chaos faults (internal testing knob)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Get())
		return
	}

	spec.Machines, spec.GPUs = *machines, *gpus
	if *join != "" {
		// A joiner contributes exactly one machine; the admission offer
		// assigns its index and the full address list.
		spec.Machines = 1
	} else if *addrs != "" {
		spec.Machines = len(strings.Split(*addrs, ","))
	}
	if err := spec.Validate(); err != nil {
		log.Fatal(err)
	}
	if *resume && *ckpt == "" {
		log.Fatal("-resume requires -checkpoint")
	}
	policy, err := parallax.ParseCompression(spec.Compression)
	if err != nil {
		log.Fatal(err)
	}

	// SIGINT/SIGTERM cancel the context; the step loop drains the
	// in-flight step, every agent stops at the same agreed boundary, and
	// the deferred teardown (plus the final checkpoint) runs.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts, err := spec.Options()
	if err != nil {
		log.Fatal(err)
	}
	if *autoCkpt != "" {
		opts = append(opts, parallax.WithAutoCheckpoint(*autoCkpt, *autoEvery))
	}
	if *recov {
		if *autoCkpt == "" {
			log.Fatal("-recover requires -auto-checkpoint")
		}
		opts = append(opts, parallax.WithRecovery(parallax.RecoveryPolicy{
			Enabled: true, AllowShrink: *allowShrink,
		}))
	} else if *allowShrink {
		log.Fatal("-allow-shrink requires -recover")
	}
	if *elastic {
		if *autoCkpt == "" {
			log.Fatal("-elastic requires -auto-checkpoint")
		}
		opts = append(opts, parallax.WithElastic())
	} else if *join != "" {
		log.Fatal("-join requires -elastic")
	} else if *leaveAt >= 0 {
		log.Fatal("-leave-at requires -elastic")
	}
	if *join != "" {
		if *listen == "" {
			log.Fatal("-join requires -listen (the address this agent will serve on)")
		}
		opts = append(opts, parallax.WithDistConfig(parallax.DistConfig{
			JoinTarget: *join, JoinAddr: *listen, Addrs: []string{*listen},
			DialTimeout: *dialTimeout, Chaos: *chaosSpec, ChaosSeed: *chaosSeed,
		}))
	} else if *addrs != "" {
		list := strings.Split(*addrs, ",")
		if *machine < 0 || *machine >= len(list) {
			log.Fatalf("-machine %d out of range for %d addresses", *machine, len(list))
		}
		opts = append(opts, parallax.WithDistConfig(parallax.DistConfig{
			Machine: *machine, Addrs: list, DialTimeout: *dialTimeout,
			Chaos: *chaosSpec, ChaosSeed: *chaosSeed,
		}))
	} else if *machine >= 0 {
		log.Fatal("-machine requires -addrs")
	} else if *chaosSpec != "" {
		log.Fatal("-chaos requires a distributed run (-machine/-addrs)")
	}

	// Every agent must build the identical graph: fixed seed, fixed
	// shapes (see parallax.DistConfig and internal/jobspec).
	g := spec.Graph()
	resources := spec.Resources()
	var sess *parallax.Session
	if *resume {
		sess, err = parallax.OpenFromCheckpoint(ctx, *ckpt, g, resources, opts...)
	} else {
		sess, err = parallax.Open(ctx, g, resources, opts...)
	}
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	fmt.Print(sess.Describe())
	fmt.Print(policy.Describe())
	fmt.Printf("local workers: %v of %d\n", sess.LocalWorkers(), sess.Workers())
	if *resume {
		fmt.Printf("resumed from %s at step %d\n", *ckpt, sess.StepCount())
	}
	if *autoCkpt != "" && sess.StepCount() > 0 {
		fmt.Printf("auto-resumed from %s at step %d (epoch %d)\n", *autoCkpt, sess.StepCount(), sess.Epoch())
	}
	fmt.Println()

	// One identically seeded stream per agent: the session draws every
	// worker's shard from it (skipping the shards remote agents consume),
	// so batches align across processes with zero data traffic — and a
	// resumed session fast-forwards it to the checkpointed cursor.
	ds := spec.Dataset()
	if sess.StepCount() >= spec.Steps {
		// The checkpoint already covers the requested horizon: re-saving
		// the untouched state is fine, training past it is not.
		fmt.Printf("nothing to do: checkpoint at step %d >= -steps %d\n", sess.StepCount(), spec.Steps)
		return
	}
	var stats parallax.LoopStats
	interrupted, left := false, false
	for st, err := range sess.Steps(ctx, ds) {
		if err != nil {
			if errors.Is(err, context.Canceled) {
				interrupted = true
				break
			}
			if errors.Is(err, parallax.ErrLeft) {
				left = true
				break
			}
			log.Fatal(err)
		}
		stats.Observe(st)
		if st.Step%10 == 0 || st.Step == spec.Steps-1 {
			fmt.Printf("step %4d  loss %.6f  (%v, wire tx %d KB rx %d KB)\n",
				st.Step, st.Loss, st.StepTime.Round(10*time.Microsecond),
				st.WireSentBytes/1024, st.WireRecvBytes/1024)
		}
		if *leaveAt >= 0 && st.Step == *leaveAt {
			if err := sess.Leave(); err != nil {
				log.Fatalf("leave: %v", err)
			}
		}
		if st.Step >= spec.Steps-1 {
			break
		}
	}
	if left {
		// A voluntary departure is a clean shutdown: the survivors own the
		// resharded state from here.
		fmt.Printf("left the cluster cleanly after step %d\n", sess.StepCount())
		return
	}

	if *ckpt != "" {
		if err := sess.Save(*ckpt); err != nil {
			log.Fatalf("checkpoint: %v", err)
		}
		fmt.Printf("checkpoint saved to %s at step %d\n", *ckpt, sess.StepCount())
	}
	if interrupted {
		fmt.Printf("interrupted: drained cleanly after step %d\n", sess.StepCount()-1)
		return
	}
	if sess.Recoveries() > 0 {
		// Recovery timings ride the CI artifact next to BENCH.json.
		fmt.Printf("recoveries %d  epoch %d  last recovery %v\n",
			sess.Recoveries(), sess.Epoch(), sess.LastRecoveryDuration().Round(time.Millisecond))
	}
	fmt.Printf("\n%s\n", stats)
	if spec.AutoPartition {
		// The settled decision: which P the online search chose, from
		// which sampled bracket, and where the rows now live.
		fmt.Print(sess.PartitionDecision())
		fmt.Print(sess.ShardMap())
	}
	// The bit pattern is the cross-process equivalence check: a TCP run's
	// final loss must equal the in-process reference exactly — with
	// -auto-partition too (resharding is lossless), and across a
	// checkpoint/resume split (restore is bit-identical).
	fmt.Printf("final loss bits=%016x loss=%.17g\n", math.Float64bits(stats.LastLoss), stats.LastLoss)
}
