// Command parallax-agent hosts one machine's share of a distributed
// training run — its GPUs' worker replicas and its parameter server —
// wired to peer agents over transport.TCP. Launching one agent per
// machine on a shared address list runs the same hybrid LM workload
// parallax-train runs in-process, now spanning OS processes: every agent
// builds the identical graph from the same seed, the plan is recomputed
// identically everywhere, and the per-step losses (exchanged over the
// wire in rank order) are bit-identical to the single-process run.
//
// Usage:
//
//	# in-process reference (no wire):
//	parallax-agent -machines 2 -gpus 2 -steps 50
//
//	# the same cluster as two agent processes on loopback:
//	parallax-agent -machine 0 -addrs 127.0.0.1:7701,127.0.0.1:7702 -gpus 2 -steps 50 &
//	parallax-agent -machine 1 -addrs 127.0.0.1:7701,127.0.0.1:7702 -gpus 2 -steps 50
//
// Both print "final loss bits=..." lines that must match bit for bit.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"strings"
	"time"

	"parallax"
	"parallax/internal/data"
)

func main() {
	machine := flag.Int("machine", -1, "machine index this agent hosts (-1 = run the whole cluster in-process)")
	addrs := flag.String("addrs", "", "comma-separated agent addresses, one per machine (required with -machine >= 0)")
	machines := flag.Int("machines", 2, "machine count for the in-process reference mode (ignored when -addrs is set)")
	gpus := flag.Int("gpus", 2, "GPUs per machine")
	vocab := flag.Int("vocab", 2000, "vocabulary size")
	batch := flag.Int("batch", 32, "batch size per GPU")
	steps := flag.Int("steps", 100, "training steps")
	archFlag := flag.String("arch", "hybrid", "architecture: hybrid|ar|ps|optps")
	clip := flag.Float64("clip", 0, "global-norm clip (0 = off)")
	lr := flag.Float64("lr", 0.5, "learning rate")
	partitions := flag.Int("partitions", 8, "sparse partitions (fixed so every agent plans identically)")
	autoPartition := flag.Bool("auto-partition", false,
		"tune the partition count online during the first steps (overrides -partitions; agents agree on every measurement, so they reshard in lockstep)")
	dialTimeout := flag.Duration("dial-timeout", 15*time.Second, "peer rendezvous timeout")
	flag.Parse()

	arch, ok := map[string]parallax.Arch{
		"hybrid": parallax.Hybrid, "ar": parallax.AllReduceOnly,
		"ps": parallax.PSOnly, "optps": parallax.OptimizedPS,
	}[*archFlag]
	if !ok {
		log.Fatalf("unknown architecture %q", *archFlag)
	}

	var dist *parallax.DistConfig
	n := *machines
	if *addrs != "" {
		list := strings.Split(*addrs, ",")
		n = len(list)
		if *machine < 0 || *machine >= n {
			log.Fatalf("-machine %d out of range for %d addresses", *machine, n)
		}
		dist = &parallax.DistConfig{Machine: *machine, Addrs: list, DialTimeout: *dialTimeout}
	} else if *machine >= 0 {
		log.Fatal("-machine requires -addrs")
	}

	// Every agent must build the identical graph: fixed seed, fixed
	// shapes (see parallax.DistConfig).
	rng := parallax.NewRNG(42)
	g := parallax.NewGraph()
	tokens := g.Input("tokens", parallax.Int, *batch)
	labels := g.Input("labels", parallax.Int, *batch)
	var emb *parallax.Node
	g.InPartitioner(func() {
		emb = g.Variable("embedding", rng.RandN(0.1, *vocab, 32))
	})
	w1 := g.Variable("hidden/kernel", rng.RandN(0.1, 32, 64))
	b1 := g.Variable("hidden/bias", parallax.NewDense(64))
	w2 := g.Variable("softmax/kernel", rng.RandN(0.1, 64, *vocab))
	h := g.Tanh(g.AddBias(g.MatMul(g.Gather(emb, tokens), w1), b1))
	g.SoftmaxCE(g.MatMul(h, w2), labels)

	resources := parallax.Uniform(n, *gpus)
	fixedParts := *partitions
	if *autoPartition {
		fixedParts = 0 // let the online search pick
	}
	runner, err := parallax.GetRunner(g, resources, parallax.Config{
		Arch:             arch,
		NewOptimizer:     func() parallax.Optimizer { return parallax.NewSGD(float32(*lr)) },
		SparsePartitions: fixedParts,
		AutoPartition:    *autoPartition,
		ClipNorm:         *clip,
		Dist:             dist,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer runner.Close()
	fmt.Print(runner.Describe())
	fmt.Printf("local workers: %v of %d\n\n", runner.LocalWorkers(), runner.Workers())

	// One identically seeded stream per agent: RunLoop draws every
	// worker's shard from it (skipping the shards remote agents consume),
	// so batches align across processes with zero data traffic.
	ds := data.NewZipfText(*vocab, *batch, 1, 1.0, 7)
	stats, err := runner.RunLoop(ds, *steps, func(s parallax.StepStats) {
		if s.Step%10 == 0 || s.Step == *steps-1 {
			fmt.Printf("step %4d  loss %.6f  (%v, wire tx %d KB rx %d KB)\n",
				s.Step, s.Loss, s.StepTime.Round(10*time.Microsecond),
				s.WireSentBytes/1024, s.WireRecvBytes/1024)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s\n", stats)
	if *autoPartition {
		// The settled decision: which P the online search chose, from
		// which sampled bracket, and where the rows now live.
		fmt.Print(runner.PartitionDecision())
		fmt.Print(runner.ShardMap())
	}
	// The bit pattern is the cross-process equivalence check: a TCP run's
	// final loss must equal the in-process reference exactly — with
	// -auto-partition too, because resharding is lossless: the trajectory
	// does not depend on the partition counts the probes visited.
	fmt.Printf("final loss bits=%016x loss=%.17g\n", math.Float64bits(stats.LastLoss), stats.LastLoss)
}
