// Command parallax-bench regenerates the paper's evaluation tables and
// figures on the simulated cluster and prints measured values next to the
// paper's reported ones.
//
// Usage:
//
//	parallax-bench [-experiment all|table1|table2|table3|table4|table5|table6|fig7|fig8|fig9|ablations|pruning]
//	               [-machines N] [-gpus G]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"parallax/internal/buildinfo"
	"parallax/internal/experiments"
)

func main() {
	exp := flag.String("experiment", "all", "which experiment to run")
	machines := flag.Int("machines", 8, "simulated machines")
	gpus := flag.Int("gpus", 6, "GPUs per machine")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Get())
		return
	}

	env := experiments.DefaultEnv()
	env.Machines = *machines
	env.GPUs = *gpus

	run := func(name string, fn func() string) {
		if *exp != "all" && *exp != name {
			return
		}
		start := time.Now()
		out := fn()
		fmt.Print(out)
		fmt.Printf("(%s in %.1fs)\n\n", name, time.Since(start).Seconds())
	}

	run("table1", func() string { return experiments.Table1(env).Render() })
	run("table2", func() string { return experiments.Table2(env).Render() })
	run("table3", func() string { return experiments.Table3(env).Render() })
	run("table4", func() string { return experiments.Table4(env).Render() })
	run("table5", func() string { return experiments.Table5(env).Render() })
	run("table6", func() string { return experiments.Table6(env).Render() })
	run("fig7", func() string { return experiments.Figure7(env).Render() })
	run("fig8", func() string { return experiments.Figure8(env).Render() })
	run("fig9", func() string { return experiments.Figure9(env).Render() })
	run("pruning", func() string {
		return experiments.RenderPruning(experiments.ExtensionPruning(env))
	})
	run("ablations", func() string {
		s := experiments.RenderAblationAlpha(experiments.AblationAlphaThreshold(env), env)
		s += experiments.RenderAblationLocalAgg(experiments.AblationLocalAggregation(env))
		s += experiments.RenderAblationPlacement(experiments.AblationPlacement(env))
		return s
	})

	switch *exp {
	case "all", "table1", "table2", "table3", "table4", "table5", "table6",
		"fig7", "fig8", "fig9", "ablations", "pruning":
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
