package parallax

import (
	"fmt"
	"strconv"
	"strings"

	"parallax/internal/transport"
)

// Wire compression (DESIGN.md §11): WithCompression selects per-route
// lossy encodings for the gradient traffic — half-precision payloads
// for dense AllReduce buckets and parameter-server pushes, top-k
// sparsification with error feedback for the dense buckets, and
// delta-encoded varint row indices for sparse pushes. The lossy
// rounding happens deterministically in the data plane at
// fabric-symmetric points, so a compressed job trains bit-identically
// over the in-process fabric and over TCP; the wire layer then encodes
// the already-on-grid values compactly and losslessly. Parameter-server
// pull replies always travel exact f32.
//
// The zero policy (CompressionNone, the default) leaves every frame in
// the classic exact-f32 encoding, bit-identical to builds without this
// subsystem.

// CompressionPolicy selects the wire encodings per route class; the
// zero value disables compression. See the presets below and
// transport.Policy for the field-level contract.
type CompressionPolicy = transport.Policy

// CompressionCodec is a payload value encoding (f32, f16, bf16).
type CompressionCodec = transport.Codec

// Payload codecs for CompressionPolicy fields.
const (
	// CodecF32 is the exact float32 encoding (the default).
	CodecF32 = transport.CodecF32
	// CodecF16 is IEEE 754 binary16 with round-to-nearest-even.
	CodecF16 = transport.CodecF16
	// CodecBF16 is bfloat16 (truncated-exponent-preserving half) with
	// round-to-nearest-even.
	CodecBF16 = transport.CodecBF16
)

// CompressionNone is the zero policy: every route stays exact f32 with
// classic frames.
var CompressionNone = CompressionPolicy{}

// CompressionF16 compresses every gradient route to IEEE binary16
// payloads and delta-encodes sparse push indices: halves the gradient
// payload bytes with ~3 decimal digits of mantissa.
func CompressionF16() CompressionPolicy {
	return CompressionPolicy{
		Dense: CodecF16, PSDense: CodecF16, PSSparse: CodecF16, DeltaIndex: true,
	}
}

// CompressionBF16 is CompressionF16 with bfloat16 payloads: the full
// float32 exponent range at 8 bits of mantissa — preferable when
// gradients span many orders of magnitude.
func CompressionBF16() CompressionPolicy {
	return CompressionPolicy{
		Dense: CodecBF16, PSDense: CodecBF16, PSSparse: CodecBF16, DeltaIndex: true,
	}
}

// CompressionTopK sparsifies each dense fusion bucket to the frac
// largest-magnitude entries per step (error feedback carries the
// remainder into later steps, so nothing is lost — only delayed), with
// f16 values; parameter-server routes travel f16 with delta-encoded
// sparse indices. frac must be in (0, 1]; 0.1 reduces dense-route
// traffic roughly tenfold.
func CompressionTopK(frac float64) CompressionPolicy {
	return CompressionPolicy{
		Dense: CodecF16, DenseTopK: frac,
		PSDense: CodecF16, PSSparse: CodecF16, DeltaIndex: true,
	}
}

// ParseCompression parses a policy name as accepted by the command-line
// tools' -compression flag: "none", "f16", "bf16", "topk" (top-k at the
// default 10%), or "topk=FRAC" with FRAC in (0, 1].
func ParseCompression(s string) (CompressionPolicy, error) {
	switch {
	case s == "" || s == "none":
		return CompressionNone, nil
	case s == "f16":
		return CompressionF16(), nil
	case s == "bf16":
		return CompressionBF16(), nil
	case s == "topk":
		return CompressionTopK(0.1), nil
	case strings.HasPrefix(s, "topk="):
		frac, err := strconv.ParseFloat(s[len("topk="):], 64)
		if err != nil || frac <= 0 || frac > 1 {
			return CompressionNone, fmt.Errorf("parallax: top-k fraction %q not in (0, 1]", s[len("topk="):])
		}
		return CompressionTopK(frac), nil
	}
	return CompressionNone, fmt.Errorf("parallax: unknown compression policy %q (want none, f16, bf16, or topk[=frac])", s)
}
