package parallax

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"math"
	"sync/atomic"
	"time"

	"parallax/internal/chaos"
	"parallax/internal/checkpoint"
	"parallax/internal/cluster"
	"parallax/internal/core"
	"parallax/internal/data"
	"parallax/internal/engine"
	"parallax/internal/graph"
	"parallax/internal/metrics"
	"parallax/internal/models"
	"parallax/internal/partition"
	"parallax/internal/transform"
	"parallax/internal/transport"
)

// Session is the context-first handle on a running training job: Open
// analyzes the single-GPU graph, builds the sparsity-aware plan,
// transforms the graph into per-GPU replicas plus parameter servers,
// and starts the persistent runtime. The step driver is a streaming
// iterator —
//
//	s, err := parallax.Open(ctx, g, resources, parallax.WithClipNorm(5))
//	defer s.Close()
//	for stats, err := range s.Steps(ctx, dataset) {
//		if err != nil { ... }
//		if stats.Step == lastStep { break }
//	}
//
// — and the full training state (variable values, optimizer slot
// state, step counter, dataset cursor) can be captured with Save and
// resumed bit-identically with OpenFromCheckpoint, over either fabric.
//
// Cancelling the Steps context ends the loop at the next step boundary:
// the in-flight step drains cleanly and the iterator yields the context
// error, so a cancel returns within one step with no goroutine leaks.
// In distributed mode every step carries one scalar agreement across
// the agents, so whichever way one agent's loop ends — cancellation or
// a break out of the range — every agent stops at the same step
// boundary; the agents that did not stop locally see their iterator
// yield context.Canceled.
//
// In distributed mode the step drivers are collective operations:
// every agent must run the same sequence of loops with the same bounds
// over the same steps (identical binaries do this naturally). Within
// that contract the agents may end a loop by any mechanism — the
// per-step agreement keeps them at the same boundary.
//
// A Session must not run Steps, Save, or Repartition concurrently with
// each other. GetRunner remains as a thin compatibility wrapper over
// Open for existing code.
type Session struct {
	g        *Graph
	trainer  *transform.Trainer
	plan     *core.Plan
	resource ResourceInfo
	cfg      Config
	workers  int
	parts    int
	dist     *DistConfig

	decision    PartitionDecision
	tunePending bool

	feeds []Feed
	// cursor counts dataset batches the step drivers have drawn;
	// pendingSkip is the restored cursor the next Steps call fast-forwards
	// its dataset by.
	cursor      int64
	pendingSkip int64
	closed      bool

	// Failure-recovery state (recovery.go): the fabric generation and
	// recovery counter reported in StepStats, the feed log replays draw
	// from, the chaos injector that survives fabric rebuilds, and the
	// fault-injection hooks around auto-checkpoint writes.
	epoch        int
	recoveries   int
	lastRecovery time.Duration
	replay       *feedLog
	chaos        *chaos.Injector
	saveHook     checkpointHooks

	// Elastic-membership state (elastic.go): the voluntary-leave intent,
	// set by Leave (or a chaos leave fault, possibly from another
	// goroutine) and consumed at the next step boundary's membership
	// round.
	leaving atomic.Bool
}

// Open builds a Session for the single-GPU graph on the given cluster.
// ctx governs establishment: for distributed sessions (WithDist) the
// peer-rendezvous deadline is the earlier of ctx's deadline and the
// configured DialTimeout, and cancelling ctx aborts the rendezvous.
//
// With WithAutoCheckpoint, Open first looks for a complete
// auto-checkpoint under the configured directory and resumes from the
// latest one — which is how a restarted agent rejoins a recovering
// cluster with no flag changes (DESIGN.md §12).
func Open(ctx context.Context, g *Graph, resource ResourceInfo, opts ...Option) (*Session, error) {
	var cfg Config
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.Dist != nil && cfg.Dist.JoinTarget != "" {
		return joinCluster(ctx, g, resource, cfg)
	}
	if cfg.Elastic && cfg.Dist != nil && cfg.AutoCheckpoint.Dir != "" {
		// An elastic cluster's authoritative membership lives in the
		// checkpoint root, not in the launch flags: a restarted agent may
		// come back after the cluster grew or shrank around it.
		if err := adoptMembers(&cfg, &resource); err != nil {
			return nil, err
		}
	}
	if cfg.AutoCheckpoint.Dir != "" {
		step, sdir, err := checkpoint.LatestComplete(cfg.AutoCheckpoint.Dir, resource.NumMachines())
		if err != nil {
			return nil, err
		}
		if step >= 0 {
			return openFromCheckpointCfg(ctx, sdir, g, resource, cfg)
		}
	}
	s, err := open(ctx, g, resource, cfg, nil, nil)
	if err != nil {
		return nil, err
	}
	if err := s.verifyJoin(); err != nil {
		s.Close()
		return nil, err
	}
	s.armChaosElastic()
	return s, nil
}

// restoreSpec carries a checkpoint's job-level decisions into open.
type restoreSpec struct {
	meta checkpoint.Meta
}

// open is the shared constructor behind Open, GetRunner,
// OpenFromCheckpoint, and the in-place recovery rebuild. inj carries a
// chaos injector across fabric rebuilds (nil creates one from
// DistConfig.Chaos when armed).
func open(ctx context.Context, g *Graph, resource ResourceInfo, cfg Config, restore *restoreSpec, inj *chaos.Injector) (*Session, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := resource.Validate(); err != nil {
		return nil, err
	}
	if cfg.NewOptimizer == nil {
		cfg.NewOptimizer = func() Optimizer { return NewSGD(0.1) }
	}
	if cfg.ResidentPS != nil {
		if cfg.Dist != nil {
			return nil, fmt.Errorf("parallax: resident PS fleet requires single-process mode")
		}
		if cfg.PSNamespace == "" {
			return nil, fmt.Errorf("parallax: resident PS fleet requires a namespace (WithResidentPS)")
		}
		if cfg.ResidentPS.Machines() < resource.NumMachines() {
			return nil, fmt.Errorf("parallax: session spans %d machines, resident fleet has %d",
				resource.NumMachines(), cfg.ResidentPS.Machines())
		}
	} else if cfg.PSNamespace != "" {
		return nil, fmt.Errorf("parallax: PS namespace %q without a resident fleet", cfg.PSNamespace)
	}

	parts := cfg.SparsePartitions
	decision := PartitionDecision{Source: "fixed"}
	tunePending := false
	if restore != nil {
		// A restored session rebuilds the plan with exactly the
		// checkpointed partition count — even if the original run searched
		// for it — so the plan fingerprints can be compared. A search that
		// had not run yet at save time runs on the first Steps call, as it
		// would have in the original run.
		parts = restore.meta.Parts
		tunePending = restore.meta.DecisionPending && cfg.AutoPartition && hasPartitionTarget(g)
		decision = PartitionDecision{Source: restore.meta.DecisionSource, Pending: tunePending}
	} else if parts <= 0 {
		if cfg.AutoPartition && hasPartitionTarget(g) {
			// Online tuning starts from the paper's initial sample point
			// (the machine count); the search itself runs against real
			// steps during the first loop and reshards live.
			parts = resource.NumMachines()
			tunePending = true
			decision = PartitionDecision{Source: "online", Pending: true}
		} else {
			var sr *partition.SearchResult
			parts, sr = searchPartitions(g, resource, cfg)
			if sr != nil {
				decision = PartitionDecision{Source: "simulated", Search: sr}
			}
		}
	}
	decision.P = parts
	arch := cfg.Arch.coreArch()
	plan, err := buildPlan(g, resource, cfg, parts)
	if err != nil {
		return nil, err
	}
	localAgg := !cfg.DisableLocalAggregation &&
		(arch == core.ArchHybrid || arch == core.ArchOptPS)
	var fab transport.Fabric
	if cfg.Dist != nil {
		if inj == nil && cfg.Dist.Chaos != "" {
			if inj, err = chaos.Parse(cfg.Dist.Chaos, cfg.Dist.ChaosSeed); err != nil {
				return nil, err
			}
		}
		fab, err = dialFabric(ctx, resource, cfg, inj)
		if err != nil {
			return nil, err
		}
	}
	tr, err := transform.New(g, transform.Options{
		Plan:             plan,
		Resource:         resource,
		NewOptimizer:     cfg.NewOptimizer,
		DenseAgg:         cfg.DenseAgg,
		SparseAgg:        cfg.SparseAgg,
		LocalAggregation: localAgg,
		ClipNorm:         cfg.ClipNorm,
		Async:            cfg.Async,
		FusionBytes:      cfg.FusionBytes,
		Compression:      cfg.Compression,
		Fabric:           fab,
		Resident:         cfg.ResidentPS.fleet(),
		PSNamespace:      cfg.PSNamespace,
	})
	if err != nil {
		return nil, err
	}
	s := &Session{
		g: g, trainer: tr, plan: plan, resource: resource, cfg: cfg,
		workers: resource.TotalGPUs(), parts: parts, dist: cfg.Dist,
		decision: decision, tunePending: tunePending,
		feeds: make([]Feed, resource.TotalGPUs()),
		chaos: inj,
	}
	if cfg.AutoCheckpoint.Dir != "" {
		if s.epoch, err = checkpoint.ReadEpoch(cfg.AutoCheckpoint.Dir); err != nil {
			tr.Close()
			return nil, err
		}
	}
	if h, ok := fab.(checkpointHooks); ok {
		s.saveHook = h
	}
	return s, nil
}

// OpenFromCheckpoint rebuilds a Session from a Save checkpoint and
// resumes it bit-identically: variable values, optimizer slot state,
// the step counter, and the dataset cursor are restored, so the
// continued run's per-step losses equal an uninterrupted run's bit for
// bit. The caller supplies the same graph, resources, and options the
// saved session was opened with (deterministic initializers with the
// same seeds); the restore re-validates the cluster topology and the
// rebuilt synchronization plan against the checkpoint's fingerprints
// and refuses a mismatch with ErrTopologyMismatch. In distributed mode
// every agent restores from the same checkpoint directory (shared or
// replicated filesystem): each reads its own machine's shard plus shard
// 0's replica variables.
func OpenFromCheckpoint(ctx context.Context, dir string, g *Graph, resource ResourceInfo, opts ...Option) (*Session, error) {
	var cfg Config
	for _, o := range opts {
		o(&cfg)
	}
	return openFromCheckpointCfg(ctx, dir, g, resource, cfg)
}

// openFromCheckpointCfg is OpenFromCheckpoint after option folding —
// shared with Open's auto-checkpoint resume path.
func openFromCheckpointCfg(ctx context.Context, dir string, g *Graph, resource ResourceInfo, cfg Config) (*Session, error) {
	machine := 0
	if cfg.Dist != nil {
		machine = cfg.Dist.Machine
	}
	meta, recs, err := checkpoint.ReadShard(dir, machine)
	if err != nil {
		if !cfg.Elastic || machine == 0 {
			return nil, err
		}
		// An elastic regrow may give this machine an index with no shard
		// in a checkpoint written at a smaller topology; shard 0 always
		// exists and carries the same meta, and the resharding install
		// below reads every shard anyway.
		meta0, recs0, err0 := checkpoint.ReadShard(dir, 0)
		if err0 != nil || machine < meta0.Machines {
			return nil, err
		}
		meta, recs = meta0, recs0
	}
	if meta.Machines != resource.NumMachines() {
		// Restoring onto a different machine count is only sound through
		// the explicit resharding path — the caller must opt in.
		if !cfg.Elastic {
			return nil, fmt.Errorf("parallax: %w: checkpoint spans %d machines, cluster has %d (WithElastic enables cross-topology restore)",
				ErrTopologyMismatch, meta.Machines, resource.NumMachines())
		}
	} else if fp := checkpoint.TopoFingerprint(resource); fp != meta.TopoFP {
		return nil, fmt.Errorf("parallax: %w: checkpoint topology %q, cluster is %q",
			ErrTopologyMismatch, meta.TopoFP, fp)
	}
	// The compression policy is part of the job's identity: restoring
	// under a different policy would resume a different optimization
	// trajectory (and orphan or fabricate error-feedback residuals).
	// Version-1 checkpoints predate the field and are always
	// uncompressed.
	ckFP := meta.Compression
	if ckFP == "" {
		ckFP = "none"
	}
	if fp := cfg.Compression.Fingerprint(); fp != ckFP {
		return nil, fmt.Errorf("parallax: %w: checkpoint written with policy %q, session configured with %q",
			ErrCompressionMismatch, ckFP, fp)
	}
	s, err := open(ctx, g, resource, cfg, &restoreSpec{meta: meta}, nil)
	if err != nil {
		return nil, err
	}
	if err := s.install(dir, machine, meta, recs); err != nil {
		s.Close()
		return nil, err
	}
	if err := s.verifyJoin(); err != nil {
		s.Close()
		return nil, err
	}
	s.armChaosElastic()
	return s, nil
}

// install loads the remaining shards and seeds the trainer with the
// checkpointed state.
func (s *Session) install(dir string, machine int, meta checkpoint.Meta, recs []checkpoint.Record) error {
	// A cross-topology (elastic) restore reshards: server placement is a
	// function of the machine count, so the rebuilt plan's fingerprint
	// legitimately differs from the checkpoint's. Partition ranges are
	// not — they depend only on row counts and the partition count, which
	// the restore preserves — so re-placing the checkpointed parts onto
	// the new servers is exact.
	reshard := meta.Machines != s.resource.NumMachines()
	if !reshard {
		if fp := checkpoint.PlanFingerprint(s.plan); fp != meta.PlanFP {
			return fmt.Errorf("parallax: %w: checkpoint plan fingerprint %q, rebuilt plan is %q",
				ErrTopologyMismatch, meta.PlanFP, fp)
		}
	}
	// Which shards this process needs: its own (read already), shard 0
	// for the replica variables, and — in single-process mode, where
	// this process hosts every machine, or when resharding across
	// topologies, where old server parts live anywhere — all the rest.
	shards := map[int][]checkpoint.Record{}
	var need []int
	if reshard {
		need = make([]int, meta.Machines)
		for m := range need {
			need[m] = m
		}
	} else {
		shards[machine] = recs
		need = []int{0}
		if s.dist == nil {
			need = make([]int, meta.Machines)
			for m := range need {
				need[m] = m
			}
		}
	}
	for _, m := range need {
		if _, ok := shards[m]; ok {
			continue
		}
		mm, mrecs, err := checkpoint.ReadShard(dir, m)
		if err != nil {
			return err
		}
		if mm.Step != meta.Step || mm.Cursor != meta.Cursor || mm.Parts != meta.Parts ||
			mm.PlanFP != meta.PlanFP || mm.TopoFP != meta.TopoFP {
			return fmt.Errorf("parallax: checkpoint shard %d disagrees with shard %d (torn save?)", m, machine)
		}
		shards[m] = mrecs
	}
	local := make(map[int]bool)
	for _, m := range s.trainer.LocalMachines() {
		local[m] = true
	}
	var serverStates, residStates []transform.VarState
	for m, mrecs := range shards {
		for _, r := range mrecs {
			st := transform.VarState{
				Name: r.Name, Part: r.Part, Value: r.Value,
				SlotNames: r.SlotNames, Slots: r.Slots,
			}
			switch r.Kind {
			case checkpoint.KindReplica:
				st.Part = -1
				if err := s.trainer.RestoreReplicaVar(st); err != nil {
					return err
				}
			case checkpoint.KindServerPart:
				serverStates = append(serverStates, st)
			case checkpoint.KindResidual:
				// Each shard carries its own machine's workers' residuals;
				// this process restores only those of the machines it hosts
				// (shard 0, read for the replica variables, may belong to a
				// peer agent). A resharding restore drops residuals
				// entirely: they are indexed by the old worker numbering,
				// which has no mapping onto the new one. Only top-k
				// policies carry residuals; their error feedback restarts
				// from zero after an elastic transition.
				if !reshard && local[m] {
					residStates = append(residStates, st)
				}
			}
		}
	}
	if err := s.trainer.RestoreServerVars(serverStates, meta.Step); err != nil {
		return err
	}
	if err := s.trainer.RestoreResiduals(residStates); err != nil {
		return err
	}
	s.trainer.SetStepCount(int(meta.Step))
	s.cursor = meta.Cursor
	s.pendingSkip = meta.Cursor
	return nil
}

// Save captures the session's full training state into a checkpoint
// directory, one shard per machine this process hosts (all of them in
// single-process mode, exactly one per agent in distributed mode; every
// agent must call Save with the same directory between the same steps,
// like Repartition). Shard files are written atomically. The saved
// state — variable values, optimizer slots, step counter, dataset
// cursor, and the partition decision — is everything OpenFromCheckpoint
// needs for a bit-identical resume.
func (s *Session) Save(dir string) error {
	if s.closed {
		return fmt.Errorf("parallax: save on %w session", ErrClosed)
	}
	meta := checkpoint.Meta{
		Machines:        s.resource.NumMachines(),
		Step:            int64(s.trainer.StepCount()),
		Cursor:          s.cursor,
		Parts:           s.parts,
		DecisionSource:  s.decision.Source,
		DecisionPending: s.tunePending,
		TopoFP:          checkpoint.TopoFingerprint(s.resource),
		PlanFP:          checkpoint.PlanFingerprint(s.plan),
		Compression:     s.cfg.Compression.Fingerprint(),
	}
	for _, m := range s.trainer.LocalMachines() {
		states, err := s.trainer.SnapshotServerParts(m)
		if err != nil {
			return err
		}
		if m == 0 {
			reps, err := s.trainer.SnapshotReplicaVars()
			if err != nil {
				return err
			}
			states = append(reps, states...)
		}
		recs := make([]checkpoint.Record, len(states))
		for i, st := range states {
			recs[i] = checkpoint.Record{
				Kind: checkpoint.KindServerPart, Name: st.Name, Part: st.Part,
				Value: st.Value, SlotNames: st.SlotNames, Slots: st.Slots,
			}
			if st.Part < 0 {
				recs[i].Kind, recs[i].Part = checkpoint.KindReplica, 0
			}
		}
		// Top-k error-feedback residuals ride in the shard of the machine
		// whose workers hold them (present only under a top-k policy;
		// their presence moves the shard to the version-2 format).
		resids, err := s.trainer.SnapshotResiduals(m)
		if err != nil {
			return err
		}
		for _, st := range resids {
			recs = append(recs, checkpoint.Record{
				Kind: checkpoint.KindResidual, Name: st.Name, Part: st.Part, Value: st.Value,
			})
		}
		shardMeta := meta
		shardMeta.Machine = m
		if err := checkpoint.WriteShard(dir, shardMeta, recs); err != nil {
			return err
		}
	}
	return nil
}

// Steps returns the step iterator for a token-model graph: each
// iteration draws one batch per worker from ds (successive batches to
// successive workers, so one endless stream is consumed as disjoint
// shards) and yields the step's StepStats. The iterator is endless —
// range over it and break (or cancel ctx) when done. The first call on
// a restored session fast-forwards ds to the checkpointed cursor, so
// pass a dataset constructed exactly like the original run's.
//
// On an error — a failed step, or ctx cancelled — the iterator yields
// (zero stats, err) once and stops. Graphs with differently named
// inputs should use StepsFeeds.
func (s *Session) Steps(ctx context.Context, ds Dataset) iter.Seq2[StepStats, error] {
	return func(yield func(StepStats, error) bool) {
		for _, name := range []string{"tokens", "labels"} {
			if !hasIntInput(s.g, name) {
				yield(StepStats{}, fmt.Errorf(
					"parallax: Steps needs an int input named %q (use StepsFeeds for custom feeds)", name))
				return
			}
		}
		if s.pendingSkip > 0 {
			if err := data.FastForward(ds, s.pendingSkip); err != nil {
				yield(StepStats{}, err)
				return
			}
			s.pendingSkip = 0
		}
		// Failure recovery replays steps from a feed log (recovery.go);
		// arm it from the current cursor the first time the session is
		// auto-checkpointing.
		if s.cfg.AutoCheckpoint.Dir != "" && s.replay == nil {
			s.replay = &feedLog{base: s.cursor, saves: []int64{s.cursor}}
		}
		s.drive(ctx, s.datasetFeeds(ds), math.MaxInt, yield)
	}
}

// StepsFeeds is Steps for arbitrary feeds: next(step, worker) supplies
// worker w's feed for the (absolute) step. Resumption of the feed
// source is the caller's concern — next sees absolute step numbers, so
// a restored session asks for exactly the steps that come after the
// checkpoint.
func (s *Session) StepsFeeds(ctx context.Context, next func(step, worker int) (Feed, error)) iter.Seq2[StepStats, error] {
	return func(yield func(StepStats, error) bool) {
		s.drive(ctx, next, math.MaxInt, yield)
	}
}

// datasetFeeds adapts an endless batch stream to the feed callback,
// advancing the session's dataset cursor (the quantity Save persists).
// With recovery armed, every batch routes through the feed log so a
// post-failure replay serves the original batches again.
func (s *Session) datasetFeeds(ds Dataset) func(step, worker int) (Feed, error) {
	return func(step, worker int) (Feed, error) {
		var b data.Batch
		if s.replay != nil {
			b = s.replay.next(ds)
		} else {
			b = ds.Next()
		}
		s.cursor++
		return Feed{Ints: map[string][]int{"tokens": b.Tokens, "labels": b.Labels}}, nil
	}
}

// Online tuning constants: each candidate partition count is measured
// over tuneStepsPerProbe real training steps, and the whole search
// stays within the paper's §6.5 budget of tuneMaxRuns measurement runs.
const (
	tuneStepsPerProbe = 3
	tuneMaxRuns       = 5
)

// stepDriver is one drive call's state: the loop that Steps,
// StepsFeeds, and the Runner compatibility wrappers all share.
type stepDriver struct {
	s     *Session
	ctx   context.Context
	next  func(step, worker int) (Feed, error)
	base  int // trainer step count at entry
	limit int // maximum steps this drive may run
	yield func(StepStats, error) bool
	// agree: fold stop decisions cluster-wide (every distributed drive,
	// whatever its context or wrapper), so all agents run the same
	// agreement schedule and end at the same boundary — a cluster may
	// freely mix Steps and legacy RunLoop drivers.
	agree   bool
	stopped bool // consumer broke out; never call yield again
	// maxEmitted is the highest step number yielded by this drive; after
	// an in-place recovery, replayed steps at or below it are re-run for
	// state but not re-yielded, so the consumer sees every step once.
	maxEmitted int
}

// drive runs up to limit steps, yielding each step's stats: the single
// code path behind the public iterators and the RunLoop wrappers,
// including the tune-while-training phase of WithAutoPartition.
func (s *Session) drive(ctx context.Context, next func(step, worker int) (Feed, error), limit int, yield func(StepStats, error) bool) {
	if s.closed {
		yield(StepStats{}, fmt.Errorf("parallax: steps on %w session", ErrClosed))
		return
	}
	d := &stepDriver{
		s: s, ctx: ctx, next: next, base: s.trainer.StepCount(), limit: limit,
		yield: yield, agree: s.trainer.Distributed(),
		maxEmitted: s.trainer.StepCount() - 1,
	}
	d.run()
}

// emit yields one iteration; after the consumer breaks it becomes a
// no-op (the iterator contract forbids further yield calls).
func (d *stepDriver) emit(st StepStats, err error) bool {
	if d.stopped {
		return false
	}
	if !d.yield(st, err) {
		d.stopped = true
	}
	return !d.stopped
}

// shouldStop decides whether the loop ends before the next step: the
// local reasons are a cancelled context or a consumer break. In
// distributed mode the local flag is folded cluster-wide first, so all
// agents stop at the same boundary — one agent's cancellation (or
// break) ends every agent's loop with context.Canceled within at most
// one agreement round.
func (d *stepDriver) shouldStop() (bool, error) {
	stop := d.stopped || d.ctx.Err() != nil
	if d.agree {
		agreed, aerr := d.s.trainer.AgreeStop(stop)
		if aerr != nil {
			// The agreement itself failed — a dead peer, not a stop
			// decision. The error carries the attribution (ErrPeerFailed)
			// and is recovery-eligible.
			return true, aerr
		}
		stop = agreed
	}
	if !stop {
		return false, nil
	}
	err := d.ctx.Err()
	if err == nil {
		err = context.Canceled // a peer agent (or the consumer) stopped the loop
	}
	return true, err
}

func (d *stepDriver) run() {
	s := d.s
	if s.tunePending {
		s.tunePending = false
		if err := d.tune(); err != nil {
			// Cancellation mid-search re-arms the tuning so a later Steps
			// call restarts it with a full budget; hard errors do not.
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				s.tunePending = true
				s.decision.Pending = true
			}
			d.emit(StepStats{}, err)
			return
		}
	}
	for s.trainer.StepCount()-d.base < d.limit {
		if stop, err := d.shouldStop(); stop {
			if err != nil && d.recoverable(err) {
				if rerr := d.recover(err); rerr != nil {
					d.emit(StepStats{}, rerr)
					return
				}
				continue
			}
			d.emit(StepStats{}, err)
			return
		}
		// Elastic membership round (elastic.go): propose/observe joins and
		// leaves at this boundary. A transition rebuilds the trainer at
		// the new world size; re-enter the boundary from the top so the
		// agreement schedule matches a joiner's fresh driver exactly.
		if s.memberRounds() {
			transitioned, merr := d.membership()
			if merr != nil {
				if d.recoverable(merr) {
					if rerr := d.recover(merr); rerr != nil {
						d.emit(StepStats{}, rerr)
						return
					}
					continue
				}
				d.emit(StepStats{}, merr)
				return
			}
			if transitioned {
				d.agree = s.trainer.Distributed()
				continue
			}
		}
		st, err := s.oneStep(d.next)
		if err != nil {
			if d.recoverable(err) {
				if rerr := d.recover(err); rerr != nil {
					d.emit(StepStats{}, rerr)
					return
				}
				continue
			}
			d.emit(StepStats{}, err)
			return
		}
		// Auto-save before yielding: the save schedule is then a pure
		// function of the step count, identical on every agent whatever
		// its consumer does with the emission.
		if aerr := s.maybeAutoSave(); aerr != nil {
			d.emit(StepStats{}, aerr)
			return
		}
		if st.Step > d.maxEmitted {
			d.maxEmitted = st.Step
			if !d.emit(st, nil) && !d.agree {
				return
			}
		}
	}
	// A bounded drive's limit exit runs one final agreement, so every
	// exit path — limit, break, cancellation — performs exactly
	// steps+1 agreement rounds. Agents that end the loop at the same
	// step therefore stay aligned even when they end it by different
	// mechanisms (one breaks out of Steps while another exhausts a
	// RunLoop budget).
	if d.agree {
		_, _ = s.trainer.AgreeStop(true)
	}
}

// tune is the tune-while-training phase: it drives the §3.2 sampling
// search with real measured steps, resharding the live runtime to each
// candidate P, and settles on the optimum. Measured times are folded to
// a cluster-wide maximum through the collective layer, so in
// distributed mode every agent derives the same probe sequence from the
// same numbers and the repartition protocol stays in lockstep. Probes
// that would overrun the drive's step budget are skipped identically on
// every agent, and a cancellation is observed (cluster-agreed) before
// every probe step.
func (d *stepDriver) tune() error {
	s := d.s
	var runErr error
	measure := func(p int) float64 {
		if runErr != nil {
			return math.Inf(1)
		}
		// Budget first, reshard second: an exhausted budget must not pay
		// for a state migration it will never measure. The check depends
		// only on counters identical on every agent, so the skip stays in
		// lockstep.
		if s.trainer.StepCount()-d.base+tuneStepsPerProbe > d.limit {
			return math.Inf(1)
		}
		if err := s.Repartition(p); err != nil {
			runErr = err
			return math.Inf(1)
		}
		var total time.Duration
		for k := 0; k < tuneStepsPerProbe; k++ {
			if stop, err := d.shouldStop(); stop {
				runErr = err
				return math.Inf(1)
			}
			st, err := s.oneStep(d.next)
			if err != nil {
				runErr = err
				return math.Inf(1)
			}
			total += st.StepTime
			d.emit(st, nil)
		}
		m, aerr := s.trainer.AgreeScalarMax(total.Seconds() / tuneStepsPerProbe)
		if aerr != nil {
			runErr = aerr
			return math.Inf(1)
		}
		return m
	}
	res, err := partition.SearchN(measure, s.resource.NumMachines(), maxPartitionBound(s.g), tuneMaxRuns)
	if runErr != nil {
		return runErr
	}
	if err != nil {
		return err
	}
	if err := s.Repartition(res.BestP); err != nil {
		return err
	}
	s.decision = PartitionDecision{P: res.BestP, Source: "online", Search: &res}
	return nil
}

// oneStep draws every worker's feed, runs one synchronous step, and
// assembles its StepStats (absolute step number).
func (s *Session) oneStep(next func(step, worker int) (Feed, error)) (StepStats, error) {
	step := s.trainer.StepCount()
	for w := 0; w < s.workers; w++ {
		f, err := next(step, w)
		if err != nil {
			return StepStats{}, err
		}
		s.feeds[w] = f
	}
	start := time.Now()
	loss, err := s.trainer.Step(s.feeds)
	if err != nil {
		return StepStats{}, err
	}
	ph := s.trainer.PhaseStatsLastStep()
	wireSent, wireRecv := s.trainer.WireStatsLastStep()
	wireRaw, wireComp := s.trainer.WireCompressionLastStep()
	return StepStats{
		Step:                step,
		Loss:                loss,
		StepTime:            time.Since(start),
		BytesPushed:         s.trainer.BytesPushedLastStep(),
		WireSentBytes:       wireSent,
		WireRecvBytes:       wireRecv,
		WireSentBytesRaw:    wireRaw,
		WireCompressedBytes: wireComp,
		ComputeTime:         ph.Compute,
		CommTime:            ph.Comm,
		SyncWait:            ph.SyncWait,
		Epoch:               s.epoch,
		RecoveryCount:       s.recoveries,
	}, nil
}

// RunStep executes one explicit synchronous step; feeds[w] is worker
// w's batch (use Shard to produce disjoint batches). It returns the
// mean loss. Most callers want Steps; RunStep is the escape hatch for
// drivers that own their loop entirely.
func (s *Session) RunStep(feeds []Feed) (float64, error) {
	if s.closed {
		return 0, fmt.Errorf("parallax: step on %w session", ErrClosed)
	}
	return s.trainer.Step(feeds)
}

// StepCount returns the number of completed training steps, including
// steps restored from a checkpoint.
func (s *Session) StepCount() int { return s.trainer.StepCount() }

// Repartition reshards the partition-target sparse variables to p
// partitions on the live runtime, without restarting it (DESIGN.md §9).
// The migration is lossless — training continues bit-identically to a
// run that used p from the start. It must not run concurrently with the
// step drivers; in distributed mode every agent must call it with the
// same p between the same steps (WithAutoPartition does this
// automatically).
func (s *Session) Repartition(p int) error {
	if s.closed {
		return fmt.Errorf("parallax: repartition on %w session", ErrClosed)
	}
	if p < 1 {
		return fmt.Errorf("parallax: repartition to %d partitions", p)
	}
	plan, err := buildPlan(s.g, s.resource, s.cfg, p)
	if err != nil {
		return err
	}
	if err := s.trainer.Repartition(plan); err != nil {
		return err
	}
	s.plan = plan
	s.parts = p
	s.decision.P = p
	return nil
}

// Close stops the session's persistent runtime (worker goroutines,
// parameter servers, serving loops) and tears down the transport
// fabric. Close is idempotent; the session must not be used afterwards
// (operations return ErrClosed).
func (s *Session) Close() error {
	s.closed = true
	s.trainer.Close()
	return nil
}

// PartitionDecision reports how the current partition count was chosen
// and, for searched decisions, the sampled points and fitted cost model.
func (s *Session) PartitionDecision() PartitionDecision { return s.decision }

// ShardMap renders the live per-route shard map: every variable's
// synchronization method and, for PS variables, the partition→machine
// assignment currently in effect (it reflects live repartitioning).
func (s *Session) ShardMap() string {
	return metrics.FormatShardMap(metrics.ShardRoutes(s.plan.Assignments))
}

// PhaseStatsLastStep returns the previous step's phase breakdown.
func (s *Session) PhaseStatsLastStep() PhaseStats { return s.trainer.PhaseStatsLastStep() }

// Workers returns the number of model replicas (total GPUs) across the
// whole cluster.
func (s *Session) Workers() int { return s.workers }

// LocalWorkers returns the global ranks this process hosts — all
// workers in single-process mode, one machine's share under WithDist.
// The returned slice must not be mutated.
func (s *Session) LocalWorkers() []int { return s.trainer.LocalWorkers() }

// SparsePartitions returns the partition count in effect (searched,
// configured, or restored).
func (s *Session) SparsePartitions() int { return s.parts }

// VarValue returns the current full value of a variable (assembled from
// the servers for PS variables).
func (s *Session) VarValue(name string) (*Dense, error) {
	if s.closed {
		return nil, fmt.Errorf("parallax: read on %w session", ErrClosed)
	}
	return s.trainer.VarValue(name)
}

// Describe summarizes the plan: how each variable is synchronized,
// which transport the job runs over, and how the partition count was
// decided.
func (s *Session) Describe() string {
	out := fmt.Sprintf("parallax: %d workers, %s architecture\n", s.workers, s.plan.Arch)
	if s.dist != nil {
		out += fmt.Sprintf("transport: tcp, agent for machine %d of %d (inproc within the agent)\n",
			s.dist.Machine, len(s.dist.Addrs))
	} else {
		out += "transport: inproc (single process)\n"
	}
	out += s.decision.String()
	for _, a := range s.plan.Assignments {
		extra := ""
		if a.Method == core.MethodPS && a.Partitions > 1 {
			extra = fmt.Sprintf(" x%d partitions", a.Partitions)
		}
		if a.TreatAsDense {
			extra += " (promoted to dense)"
		}
		kind := "dense"
		if a.Sparse {
			kind = "sparse"
		}
		out += fmt.Sprintf("  %-24s %-6s -> %s%s\n", a.Name, kind, a.Method, extra)
	}
	return out
}

// buildPlan derives the sparsity-aware plan for the given partition
// count — shared between session construction and live repartitioning
// so both produce identical placements for identical inputs.
func buildPlan(g *Graph, resource ResourceInfo, cfg Config, parts int) (*core.Plan, error) {
	arch := cfg.Arch.coreArch()
	return core.BuildPlan(planVars(g, cfg.AlphaHint), core.Options{
		Arch:                arch,
		NumMachines:         resource.NumMachines(),
		SparsePartitions:    parts,
		AlphaDenseThreshold: cfg.AlphaDenseThreshold,
		SmartPlacement:      arch == core.ArchHybrid || arch == core.ArchOptPS,
	})
}

// hasPartitionTarget reports whether the graph declares any sparse
// variable inside a partitioner scope — the variables the §3.2 search
// (and live resharding) applies to.
func hasPartitionTarget(g *Graph) bool {
	for _, v := range g.Variables() {
		if v.PartitionScope >= 0 && g.GradKind(v) == graph.GradSparse {
			return true
		}
	}
	return false
}

// maxPartitionBound is the search's upper bracket: the largest
// partition-target variable's row count, clamped by partition.Bound.
func maxPartitionBound(g *Graph) int {
	maxRows := 1
	for _, v := range g.Variables() {
		if v.PartitionScope >= 0 && v.Shape[0] > maxRows {
			maxRows = v.Shape[0]
		}
	}
	return partition.Bound(maxRows)
}

// planVars converts graph variables to planner inputs using the α hints.
func planVars(g *Graph, alphaHint map[string]float64) []core.VarInfo {
	var vars []core.VarInfo
	for _, v := range g.Variables() {
		width := int64(1)
		for _, d := range v.Shape[1:] {
			width *= int64(d)
		}
		sparse := g.GradKind(v) == graph.GradSparse
		alpha := 1.0
		if sparse {
			alpha = alphaHint[v.Name]
			if alpha <= 0 || alpha > 1 {
				alpha = 0.05
			}
		}
		vars = append(vars, core.VarInfo{
			Name: v.Name, Rows: int64(v.Shape[0]), Width: width,
			Sparse: sparse, Alpha: alpha, PartitionTarget: v.PartitionScope >= 0,
		})
	}
	return vars
}

// searchPartitions runs the §3.2 sampling search over the simulated
// cluster: a spec is derived from the user's graph, each candidate P is
// "trained for a few iterations" on the discrete-event engine, and the
// cost model picks the best count. (The real system samples on the
// physical cluster; WithAutoPartition does exactly that on the live
// runtime, see DESIGN.md §9.) The returned search result is nil when
// the graph has no partition-target variable.
func searchPartitions(g *Graph, resource ResourceInfo, cfg Config) (int, *partition.SearchResult) {
	if !hasPartitionTarget(g) {
		return 1, nil
	}
	batch := firstBatchDim(g)
	spec := models.SpecFromGraph(g, cfg.AlphaHint, batch)
	hw := cluster.DefaultHardware()
	measure := func(p int) float64 {
		res, err := engine.RunArch(spec, core.ArchHybrid, resource.NumMachines(),
			maxGPUs(resource), p, hw)
		if err != nil {
			return 1e9
		}
		return res.StepTime
	}
	res, err := partition.Search(measure, resource.NumMachines(), maxPartitionBound(g))
	if err != nil || res.BestP < 1 {
		return resource.NumMachines(), nil
	}
	return res.BestP, &res
}

func firstBatchDim(g *Graph) int {
	for _, n := range g.Nodes() {
		if n.Kind == graph.OpInput && len(n.Shape) > 0 {
			return n.Shape[0]
		}
	}
	return 1
}

func maxGPUs(r ResourceInfo) int {
	m := 1
	for i := 0; i < r.NumMachines(); i++ {
		if g := r.GPUsPerMachine(i); g > m {
			m = g
		}
	}
	return m
}

func hasIntInput(g *Graph, name string) bool {
	for _, n := range g.Nodes() {
		if n.Kind == graph.OpInput && n.DType == graph.Int && n.Name == name {
			return true
		}
	}
	return false
}
