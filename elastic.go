package parallax

// Elastic cluster membership (DESIGN.md §14). A cluster opened with
// WithElastic can change its machine set at a step boundary without a
// restart:
//
//   - Scale-out: a new agent starts with DistConfig.JoinTarget and sends
//     a join request to a running agent's listener. That agent parks the
//     request and, at its next step boundary, proposes admission through
//     the membership agreement round every elastic agent runs per step.
//     All survivors save at the boundary, adopt the agreed member list,
//     bump the fabric epoch, and re-rendezvous at the new world size;
//     the joiner pulls its share of the saved state off the shared
//     checkpoint root and enters the collective at the same boundary.
//   - Scale-in: an agent with a pending Leave (voluntary, or armed by a
//     chaos leave fault) proposes its own departure the same way; the
//     survivors reshard its parameter-server partitions onto themselves
//     and the leaver's Steps iterator ends with ErrLeft. A peer that
//     dies and stays dead is shed the same way when
//     RecoveryPolicy.AllowShrink is set — the shrink replaces the
//     in-place recovery that would otherwise wait out a restart.
//
// The agreement is one AgreeScalarMax-style fold per boundary: each
// agent contributes a proposal code (0 = nothing to propose) and the
// cluster-wide maximum elects a single winner; the winner's full member
// list travels out of band as a membership record it wrote to the
// checkpoint root *before* the round, so losing proposals leave no
// trace and every survivor reads exactly the elected list. Membership
// state machine helpers and codes live in membership.go.

import (
	"context"
	"fmt"
	"os"
	"time"

	"parallax/internal/checkpoint"
	"parallax/internal/cluster"
	"parallax/internal/transport"
)

// memberRounds reports whether this session runs a membership agreement
// round at every step boundary. Deliberately not conditioned on the
// trainer being distributed: a cluster shrunk to one machine still
// proposes (the fold degenerates to its own value), which is how it can
// re-grow.
func (s *Session) memberRounds() bool {
	return s.cfg.Elastic && s.dist != nil && s.cfg.AutoCheckpoint.Dir != "" && !s.closed
}

// membership runs one membership round at the current step boundary:
// propose (or pass), fold, and — when a proposal wins — transition to
// the agreed topology. It returns true when the trainer was rebuilt at
// a new world size, in which case the driver must refresh its agreement
// flag and re-enter the boundary from the top.
func (d *stepDriver) membership() (bool, error) {
	s := d.s
	code, err := s.localProposal()
	if err != nil {
		return false, err
	}
	agreed, err := s.trainer.AgreeMembership(code)
	if err != nil {
		return false, err
	}
	if agreed == 0 {
		return false, nil
	}
	winner, kind, err := decodeProposal(agreed)
	if err != nil {
		return false, fmt.Errorf("parallax: membership agreement folded to %v: %w", agreed, err)
	}
	if err := s.transition(d.ctx, winner, kind); err != nil {
		return false, err
	}
	return true, nil
}

// localProposal decides what this agent contributes to the boundary's
// membership round and, when it has something to propose, durably
// publishes the proposed member list before returning its code — so the
// list is readable by every survivor the moment the proposal wins.
func (s *Session) localProposal() (float64, error) {
	root := s.cfg.AutoCheckpoint.Dir
	machine := s.dist.Machine
	if s.leaving.Load() {
		cur := s.currentMembers()
		if len(cur.Members) <= 1 {
			s.leaving.Store(false)
			return 0, fmt.Errorf("parallax: cannot leave a single-member cluster")
		}
		rec := &transport.Membership{
			Epoch: s.epoch + 1, Step: int64(s.trainer.StepCount()), Cursor: s.cursor,
			Parts: s.parts, Joiner: -1,
			Members: removeMember(cur.Members, machine),
		}
		if err := checkpoint.WriteMembershipRecord(root, machine, rec); err != nil {
			return 0, err
		}
		return proposalCode(machine, proposeLeave), nil
	}
	fab := s.tcpFabric()
	if fab == nil {
		return 0, nil
	}
	req := fab.PendingJoin()
	if req == nil {
		return 0, nil
	}
	cur := s.currentMembers()
	if cur.IndexOf(req.Addr) >= 0 {
		// Already a member — a stale rejoin attempt; the park will be
		// released when the fabric shuts down.
		return 0, nil
	}
	rec := &transport.Membership{
		Epoch: s.epoch + 1, Step: int64(s.trainer.StepCount()), Cursor: s.cursor,
		Parts: s.parts, Joiner: len(cur.Members),
		Members: admitMember(cur.Members, transport.Member{Addr: req.Addr, GPUs: req.GPUs}),
	}
	if err := checkpoint.WriteMembershipRecord(root, machine, rec); err != nil {
		return 0, err
	}
	return proposalCode(machine, proposeJoin), nil
}

// transition executes an agreed membership change at the current step
// boundary:
//
//  1. every agent saves the full state at the boundary (old topology);
//  2. a barrier round confirms every shard is durably on disk;
//  3. everyone reads the winner's published member list, records the
//     new epoch and membership in the root;
//  4. the winner (for a join) releases the parked joiner with the offer;
//  5. departing machines close and surface ErrLeft; survivors rebuild
//     at the new world size via rebuildAt.
func (s *Session) transition(ctx context.Context, winner, kind int) error {
	root := s.cfg.AutoCheckpoint.Dir
	step := s.trainer.StepCount()
	sdir := checkpoint.StepDir(root, step)
	if err := s.Save(sdir); err != nil {
		return err
	}
	if _, err := s.trainer.AgreeMembership(0); err != nil {
		return err
	}
	rec, err := checkpoint.ReadMembershipRecord(root, s.epoch+1, winner)
	if err != nil {
		return err
	}
	if rec.Step != int64(step) {
		return fmt.Errorf("parallax: membership record for epoch %d proposes step %d but the cluster is at step %d",
			s.epoch+1, rec.Step, step)
	}
	if err := checkpoint.WriteEpoch(root, s.epoch+1); err != nil {
		return err
	}
	if err := checkpoint.WriteMembers(root, rec); err != nil {
		return err
	}
	if kind == proposeJoin && winner == s.dist.Machine {
		// The epoch and membership are durable before the joiner is
		// released: whatever it reads from the root now is the new world.
		if fab := s.tcpFabric(); fab != nil {
			if err := fab.OfferJoin(rec); err != nil {
				return err
			}
		}
	}
	idx := rec.IndexOf(s.dist.Addrs[s.dist.Machine])
	if idx < 0 {
		// This machine left: its state is saved and the survivors own the
		// reshard from here. Terminal by design — not a failure.
		s.trainer.Close()
		s.closed = true
		return fmt.Errorf("parallax: %w at step %d (epoch %d)", ErrLeft, step, s.epoch+1)
	}
	return s.rebuildAt(ctx, sdir, rec, idx, s.epoch+1)
}

// rebuildAt tears down this agent's runtime and rebuilds it as machine
// idx of the agreed membership, restoring the boundary checkpoint in
// sdir through the resharding install. After the restore, every member
// re-saves sdir at the new topology (between two barrier rounds, so no
// agent reads shards mid-overwrite), making the directory a valid
// recovery fallback at the new machine count.
func (s *Session) rebuildAt(ctx context.Context, sdir string, mem *transport.Membership, idx, epoch int) error {
	meta, recs, err := checkpoint.ReadShard(sdir, 0)
	if err != nil {
		return err
	}
	s.trainer.Close()

	newRes := resourceFromMembers(mem)
	cfg := s.cfg
	dc := *s.cfg.Dist
	dc.Machine = idx
	dc.Addrs = mem.Addrs()
	dc.Listener = nil
	dc.JoinTarget, dc.JoinAddr = "", ""
	dc.DialTimeout = s.cfg.Recovery.RedialTimeout
	if dc.DialTimeout <= 0 {
		dc.DialTimeout = 2 * time.Minute
	}
	cfg.Dist = &dc
	ns, err := open(ctx, s.g, newRes, cfg, &restoreSpec{meta: meta}, s.chaos)
	if err != nil {
		return err
	}
	if err := s.adoptRebuilt(ns, sdir, meta, recs); err != nil {
		return err
	}
	s.resource = newRes
	s.workers = newRes.TotalGPUs()
	s.feeds = make([]Feed, s.workers)
	s.cfg = cfg
	s.dist = &dc
	s.epoch = epoch
	if idx == 0 {
		// Machine 0 of the new world clears proposal debris from epochs
		// no survivor can need again; best-effort.
		_ = checkpoint.PruneMembershipRecords(s.cfg.AutoCheckpoint.Dir, epoch)
	}
	return nil
}

// adoptRebuilt installs the checkpoint into a freshly opened session,
// runs the post-restore collective schedule (verify, install barrier,
// resave, resave barrier), and adopts its runtime into s. Shared by the
// survivor rebuild; the joiner runs the same schedule in joinCluster.
func (s *Session) adoptRebuilt(ns *Session, sdir string, meta checkpoint.Meta, recs []checkpoint.Record) error {
	if err := elasticRestore(ns, sdir, meta, recs); err != nil {
		ns.Close()
		return err
	}
	if s.replay != nil {
		if err := s.replay.rewindTo(meta.Cursor); err != nil {
			ns.Close()
			return err
		}
	}
	s.trainer = ns.trainer
	s.plan = ns.plan
	s.parts = ns.parts
	s.decision = ns.decision
	s.tunePending = ns.tunePending
	s.saveHook = ns.saveHook
	s.cursor = meta.Cursor
	s.pendingSkip = 0
	return nil
}

// elasticRestore is the collective schedule every member of a new
// topology runs after its rendezvous: install the boundary checkpoint,
// verify the restore step cluster-wide, barrier, re-save the directory
// at the new topology, barrier again. The two barriers bracket the
// overwrite so no member reads old-topology shards that a faster peer
// is already replacing.
func elasticRestore(ns *Session, sdir string, meta checkpoint.Meta, recs []checkpoint.Record) error {
	if err := ns.install(sdir, 0, meta, recs); err != nil {
		return err
	}
	if err := ns.verifyJoin(); err != nil {
		return err
	}
	if _, err := ns.trainer.AgreeMembership(0); err != nil {
		return err
	}
	if err := ns.Save(sdir); err != nil {
		return err
	}
	if _, err := ns.trainer.AgreeMembership(0); err != nil {
		return err
	}
	return nil
}

// joinCluster is Open's path for an agent started with
// DistConfig.JoinTarget: request admission from the running cluster,
// wait (parked) for the offer, then restore the boundary checkpoint and
// enter the collective as the newest member. The returned session's
// first Steps boundary runs the same agreement sequence the survivors
// re-enter after their rebuild, so the schedules align by construction.
func joinCluster(ctx context.Context, g *Graph, resource ResourceInfo, cfg Config) (*Session, error) {
	d := cfg.Dist
	if !cfg.Elastic {
		return nil, fmt.Errorf("parallax: DistConfig.JoinTarget requires WithElastic")
	}
	if d.JoinAddr == "" {
		return nil, fmt.Errorf("parallax: joining requires DistConfig.JoinAddr (the address this agent will serve on)")
	}
	if cfg.AutoCheckpoint.Dir == "" {
		return nil, fmt.Errorf("parallax: joining requires WithAutoCheckpoint on the cluster's shared root")
	}
	if err := resource.Validate(); err != nil {
		return nil, err
	}
	timeout := d.DialTimeout
	if timeout <= 0 {
		timeout = 2 * time.Minute
	}
	// The joiner contributes one machine: the first machine of the
	// resource info it was launched with describes its GPUs.
	offer, err := transport.RequestJoin(ctx, d.JoinTarget, transport.JoinRequest{
		Addr:        d.JoinAddr,
		GPUs:        resource.GPUsPerMachine(0),
		Fingerprint: cfg.Compression.Fingerprint(),
	}, timeout)
	if err != nil {
		return nil, err
	}
	if offer.Joiner < 0 || offer.Joiner >= len(offer.Members) ||
		offer.Members[offer.Joiner].Addr != d.JoinAddr {
		return nil, fmt.Errorf("parallax: admission offer does not list this agent at its joiner slot")
	}
	newRes := resourceFromMembers(offer)
	ndc := *d
	ndc.Machine = offer.Joiner
	ndc.Addrs = offer.Addrs()
	ndc.JoinTarget = ""
	ndc.DialTimeout = timeout
	cfg.Dist = &ndc
	root := cfg.AutoCheckpoint.Dir
	sdir := checkpoint.StepDir(root, int(offer.Step))
	// Shard 0 of the boundary save is the old topology's; the elastic
	// install reads every old shard, and the joiner (like the survivors)
	// only reads them before the post-rendezvous barriers allow anyone
	// to start the new-topology re-save.
	meta, recs, err := checkpoint.ReadShard(sdir, 0)
	if err != nil {
		return nil, err
	}
	ns, err := open(ctx, g, newRes, cfg, &restoreSpec{meta: meta}, nil)
	if err != nil {
		return nil, err
	}
	if err := elasticRestore(ns, sdir, meta, recs); err != nil {
		ns.Close()
		return nil, err
	}
	ns.armChaosElastic()
	return ns, nil
}

// adoptMembers rewrites a restarting agent's launch flags from the
// MEMBERS record in the checkpoint root: the cluster may have grown or
// shrunk around the restart, and the record — not the flags — is the
// authoritative membership. The agent finds itself by its own address;
// an address no longer listed means the cluster shed this machine.
func adoptMembers(cfg *Config, resource *ResourceInfo) error {
	d := cfg.Dist
	if d.Machine < 0 || d.Machine >= len(d.Addrs) {
		return fmt.Errorf("parallax: machine %d outside the %d-address list", d.Machine, len(d.Addrs))
	}
	m, err := checkpoint.ReadMembers(cfg.AutoCheckpoint.Dir)
	if err != nil {
		return err
	}
	if m == nil {
		return nil
	}
	self := d.Addrs[d.Machine]
	idx := m.IndexOf(self)
	if idx < 0 {
		return fmt.Errorf("parallax: %s is no longer a member of the elastic cluster (membership epoch %d); rejoin with DistConfig.JoinTarget",
			self, m.Epoch)
	}
	dc := *d
	dc.Machine = idx
	dc.Addrs = m.Addrs()
	cfg.Dist = &dc
	*resource = resourceFromMembers(m)
	return nil
}

// shrinkTarget reports whether err names a dead peer this agent should
// shed via an elastic shrink rather than wait out with an in-place
// recovery.
func (s *Session) shrinkTarget(cause error) (int, bool) {
	if !s.cfg.Elastic || !s.cfg.Recovery.AllowShrink || s.dist == nil {
		return 0, false
	}
	pf := peerFailureOf(cause)
	if pf == nil {
		return 0, false
	}
	n := s.resource.NumMachines()
	if pf.Rank < 0 || pf.Rank >= n || pf.Rank == s.dist.Machine || n < 2 {
		return 0, false
	}
	return pf.Rank, true
}

// shrinkRecover re-forms the cluster without the failed machine: every
// survivor independently derives the identical post-shrink membership
// (same failure attribution, same member list), records it, and
// rebuilds from the latest complete checkpoint at the reduced world
// size. Unlike the in-place path, the post-shrink loss trajectory
// necessarily diverges from the uninterrupted run — a machine's workers
// vanished — but replayed steps stay suppressed, so every step is still
// yielded exactly once.
func (s *Session) shrinkRecover(ctx context.Context, failed int) error {
	root := s.cfg.AutoCheckpoint.Dir
	oldN := s.resource.NumMachines()
	step, sdir, err := checkpoint.LatestComplete(root, oldN)
	if err != nil {
		return err
	}
	if step < 0 {
		return fmt.Errorf("parallax: no complete auto-checkpoint under %s to shrink from", root)
	}
	meta0, _, err := checkpoint.ReadShard(sdir, 0)
	if err != nil {
		return err
	}
	cur := s.currentMembers()
	rec := &transport.Membership{
		Epoch: s.epoch + 1, Step: meta0.Step, Cursor: meta0.Cursor,
		Parts: meta0.Parts, Joiner: -1,
		Members: removeMember(cur.Members, failed),
	}
	// Every survivor writes the same bytes; the atomic renames commute.
	if err := checkpoint.WriteEpoch(root, s.epoch+1); err != nil {
		return err
	}
	if err := checkpoint.WriteMembers(root, rec); err != nil {
		return err
	}
	idx := rec.IndexOf(s.dist.Addrs[s.dist.Machine])
	if idx < 0 {
		return fmt.Errorf("parallax: shrink membership dropped this machine")
	}
	if err := s.rebuildAt(ctx, sdir, rec, idx, s.epoch+1); err != nil {
		return err
	}
	s.recoveries++
	return nil
}

// currentMembers renders the session's live membership from its address
// list and resources.
func (s *Session) currentMembers() *transport.Membership {
	members := make([]transport.Member, len(s.dist.Addrs))
	for i := range members {
		members[i] = transport.Member{Addr: s.dist.Addrs[i], GPUs: s.resource.GPUsPerMachine(i)}
	}
	return &transport.Membership{
		Epoch: s.epoch, Step: int64(s.trainer.StepCount()), Cursor: s.cursor,
		Parts: s.parts, Joiner: -1, Members: members,
	}
}

// tcpFabric unwraps the trainer's fabric (through the chaos wrapper if
// armed) down to the TCP fabric with the elastic join endpoints; nil
// for in-process fabrics.
func (s *Session) tcpFabric() *transport.TCP {
	fab := s.trainer.Fabric()
	if u, ok := fab.(interface{ Unwrap() transport.Fabric }); ok {
		fab = u.Unwrap()
	}
	t, _ := fab.(*transport.TCP)
	return t
}

// resourceFromMembers derives the cluster resources a membership
// implies. Hosts are positional (m0, m1, ...) — matching Uniform's
// naming — because agreement and placement depend only on counts, and
// positional names keep the topology fingerprint a pure function of the
// member list on every agent.
func resourceFromMembers(m *transport.Membership) ResourceInfo {
	ms := make([]cluster.Machine, len(m.Members))
	for i, mem := range m.Members {
		gpus := make([]int, mem.GPUs)
		for j := range gpus {
			gpus[j] = j
		}
		ms[i] = cluster.Machine{Host: fmt.Sprintf("m%d", i), GPUs: gpus}
	}
	return ResourceInfo{Machines: ms}
}

// armChaosElastic wires the chaos injector's elastic hooks to this
// session; armed once on the long-lived outer session so the closures
// survive fabric rebuilds (the injector itself already does).
func (s *Session) armChaosElastic() {
	if s.chaos == nil || !s.cfg.Elastic {
		return
	}
	s.chaos.OnLeave = func(step, machine int) {
		if s.dist != nil && s.dist.Machine == machine {
			s.leaving.Store(true)
		}
	}
}

// Leave requests this agent's voluntary departure from its elastic
// cluster. The departure happens at the next step boundary: the
// survivors agree on a membership without this machine and reshard its
// parameter-server state, and this session's Steps iterator ends with
// an error wrapping ErrLeft. Safe to call from another goroutine.
func (s *Session) Leave() error {
	if s.closed {
		return fmt.Errorf("parallax: leave on %w session", ErrClosed)
	}
	if !s.memberRounds() {
		return fmt.Errorf("parallax: Leave requires WithElastic, WithDist, and WithAutoCheckpoint")
	}
	if len(s.dist.Addrs) < 2 {
		return fmt.Errorf("parallax: cannot leave a single-member cluster")
	}
	s.leaving.Store(true)
	return nil
}

// Resize reshards a single-process elastic session to a different
// machine set in place: the session saves its state, rebuilds the
// runtime at the new resources, and restores through the same
// resharding path distributed transitions use. Like Repartition, it
// must not run concurrently with the step drivers. Distributed clusters
// resize through JoinTarget and Leave instead.
func (s *Session) Resize(ctx context.Context, resource ResourceInfo) error {
	if s.closed {
		return fmt.Errorf("parallax: resize on %w session", ErrClosed)
	}
	if s.dist != nil {
		return fmt.Errorf("parallax: Resize is single-process only; distributed clusters grow with JoinTarget and shrink with Leave")
	}
	if !s.cfg.Elastic {
		return fmt.Errorf("parallax: Resize requires WithElastic")
	}
	if err := resource.Validate(); err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "parallax-resize-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	if err := s.Save(dir); err != nil {
		return err
	}
	meta, recs, err := checkpoint.ReadShard(dir, 0)
	if err != nil {
		return err
	}
	s.trainer.Close()
	ns, err := open(ctx, s.g, resource, s.cfg, &restoreSpec{meta: meta}, s.chaos)
	if err != nil {
		s.closed = true
		return err
	}
	if err := ns.install(dir, 0, meta, recs); err != nil {
		ns.Close()
		s.closed = true
		return err
	}
	s.trainer = ns.trainer
	s.plan = ns.plan
	s.parts = ns.parts
	s.resource = resource
	s.workers = resource.TotalGPUs()
	s.feeds = make([]Feed, s.workers)
	s.decision = ns.decision
	s.tunePending = ns.tunePending
	s.saveHook = ns.saveHook
	return nil
}

// Members returns the agent addresses of the cluster this session is
// currently a member of (nil for single-process sessions). The slice is
// a copy.
func (s *Session) Members() []string {
	if s.dist == nil {
		return nil
	}
	return append([]string(nil), s.dist.Addrs...)
}
