package parallax

// Markdown link checker over the documentation suite: every relative
// link in the tracked markdown files must resolve to a file or
// directory in the repository, so README/DESIGN/docs refactors cannot
// silently strand readers. External (scheme-prefixed) links and pure
// intra-document anchors are skipped. CI runs this test explicitly as
// the docs gate.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// docFiles are the markdown documents the suite guards. Listing them
// explicitly (rather than globbing) keeps generated or scratch markdown
// out of the gate and makes a missing document itself a failure.
var docFiles = []string{
	"README.md",
	"DESIGN.md",
	"docs/OPERATIONS.md",
	"internal/README.md",
	"ROADMAP.md",
	"PAPER.md",
}

// mdLink matches inline markdown links [text](target); images and
// reference-style definitions are out of scope for this suite.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func TestMarkdownLinks(t *testing.T) {
	for _, doc := range docFiles {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Errorf("documentation file missing: %v", err)
			continue
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external
			}
			target, _, _ = strings.Cut(target, "#")
			if target == "" {
				continue // intra-document anchor
			}
			resolved := filepath.Join(filepath.Dir(doc), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s)", doc, m[1], resolved)
			}
		}
	}
}
