package parallax

// Membership proposal codes (DESIGN.md §14). Every elastic agent
// contributes one scalar per step boundary to the "member" agreement
// round: 0 when it has nothing to propose, otherwise an encoding of
// (proposing machine, change kind). The cluster-wide maximum elects a
// single winner deterministically on every agent:
//
//   - a higher machine index always beats a lower one (ties are
//     impossible — one machine makes at most one proposal per round);
//   - for the same machine, a leave beats a join (a machine on its way
//     out must not adopt a joiner it won't be around to serve).
//
// The code carries only the winner's identity; the full member list it
// proposes travels through a membership record the proposer wrote to
// the checkpoint root before the round (checkpoint.WriteMembershipRecord),
// so the agreement stays a plain scalar fold and losing proposals leave
// no trace.

import (
	"errors"
	"fmt"

	"parallax/internal/transport"
)

// Membership change kinds, chosen so leave > join within one machine's
// code range.
const (
	proposeJoin  = 1
	proposeLeave = 2
)

// proposalCode encodes a machine's proposal as a positive scalar for
// the max-fold; 0 is reserved for "no proposal".
func proposalCode(machine, kind int) float64 {
	return float64(4*(machine+1) + kind)
}

// decodeProposal inverts proposalCode, rejecting scalars no agent can
// have produced (a corrupt fold would otherwise reshard the cluster
// onto garbage).
func decodeProposal(code float64) (machine, kind int, err error) {
	c := int(code)
	if float64(c) != code || c < 4+proposeJoin {
		return 0, 0, fmt.Errorf("not a proposal code")
	}
	kind = c % 4
	if kind != proposeJoin && kind != proposeLeave {
		return 0, 0, fmt.Errorf("bad proposal kind %d", kind)
	}
	return c/4 - 1, kind, nil
}

// foldProposals is the agreement's fold: the maximum over all
// contributed codes, 0 when nobody proposed. The property tests drive
// it over randomized observation orders to pin order-independence.
func foldProposals(codes []float64) float64 {
	best := 0.0
	for _, c := range codes {
		if c > best {
			best = c
		}
	}
	return best
}

// admitMember appends a joiner to a member list, copying — proposal
// records must not alias the live list.
func admitMember(members []transport.Member, m transport.Member) []transport.Member {
	out := make([]transport.Member, 0, len(members)+1)
	out = append(out, members...)
	return append(out, m)
}

// removeMember drops the member at the given index, copying.
func removeMember(members []transport.Member, machine int) []transport.Member {
	out := make([]transport.Member, 0, len(members)-1)
	out = append(out, members[:machine]...)
	return append(out, members[machine:][1:]...)
}

// peerFailureOf extracts the rank-attributed failure from an error
// chain, nil when there is none.
func peerFailureOf(err error) *PeerFailure {
	var pf *PeerFailure
	if errors.As(err, &pf) {
		return pf
	}
	return nil
}
