// Package collective implements the communication primitives the paper's
// AllReduce architecture relies on — ring AllReduce, ring AllGatherv, and
// Broadcast — as real message-passing algorithms over an in-memory
// transport, executed by one goroutine per worker.
//
// These are functional implementations moving real tensor data, used by the
// real-mode training engine and the correctness test suite. The virtual-time
// *cost* of the same communication patterns is modelled separately in
// internal/engine on top of internal/simnet; keeping data plane and cost
// plane separate lets us run paper-scale byte volumes without allocating
// paper-scale tensors.
package collective

import (
	"fmt"
	"sync"
)

// message is one transport datagram.
type message struct {
	tag     string
	payload interface{}
}

// World is the shared transport for a fixed group of ranks: a buffered FIFO
// channel per directed pair, plus a shared recycle pool for the float
// chunk buffers the ring algorithms ship around (a persistent training
// loop reuses the same handful of buffers every step instead of
// allocating fresh ones).
type World struct {
	size  int
	pipes [][]chan message // pipes[src][dst]

	bufMu sync.Mutex
	bufs  map[int][][]float32 // capacity -> idle buffers
}

// getBuf returns a length-n float buffer, reusing a pooled one when
// available. Contents are unspecified.
func (w *World) getBuf(n int) []float32 {
	w.bufMu.Lock()
	if l := w.bufs[n]; len(l) > 0 {
		b := l[len(l)-1]
		l[len(l)-1] = nil
		w.bufs[n] = l[:len(l)-1]
		w.bufMu.Unlock()
		return b
	}
	w.bufMu.Unlock()
	return make([]float32, n)
}

// putBuf recycles a buffer obtained from getBuf (or received from a peer
// that got it there). The caller must not use it afterwards.
func (w *World) putBuf(b []float32) {
	if len(b) == 0 {
		return
	}
	w.bufMu.Lock()
	w.bufs[len(b)] = append(w.bufs[len(b)], b)
	w.bufMu.Unlock()
}

// NewWorld creates a transport for size ranks. Channel buffers are sized so
// that the ring algorithms' send-then-receive step pattern cannot deadlock.
func NewWorld(size int) *World {
	if size <= 0 {
		panic(fmt.Sprintf("collective: world size %d", size))
	}
	w := &World{size: size, pipes: make([][]chan message, size), bufs: make(map[int][][]float32)}
	for s := range w.pipes {
		w.pipes[s] = make([]chan message, size)
		for d := range w.pipes[s] {
			w.pipes[s][d] = make(chan message, 8)
		}
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Comm is one rank's endpoint in a World.
type Comm struct {
	world *World
	rank  int
}

// Comm returns the endpoint for the given rank.
func (w *World) Comm(rank int) *Comm {
	if rank < 0 || rank >= w.size {
		panic(fmt.Sprintf("collective: rank %d out of range [0,%d)", rank, w.size))
	}
	return &Comm{world: w, rank: rank}
}

// Rank returns this endpoint's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// Send delivers payload to dst under tag. It blocks only if the pair's
// buffer is full.
func (c *Comm) Send(dst int, tag string, payload interface{}) {
	c.world.pipes[c.rank][dst] <- message{tag: tag, payload: payload}
}

// Recv blocks until a message from src arrives and returns its payload.
// A tag mismatch means the two ranks' protocols diverged; that is a bug,
// so it panics rather than silently reordering.
func (c *Comm) Recv(src int, tag string) interface{} {
	m := <-c.world.pipes[src][c.rank]
	if m.tag != tag {
		panic(fmt.Sprintf("collective: rank %d expected tag %q from %d, got %q", c.rank, tag, src, m.tag))
	}
	return m.payload
}

// Barrier blocks until all ranks have entered it. Implemented as a
// dissemination barrier (log₂ rounds).
func (c *Comm) Barrier(tag string) {
	n := c.Size()
	for dist := 1; dist < n; dist *= 2 {
		dst := (c.rank + dist) % n
		src := (c.rank - dist + n) % n
		c.Send(dst, tag, nil)
		c.Recv(src, tag)
	}
}

// RunWorld spawns fn for every rank on its own goroutine and waits for all
// to finish. It is the harness the tests and real-mode engine use.
func RunWorld(size int, fn func(c *Comm)) {
	w := NewWorld(size)
	var wg sync.WaitGroup
	wg.Add(size)
	for r := 0; r < size; r++ {
		go func(r int) {
			defer wg.Done()
			fn(w.Comm(r))
		}(r)
	}
	wg.Wait()
}
