// Package collective implements the communication primitives the paper's
// AllReduce architecture relies on — ring AllReduce, ring AllGatherv, and
// Broadcast — as real message-passing algorithms over a pluggable wire
// transport (internal/transport), executed by one goroutine per worker.
//
// These are functional implementations moving real tensor data, used by the
// real-mode training engine and the correctness test suite. The algorithms
// are transport-agnostic: the same schedule runs over the in-process
// channel fabric (transport.Inproc, the single-process fast path with
// pooled chunk buffers and zero serialization) or over persistent TCP
// connections between agent processes (transport.TCP). The virtual-time
// *cost* of the same communication patterns is modelled separately in
// internal/engine on top of internal/simnet; keeping data plane and cost
// plane separate lets us run paper-scale byte volumes without allocating
// paper-scale tensors.
package collective

import (
	"fmt"
	"sync"

	"parallax/internal/transport"
)

// Comm is one worker rank's endpoint in a collective group: a transport
// conduit plus the group size. The group is the first size endpoints of
// the conduit's topology (worker ranks come first, parameter-server
// endpoints after), so collectives never address a server endpoint.
type Comm struct {
	t    transport.Conduit
	rank int
	n    int
}

// NewComm wraps a transport conduit into a collective endpoint for a
// group of size worker ranks. The conduit's rank must lie inside the
// group.
func NewComm(t transport.Conduit, size int) *Comm {
	if r := t.Rank(); r < 0 || r >= size {
		panic(fmt.Sprintf("collective: conduit rank %d outside group [0,%d)", r, size))
	}
	return &Comm{t: t, rank: t.Rank(), n: size}
}

// Rank returns this endpoint's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the group size.
func (c *Comm) Size() int { return c.n }

// SendScalar ships one float64 to dst under tag (loss exchange,
// barriers).
func (c *Comm) SendScalar(dst int, tag string, v float64) { c.t.SendScalar(dst, tag, v) }

// RecvScalar blocks for a float64 from src under tag. A tag mismatch
// means the two ranks' protocols diverged; that is a bug, so the
// transport panics rather than silently reordering.
func (c *Comm) RecvScalar(src int, tag string) float64 { return c.t.RecvScalar(src, tag) }

// Barrier blocks until all ranks have entered it. Implemented as a
// dissemination barrier (log₂ rounds).
func (c *Comm) Barrier(tag string) {
	n := c.n
	for dist := 1; dist < n; dist *= 2 {
		dst := (c.rank + dist) % n
		src := (c.rank - dist + n) % n
		c.t.SendScalar(dst, tag, 0)
		c.t.RecvScalar(src, tag)
	}
}

// CloseBarrier is Barrier for shutdown paths: it rendezvouses all ranks
// but treats the fabric closing mid-barrier as completion. The
// dissemination barrier has the property that any rank completing it
// proves every rank has ENTERED it — and ranks enter only after their
// last step's traffic is fully acknowledged — so once a peer finishes
// and tears its fabric down (which fail-stops connected fabrics), the
// only messages lost are barrier scalars and the drain guarantee the
// barrier exists for already holds. Sends on a closed fabric drop
// silently; a recv on one panics, which this absorbs.
func (c *Comm) CloseBarrier(tag string) {
	defer func() { _ = recover() }()
	c.Barrier(tag)
}

// World is the in-process convenience fabric for a fixed group of worker
// ranks — the harness tests and the single-process trainer path build
// on. It wraps a transport.Inproc channel fabric.
type World struct {
	fab  *transport.Inproc
	size int
}

// NewWorld creates an in-process transport for size worker ranks.
func NewWorld(size int) *World {
	if size <= 0 {
		panic(fmt.Sprintf("collective: world size %d", size))
	}
	return &World{fab: transport.NewInproc(transport.WorkersOnly(size)), size: size}
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Comm returns the endpoint for the given rank.
func (w *World) Comm(rank int) *Comm {
	return NewComm(w.fab.Conduit(rank), w.size)
}

// RunWorld spawns fn for every rank on its own goroutine and waits for all
// to finish. It is the harness the tests and real-mode engine use.
func RunWorld(size int, fn func(c *Comm)) {
	w := NewWorld(size)
	var wg sync.WaitGroup
	wg.Add(size)
	for r := 0; r < size; r++ {
		go func(r int) {
			defer wg.Done()
			fn(w.Comm(r))
		}(r)
	}
	wg.Wait()
}
