package collective

import (
	"fmt"

	"parallax/internal/tensor"
	"parallax/internal/transport"
)

// Compressed dense aggregation. Both entry points follow the wire
// compression contract (see internal/transport/compress.go): every lossy
// transform happens here in the data plane, deterministically and
// identically on every fabric, so the wire layer's compact re-encoding is
// lossless and compressed runs stay bit-identical inproc vs TCP.

// AllReduceCodecTagged is AllReduceTagged with half-precision payloads:
// the tensor is rounded onto the codec's grid, reduce-scattered with the
// owner folding contributions in exact f32 rank order, and the folded
// chunks are re-rounded before the all-gather so the second phase also
// travels at 2 bytes/value. Every rank ends with the identical tensor:
// per chunk, quantize(sum over ranks of quantize(contribution)).
// CodecF32 degenerates to the exact AllReduceTagged.
func AllReduceCodecTagged(c *Comm, tags Tags, t *tensor.Dense, codec transport.Codec) {
	if codec == transport.CodecF32 {
		AllReduceTagged(c, tags, t)
		return
	}
	data := t.Data()
	codec.Quantize(data)
	n := c.Size()
	if n == 1 {
		return
	}

	// Reduce-scatter: direct exchange of on-grid chunks, exact f32 folds.
	for dst := 0; dst < n; dst++ {
		if dst == c.rank {
			continue
		}
		ss, se := chunkBounds(len(data), n, dst)
		if se == ss {
			continue
		}
		c.t.SendF32C(dst, tags.RS, data[ss:se], codec)
	}
	os, oe := chunkBounds(len(data), n, c.rank)
	if oe > os {
		own := data[os:oe]
		tmp := c.t.GetBuf(oe - os)
		copy(tmp, own)
		for r := 0; r < n; r++ {
			src := tmp
			if r != c.rank {
				in := c.t.RecvF32(r, tags.RS)
				if len(in) != oe-os {
					panic(fmt.Sprintf("collective: allreduce chunk size mismatch %d vs %d", len(in), oe-os))
				}
				src = in
			}
			if r == 0 {
				copy(own, src)
			} else {
				tensor.AddTo(src, own)
			}
			if r != c.rank {
				c.t.PutBuf(src)
			}
		}
		c.t.PutBuf(tmp)
		// Back onto the grid before the all-gather re-ships it.
		codec.Quantize(own)
	}

	// All-gather: identical ring to AllReduceTagged, compressed payloads.
	right := (c.rank + 1) % n
	left := (c.rank - 1 + n) % n
	for s := 0; s < n-1; s++ {
		sendChunk := (c.rank - s + n) % n
		recvChunk := (c.rank - s - 1 + n) % n
		ss, se := chunkBounds(len(data), n, sendChunk)
		c.t.SendF32C(right, tags.AG, data[ss:se], codec)
		in := c.t.RecvF32(left, tags.AG)
		rs, re := chunkBounds(len(data), n, recvChunk)
		if len(in) != re-rs {
			panic(fmt.Sprintf("collective: allgather chunk size mismatch %d vs %d", len(in), re-rs))
		}
		copy(data[rs:re], in)
		c.t.PutBuf(in)
	}
}

// TopKScratch holds the selection workspace AllReduceTopKTagged reuses
// across steps, so the hot loop allocates nothing.
type TopKScratch struct {
	abs  []float32
	idx  []int32
	vals []float32
}

// AllReduceTopKTagged sums t across ranks under top-k sparsification with
// error feedback (Strom-style; the compressed sibling of the fusion
// bucket's AllReduceTagged):
//
//  1. the residual left over from earlier steps folds into the gradient
//     (acc = grad + res);
//  2. each rank selects its k = max(1, frac·len) locally largest |acc|
//     entries (ties broken toward the lower index), rounds the surviving
//     values onto codec's grid, and keeps everything it did NOT send as
//     the next residual (res = acc − scatter(selection));
//  3. every rank ships its selection to every other rank and all ranks
//     scatter-add the N selections into the zeroed tensor in rank order
//     0..N−1.
//
// The rank-ordered fold of step 3 makes every element's f32 accumulation
// order fabric- and layout-independent, the same property the exact
// rank-ordered reduce-scatter pins; combined with on-grid values it keeps
// compressed runs bit-identical across fabrics. res must have t's length;
// it is read and rewritten. The AG tag is unused (a selection exchange
// has a single phase).
func AllReduceTopKTagged(c *Comm, tags Tags, t *tensor.Dense, frac float64, codec transport.Codec, res []float32, scratch *TopKScratch) {
	data := t.Data()
	if len(res) != len(data) {
		panic(fmt.Sprintf("collective: top-k residual length %d for tensor length %d", len(res), len(data)))
	}
	// Error feedback: fold the residual in, then select on the sum.
	tensor.AddTo(res, data)

	k := int(frac * float64(len(data)))
	if k < 1 {
		k = 1
	}
	if k > len(data) {
		k = len(data)
	}

	// Select the k largest |acc| with ascending-index tie-break.
	if cap(scratch.abs) < len(data) {
		scratch.abs = make([]float32, len(data))
	}
	abs := scratch.abs[:len(data)]
	for i, v := range data {
		if v < 0 {
			abs[i] = -v
		} else {
			abs[i] = v
		}
	}
	if cap(scratch.idx) < k {
		scratch.idx = make([]int32, k)
		scratch.vals = make([]float32, k)
	}
	idx := scratch.idx[:0]
	vals := scratch.vals[:0]
	if k == len(data) {
		for i := range data {
			idx = append(idx, int32(i))
		}
	} else {
		// kthLargest permutes abs, so membership is re-tested against
		// data: strictly-above entries always survive, the remaining
		// budget goes to ==thr entries in ascending index order.
		thr := kthLargest(abs, k)
		above := 0
		for _, v := range data {
			if v < 0 {
				v = -v
			}
			if v > thr {
				above++
			}
		}
		atThr := k - above
		for i, v := range data {
			if v < 0 {
				v = -v
			}
			if v > thr {
				idx = append(idx, int32(i))
			} else if v == thr && atThr > 0 {
				idx = append(idx, int32(i))
				atThr--
			}
		}
	}
	for _, i := range idx {
		vals = append(vals, data[i])
	}
	codec.Quantize(vals)

	// Residual: everything not shipped, plus the rounding error of what
	// was. data currently holds acc; subtract the on-grid selection.
	copy(res, data)
	for j, i := range idx {
		res[i] -= vals[j]
	}

	n := c.Size()
	ch := transport.SparseChunk{Len: len(data), Idx: idx, Vals: vals, Codec: codec}
	for dst := 0; dst < n; dst++ {
		if dst != c.rank {
			c.t.SendF32Sparse(dst, tags.RS, ch)
		}
	}

	// Zero the tensor and scatter-add every rank's selection in rank
	// order, so each element's accumulation order is deterministic.
	for i := range data {
		data[i] = 0
	}
	for r := 0; r < n; r++ {
		if r == c.rank {
			for j, i := range idx {
				data[i] += vals[j]
			}
			continue
		}
		in := c.t.RecvF32Sparse(r, tags.RS)
		if in.Len != len(data) {
			panic(fmt.Sprintf("collective: top-k chunk length mismatch %d vs %d", in.Len, len(data)))
		}
		for j, i := range in.Idx {
			data[i] += in.Vals[j]
		}
	}
}

// kthLargest returns the k-th largest value of a (1 <= k <= len(a)):
// iterative quickselect with deterministic median-of-three pivots and
// three-way partitioning, so duplicate-heavy inputs (a freshly zeroed
// gradient bucket is all zeros) stay linear. a is permuted in place (it
// is selection scratch).
func kthLargest(a []float32, k int) float32 {
	target := len(a) - k // index in ascending sorted order
	lo, hi := 0, len(a)-1
	for lo < hi {
		mid := lo + (hi-lo)/2
		pivot := median3(a[lo], a[mid], a[hi])
		lt, gt := lo, hi
		for i := lo; i <= gt; {
			switch {
			case a[i] < pivot:
				a[i], a[lt] = a[lt], a[i]
				lt++
				i++
			case a[i] > pivot:
				a[i], a[gt] = a[gt], a[i]
				gt--
			default:
				i++
			}
		}
		switch { // a[lt..gt] now all equal pivot
		case target < lt:
			hi = lt - 1
		case target > gt:
			lo = gt + 1
		default:
			return pivot
		}
	}
	return a[lo]
}

func median3(a, b, c float32) float32 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}
