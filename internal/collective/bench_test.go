package collective

import (
	"strconv"
	"testing"

	"parallax/internal/tensor"
)

// The latency case for tensor fusion, isolated from graph execution: one
// all-reduce over a fused buffer vs one all-reduce per small variable,
// moving identical bytes. Per-collective cost (tag rendezvous, chunk
// buffer shipping, goroutine wakeups) is paid once instead of `vars`
// times.
func BenchmarkAllReduceManySmallTensors(b *testing.B) {
	const (
		ranks = 4
		vars  = 50
		elems = 256 // per variable
	)
	run := func(b *testing.B, fused bool) {
		b.ReportAllocs()
		w := NewWorld(ranks)
		tensors := make([]*tensor.Dense, ranks)
		for r := range tensors {
			tensors[r] = tensor.NewRNG(int64(r)).RandN(1, vars*elems)
		}
		fusedTags := TagsFor("fused")
		varTags := make([]Tags, vars)
		for v := range varTags {
			varTags[v] = TagsFor("v" + strconv.Itoa(v))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			done := make(chan struct{}, ranks)
			for r := 0; r < ranks; r++ {
				go func(r int) {
					c := w.Comm(r)
					if fused {
						AllReduceTagged(c, fusedTags, tensors[r])
					} else {
						for v := 0; v < vars; v++ {
							AllReduceTagged(c, varTags[v], tensors[r].SliceRows(v*elems, (v+1)*elems))
						}
					}
					done <- struct{}{}
				}(r)
			}
			for r := 0; r < ranks; r++ {
				<-done
			}
		}
	}
	b.Run("fused", func(b *testing.B) { run(b, true) })
	b.Run("pervariable", func(b *testing.B) { run(b, false) })
}
