package collective

import (
	"testing"

	"parallax/internal/tensor"
	"parallax/internal/transport"
)

func TestAllReduceCodecF32MatchesExact(t *testing.T) {
	// CodecF32 must be the exact path, bit for bit.
	for _, n := range []int{1, 2, 4} {
		const elems = 37
		exact := make([]*tensor.Dense, n)
		coded := make([]*tensor.Dense, n)
		input := func(rank int) *tensor.Dense {
			return tensor.NewRNG(int64(rank+1)).RandN(1, elems)
		}
		RunWorld(n, func(c *Comm) {
			d := input(c.Rank())
			AllReduceTagged(c, TagsFor("e"), d)
			exact[c.Rank()] = d
		})
		RunWorld(n, func(c *Comm) {
			d := input(c.Rank())
			AllReduceCodecTagged(c, TagsFor("q"), d, transport.CodecF32)
			coded[c.Rank()] = d
		})
		for r := 0; r < n; r++ {
			for i := 0; i < elems; i++ {
				if exact[r].Data()[i] != coded[r].Data()[i] {
					t.Fatalf("n=%d rank %d elem %d: exact %v != coded %v",
						n, r, i, exact[r].Data()[i], coded[r].Data()[i])
				}
			}
		}
	}
}

func TestAllReduceCodecHalfPrecision(t *testing.T) {
	for _, codec := range []transport.Codec{transport.CodecF16, transport.CodecBF16} {
		for _, n := range []int{1, 2, 3, 4} {
			const elems = 29
			results := make([]*tensor.Dense, n)
			inputs := make([]*tensor.Dense, n)
			for r := 0; r < n; r++ {
				inputs[r] = tensor.NewRNG(int64(100*r+elems)).RandN(1, elems)
			}
			RunWorld(n, func(c *Comm) {
				d := inputs[c.Rank()].Clone()
				AllReduceCodecTagged(c, TagsFor("h"), d, codec)
				results[c.Rank()] = d
			})
			// All ranks identical, bit for bit.
			for r := 1; r < n; r++ {
				for i := 0; i < elems; i++ {
					if results[r].Data()[i] != results[0].Data()[i] {
						t.Fatalf("%s n=%d rank %d elem %d diverged", codec, n, r, i)
					}
				}
			}
			// Matches the reference: per chunk, quantize(sum of
			// quantized contributions) — computed here without any
			// transport in the loop.
			want := make([]float32, elems)
			for r := 0; r < n; r++ {
				q := append([]float32(nil), inputs[r].Data()...)
				codec.Quantize(q)
				for i, v := range q {
					want[i] += v
				}
			}
			codec.Quantize(want)
			for i := 0; i < elems; i++ {
				if results[0].Data()[i] != want[i] {
					t.Fatalf("%s n=%d elem %d = %v, want %v", codec, n, i, results[0].Data()[i], want[i])
				}
			}
			// Result values lie on the codec's grid (quantize idempotent).
			again := append([]float32(nil), results[0].Data()...)
			codec.Quantize(again)
			for i := range again {
				if again[i] != results[0].Data()[i] {
					t.Fatalf("%s result element %d off grid", codec, i)
				}
			}
		}
	}
}

func TestAllReduceTopKFullFractionExact(t *testing.T) {
	// frac=1 with CodecF32 selects everything: the result equals the
	// plain sum and the residual is exactly zero.
	for _, n := range []int{1, 2, 3} {
		const elems = 23
		inputs := make([]*tensor.Dense, n)
		for r := 0; r < n; r++ {
			inputs[r] = tensor.NewRNG(int64(7*(r+1))).RandN(1, elems)
		}
		want := tensor.NewDense(elems)
		for _, in := range inputs {
			want.AddInto(in)
		}
		results := make([]*tensor.Dense, n)
		residuals := make([][]float32, n)
		RunWorld(n, func(c *Comm) {
			d := inputs[c.Rank()].Clone()
			res := make([]float32, elems)
			AllReduceTopKTagged(c, TagsFor("tk"), d, 1.0, transport.CodecF32, res, &TopKScratch{})
			results[c.Rank()] = d
			residuals[c.Rank()] = res
		})
		for r := 0; r < n; r++ {
			if results[r].MaxAbsDiff(want) > 1e-5 {
				t.Fatalf("n=%d rank %d top-k full fraction differs from dense sum", n, r)
			}
			for i, v := range residuals[r] {
				if v != 0 {
					t.Fatalf("n=%d rank %d residual[%d] = %v, want 0", n, r, i, v)
				}
			}
		}
	}
}

func TestAllReduceTopKErrorFeedback(t *testing.T) {
	// One rank, k=1: only the largest-|v| entry ships; everything else
	// lands in the residual and folds into the next step's selection.
	d := tensor.FromSlice([]float32{0.5, -3, 1, 0.25}, 4)
	res := make([]float32, 4)
	var scratch TopKScratch
	RunWorld(1, func(c *Comm) {
		AllReduceTopKTagged(c, TagsFor("ef"), d, 0.25, transport.CodecF32, res, &scratch)
	})
	if got := d.Data(); got[0] != 0 || got[1] != -3 || got[2] != 0 || got[3] != 0 {
		t.Fatalf("step 1 output %v, want [0 -3 0 0]", got)
	}
	if res[0] != 0.5 || res[1] != 0 || res[2] != 1 || res[3] != 0.25 {
		t.Fatalf("step 1 residual %v, want [0.5 0 1 0.25]", res)
	}
	// Step 2: new gradient folds with the residual before selection.
	d2 := tensor.FromSlice([]float32{0, 0, 0.5, 0}, 4)
	RunWorld(1, func(c *Comm) {
		AllReduceTopKTagged(c, TagsFor("ef"), d2, 0.25, transport.CodecF32, res, &scratch)
	})
	if got := d2.Data(); got[2] != 1.5 {
		t.Fatalf("step 2 did not select accumulated element: %v", got)
	}
	if res[2] != 0 || res[0] != 0.5 || res[3] != 0.25 {
		t.Fatalf("step 2 residual %v", res)
	}
}

func TestAllReduceTopKAllRanksAgreeBitwise(t *testing.T) {
	for _, codec := range []transport.Codec{transport.CodecF32, transport.CodecF16} {
		const n, elems = 4, 53
		results := make([]*tensor.Dense, n)
		RunWorld(n, func(c *Comm) {
			d := tensor.NewRNG(int64(31*(c.Rank()+1))).RandN(1, elems)
			res := make([]float32, elems)
			AllReduceTopKTagged(c, TagsFor("agree"), d, 0.1, codec, res, &TopKScratch{})
			results[c.Rank()] = d
		})
		for r := 1; r < n; r++ {
			for i := 0; i < elems; i++ {
				if results[r].Data()[i] != results[0].Data()[i] {
					t.Fatalf("%s rank %d elem %d diverged", codec, r, i)
				}
			}
		}
		// k = floor(0.1*53) = 5 per rank; at most n*k entries nonzero.
		nonzero := 0
		for _, v := range results[0].Data() {
			if v != 0 {
				nonzero++
			}
		}
		if nonzero > n*5 {
			t.Fatalf("%s %d nonzero entries, top-k budget is %d", codec, nonzero, n*5)
		}
	}
}

func TestTopKTieBreakAscending(t *testing.T) {
	// Four equal-magnitude entries, k=2: the two lowest indices win.
	d := tensor.FromSlice([]float32{1, -1, 1, -1}, 4)
	res := make([]float32, 4)
	RunWorld(1, func(c *Comm) {
		AllReduceTopKTagged(c, TagsFor("tie"), d, 0.5, transport.CodecF32, res, &TopKScratch{})
	})
	got := d.Data()
	if got[0] != 1 || got[1] != -1 || got[2] != 0 || got[3] != 0 {
		t.Fatalf("tie-break selected %v, want lowest indices [1 -1 0 0]", got)
	}
}

func TestKthLargest(t *testing.T) {
	cases := []struct {
		a    []float32
		k    int
		want float32
	}{
		{[]float32{3, 1, 2}, 1, 3},
		{[]float32{3, 1, 2}, 2, 2},
		{[]float32{3, 1, 2}, 3, 1},
		{[]float32{5}, 1, 5},
		{[]float32{2, 2, 2, 2}, 2, 2},
		{[]float32{0, 0, 0, 1}, 1, 1},
		{[]float32{0, 0, 0, 1}, 2, 0},
		{[]float32{7, 7, 1, 7, 3}, 3, 7},
		{[]float32{7, 7, 1, 7, 3}, 4, 3},
	}
	for _, tc := range cases {
		a := append([]float32(nil), tc.a...)
		if got := kthLargest(a, tc.k); got != tc.want {
			t.Errorf("kthLargest(%v, %d) = %v, want %v", tc.a, tc.k, got, tc.want)
		}
	}
	// Large duplicate-heavy input stays correct (and fast).
	big := make([]float32, 100000)
	for i := range big {
		big[i] = float32(i % 7)
	}
	if got := kthLargest(big, 1); got != 6 {
		t.Errorf("kthLargest dup-heavy = %v, want 6", got)
	}
}
