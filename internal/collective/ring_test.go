package collective

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"testing/quick"

	"parallax/internal/tensor"
)

func TestRingAllReduceSums(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8} {
		n := n
		const elems = 23 // deliberately not divisible by world sizes
		results := make([]*tensor.Dense, n)
		RunWorld(n, func(c *Comm) {
			d := tensor.NewDense(elems)
			for i := 0; i < elems; i++ {
				d.Data()[i] = float32(c.Rank()*100 + i)
			}
			RingAllReduce(c, "t", d)
			results[c.Rank()] = d
		})
		for i := 0; i < elems; i++ {
			var want float32
			for r := 0; r < n; r++ {
				want += float32(r*100 + i)
			}
			for r := 0; r < n; r++ {
				if got := results[r].Data()[i]; math.Abs(float64(got-want)) > 1e-3 {
					t.Fatalf("n=%d rank %d elem %d = %v, want %v", n, r, i, got, want)
				}
			}
		}
	}
}

func TestRingAllReduceTinyTensor(t *testing.T) {
	// Fewer elements than ranks: some chunks are empty.
	const n = 6
	results := make([]*tensor.Dense, n)
	RunWorld(n, func(c *Comm) {
		d := tensor.FromSlice([]float32{float32(c.Rank()), 1}, 2)
		RingAllReduce(c, "t", d)
		results[c.Rank()] = d
	})
	want0 := float32(0 + 1 + 2 + 3 + 4 + 5)
	for r := 0; r < n; r++ {
		if results[r].Data()[0] != want0 || results[r].Data()[1] != n {
			t.Fatalf("rank %d got %v", r, results[r].Data())
		}
	}
}

func TestAllGathervConcatsInRankOrder(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5} {
		results := make([]*tensor.Sparse, n)
		RunWorld(n, func(c *Comm) {
			rows := []int{c.Rank(), c.Rank()}
			vals := tensor.NewDense(2, 3)
			vals.Fill(float32(c.Rank() + 1))
			s := tensor.NewSparse(rows, vals, n+1)
			results[c.Rank()] = AllGatherv(c, "g", s)
		})
		for r := 0; r < n; r++ {
			got := results[r]
			if got.NNZRows() != 2*n {
				t.Fatalf("n=%d rank %d nnz = %d, want %d", n, r, got.NNZRows(), 2*n)
			}
			for origin := 0; origin < n; origin++ {
				if got.Rows[2*origin] != origin {
					t.Fatalf("n=%d rank %d block %d has row %d (not rank order)", n, r, origin, got.Rows[2*origin])
				}
				if got.Values.At(2*origin, 0) != float32(origin+1) {
					t.Fatalf("block %d values wrong", origin)
				}
			}
		}
	}
}

func TestAllGathervAllRanksAgree(t *testing.T) {
	const n = 4
	results := make([]*tensor.Sparse, n)
	RunWorld(n, func(c *Comm) {
		g := tensor.NewRNG(int64(c.Rank()))
		k := 1 + c.Rank()
		rows := make([]int, k)
		for i := range rows {
			rows[i] = g.Intn(10)
		}
		results[c.Rank()] = AllGatherv(c, "g", tensor.NewSparse(rows, g.RandN(1, k, 2), 10))
	})
	ref := results[0].ToDense()
	for r := 1; r < n; r++ {
		if results[r].ToDense().MaxAbsDiff(ref) > 1e-6 {
			t.Fatalf("rank %d gathered different effective gradient", r)
		}
	}
}

func TestBroadcastFromEveryRoot(t *testing.T) {
	const n = 5
	for root := 0; root < n; root++ {
		results := make([]*tensor.Dense, n)
		RunWorld(n, func(c *Comm) {
			d := tensor.NewDense(7)
			if c.Rank() == root {
				for i := range d.Data() {
					d.Data()[i] = float32(100*root + i)
				}
			}
			Broadcast(c, "b", d, root)
			results[c.Rank()] = d
		})
		for r := 0; r < n; r++ {
			for i := 0; i < 7; i++ {
				if results[r].Data()[i] != float32(100*root+i) {
					t.Fatalf("root=%d rank=%d elem %d = %v", root, r, i, results[r].Data()[i])
				}
			}
		}
	}
}

func TestReduceScalar(t *testing.T) {
	const n = 6
	var mu sync.Mutex
	var got []float64
	RunWorld(n, func(c *Comm) {
		total := ReduceScalar(c, "r", float64(c.Rank()+1))
		mu.Lock()
		got = append(got, total)
		mu.Unlock()
	})
	for _, v := range got {
		if v != 21 {
			t.Fatalf("ReduceScalar = %v, want 21", v)
		}
	}
}

func TestBarrierCompletes(t *testing.T) {
	const n = 7
	var mu sync.Mutex
	count := 0
	RunWorld(n, func(c *Comm) {
		mu.Lock()
		count++
		mu.Unlock()
		c.Barrier("b1")
		mu.Lock()
		if count != n {
			t.Errorf("rank %d passed barrier before all arrived (count=%d)", c.Rank(), count)
		}
		mu.Unlock()
	})
}

func TestRecvTagMismatchPanics(t *testing.T) {
	w := NewWorld(2)
	done := make(chan bool)
	go func() {
		defer func() { done <- recover() != nil }()
		w.Comm(0).SendScalar(1, "a", 0)
		w.Comm(1).RecvScalar(0, "b")
	}()
	if !<-done {
		t.Fatal("expected panic on tag mismatch")
	}
}

// The property transform's tensor fusion relies on: all-reducing one
// fused flat buffer is BIT-identical to all-reducing each variable's
// region separately, for any world size and any split. The rank-ordered
// reduce-scatter guarantees every element folds in rank order 0..n-1
// regardless of which chunk it lands in, so the fused layout cannot
// change float32 results.
func TestAllReduceFusedBitIdenticalToSplit(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5} {
		for _, sizes := range [][]int{
			{1, 1, 1},
			{5, 3},
			{7, 1, 12, 2},
			{23},
			{2, 2, 2, 2, 2, 2, 2, 2},
		} {
			total := 0
			for _, s := range sizes {
				total += s
			}
			rngInput := func(rank int) *tensor.Dense {
				return tensor.NewRNG(int64(rank*1000+total)).RandN(1, total)
			}
			fused := make([]*tensor.Dense, n)
			split := make([]*tensor.Dense, n)
			RunWorld(n, func(c *Comm) {
				d := rngInput(c.Rank())
				AllReduceTagged(c, TagsFor("fused"), d)
				fused[c.Rank()] = d
			})
			RunWorld(n, func(c *Comm) {
				d := rngInput(c.Rank())
				off := 0
				for vi, s := range sizes {
					AllReduceTagged(c, TagsFor(fmt.Sprintf("v%d", vi)), d.SliceRows(off, off+s))
					off += s
				}
				split[c.Rank()] = d
			})
			for r := 0; r < n; r++ {
				for i := 0; i < total; i++ {
					if fused[r].Data()[i] != split[r].Data()[i] {
						t.Fatalf("n=%d sizes=%v rank %d elem %d: fused %v != split %v",
							n, sizes, r, i, fused[r].Data()[i], split[r].Data()[i])
					}
				}
			}
		}
	}
}

// Property: RingAllReduce equals the sequential sum for random sizes and
// world sizes.
func TestRingAllReduceProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := tensor.NewRNG(seed)
		n := 1 + g.Intn(6)
		elems := 1 + g.Intn(40)
		inputs := make([]*tensor.Dense, n)
		want := tensor.NewDense(elems)
		for r := range inputs {
			inputs[r] = g.RandN(1, elems)
			want.AddInto(inputs[r])
		}
		results := make([]*tensor.Dense, n)
		RunWorld(n, func(c *Comm) {
			d := inputs[c.Rank()].Clone()
			RingAllReduce(c, "p", d)
			results[c.Rank()] = d
		})
		for r := 0; r < n; r++ {
			if results[r].MaxAbsDiff(want) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
