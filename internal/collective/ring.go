package collective

import (
	"fmt"

	"parallax/internal/tensor"
)

// chunkBounds splits n elements into size near-equal contiguous chunks and
// returns the [start,end) of chunk i.
func chunkBounds(n, size, i int) (int, int) {
	base, extra := n/size, n%size
	start := i*base + min(i, extra)
	length := base
	if i < extra {
		length++
	}
	return start, start + length
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Tags holds the per-phase rendezvous tags of one AllReduce route,
// precomputed at build time so the hot loop never concatenates strings.
// One tag per phase is enough even across steps: each directed pair's
// stream is FIFO and all ranks advance through an identical deterministic
// schedule, so per-step or per-round tags would only re-verify ordering
// the transport already guarantees (a schedule divergence still panics on
// the tag check).
type Tags struct {
	RS string // reduce-scatter phase
	AG string // all-gather phase
}

// TagsFor derives the phase tags from a route's base tag.
func TagsFor(base string) Tags { return Tags{RS: base + "/rs", AG: base + "/ag"} }

// RingAllReduce sums t element-wise across all ranks, leaving every rank
// with the identical total. It builds the phase tags on the fly; hot loops
// precompute them with TagsFor and call AllReduceTagged directly.
func RingAllReduce(c *Comm, tag string, t *tensor.Dense) {
	AllReduceTagged(c, TagsFor(tag), t)
}

// AllReduceTagged is the dense aggregation path for the AR and hybrid
// architectures: a rank-ordered reduce-scatter followed by the
// bandwidth-optimal ring all-gather (Patarasuk & Yuan [31]); each phase
// moves (N−1)/N of the tensor per rank, the same volume as the classic
// ring. t is modified in place.
//
// The reduce-scatter deviates from the pipelined ring deliberately: rank i
// owns chunk i, every rank sends its slice of chunk c directly to c's
// owner, and the owner folds the contributions in rank order 0..N−1. A
// pipelined ring folds chunk c starting at rank c, so an element's
// float32 accumulation order depends on which chunk it lands in — and
// therefore on the tensor's position inside a fused buffer. The
// rank-ordered fold makes every element's sum independent of chunk
// layout, which is what lets transform's fusion buckets produce
// bit-identical results to per-variable collectives (and is the property
// the fusion equivalence tests pin down).
//
// Chunks are sent straight from the tensor's storage (SendF32 borrows the
// slice: the inproc fabric copies it into a pooled buffer, the TCP fabric
// serializes it to the wire before returning); received chunks arrive in
// pooled buffers the receiver recycles once folded.
func AllReduceTagged(c *Comm, tags Tags, t *tensor.Dense) {
	n := c.Size()
	if n == 1 {
		return
	}
	data := t.Data()

	// Reduce-scatter: direct exchange, one message per directed pair.
	for dst := 0; dst < n; dst++ {
		if dst == c.rank {
			continue
		}
		ss, se := chunkBounds(len(data), n, dst)
		if se == ss {
			continue // empty chunk: owner skips the fold symmetrically
		}
		c.t.SendF32(dst, tags.RS, data[ss:se])
	}
	os, oe := chunkBounds(len(data), n, c.rank)
	if oe > os {
		own := data[os:oe]
		tmp := c.t.GetBuf(oe - os)
		copy(tmp, own)
		for r := 0; r < n; r++ {
			src := tmp
			if r != c.rank {
				in := c.t.RecvF32(r, tags.RS)
				if len(in) != oe-os {
					panic(fmt.Sprintf("collective: allreduce chunk size mismatch %d vs %d", len(in), oe-os))
				}
				src = in
			}
			if r == 0 {
				copy(own, src)
			} else {
				tensor.AddTo(src, own)
			}
			if r != c.rank {
				c.t.PutBuf(src)
			}
		}
		c.t.PutBuf(tmp)
	}

	// All-gather: circulate the fully reduced chunks around the ring.
	right := (c.rank + 1) % n
	left := (c.rank - 1 + n) % n
	for s := 0; s < n-1; s++ {
		sendChunk := (c.rank - s + n) % n
		recvChunk := (c.rank - s - 1 + n) % n
		ss, se := chunkBounds(len(data), n, sendChunk)
		c.t.SendF32(right, tags.AG, data[ss:se])
		in := c.t.RecvF32(left, tags.AG)
		rs, re := chunkBounds(len(data), n, recvChunk)
		if len(in) != re-rs {
			panic(fmt.Sprintf("collective: allgather chunk size mismatch %d vs %d", len(in), re-rs))
		}
		copy(data[rs:re], in)
		c.t.PutBuf(in)
	}
}

// AllGatherv concatenates every rank's sparse gradient in rank order and
// returns the result on all ranks. It builds the phase tag on the fly; hot
// loops precompute it and call AllGathervTagged.
func AllGatherv(c *Comm, tag string, s *tensor.Sparse) *tensor.Sparse {
	return AllGathervTagged(c, tag+"/agv", s)
}

// AllGathervTagged is the aggregation path for *sparse* gradients in the
// pure-AR architecture (§2.1: AllGatherv "aggregates gradients by
// concatenating"), under a caller-prepared tag. It uses a ring: each of
// the N−1 steps forwards the block received in the previous step. Blocks
// travel read-only (the inproc fabric shares pointers; the TCP fabric
// delivers fresh decoded tensors), and ConcatSparse copies them out, so
// no received block is retained past the call.
func AllGathervTagged(c *Comm, tag string, s *tensor.Sparse) *tensor.Sparse {
	n := c.Size()
	if n == 1 {
		return s.Clone()
	}
	right := (c.rank + 1) % n
	left := (c.rank - 1 + n) % n
	blocks := make([]*tensor.Sparse, n)
	blocks[c.rank] = s
	cur := s
	for step := 0; step < n-1; step++ {
		c.t.SendSparse(right, tag, cur)
		cur = c.t.RecvSparse(left, tag)
		origin := (c.rank - step - 1 + n) % n
		blocks[origin] = cur
	}
	return tensor.ConcatSparse(blocks)
}

// Broadcast copies root's tensor to every rank (in place on non-roots)
// using a binomial tree, log₂(N) rounds. Used to synchronize initial
// variable values across AR replicas so all workers start identical.
func Broadcast(c *Comm, tag string, t *tensor.Dense, root int) {
	n := c.Size()
	if n == 1 {
		return
	}
	// Re-index ranks so root is virtual rank 0.
	vr := (c.rank - root + n) % n
	for dist := 1; dist < n; dist *= 2 {
		if vr < dist {
			peer := vr + dist
			if peer < n {
				dst := (peer + root) % n
				c.t.SendF32(dst, tag, t.Data())
			}
		} else if vr < dist*2 {
			src := ((vr - dist) + root) % n
			in := c.t.RecvF32(src, tag)
			if len(in) != t.NumElements() {
				panic(fmt.Sprintf("collective: broadcast size mismatch %d vs %d", len(in), t.NumElements()))
			}
			copy(t.Data(), in)
			c.t.PutBuf(in)
		}
	}
}

// ReduceScalar sums a float64 across all ranks and returns the total on
// every rank (an allreduce over one value), used for aggregating loss
// metrics and global gradient norms.
func ReduceScalar(c *Comm, tag string, v float64) float64 {
	n := c.Size()
	total := v
	// Simple ring accumulation: n-1 shifts.
	right := (c.rank + 1) % n
	left := (c.rank - 1 + n) % n
	cur := v
	redTag := tag + "/red"
	for s := 0; s < n-1; s++ {
		c.t.SendScalar(right, redTag, cur)
		cur = c.t.RecvScalar(left, redTag)
		total += cur
	}
	return total
}

// AllGatherScalarsInto gathers every rank's v into out (out[r] holds rank
// r's value on every rank; len(out) must be the group size). It is a
// direct exchange — one scalar per directed pair — used by the
// distributed trainer to combine per-worker losses in a fixed rank order,
// so the reported mean is bitwise identical to the single-process sum.
func AllGatherScalarsInto(c *Comm, tag string, v float64, out []float64) {
	n := c.Size()
	if len(out) != n {
		panic(fmt.Sprintf("collective: gather into %d slots for %d ranks", len(out), n))
	}
	out[c.rank] = v
	for p := 0; p < n; p++ {
		if p != c.rank {
			c.t.SendScalar(p, tag, v)
		}
	}
	for p := 0; p < n; p++ {
		if p != c.rank {
			out[p] = c.t.RecvScalar(p, tag)
		}
	}
}
