package collective

import (
	"fmt"

	"parallax/internal/tensor"
)

// chunkBounds splits n elements into size near-equal contiguous chunks and
// returns the [start,end) of chunk i.
func chunkBounds(n, size, i int) (int, int) {
	base, extra := n/size, n%size
	start := i*base + min(i, extra)
	length := base
	if i < extra {
		length++
	}
	return start, start + length
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// RingAllReduce sums t element-wise across all ranks, leaving every rank
// with the identical total, using the bandwidth-optimal ring algorithm
// (Patarasuk & Yuan [31], the algorithm NCCL uses): a reduce-scatter phase
// of N−1 steps followed by an all-gather phase of N−1 steps, each step
// moving 1/N of the tensor to the right-hand neighbour.
//
// This is the aggregation path for *dense* gradients in the AR and hybrid
// architectures. t is modified in place.
func RingAllReduce(c *Comm, tag string, t *tensor.Dense) {
	n := c.Size()
	if n == 1 {
		return
	}
	data := t.Data()
	right := (c.rank + 1) % n
	left := (c.rank - 1 + n) % n

	// One tag per phase is enough: each directed pair's channel is FIFO
	// and both ranks advance rounds in lockstep, so per-round tags would
	// only re-verify ordering the transport already guarantees. Chunk
	// buffers come from the world pool; the receiver recycles each buffer
	// once consumed.
	rsTag := tag + "/rs"
	agTag := tag + "/ag"

	// Reduce-scatter: after step s, rank r holds the partial sum of chunk
	// (r - s) mod n over s+1 ranks; after n-1 steps, rank r holds the full
	// sum of chunk (r+1) mod n.
	for s := 0; s < n-1; s++ {
		sendChunk := (c.rank - s + n) % n
		recvChunk := (c.rank - s - 1 + n) % n
		ss, se := chunkBounds(len(data), n, sendChunk)
		out := c.world.getBuf(se - ss)
		copy(out, data[ss:se])
		c.Send(right, rsTag, out)
		in := c.Recv(left, rsTag).([]float32)
		rs, re := chunkBounds(len(data), n, recvChunk)
		if len(in) != re-rs {
			panic(fmt.Sprintf("collective: allreduce chunk size mismatch %d vs %d", len(in), re-rs))
		}
		for i, v := range in {
			data[rs+i] += v
		}
		c.world.putBuf(in)
	}
	// All-gather: circulate the fully reduced chunks.
	for s := 0; s < n-1; s++ {
		sendChunk := (c.rank + 1 - s + n) % n
		recvChunk := (c.rank - s + n) % n
		ss, se := chunkBounds(len(data), n, sendChunk)
		out := c.world.getBuf(se - ss)
		copy(out, data[ss:se])
		c.Send(right, agTag, out)
		in := c.Recv(left, agTag).([]float32)
		rs, re := chunkBounds(len(data), n, recvChunk)
		if len(in) != re-rs {
			panic(fmt.Sprintf("collective: allgather chunk size mismatch %d vs %d", len(in), re-rs))
		}
		copy(data[rs:re], in)
		c.world.putBuf(in)
	}
}

// AllGatherv concatenates every rank's sparse gradient in rank order and
// returns the result on all ranks — the aggregation path for *sparse*
// gradients in the pure-AR architecture (§2.1: AllGatherv "aggregates
// gradients by concatenating"). It uses a ring: each of the N−1 steps
// forwards the block received in the previous step.
func AllGatherv(c *Comm, tag string, s *tensor.Sparse) *tensor.Sparse {
	n := c.Size()
	if n == 1 {
		return s.Clone()
	}
	right := (c.rank + 1) % n
	left := (c.rank - 1 + n) % n
	blocks := make([]*tensor.Sparse, n)
	blocks[c.rank] = s
	cur := s
	agvTag := tag + "/agv"
	for step := 0; step < n-1; step++ {
		c.Send(right, agvTag, cur)
		cur = c.Recv(left, agvTag).(*tensor.Sparse)
		origin := (c.rank - step - 1 + n) % n
		blocks[origin] = cur
	}
	return tensor.ConcatSparse(blocks)
}

// Broadcast copies root's tensor to every rank (in place on non-roots)
// using a binomial tree, log₂(N) rounds. Used to synchronize initial
// variable values across AR replicas so all workers start identical.
func Broadcast(c *Comm, tag string, t *tensor.Dense, root int) {
	n := c.Size()
	if n == 1 {
		return
	}
	// Re-index ranks so root is virtual rank 0.
	vr := (c.rank - root + n) % n
	for dist := 1; dist < n; dist *= 2 {
		if vr < dist {
			peer := vr + dist
			if peer < n {
				dst := (peer + root) % n
				out := make([]float32, t.NumElements())
				copy(out, t.Data())
				c.Send(dst, tag, out)
			}
		} else if vr < dist*2 {
			src := ((vr - dist) + root) % n
			in := c.Recv(src, tag).([]float32)
			if len(in) != t.NumElements() {
				panic(fmt.Sprintf("collective: broadcast size mismatch %d vs %d", len(in), t.NumElements()))
			}
			copy(t.Data(), in)
		}
	}
}

// ReduceScalar sums a float64 across all ranks and returns the total on
// every rank (an allreduce over one value), used for aggregating loss
// metrics and global gradient norms.
func ReduceScalar(c *Comm, tag string, v float64) float64 {
	n := c.Size()
	total := v
	// Simple ring accumulation: n-1 shifts.
	right := (c.rank + 1) % n
	left := (c.rank - 1 + n) % n
	cur := v
	redTag := tag + "/red"
	for s := 0; s < n-1; s++ {
		c.Send(right, redTag, cur)
		cur = c.Recv(left, redTag).(float64)
		total += cur
	}
	return total
}
