package tensor

// Half-precision conversion kernels for the wire-compression layer
// (internal/transport's f16/bf16 payload codecs). The scalar converters
// implement IEEE-754 round-to-nearest-even; the bulk quantizers round a
// float32 slice onto the half grid in place — the data plane quantizes
// at every would-cross-wire point (including local paths), so the wire
// encoding itself is lossless on the already-on-grid values and a
// compressed run stays bit-identical across the inproc and TCP fabrics.
//
// Grid round trips are exact by construction: every finite binary16 /
// bfloat16 value is exactly representable in float32, expanding and
// re-rounding it reproduces the same bits. NaNs keep their (truncated)
// payloads, with a quiet bit forced when truncation would otherwise
// collapse the payload to zero and turn the NaN into an infinity.

import "math"

// F32ToF16Bits rounds a float32 to the nearest IEEE-754 binary16 value
// (ties to even) and returns its bit pattern. Overflow rounds to ±Inf,
// magnitudes below the subnormal range round to ±0.
func F32ToF16Bits(f float32) uint16 {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & 0x8000
	exp := int(b>>23) & 0xFF
	man := b & 0x7FFFFF
	if exp == 0xFF { // Inf / NaN
		if man == 0 {
			return sign | 0x7C00
		}
		m := uint16(man >> 13)
		if m == 0 {
			m = 0x200 // payload truncated away: force the quiet bit
		}
		return sign | 0x7C00 | m
	}
	e := exp - 127 + 15
	if e >= 0x1F { // |f| >= 2^16: past the largest half, round to Inf
		return sign | 0x7C00
	}
	if e >= 1 { // normal half: round the mantissa at bit 13
		lsb := (man >> 13) & 1
		m := man + 0xFFF + lsb
		if m >= 0x800000 { // carried into the exponent
			e++
			if e >= 0x1F {
				return sign | 0x7C00
			}
			return sign | uint16(e)<<10
		}
		return sign | uint16(e)<<10 | uint16(m>>13)
	}
	if e < -10 { // below half the smallest subnormal: rounds to zero
		return sign
	}
	// Subnormal half: shift the full significand (implicit bit restored)
	// into place, rounding ties to even on the bits shifted out.
	m := man | 0x800000
	shift := uint(14 - e) // 14..24
	lsb := (m >> shift) & 1
	m += 1<<(shift-1) - 1 + uint32(lsb)
	return sign | uint16(m>>shift)
}

// F16BitsToF32 expands a binary16 bit pattern to the float32 with the
// same value (exact: every half is representable).
func F16BitsToF32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1F
	man := uint32(h & 0x3FF)
	switch {
	case exp == 0x1F: // Inf / NaN, payload preserved
		return math.Float32frombits(sign | 0x7F800000 | man<<13)
	case exp == 0:
		if man == 0 {
			return math.Float32frombits(sign)
		}
		e := uint32(127 - 15 + 1)
		for man&0x400 == 0 { // normalize the subnormal
			man <<= 1
			e--
		}
		man &= 0x3FF
		return math.Float32frombits(sign | e<<23 | man<<13)
	}
	return math.Float32frombits(sign | (exp+127-15)<<23 | man<<13)
}

// F32ToBF16Bits rounds a float32 to the nearest bfloat16 (ties to even)
// and returns its bit pattern: the top 16 bits after rounding at bit 16.
func F32ToBF16Bits(f float32) uint16 {
	b := math.Float32bits(f)
	if b&0x7FFFFFFF > 0x7F800000 { // NaN: truncate, keep it a NaN
		h := uint16(b >> 16)
		if h&0x7F == 0 {
			h |= 0x40
		}
		return h
	}
	lsb := (b >> 16) & 1
	return uint16((b + 0x7FFF + lsb) >> 16)
}

// BF16BitsToF32 expands a bfloat16 bit pattern to float32 (exact).
func BF16BitsToF32(h uint16) float32 {
	return math.Float32frombits(uint32(h) << 16)
}

// QuantizeF16 rounds every element onto the binary16 grid in place
// (round-to-nearest-even). Idempotent: on-grid values are fixed points.
func QuantizeF16(x []float32) {
	n := len(x)
	i := 0
	for ; i+4 <= n; i += 4 {
		x[i] = F16BitsToF32(F32ToF16Bits(x[i]))
		x[i+1] = F16BitsToF32(F32ToF16Bits(x[i+1]))
		x[i+2] = F16BitsToF32(F32ToF16Bits(x[i+2]))
		x[i+3] = F16BitsToF32(F32ToF16Bits(x[i+3]))
	}
	for ; i < n; i++ {
		x[i] = F16BitsToF32(F32ToF16Bits(x[i]))
	}
}

// QuantizeBF16 rounds every element onto the bfloat16 grid in place
// (round-to-nearest-even). Idempotent like QuantizeF16.
func QuantizeBF16(x []float32) {
	n := len(x)
	i := 0
	for ; i+4 <= n; i += 4 {
		x[i] = BF16BitsToF32(F32ToBF16Bits(x[i]))
		x[i+1] = BF16BitsToF32(F32ToBF16Bits(x[i+1]))
		x[i+2] = BF16BitsToF32(F32ToBF16Bits(x[i+2]))
		x[i+3] = BF16BitsToF32(F32ToBF16Bits(x[i+3]))
	}
	for ; i < n; i++ {
		x[i] = BF16BitsToF32(F32ToBF16Bits(x[i]))
	}
}
