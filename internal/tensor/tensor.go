// Package tensor provides the dense and sparse tensor types that underpin
// the Parallax reproduction. It mirrors the split TensorFlow makes between
// Tensor (dense data) and IndexedSlices (sparse data: a values array plus a
// row-index array), which is the data-structure distinction the paper's
// sparsity analysis is built on (§2.2).
//
// All values are float32, matching the single-precision training the paper
// evaluates. Tensors are plain Go slices with explicit shapes; operations
// are written for clarity first and allocate conservatively so that the
// real-mode training loops in internal/engine stay predictable.
package tensor

import (
	"fmt"
	"math"
)

// Dense is a dense n-dimensional tensor in row-major order.
type Dense struct {
	shape []int
	data  []float32
}

// NewDense returns a zero-filled dense tensor with the given shape.
// It panics if any dimension is negative; a zero dimension yields an
// empty tensor.
func NewDense(shape ...int) *Dense {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Dense{shape: append([]int(nil), shape...), data: make([]float32, n)}
}

// FromSlice wraps data in a dense tensor of the given shape. The slice is
// used directly (not copied); len(data) must equal the shape's element count.
func FromSlice(data []float32, shape ...int) *Dense {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v wants %d elements, slice has %d", shape, n, len(data)))
	}
	return &Dense{shape: append([]int(nil), shape...), data: data}
}

// Shape returns the tensor's dimensions. The returned slice must not be
// mutated.
func (t *Dense) Shape() []int { return t.shape }

// Data returns the underlying storage in row-major order. Mutating it
// mutates the tensor.
func (t *Dense) Data() []float32 { return t.data }

// NumElements returns the total element count.
func (t *Dense) NumElements() int { return len(t.data) }

// Rank returns the number of dimensions.
func (t *Dense) Rank() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Dense) Dim(i int) int { return t.shape[i] }

// RowWidth returns the number of elements per row of the first dimension,
// i.e. NumElements / Dim(0). It panics on rank-0 tensors.
func (t *Dense) RowWidth() int {
	if len(t.shape) == 0 {
		panic("tensor: RowWidth on rank-0 tensor")
	}
	if t.shape[0] == 0 {
		// Zero rows still have a well-defined row width from the trailing
		// dimensions (empty sparse partitions rely on this).
		w := 1
		for _, d := range t.shape[1:] {
			w *= d
		}
		return w
	}
	return len(t.data) / t.shape[0]
}

// Clone returns a deep copy.
func (t *Dense) Clone() *Dense {
	c := NewDense(t.shape...)
	copy(c.data, t.data)
	return c
}

// SliceRows returns a zero-copy view of rows [start, end) along the first
// dimension: the returned tensor shares storage with t, so writes through
// either alias are visible in both. The view's capacity is clipped so that
// appends through it cannot spill into t's later rows. This is the
// mechanism the runtimes use to push dense variable partitions without
// heap-copying them (the paper partitions variables by contiguous row
// ranges, §3.2).
func (t *Dense) SliceRows(start, end int) *Dense {
	if len(t.shape) == 0 {
		panic("tensor: SliceRows on rank-0 tensor")
	}
	if start < 0 || end < start || end > t.shape[0] {
		panic(fmt.Sprintf("tensor: SliceRows [%d,%d) out of range [0,%d]", start, end, t.shape[0]))
	}
	w := t.RowWidth()
	shape := make([]int, len(t.shape))
	shape[0] = end - start
	copy(shape[1:], t.shape[1:])
	return &Dense{shape: shape, data: t.data[start*w : end*w : end*w]}
}

// At returns the element at the given row-major indices.
func (t *Dense) At(idx ...int) float32 { return t.data[t.offset(idx)] }

// Set stores v at the given row-major indices.
func (t *Dense) Set(v float32, idx ...int) { t.data[t.offset(idx)] = v }

func (t *Dense) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: %d indices for rank-%d tensor", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range [0,%d) in dim %d", x, t.shape[i], i))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// SameShape reports whether t and o have identical shapes.
func (t *Dense) SameShape(o *Dense) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// Fill sets every element to v.
func (t *Dense) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Dense) Zero() { t.Fill(0) }

// AddInto accumulates o into t element-wise. Shapes must match.
func (t *Dense) AddInto(o *Dense) {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: AddInto shape mismatch %v vs %v", t.shape, o.shape))
	}
	AddTo(o.data, t.data)
}

// Sub subtracts o from t element-wise. Shapes must match.
func (t *Dense) Sub(o *Dense) {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: Sub shape mismatch %v vs %v", t.shape, o.shape))
	}
	for i, v := range o.data {
		t.data[i] -= v
	}
}

// Scale multiplies every element by s.
func (t *Dense) Scale(s float32) {
	for i := range t.data {
		t.data[i] *= s
	}
}

// AXPY computes t += a*o element-wise. Shapes must match.
func (t *Dense) AXPY(a float32, o *Dense) {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: AXPY shape mismatch %v vs %v", t.shape, o.shape))
	}
	Axpy(a, o.data, t.data)
}

// L2NormSquared returns the sum of squared elements in float64 for
// numerical stability.
func (t *Dense) L2NormSquared() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v) * float64(v)
	}
	return s
}

// L2Norm returns sqrt(L2NormSquared).
func (t *Dense) L2Norm() float64 { return math.Sqrt(t.L2NormSquared()) }

// MaxAbsDiff returns the largest absolute element-wise difference between
// t and o. Shapes must match.
func (t *Dense) MaxAbsDiff(o *Dense) float64 {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: MaxAbsDiff shape mismatch %v vs %v", t.shape, o.shape))
	}
	var m float64
	for i := range t.data {
		d := math.Abs(float64(t.data[i]) - float64(o.data[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// Bytes returns the wire size of the tensor payload (4 bytes per element),
// the unit used throughout the paper's network-transfer analysis (Table 3).
func (t *Dense) Bytes() int64 { return int64(len(t.data)) * 4 }

// String renders a short description, not the full contents.
func (t *Dense) String() string {
	return fmt.Sprintf("Dense%v(%d elems)", t.shape, len(t.data))
}
