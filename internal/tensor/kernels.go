package tensor

// Flat-slice compute kernels for the hot loops of the data plane: the
// matmul inner loops, the collective reduce-scatter accumulate, and the
// optimizer apply paths all bottom out here. Each kernel is 4-wide
// unrolled so the compiler can keep four independent FMA chains in
// flight instead of serializing on one accumulator / one bounds check
// per element. They operate on raw []float32 so packages that move
// gradients as flat buffers (internal/collective) can use them without
// wrapping tensors.

// Axpy computes dst[i] += a*src[i]. len(src) must not exceed len(dst).
// Element order is preserved, so results are bit-identical to the naive
// loop.
func Axpy(a float32, src, dst []float32) {
	n := len(src)
	dst = dst[:n] // hoist the bounds check out of the loop
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] += a * src[i]
		dst[i+1] += a * src[i+1]
		dst[i+2] += a * src[i+2]
		dst[i+3] += a * src[i+3]
	}
	for ; i < n; i++ {
		dst[i] += a * src[i]
	}
}

// AddTo computes dst[i] += src[i]. len(src) must not exceed len(dst).
// Element order is preserved, so results are bit-identical to the naive
// loop.
func AddTo(src, dst []float32) {
	n := len(src)
	dst = dst[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] += src[i]
		dst[i+1] += src[i+1]
		dst[i+2] += src[i+2]
		dst[i+3] += src[i+3]
	}
	for ; i < n; i++ {
		dst[i] += src[i]
	}
}

// Dot returns Σ a[i]*b[i] over four independent partial sums (combined
// low-to-high at the end). The grouping differs from a strict sequential
// fold, which is why the matmul tests compare against a float64
// reference rather than the naive float32 loop.
func Dot(a, b []float32) float32 {
	n := len(a)
	b = b[:n]
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}
