package tensor

import (
	"math"
	"testing"
)

// TestF16Conversions pins the binary16 converter on the IEEE-754 edge
// cases: signed zeros, infinities, NaN payload preservation, the
// normal/subnormal boundary, overflow/underflow rounding, and
// round-to-nearest-even at the mantissa cut.
func TestF16Conversions(t *testing.T) {
	inf := float32(math.Inf(1))
	cases := []struct {
		name string
		in   float32
		bits uint16
	}{
		{"zero", 0, 0x0000},
		{"negzero", float32(math.Copysign(0, -1)), 0x8000},
		{"one", 1, 0x3C00},
		{"negtwo", -2, 0xC000},
		{"inf", inf, 0x7C00},
		{"neginf", -inf, 0xFC00},
		{"maxhalf", 65504, 0x7BFF},
		{"overflow", 65536, 0x7C00},                      // past the grid: Inf
		{"overflowRound", 65520, 0x7C00},                 // ties at the top round to Inf
		{"belowOverflow", 65519, 0x7BFF},                 // just under the tie: max half
		{"minNormal", 6.103515625e-05, 0x0400},           // 2^-14
		{"maxSubnormal", 6.097555160522461e-05, 0x03FF},  // (1023/1024)·2^-14
		{"minSubnormal", 5.960464477539063e-08, 0x0001},  // 2^-24
		{"underflowTie", 2.9802322387695312e-08, 0x0000}, // 2^-25 ties to even = 0
		{"aboveUnderflowTie", 2.9802325e-08, 0x0001},     // just above: smallest subnormal
		{"underflow", 1e-08, 0x0000},
		{"roundEvenDown", 1.00048828125, 0x3C00}, // halfway between 1 and 1+2^-10: even
		{"roundEvenUp", 1.00146484375, 0x3C02},   // halfway between 1+2^-10 and 1+2^-9: even
		{"roundNearest", 1.0005, 0x3C01},         // just above the tie: up
		{"third", 1.0 / 3.0, 0x3555},
	}
	for _, c := range cases {
		if got := F32ToF16Bits(c.in); got != c.bits {
			t.Errorf("%s: F32ToF16Bits(%g) = %#04x, want %#04x", c.name, c.in, got, c.bits)
		}
	}
	// Expansion of every case's bit pattern re-rounds to the same bits:
	// the grid is a fixed point of the round trip.
	for h := 0; h <= 0xFFFF; h++ {
		f := F16BitsToF32(uint16(h))
		if got := F32ToF16Bits(f); got != uint16(h) {
			t.Fatalf("half round trip %#04x -> %g -> %#04x", h, f, got)
		}
	}
	// NaN handling: payload survives, and a payload that truncates to
	// zero must not collapse into an infinity.
	qnan := math.Float32frombits(0x7FC00001)
	if got := F32ToF16Bits(qnan); got&0x7C00 != 0x7C00 || got&0x3FF == 0 {
		t.Errorf("quiet NaN converted to %#04x, not a NaN", got)
	}
	thinNaN := math.Float32frombits(0x7F800001) // payload entirely below bit 13
	if got := F32ToF16Bits(thinNaN); got != 0x7E00 {
		t.Errorf("thin NaN converted to %#04x, want 0x7E00", got)
	}
	if !math.IsNaN(float64(F16BitsToF32(0x7E00))) {
		t.Error("expanded NaN is not NaN")
	}
}

// TestBF16Conversions pins the bfloat16 converter the same way: bf16 is
// f32 truncated to its top 16 bits with round-to-nearest-even.
func TestBF16Conversions(t *testing.T) {
	inf := float32(math.Inf(1))
	cases := []struct {
		name string
		in   float32
		bits uint16
	}{
		{"zero", 0, 0x0000},
		{"negzero", float32(math.Copysign(0, -1)), 0x8000},
		{"one", 1, 0x3F80},
		{"inf", inf, 0x7F80},
		{"neginf", -inf, 0xFF80},
		{"maxFinite", math.Float32frombits(0x7F7F0000), 0x7F7F},
		{"overflowRound", math.Float32frombits(0x7F7FFFFF), 0x7F80}, // rounds past max: Inf
		{"roundEven", math.Float32frombits(0x3F808000), 0x3F80},     // tie to even: down
		{"roundEvenUp", math.Float32frombits(0x3F818000), 0x3F82},   // tie to even: up
		{"roundUp", math.Float32frombits(0x3F808001), 0x3F81},
		{"subnormal", math.Float32frombits(0x00010000), 0x0001}, // f32 subnormals stay on grid
	}
	for _, c := range cases {
		if got := F32ToBF16Bits(c.in); got != c.bits {
			t.Errorf("%s: F32ToBF16Bits(%g) = %#04x, want %#04x", c.name, c.in, got, c.bits)
		}
	}
	for h := 0; h <= 0xFFFF; h++ {
		f := BF16BitsToF32(uint16(h))
		if got := F32ToBF16Bits(f); got != uint16(h) {
			t.Fatalf("bf16 round trip %#04x -> %g -> %#04x", h, f, got)
		}
	}
	if got := F32ToBF16Bits(math.Float32frombits(0x7F800001)); got&0x7F80 != 0x7F80 || got&0x7F == 0 {
		t.Errorf("thin NaN converted to %#04x, not a NaN", got)
	}
}

// TestQuantizeKernels checks the 4-wide bulk quantizers against the
// scalar converters on a slice long enough to exercise both the unrolled
// body and the tail, and that quantization is idempotent.
func TestQuantizeKernels(t *testing.T) {
	rng := NewRNG(11)
	x := rng.RandN(3, 1031).Data() // odd length: unrolled body + 3-element tail
	x[0] = float32(math.Inf(1))
	x[1] = 65519
	x[2] = 1e-8

	f16 := append([]float32(nil), x...)
	QuantizeF16(f16)
	for i, v := range x {
		want := F16BitsToF32(F32ToF16Bits(v))
		if math.Float32bits(f16[i]) != math.Float32bits(want) {
			t.Fatalf("QuantizeF16[%d] = %g, want %g", i, f16[i], want)
		}
	}
	again := append([]float32(nil), f16...)
	QuantizeF16(again)
	for i := range again {
		if math.Float32bits(again[i]) != math.Float32bits(f16[i]) {
			t.Fatalf("QuantizeF16 not idempotent at %d", i)
		}
	}

	bf16 := append([]float32(nil), x...)
	QuantizeBF16(bf16)
	for i, v := range x {
		want := BF16BitsToF32(F32ToBF16Bits(v))
		if math.Float32bits(bf16[i]) != math.Float32bits(want) {
			t.Fatalf("QuantizeBF16[%d] = %g, want %g", i, bf16[i], want)
		}
	}
}
