package tensor

import "sync"

// Pool recycles Dense scratch tensors so hot training loops do not allocate
// a fresh buffer every step. Buffers are keyed by element count; a Get for
// shape [4, 8] happily reuses a buffer released as [32] or [8, 4].
//
// The contents of a tensor returned by Get are unspecified (call Zero if a
// cleared buffer is needed); callers own the tensor until they Put it back.
// A Pool is safe for concurrent use by multiple goroutines.
type Pool struct {
	mu   sync.Mutex
	free map[int][]*Dense // element count -> idle buffers
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{free: make(map[int][]*Dense)} }

// Get returns a dense tensor with the given shape, reusing a pooled buffer
// of the same element count when one is available. Contents are
// unspecified.
func (p *Pool) Get(shape ...int) *Dense {
	n := 1
	for _, d := range shape {
		n *= d
	}
	p.mu.Lock()
	if l := p.free[n]; len(l) > 0 {
		t := l[len(l)-1]
		l[len(l)-1] = nil
		p.free[n] = l[:len(l)-1]
		p.mu.Unlock()
		t.shape = append(t.shape[:0], shape...)
		return t
	}
	p.mu.Unlock()
	return NewDense(shape...)
}

// GetZeroed returns a zero-filled tensor with the given shape.
func (p *Pool) GetZeroed(shape ...int) *Dense {
	t := p.Get(shape...)
	t.Zero()
	return t
}

// Put releases t back to the pool. The caller must not use t (or any view
// of its storage) afterwards. Put tolerates nil and empty tensors.
func (p *Pool) Put(t *Dense) {
	if t == nil || len(t.data) == 0 {
		return
	}
	p.mu.Lock()
	p.free[len(t.data)] = append(p.free[len(t.data)], t)
	p.mu.Unlock()
}
