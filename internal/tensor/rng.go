package tensor

import "math/rand"

// RNG is a deterministic random source for weight initialization and
// synthetic data. Every experiment in the reproduction seeds its own RNG so
// runs are exactly repeatable.
type RNG struct{ r *rand.Rand }

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG { return &RNG{r: rand.New(rand.NewSource(seed))} }

// Float64 returns a uniform value in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform value in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Perm returns a pseudo-random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// NormFloat64 returns a standard normal sample.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// RandN fills a new dense tensor with N(0, std²) samples.
func (g *RNG) RandN(std float64, shape ...int) *Dense {
	t := NewDense(shape...)
	for i := range t.data {
		t.data[i] = float32(g.r.NormFloat64() * std)
	}
	return t
}

// Uniform fills a new dense tensor with samples in [lo, hi).
func (g *RNG) Uniform(lo, hi float64, shape ...int) *Dense {
	t := NewDense(shape...)
	for i := range t.data {
		t.data[i] = float32(lo + g.r.Float64()*(hi-lo))
	}
	return t
}
