package tensor

import "fmt"

// RowRange describes one partition of a variable's first dimension:
// rows [Start, End).
type RowRange struct {
	Start, End int
}

// Len returns the number of rows in the range.
func (r RowRange) Len() int { return r.End - r.Start }

// PartitionRows splits dim0 rows into p near-equal contiguous ranges, the
// same scheme TensorFlow's variable partitioner uses and the layout Parallax
// assumes when distributing sparse-variable partitions across servers
// (§3.2). The first dim0 % p ranges get one extra row. p may exceed dim0,
// in which case trailing ranges are empty.
func PartitionRows(dim0, p int) []RowRange {
	if p <= 0 {
		panic(fmt.Sprintf("tensor: PartitionRows with p=%d", p))
	}
	out := make([]RowRange, p)
	base, extra := dim0/p, dim0%p
	start := 0
	for i := range out {
		n := base
		if i < extra {
			n++
		}
		out[i] = RowRange{Start: start, End: start + n}
		start += n
	}
	return out
}

// PartitionOfRow returns the index of the partition containing row, given
// the ranges produced by PartitionRows for the same dim0.
func PartitionOfRow(ranges []RowRange, row int) int {
	lo, hi := 0, len(ranges)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case row < ranges[mid].Start:
			hi = mid
		case row >= ranges[mid].End:
			lo = mid + 1
		default:
			return mid
		}
	}
	panic(fmt.Sprintf("tensor: row %d not covered by %d ranges", row, len(ranges)))
}

// SplitSparse routes each slice of s to the partition owning its row and
// returns one sparse tensor per partition, with rows re-based to the
// partition's local coordinates (row - Start). Empty partitions get a
// zero-row sparse tensor. This is the "dividing incoming values and indices
// into disjoint sets" step that makes partitioned aggregation parallel
// (§3.2).
//
// Storage is batch-allocated: all partitions share one rows array, one
// values array, and one block of tensor headers, so splitting into P
// partitions costs O(1) allocations instead of O(P). If s is coalesced,
// every partition is too (splitting a sorted unique sequence by contiguous
// ranges preserves both properties... after a stable partition pass, rows
// within one partition keep their relative order).
func SplitSparse(s *Sparse, ranges []RowRange) []*Sparse {
	np := len(ranges)
	w := s.RowWidth()
	counts := make([]int, np)
	assign := make([]int, len(s.Rows))
	for i, r := range s.Rows {
		p := PartitionOfRow(ranges, r)
		assign[i] = p
		counts[p]++
	}
	// Shared backing storage for every partition.
	rowsAll := make([]int, len(s.Rows))
	valsAll := NewDense(len(s.Rows), w)
	sparses := make([]Sparse, np)
	denses := make([]Dense, np)
	shapes := make([]int, 2*np)
	out := make([]*Sparse, np)
	fill := make([]int, np) // next absolute write index per partition
	start := 0
	for p := range out {
		shape := shapes[2*p : 2*p+2]
		shape[0], shape[1] = counts[p], w
		denses[p] = Dense{shape: shape, data: valsAll.data[start*w : (start+counts[p])*w : (start+counts[p])*w]}
		sparses[p] = Sparse{
			Rows:      rowsAll[start : start+counts[p] : start+counts[p]],
			Values:    &denses[p],
			Dim0:      ranges[p].Len(),
			coalesced: s.coalesced,
		}
		out[p] = &sparses[p]
		fill[p] = start
		start += counts[p]
	}
	for i, r := range s.Rows {
		p := assign[i]
		j := fill[p]
		fill[p]++
		rowsAll[j] = r - ranges[p].Start
		copy(valsAll.data[j*w:(j+1)*w], s.Values.data[i*w:(i+1)*w])
	}
	return out
}

// StitchSparse reassembles per-partition sparse tensors (local row
// coordinates) into one sparse tensor over the full variable — the
// "stitching the partial results from each partition into one tensor"
// overhead the paper's Eq. 1 charges θ2·P for.
func StitchSparse(parts []*Sparse, ranges []RowRange, dim0 int) *Sparse {
	if len(parts) != len(ranges) {
		panic(fmt.Sprintf("tensor: StitchSparse %d parts vs %d ranges", len(parts), len(ranges)))
	}
	total := 0
	w := -1
	for _, p := range parts {
		total += len(p.Rows)
		if len(p.Rows) > 0 && w < 0 {
			w = p.RowWidth()
		}
	}
	if w < 0 {
		w = 0
		for _, p := range parts {
			if p.Values.Rank() > 1 {
				w = p.Values.Dim(1)
				break
			}
		}
	}
	rows := make([]int, 0, total)
	vals := NewDense(total, w)
	off := 0
	for pi, p := range parts {
		for i, r := range p.Rows {
			rows = append(rows, r+ranges[pi].Start)
			copy(vals.data[(off+i)*w:(off+i+1)*w], p.Values.data[i*w:(i+1)*w])
		}
		off += len(p.Rows)
	}
	return &Sparse{Rows: rows, Values: vals, Dim0: dim0}
}
