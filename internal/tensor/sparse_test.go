package tensor

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func mkSparse(rows []int, vals []float32, w, dim0 int) *Sparse {
	return NewSparse(rows, FromSlice(vals, len(rows), w), dim0)
}

func TestSparseToDenseSumsDuplicates(t *testing.T) {
	s := mkSparse([]int{1, 1, 3}, []float32{1, 2, 10, 20, 100, 200}, 2, 4)
	d := s.ToDense()
	if d.At(1, 0) != 11 || d.At(1, 1) != 22 {
		t.Fatalf("duplicate rows not summed: %v", d.Data())
	}
	if d.At(3, 0) != 100 || d.At(0, 0) != 0 {
		t.Fatalf("wrong scatter: %v", d.Data())
	}
}

func TestCoalesceSortsAndSums(t *testing.T) {
	s := mkSparse([]int{5, 1, 5}, []float32{1, 2, 3, 4, 10, 20}, 2, 8)
	c := s.Coalesce()
	if len(c.Rows) != 2 || c.Rows[0] != 1 || c.Rows[1] != 5 {
		t.Fatalf("rows = %v, want [1 5]", c.Rows)
	}
	if c.Values.At(1, 0) != 11 || c.Values.At(1, 1) != 22 {
		t.Fatalf("values not summed: %v", c.Values.Data())
	}
	if c.Values.At(0, 0) != 3 {
		t.Fatalf("row 1 values wrong: %v", c.Values.Data())
	}
}

func TestConcatVsSumSemantics(t *testing.T) {
	// AR (concat) and PS (sum) aggregation must produce the same *effective*
	// gradient once scattered into the dense variable — the paper's two
	// aggregation paths are mathematically equivalent for SGD.
	a := mkSparse([]int{0, 2}, []float32{1, 2, 3, 4}, 2, 4)
	b := mkSparse([]int{2, 3}, []float32{5, 6, 7, 8}, 2, 4)
	concat := ConcatSparse([]*Sparse{a, b})
	summed := SumSparse([]*Sparse{a, b})
	if concat.NNZRows() != 4 {
		t.Fatalf("concat rows = %d, want 4", concat.NNZRows())
	}
	if summed.NNZRows() != 3 {
		t.Fatalf("summed rows = %d, want 3 (unique)", summed.NNZRows())
	}
	if concat.ToDense().MaxAbsDiff(summed.ToDense()) > 1e-6 {
		t.Fatal("concat and sum aggregation disagree after densify")
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	g := NewRNG(7)
	emb := g.RandN(1, 10, 4)
	rows := []int{3, 9, 3}
	looked := Gather(emb, rows)
	if looked.Dim(0) != 3 || looked.Dim(1) != 4 {
		t.Fatalf("gather shape %v", looked.Shape())
	}
	if looked.At(0, 0) != emb.At(3, 0) || looked.At(2, 3) != emb.At(3, 3) {
		t.Fatal("gather picked wrong rows")
	}
	// scatter-add the gathered rows back with a = -1 onto a copy: rows 3
	// (twice) and 9 get subtracted.
	cp := emb.Clone()
	sp := NewSparse(rows, looked, 10)
	ScatterAddSparse(cp, -1, sp)
	if math.Abs(float64(cp.At(9, 0))) > 1e-6 {
		t.Fatalf("row 9 not cancelled: %v", cp.At(9, 0))
	}
	if math.Abs(float64(cp.At(3, 0))+float64(emb.At(3, 0))) > 1e-5 {
		t.Fatalf("row 3 should be -original (subtracted twice): %v", cp.At(3, 0))
	}
	if cp.At(5, 2) != emb.At(5, 2) {
		t.Fatal("untouched row modified")
	}
}

func TestAlphaOf(t *testing.T) {
	if a := AlphaOf([]int{1, 1, 2}, 10); math.Abs(a-0.2) > 1e-12 {
		t.Fatalf("AlphaOf = %v, want 0.2", a)
	}
	if a := AlphaOf(nil, 10); a != 0 {
		t.Fatalf("AlphaOf(empty) = %v, want 0", a)
	}
	if a := AlphaOf([]int{0}, 0); a != 0 {
		t.Fatalf("AlphaOf(dim0=0) = %v, want 0", a)
	}
}

func TestPartitionRowsCoversExactly(t *testing.T) {
	for _, tc := range []struct{ dim0, p int }{{10, 3}, {7, 7}, {5, 8}, {1000003, 64}, {0, 4}} {
		rs := PartitionRows(tc.dim0, tc.p)
		if len(rs) != tc.p {
			t.Fatalf("got %d ranges, want %d", len(rs), tc.p)
		}
		prev := 0
		total := 0
		for _, r := range rs {
			if r.Start != prev {
				t.Fatalf("gap: range starts at %d, want %d", r.Start, prev)
			}
			if r.End < r.Start {
				t.Fatalf("negative range %+v", r)
			}
			total += r.Len()
			prev = r.End
		}
		if total != tc.dim0 {
			t.Fatalf("ranges cover %d rows, want %d", total, tc.dim0)
		}
		// Balanced: max-min <= 1.
		minL, maxL := rs[0].Len(), rs[0].Len()
		for _, r := range rs {
			if r.Len() < minL {
				minL = r.Len()
			}
			if r.Len() > maxL {
				maxL = r.Len()
			}
		}
		if maxL-minL > 1 {
			t.Fatalf("imbalance %d for dim0=%d p=%d", maxL-minL, tc.dim0, tc.p)
		}
	}
}

func TestPartitionOfRow(t *testing.T) {
	rs := PartitionRows(100, 7)
	for row := 0; row < 100; row++ {
		p := PartitionOfRow(rs, row)
		if row < rs[p].Start || row >= rs[p].End {
			t.Fatalf("row %d assigned to wrong partition %d (%+v)", row, p, rs[p])
		}
	}
}

func TestSplitStitchRoundTrip(t *testing.T) {
	g := NewRNG(11)
	const dim0, w = 50, 3
	rows := make([]int, 20)
	for i := range rows {
		rows[i] = g.Intn(dim0)
	}
	s := NewSparse(rows, g.RandN(1, len(rows), w), dim0)
	ranges := PartitionRows(dim0, 6)
	parts := SplitSparse(s, ranges)
	if len(parts) != 6 {
		t.Fatalf("got %d parts", len(parts))
	}
	back := StitchSparse(parts, ranges, dim0)
	if back.ToDense().MaxAbsDiff(s.ToDense()) > 1e-6 {
		t.Fatal("split+stitch changed the effective gradient")
	}
	// Every split slice landed in the right range, re-based locally.
	for pi, p := range parts {
		for _, r := range p.Rows {
			if r < 0 || r >= ranges[pi].Len() {
				t.Fatalf("partition %d has local row %d outside [0,%d)", pi, r, ranges[pi].Len())
			}
		}
	}
}

// Property: for random sparse tensors and partition counts, the effective
// dense gradient is invariant under split/stitch and under coalesce.
func TestSparseInvariantsProperty(t *testing.T) {
	g := NewRNG(13)
	f := func(seed int64) bool {
		r := NewRNG(seed)
		dim0 := 1 + r.Intn(40)
		w := 1 + r.Intn(4)
		n := r.Intn(30)
		rows := make([]int, n)
		for i := range rows {
			rows[i] = r.Intn(dim0)
		}
		s := NewSparse(rows, r.RandN(1, n, w), dim0)
		p := 1 + r.Intn(10)
		ranges := PartitionRows(dim0, p)
		stitched := StitchSparse(SplitSparse(s, ranges), ranges, dim0)
		if stitched.ToDense().MaxAbsDiff(s.ToDense()) > 1e-5 {
			return false
		}
		co := s.Coalesce()
		if !sort.IntsAreSorted(co.Rows) {
			return false
		}
		return co.ToDense().MaxAbsDiff(s.ToDense()) < 1e-5
	}
	cfg := &quick.Config{MaxCount: 50, Values: nil}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
	_ = g
}
