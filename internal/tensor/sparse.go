package tensor

import (
	"fmt"
	"sort"
)

// Sparse is an IndexedSlices-style sparse tensor: a set of rows of a larger
// (conceptual) dense tensor whose first dimension has size Dim0. Rows may
// repeat (e.g. a word appearing twice in a batch produces two slices with
// the same index); aggregation sums duplicates.
//
// This is the gradient type produced by Gather (embedding lookup), and its
// presence is how Parallax classifies a variable as sparse (§5,
// "Identifying the sparsity of a variable").
type Sparse struct {
	// Rows holds the first-dimension indices of each slice, parallel to the
	// rows of Values.
	Rows []int
	// Values holds one row per entry in Rows; Values.Dim(0) == len(Rows).
	Values *Dense
	// Dim0 is the first-dimension size of the full variable this gradient
	// applies to.
	Dim0 int

	// coalesced records that Rows is sorted and duplicate-free, letting
	// norm computations skip re-coalescing. Constructors that cannot prove
	// it leave it false, which is always safe.
	coalesced bool
}

// NewSparse builds a sparse tensor from rows and a matching values tensor.
func NewSparse(rows []int, values *Dense, dim0 int) *Sparse {
	if values.Rank() == 0 || values.Dim(0) != len(rows) {
		panic(fmt.Sprintf("tensor: sparse values dim0 %v != len(rows) %d", values.Shape(), len(rows)))
	}
	for _, r := range rows {
		if r < 0 || r >= dim0 {
			panic(fmt.Sprintf("tensor: sparse row %d out of range [0,%d)", r, dim0))
		}
	}
	return &Sparse{Rows: append([]int(nil), rows...), Values: values, Dim0: dim0}
}

// RowWidth returns the elements per slice.
func (s *Sparse) RowWidth() int { return s.Values.RowWidth() }

// NNZRows returns the number of stored slices (duplicates counted).
func (s *Sparse) NNZRows() int { return len(s.Rows) }

// Bytes returns the wire size of the values payload. Index bytes are
// excluded, matching the paper's footnote 3 ("we omitted the network
// transfer for exchanging nonzero indices since it is negligible").
func (s *Sparse) Bytes() int64 { return s.Values.Bytes() }

// Clone returns a deep copy.
func (s *Sparse) Clone() *Sparse {
	return &Sparse{Rows: append([]int(nil), s.Rows...), Values: s.Values.Clone(), Dim0: s.Dim0, coalesced: s.coalesced}
}

// ToDense scatters the slices into a full dense tensor of shape
// [Dim0, rowWidth], summing duplicate rows.
func (s *Sparse) ToDense() *Dense {
	out := NewDense(s.Dim0, s.RowWidth())
	s.ToDenseInto(out)
	return out
}

// ToDenseInto scatter-adds the slices into out, an already-zeroed dense
// tensor with Dim0 rows of RowWidth elements (e.g. a pooled buffer),
// summing duplicate rows.
func (s *Sparse) ToDenseInto(out *Dense) {
	w := s.RowWidth()
	if out.Dim(0) != s.Dim0 || out.RowWidth() != w {
		panic(fmt.Sprintf("tensor: ToDenseInto into %v for sparse dim0=%d width=%d",
			out.Shape(), s.Dim0, w))
	}
	for i, r := range s.Rows {
		AddTo(s.Values.data[i*w:(i+1)*w], out.data[r*w:(r+1)*w])
	}
}

// Coalesce returns an equivalent sparse tensor with unique, sorted rows and
// duplicate slices summed. This is the "aggregation of gradients for sparse
// variables" operation whose cost partitioning parallelizes (§3.2).
func (s *Sparse) Coalesce() *Sparse {
	if s.coalesced {
		return s
	}
	w := s.RowWidth()
	uniq := make([]int, 0, len(s.Rows))
	seen := make(map[int]int, len(s.Rows)) // row -> position in uniq
	for _, r := range s.Rows {
		if _, ok := seen[r]; !ok {
			seen[r] = 0
			uniq = append(uniq, r)
		}
	}
	sort.Ints(uniq)
	for i, r := range uniq {
		seen[r] = i
	}
	vals := NewDense(len(uniq), w)
	for i, r := range s.Rows {
		AddTo(s.Values.data[i*w:(i+1)*w], vals.data[seen[r]*w:(seen[r]+1)*w])
	}
	return &Sparse{Rows: uniq, Values: vals, Dim0: s.Dim0, coalesced: true}
}

// Scale multiplies all stored values by a.
func (s *Sparse) Scale(a float32) { s.Values.Scale(a) }

// L2NormSquared returns the squared L2 norm of the *effective* gradient,
// i.e. of the coalesced tensor (duplicate rows summed before squaring).
func (s *Sparse) L2NormSquared() float64 {
	return s.Coalesce().Values.L2NormSquared()
}

// ConcatSparse concatenates sparse gradients from multiple workers into one,
// the AllGatherv aggregation semantics of the AR architecture for sparse
// variables (§2.1: gradients are "aggregated by concatenating the arrays").
func ConcatSparse(parts []*Sparse) *Sparse {
	if len(parts) == 0 {
		panic("tensor: ConcatSparse of no parts")
	}
	w := parts[0].RowWidth()
	dim0 := parts[0].Dim0
	total := 0
	for _, p := range parts {
		if p.RowWidth() != w || p.Dim0 != dim0 {
			panic("tensor: ConcatSparse shape mismatch")
		}
		total += len(p.Rows)
	}
	rows := make([]int, 0, total)
	vals := NewDense(total, w)
	off := 0
	for _, p := range parts {
		rows = append(rows, p.Rows...)
		copy(vals.data[off*w:], p.Values.data)
		off += len(p.Rows)
	}
	return &Sparse{Rows: rows, Values: vals, Dim0: dim0}
}

// SumSparse aggregates sparse gradients from multiple workers by summing
// slices with equal row indices — the PS-server aggregation semantics.
// The result is coalesced. It runs in a single pass over the inputs (no
// intermediate concatenated tensor), since it sits on the per-partition
// accumulator hot path of the parameter servers.
func SumSparse(parts []*Sparse) *Sparse {
	if len(parts) == 0 {
		panic("tensor: SumSparse of no parts")
	}
	if len(parts) == 1 {
		return parts[0].Coalesce()
	}
	w := parts[0].RowWidth()
	dim0 := parts[0].Dim0
	total := 0
	for _, p := range parts {
		if p.RowWidth() != w || p.Dim0 != dim0 {
			panic("tensor: SumSparse shape mismatch")
		}
		total += len(p.Rows)
	}
	uniq := make([]int, 0, total)
	seen := make(map[int]int, total) // row -> position in uniq
	for _, p := range parts {
		for _, r := range p.Rows {
			if _, ok := seen[r]; !ok {
				seen[r] = 0
				uniq = append(uniq, r)
			}
		}
	}
	sort.Ints(uniq)
	for i, r := range uniq {
		seen[r] = i
	}
	vals := NewDense(len(uniq), w)
	for _, p := range parts {
		for i, r := range p.Rows {
			AddTo(p.Values.data[i*w:(i+1)*w], vals.data[seen[r]*w:(seen[r]+1)*w])
		}
	}
	return &Sparse{Rows: uniq, Values: vals, Dim0: dim0, coalesced: true}
}

// Gather extracts rows of a [dim0, w] dense tensor into a new sparse tensor
// referencing those rows (an embedding lookup). The forward value is dense
// (the looked-up rows); Gather is provided here for building gradients and
// tests; the graph op lives in internal/graph.
func Gather(t *Dense, rows []int) *Dense {
	w := t.RowWidth()
	out := NewDense(len(rows), w)
	for i, r := range rows {
		if r < 0 || r >= t.Dim(0) {
			panic(fmt.Sprintf("tensor: gather row %d out of range [0,%d)", r, t.Dim(0)))
		}
		copy(out.data[i*w:(i+1)*w], t.data[r*w:(r+1)*w])
	}
	return out
}

// ScatterAddSparse applies t[r] += a * slice for each (r, slice) in s.
// It is the sparse-variable update primitive used by the optimizer.
func ScatterAddSparse(t *Dense, a float32, s *Sparse) {
	if t.Dim(0) != s.Dim0 || t.RowWidth() != s.RowWidth() {
		panic(fmt.Sprintf("tensor: scatter shape mismatch %v vs sparse dim0=%d w=%d",
			t.Shape(), s.Dim0, s.RowWidth()))
	}
	w := s.RowWidth()
	for i, r := range s.Rows {
		Axpy(a, s.Values.data[i*w:(i+1)*w], t.data[r*w:(r+1)*w])
	}
}

// AlphaOf returns the α of a batch access pattern: the fraction of the
// variable's dim0 rows touched at least once (§2.2's "element ratio").
func AlphaOf(rows []int, dim0 int) float64 {
	if dim0 == 0 {
		return 0
	}
	seen := make(map[int]struct{}, len(rows))
	for _, r := range rows {
		seen[r] = struct{}{}
	}
	return float64(len(seen)) / float64(dim0)
}
