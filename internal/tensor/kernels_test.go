package tensor

import (
	"math"
	"testing"
)

// The unrolled kernels must agree with the naive loops on every length,
// including the 1–3 element tails the unroll leaves over.
func TestKernelsMatchNaive(t *testing.T) {
	rng := NewRNG(42)
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 33, 100} {
		src := make([]float32, n)
		dst := make([]float32, n)
		for i := range src {
			src[i] = float32(rng.Float64()*2 - 1)
			dst[i] = float32(rng.Float64()*2 - 1)
		}

		wantAdd := append([]float32(nil), dst...)
		for i := range wantAdd {
			wantAdd[i] += src[i]
		}
		gotAdd := append([]float32(nil), dst...)
		AddTo(src, gotAdd)
		for i := range wantAdd {
			if gotAdd[i] != wantAdd[i] {
				t.Fatalf("AddTo n=%d elem %d: %v != %v", n, i, gotAdd[i], wantAdd[i])
			}
		}

		const a = float32(0.37)
		wantAxpy := append([]float32(nil), dst...)
		for i := range wantAxpy {
			wantAxpy[i] += a * src[i]
		}
		gotAxpy := append([]float32(nil), dst...)
		Axpy(a, src, gotAxpy)
		for i := range wantAxpy {
			if gotAxpy[i] != wantAxpy[i] {
				t.Fatalf("Axpy n=%d elem %d: %v != %v", n, i, gotAxpy[i], wantAxpy[i])
			}
		}

		// Dot reassociates into four partial sums, so compare against a
		// float64 reference with a proportional tolerance.
		var ref float64
		for i := range src {
			ref += float64(src[i]) * float64(dst[i])
		}
		if got := Dot(src, dst); math.Abs(float64(got)-ref) > 1e-4*(1+math.Abs(ref)) {
			t.Fatalf("Dot n=%d: %v, want ~%v", n, got, ref)
		}
	}
}

// Axpy into a longer destination must only touch the first len(src)
// elements (the matmul kernels rely on this when rows alias larger
// buffers).
func TestAxpyShortSource(t *testing.T) {
	dst := []float32{1, 1, 1, 1, 1, 1}
	Axpy(2, []float32{10, 10}, dst)
	want := []float32{21, 21, 1, 1, 1, 1}
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("dst = %v, want %v", dst, want)
		}
	}
}
