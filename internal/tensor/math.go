package tensor

import (
	"fmt"
	"math"
)

// MatMul returns a @ b for 2-D tensors: [m,k] x [k,n] -> [m,n].
func MatMul(a, b *Dense) *Dense {
	if a.Rank() != 2 || b.Rank() != 2 || a.Dim(1) != b.Dim(0) {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %v x %v", a.shape, b.shape))
	}
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	out := NewDense(m, n)
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				// Forward activations are frequently exactly zero (ReLU,
				// padded rows); skipping saves a whole row of b.
				continue
			}
			Axpy(av, b.data[p*n:(p+1)*n], orow)
		}
	}
	return out
}

// MatMulT1 returns aᵀ @ b for 2-D tensors: [k,m]ᵀ x [k,n] -> [m,n].
// Used by backprop for weight gradients.
func MatMulT1(a, b *Dense) *Dense {
	if a.Rank() != 2 || b.Rank() != 2 || a.Dim(0) != b.Dim(0) {
		panic(fmt.Sprintf("tensor: MatMulT1 shape mismatch %v x %v", a.shape, b.shape))
	}
	k, m, n := a.Dim(0), a.Dim(1), b.Dim(1)
	out := NewDense(m, n)
	for p := 0; p < k; p++ {
		arow := a.data[p*m : (p+1)*m]
		brow := b.data[p*n : (p+1)*n]
		// No zero-skip here: a holds pre-activation inputs (tanh outputs,
		// embeddings), which are almost never exactly zero, and the branch
		// defeats pipelining of the unrolled axpy on dense inputs.
		for i := 0; i < m; i++ {
			Axpy(arow[i], brow, out.data[i*n:(i+1)*n])
		}
	}
	return out
}

// MatMulT2 returns a @ bᵀ for 2-D tensors: [m,k] x [n,k]ᵀ -> [m,n].
// Used by backprop for input gradients.
func MatMulT2(a, b *Dense) *Dense {
	if a.Rank() != 2 || b.Rank() != 2 || a.Dim(1) != b.Dim(1) {
		panic(fmt.Sprintf("tensor: MatMulT2 shape mismatch %v x %v", a.shape, b.shape))
	}
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(0)
	out := NewDense(m, n)
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			orow[j] = Dot(arow, b.data[j*k:(j+1)*k])
		}
	}
	return out
}

// AddBiasRows adds a [n] bias vector to every row of a [m,n] tensor,
// in place.
func AddBiasRows(t, bias *Dense) {
	if t.Rank() != 2 || bias.Rank() != 1 || t.Dim(1) != bias.Dim(0) {
		panic(fmt.Sprintf("tensor: AddBiasRows shape mismatch %v + %v", t.shape, bias.shape))
	}
	n := t.Dim(1)
	for i := 0; i < t.Dim(0); i++ {
		AddTo(bias.data, t.data[i*n:(i+1)*n])
	}
}

// SumRows returns the column-wise sum of a [m,n] tensor as a [n] vector
// (the bias gradient).
func SumRows(t *Dense) *Dense {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("tensor: SumRows on rank-%d tensor", t.Rank()))
	}
	n := t.Dim(1)
	out := NewDense(n)
	for i := 0; i < t.Dim(0); i++ {
		AddTo(t.data[i*n:(i+1)*n], out.data)
	}
	return out
}

// ReluForward returns max(x, 0) element-wise.
func ReluForward(x *Dense) *Dense {
	out := x.Clone()
	for i, v := range out.data {
		if v < 0 {
			out.data[i] = 0
		}
	}
	return out
}

// ReluBackward returns dy masked by x > 0.
func ReluBackward(x, dy *Dense) *Dense {
	if !x.SameShape(dy) {
		panic(fmt.Sprintf("tensor: ReluBackward shape mismatch %v vs %v", x.shape, dy.shape))
	}
	out := dy.Clone()
	for i, v := range x.data {
		if v <= 0 {
			out.data[i] = 0
		}
	}
	return out
}

// TanhForward returns tanh(x) element-wise.
func TanhForward(x *Dense) *Dense {
	out := x.Clone()
	for i, v := range out.data {
		out.data[i] = float32(math.Tanh(float64(v)))
	}
	return out
}

// TanhBackward returns dy * (1 - y²) where y = tanh(x) is the forward
// output.
func TanhBackward(y, dy *Dense) *Dense {
	if !y.SameShape(dy) {
		panic(fmt.Sprintf("tensor: TanhBackward shape mismatch %v vs %v", y.shape, dy.shape))
	}
	out := dy.Clone()
	for i := range out.data {
		out.data[i] *= 1 - y.data[i]*y.data[i]
	}
	return out
}

// SoftmaxCrossEntropy computes, for logits [m, classes] and integer labels
// [m], the mean cross-entropy loss and the gradient with respect to the
// logits (softmax(x) - onehot(label), scaled by 1/m).
func SoftmaxCrossEntropy(logits *Dense, labels []int) (loss float64, grad *Dense) {
	if logits.Rank() != 2 || logits.Dim(0) != len(labels) {
		panic(fmt.Sprintf("tensor: SoftmaxCrossEntropy logits %v vs %d labels", logits.shape, len(labels)))
	}
	m, c := logits.Dim(0), logits.Dim(1)
	grad = NewDense(m, c)
	inv := 1 / float64(m)
	for i := 0; i < m; i++ {
		row := logits.data[i*c : (i+1)*c]
		maxv := rowMax(row)
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - maxv))
		}
		lbl := labels[i]
		if lbl < 0 || lbl >= c {
			panic(fmt.Sprintf("tensor: label %d out of range [0,%d)", lbl, c))
		}
		logZ := math.Log(sum) + float64(maxv)
		loss += (logZ - float64(row[lbl])) * inv
		grow := grad.data[i*c : (i+1)*c]
		for j, v := range row {
			grow[j] = float32(math.Exp(float64(v)-logZ) * inv)
		}
		grow[lbl] -= float32(inv)
	}
	return loss, grad
}

func rowMax(row []float32) float32 {
	m := row[0]
	for _, v := range row[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// GlobalNorm returns the L2 norm across a mixed set of dense and sparse
// gradients, as used for gradient clipping (§5: "compute a global norm of
// gradients for clipping").
func GlobalNorm(dense []*Dense, sparse []*Sparse) float64 {
	var s float64
	for _, d := range dense {
		s += d.L2NormSquared()
	}
	for _, sp := range sparse {
		s += sp.L2NormSquared()
	}
	return math.Sqrt(s)
}
