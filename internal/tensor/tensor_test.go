package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDenseShapeAndZeroFill(t *testing.T) {
	d := NewDense(2, 3, 4)
	if d.NumElements() != 24 {
		t.Fatalf("NumElements = %d, want 24", d.NumElements())
	}
	if d.Rank() != 3 || d.Dim(0) != 2 || d.Dim(1) != 3 || d.Dim(2) != 4 {
		t.Fatalf("bad shape %v", d.Shape())
	}
	for i, v := range d.Data() {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	d := NewDense(3, 5)
	d.Set(7.5, 2, 4)
	if got := d.At(2, 4); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	if got := d.At(0, 0); got != 0 {
		t.Fatalf("At(0,0) = %v, want 0", got)
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range index")
		}
	}()
	NewDense(2, 2).At(2, 0)
}

func TestFromSliceChecksLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestCloneIsDeep(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := a.Clone()
	b.Set(99, 0, 0)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestAddIntoSubScaleAXPY(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{10, 20, 30}, 3)
	a.AddInto(b)
	want := []float32{11, 22, 33}
	for i, v := range a.Data() {
		if v != want[i] {
			t.Fatalf("AddInto[%d] = %v, want %v", i, v, want[i])
		}
	}
	a.Sub(b)
	for i, v := range a.Data() {
		if v != float32(i+1) {
			t.Fatalf("Sub[%d] = %v, want %v", i, v, i+1)
		}
	}
	a.Scale(2)
	if a.At(2) != 6 {
		t.Fatalf("Scale: got %v, want 6", a.At(2))
	}
	a.AXPY(0.5, b)
	if a.At(0) != 2+5 {
		t.Fatalf("AXPY: got %v, want 7", a.At(0))
	}
}

func TestL2NormAndMaxAbsDiff(t *testing.T) {
	a := FromSlice([]float32{3, 4}, 2)
	if got := a.L2Norm(); math.Abs(got-5) > 1e-9 {
		t.Fatalf("L2Norm = %v, want 5", got)
	}
	b := FromSlice([]float32{3, 7}, 2)
	if got := a.MaxAbsDiff(b); got != 3 {
		t.Fatalf("MaxAbsDiff = %v, want 3", got)
	}
}

func TestBytesIsFourPerElement(t *testing.T) {
	if got := NewDense(10, 10).Bytes(); got != 400 {
		t.Fatalf("Bytes = %d, want 400", got)
	}
}

func TestMatMulKnownValues(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{5, 6, 7, 8}, 2, 2)
	c := MatMul(a, b)
	want := []float32{19, 22, 43, 50}
	for i, v := range c.Data() {
		if v != want[i] {
			t.Fatalf("MatMul[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestMatMulTransposesAgree(t *testing.T) {
	g := NewRNG(1)
	a := g.RandN(1, 4, 3)
	b := g.RandN(1, 4, 5)
	// aᵀ @ b via MatMulT1 must equal transpose(a) @ b done manually.
	at := NewDense(3, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			at.Set(a.At(i, j), j, i)
		}
	}
	want := MatMul(at, b)
	got := MatMulT1(a, b)
	if want.MaxAbsDiff(got) > 1e-5 {
		t.Fatalf("MatMulT1 differs from explicit transpose by %v", want.MaxAbsDiff(got))
	}

	x := g.RandN(1, 2, 3)
	y := g.RandN(1, 4, 3)
	got2 := MatMulT2(x, y) // [2,4]
	yt := NewDense(3, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			yt.Set(y.At(i, j), j, i)
		}
	}
	want3 := MatMul(x, yt)
	if want3.MaxAbsDiff(got2) > 1e-5 {
		t.Fatalf("MatMulT2 differs from explicit transpose by %v", want3.MaxAbsDiff(got2))
	}
}

func TestBiasAndSumRows(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{10, 20}, 2)
	AddBiasRows(x, b)
	if x.At(0, 0) != 11 || x.At(1, 1) != 24 {
		t.Fatalf("AddBiasRows wrong: %v", x.Data())
	}
	s := SumRows(x)
	if s.At(0) != 11+13 || s.At(1) != 22+24 {
		t.Fatalf("SumRows wrong: %v", s.Data())
	}
}

func TestReluForwardBackward(t *testing.T) {
	x := FromSlice([]float32{-1, 0, 2}, 3)
	y := ReluForward(x)
	if y.At(0) != 0 || y.At(1) != 0 || y.At(2) != 2 {
		t.Fatalf("ReluForward wrong: %v", y.Data())
	}
	dy := FromSlice([]float32{5, 5, 5}, 3)
	dx := ReluBackward(x, dy)
	if dx.At(0) != 0 || dx.At(1) != 0 || dx.At(2) != 5 {
		t.Fatalf("ReluBackward wrong: %v", dx.Data())
	}
}

func TestSoftmaxCrossEntropyGradientSumsToZero(t *testing.T) {
	g := NewRNG(2)
	logits := g.RandN(1, 4, 7)
	labels := []int{1, 3, 0, 6}
	loss, grad := SoftmaxCrossEntropy(logits, labels)
	if loss <= 0 {
		t.Fatalf("loss = %v, want > 0", loss)
	}
	// Each row of the gradient sums to 0 (softmax probs sum to 1 minus the
	// one-hot label mass, all scaled by 1/m).
	for i := 0; i < 4; i++ {
		var s float64
		for j := 0; j < 7; j++ {
			s += float64(grad.At(i, j))
		}
		if math.Abs(s) > 1e-6 {
			t.Fatalf("grad row %d sums to %v, want 0", i, s)
		}
	}
}

func TestSoftmaxCrossEntropyMatchesFiniteDifference(t *testing.T) {
	g := NewRNG(3)
	logits := g.RandN(0.5, 2, 3)
	labels := []int{2, 0}
	_, grad := SoftmaxCrossEntropy(logits, labels)
	const eps = 1e-3
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			p := logits.Clone()
			p.Set(p.At(i, j)+eps, i, j)
			lp, _ := SoftmaxCrossEntropy(p, labels)
			m := logits.Clone()
			m.Set(m.At(i, j)-eps, i, j)
			lm, _ := SoftmaxCrossEntropy(m, labels)
			fd := (lp - lm) / (2 * eps)
			if math.Abs(fd-float64(grad.At(i, j))) > 1e-3 {
				t.Fatalf("grad[%d,%d] = %v, finite diff %v", i, j, grad.At(i, j), fd)
			}
		}
	}
}

func TestGlobalNormMixesDenseAndSparse(t *testing.T) {
	d := FromSlice([]float32{3}, 1)
	sp := NewSparse([]int{0}, FromSlice([]float32{4}, 1, 1), 5)
	if got := GlobalNorm([]*Dense{d}, []*Sparse{sp}); math.Abs(got-5) > 1e-9 {
		t.Fatalf("GlobalNorm = %v, want 5", got)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42).RandN(1, 8)
	b := NewRNG(42).RandN(1, 8)
	if a.MaxAbsDiff(b) != 0 {
		t.Fatal("same seed produced different tensors")
	}
}

// Property: tanh backward at y=tanh(x) matches finite difference of tanh.
func TestTanhBackwardProperty(t *testing.T) {
	f := func(raw float32) bool {
		x := float64(raw)
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 5 {
			return true
		}
		xs := FromSlice([]float32{float32(x)}, 1)
		y := TanhForward(xs)
		dy := FromSlice([]float32{1}, 1)
		dx := TanhBackward(y, dy)
		want := 1 - math.Tanh(x)*math.Tanh(x)
		return math.Abs(float64(dx.At(0))-want) < 1e-3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
