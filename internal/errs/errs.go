// Package errs holds the sentinel errors shared across the runtime
// layers and re-exported by the public parallax package. Internal
// packages wrap them with fmt.Errorf("...: %w", errs.ErrX) so callers
// match conditions with errors.Is instead of string comparison — the
// contract the public Session API documents.
package errs

import (
	"errors"
	"fmt"
)

var (
	// ErrClosed marks an operation against a closed session, trainer, or
	// transport fabric: stepping after Close, saving a checkpoint from a
	// closed session, a parameter-server round trip whose fabric shut
	// down mid-call.
	ErrClosed = errors.New("closed")

	// ErrTopologyMismatch marks a disagreement between two descriptions
	// of the cluster that must be identical: a transport fabric whose
	// endpoint layout differs from the resource specification, or a
	// checkpoint whose topology/plan fingerprints do not match the
	// session being restored.
	ErrTopologyMismatch = errors.New("topology mismatch")

	// ErrCheckpointVersion marks a checkpoint file whose magic or format
	// version this build cannot read.
	ErrCheckpointVersion = errors.New("unsupported checkpoint version")

	// ErrCompressionMismatch marks a disagreement about the wire
	// compression policy between parties that must share it: two agent
	// processes whose rendezvous handshakes carry different policy
	// fingerprints, or a checkpoint restored into a session configured
	// with a different policy than the one that trained it.
	ErrCompressionMismatch = errors.New("compression policy mismatch")

	// ErrPeerFailed marks the death of a peer process: a heartbeat
	// timeout, a broken connection, or a peer-down notification relayed
	// by another survivor. The concrete error in the chain is usually a
	// *PeerFailure carrying the failed rank and the fabric epoch; match
	// with errors.Is(err, ErrPeerFailed) and recover the attribution
	// with errors.As.
	ErrPeerFailed = errors.New("peer failed")

	// ErrEpochMismatch marks a rendezvous between two processes that
	// disagree about the fabric generation: one of them recovered (or
	// restarted) into a newer epoch while the other still carries a
	// stale one. The stale side should re-read the cluster's epoch
	// record and retry.
	ErrEpochMismatch = errors.New("epoch mismatch")

	// ErrLeft marks the clean voluntary departure of this agent from an
	// elastic cluster: Session.Leave was requested, the survivors agreed
	// on a membership without this machine, its parameter-server shards
	// were handed off, and the session closed itself. It is a terminal
	// outcome, not a failure — agent processes should exit 0 on it.
	ErrLeft = errors.New("left cluster")
)

// PeerFailure is the rank-attributed failure record produced by the
// transport when a peer dies. It satisfies errors.Is(err, ErrPeerFailed)
// and unwraps to the underlying cause (EOF, heartbeat timeout, ...).
type PeerFailure struct {
	// Rank is the process index of the peer that failed (the process
	// whose connection broke or that was reported down by a survivor).
	Rank int
	// Epoch is the fabric generation in which the failure was observed.
	Epoch int
	// Cause is the raw symptom, when one was observed locally.
	Cause error
}

func (e *PeerFailure) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("peer %d failed (epoch %d): %v", e.Rank, e.Epoch, e.Cause)
	}
	return fmt.Sprintf("peer %d failed (epoch %d)", e.Rank, e.Epoch)
}

// Is reports the sentinel identity so errors.Is(err, ErrPeerFailed)
// matches any wrapped *PeerFailure.
func (e *PeerFailure) Is(target error) bool { return target == ErrPeerFailed }

func (e *PeerFailure) Unwrap() error { return e.Cause }
