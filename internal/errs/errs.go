// Package errs holds the sentinel errors shared across the runtime
// layers and re-exported by the public parallax package. Internal
// packages wrap them with fmt.Errorf("...: %w", errs.ErrX) so callers
// match conditions with errors.Is instead of string comparison — the
// contract the public Session API documents.
package errs

import "errors"

var (
	// ErrClosed marks an operation against a closed session, trainer, or
	// transport fabric: stepping after Close, saving a checkpoint from a
	// closed session, a parameter-server round trip whose fabric shut
	// down mid-call.
	ErrClosed = errors.New("closed")

	// ErrTopologyMismatch marks a disagreement between two descriptions
	// of the cluster that must be identical: a transport fabric whose
	// endpoint layout differs from the resource specification, or a
	// checkpoint whose topology/plan fingerprints do not match the
	// session being restored.
	ErrTopologyMismatch = errors.New("topology mismatch")

	// ErrCheckpointVersion marks a checkpoint file whose magic or format
	// version this build cannot read.
	ErrCheckpointVersion = errors.New("unsupported checkpoint version")

	// ErrCompressionMismatch marks a disagreement about the wire
	// compression policy between parties that must share it: two agent
	// processes whose rendezvous handshakes carry different policy
	// fingerprints, or a checkpoint restored into a session configured
	// with a different policy than the one that trained it.
	ErrCompressionMismatch = errors.New("compression policy mismatch")
)
