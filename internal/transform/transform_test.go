package transform

import (
	"math"
	"testing"

	"parallax/internal/cluster"
	"parallax/internal/core"
	"parallax/internal/data"
	"parallax/internal/graph"
	"parallax/internal/models"
	"parallax/internal/optim"
	"parallax/internal/tensor"
)

// planFor builds a plan for graph g's variables using measured alphas of 0.1
// for sparse variables (the value is irrelevant for real-mode correctness).
func planFor(t *testing.T, g *graph.Graph, arch core.Arch, machines, parts int) *core.Plan {
	t.Helper()
	var vars []core.VarInfo
	for _, v := range g.Variables() {
		alpha := 1.0
		sparse := g.GradKind(v) == graph.GradSparse
		if sparse {
			alpha = 0.1
		}
		vars = append(vars, core.VarInfo{
			Name: v.Name, Rows: int64(v.Shape[0]), Width: int64(varWidth(v)),
			Sparse: sparse, Alpha: alpha, PartitionTarget: v.PartitionScope >= 0,
		})
	}
	plan, err := core.BuildPlan(vars, core.Options{
		Arch: arch, NumMachines: machines, SparsePartitions: parts, SmartPlacement: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func varWidth(v *graph.Variable) int {
	if len(v.Shape) < 2 {
		return 1
	}
	w := 1
	for _, d := range v.Shape[1:] {
		w *= d
	}
	return w
}

// lmFeeds builds per-worker feeds plus the equivalent single concatenated
// batch.
func lmFeeds(workers, batch, vocab int, seed int64) ([]graph.Feed, graph.Feed) {
	rng := tensor.NewRNG(seed)
	feeds := make([]graph.Feed, workers)
	var allTok, allLbl []int
	for w := range feeds {
		tok := make([]int, batch)
		lbl := make([]int, batch)
		for i := range tok {
			tok[i] = rng.Intn(vocab)
			lbl[i] = rng.Intn(vocab)
		}
		feeds[w] = graph.Feed{Ints: map[string][]int{"tokens": tok, "labels": lbl}}
		allTok = append(allTok, tok...)
		allLbl = append(allLbl, lbl...)
	}
	return feeds, graph.Feed{Ints: map[string][]int{"tokens": allTok, "labels": allLbl}}
}

// trainSequential runs the mathematically equivalent single-GPU training:
// same initial variables, concatenated batch, same learning rate.
func trainSequential(t *testing.T, cfg models.TinyLMConfig, workers, steps int, lr float32, seed int64) map[string]*tensor.Dense {
	t.Helper()
	big := cfg
	big.Batch = cfg.Batch * workers
	g := models.BuildTinyLM(big)
	e, err := graph.NewExec(g)
	if err != nil {
		t.Fatal(err)
	}
	opt := optim.NewSGD(lr)
	for s := 0; s < steps; s++ {
		_, feed := lmFeeds(workers, cfg.Batch, cfg.Vocab, seed+int64(s))
		_, grads, err := e.Step(feed)
		if err != nil {
			t.Fatal(err)
		}
		for name, d := range grads.Dense {
			opt.ApplyDense(name, e.VarValue(name), d)
		}
		for name, sp := range grads.Sparse {
			opt.ApplySparse(name, e.VarValue(name), sp)
		}
	}
	out := map[string]*tensor.Dense{}
	for _, v := range g.Variables() {
		out[v.Name] = e.VarValue(v.Name).Clone()
	}
	return out
}

// trainDistributed runs the same problem through the trainer.
func trainDistributed(t *testing.T, cfg models.TinyLMConfig, arch core.Arch, ri cluster.ResourceInfo,
	parts, steps int, lr float32, localAgg bool, seed int64) map[string]*tensor.Dense {
	t.Helper()
	g := models.BuildTinyLM(cfg)
	plan := planFor(t, g, arch, ri.NumMachines(), parts)
	tr, err := New(g, Options{
		Plan:     plan,
		Resource: ri,
		NewOptimizer: func() optim.Optimizer {
			return optim.NewSGD(lr)
		},
		DenseAgg:         optim.AggMean,
		SparseAgg:        optim.AggMean,
		LocalAggregation: localAgg,
	})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < steps; s++ {
		feeds, _ := lmFeeds(tr.Workers(), cfg.Batch, cfg.Vocab, seed+int64(s))
		if _, err := tr.Step(feeds); err != nil {
			t.Fatal(err)
		}
	}
	out := map[string]*tensor.Dense{}
	for _, v := range g.Variables() {
		val, err := tr.VarValue(v.Name)
		if err != nil {
			t.Fatal(err)
		}
		out[v.Name] = val
	}
	return out
}

// The central correctness claim (§4.3: transformation preserves
// "correctness"): distributed training under every architecture produces
// the same variable trajectories as the equivalent single-GPU run.
//
// With AggMean over W workers of per-worker-mean gradients, the update
// equals single-GPU training on the concatenated batch of W·b examples.
func TestDistributedMatchesSequential(t *testing.T) {
	cfg := models.TinyLMConfig{Vocab: 60, Dim: 8, Hidden: 12, Batch: 6, Seed: 7}
	const steps = 4
	const lr = 0.4
	const seed = 1000
	ri := cluster.Uniform(2, 2) // 2 machines x 2 GPUs
	want := trainSequential(t, cfg, ri.TotalGPUs(), steps, lr, seed)

	for _, tc := range []struct {
		name     string
		arch     core.Arch
		parts    int
		localAgg bool
	}{
		{"hybrid", core.ArchHybrid, 3, false},
		{"hybrid+localagg", core.ArchHybrid, 3, true},
		{"pure-AR", core.ArchAR, 1, false},
		{"naive-PS", core.ArchNaivePS, 1, false},
		{"opt-PS", core.ArchOptPS, 5, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := trainDistributed(t, cfg, tc.arch, ri, tc.parts, steps, lr, tc.localAgg, seed)
			for name, w := range want {
				diff := got[name].MaxAbsDiff(w)
				if diff > 2e-4 {
					t.Errorf("variable %s diverged from sequential by %v", name, diff)
				}
			}
		})
	}
}

func TestAllReplicasAgreeOnARVariables(t *testing.T) {
	cfg := models.DefaultTinyLM()
	cfg.Vocab, cfg.Batch = 50, 4
	g := models.BuildTinyLM(cfg)
	ri := cluster.Uniform(3, 1)
	plan := planFor(t, g, core.ArchHybrid, 3, 2)
	tr, err := New(g, Options{
		Plan: plan, Resource: ri,
		NewOptimizer: func() optim.Optimizer { return optim.NewSGD(0.2) },
		DenseAgg:     optim.AggMean, SparseAgg: optim.AggMean,
	})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 3; s++ {
		feeds, _ := lmFeeds(3, 4, 50, int64(s))
		if _, err := tr.Step(feeds); err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range g.DenseVariables() {
		ref := tr.execs[0].VarValue(v.Name)
		for w := 1; w < 3; w++ {
			if tr.execs[w].VarValue(v.Name).MaxAbsDiff(ref) > 1e-6 {
				t.Errorf("replica %d variable %s out of sync", w, v.Name)
			}
		}
	}
}

func TestLossDecreasesUnderHybridTraining(t *testing.T) {
	cfg := models.DefaultTinyLM()
	g := models.BuildTinyLM(cfg)
	ri := cluster.Uniform(2, 2)
	plan := planFor(t, g, core.ArchHybrid, 2, 4)
	tr, err := New(g, Options{
		Plan: plan, Resource: ri,
		NewOptimizer:     func() optim.Optimizer { return optim.NewSGD(0.5) },
		DenseAgg:         optim.AggMean,
		SparseAgg:        optim.AggMean,
		LocalAggregation: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := data.NewZipfText(cfg.Vocab, cfg.Batch, 1, 1.0, 5)
	shards := make([]data.Dataset, tr.Workers())
	for w := range shards {
		shards[w] = data.NewShard(data.NewZipfText(cfg.Vocab, cfg.Batch, 1, 1.0, 5), w, tr.Workers())
	}
	_ = ds
	var first, last float64
	for s := 0; s < 30; s++ {
		feeds := make([]graph.Feed, tr.Workers())
		for w := range feeds {
			b := shards[w].Next()
			feeds[w] = graph.Feed{Ints: map[string][]int{"tokens": b.Tokens, "labels": b.Labels}}
		}
		loss, err := tr.Step(feeds)
		if err != nil {
			t.Fatal(err)
		}
		if s == 0 {
			first = loss
		}
		last = loss
	}
	if !(last < first) {
		t.Fatalf("loss did not decrease: first %v last %v", first, last)
	}
}

func TestClippingMatchesSequentialClipped(t *testing.T) {
	// Distributed global-norm clipping (chief read-back path) must match
	// sequential training with the same clip threshold.
	cfg := models.TinyLMConfig{Vocab: 40, Dim: 6, Hidden: 8, Batch: 4, Seed: 9}
	const steps = 3
	const lr = 0.5
	const clip = 0.5
	const seed = 2000
	workers := 4
	// Sequential with clipping.
	big := cfg
	big.Batch = cfg.Batch * workers
	gs := models.BuildTinyLM(big)
	es, _ := graph.NewExec(gs)
	opt := optim.NewSGD(lr)
	for s := 0; s < steps; s++ {
		_, feed := lmFeeds(workers, cfg.Batch, cfg.Vocab, seed+int64(s))
		_, grads, err := es.Step(feed)
		if err != nil {
			t.Fatal(err)
		}
		optim.ClipByGlobalNorm(grads, clip)
		for name, d := range grads.Dense {
			opt.ApplyDense(name, es.VarValue(name), d)
		}
		for name, sp := range grads.Sparse {
			opt.ApplySparse(name, es.VarValue(name), sp)
		}
	}

	// Distributed hybrid with ClipNorm.
	gd := models.BuildTinyLM(cfg)
	ri := cluster.Uniform(2, 2)
	plan := planFor(t, gd, core.ArchHybrid, 2, 2)
	tr, err := New(gd, Options{
		Plan: plan, Resource: ri,
		NewOptimizer: func() optim.Optimizer { return optim.NewSGD(lr) },
		DenseAgg:     optim.AggMean, SparseAgg: optim.AggMean,
		ClipNorm: clip,
	})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < steps; s++ {
		feeds, _ := lmFeeds(workers, cfg.Batch, cfg.Vocab, seed+int64(s))
		if _, err := tr.Step(feeds); err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range gs.Variables() {
		got, err := tr.VarValue(v.Name)
		if err != nil {
			t.Fatal(err)
		}
		if diff := got.MaxAbsDiff(es.VarValue(v.Name)); diff > 5e-4 {
			t.Errorf("clipped training: variable %s diverged by %v", v.Name, diff)
		}
	}
}

func TestAsyncTrainingConverges(t *testing.T) {
	// Async PS (§2.1) has no step-equivalence guarantee, but the loss must
	// still go down on a learnable problem.
	cfg := models.DefaultTinyLM()
	g := models.BuildTinyLM(cfg)
	ri := cluster.Uniform(2, 1)
	plan := planFor(t, g, core.ArchNaivePS, 2, 2)
	tr, err := New(g, Options{
		Plan: plan, Resource: ri,
		NewOptimizer: func() optim.Optimizer { return optim.NewSGD(0.3) },
		DenseAgg:     optim.AggMean, SparseAgg: optim.AggMean,
		Async: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var first, last float64
	for s := 0; s < 25; s++ {
		feeds, _ := lmFeeds(2, cfg.Batch, cfg.Vocab, int64(s%3))
		loss, err := tr.Step(feeds)
		if err != nil {
			t.Fatal(err)
		}
		if s == 0 {
			first = loss
		}
		last = loss
	}
	if !(last < first) {
		t.Fatalf("async loss did not decrease: %v -> %v", first, last)
	}
}

func TestNMTModelWithTwoPartitionedEmbeddings(t *testing.T) {
	cfg := models.DefaultTinyNMT()
	cfg.Batch = 6
	g := models.BuildTinyNMT(cfg)
	ri := cluster.Uniform(2, 2)
	plan := planFor(t, g, core.ArchHybrid, 2, 3)
	tr, err := New(g, Options{
		Plan: plan, Resource: ri,
		NewOptimizer:     func() optim.Optimizer { return optim.NewSGD(0.3) },
		DenseAgg:         optim.AggMean,
		SparseAgg:        optim.AggMean,
		LocalAggregation: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(3)
	mk := func() []graph.Feed {
		feeds := make([]graph.Feed, tr.Workers())
		for w := range feeds {
			src := make([]int, cfg.Batch)
			dst := make([]int, cfg.Batch)
			lbl := make([]int, cfg.Batch)
			for i := range src {
				src[i] = rng.Intn(cfg.SrcVocab)
				dst[i] = rng.Intn(cfg.DstVocab)
				lbl[i] = rng.Intn(cfg.DstVocab)
			}
			feeds[w] = graph.Feed{Ints: map[string][]int{"en_texts": src, "de_texts": dst, "labels": lbl}}
		}
		return feeds
	}
	var losses []float64
	for s := 0; s < 10; s++ {
		l, err := tr.Step(mk())
		if err != nil {
			t.Fatal(err)
		}
		losses = append(losses, l)
	}
	if math.IsNaN(losses[len(losses)-1]) {
		t.Fatal("NaN loss")
	}
}

func TestNewValidations(t *testing.T) {
	g := models.BuildTinyLM(models.DefaultTinyLM())
	ri := cluster.Uniform(2, 1)
	plan := planFor(t, g, core.ArchHybrid, 2, 2)
	if _, err := New(g, Options{Plan: nil, Resource: ri}); err == nil {
		t.Error("nil plan must fail")
	}
	if _, err := New(g, Options{Plan: plan, Resource: ri}); err == nil {
		t.Error("nil optimizer factory must fail")
	}
	arPlan := planFor(t, g, core.ArchAR, 2, 1)
	if _, err := New(g, Options{
		Plan: arPlan, Resource: ri, Async: true,
		NewOptimizer: func() optim.Optimizer { return optim.NewSGD(1) },
	}); err == nil {
		t.Error("async + pure AR must fail")
	}
}
