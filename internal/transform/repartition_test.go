package transform

// Tests for live resharding (DESIGN.md §9): Trainer.Repartition must be
// lossless and deterministic — a run that reshards from P to P′ mid-run
// continues bit-identically to a run that used P′ from the start,
// including the optimizer slot state the servers migrate (the tests use
// momentum so dropped velocity would diverge the post-switch
// trajectory). Both fabrics are covered: the in-process channel fabric
// and two TCP-connected agents whose gather phase crosses the wire.

import (
	"math"
	"sync"
	"testing"

	"parallax/internal/cluster"
	"parallax/internal/core"
	"parallax/internal/models"
	"parallax/internal/optim"
	"parallax/internal/transport"
)

// tinyLMVarNames are BuildTinyLM's variables, PS and AR routes alike.
var tinyLMVarNames = []string{"embedding", "lstm/kernel", "lstm/bias", "softmax/kernel"}

// runSteps drives steps synchronous iterations with the shared
// deterministic feed stream and returns the loss trajectory.
func runSteps(t *testing.T, tr *Trainer, cfg models.TinyLMConfig, from, to int) []float64 {
	t.Helper()
	losses := make([]float64, 0, to-from)
	for s := from; s < to; s++ {
		feeds, _ := lmFeeds(tr.Workers(), cfg.Batch, cfg.Vocab, int64(s))
		loss, err := tr.Step(feeds)
		if err != nil {
			t.Fatal(err)
		}
		losses = append(losses, loss)
	}
	return losses
}

// requireSameBits compares two float64 trajectories bit for bit.
func requireSameBits(t *testing.T, what string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d losses vs %d", what, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: step %d loss %x, want %x", what, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
}

// requireSameVars compares every variable of two trainers bit for bit.
func requireSameVars(t *testing.T, what string, a, b *Trainer) {
	t.Helper()
	for _, name := range tinyLMVarNames {
		av, err := a.VarValue(name)
		if err != nil {
			t.Fatal(err)
		}
		bv, err := b.VarValue(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, x := range av.Data() {
			if math.Float32bits(x) != math.Float32bits(bv.Data()[i]) {
				t.Fatalf("%s: %s[%d] = %x, want %x", what, name, i,
					math.Float32bits(x), math.Float32bits(bv.Data()[i]))
			}
		}
	}
}

// withMomentum gives the trainer stateful optimizers so resharding has
// real slot state to migrate.
func withMomentum(o *Options) {
	o.LocalAggregation = true
	o.NewOptimizer = func() optim.Optimizer { return optim.NewMomentum(0.2, 0.9) }
}

// TestRepartitionBitIdentical is the in-process acceptance check: a
// hybrid 2×2 run that trains 4 steps at P=3, reshards to P=5, and
// trains 4 more must match — losses and all variables, bit for bit — a
// run that used P=5 from step 0. The 4 warm-up steps build momentum
// velocity on the servers, so the equality also proves the slot state
// migrated losslessly.
func TestRepartitionBitIdentical(t *testing.T) {
	cfg := models.DefaultTinyLM()
	ri := cluster.Uniform(2, 2)

	ref := newTrainer(t, cfg, core.ArchHybrid, ri, 5, withMomentum)
	want := runSteps(t, ref, cfg, 0, 8)

	tr := newTrainer(t, cfg, core.ArchHybrid, ri, 3, withMomentum)
	got := runSteps(t, tr, cfg, 0, 4)
	g := models.BuildTinyLM(cfg)
	if err := tr.Repartition(planFor(t, g, core.ArchHybrid, ri.NumMachines(), 5)); err != nil {
		t.Fatal(err)
	}
	got = append(got, runSteps(t, tr, cfg, 4, 8)...)

	requireSameBits(t, "reshard 3->5", got, want)
	requireSameVars(t, "reshard 3->5", tr, ref)
}

// TestRepartitionRepeated reshards every other step through a mix of
// shrinking, growing, and degenerate partition counts (P=1, P larger
// than the machine count, P back down) and still matches the fixed-P
// reference — the partitioning must be a pure layout choice with zero
// effect on the math, no matter how often it changes.
func TestRepartitionRepeated(t *testing.T) {
	cfg := models.DefaultTinyLM()
	ri := cluster.Uniform(2, 2)

	ref := newTrainer(t, cfg, core.ArchHybrid, ri, 4, withMomentum)
	want := runSteps(t, ref, cfg, 0, 8)

	tr := newTrainer(t, cfg, core.ArchHybrid, ri, 4, withMomentum)
	g := models.BuildTinyLM(cfg)
	var got []float64
	for i, p := range []int{3, 1, 7, 2} {
		got = append(got, runSteps(t, tr, cfg, 2*i, 2*i+2)...)
		if err := tr.Repartition(planFor(t, g, core.ArchHybrid, ri.NumMachines(), p)); err != nil {
			t.Fatal(err)
		}
	}
	requireSameBits(t, "repeated reshard", got, want)
	requireSameVars(t, "repeated reshard", tr, ref)
}

// TestRepartitionWithClipping pins the aggregation-sequence seeding of
// migrated partitions: under ClipNorm the chief's norm read-back waits
// for aggregation seq step+1, so a reshard that failed to seed aggSeq
// would deadlock the next step. (Loss bits are not compared across P
// here — the global-norm summation groups by partition.)
func TestRepartitionWithClipping(t *testing.T) {
	cfg := models.DefaultTinyLM()
	ri := cluster.Uniform(2, 2)
	tr := newTrainer(t, cfg, core.ArchHybrid, ri, 3, func(o *Options) {
		withMomentum(o)
		o.ClipNorm = 0.7
	})
	losses := runSteps(t, tr, cfg, 0, 3)
	g := models.BuildTinyLM(cfg)
	if err := tr.Repartition(planFor(t, g, core.ArchHybrid, ri.NumMachines(), 4)); err != nil {
		t.Fatal(err)
	}
	losses = append(losses, runSteps(t, tr, cfg, 3, 6)...)
	for s, l := range losses {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			t.Fatalf("step %d loss %v after reshard under clipping", s, l)
		}
	}
}

// TestRepartitionNoopAndErrors covers the cheap paths: resharding to the
// current partitioning is a no-op, and a plan that changes a route's
// method is rejected.
func TestRepartitionNoopAndErrors(t *testing.T) {
	cfg := models.DefaultTinyLM()
	ri := cluster.Uniform(2, 2)
	tr := newTrainer(t, cfg, core.ArchHybrid, ri, 3, withMomentum)
	runSteps(t, tr, cfg, 0, 2)
	g := models.BuildTinyLM(cfg)
	if err := tr.Repartition(planFor(t, g, core.ArchHybrid, ri.NumMachines(), 3)); err != nil {
		t.Fatalf("no-op reshard: %v", err)
	}
	if err := tr.Repartition(planFor(t, g, core.ArchAR, ri.NumMachines(), 3)); err == nil {
		t.Fatal("method-changing plan accepted")
	}
	if err := tr.Repartition(nil); err == nil {
		t.Fatal("nil plan accepted")
	}
	runSteps(t, tr, cfg, 2, 4)
}

// TestRepartitionOverTCPBitIdentical is the wire-fabric half of the
// acceptance criterion: two TCP-connected agents reshard 3→5 after step
// 4 (the gather phase snapshot-reads remote partitions over PSSnapshot
// round trips) and must still match the single-process P=5 run bit for
// bit — losses on both agents and the migrated embedding.
func TestRepartitionOverTCPBitIdentical(t *testing.T) {
	cfg := models.DefaultTinyLM()
	ri := cluster.Uniform(2, 2)
	const steps = 8

	ref := newTrainer(t, cfg, core.ArchHybrid, ri, 5, withMomentum)
	want := runSteps(t, ref, cfg, 0, steps)
	refEmb, err := ref.VarValue("embedding")
	if err != nil {
		t.Fatal(err)
	}

	topo := transport.Topology{Workers: 4, Machines: 2, MachineOfWorker: ri.WorkerMachines()}
	fabs := dialTestFabrics(t, topo)
	type agentRes struct {
		losses []float64
		emb    []float32
		err    error
	}
	results := [2]agentRes{}
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			res := &results[p]
			g := models.BuildTinyLM(cfg)
			opts := Options{
				Plan:         planFor(t, g, core.ArchHybrid, ri.NumMachines(), 3),
				Resource:     ri,
				NewOptimizer: func() optim.Optimizer { return optim.NewMomentum(0.2, 0.9) },
				DenseAgg:     optim.AggMean,
				SparseAgg:    optim.AggMean,
				Fabric:       fabs[p],
			}
			opts.LocalAggregation = true
			tr, err := New(g, opts)
			if err != nil {
				res.err = err
				return
			}
			defer tr.Close()
			step := func(s int) bool {
				feeds, _ := lmFeeds(4, cfg.Batch, cfg.Vocab, int64(s))
				loss, err := tr.Step(feeds)
				if err != nil {
					res.err = err
					return false
				}
				res.losses = append(res.losses, loss)
				return true
			}
			for s := 0; s < 4; s++ {
				if !step(s) {
					return
				}
			}
			if err := tr.Repartition(planFor(t, g, core.ArchHybrid, ri.NumMachines(), 5)); err != nil {
				res.err = err
				return
			}
			for s := 4; s < steps; s++ {
				if !step(s) {
					return
				}
			}
			emb, err := tr.VarValue("embedding")
			if err != nil {
				res.err = err
				return
			}
			res.emb = emb.Data()
		}(p)
	}
	wg.Wait()
	for p := range results {
		if results[p].err != nil {
			t.Fatalf("agent %d: %v", p, results[p].err)
		}
		requireSameBits(t, "tcp reshard", results[p].losses, want)
		for i, v := range refEmb.Data() {
			if math.Float32bits(results[p].emb[i]) != math.Float32bits(v) {
				t.Fatalf("agent %d embedding[%d] %x, want %x",
					p, i, math.Float32bits(results[p].emb[i]), math.Float32bits(v))
			}
		}
	}
}
