package transform

// Tests for the distributed deployment mode: the same trainer hosting
// one machine's share of the cluster per process, wired over
// transport.TCP. Both "agents" run inside this test process (each with
// its own fabric, graph, and trainer), which exercises the full wire
// path — framing, codec, PS serving loops, the distributed loss
// exchange, the close barrier — without spawning processes. The
// multi-process version of the same check runs in CI via
// cmd/parallax-agent.

import (
	"context"
	"errors"
	"math"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"parallax/internal/cluster"
	"parallax/internal/core"
	"parallax/internal/errs"
	"parallax/internal/models"
	"parallax/internal/optim"
	"parallax/internal/transport"
)

// dialTestFabrics builds the two TCP fabrics of a 2-machine cluster on
// loopback, using a pre-bound ":0" listener so no fixed port is needed.
func dialTestFabrics(t *testing.T, topo transport.Topology) [2]*transport.TCP {
	t.Helper()
	ln0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{ln0.Addr().String(), "127.0.0.1:0"}
	var fabs [2]*transport.TCP
	errs := [2]error{}
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			cfg := transport.TCPConfig{Topo: topo, Process: p, Addrs: addrs, DialTimeout: 10 * time.Second}
			if p == 0 {
				cfg.Listener = ln0
			}
			fabs[p], errs[p] = transport.DialTCP(context.Background(), cfg)
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("fabric %d: %v", p, err)
		}
	}
	return fabs
}

// TestDistributedTCPBitIdenticalToInprocess is the acceptance check of
// the wire transport: a 2-machine × 2-GPU hybrid run (sparse embedding
// over partitioned parameter servers with local aggregation, dense
// layers over fused ring AllReduce) split across two TCP-connected
// trainers must reproduce the single-process loss trajectory bit for
// bit, and so must the trained variables.
func TestDistributedTCPBitIdenticalToInprocess(t *testing.T) {
	cfg := models.DefaultTinyLM()
	ri := cluster.Uniform(2, 2)
	const steps = 8
	mutate := func(o *Options) { o.LocalAggregation = true }

	// Reference: the whole cluster in one trainer over the channel fabric.
	ref := newTrainer(t, cfg, core.ArchHybrid, ri, 3, mutate)
	refLosses := make([]float64, steps)
	for s := 0; s < steps; s++ {
		feeds, _ := lmFeeds(ref.Workers(), cfg.Batch, cfg.Vocab, int64(s))
		loss, err := ref.Step(feeds)
		if err != nil {
			t.Fatal(err)
		}
		refLosses[s] = loss
	}

	// Distributed: two agents, each building the identical graph and
	// plan and hosting one machine.
	topo := transport.Topology{Workers: 4, Machines: 2, MachineOfWorker: ri.WorkerMachines()}
	fabs := dialTestFabrics(t, topo)
	type agentRes struct {
		losses []float64
		emb    []float32
		err    error
	}
	results := [2]agentRes{}
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			res := &results[p]
			g := models.BuildTinyLM(cfg)
			opts := Options{
				Plan:     planFor(t, g, core.ArchHybrid, ri.NumMachines(), 3),
				Resource: ri,
				NewOptimizer: func() optim.Optimizer {
					return optim.NewSGD(0.2)
				},
				DenseAgg:  optim.AggMean,
				SparseAgg: optim.AggMean,
				Fabric:    fabs[p],
			}
			mutate(&opts)
			tr, err := New(g, opts)
			if err != nil {
				res.err = err
				return
			}
			defer tr.Close()
			if !tr.Distributed() || len(tr.LocalWorkers()) != 2 {
				t.Errorf("agent %d hosts %v", p, tr.LocalWorkers())
			}
			for s := 0; s < steps; s++ {
				// Same global feed stream on both agents; each trainer
				// consumes its local shards.
				feeds, _ := lmFeeds(4, cfg.Batch, cfg.Vocab, int64(s))
				loss, err := tr.Step(feeds)
				if err != nil {
					res.err = err
					return
				}
				res.losses = append(res.losses, loss)
			}
			emb, err := tr.VarValue("embedding")
			if err != nil {
				res.err = err
				return
			}
			res.emb = emb.Data()
			sent, recv := tr.WireStatsLastStep()
			if sent == 0 || recv == 0 {
				t.Errorf("agent %d reported no wire traffic (%d/%d)", p, sent, recv)
			}
		}(p)
	}
	wg.Wait()
	for p := range results {
		if results[p].err != nil {
			t.Fatalf("agent %d: %v", p, results[p].err)
		}
	}
	refEmb, err := ref.VarValue("embedding")
	if err != nil {
		t.Fatal(err)
	}
	for p, res := range results {
		for s := range refLosses {
			if math.Float64bits(res.losses[s]) != math.Float64bits(refLosses[s]) {
				t.Fatalf("agent %d step %d loss %x, in-process %x",
					p, s, math.Float64bits(res.losses[s]), math.Float64bits(refLosses[s]))
			}
		}
		for i, v := range refEmb.Data() {
			if math.Float32bits(res.emb[i]) != math.Float32bits(v) {
				t.Fatalf("agent %d embedding[%d] %x, in-process %x",
					p, i, math.Float32bits(res.emb[i]), math.Float32bits(v))
			}
		}
	}
}

// TestDistributedClipAndAGVOverTCP drives the remaining wire paths: the
// AllReduce-only architecture routes the sparse gradient through ring
// AllGatherv (sparse frames on the wire), and global-norm clipping
// exercises the chief's norm read-back and deferred scaled applies.
func TestDistributedClipAndAGVOverTCP(t *testing.T) {
	cfg := models.DefaultTinyLM()
	ri := cluster.Uniform(2, 2)
	const steps = 4
	for _, tc := range []struct {
		name   string
		arch   core.Arch
		mutate func(*Options)
	}{
		{"agv", core.ArchAR, nil},
		{"clip", core.ArchHybrid, func(o *Options) { o.LocalAggregation = true; o.ClipNorm = 0.7 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ref := newTrainer(t, cfg, tc.arch, ri, 2, tc.mutate)
			refLosses := make([]float64, steps)
			for s := 0; s < steps; s++ {
				feeds, _ := lmFeeds(4, cfg.Batch, cfg.Vocab, int64(s))
				loss, err := ref.Step(feeds)
				if err != nil {
					t.Fatal(err)
				}
				refLosses[s] = loss
			}
			topo := transport.Topology{Workers: 4, Machines: 2, MachineOfWorker: ri.WorkerMachines()}
			fabs := dialTestFabrics(t, topo)
			var wg sync.WaitGroup
			losses := [2][]float64{}
			errs := [2]error{}
			for p := 0; p < 2; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					g := models.BuildTinyLM(cfg)
					opts := Options{
						Plan:         planFor(t, g, tc.arch, ri.NumMachines(), 2),
						Resource:     ri,
						NewOptimizer: func() optim.Optimizer { return optim.NewSGD(0.2) },
						DenseAgg:     optim.AggMean,
						SparseAgg:    optim.AggMean,
						Fabric:       fabs[p],
					}
					if tc.mutate != nil {
						tc.mutate(&opts)
					}
					tr, err := New(g, opts)
					if err != nil {
						errs[p] = err
						return
					}
					defer tr.Close()
					for s := 0; s < steps; s++ {
						feeds, _ := lmFeeds(4, cfg.Batch, cfg.Vocab, int64(s))
						loss, err := tr.Step(feeds)
						if err != nil {
							errs[p] = err
							return
						}
						losses[p] = append(losses[p], loss)
					}
				}(p)
			}
			wg.Wait()
			for p := 0; p < 2; p++ {
				if errs[p] != nil {
					t.Fatalf("agent %d: %v", p, errs[p])
				}
				for s := range refLosses {
					if math.Float64bits(losses[p][s]) != math.Float64bits(refLosses[s]) {
						t.Fatalf("agent %d step %d loss %x, in-process %x",
							p, s, math.Float64bits(losses[p][s]), math.Float64bits(refLosses[s]))
					}
				}
			}
		})
	}
}

// TestCloseIdempotentNoLeaks pins the Close contract: double Close is
// safe and the persistent runtime (workers, comm goroutines, pullers,
// fabric) fully unwinds — the -race build makes this meaningful.
func TestCloseIdempotentNoLeaks(t *testing.T) {
	base := runtime.NumGoroutine()
	cfg := models.DefaultTinyLM()
	g := models.BuildTinyLM(cfg)
	ri := cluster.Uniform(2, 2)
	tr, err := New(g, Options{
		Plan:         planFor(t, g, core.ArchHybrid, 2, 3),
		Resource:     ri,
		NewOptimizer: func() optim.Optimizer { return optim.NewSGD(0.2) },
	})
	if err != nil {
		t.Fatal(err)
	}
	feeds, _ := lmFeeds(4, cfg.Batch, cfg.Vocab, 1)
	if _, err := tr.Step(feeds); err != nil {
		t.Fatal(err)
	}
	tr.Close()
	tr.Close()
	// A step against the closed trainer fails fast with the typed
	// sentinel instead of panicking on a closed channel.
	if _, err := tr.Step(feeds); !errors.Is(err, errs.ErrClosed) {
		t.Fatalf("step after Close: err = %v, want errs.ErrClosed", err)
	}
	if err := tr.Repartition(nil); !errors.Is(err, errs.ErrClosed) {
		t.Fatalf("repartition after Close: err = %v, want errs.ErrClosed", err)
	}
	waitGoroutines(t, base)
}

// TestNewFailsCleanlyOnConduitFailure covers build-time transport
// errors: a fabric whose peer never answers surfaces a dial error from
// DialTCP, and a fabric whose topology disagrees with the cluster makes
// New fail and release the fabric — in both cases without leaking
// goroutines.
func TestNewFailsCleanlyOnConduitFailure(t *testing.T) {
	base := runtime.NumGoroutine()
	ri := cluster.Uniform(2, 2)

	// Peer never comes up: the conduit fails to connect.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()
	_, err = transport.DialTCP(context.Background(), transport.TCPConfig{
		Topo:        transport.Topology{Workers: 4, Machines: 2, MachineOfWorker: ri.WorkerMachines()},
		Process:     1,
		Addrs:       []string{dead, "127.0.0.1:0"},
		DialTimeout: 300 * time.Millisecond,
	})
	if err == nil || !strings.Contains(err.Error(), "dialing peer") {
		t.Fatalf("dial error = %v", err)
	}

	// Fabric topology mismatch: New must reject it and close the fabric.
	g := models.BuildTinyLM(models.DefaultTinyLM())
	fab := transport.NewInproc(transport.Topology{Workers: 3, Machines: 1, MachineOfWorker: []int{0, 0, 0}})
	_, err = New(g, Options{
		Plan:         planFor(t, g, core.ArchHybrid, 2, 3),
		Resource:     ri,
		NewOptimizer: func() optim.Optimizer { return optim.NewSGD(0.2) },
		Fabric:       fab,
	})
	if !errors.Is(err, errs.ErrTopologyMismatch) {
		t.Fatalf("topology error = %v, want errs.ErrTopologyMismatch", err)
	}
	waitGoroutines(t, base)
}

// waitGoroutines polls until the goroutine count settles near base.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d before", runtime.NumGoroutine(), base)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
