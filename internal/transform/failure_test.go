package transform

// Kill-a-peer-mid-step tests: whichever phase a step is in when a peer
// dies — backprop-overlapped collectives, PS pulls, the loss exchange —
// the surviving trainer's Step must return a rank-attributed error
// wrapping errs.ErrPeerFailed (never hang, never crash the process),
// and Close must unwind every goroutine. Both fabrics are covered: the
// TCP fabric attributes failures itself; the in-process fabric relies
// on the chaos wrapper's attribution plus failStep's upgrade path.

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"parallax/internal/chaos"
	"parallax/internal/cluster"
	"parallax/internal/core"
	"parallax/internal/errs"
	"parallax/internal/models"
	"parallax/internal/optim"
	"parallax/internal/transport"
)

// distKillTrainers builds the two TCP-connected trainers of a
// 2-machine × 2-GPU hybrid cluster (PS embedding + fused AllReduce, the
// configuration where a step exercises collectives, PS pulls, and the
// loss exchange).
func distKillTrainers(t *testing.T) ([2]*transport.TCP, [2]*Trainer) {
	t.Helper()
	cfg := models.DefaultTinyLM()
	ri := cluster.Uniform(2, 2)
	topo := transport.Topology{Workers: 4, Machines: 2, MachineOfWorker: ri.WorkerMachines()}
	fabs := dialTestFabrics(t, topo)
	g := models.BuildTinyLM(cfg)
	var trs [2]*Trainer
	for p := 0; p < 2; p++ {
		tr, err := New(g, Options{
			Plan:             planFor(t, g, core.ArchHybrid, ri.NumMachines(), 3),
			Resource:         ri,
			NewOptimizer:     func() optim.Optimizer { return optim.NewSGD(0.2) },
			DenseAgg:         optim.AggMean,
			SparseAgg:        optim.AggMean,
			LocalAggregation: true,
			Fabric:           fabs[p],
		})
		if err != nil {
			t.Fatalf("trainer %d: %v", p, err)
		}
		trs[p] = tr
	}
	return [2]*transport.TCP{fabs[0], fabs[1]}, trs
}

// TestTCPKillPeerMidStep drives both agents concurrently and kills
// agent 1's process (abrupt fabric teardown, no announcement) while
// steps are in flight. Both trainers must surface ErrPeerFailed with
// the dead rank attributed, and closing both must leak nothing.
func TestTCPKillPeerMidStep(t *testing.T) {
	base := runtime.NumGoroutine()
	fabs, trs := distKillTrainers(t)
	cfg := models.DefaultTinyLM()

	const killStep = 3
	stepErr := [2]error{}
	done := make(chan int, 2)
	for p := 0; p < 2; p++ {
		go func(p int) {
			defer func() { done <- p }()
			for s := 0; ; s++ {
				if p == 1 && s == killStep {
					// Simulated crash between exchanges: the remote side
					// sees only broken connections.
					fabs[1].Fail(1, fmt.Errorf("injected mid-step crash"))
				}
				feeds, _ := lmFeeds(trs[p].Workers(), cfg.Batch, cfg.Vocab, int64(s))
				if _, err := trs[p].Step(feeds); err != nil {
					stepErr[p] = err
					return
				}
				if s > killStep+10 {
					stepErr[p] = fmt.Errorf("no failure surfaced by step %d", s)
					return
				}
			}
		}(p)
	}
	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("a trainer hung after the peer was killed")
		}
	}
	for p := 0; p < 2; p++ {
		if !errors.Is(stepErr[p], errs.ErrPeerFailed) {
			t.Fatalf("trainer %d step error %v, want ErrPeerFailed", p, stepErr[p])
		}
		var pf *errs.PeerFailure
		if !errors.As(stepErr[p], &pf) || pf.Rank != 1 {
			t.Fatalf("trainer %d attributed %v, want rank 1", p, stepErr[p])
		}
	}
	trs[0].Close()
	trs[1].Close()
	waitGoroutines(t, base)
}

// TestInprocKillMidStep is the in-process-fabric variant: the chaos
// wrapper kills the channel fabric at a fixed step, and the trainer
// must surface ErrPeerFailed through the same failStep attribution
// path (here via the wrapper's injected failure).
func TestInprocKillMidStep(t *testing.T) {
	base := runtime.NumGoroutine()
	cfg := models.DefaultTinyLM()
	ri := cluster.Uniform(2, 2)
	g := models.BuildTinyLM(cfg)
	topo := transport.Topology{Workers: 4, Machines: 2, MachineOfWorker: ri.WorkerMachines()}
	inj, err := chaos.Parse("kill@2", 1)
	if err != nil {
		t.Fatal(err)
	}
	fab := inj.Wrap(transport.NewInproc(topo))
	tr, err := New(g, Options{
		Plan:             planFor(t, g, core.ArchHybrid, ri.NumMachines(), 3),
		Resource:         ri,
		NewOptimizer:     func() optim.Optimizer { return optim.NewSGD(0.2) },
		DenseAgg:         optim.AggMean,
		SparseAgg:        optim.AggMean,
		LocalAggregation: true,
		Fabric:           fab,
	})
	if err != nil {
		t.Fatal(err)
	}
	var stepErr error
	for s := 0; s < 5; s++ {
		feeds, _ := lmFeeds(tr.Workers(), cfg.Batch, cfg.Vocab, int64(s))
		if _, err := tr.Step(feeds); err != nil {
			stepErr = err
			break
		}
	}
	if !errors.Is(stepErr, errs.ErrPeerFailed) {
		t.Fatalf("step error %v, want ErrPeerFailed from the chaos kill", stepErr)
	}
	tr.Close()
	waitGoroutines(t, base)
}
