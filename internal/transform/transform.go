// Package transform turns a single-GPU computation graph into a running
// distributed training job, the reproduction of Parallax's automatic graph
// transformation (§4.3): it replicates the forward/backward graph onto one
// executor per GPU, routes every variable's gradient through the
// synchronization method its plan assigns (ring AllReduce, AllGatherv, or
// parameter servers with partitioning and optional local aggregation), and
// keeps the strict synchronous-training semantics — including the
// chief-worker path that reads aggregated gradients back for global-norm
// clipping (§5).
//
// Everything runs in-process: workers are goroutines, the AR data plane is
// internal/collective, the PS data plane is internal/psrt. The virtual-time
// *performance* of the same topology is modelled by internal/engine; this
// package is the functional data plane used for correctness tests and
// convergence experiments.
//
// The trainer is a persistent runtime: New launches one long-lived worker
// goroutine per GPU plus one parameter server per machine, resolves every
// variable's aggregation slot to integer indices, and preallocates the
// gradient and partition buffers the hot loop needs. Step only dispatches
// work over channels — it spawns no goroutines, builds no maps, and pushes
// dense partitions as zero-copy views (see DESIGN.md §3 for the buffer
// ownership rules shared with internal/psrt).
package transform

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"parallax/internal/arrt"
	"parallax/internal/cluster"
	"parallax/internal/collective"
	"parallax/internal/core"
	"parallax/internal/graph"
	"parallax/internal/optim"
	"parallax/internal/psrt"
	"parallax/internal/tensor"
)

// Options configures a distributed trainer.
type Options struct {
	Plan     *core.Plan
	Resource cluster.ResourceInfo
	// NewOptimizer constructs a fresh optimizer; one instance is created
	// per AR replica and one per server, so stateful optimizers (momentum)
	// keep correctly scoped slots.
	NewOptimizer func() optim.Optimizer
	DenseAgg     optim.AggMethod
	SparseAgg    optim.AggMethod
	// LocalAggregation merges gradients inside each machine before pushing
	// to servers (Parallax's optimized PS).
	LocalAggregation bool
	// ClipNorm > 0 enables global-norm clipping across all variables; it
	// forces the deferred-update chief path on the servers.
	ClipNorm float64
	// Async switches PS variables to asynchronous updates (§2.1). AR
	// variables are inherently synchronous.
	Async bool
}

type varRoute struct {
	v      *graph.Variable
	assign core.Assignment
	ranges []tensor.RowRange
}

// stepTask is one worker's share of a dispatched iteration.
type stepTask struct {
	step int
	feed graph.Feed
}

// stepResult is one worker's completion report.
type stepResult struct {
	loss float64
	err  error
}

// aggSlot collects one machine's worker gradients for one variable in one
// step; the last worker to arrive acts as the machine's local chief and
// pushes the merged gradient (§5: "a worker in the machine becomes a local
// chief worker to collect gradients within a machine and send them to
// servers"). Slots are resolved to (route, machine) integer indices at
// build time and reset in place between steps, so the hot loop never
// touches a map or formats a key.
type aggSlot struct {
	mu       sync.Mutex
	got      int
	sparse   []*tensor.Sparse // reused backing array, truncated each step
	dense    *tensor.Dense    // preallocated merge buffer (dense variables)
	denseSet bool             // dense holds this step's first gradient
}

// Trainer executes synchronized data-parallel steps over persistent
// in-process workers.
type Trainer struct {
	g        *graph.Graph
	opt      Options
	workers  int
	machines int

	execs    []*graph.Exec
	replicas []*arrt.Replica
	arOpts   []optim.Optimizer

	servers []*psrt.Server // one per machine; nil when no PS variables
	routes  []varRoute

	// slots[ri][m] is the local-aggregation slot for route ri on machine
	// m; non-nil only for PS routes when LocalAggregation is on.
	slots [][]aggSlot
	// slotViews[ri][m][pi] is a zero-copy partition view into
	// slots[ri][m].dense, precomputed for dense variables.
	slotViews [][][]*tensor.Dense
	// pullViews[w][ri][pi] is a zero-copy partition view into worker w's
	// replica storage for PS route ri, the destination of PullInto.
	pullViews [][][]*tensor.Dense
	// arSparse[w][ri] holds worker w's AllGatherv-aggregated gradient for
	// route ri within a step (indexed, not keyed, to avoid per-step maps).
	arSparse [][]*tensor.Sparse

	inputs []*graph.Node // the graph's input nodes, for feed validation

	pool        *tensor.Pool
	bytesPushed atomic.Int64

	tasks     []chan stepTask // one per persistent worker
	done      chan stepResult
	closeOnce sync.Once

	step int
}

// New builds a trainer for graph g under the given plan and resources and
// starts its persistent runtime: one worker goroutine per GPU. Call Close
// to stop the workers when the trainer is no longer needed.
func New(g *graph.Graph, opts Options) (*Trainer, error) {
	if opts.Plan == nil {
		return nil, fmt.Errorf("transform: nil plan")
	}
	if err := opts.Resource.Validate(); err != nil {
		return nil, err
	}
	if opts.NewOptimizer == nil {
		return nil, fmt.Errorf("transform: NewOptimizer is required")
	}
	vars := g.Variables()
	if len(opts.Plan.Assignments) != len(vars) {
		return nil, fmt.Errorf("transform: plan has %d assignments for %d variables",
			len(opts.Plan.Assignments), len(vars))
	}
	if opts.Plan.Arch == core.ArchAR && opts.Async {
		return nil, fmt.Errorf("transform: async training requires PS-managed variables")
	}

	workers := opts.Resource.TotalGPUs()
	machines := opts.Resource.NumMachines()
	t := &Trainer{
		g: g, opt: opts, workers: workers, machines: machines,
		pool: tensor.NewPool(),
	}

	// Replicate the graph: one executor per GPU (§4.3: "main computation
	// operations ... are replicated as many as the number of GPUs").
	for w := 0; w < workers; w++ {
		e, err := graph.NewExec(g)
		if err != nil {
			return nil, err
		}
		t.execs = append(t.execs, e)
		t.arOpts = append(t.arOpts, opts.NewOptimizer())
	}
	world := collective.NewWorld(workers)
	for w := 0; w < workers; w++ {
		t.replicas = append(t.replicas, arrt.New(world.Comm(w), opts.DenseAgg, opts.SparseAgg))
	}

	// Route variables.
	anyPS := false
	for i, v := range vars {
		a := opts.Plan.Assignments[i]
		if a.Name != v.Name {
			return nil, fmt.Errorf("transform: plan assignment %d is %q, variable is %q", i, a.Name, v.Name)
		}
		r := varRoute{v: v, assign: a}
		if a.Method == core.MethodPS {
			anyPS = true
			r.ranges = tensor.PartitionRows(v.Shape[0], a.Partitions)
		}
		t.routes = append(t.routes, r)
	}

	// Launch one server per machine if needed (§4.2: "if sparse variables
	// are included in the graph, Parallax launches a server process for
	// each machine").
	if anyPS {
		sources := workers
		if opts.LocalAggregation {
			sources = machines
		}
		mode := psrt.Sync
		if opts.Async {
			mode = psrt.Async
		}
		for m := 0; m < machines; m++ {
			srv, err := psrt.NewServer(psrt.Config{
				Sources:      sources,
				Optimizer:    opts.NewOptimizer(),
				DenseAgg:     opts.DenseAgg,
				SparseAgg:    opts.SparseAgg,
				Mode:         mode,
				DeferUpdates: opts.ClipNorm > 0 && !opts.Async,
				MeanDivisor:  workers,
			})
			if err != nil {
				return nil, err
			}
			t.servers = append(t.servers, srv)
		}
		for _, r := range t.routes {
			if r.assign.Method != core.MethodPS {
				continue
			}
			owned := make(map[int][]int) // machine -> partition indices
			for pi, srv := range r.assign.Servers {
				owned[srv] = append(owned[srv], pi)
			}
			for m, parts := range owned {
				if err := t.servers[m].AddVar(r.v.Name, r.v.Init, r.ranges, parts, r.assign.Sparse); err != nil {
					return nil, err
				}
			}
		}
	}

	t.buildSlots()
	t.buildPullViews()
	for _, n := range g.Nodes() {
		if n.Kind == graph.OpInput {
			t.inputs = append(t.inputs, n)
		}
	}

	// Per-worker indexed scratch for AllGatherv aggregates.
	t.arSparse = make([][]*tensor.Sparse, workers)
	for w := range t.arSparse {
		t.arSparse[w] = make([]*tensor.Sparse, len(t.routes))
	}

	// Start the persistent workers.
	t.tasks = make([]chan stepTask, workers)
	t.done = make(chan stepResult, workers)
	for w := 0; w < workers; w++ {
		t.tasks[w] = make(chan stepTask)
		go t.workerLoop(w)
	}
	return t, nil
}

// buildSlots preallocates the per-(route, machine) local-aggregation slots
// and, for dense variables, their merge buffers and partition views.
func (t *Trainer) buildSlots() {
	t.slots = make([][]aggSlot, len(t.routes))
	t.slotViews = make([][][]*tensor.Dense, len(t.routes))
	if !t.opt.LocalAggregation {
		return
	}
	for ri, r := range t.routes {
		if r.assign.Method != core.MethodPS {
			continue
		}
		t.slots[ri] = make([]aggSlot, t.machines)
		if r.assign.Sparse {
			continue
		}
		t.slotViews[ri] = make([][]*tensor.Dense, t.machines)
		for m := 0; m < t.machines; m++ {
			buf := tensor.NewDense(r.v.Shape...)
			t.slots[ri][m].dense = buf
			views := make([]*tensor.Dense, len(r.ranges))
			for pi, rr := range r.ranges {
				views[pi] = buf.SliceRows(rr.Start, rr.End)
			}
			t.slotViews[ri][m] = views
		}
	}
}

// buildPullViews precomputes, per worker and PS route, the zero-copy
// destination views inside the worker's replica storage that server pulls
// copy into.
func (t *Trainer) buildPullViews() {
	t.pullViews = make([][][]*tensor.Dense, t.workers)
	for w := 0; w < t.workers; w++ {
		t.pullViews[w] = make([][]*tensor.Dense, len(t.routes))
		for ri, r := range t.routes {
			if r.assign.Method != core.MethodPS {
				continue
			}
			val := t.execs[w].VarValue(r.v.Name)
			views := make([]*tensor.Dense, len(r.ranges))
			for pi, rr := range r.ranges {
				if rr.Len() == 0 {
					continue
				}
				views[pi] = val.SliceRows(rr.Start, rr.End)
			}
			t.pullViews[w][ri] = views
		}
	}
}

// Workers returns the number of model replicas (GPUs).
func (t *Trainer) Workers() int { return t.workers }

// BytesPushedLastStep returns how many gradient payload bytes the workers
// handed to the synchronization layer (ring collectives and parameter
// servers) during the most recent Step. Valid after Step returns.
func (t *Trainer) BytesPushedLastStep() int64 { return t.bytesPushed.Load() }

// Close stops the persistent worker goroutines. The trainer must not be
// stepped afterwards; Close is idempotent.
func (t *Trainer) Close() {
	t.closeOnce.Do(func() {
		for _, ch := range t.tasks {
			close(ch)
		}
	})
}

// workerLoop is one persistent worker: it serves step tasks until Close.
func (t *Trainer) workerLoop(w int) {
	for task := range t.tasks[w] {
		loss, err := t.workerStep(w, task.step, task.feed)
		t.done <- stepResult{loss: loss, err: err}
	}
}

// Step runs one synchronous data-parallel iteration: feeds[w] is worker w's
// shard batch. It returns the mean loss across workers. Step dispatches to
// the persistent workers started by New; it must not be called
// concurrently with itself or after Close.
func (t *Trainer) Step(feeds []graph.Feed) (float64, error) {
	if len(feeds) != t.workers {
		return 0, fmt.Errorf("transform: %d feeds for %d workers", len(feeds), t.workers)
	}
	// Validate every worker's feed up front: a worker failing mid-step
	// would leave its peers blocked inside collectives with no rank to
	// rendezvous with, so bad feeds — the realistic runtime error — must
	// be rejected before any work is dispatched.
	for w := range feeds {
		if err := t.checkFeed(w, feeds[w]); err != nil {
			return 0, err
		}
	}
	step := t.step
	t.step++
	t.resetSlots()
	t.bytesPushed.Store(0)

	for w := range feeds {
		t.tasks[w] <- stepTask{step: step, feed: feeds[w]}
	}
	var mean float64
	var firstErr error
	for i := 0; i < t.workers; i++ {
		res := <-t.done
		if res.err != nil && firstErr == nil {
			firstErr = res.err
		}
		mean += res.loss
	}
	if firstErr != nil {
		return 0, firstErr
	}
	return mean / float64(t.workers), nil
}

// checkFeed verifies worker w's feed covers every graph input with the
// right size before the step is dispatched.
func (t *Trainer) checkFeed(w int, feed graph.Feed) error {
	for _, n := range t.inputs {
		if n.DType == graph.Int {
			v, ok := feed.Ints[n.Name]
			if !ok {
				return fmt.Errorf("transform: worker %d feed missing int input %q", w, n.Name)
			}
			if len(v) != n.Shape[0] {
				return fmt.Errorf("transform: worker %d feed %q has %d entries, want %d", w, n.Name, len(v), n.Shape[0])
			}
			continue
		}
		v, ok := feed.Floats[n.Name]
		if !ok {
			return fmt.Errorf("transform: worker %d feed missing float input %q", w, n.Name)
		}
		shape := v.Shape()
		badShape := len(shape) != len(n.Shape)
		for i := 0; !badShape && i < len(shape); i++ {
			badShape = shape[i] != n.Shape[i]
		}
		if badShape {
			return fmt.Errorf("transform: worker %d feed %q has shape %v, want %v", w, n.Name, shape, n.Shape)
		}
	}
	return nil
}

// resetSlots rewinds the local-aggregation slots for the next step. It
// runs between steps, when every worker is parked on its task channel, so
// the channel handshake orders these writes against the workers' accesses.
func (t *Trainer) resetSlots() {
	for ri := range t.slots {
		for m := range t.slots[ri] {
			s := &t.slots[ri][m]
			s.got = 0
			s.denseSet = false
			clear(s.sparse)
			s.sparse = s.sparse[:0]
		}
	}
}

// workerStep is one worker's side of an iteration.
func (t *Trainer) workerStep(w, step int, feed graph.Feed) (float64, error) {
	exec := t.execs[w]

	// Pull phase: fetch fresh PS values for this iteration (Fig 2(a)(b)'s
	// pull arrows), copying straight into the replica's variable storage
	// through the precomputed views. Version step means "after step
	// updates have applied".
	minVersion := int64(step)
	if t.opt.Async {
		minVersion = 0
	}
	for ri, r := range t.routes {
		if r.assign.Method != core.MethodPS {
			continue
		}
		for pi, rr := range r.ranges {
			if rr.Len() == 0 {
				continue
			}
			srv := t.servers[r.assign.Servers[pi]]
			if err := srv.PullInto(r.v.Name, pi, minVersion, t.pullViews[w][ri][pi]); err != nil {
				return 0, err
			}
		}
	}

	// Compute.
	loss, grads, err := exec.Step(feed)
	if err != nil {
		return 0, err
	}

	// Push/aggregate phase.
	for ri, r := range t.routes {
		switch r.assign.Method {
		case core.MethodAllReduce:
			g := grads.Dense[r.v.Name]
			if g == nil {
				// A sparse variable promoted to dense treatment (α
				// threshold): densify its sparse gradient first, into a
				// pooled buffer released after the local apply.
				sp := grads.Sparse[r.v.Name]
				g = t.pool.GetZeroed(r.v.Shape...)
				sp.ToDenseInto(g)
			}
			t.bytesPushed.Add(g.Bytes())
			t.replicas[w].SyncDense(r.v.Name, step, g)
			grads.Dense[r.v.Name] = g
		case core.MethodAllGatherv:
			t.bytesPushed.Add(grads.Sparse[r.v.Name].Bytes())
			t.arSparse[w][ri] = t.replicas[w].SyncSparse(r.v.Name, step, grads.Sparse[r.v.Name])
		case core.MethodPS:
			if err := t.pushPS(w, ri, grads); err != nil {
				return 0, err
			}
		}
	}

	// Clipping: compute the global norm over *aggregated* gradients — AR
	// parts are replicated on every worker, PS parts are read back from
	// the servers (§5) — then scale AR updates locally and have the chief
	// apply scaled PS updates.
	scale := float32(1)
	if t.opt.ClipNorm > 0 && !t.opt.Async {
		var norm2 float64
		for ri, r := range t.routes {
			switch r.assign.Method {
			case core.MethodAllReduce:
				norm2 += grads.Dense[r.v.Name].L2NormSquared()
			case core.MethodAllGatherv:
				// Coalesce once and keep the result: the norm needs the
				// deduplicated tensor, and the apply below would otherwise
				// re-coalesce the concatenated gradient.
				g := t.arSparse[w][ri].Coalesce()
				t.arSparse[w][ri] = g
				norm2 += g.Values.L2NormSquared()
			case core.MethodPS:
				for pi := range r.ranges {
					n2, err := t.servers[r.assign.Servers[pi]].WaitAggregatedNormSquared(r.v.Name, pi, int64(step+1))
					if err != nil {
						return 0, err
					}
					norm2 += n2
				}
			}
		}
		if norm := math.Sqrt(norm2); norm > t.opt.ClipNorm {
			scale = float32(t.opt.ClipNorm / norm)
		}
		if w == 0 { // chief worker triggers the deferred PS updates
			for _, r := range t.routes {
				if r.assign.Method != core.MethodPS {
					continue
				}
				for pi := range r.ranges {
					if err := t.servers[r.assign.Servers[pi]].ApplyUpdate(r.v.Name, pi, scale); err != nil {
						return 0, err
					}
				}
			}
		}
	}

	// Apply AR updates locally; every replica performs the identical
	// update, keeping replicas synchronized. The aggregated gradients are
	// worker-local, so clip scaling happens in place.
	for ri, r := range t.routes {
		switch r.assign.Method {
		case core.MethodAllReduce:
			g := grads.Dense[r.v.Name]
			if scale != 1 {
				g.Scale(scale)
			}
			t.arOpts[w].ApplyDense(r.v.Name, exec.VarValue(r.v.Name), g)
			if grads.Sparse[r.v.Name] != nil {
				// The dense gradient was densified from a promoted sparse
				// one into a pooled buffer; release it.
				t.pool.Put(g)
			}
		case core.MethodAllGatherv:
			g := t.arSparse[w][ri]
			if scale != 1 {
				g.Scale(scale)
			}
			t.arOpts[w].ApplySparse(r.v.Name, exec.VarValue(r.v.Name), g)
			t.arSparse[w][ri] = nil
		}
	}
	return loss, nil
}

// pushPS routes worker w's gradient for PS route ri: split by partition,
// optionally merge within the machine, push to the owning servers. Dense
// partitions travel as zero-copy views (psrt borrows them only for the
// call); sparse partitions are freshly split and ownership transfers to
// the server.
func (t *Trainer) pushPS(w, ri int, grads *graph.GradSet) error {
	r := &t.routes[ri]
	name := r.v.Name

	pushSparseParts := func(parts []*tensor.Sparse) error {
		for pi := range r.ranges {
			t.bytesPushed.Add(parts[pi].Bytes())
			if err := t.servers[r.assign.Servers[pi]].PushSparse(name, pi, parts[pi]); err != nil {
				return err
			}
		}
		return nil
	}
	pushDenseParts := func(dense *tensor.Dense, views []*tensor.Dense) error {
		for pi, rr := range r.ranges {
			part := dense
			if views != nil {
				part = views[pi]
			} else if rr.Start != 0 || rr.End != dense.Dim(0) {
				// Without local aggregation the gradient is a fresh
				// exec-owned tensor each step, so partition views cannot be
				// precomputed; the per-push SliceRows header is the
				// remaining (cheap) allocation on this non-default path.
				part = dense.SliceRows(rr.Start, rr.End)
			}
			t.bytesPushed.Add(part.Bytes())
			if err := t.servers[r.assign.Servers[pi]].PushDense(name, pi, part); err != nil {
				return err
			}
		}
		return nil
	}

	if !t.opt.LocalAggregation {
		if r.assign.Sparse {
			return pushSparseParts(tensor.SplitSparse(grads.Sparse[name], r.ranges))
		}
		return pushDenseParts(grads.Dense[name], nil)
	}

	// Local aggregation: the machine's last-arriving worker merges and
	// pushes.
	machine := t.opt.Resource.MachineOfWorker(w)
	gpus := t.opt.Resource.GPUsPerMachine(machine)
	slot := &t.slots[ri][machine]
	slot.mu.Lock()
	if r.assign.Sparse {
		slot.sparse = append(slot.sparse, grads.Sparse[name])
	} else if !slot.denseSet {
		copy(slot.dense.Data(), grads.Dense[name].Data())
		slot.denseSet = true
	} else {
		slot.dense.AddInto(grads.Dense[name])
	}
	slot.got++
	doPush := slot.got == gpus
	var sparseMerged *tensor.Sparse
	if doPush && r.assign.Sparse {
		sparseMerged = tensor.SumSparse(slot.sparse)
	}
	slot.mu.Unlock()
	if !doPush {
		return nil
	}
	if r.assign.Sparse {
		return pushSparseParts(tensor.SplitSparse(sparseMerged, r.ranges))
	}
	return pushDenseParts(slot.dense, t.slotViews[ri][machine])
}

// VarValue reconstructs the current full value of a variable: from the
// servers for PS variables, from replica 0 for AR variables.
func (t *Trainer) VarValue(name string) (*tensor.Dense, error) {
	for _, r := range t.routes {
		if r.v.Name != name {
			continue
		}
		if r.assign.Method != core.MethodPS {
			return t.execs[0].VarValue(name).Clone(), nil
		}
		out := tensor.NewDense(r.v.Shape...)
		minVersion := int64(t.step)
		if t.opt.Async {
			minVersion = 0
		}
		for pi, rr := range r.ranges {
			if rr.Len() == 0 {
				continue
			}
			dst := out.SliceRows(rr.Start, rr.End)
			if err := t.servers[r.assign.Servers[pi]].PullInto(name, pi, minVersion, dst); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("transform: unknown variable %q", name)
}
