// Package transform turns a single-GPU computation graph into a running
// distributed training job, the reproduction of Parallax's automatic graph
// transformation (§4.3): it replicates the forward/backward graph onto one
// executor per GPU, routes every variable's gradient through the
// synchronization method its plan assigns (ring AllReduce, AllGatherv, or
// parameter servers with partitioning and optional local aggregation), and
// keeps the strict synchronous-training semantics — including the
// chief-worker path that reads aggregated gradients back for global-norm
// clipping (§5).
//
// Everything runs in-process: workers are goroutines, the AR data plane is
// internal/collective, the PS data plane is internal/psrt. The virtual-time
// *performance* of the same topology is modelled by internal/engine; this
// package is the functional data plane used for correctness tests and
// convergence experiments.
package transform

import (
	"fmt"
	"math"
	"sync"

	"parallax/internal/arrt"
	"parallax/internal/cluster"
	"parallax/internal/collective"
	"parallax/internal/core"
	"parallax/internal/graph"
	"parallax/internal/optim"
	"parallax/internal/psrt"
	"parallax/internal/tensor"
)

// Options configures a distributed trainer.
type Options struct {
	Plan     *core.Plan
	Resource cluster.ResourceInfo
	// NewOptimizer constructs a fresh optimizer; one instance is created
	// per AR replica and one per server, so stateful optimizers (momentum)
	// keep correctly scoped slots.
	NewOptimizer func() optim.Optimizer
	DenseAgg     optim.AggMethod
	SparseAgg    optim.AggMethod
	// LocalAggregation merges gradients inside each machine before pushing
	// to servers (Parallax's optimized PS).
	LocalAggregation bool
	// ClipNorm > 0 enables global-norm clipping across all variables; it
	// forces the deferred-update chief path on the servers.
	ClipNorm float64
	// Async switches PS variables to asynchronous updates (§2.1). AR
	// variables are inherently synchronous.
	Async bool
}

type varRoute struct {
	v      *graph.Variable
	assign core.Assignment
	ranges []tensor.RowRange
}

// Trainer executes synchronized data-parallel steps over in-process
// workers.
type Trainer struct {
	g       *graph.Graph
	opt     Options
	workers int

	execs    []*graph.Exec
	replicas []*arrt.Replica
	arOpts   []optim.Optimizer

	servers []*psrt.Server // one per machine; nil when no PS variables
	routes  []varRoute

	// local aggregation state, per machine per variable, recreated each
	// step.
	aggs map[string]*machineAgg

	step int
	mu   sync.Mutex
}

// machineAgg collects one machine's worker gradients for one variable in
// one step; the last worker to arrive acts as the machine's local chief
// and pushes the merged gradient (§5: "a worker in the machine becomes a
// local chief worker to collect gradients within a machine and send them
// to servers").
type machineAgg struct {
	mu     sync.Mutex
	got    int
	sparse []*tensor.Sparse
	dense  *tensor.Dense
}

// New builds a trainer for graph g under the given plan and resources.
func New(g *graph.Graph, opts Options) (*Trainer, error) {
	if opts.Plan == nil {
		return nil, fmt.Errorf("transform: nil plan")
	}
	if err := opts.Resource.Validate(); err != nil {
		return nil, err
	}
	if opts.NewOptimizer == nil {
		return nil, fmt.Errorf("transform: NewOptimizer is required")
	}
	vars := g.Variables()
	if len(opts.Plan.Assignments) != len(vars) {
		return nil, fmt.Errorf("transform: plan has %d assignments for %d variables",
			len(opts.Plan.Assignments), len(vars))
	}
	if opts.Plan.Arch == core.ArchAR && opts.Async {
		return nil, fmt.Errorf("transform: async training requires PS-managed variables")
	}

	workers := opts.Resource.TotalGPUs()
	machines := opts.Resource.NumMachines()
	t := &Trainer{g: g, opt: opts, workers: workers, aggs: map[string]*machineAgg{}}

	// Replicate the graph: one executor per GPU (§4.3: "main computation
	// operations ... are replicated as many as the number of GPUs").
	for w := 0; w < workers; w++ {
		e, err := graph.NewExec(g)
		if err != nil {
			return nil, err
		}
		t.execs = append(t.execs, e)
		t.arOpts = append(t.arOpts, opts.NewOptimizer())
	}
	world := collective.NewWorld(workers)
	for w := 0; w < workers; w++ {
		t.replicas = append(t.replicas, arrt.New(world.Comm(w), opts.DenseAgg, opts.SparseAgg))
	}

	// Route variables.
	anyPS := false
	for i, v := range vars {
		a := opts.Plan.Assignments[i]
		if a.Name != v.Name {
			return nil, fmt.Errorf("transform: plan assignment %d is %q, variable is %q", i, a.Name, v.Name)
		}
		r := varRoute{v: v, assign: a}
		if a.Method == core.MethodPS {
			anyPS = true
			r.ranges = tensor.PartitionRows(v.Shape[0], a.Partitions)
		}
		t.routes = append(t.routes, r)
	}

	// Launch one server per machine if needed (§4.2: "if sparse variables
	// are included in the graph, Parallax launches a server process for
	// each machine").
	if anyPS {
		sources := workers
		if opts.LocalAggregation {
			sources = machines
		}
		mode := psrt.Sync
		if opts.Async {
			mode = psrt.Async
		}
		for m := 0; m < machines; m++ {
			srv, err := psrt.NewServer(psrt.Config{
				Sources:      sources,
				Optimizer:    opts.NewOptimizer(),
				DenseAgg:     opts.DenseAgg,
				SparseAgg:    opts.SparseAgg,
				Mode:         mode,
				DeferUpdates: opts.ClipNorm > 0 && !opts.Async,
				MeanDivisor:  workers,
			})
			if err != nil {
				return nil, err
			}
			t.servers = append(t.servers, srv)
		}
		for _, r := range t.routes {
			if r.assign.Method != core.MethodPS {
				continue
			}
			owned := make(map[int][]int) // machine -> partition indices
			for pi, srv := range r.assign.Servers {
				owned[srv] = append(owned[srv], pi)
			}
			for m, parts := range owned {
				if err := t.servers[m].AddVar(r.v.Name, r.v.Init, r.ranges, parts, r.assign.Sparse); err != nil {
					return nil, err
				}
			}
		}
	}
	return t, nil
}

// Workers returns the number of model replicas (GPUs).
func (t *Trainer) Workers() int { return t.workers }

// Step runs one synchronous data-parallel iteration: feeds[w] is worker w's
// shard batch. It returns the mean loss across workers.
func (t *Trainer) Step(feeds []graph.Feed) (float64, error) {
	if len(feeds) != t.workers {
		return 0, fmt.Errorf("transform: %d feeds for %d workers", len(feeds), t.workers)
	}
	step := t.step
	t.step++
	t.resetAggs()

	losses := make([]float64, t.workers)
	errs := make([]error, t.workers)
	var wg sync.WaitGroup
	for w := 0; w < t.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			losses[w], errs[w] = t.workerStep(w, step, feeds[w])
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	var mean float64
	for _, l := range losses {
		mean += l
	}
	return mean / float64(t.workers), nil
}

func (t *Trainer) resetAggs() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.aggs = map[string]*machineAgg{}
}

func (t *Trainer) agg(key string) *machineAgg {
	t.mu.Lock()
	defer t.mu.Unlock()
	a, ok := t.aggs[key]
	if !ok {
		a = &machineAgg{}
		t.aggs[key] = a
	}
	return a
}

// workerStep is one worker's side of an iteration.
func (t *Trainer) workerStep(w, step int, feed graph.Feed) (float64, error) {
	exec := t.execs[w]

	// Pull phase: fetch fresh PS values for this iteration (Fig 2(a)(b)'s
	// pull arrows). Version step means "after step updates have applied".
	minVersion := int64(step)
	if t.opt.Async {
		minVersion = 0
	}
	for _, r := range t.routes {
		if r.assign.Method != core.MethodPS {
			continue
		}
		val := exec.VarValue(r.v.Name)
		width := val.RowWidth()
		for pi, rr := range r.ranges {
			if rr.Len() == 0 {
				continue
			}
			pv, err := t.servers[r.assign.Servers[pi]].Pull(r.v.Name, pi, minVersion)
			if err != nil {
				return 0, err
			}
			copy(val.Data()[rr.Start*width:rr.End*width], pv.Data())
		}
	}

	// Compute.
	loss, grads, err := exec.Step(feed)
	if err != nil {
		return 0, err
	}

	// Push/aggregate phase.
	var arDense []string  // AR-managed dense grads, aggregated in place
	var arSparse []string // AllGatherv-managed names
	arSparseAgg := map[string]*tensor.Sparse{}
	for _, r := range t.routes {
		switch r.assign.Method {
		case core.MethodAllReduce:
			g := grads.Dense[r.v.Name]
			if g == nil {
				// A sparse variable promoted to dense treatment (α
				// threshold): densify its sparse gradient first.
				g = grads.Sparse[r.v.Name].ToDense()
			}
			t.replicas[w].SyncDense(r.v.Name, step, g)
			grads.Dense[r.v.Name] = g
			arDense = append(arDense, r.v.Name)
		case core.MethodAllGatherv:
			agg := t.replicas[w].SyncSparse(r.v.Name, step, grads.Sparse[r.v.Name])
			arSparseAgg[r.v.Name] = agg
			arSparse = append(arSparse, r.v.Name)
		case core.MethodPS:
			if err := t.pushPS(w, r, grads); err != nil {
				return 0, err
			}
		}
	}

	// Clipping: compute the global norm over *aggregated* gradients — AR
	// parts are replicated on every worker, PS parts are read back from
	// the servers (§5) — then scale AR updates locally and have the chief
	// apply scaled PS updates.
	scale := float32(1)
	if t.opt.ClipNorm > 0 && !t.opt.Async {
		var norm2 float64
		for _, name := range arDense {
			norm2 += grads.Dense[name].L2NormSquared()
		}
		for _, name := range arSparse {
			norm2 += arSparseAgg[name].L2NormSquared()
		}
		for _, r := range t.routes {
			if r.assign.Method != core.MethodPS {
				continue
			}
			for pi := range r.ranges {
				n2, err := t.servers[r.assign.Servers[pi]].WaitAggregatedNormSquared(r.v.Name, pi, int64(step+1))
				if err != nil {
					return 0, err
				}
				norm2 += n2
			}
		}
		if norm := math.Sqrt(norm2); norm > t.opt.ClipNorm {
			scale = float32(t.opt.ClipNorm / norm)
		}
		if w == 0 { // chief worker triggers the deferred PS updates
			for _, r := range t.routes {
				if r.assign.Method != core.MethodPS {
					continue
				}
				for pi := range r.ranges {
					if err := t.servers[r.assign.Servers[pi]].ApplyUpdate(r.v.Name, pi, scale); err != nil {
						return 0, err
					}
				}
			}
		}
	}

	// Apply AR updates locally; every replica performs the identical
	// update, keeping replicas synchronized.
	for _, r := range t.routes {
		switch r.assign.Method {
		case core.MethodAllReduce:
			g := grads.Dense[r.v.Name]
			if scale != 1 {
				g = g.Clone()
				g.Scale(scale)
			}
			t.arOpts[w].ApplyDense(r.v.Name, t.execs[w].VarValue(r.v.Name), g)
		case core.MethodAllGatherv:
			g := arSparseAgg[r.v.Name]
			if scale != 1 {
				g = g.Clone()
				g.Scale(scale)
			}
			t.arOpts[w].ApplySparse(r.v.Name, t.execs[w].VarValue(r.v.Name), g)
		}
	}
	return loss, nil
}

// pushPS routes worker w's gradient for one PS variable: split by
// partition, optionally merge within the machine, push to the owning
// servers.
func (t *Trainer) pushPS(w int, r varRoute, grads *graph.GradSet) error {
	machine := t.opt.Resource.MachineOfWorker(w)
	name := r.v.Name

	pushParts := func(sparseParts []*tensor.Sparse, dense *tensor.Dense) error {
		for pi, rr := range r.ranges {
			srv := t.servers[r.assign.Servers[pi]]
			if r.assign.Sparse {
				if err := srv.PushSparse(name, pi, sparseParts[pi]); err != nil {
					return err
				}
			} else {
				width := dense.RowWidth()
				part := tensor.FromSlice(
					append([]float32(nil), dense.Data()[rr.Start*width:rr.End*width]...),
					rr.Len(), width)
				if err := srv.PushDense(name, pi, part); err != nil {
					return err
				}
			}
		}
		return nil
	}

	if !t.opt.LocalAggregation {
		if r.assign.Sparse {
			return pushParts(tensor.SplitSparse(grads.Sparse[name], r.ranges), nil)
		}
		return pushParts(nil, grads.Dense[name])
	}

	// Local aggregation: the machine's last-arriving worker merges and
	// pushes.
	g := t.opt.Resource.GPUsPerMachine(machine)
	a := t.agg(fmt.Sprintf("%s/m%d", name, machine))
	a.mu.Lock()
	if r.assign.Sparse {
		a.sparse = append(a.sparse, grads.Sparse[name])
	} else if a.dense == nil {
		a.dense = grads.Dense[name].Clone()
	} else {
		a.dense.AddInto(grads.Dense[name])
	}
	a.got++
	doPush := a.got == g
	var sparseMerged *tensor.Sparse
	var denseMerged *tensor.Dense
	if doPush {
		if r.assign.Sparse {
			sparseMerged = tensor.SumSparse(a.sparse)
		} else {
			denseMerged = a.dense
		}
	}
	a.mu.Unlock()
	if !doPush {
		return nil
	}
	if r.assign.Sparse {
		return pushParts(tensor.SplitSparse(sparseMerged, r.ranges), nil)
	}
	return pushParts(nil, denseMerged)
}

// VarValue reconstructs the current full value of a variable: from the
// servers for PS variables, from replica 0 for AR variables.
func (t *Trainer) VarValue(name string) (*tensor.Dense, error) {
	for _, r := range t.routes {
		if r.v.Name != name {
			continue
		}
		if r.assign.Method != core.MethodPS {
			return t.execs[0].VarValue(name).Clone(), nil
		}
		out := tensor.NewDense(r.v.Shape...)
		width := out.RowWidth()
		minVersion := int64(t.step)
		if t.opt.Async {
			minVersion = 0
		}
		for pi, rr := range r.ranges {
			if rr.Len() == 0 {
				continue
			}
			pv, err := t.servers[r.assign.Servers[pi]].Pull(name, pi, minVersion)
			if err != nil {
				return nil, err
			}
			copy(out.Data()[rr.Start*width:rr.End*width], pv.Data())
		}
		return out, nil
	}
	return nil, fmt.Errorf("transform: unknown variable %q", name)
}
