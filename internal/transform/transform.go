// Package transform turns a single-GPU computation graph into a running
// distributed training job, the reproduction of Parallax's automatic graph
// transformation (§4.3): it replicates the forward/backward graph onto one
// executor per GPU, routes every variable's gradient through the
// synchronization method its plan assigns (ring AllReduce, AllGatherv, or
// parameter servers with partitioning and optional local aggregation), and
// keeps the strict synchronous-training semantics — including the
// chief-worker path that reads aggregated gradients back for global-norm
// clipping (§5).
//
// Everything runs in-process: workers are goroutines, the AR data plane is
// internal/collective, the PS data plane is internal/psrt. The virtual-time
// *performance* of the same topology is modelled by internal/engine; this
// package is the functional data plane used for correctness tests and
// convergence experiments.
//
// The trainer is a persistent runtime with a fused, overlapped
// synchronization schedule (DESIGN.md §3):
//
//   - New launches one long-lived compute goroutine per GPU, one comm
//     goroutine per GPU, one puller goroutine per (GPU, server) pair, and
//     one parameter server per machine.
//   - All dense AllReduce variables are packed at build time into a few
//     size-capped fusion buckets; each step runs ONE collective per bucket
//     over a contiguous buffer instead of one per variable, and the
//     apply/clip paths read the aggregated gradients through precomputed
//     zero-copy views into the buckets.
//   - Gradients stream out of the backward pass in reverse-topological
//     order (graph.Exec's gradient-ready callback); the worker hands each
//     completed bucket, sparse gradient, and PS route to its comm goroutine
//     immediately, overlapping synchronization with the remaining backward
//     compute.
//   - PS traffic is batched per server (psrt.PullManyInto / PushDenseMany /
//     PushSparseMany) and the pull phase runs concurrently across servers.
//
// Step spawns no goroutines, builds no maps, and formats no strings; all
// collective tags, fusion views, and pull-request lists are resolved at
// build time.
package transform

import (
	"fmt"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"parallax/internal/arrt"
	"parallax/internal/cluster"
	"parallax/internal/collective"
	"parallax/internal/core"
	"parallax/internal/graph"
	"parallax/internal/optim"
	"parallax/internal/psrt"
	"parallax/internal/tensor"
)

// defaultFusionBytes caps one fusion bucket at 4 MiB, big enough to fuse
// every dense variable of the test-scale models into a single collective
// while keeping paper-scale buckets small enough that the first bucket's
// all-reduce can still overlap the tail of the backward pass.
const defaultFusionBytes = 4 << 20

// Options configures a distributed trainer.
type Options struct {
	Plan     *core.Plan
	Resource cluster.ResourceInfo
	// NewOptimizer constructs a fresh optimizer; one instance is created
	// per AR replica and one per server, so stateful optimizers (momentum)
	// keep correctly scoped slots.
	NewOptimizer func() optim.Optimizer
	DenseAgg     optim.AggMethod
	SparseAgg    optim.AggMethod
	// LocalAggregation merges gradients inside each machine before pushing
	// to servers (Parallax's optimized PS).
	LocalAggregation bool
	// ClipNorm > 0 enables global-norm clipping across all variables; it
	// forces the deferred-update chief path on the servers.
	ClipNorm float64
	// Async switches PS variables to asynchronous updates (§2.1). AR
	// variables are inherently synchronous.
	Async bool
	// FusionBytes caps the size of one dense-AllReduce fusion bucket.
	// 0 selects the default (4 MiB); a negative value disables fusion
	// entirely — one bucket per variable — which is the reference
	// schedule the fusion equivalence tests compare against. Either way
	// the synchronization results are bit-identical: the collective's
	// rank-ordered reduction makes float32 sums independent of bucket
	// layout.
	FusionBytes int64
}

type varRoute struct {
	v      *graph.Variable
	assign core.Assignment
	ranges []tensor.RowRange
}

// stepTask is one worker's share of a dispatched iteration.
type stepTask struct {
	step int
	feed graph.Feed
}

// stepResult is one worker's completion report.
type stepResult struct {
	worker int
	loss   float64
	err    error
}

// fuseBucket is one fused dense-AllReduce collective: a set of routes
// whose gradients live contiguously in a per-worker fusion buffer.
type fuseBucket struct {
	tags   collective.Tags
	routes []int // route indices, in declaration order
	elems  int
}

// commKind discriminates comm-goroutine tasks.
type commKind int

const (
	commBucket commKind = iota // all-reduce fusion bucket idx
	commSparse                 // AllGatherv route idx
	commPS                     // parameter-server push for route idx
	commFlush                  // report first error, reset, ack
)

// commTask is one unit of synchronization work handed to a worker's comm
// goroutine. Tasks carry their gradient pointers so the comm goroutine
// never reads the executor's GradSet maps, which the compute goroutine
// keeps mutating during the backward sweep.
type commTask struct {
	kind   commKind
	idx    int
	dense  *tensor.Dense
	sparse *tensor.Sparse
}

// phaseTimes is one worker's per-step phase breakdown. compute and wait
// are written by the worker goroutine, comm by its comm goroutine; the
// flush ack orders comm's writes before the worker's read.
type phaseTimes struct {
	compute time.Duration // forward+backward wall clock
	comm    time.Duration // comm goroutine busy time
	wait    time.Duration // drain time after compute ended (exposed comm)
}

// PhaseStats is the per-step phase breakdown of the slowest worker:
// Compute is graph execution, Comm is synchronization busy time, and
// SyncWait is the part of Comm that was NOT hidden under compute — the
// time the worker sat waiting for its comm goroutine to drain after the
// backward pass finished. Comm−SyncWait is therefore the overlap won by
// dispatching synchronization mid-backprop.
type PhaseStats struct {
	Compute  time.Duration
	Comm     time.Duration
	SyncWait time.Duration
}

// aggSlot collects one machine's worker gradients for one variable in one
// step; the last worker to arrive acts as the machine's local chief and
// pushes the merged gradient (§5: "a worker in the machine becomes a local
// chief worker to collect gradients within a machine and send them to
// servers"). Slots are resolved to (route, machine) integer indices at
// build time and reset in place between steps, so the hot loop never
// touches a map or formats a key.
type aggSlot struct {
	mu       sync.Mutex
	got      int
	sparse   []*tensor.Sparse // reused backing array, truncated each step
	dense    *tensor.Dense    // preallocated merge buffer (dense variables)
	denseSet bool             // dense holds this step's first gradient
}

// Trainer executes synchronized data-parallel steps over persistent
// in-process workers.
type Trainer struct {
	g        *graph.Graph
	opt      Options
	workers  int
	machines int

	execs    []*graph.Exec
	replicas []*arrt.Replica
	arOpts   []optim.Optimizer

	servers []*psrt.Server // one per machine; nil when no PS variables
	routes  []varRoute
	// routeIdx resolves a variable name to its route index; read-only
	// after New, so the gradient-ready callback can use it concurrently.
	routeIdx map[string]int

	// Fusion schedule (dense AllReduce routes only).
	buckets  []fuseBucket
	bucketOf []int             // [ri] -> bucket index, -1 for non-fused routes
	fuseBufs [][]*tensor.Dense // [w][b]: flat per-worker fusion buffers
	// fuseViews[w][ri] is a zero-copy view shaped like route ri's variable
	// into worker w's fusion buffer; the apply/clip paths read aggregated
	// gradients through it.
	fuseViews [][]*tensor.Dense
	agvTags   []string // [ri]: precomputed AllGatherv tag, "" for others

	// slots[ri][m] is the local-aggregation slot for route ri on machine
	// m; non-nil only for PS routes when LocalAggregation is on.
	slots [][]aggSlot
	// slotViews[ri][m][pi] is a zero-copy partition view into
	// slots[ri][m].dense, precomputed for dense variables.
	slotViews [][][]*tensor.Dense
	// pullReqs[w][m] is the batched pull request list worker w issues to
	// server m at the top of each step; destinations are zero-copy views
	// into the worker's replica storage.
	pullReqs [][][]psrt.PullReq
	// psServers[ri] lists the servers hosting route ri's partitions (in
	// first-appearance order); psParts[ri][k] are the partition indices
	// owned by psServers[ri][k].
	psServers [][]int
	psParts   [][][]int
	// arSparse[w][ri] holds worker w's AllGatherv-aggregated gradient for
	// route ri within a step (indexed, not keyed, to avoid per-step maps).
	arSparse [][]*tensor.Sparse

	inputs []*graph.Node // the graph's input nodes, for feed validation

	bytesPushed atomic.Int64

	tasks   []chan stepTask // one per persistent worker
	done    chan stepResult
	lossBuf []float64 // per-worker losses, summed in worker order

	// Overlap runtime: one comm goroutine per worker (ordered collectives
	// and PS pushes) plus one puller per (worker, server).
	comm          []chan commTask
	commAck       []chan error
	pullCh        [][]chan int64      // [w][m]: minVersion for this step's pull
	pullDone      []chan error        // [w], buffered to machines
	bucketPending [][]int             // [w][b]: routes not yet copied this step
	psDenseReqs   [][]psrt.DensePush  // [w] scratch, reused across pushes
	psSparseReqs  [][]psrt.SparsePush // [w] scratch

	phases    []phaseTimes // [w], reset by the worker each step
	lastPhase PhaseStats

	closeOnce sync.Once
	step      int
}

// New builds a trainer for graph g under the given plan and resources and
// starts its persistent runtime. Call Close to stop the goroutines when
// the trainer is no longer needed.
func New(g *graph.Graph, opts Options) (*Trainer, error) {
	if opts.Plan == nil {
		return nil, fmt.Errorf("transform: nil plan")
	}
	if err := opts.Resource.Validate(); err != nil {
		return nil, err
	}
	if opts.NewOptimizer == nil {
		return nil, fmt.Errorf("transform: NewOptimizer is required")
	}
	vars := g.Variables()
	if len(opts.Plan.Assignments) != len(vars) {
		return nil, fmt.Errorf("transform: plan has %d assignments for %d variables",
			len(opts.Plan.Assignments), len(vars))
	}
	if opts.Plan.Arch == core.ArchAR && opts.Async {
		return nil, fmt.Errorf("transform: async training requires PS-managed variables")
	}

	workers := opts.Resource.TotalGPUs()
	machines := opts.Resource.NumMachines()
	t := &Trainer{
		g: g, opt: opts, workers: workers, machines: machines,
	}

	// Replicate the graph: one executor per GPU (§4.3: "main computation
	// operations ... are replicated as many as the number of GPUs").
	for w := 0; w < workers; w++ {
		e, err := graph.NewExec(g)
		if err != nil {
			return nil, err
		}
		t.execs = append(t.execs, e)
		t.arOpts = append(t.arOpts, opts.NewOptimizer())
	}
	world := collective.NewWorld(workers)
	for w := 0; w < workers; w++ {
		t.replicas = append(t.replicas, arrt.New(world.Comm(w), opts.DenseAgg, opts.SparseAgg))
	}

	// Route variables.
	anyPS := false
	t.routeIdx = make(map[string]int, len(vars))
	for i, v := range vars {
		a := opts.Plan.Assignments[i]
		if a.Name != v.Name {
			return nil, fmt.Errorf("transform: plan assignment %d is %q, variable is %q", i, a.Name, v.Name)
		}
		r := varRoute{v: v, assign: a}
		if a.Method == core.MethodPS {
			anyPS = true
			r.ranges = tensor.PartitionRows(v.Shape[0], a.Partitions)
		}
		t.routeIdx[v.Name] = len(t.routes)
		t.routes = append(t.routes, r)
	}

	// Launch one server per machine if needed (§4.2: "if sparse variables
	// are included in the graph, Parallax launches a server process for
	// each machine").
	if anyPS {
		sources := workers
		if opts.LocalAggregation {
			sources = machines
		}
		mode := psrt.Sync
		if opts.Async {
			mode = psrt.Async
		}
		for m := 0; m < machines; m++ {
			srv, err := psrt.NewServer(psrt.Config{
				Sources:      sources,
				Optimizer:    opts.NewOptimizer(),
				DenseAgg:     opts.DenseAgg,
				SparseAgg:    opts.SparseAgg,
				Mode:         mode,
				DeferUpdates: opts.ClipNorm > 0 && !opts.Async,
				MeanDivisor:  workers,
			})
			if err != nil {
				return nil, err
			}
			t.servers = append(t.servers, srv)
		}
		for _, r := range t.routes {
			if r.assign.Method != core.MethodPS {
				continue
			}
			owned := make(map[int][]int) // machine -> partition indices
			for pi, srv := range r.assign.Servers {
				owned[srv] = append(owned[srv], pi)
			}
			for m, parts := range owned {
				if err := t.servers[m].AddVar(r.v.Name, r.v.Init, r.ranges, parts, r.assign.Sparse); err != nil {
					return nil, err
				}
			}
		}
	}

	t.buildFusion()
	t.buildPSRouting()
	t.buildSlots()
	t.buildPullReqs()
	for _, n := range g.Nodes() {
		if n.Kind == graph.OpInput {
			t.inputs = append(t.inputs, n)
		}
	}

	// Per-worker indexed scratch for AllGatherv aggregates and tags.
	t.arSparse = make([][]*tensor.Sparse, workers)
	for w := range t.arSparse {
		t.arSparse[w] = make([]*tensor.Sparse, len(t.routes))
	}
	t.agvTags = make([]string, len(t.routes))
	for ri, r := range t.routes {
		if r.assign.Method == core.MethodAllGatherv {
			t.agvTags[ri] = arrt.SparseTag(r.v.Name)
		}
	}

	// Start the persistent runtime: compute workers, comm goroutines, and
	// per-(worker, server) pullers.
	t.tasks = make([]chan stepTask, workers)
	t.done = make(chan stepResult, workers)
	t.comm = make([]chan commTask, workers)
	t.commAck = make([]chan error, workers)
	t.pullCh = make([][]chan int64, workers)
	t.pullDone = make([]chan error, workers)
	t.psDenseReqs = make([][]psrt.DensePush, workers)
	t.psSparseReqs = make([][]psrt.SparsePush, workers)
	t.phases = make([]phaseTimes, workers)
	for w := 0; w < workers; w++ {
		t.tasks[w] = make(chan stepTask)
		t.comm[w] = make(chan commTask, 4+len(t.buckets)+len(t.routes))
		t.commAck[w] = make(chan error)
		t.pullCh[w] = make([]chan int64, len(t.servers))
		t.pullDone[w] = make(chan error, len(t.servers))
		for m := range t.servers {
			t.pullCh[w][m] = make(chan int64)
			go t.pullLoop(w, m)
		}
		go t.commLoop(w)
		go t.workerLoop(w)
	}
	return t, nil
}

// buildFusion packs the dense AllReduce routes into size-capped fusion
// buckets and preallocates, per worker, one contiguous buffer per bucket
// plus a shaped view per route. Routes pack in declaration order; since
// gradients become ready in *reverse* declaration order, a bucket's
// completion is triggered by its first route, and buckets complete
// back-to-front — last layers first, exactly the order that maximizes
// overlap with the remaining backward compute.
func (t *Trainer) buildFusion() {
	capBytes := t.opt.FusionBytes
	if capBytes == 0 {
		capBytes = defaultFusionBytes
	}
	t.bucketOf = make([]int, len(t.routes))
	for i := range t.bucketOf {
		t.bucketOf[i] = -1
	}
	bi := -1
	var curBytes int64
	for ri, r := range t.routes {
		if r.assign.Method != core.MethodAllReduce {
			continue
		}
		vb := r.v.Bytes()
		if bi < 0 || capBytes < 0 || (curBytes > 0 && curBytes+vb > capBytes) {
			t.buckets = append(t.buckets, fuseBucket{})
			bi = len(t.buckets) - 1
			curBytes = 0
		}
		b := &t.buckets[bi]
		b.routes = append(b.routes, ri)
		b.elems += int(r.v.Elements())
		t.bucketOf[ri] = bi
		curBytes += vb
	}
	for i := range t.buckets {
		t.buckets[i].tags = collective.TagsFor("fuse/" + strconv.Itoa(i))
	}
	t.fuseBufs = make([][]*tensor.Dense, t.workers)
	t.fuseViews = make([][]*tensor.Dense, t.workers)
	t.bucketPending = make([][]int, t.workers)
	for w := 0; w < t.workers; w++ {
		t.fuseBufs[w] = make([]*tensor.Dense, len(t.buckets))
		t.fuseViews[w] = make([]*tensor.Dense, len(t.routes))
		t.bucketPending[w] = make([]int, len(t.buckets))
		for i := range t.buckets {
			b := &t.buckets[i]
			buf := tensor.NewDense(b.elems)
			t.fuseBufs[w][i] = buf
			off := 0
			for _, ri := range b.routes {
				n := int(t.routes[ri].v.Elements())
				t.fuseViews[w][ri] = tensor.FromSlice(
					buf.Data()[off:off+n:off+n], t.routes[ri].v.Shape...)
				off += n
			}
		}
	}
}

// buildPSRouting groups each PS route's partitions by owning server, so
// the push path issues one batched call per server instead of one per
// partition.
func (t *Trainer) buildPSRouting() {
	t.psServers = make([][]int, len(t.routes))
	t.psParts = make([][][]int, len(t.routes))
	for ri, r := range t.routes {
		if r.assign.Method != core.MethodPS {
			continue
		}
		pos := make(map[int]int) // server -> index in psServers[ri]
		for pi := range r.ranges {
			srv := r.assign.Servers[pi]
			k, ok := pos[srv]
			if !ok {
				k = len(t.psServers[ri])
				pos[srv] = k
				t.psServers[ri] = append(t.psServers[ri], srv)
				t.psParts[ri] = append(t.psParts[ri], nil)
			}
			t.psParts[ri][k] = append(t.psParts[ri][k], pi)
		}
	}
}

// buildSlots preallocates the per-(route, machine) local-aggregation slots
// and, for dense variables, their merge buffers and partition views.
func (t *Trainer) buildSlots() {
	t.slots = make([][]aggSlot, len(t.routes))
	t.slotViews = make([][][]*tensor.Dense, len(t.routes))
	if !t.opt.LocalAggregation {
		return
	}
	for ri, r := range t.routes {
		if r.assign.Method != core.MethodPS {
			continue
		}
		t.slots[ri] = make([]aggSlot, t.machines)
		if r.assign.Sparse {
			continue
		}
		t.slotViews[ri] = make([][]*tensor.Dense, t.machines)
		for m := 0; m < t.machines; m++ {
			buf := tensor.NewDense(r.v.Shape...)
			t.slots[ri][m].dense = buf
			views := make([]*tensor.Dense, len(r.ranges))
			for pi, rr := range r.ranges {
				views[pi] = buf.SliceRows(rr.Start, rr.End)
			}
			t.slotViews[ri][m] = views
		}
	}
}

// buildPullReqs precomputes, per worker and server, the batched pull
// request list whose destinations are zero-copy views into the worker's
// replica storage. Requests for one variable stay adjacent so the server
// amortizes its lookup.
func (t *Trainer) buildPullReqs() {
	t.pullReqs = make([][][]psrt.PullReq, t.workers)
	for w := 0; w < t.workers; w++ {
		t.pullReqs[w] = make([][]psrt.PullReq, len(t.servers))
		for _, r := range t.routes {
			if r.assign.Method != core.MethodPS {
				continue
			}
			val := t.execs[w].VarValue(r.v.Name)
			for pi, rr := range r.ranges {
				if rr.Len() == 0 {
					continue
				}
				m := r.assign.Servers[pi]
				t.pullReqs[w][m] = append(t.pullReqs[w][m], psrt.PullReq{
					Name: r.v.Name, Part: pi, Dst: val.SliceRows(rr.Start, rr.End),
				})
			}
		}
	}
}

// Workers returns the number of model replicas (GPUs).
func (t *Trainer) Workers() int { return t.workers }

// BytesPushedLastStep returns how many gradient payload bytes the workers
// handed to the synchronization layer (ring collectives and parameter
// servers) during the most recent Step. Valid after Step returns.
func (t *Trainer) BytesPushedLastStep() int64 { return t.bytesPushed.Load() }

// PhaseStatsLastStep returns the previous step's phase breakdown, taken
// from the slowest worker per phase. Valid after Step returns.
func (t *Trainer) PhaseStatsLastStep() PhaseStats { return t.lastPhase }

// Buckets returns the number of fused dense-AllReduce collectives the
// schedule runs per step (0 when the plan has no AllReduce variables).
func (t *Trainer) Buckets() int { return len(t.buckets) }

// Close stops the persistent goroutines (workers, comm, pullers). The
// trainer must not be stepped afterwards; Close is idempotent.
func (t *Trainer) Close() {
	t.closeOnce.Do(func() {
		for _, ch := range t.tasks {
			close(ch)
		}
		for _, ch := range t.comm {
			close(ch)
		}
		for _, per := range t.pullCh {
			for _, ch := range per {
				close(ch)
			}
		}
	})
}

// workerLoop is one persistent worker: it serves step tasks until Close.
func (t *Trainer) workerLoop(w int) {
	for task := range t.tasks[w] {
		loss, err := t.workerStep(w, task.step, task.feed)
		t.done <- stepResult{worker: w, loss: loss, err: err}
	}
}

// commLoop drains worker w's synchronization tasks. Collectives must be
// issued in the same order on every worker; that holds because tasks are
// enqueued in gradient-ready order, which is the same deterministic
// reverse-declaration order on every replica of the graph. PS pushes
// never block (server accumulation is lock-brief), so they cannot stall a
// peer's collective.
func (t *Trainer) commLoop(w int) {
	var firstErr error
	for task := range t.comm[w] {
		if task.kind == commFlush {
			t.commAck[w] <- firstErr
			firstErr = nil
			continue
		}
		start := time.Now()
		switch task.kind {
		case commBucket:
			t.replicas[w].SyncDenseTagged(t.buckets[task.idx].tags, t.fuseBufs[w][task.idx])
		case commSparse:
			t.arSparse[w][task.idx] = t.replicas[w].SyncSparseTagged(t.agvTags[task.idx], task.sparse)
		case commPS:
			if err := t.pushPS(w, task.idx, task.dense, task.sparse); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		t.phases[w].comm += time.Since(start)
	}
}

// pullLoop serves worker w's batched pulls from server m, so the pull
// phase runs concurrently across servers.
func (t *Trainer) pullLoop(w, m int) {
	for minVersion := range t.pullCh[w][m] {
		t.pullDone[w] <- t.servers[m].PullManyInto(minVersion, t.pullReqs[w][m])
	}
}

// Step runs one synchronous data-parallel iteration: feeds[w] is worker w's
// shard batch. It returns the mean loss across workers. Step dispatches to
// the persistent workers started by New; it must not be called
// concurrently with itself or after Close.
func (t *Trainer) Step(feeds []graph.Feed) (float64, error) {
	if len(feeds) != t.workers {
		return 0, fmt.Errorf("transform: %d feeds for %d workers", len(feeds), t.workers)
	}
	// Validate every worker's feed up front: a worker failing mid-step
	// would leave its peers blocked inside collectives with no rank to
	// rendezvous with, so bad feeds — the realistic runtime error — must
	// be rejected before any work is dispatched.
	for w := range feeds {
		if err := t.checkFeed(w, feeds[w]); err != nil {
			return 0, err
		}
	}
	step := t.step
	t.step++
	t.resetSlots()
	t.bytesPushed.Store(0)

	for w := range feeds {
		t.tasks[w] <- stepTask{step: step, feed: feeds[w]}
	}
	// Collect results indexed by worker and sum in worker order: workers
	// finish in nondeterministic order, and a float64 sum in arrival
	// order would make the reported mean loss wobble in the last ulp
	// between otherwise identical runs.
	if t.lossBuf == nil {
		t.lossBuf = make([]float64, t.workers)
	}
	var firstErr error
	for i := 0; i < t.workers; i++ {
		res := <-t.done
		if res.err != nil && firstErr == nil {
			firstErr = res.err
		}
		t.lossBuf[res.worker] = res.loss
	}
	if firstErr != nil {
		return 0, firstErr
	}
	var mean float64
	for _, l := range t.lossBuf {
		mean += l
	}
	// Aggregate the per-worker phase breakdown: the slowest worker per
	// phase is the step's critical path. The done handshake above orders
	// every worker's (and comm goroutine's) writes before these reads.
	var ph PhaseStats
	for w := range t.phases {
		ph.Compute = max(ph.Compute, t.phases[w].compute)
		ph.Comm = max(ph.Comm, t.phases[w].comm)
		ph.SyncWait = max(ph.SyncWait, t.phases[w].wait)
	}
	t.lastPhase = ph
	return mean / float64(t.workers), nil
}

// checkFeed verifies worker w's feed covers every graph input with the
// right size before the step is dispatched.
func (t *Trainer) checkFeed(w int, feed graph.Feed) error {
	for _, n := range t.inputs {
		if n.DType == graph.Int {
			v, ok := feed.Ints[n.Name]
			if !ok {
				return fmt.Errorf("transform: worker %d feed missing int input %q", w, n.Name)
			}
			if len(v) != n.Shape[0] {
				return fmt.Errorf("transform: worker %d feed %q has %d entries, want %d", w, n.Name, len(v), n.Shape[0])
			}
			continue
		}
		v, ok := feed.Floats[n.Name]
		if !ok {
			return fmt.Errorf("transform: worker %d feed missing float input %q", w, n.Name)
		}
		shape := v.Shape()
		badShape := len(shape) != len(n.Shape)
		for i := 0; !badShape && i < len(shape); i++ {
			badShape = shape[i] != n.Shape[i]
		}
		if badShape {
			return fmt.Errorf("transform: worker %d feed %q has shape %v, want %v", w, n.Name, shape, n.Shape)
		}
	}
	return nil
}

// resetSlots rewinds the local-aggregation slots for the next step. It
// runs between steps, when every worker is parked on its task channel, so
// the channel handshake orders these writes against the workers' accesses.
func (t *Trainer) resetSlots() {
	for ri := range t.slots {
		for m := range t.slots[ri] {
			s := &t.slots[ri][m]
			s.got = 0
			s.denseSet = false
			clear(s.sparse)
			s.sparse = s.sparse[:0]
		}
	}
}

// workerStep is one worker's side of an iteration.
func (t *Trainer) workerStep(w, step int, feed graph.Feed) (float64, error) {
	exec := t.execs[w]
	ph := &t.phases[w]
	*ph = phaseTimes{}

	// Pull phase: fetch fresh PS values for this iteration (Fig 2(a)(b)'s
	// pull arrows), one batched call per server, all servers in parallel,
	// copying straight into the replica's variable storage through the
	// precomputed views. Version step means "after step updates have
	// applied".
	minVersion := int64(step)
	if t.opt.Async {
		minVersion = 0
	}
	pulls := 0
	for m := range t.servers {
		if len(t.pullReqs[w][m]) > 0 {
			t.pullCh[w][m] <- minVersion
			pulls++
		}
	}
	var pullErr error
	for i := 0; i < pulls; i++ {
		if err := <-t.pullDone[w]; err != nil && pullErr == nil {
			pullErr = err
		}
	}
	if pullErr != nil {
		return 0, pullErr
	}

	// Compute, streaming synchronization out of the backward pass: each
	// dense gradient is copied into its fusion view the moment it is
	// final, the bucket's collective is dispatched when its last view
	// fills, and sparse/PS gradients are handed off immediately — all
	// while the sweep continues toward the input layers.
	pending := t.bucketPending[w]
	for b := range pending {
		pending[b] = len(t.buckets[b].routes)
	}
	computeStart := time.Now()
	loss, _, err := exec.StepStream(feed, func(name string, d *tensor.Dense, sp *tensor.Sparse) {
		ri := t.routeIdx[name]
		switch t.routes[ri].assign.Method {
		case core.MethodAllReduce:
			view := t.fuseViews[w][ri]
			if d != nil {
				copy(view.Data(), d.Data())
			} else {
				// A sparse variable promoted to dense treatment (α
				// threshold): densify straight into the fusion view.
				view.Zero()
				sp.ToDenseInto(view)
			}
			t.bytesPushed.Add(view.Bytes())
			b := t.bucketOf[ri]
			if pending[b]--; pending[b] == 0 {
				t.comm[w] <- commTask{kind: commBucket, idx: b}
			}
		case core.MethodAllGatherv:
			t.bytesPushed.Add(sp.Bytes())
			t.comm[w] <- commTask{kind: commSparse, idx: ri, sparse: sp}
		case core.MethodPS:
			t.comm[w] <- commTask{kind: commPS, idx: ri, dense: d, sparse: sp}
		}
	})
	computeEnd := time.Now()
	ph.compute = computeEnd.Sub(computeStart)

	// Drain: wait for this worker's synchronization to finish. Whatever
	// comm time is left here was not hidden under compute.
	t.comm[w] <- commTask{kind: commFlush}
	commErr := <-t.commAck[w]
	ph.wait = time.Since(computeEnd)
	if err != nil {
		return 0, err
	}
	if commErr != nil {
		return 0, commErr
	}

	// Clipping: compute the global norm over *aggregated* gradients — AR
	// parts are replicated on every worker (read through the fusion
	// views), PS parts are read back from the servers (§5) — then scale
	// AR updates locally and have the chief apply scaled PS updates.
	scale := float32(1)
	if t.opt.ClipNorm > 0 && !t.opt.Async {
		var norm2 float64
		for ri, r := range t.routes {
			switch r.assign.Method {
			case core.MethodAllReduce:
				norm2 += t.fuseViews[w][ri].L2NormSquared()
			case core.MethodAllGatherv:
				// Coalesce once and keep the result: the norm needs the
				// deduplicated tensor, and the apply below would otherwise
				// re-coalesce the concatenated gradient.
				g := t.arSparse[w][ri].Coalesce()
				t.arSparse[w][ri] = g
				norm2 += g.Values.L2NormSquared()
			case core.MethodPS:
				for pi := range r.ranges {
					n2, err := t.servers[r.assign.Servers[pi]].WaitAggregatedNormSquared(r.v.Name, pi, int64(step+1))
					if err != nil {
						return 0, err
					}
					norm2 += n2
				}
			}
		}
		if norm := math.Sqrt(norm2); norm > t.opt.ClipNorm {
			scale = float32(t.opt.ClipNorm / norm)
		}
		if w == 0 { // chief worker triggers the deferred PS updates
			for _, r := range t.routes {
				if r.assign.Method != core.MethodPS {
					continue
				}
				for pi := range r.ranges {
					if err := t.servers[r.assign.Servers[pi]].ApplyUpdate(r.v.Name, pi, scale); err != nil {
						return 0, err
					}
				}
			}
		}
	}

	// Apply AR updates locally; every replica performs the identical
	// update, keeping replicas synchronized. The aggregated gradients
	// live in the worker-local fusion buffers, so clip scaling happens in
	// place.
	for ri, r := range t.routes {
		switch r.assign.Method {
		case core.MethodAllReduce:
			g := t.fuseViews[w][ri]
			if scale != 1 {
				g.Scale(scale)
			}
			t.arOpts[w].ApplyDense(r.v.Name, exec.VarValue(r.v.Name), g)
		case core.MethodAllGatherv:
			g := t.arSparse[w][ri]
			if scale != 1 {
				g.Scale(scale)
			}
			t.arOpts[w].ApplySparse(r.v.Name, exec.VarValue(r.v.Name), g)
			t.arSparse[w][ri] = nil
		}
	}
	return loss, nil
}

// pushPS routes worker w's gradient for PS route ri: split by partition,
// optionally merge within the machine, push to the owning servers with
// one batched call per server. Dense partitions travel as zero-copy views
// (psrt borrows them only for the call); sparse partitions are freshly
// split and ownership transfers to the server. Runs on the worker's comm
// goroutine.
func (t *Trainer) pushPS(w, ri int, dense *tensor.Dense, sp *tensor.Sparse) error {
	r := &t.routes[ri]
	name := r.v.Name

	pushSparseParts := func(parts []*tensor.Sparse) error {
		for k, srv := range t.psServers[ri] {
			reqs := t.psSparseReqs[w][:0]
			for _, pi := range t.psParts[ri][k] {
				t.bytesPushed.Add(parts[pi].Bytes())
				reqs = append(reqs, psrt.SparsePush{Name: name, Part: pi, Grad: parts[pi]})
			}
			t.psSparseReqs[w] = reqs[:0]
			if err := t.servers[srv].PushSparseMany(reqs); err != nil {
				return err
			}
		}
		return nil
	}
	pushDenseParts := func(dense *tensor.Dense, views []*tensor.Dense) error {
		for k, srv := range t.psServers[ri] {
			reqs := t.psDenseReqs[w][:0]
			for _, pi := range t.psParts[ri][k] {
				rr := r.ranges[pi]
				part := dense
				if views != nil {
					part = views[pi]
				} else if rr.Start != 0 || rr.End != dense.Dim(0) {
					// Without local aggregation the gradient is a fresh
					// exec-owned tensor each step, so partition views cannot
					// be precomputed; the per-push SliceRows header is the
					// remaining (cheap) allocation on this non-default path.
					part = dense.SliceRows(rr.Start, rr.End)
				}
				t.bytesPushed.Add(part.Bytes())
				reqs = append(reqs, psrt.DensePush{Name: name, Part: pi, Grad: part})
			}
			t.psDenseReqs[w] = reqs[:0]
			if err := t.servers[srv].PushDenseMany(reqs); err != nil {
				return err
			}
		}
		return nil
	}

	if !t.opt.LocalAggregation {
		if r.assign.Sparse {
			return pushSparseParts(tensor.SplitSparse(sp, r.ranges))
		}
		return pushDenseParts(dense, nil)
	}

	// Local aggregation: the machine's last-arriving worker merges and
	// pushes.
	machine := t.opt.Resource.MachineOfWorker(w)
	gpus := t.opt.Resource.GPUsPerMachine(machine)
	slot := &t.slots[ri][machine]
	slot.mu.Lock()
	if r.assign.Sparse {
		slot.sparse = append(slot.sparse, sp)
	} else if !slot.denseSet {
		copy(slot.dense.Data(), dense.Data())
		slot.denseSet = true
	} else {
		slot.dense.AddInto(dense)
	}
	slot.got++
	doPush := slot.got == gpus
	var sparseMerged *tensor.Sparse
	if doPush && r.assign.Sparse {
		sparseMerged = tensor.SumSparse(slot.sparse)
	}
	slot.mu.Unlock()
	if !doPush {
		return nil
	}
	if r.assign.Sparse {
		return pushSparseParts(tensor.SplitSparse(sparseMerged, r.ranges))
	}
	return pushDenseParts(slot.dense, t.slotViews[ri][machine])
}

// VarValue reconstructs the current full value of a variable: from the
// servers for PS variables, from replica 0 for AR variables.
func (t *Trainer) VarValue(name string) (*tensor.Dense, error) {
	for _, r := range t.routes {
		if r.v.Name != name {
			continue
		}
		if r.assign.Method != core.MethodPS {
			return t.execs[0].VarValue(name).Clone(), nil
		}
		out := tensor.NewDense(r.v.Shape...)
		minVersion := int64(t.step)
		if t.opt.Async {
			minVersion = 0
		}
		for pi, rr := range r.ranges {
			if rr.Len() == 0 {
				continue
			}
			dst := out.SliceRows(rr.Start, rr.End)
			if err := t.servers[r.assign.Servers[pi]].PullInto(name, pi, minVersion, dst); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("transform: unknown variable %q", name)
}
