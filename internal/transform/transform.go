// Package transform turns a single-GPU computation graph into a running
// distributed training job, the reproduction of Parallax's automatic graph
// transformation (§4.3): it replicates the forward/backward graph onto one
// executor per GPU, routes every variable's gradient through the
// synchronization method its plan assigns (ring AllReduce, AllGatherv, or
// parameter servers with partitioning and optional local aggregation), and
// keeps the strict synchronous-training semantics — including the
// chief-worker path that reads aggregated gradients back for global-norm
// clipping (§5).
//
// The data plane rides on a pluggable wire transport (internal/transport,
// DESIGN.md §8): by default everything runs in one process over the
// channel fabric (workers are goroutines, the AR data plane is
// internal/collective, the PS data plane is internal/psrt), and with
// Options.Fabric a trainer hosts just one machine's share of the cluster
// — its GPUs' workers and its parameter server — exchanging gradients
// with peer agent processes over TCP. The virtual-time *performance* of
// the same topology is modelled by internal/engine; this package is the
// functional data plane used for correctness tests and convergence
// experiments.
//
// The trainer is a persistent runtime with a fused, overlapped
// synchronization schedule (DESIGN.md §3):
//
//   - New launches one long-lived compute goroutine per local GPU, one
//     comm goroutine per GPU, one puller goroutine per (GPU, server)
//     pair, one parameter server per local machine, and one serving
//     goroutine per (local server, remote worker).
//   - All dense AllReduce variables are packed at build time into a few
//     size-capped fusion buckets; each step runs ONE collective per bucket
//     over a contiguous buffer instead of one per variable, and the
//     apply/clip paths read the aggregated gradients through precomputed
//     zero-copy views into the buckets.
//   - Gradients stream out of the backward pass in reverse-topological
//     order (graph.Exec's gradient-ready callback); the worker hands each
//     completed bucket, sparse gradient, and PS route to its comm goroutine
//     immediately, overlapping synchronization with the remaining backward
//     compute.
//   - PS traffic is batched per server (psrt.PullManyInto / PushDenseMany /
//     PushSparseMany) and the pull phase runs concurrently across servers.
//     Remote servers are reached through psrt.Client stubs speaking the
//     same batched shapes over the conduit.
//
// Step spawns no goroutines, builds no maps, and formats no strings; all
// collective tags, fusion views, and pull-request lists are resolved at
// build time.
//
// The PS routing is not frozen at build time: Repartition reshards the
// partition-target sparse variables to a new partition count between
// steps (DESIGN.md §9) — a gather/barrier/install protocol that
// migrates server state losslessly over either fabric — which is what
// lets the §3.2 partition search run against the live runtime
// (parallax.Config.AutoPartition) instead of the simulator.
package transform

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"parallax/internal/arrt"
	"parallax/internal/cluster"
	"parallax/internal/collective"
	"parallax/internal/core"
	"parallax/internal/errs"
	"parallax/internal/graph"
	"parallax/internal/optim"
	"parallax/internal/psrt"
	"parallax/internal/tensor"
	"parallax/internal/transport"
)

// defaultFusionBytes caps one fusion bucket at 4 MiB, big enough to fuse
// every dense variable of the test-scale models into a single collective
// while keeping paper-scale buckets small enough that the first bucket's
// all-reduce can still overlap the tail of the backward pass.
const defaultFusionBytes = 4 << 20

// closeBarrierTimeout bounds the cross-agent drain barrier Close runs in
// distributed mode; if peers are gone (crashed mid-run) we proceed to
// tear the fabric down anyway.
const closeBarrierTimeout = 30 * time.Second

// Options configures a distributed trainer.
type Options struct {
	Plan     *core.Plan
	Resource cluster.ResourceInfo
	// NewOptimizer constructs a fresh optimizer; one instance is created
	// per AR replica and one per server, so stateful optimizers (momentum)
	// keep correctly scoped slots.
	NewOptimizer func() optim.Optimizer
	DenseAgg     optim.AggMethod
	SparseAgg    optim.AggMethod
	// LocalAggregation merges gradients inside each machine before pushing
	// to servers (Parallax's optimized PS).
	LocalAggregation bool
	// ClipNorm > 0 enables global-norm clipping across all variables; it
	// forces the deferred-update chief path on the servers.
	ClipNorm float64
	// Async switches PS variables to asynchronous updates (§2.1). AR
	// variables are inherently synchronous.
	Async bool
	// FusionBytes caps the size of one dense-AllReduce fusion bucket.
	// 0 selects the default (4 MiB); a negative value disables fusion
	// entirely — one bucket per variable — which is the reference
	// schedule the fusion equivalence tests compare against. Either way
	// the synchronization results are bit-identical: the collective's
	// rank-ordered reduction makes float32 sums independent of bucket
	// layout.
	FusionBytes int64
	// Compression is the wire compression policy (DESIGN.md §11): dense
	// fusion buckets travel under Dense/DenseTopK (half-precision
	// payloads and/or top-k sparsification with error feedback), PS
	// pushes under PSDense/PSSparse/DeltaIndex. The zero value is
	// CompressionNone — exact f32 everywhere, bit-identical to builds
	// without this field. All lossy rounding happens in the data plane at
	// fabric-symmetric points, so a compressed run is itself
	// bit-identical between the in-process and TCP fabrics. In
	// distributed mode every agent must configure the identical policy
	// (the TCP rendezvous enforces it).
	Compression transport.Policy
	// Fabric supplies the wire transport when the cluster spans agent
	// processes: the trainer hosts exactly the fabric's local endpoints
	// (one machine's workers and server) and reaches the rest over the
	// wire. nil builds a process-local channel fabric hosting everything
	// — the classic single-process mode. The trainer takes ownership of
	// the fabric and closes it (also on a failed New).
	//
	// Every agent must construct the identical graph and plan
	// (deterministic initializers with the same seed); AR-managed
	// variables are additionally broadcast from worker 0 at build time so
	// replicas start bit-identical.
	Fabric transport.Fabric
	// Resident, when set, hosts this trainer's PS variables on the given
	// long-lived fleet of resident servers instead of launching private
	// ones — the multi-tenant service mode. PSNamespace must name the
	// tenant (e.g. "tenant/jobID"); every variable is registered under it
	// so same-named variables of concurrent jobs never collide, and the
	// namespace is dropped wholesale when the trainer closes. Resident
	// mode is single-process only (the fleet lives in the daemon), so it
	// cannot be combined with a distributed Fabric.
	Resident    *psrt.Fleet
	PSNamespace string
}

type varRoute struct {
	v      *graph.Variable
	assign core.Assignment
	ranges []tensor.RowRange
	// psName is the name this variable is served under on its PS servers:
	// v.Name qualified with the tenant namespace in resident mode,
	// v.Name itself otherwise. Precomputed so the pull/push/clip hot
	// paths and snapshot/restore never re-derive it.
	psName string
}

// stepTask is one worker's share of a dispatched iteration.
type stepTask struct {
	step int
	feed graph.Feed
}

// stepResult is one worker's completion report.
type stepResult struct {
	worker int
	loss   float64
	err    error
}

// fuseBucket is one fused dense-AllReduce collective: a set of routes
// whose gradients live contiguously in a per-worker fusion buffer.
type fuseBucket struct {
	tags   collective.Tags
	routes []int // route indices, in declaration order
	elems  int
}

// commKind discriminates comm-goroutine tasks.
type commKind int

const (
	commBucket commKind = iota // all-reduce fusion bucket idx
	commSparse                 // AllGatherv route idx
	commPS                     // parameter-server push for route idx
	commFlush                  // report first error, reset, ack
)

// commTask is one unit of synchronization work handed to a worker's comm
// goroutine. Tasks carry their gradient pointers so the comm goroutine
// never reads the executor's GradSet maps, which the compute goroutine
// keeps mutating during the backward sweep.
type commTask struct {
	kind   commKind
	idx    int
	dense  *tensor.Dense
	sparse *tensor.Sparse
}

// phaseTimes is one worker's per-step phase breakdown. compute and wait
// are written by the worker goroutine, comm by its comm goroutine; the
// flush ack orders comm's writes before the worker's read.
type phaseTimes struct {
	compute time.Duration // forward+backward wall clock
	comm    time.Duration // comm goroutine busy time
	wait    time.Duration // drain time after compute ended (exposed comm)
}

// PhaseStats is the per-step phase breakdown of the slowest worker:
// Compute is graph execution, Comm is synchronization busy time, and
// SyncWait is the part of Comm that was NOT hidden under compute — the
// time the worker sat waiting for its comm goroutine to drain after the
// backward pass finished. Comm−SyncWait is therefore the overlap won by
// dispatching synchronization mid-backprop.
type PhaseStats struct {
	Compute  time.Duration
	Comm     time.Duration
	SyncWait time.Duration
}

// aggSlot collects one machine's worker gradients for one variable in one
// step; the last worker to arrive acts as the machine's local chief and
// pushes the merged gradient (§5: "a worker in the machine becomes a local
// chief worker to collect gradients within a machine and send them to
// servers"). Slots are resolved to (route, machine) integer indices at
// build time and reset in place between steps, so the hot loop never
// touches a map or formats a key.
//
// Gradients park in per-local-GPU entries and the chief merges them in
// GPU-rank order, NOT arrival order: float32 addition is commutative but
// not associative, so an arrival-order fold would make the merged
// gradient depend on goroutine scheduling — and wire jitter would make a
// TCP run drift from the in-process run in the last ulp. Rank-ordered
// merging keeps the loss trajectory bitwise identical across runs and
// deployment modes. Parking the pointers is safe: they stay valid until
// the owning worker's next backward pass, which cannot start before the
// current synchronous step completes.
type aggSlot struct {
	mu        sync.Mutex
	got       int
	sparse    []*tensor.Sparse // [localGPU] this step's sparse gradients
	denseSrcs []*tensor.Dense  // [localGPU] this step's dense gradients
	dense     *tensor.Dense    // preallocated merge buffer (dense variables)
}

// Trainer executes synchronized data-parallel steps over persistent
// workers — all of them in single-process mode, one machine's share in
// distributed mode.
type Trainer struct {
	g        *graph.Graph
	opt      Options
	workers  int
	machines int

	// Transport layout: the fabric, which worker ranks and machines this
	// process hosts, and whether any endpoint is remote.
	fab          transport.Fabric
	topo         transport.Topology
	dist         bool
	localWorkers []int  // ascending global ranks hosted here
	isLocalW     []bool // [w]
	localMachine []bool // [m]
	// Worker geometry resolved at build time so the push hot path never
	// scans the resource layout: worker w runs on machine
	// workerMachine[w] as its localGPU[w]-th GPU; machineGPUs[m] is
	// machine m's GPU count.
	workerMachine []int
	localGPU      []int
	machineGPUs   []int

	// Per-worker state; slices are indexed by global worker rank with nil
	// entries for workers hosted by other agents.
	execs    []*graph.Exec
	replicas []*arrt.Replica
	comms    []*collective.Comm
	arOpts   []optim.Optimizer

	servers []*psrt.Server // one per LOCAL machine; nil elsewhere or when no PS variables
	// nsHandles[m] is this trainer's namespace registration handle on
	// machine m's resident server (resident mode only, nil otherwise);
	// variable registration, resharding, and checkpoint slot metadata go
	// through it so they carry the tenant's config.
	nsHandles []*psrt.Namespace
	// ps[w][m] is worker w's endpoint for machine m's server: the server
	// itself when colocated, a psrt.Client stub over the conduit when
	// remote. Non-nil only for local workers (and only when PS routes
	// exist).
	ps     [][]psrt.Endpoint
	routes []varRoute
	// routeIdx resolves a variable name to its route index; read-only
	// after New, so the gradient-ready callback can use it concurrently.
	routeIdx map[string]int

	// Fusion schedule (dense AllReduce routes only).
	buckets  []fuseBucket
	bucketOf []int             // [ri] -> bucket index, -1 for non-fused routes
	fuseBufs [][]*tensor.Dense // [w][b]: flat per-worker fusion buffers
	// fuseViews[w][ri] is a zero-copy view shaped like route ri's variable
	// into worker w's fusion buffer; the apply/clip paths read aggregated
	// gradients through it.
	fuseViews [][]*tensor.Dense
	agvTags   []string // [ri]: precomputed AllGatherv tag, "" for others
	// Top-k error-feedback state, allocated only when
	// Compression.DenseTopK > 0: fuseResid[w][b] is worker w's residual
	// for bucket b (what its selections have not shipped yet), and
	// topkScratch[w] is the selection workspace of w's comm goroutine.
	fuseResid   [][]*tensor.Dense
	topkScratch []collective.TopKScratch
	// compressDense gates the compressed bucket path in commLoop.
	compressDense bool

	// slots[ri][m] is the local-aggregation slot for route ri on machine
	// m; merge buffers exist only for machines hosted here.
	slots [][]aggSlot
	// slotViews[ri][m][pi] is a zero-copy partition view into
	// slots[ri][m].dense, precomputed for dense variables.
	slotViews [][][]*tensor.Dense
	// pullReqs[w][m] is the batched pull request list worker w issues to
	// server m at the top of each step; destinations are zero-copy views
	// into the worker's replica storage.
	pullReqs [][][]psrt.PullReq
	// psServers[ri] lists the servers hosting route ri's partitions (in
	// first-appearance order); psParts[ri][k] are the partition indices
	// owned by psServers[ri][k].
	psServers [][]int
	psParts   [][][]int
	// arSparse[w][ri] holds worker w's AllGatherv-aggregated gradient for
	// route ri within a step (indexed, not keyed, to avoid per-step maps).
	arSparse [][]*tensor.Sparse

	inputs []*graph.Node // the graph's input nodes, for feed validation

	bytesPushed atomic.Int64
	wireBase    transport.Stats // fabric counters at the top of the step
	lastWire    transport.Stats // wire bytes moved during the last step

	tasks   []chan stepTask // one per persistent worker
	done    chan stepResult
	lossBuf []float64 // per-worker losses, summed in worker order
	// lossGather[w] is worker w's scratch for the distributed loss
	// exchange (one slot per global worker, filled in rank order).
	lossGather [][]float64

	// Overlap runtime: one comm goroutine per worker (ordered collectives
	// and PS pushes) plus one puller per (worker, server).
	comm          []chan commTask
	commAck       []chan error
	pullCh        [][]chan int64      // [w][m]: minVersion for this step's pull
	pullDone      []chan error        // [w], buffered to machines
	bucketPending [][]int             // [w][b]: routes not yet copied this step
	psDenseReqs   [][]psrt.DensePush  // [w] scratch, reused across pushes
	psSparseReqs  [][]psrt.SparsePush // [w] scratch

	serveWG sync.WaitGroup // psrt.ServeConduit loops for remote workers

	phases    []phaseTimes // [w], reset by the worker each step
	lastPhase PhaseStats

	closeOnce sync.Once
	closed    atomic.Bool
	step      int

	// stepHook, when the fabric implements SetStep(int) (the chaos
	// fault-injection wrapper), is invoked at the top of every Step so
	// step-indexed faults fire deterministically. Nil otherwise.
	stepHook func(int)
}

// psAdmin is the variable-administration surface of a PS host: the
// server itself for private servers, the tenant's namespace handle (which
// qualifies names and attaches the tenant config) in resident mode.
type psAdmin interface {
	AddVar(name string, init *tensor.Dense, ranges []tensor.RowRange, owned []int, sparse bool) error
	ReshardVar(name string, init *tensor.Dense, ranges []tensor.RowRange, owned []int, sparse bool, slots []*tensor.Dense, version int64) error
	SlotNames() []string
}

// psAdmin returns machine m's administration handle. Callers pass
// UNqualified variable names through it — qualification is the handle's
// concern — which keeps checkpoint records namespace-free and therefore
// portable between resident and private deployments.
func (t *Trainer) psAdmin(m int) psAdmin {
	if t.nsHandles != nil && t.nsHandles[m] != nil {
		return t.nsHandles[m]
	}
	return t.servers[m]
}

// dropResidentNamespaces releases this trainer's namespaces from the
// resident fleet (no-op otherwise). Idempotent, and deliberately
// non-mutating: the fabric-death watcher reads t.nsHandles concurrently,
// and aborting an already-dropped namespace is harmless.
func (t *Trainer) dropResidentNamespaces() {
	for _, ns := range t.nsHandles {
		if ns != nil {
			ns.Drop()
		}
	}
}

// recoverClosed converts a recovered transport.ClosedPanic — the typed
// panic every collective/PS path raises when the fabric dies under it —
// into an error at *errp, preserving the first one. Any other panic
// value is a genuine bug and propagates. Use as:
//
//	defer t.recoverClosed(&err)
func (t *Trainer) recoverClosed(errp *error) {
	p := recover()
	if p == nil {
		return
	}
	cp, ok := p.(transport.ClosedPanic)
	if !ok {
		panic(p)
	}
	if *errp == nil {
		*errp = cp.Err
	}
}

// New builds a trainer for graph g under the given plan and resources and
// starts its persistent runtime. Call Close to stop the goroutines when
// the trainer is no longer needed.
func New(g *graph.Graph, opts Options) (*Trainer, error) {
	// The trainer owns opts.Fabric from the moment New is called —
	// including these pre-build validations: a caller that dialed a TCP
	// fabric must not be left holding live sockets after a failed New.
	failEarly := func(err error) (*Trainer, error) {
		if opts.Fabric != nil {
			opts.Fabric.Close()
		}
		return nil, err
	}
	if opts.Plan == nil {
		return failEarly(fmt.Errorf("transform: nil plan"))
	}
	if err := opts.Resource.Validate(); err != nil {
		return failEarly(err)
	}
	if opts.NewOptimizer == nil {
		return failEarly(fmt.Errorf("transform: NewOptimizer is required"))
	}
	vars := g.Variables()
	if len(opts.Plan.Assignments) != len(vars) {
		return failEarly(fmt.Errorf("transform: plan has %d assignments for %d variables",
			len(opts.Plan.Assignments), len(vars)))
	}
	if opts.Plan.Arch == core.ArchAR && opts.Async {
		return failEarly(fmt.Errorf("transform: async training requires PS-managed variables"))
	}
	if err := opts.Compression.Validate(); err != nil {
		return failEarly(err)
	}
	if opts.Resident != nil {
		// Resident fleets are an in-daemon construct: remote agents have no
		// conduit to a fleet server, and a per-tenant namespace abort must
		// never be escalated to a whole-fleet one by the fabric watcher.
		if opts.Fabric != nil {
			return failEarly(fmt.Errorf("transform: resident PS fleet requires single-process mode"))
		}
		if opts.PSNamespace == "" {
			return failEarly(fmt.Errorf("transform: resident PS fleet requires a namespace"))
		}
		if opts.Resident.Machines() < opts.Resource.NumMachines() {
			return failEarly(fmt.Errorf("transform: cluster spans %d machines, resident fleet has %d",
				opts.Resource.NumMachines(), opts.Resident.Machines()))
		}
	} else if opts.PSNamespace != "" {
		return failEarly(fmt.Errorf("transform: PS namespace %q without a resident fleet", opts.PSNamespace))
	}

	workers := opts.Resource.TotalGPUs()
	machines := opts.Resource.NumMachines()
	topo := transport.Topology{
		Workers:         workers,
		Machines:        machines,
		MachineOfWorker: opts.Resource.WorkerMachines(),
	}
	fab := opts.Fabric
	if fab == nil {
		fab = transport.NewInproc(topo)
	}
	// From here on the trainer owns the fabric: tear it down on any
	// build error so a failed New leaks neither sockets nor goroutines.
	fail := func(err error) (*Trainer, error) {
		fab.Close()
		return nil, err
	}
	if ft := fab.Topology(); ft.Workers != workers || ft.Machines != machines {
		return fail(fmt.Errorf("transform: %w: fabric topology %d workers / %d machines, cluster has %d / %d",
			errs.ErrTopologyMismatch, ft.Workers, ft.Machines, workers, machines))
	} else if ft.MachineOfWorker != nil {
		// The worker→machine layout must agree too: slots, pull routing,
		// and serving loops all assume fabric locality matches the
		// resource layout.
		for w, m := range topo.MachineOfWorker {
			if ft.MachineOfWorker[w] != m {
				return fail(fmt.Errorf("transform: %w: fabric places worker %d on machine %d, cluster on %d",
					errs.ErrTopologyMismatch, w, ft.MachineOfWorker[w], m))
			}
		}
	}

	t := &Trainer{
		g: g, opt: opts, workers: workers, machines: machines,
		fab: fab, topo: topo, dist: fab.Distributed(),
	}
	t.isLocalW = make([]bool, workers)
	for w := 0; w < workers; w++ {
		if fab.Local(w) {
			t.isLocalW[w] = true
			t.localWorkers = append(t.localWorkers, w)
		}
	}
	t.localMachine = make([]bool, machines)
	for m := 0; m < machines; m++ {
		t.localMachine[m] = fab.Local(topo.ServerEndpoint(m))
	}
	t.workerMachine = topo.MachineOfWorker
	t.localGPU = make([]int, workers)
	t.machineGPUs = make([]int, machines)
	for w, m := range t.workerMachine {
		t.localGPU[w] = t.machineGPUs[m]
		t.machineGPUs[m]++
	}
	if len(t.localWorkers) == 0 {
		return fail(fmt.Errorf("transform: fabric hosts no worker of this cluster"))
	}

	// Replicate the graph: one executor per local GPU (§4.3: "main
	// computation operations ... are replicated as many as the number of
	// GPUs"; remote GPUs are replicated by their own agents).
	t.execs = make([]*graph.Exec, workers)
	t.arOpts = make([]optim.Optimizer, workers)
	t.replicas = make([]*arrt.Replica, workers)
	t.comms = make([]*collective.Comm, workers)
	for _, w := range t.localWorkers {
		e, err := graph.NewExec(g)
		if err != nil {
			return fail(err)
		}
		t.execs[w] = e
		t.arOpts[w] = opts.NewOptimizer()
		t.comms[w] = collective.NewComm(fab.Conduit(w), workers)
		t.replicas[w] = arrt.New(t.comms[w], opts.DenseAgg, opts.SparseAgg)
	}

	// Route variables.
	anyPS := false
	t.routeIdx = make(map[string]int, len(vars))
	for i, v := range vars {
		a := opts.Plan.Assignments[i]
		if a.Name != v.Name {
			return fail(fmt.Errorf("transform: plan assignment %d is %q, variable is %q", i, a.Name, v.Name))
		}
		r := varRoute{v: v, assign: a}
		if a.Method == core.MethodPS {
			anyPS = true
			r.ranges = tensor.PartitionRows(v.Shape[0], a.Partitions)
			r.psName = psrt.QualifiedName(opts.PSNamespace, v.Name)
		}
		t.routeIdx[v.Name] = len(t.routes)
		t.routes = append(t.routes, r)
	}

	// Launch one server per local machine if needed (§4.2: "if sparse
	// variables are included in the graph, Parallax launches a server
	// process for each machine"), and one endpoint row per local worker:
	// direct calls to colocated servers, wire stubs for remote ones.
	if anyPS {
		sources := workers
		if opts.LocalAggregation {
			sources = machines
		}
		mode := psrt.Sync
		if opts.Async {
			mode = psrt.Async
		}
		psCfg := func() psrt.Config {
			return psrt.Config{
				Sources:      sources,
				Optimizer:    opts.NewOptimizer(),
				DenseAgg:     opts.DenseAgg,
				SparseAgg:    opts.SparseAgg,
				Mode:         mode,
				DeferUpdates: opts.ClipNorm > 0 && !opts.Async,
				MeanDivisor:  workers,
			}
		}
		// failPS releases any namespaces already registered on the
		// resident fleet before tearing down; a failed New must not leave
		// the tenant's name claimed on the daemon's servers.
		failPS := func(err error) (*Trainer, error) {
			t.dropResidentNamespaces()
			return fail(err)
		}
		t.servers = make([]*psrt.Server, machines)
		if opts.Resident != nil {
			// Join the resident fleet under the tenant namespace instead of
			// launching private servers; each machine's namespace carries
			// its own optimizer instance, exactly like a private server
			// would.
			t.nsHandles = make([]*psrt.Namespace, machines)
			for m := 0; m < machines; m++ {
				srv := opts.Resident.Server(m)
				ns, err := srv.Namespace(opts.PSNamespace, psCfg())
				if err != nil {
					return failPS(err)
				}
				t.servers[m] = srv
				t.nsHandles[m] = ns
			}
		} else {
			for m := 0; m < machines; m++ {
				if !t.localMachine[m] {
					continue
				}
				srv, err := psrt.NewServer(psCfg())
				if err != nil {
					return fail(err)
				}
				t.servers[m] = srv
			}
		}
		for _, r := range t.routes {
			if r.assign.Method != core.MethodPS {
				continue
			}
			owned := make(map[int][]int) // machine -> partition indices
			for pi, srv := range r.assign.Servers {
				owned[srv] = append(owned[srv], pi)
			}
			// Machine-ordered registration, not map-ordered: each server's
			// own state is independent, but the registration sequence is
			// part of the §8 deterministic startup discipline.
			for m := 0; m < machines; m++ {
				parts, ok := owned[m]
				if !ok || t.servers[m] == nil {
					continue // not a PS machine, or hosted by another agent
				}
				if err := t.psAdmin(m).AddVar(r.v.Name, r.v.Init, r.ranges, parts, r.assign.Sparse); err != nil {
					return failPS(err)
				}
			}
		}
		t.ps = make([][]psrt.Endpoint, workers)
		for _, w := range t.localWorkers {
			row := make([]psrt.Endpoint, machines)
			for m := 0; m < machines; m++ {
				if t.servers[m] != nil {
					row[m] = t.servers[m]
				} else {
					cl := psrt.NewClient(fab.Conduit(w), topo.ServerEndpoint(m))
					cl.SetCompression(opts.Compression.PSDense, opts.Compression.PSSparse,
						opts.Compression.DeltaIndex)
					row[m] = cl
				}
			}
			t.ps[w] = row
		}
	}

	t.buildFusion()
	t.buildPSRouting()
	t.buildSlots()
	t.buildPullReqs()
	for _, n := range g.Nodes() {
		if n.Kind == graph.OpInput {
			t.inputs = append(t.inputs, n)
		}
	}

	// Per-worker indexed scratch for AllGatherv aggregates and tags.
	t.arSparse = make([][]*tensor.Sparse, workers)
	for _, w := range t.localWorkers {
		t.arSparse[w] = make([]*tensor.Sparse, len(t.routes))
	}
	t.agvTags = make([]string, len(t.routes))
	for ri, r := range t.routes {
		if r.assign.Method == core.MethodAllGatherv {
			t.agvTags[ri] = arrt.SparseTag(r.v.Name)
		}
	}

	// Distributed startup: broadcast worker 0's AR-managed variable
	// values so replicas across agents start bit-identical even if an
	// agent's initializer drifted, and to rendezvous all agents before
	// the first step. A peer dying during this exchange fails New with
	// its attributed error instead of crashing.
	if t.dist {
		var wg sync.WaitGroup
		var initMu sync.Mutex
		var initErr error
		for _, w := range t.localWorkers {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				err := func() (err error) {
					defer t.recoverClosed(&err)
					for _, r := range t.routes {
						if r.assign.Method == core.MethodPS {
							continue
						}
						t.replicas[w].BroadcastInit(r.v.Name, t.execs[w].VarValue(r.v.Name), 0)
					}
					return nil
				}()
				if err != nil {
					initMu.Lock()
					if initErr == nil {
						initErr = err
					}
					initMu.Unlock()
				}
			}(w)
		}
		wg.Wait()
		if initErr != nil {
			if fe := fab.Err(); fe != nil {
				initErr = fmt.Errorf("transform: startup broadcast: %w", fe)
			}
			return fail(initErr)
		}
	}

	// Start the persistent runtime: compute workers, comm goroutines,
	// per-(worker, server) pullers, and serving loops answering remote
	// workers' PS traffic against the local servers.
	t.tasks = make([]chan stepTask, workers)
	t.done = make(chan stepResult, workers)
	t.comm = make([]chan commTask, workers)
	t.commAck = make([]chan error, workers)
	t.pullCh = make([][]chan int64, workers)
	t.pullDone = make([]chan error, workers)
	t.psDenseReqs = make([][]psrt.DensePush, workers)
	t.psSparseReqs = make([][]psrt.SparsePush, workers)
	t.phases = make([]phaseTimes, workers)
	t.lossGather = make([][]float64, workers)
	for _, w := range t.localWorkers {
		t.tasks[w] = make(chan stepTask)
		t.comm[w] = make(chan commTask, 4+len(t.buckets)+len(t.routes))
		t.commAck[w] = make(chan error)
		t.pullCh[w] = make([]chan int64, machines)
		t.pullDone[w] = make(chan error, machines)
		if t.dist {
			t.lossGather[w] = make([]float64, workers)
		}
		for m := 0; m < machines; m++ {
			if t.ps == nil {
				continue
			}
			t.pullCh[w][m] = make(chan int64)
			go t.pullLoop(w, m)
		}
		go t.commLoop(w)
		go t.workerLoop(w)
	}
	if anyPS && t.dist {
		for m := 0; m < machines; m++ {
			if t.servers[m] == nil {
				continue
			}
			srvConduit := fab.Conduit(topo.ServerEndpoint(m))
			for w := 0; w < workers; w++ {
				if t.isLocalW[w] {
					continue
				}
				t.serveWG.Add(1)
				go func(srv *psrt.Server, w int) {
					defer t.serveWG.Done()
					// A reply hitting a dead fabric raises ClosedPanic;
					// the serving loop just ends (the requester is gone).
					var err error
					defer t.recoverClosed(&err)
					psrt.ServeConduit(srv, srvConduit, w)
				}(t.servers[m], w)
			}
		}
	}
	if anyPS {
		// The synchronous protocol's version waits are satisfied by peer
		// pushes, so a dead peer would park local workers (and serving
		// loops answering other survivors) inside a server cond.Wait
		// forever — a condition variable the fabric cannot cancel. Watch
		// for fabric death and abort every local server's waits with the
		// attributed failure.
		go func() {
			<-fab.Done()
			err := fab.Err()
			if err == nil {
				err = fmt.Errorf("psrt: transport %w", errs.ErrClosed)
			}
			if t.nsHandles != nil {
				// Resident mode: the servers are shared with other tenants,
				// so scope the abort to this trainer's namespace.
				for _, ns := range t.nsHandles {
					if ns != nil {
						ns.Abort(err)
					}
				}
				return
			}
			for _, srv := range t.servers {
				if srv != nil {
					srv.Abort(err)
				}
			}
		}()
	}
	// The chaos fault-injection wrapper exposes SetStep so step-indexed
	// faults fire at deterministic points; a plain fabric has no hook.
	if h, ok := fab.(interface{ SetStep(int) }); ok {
		t.stepHook = h.SetStep
	}
	return t, nil
}

// buildFusion packs the dense AllReduce routes into size-capped fusion
// buckets and preallocates, per local worker, one contiguous buffer per
// bucket plus a shaped view per route. Routes pack in declaration order;
// since gradients become ready in *reverse* declaration order, a bucket's
// completion is triggered by its first route, and buckets complete
// back-to-front — last layers first, exactly the order that maximizes
// overlap with the remaining backward compute.
func (t *Trainer) buildFusion() {
	capBytes := t.opt.FusionBytes
	if capBytes == 0 {
		capBytes = defaultFusionBytes
	}
	t.bucketOf = make([]int, len(t.routes))
	for i := range t.bucketOf {
		t.bucketOf[i] = -1
	}
	bi := -1
	var curBytes int64
	for ri, r := range t.routes {
		if r.assign.Method != core.MethodAllReduce {
			continue
		}
		vb := r.v.Bytes()
		if bi < 0 || capBytes < 0 || (curBytes > 0 && curBytes+vb > capBytes) {
			t.buckets = append(t.buckets, fuseBucket{})
			bi = len(t.buckets) - 1
			curBytes = 0
		}
		b := &t.buckets[bi]
		b.routes = append(b.routes, ri)
		b.elems += int(r.v.Elements())
		t.bucketOf[ri] = bi
		curBytes += vb
	}
	for i := range t.buckets {
		t.buckets[i].tags = collective.TagsFor("fuse/" + strconv.Itoa(i))
	}
	t.fuseBufs = make([][]*tensor.Dense, t.workers)
	t.fuseViews = make([][]*tensor.Dense, t.workers)
	t.bucketPending = make([][]int, t.workers)
	t.compressDense = t.opt.Compression.Dense != transport.CodecF32 || t.opt.Compression.DenseTopK > 0
	topk := t.opt.Compression.DenseTopK > 0
	if topk {
		t.fuseResid = make([][]*tensor.Dense, t.workers)
		t.topkScratch = make([]collective.TopKScratch, t.workers)
	}
	for _, w := range t.localWorkers {
		t.fuseBufs[w] = make([]*tensor.Dense, len(t.buckets))
		t.fuseViews[w] = make([]*tensor.Dense, len(t.routes))
		t.bucketPending[w] = make([]int, len(t.buckets))
		if topk {
			t.fuseResid[w] = make([]*tensor.Dense, len(t.buckets))
		}
		for i := range t.buckets {
			b := &t.buckets[i]
			buf := tensor.NewDense(b.elems)
			t.fuseBufs[w][i] = buf
			if topk {
				t.fuseResid[w][i] = tensor.NewDense(b.elems)
			}
			off := 0
			for _, ri := range b.routes {
				n := int(t.routes[ri].v.Elements())
				t.fuseViews[w][ri] = tensor.FromSlice(
					buf.Data()[off:off+n:off+n], t.routes[ri].v.Shape...)
				off += n
			}
		}
	}
}

// buildPSRouting groups each PS route's partitions by owning server, so
// the push path issues one batched call per server instead of one per
// partition.
func (t *Trainer) buildPSRouting() {
	t.psServers = make([][]int, len(t.routes))
	t.psParts = make([][][]int, len(t.routes))
	for ri, r := range t.routes {
		if r.assign.Method != core.MethodPS {
			continue
		}
		pos := make(map[int]int) // server -> index in psServers[ri]
		for pi := range r.ranges {
			srv := r.assign.Servers[pi]
			k, ok := pos[srv]
			if !ok {
				k = len(t.psServers[ri])
				pos[srv] = k
				t.psServers[ri] = append(t.psServers[ri], srv)
				t.psParts[ri] = append(t.psParts[ri], nil)
			}
			t.psParts[ri][k] = append(t.psParts[ri][k], pi)
		}
	}
}

// buildSlots preallocates the per-(route, machine) local-aggregation slots
// and, for dense variables, their merge buffers and partition views.
// Merge buffers exist only for machines whose workers run here.
func (t *Trainer) buildSlots() {
	t.slots = make([][]aggSlot, len(t.routes))
	t.slotViews = make([][][]*tensor.Dense, len(t.routes))
	if !t.opt.LocalAggregation {
		return
	}
	for ri, r := range t.routes {
		if r.assign.Method != core.MethodPS {
			continue
		}
		t.slots[ri] = make([]aggSlot, t.machines)
		if r.assign.Sparse {
			for m := 0; m < t.machines; m++ {
				if t.localMachine[m] {
					t.slots[ri][m].sparse = make([]*tensor.Sparse, t.opt.Resource.GPUsPerMachine(m))
				}
			}
			continue
		}
		t.slotViews[ri] = make([][]*tensor.Dense, t.machines)
		for m := 0; m < t.machines; m++ {
			if !t.localMachine[m] {
				continue
			}
			t.slots[ri][m].denseSrcs = make([]*tensor.Dense, t.opt.Resource.GPUsPerMachine(m))
			buf := tensor.NewDense(r.v.Shape...)
			t.slots[ri][m].dense = buf
			views := make([]*tensor.Dense, len(r.ranges))
			for pi, rr := range r.ranges {
				views[pi] = buf.SliceRows(rr.Start, rr.End)
			}
			t.slotViews[ri][m] = views
		}
	}
}

// buildPullReqs precomputes, per local worker and server, the batched
// pull request list whose destinations are zero-copy views into the
// worker's replica storage. Requests for one variable stay adjacent so
// the server amortizes its lookup.
func (t *Trainer) buildPullReqs() {
	t.pullReqs = make([][][]psrt.PullReq, t.workers)
	for _, w := range t.localWorkers {
		t.pullReqs[w] = make([][]psrt.PullReq, t.machines)
		for _, r := range t.routes {
			if r.assign.Method != core.MethodPS {
				continue
			}
			val := t.execs[w].VarValue(r.v.Name)
			for pi, rr := range r.ranges {
				if rr.Len() == 0 {
					continue
				}
				m := r.assign.Servers[pi]
				t.pullReqs[w][m] = append(t.pullReqs[w][m], psrt.PullReq{
					Name: r.psName, Part: pi, Dst: val.SliceRows(rr.Start, rr.End),
				})
			}
		}
	}
}

// Workers returns the number of model replicas (GPUs) across the whole
// cluster.
func (t *Trainer) Workers() int { return t.workers }

// LocalWorkers returns the global ranks of the workers this trainer
// hosts (all of them in single-process mode), in ascending order. The
// returned slice must not be mutated.
func (t *Trainer) LocalWorkers() []int { return t.localWorkers }

// Distributed reports whether the trainer spans agent processes.
func (t *Trainer) Distributed() bool { return t.dist }

// BytesPushedLastStep returns how many gradient payload bytes the workers
// handed to the synchronization layer (ring collectives and parameter
// servers) during the most recent Step. Valid after Step returns.
func (t *Trainer) BytesPushedLastStep() int64 { return t.bytesPushed.Load() }

// WireStatsLastStep returns the wire bytes this process sent and
// received during the most recent Step (zero on the in-process fabric,
// framed socket bytes on TCP). Valid after Step returns; serving-loop
// traffic for remote workers lands in the step it occurs in.
func (t *Trainer) WireStatsLastStep() (sent, recv int64) {
	return t.lastWire.SentBytes, t.lastWire.RecvBytes
}

// WireCompressionLastStep returns the compression accounting of the most
// recent Step: raw is the bytes the step's compressed frames would have
// occupied as exact f32, comp their actual on-wire size. Both are zero
// under CompressionNone or on the in-process fabric. Valid after Step
// returns.
func (t *Trainer) WireCompressionLastStep() (raw, comp int64) {
	return t.lastWire.SentBytesRaw, t.lastWire.SentBytesCompressed
}

// PhaseStatsLastStep returns the previous step's phase breakdown, taken
// from the slowest worker per phase. Valid after Step returns.
func (t *Trainer) PhaseStatsLastStep() PhaseStats { return t.lastPhase }

// Buckets returns the number of fused dense-AllReduce collectives the
// schedule runs per step (0 when the plan has no AllReduce variables).
func (t *Trainer) Buckets() int { return len(t.buckets) }

// Close stops the persistent goroutines (workers, comm, pullers, serving
// loops) and tears the fabric down. In distributed mode it first runs a
// cross-agent barrier so no agent unplugs while a peer's final-step
// traffic is still in flight. The trainer must not be stepped afterwards;
// Close is idempotent.
func (t *Trainer) Close() {
	t.closeOnce.Do(func() {
		t.closed.Store(true)
		if t.dist {
			done := make(chan struct{})
			go func() {
				var wg sync.WaitGroup
				for _, w := range t.localWorkers {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						t.comms[w].CloseBarrier("close")
					}(w)
				}
				wg.Wait()
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(closeBarrierTimeout): //parallax:allow(detsource) -- teardown liveness bound after the last step; never in step control flow
				// A peer died; proceed with teardown.
			}
		}
		for _, ch := range t.tasks {
			if ch != nil {
				close(ch)
			}
		}
		for _, ch := range t.comm {
			if ch != nil {
				close(ch)
			}
		}
		for _, per := range t.pullCh {
			for _, ch := range per {
				if ch != nil {
					close(ch)
				}
			}
		}
		t.fab.Close()
		// Closing the fabric turns the serving loops' RecvPS into nil, so
		// after an orderly barrier they exit immediately. If a peer died
		// mid-protocol a loop can be parked inside a server cond.Wait
		// (a pull waiting on an update that will never land), which the
		// fabric cannot cancel — bound the wait so Close still returns.
		done := make(chan struct{})
		go func() {
			t.serveWG.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second): //parallax:allow(detsource) -- teardown liveness bound after the last step; never in step control flow
		}
		// Resident mode: the fleet servers outlive this trainer, so hand
		// the tenant's variables (and namespace name) back to the fleet.
		t.dropResidentNamespaces()
	})
}

// Repartition reshards the PS-managed partition-target variables to
// newPlan's partitioning without restarting the runtime — the live side
// of the §3.2 partition search (DESIGN.md §9). newPlan must describe the
// same variables with the same methods; only Partitions/Servers may
// differ. The protocol is a between-steps stop-the-world exchange:
//
//  1. Gather: every agent assembles, for each resharded variable, the
//     full value and the full optimizer slot state by snapshot-reading
//     every old partition from its owning endpoint — direct calls for
//     colocated partitions, wire round trips (psrt.Client / PSSnapshot)
//     for remote ones. The snapshot's version wait doubles as the drain
//     barrier: it blocks until all of the previous step's pushes have
//     been applied, wherever they came from.
//  2. Barrier: no agent may install while a peer still reads the old
//     partitions.
//  3. Install: each agent reshards its LOCAL servers
//     (psrt.Server.ReshardVar) — values and slot rows re-sliced to the
//     new ranges, versions seeded to the step counter — and rebuilds its
//     routing tables (partition ranges, per-server push groups,
//     local-aggregation slots and views, batched pull requests).
//  4. Barrier: no agent may step before every peer serves the new
//     partitioning.
//
// Because every row's aggregation and update are per-row operations, the
// migration is lossless and the training trajectory is unchanged: a run
// that reshards from P to P′ mid-run continues bit-identically to a run
// that used P′ from the start (pinned by the repartition tests). In
// distributed mode every agent must call Repartition with the same plan
// between the same steps — the runner's tuning phase derives its
// decisions from collectively agreed measurements to guarantee exactly
// that. Repartition must not run concurrently with Step; on error the
// cluster fail-stops like a failed step.
func (t *Trainer) Repartition(newPlan *core.Plan) error {
	if t.closed.Load() {
		return fmt.Errorf("transform: repartition on %w trainer", errs.ErrClosed)
	}
	if newPlan == nil {
		return fmt.Errorf("transform: repartition with nil plan")
	}
	if len(newPlan.Assignments) != len(t.routes) {
		return fmt.Errorf("transform: repartition plan has %d assignments for %d routes",
			len(newPlan.Assignments), len(t.routes))
	}
	changed := make([]bool, len(t.routes))
	any := false
	for ri := range t.routes {
		r := &t.routes[ri]
		na := &newPlan.Assignments[ri]
		if na.Name != r.v.Name || na.Method != r.assign.Method || na.Sparse != r.assign.Sparse {
			return fmt.Errorf("transform: repartition may only change partitioning, route %q differs in method or kind", r.v.Name)
		}
		if r.assign.Method != core.MethodPS {
			continue
		}
		if na.Partitions < 1 || len(na.Servers) != na.Partitions {
			return fmt.Errorf("transform: repartition plan for %q has %d servers for %d partitions",
				na.Name, len(na.Servers), na.Partitions)
		}
		if na.Partitions != r.assign.Partitions || !slices.Equal(na.Servers, r.assign.Servers) {
			changed[ri] = true
			any = true
		}
	}
	if !any {
		t.opt.Plan = newPlan
		return nil
	}

	minV := int64(t.step)
	if t.opt.Async {
		minV = 0
	}
	w0 := t.localWorkers[0]
	type migrated struct {
		value *tensor.Dense
		slots []*tensor.Dense
	}
	full := make([]migrated, len(t.routes))
	for ri := range t.routes {
		if !changed[ri] {
			continue
		}
		r := &t.routes[ri]
		g := migrated{value: tensor.NewDense(r.v.Shape...)}
		width := g.value.RowWidth()
		first := true
		for pi, rr := range r.ranges {
			if rr.Len() == 0 {
				continue
			}
			val, slots, err := t.ps[w0][r.assign.Servers[pi]].SnapshotPart(r.psName, pi, minV)
			if err != nil {
				return t.failStep(err)
			}
			if val.NumElements() != rr.Len()*width {
				return t.failStep(fmt.Errorf("transform: snapshot of %s/%d has %d elements, partition has %d",
					r.v.Name, pi, val.NumElements(), rr.Len()*width))
			}
			copy(g.value.Data()[rr.Start*width:rr.End*width], val.Data())
			if first {
				for range slots {
					g.slots = append(g.slots, tensor.NewDense(r.v.Shape...))
				}
				first = false
			}
			if len(slots) != len(g.slots) {
				return t.failStep(fmt.Errorf("transform: snapshot of %s/%d has %d slots, partition 0 had %d",
					r.v.Name, pi, len(slots), len(g.slots)))
			}
			for k, sv := range slots {
				if sv.NumElements() != rr.Len()*width {
					return t.failStep(fmt.Errorf("transform: snapshot slot %d of %s/%d has %d elements, partition has %d",
						k, r.v.Name, pi, sv.NumElements(), rr.Len()*width))
				}
				copy(g.slots[k].Data()[rr.Start*width:rr.End*width], sv.Data())
			}
		}
		full[ri] = g
	}
	t.repartitionBarrier("repart/gather")

	for ri := range t.routes {
		if !changed[ri] {
			continue
		}
		r := &t.routes[ri]
		na := newPlan.Assignments[ri]
		newRanges := tensor.PartitionRows(r.v.Shape[0], na.Partitions)
		for m := 0; m < t.machines; m++ {
			if t.servers[m] == nil {
				continue
			}
			var owned []int
			for pi, srv := range na.Servers {
				if srv == m {
					owned = append(owned, pi)
				}
			}
			if err := t.psAdmin(m).ReshardVar(r.v.Name, full[ri].value, newRanges,
				owned, r.assign.Sparse, full[ri].slots, minV); err != nil {
				return t.failStep(err)
			}
		}
		r.assign = na
		r.ranges = newRanges
		full[ri] = migrated{}
	}
	t.opt.Plan = newPlan
	t.buildPSRouting()
	t.buildSlots()
	t.buildPullReqs()
	t.repartitionBarrier("repart/install")
	return nil
}

// repartitionBarrier rendezvouses all workers of all agents between the
// resharding phases. Single-process trainers need no barrier (the phases
// run sequentially on one goroutine); distributed ones run the
// dissemination barrier on every local worker's collective endpoint,
// absorbing a fabric-closed panic the way the close barrier does — a
// dead peer then surfaces as a step error instead of a crash.
func (t *Trainer) repartitionBarrier(tag string) {
	if !t.dist {
		return
	}
	var wg sync.WaitGroup
	for _, w := range t.localWorkers {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			t.comms[w].CloseBarrier(tag)
		}(w)
	}
	wg.Wait()
}

// AgreeScalarMax folds a locally measured scalar (a sampled step time)
// into the cluster-wide maximum, identical on every agent: each worker
// all-gathers the value in rank order and the fold is a max, so all
// agents see the same bits and derive the same tuning decisions — the
// property that keeps adaptive repartitioning in lockstep across
// processes. Single-process trainers return the value unchanged. Must
// not run concurrently with Step.
// A non-nil error means the fabric died mid-agreement (peer failure);
// the trainer is torn down fail-stop, exactly like a failed Step.
func (t *Trainer) AgreeScalarMax(v float64) (float64, error) {
	return t.agreeMax("tune", v)
}

// AgreeStop folds a local stop request (a cancelled context) into a
// cluster-wide decision: true as soon as ANY agent wants to stop, and
// identical on every agent — the property that lets a graceful
// cancellation end every agent's step loop at the same boundary instead
// of leaving peers blocked mid-collective against ranks that will never
// dispatch again. Single-process trainers return the local flag
// unchanged. Every agent must call it at the same points (the session
// driver calls it once per step when its context is cancellable); it
// must not run concurrently with Step.
// A non-nil error means the fabric died mid-agreement (peer failure);
// the trainer is torn down fail-stop, exactly like a failed Step.
func (t *Trainer) AgreeStop(stop bool) (bool, error) {
	if !t.dist {
		return stop, nil
	}
	v := 0.0
	if stop {
		v = 1
	}
	m, err := t.agreeMax("stop", v)
	return m >= 1, err
}

// AgreeMembership folds a locally proposed membership-change code into
// the cluster-wide maximum — the admission/departure vote of the
// elastic membership protocol (DESIGN.md §14). The session layer's code
// encoding makes the max fold pick a unique winner from any combination
// of concurrent proposals (0 = no proposal), so every agent derives the
// identical transition. It rides the same all-gather as the other
// agreements: every agent must call it at the same step boundaries, and
// it must not run concurrently with Step. Single-process trainers
// return the proposal unchanged.
// A non-nil error means the fabric died mid-agreement (peer failure);
// the trainer is torn down fail-stop, exactly like a failed Step.
func (t *Trainer) AgreeMembership(v float64) (float64, error) {
	return t.agreeMax("member", v)
}

// Fabric returns the trainer's transport fabric, so the session layer
// can reach fabric-specific surfaces (the elastic join listener). The
// trainer still owns it; callers must not Close it.
func (t *Trainer) Fabric() transport.Fabric { return t.fab }

// agreeMax all-gathers one scalar per worker in rank order under tag
// and folds the cluster-wide maximum, bitwise identical on every agent.
// A fabric death mid-gather fails the step (attributed error) instead
// of crashing.
func (t *Trainer) agreeMax(tag string, v float64) (float64, error) {
	if !t.dist {
		return v, nil
	}
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	for _, w := range t.localWorkers {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			err := func() (err error) {
				defer t.recoverClosed(&err)
				t.replicas[w].GatherScalars(tag, v, t.lossGather[w])
				return nil
			}()
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return 0, t.failStep(firstErr)
	}
	out := t.lossGather[t.localWorkers[0]]
	m := out[0]
	for _, x := range out[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// workerLoop is one persistent worker: it serves step tasks until Close.
func (t *Trainer) workerLoop(w int) {
	for task := range t.tasks[w] {
		loss, err := t.safeWorkerStep(w, task.step, task.feed)
		t.done <- stepResult{worker: w, loss: loss, err: err}
	}
}

// safeWorkerStep runs one worker step, converting a fabric death
// mid-collective (ClosedPanic) into a step error instead of crashing
// the process — the survivors' path to a typed ErrPeerFailed.
func (t *Trainer) safeWorkerStep(w, step int, feed graph.Feed) (loss float64, err error) {
	defer t.recoverClosed(&err)
	return t.workerStep(w, step, feed)
}

// commLoop drains worker w's synchronization tasks. Collectives must be
// issued in the same order on every worker; that holds because tasks are
// enqueued in gradient-ready order, which is the same deterministic
// reverse-declaration order on every replica of the graph. PS pushes
// never block a peer's collective: direct pushes are lock-brief, and a
// wire push's round trip only waits on the remote serving loop.
func (t *Trainer) commLoop(w int) {
	var firstErr error
	for task := range t.comm[w] {
		if task.kind == commFlush {
			t.commAck[w] <- firstErr
			firstErr = nil
			continue
		}
		start := time.Now() //parallax:allow(detsource) -- StepStats phase timing: observability only, never feeds control flow
		if err := t.commTask(w, task); err != nil && firstErr == nil {
			firstErr = err
		}
		t.phases[w].comm += time.Since(start) //parallax:allow(detsource) -- StepStats phase timing: observability only, never feeds control flow
	}
}

// commTask executes one synchronization task; a fabric death inside a
// collective surfaces as an error (recovered ClosedPanic), not a crash.
func (t *Trainer) commTask(w int, task commTask) (err error) {
	defer t.recoverClosed(&err)
	switch task.kind {
	case commBucket:
		if t.compressDense {
			var res []float32
			var scratch *collective.TopKScratch
			if t.fuseResid != nil {
				res = t.fuseResid[w][task.idx].Data()
				scratch = &t.topkScratch[w]
			}
			t.replicas[w].SyncDenseCompressed(t.buckets[task.idx].tags,
				t.fuseBufs[w][task.idx], t.opt.Compression, res, scratch)
		} else {
			t.replicas[w].SyncDenseTagged(t.buckets[task.idx].tags, t.fuseBufs[w][task.idx])
		}
	case commSparse:
		t.arSparse[w][task.idx] = t.replicas[w].SyncSparseTagged(t.agvTags[task.idx], task.sparse)
	case commPS:
		return t.pushPS(w, task.idx, task.dense, task.sparse)
	}
	return nil
}

// pullLoop serves worker w's batched pulls from server m, so the pull
// phase runs concurrently across servers.
func (t *Trainer) pullLoop(w, m int) {
	for minVersion := range t.pullCh[w][m] {
		t.pullDone[w] <- t.pullOnce(w, m, minVersion)
	}
}

// pullOnce is one batched pull; a wire client whose fabric died
// mid-call surfaces as an error (recovered ClosedPanic).
func (t *Trainer) pullOnce(w, m int, minVersion int64) (err error) {
	defer t.recoverClosed(&err)
	return t.ps[w][m].PullManyInto(minVersion, t.pullReqs[w][m])
}

// Step runs one synchronous data-parallel iteration: feeds[w] is worker w's
// shard batch (feeds for workers hosted by other agents are ignored here
// — their agents feed them the identical shards). It returns the mean
// loss across ALL workers: in distributed mode the workers exchange
// per-worker losses over the conduit and every agent reports the same
// bitwise-identical mean. Step dispatches to the persistent workers
// started by New; it must not be called concurrently with itself or
// after Close.
func (t *Trainer) Step(feeds []graph.Feed) (float64, error) {
	if t.closed.Load() {
		return 0, fmt.Errorf("transform: step on %w trainer", errs.ErrClosed)
	}
	if len(feeds) != t.workers {
		return 0, fmt.Errorf("transform: %d feeds for %d workers", len(feeds), t.workers)
	}
	// Validate every local worker's feed up front: a worker failing
	// mid-step would leave its peers blocked inside collectives with no
	// rank to rendezvous with, so bad feeds — the realistic runtime error
	// — must be rejected before any work is dispatched. In distributed
	// mode the validation only covers THIS agent's workers, so any step
	// error additionally fails the fabric: peer agents' workers would
	// otherwise block forever rendezvousing with ranks that never
	// dispatched, and fail-stop turns that hang into a prompt teardown.
	for _, w := range t.localWorkers {
		if err := t.checkFeed(w, feeds[w]); err != nil {
			return 0, t.failStep(err)
		}
	}
	step := t.step
	t.step++
	if t.stepHook != nil {
		t.stepHook(step)
	}
	t.resetSlots()
	t.bytesPushed.Store(0)
	t.wireBase = t.fab.Stats()

	for _, w := range t.localWorkers {
		t.tasks[w] <- stepTask{step: step, feed: feeds[w]}
	}
	// Collect results indexed by worker and sum in worker order: workers
	// finish in nondeterministic order, and a float64 sum in arrival
	// order would make the reported mean loss wobble in the last ulp
	// between otherwise identical runs.
	if t.lossBuf == nil {
		t.lossBuf = make([]float64, t.workers)
	}
	var firstErr error
	for range t.localWorkers {
		res := <-t.done
		if res.err != nil && firstErr == nil {
			firstErr = res.err
		}
		t.lossBuf[res.worker] = res.loss
	}
	wire := t.fab.Stats()
	t.lastWire = transport.Stats{
		SentBytes:           wire.SentBytes - t.wireBase.SentBytes,
		RecvBytes:           wire.RecvBytes - t.wireBase.RecvBytes,
		SentBytesRaw:        wire.SentBytesRaw - t.wireBase.SentBytesRaw,
		SentBytesCompressed: wire.SentBytesCompressed - t.wireBase.SentBytesCompressed,
	}
	if firstErr != nil {
		return 0, t.failStep(firstErr)
	}
	// Aggregate the per-worker phase breakdown: the slowest local worker
	// per phase is the step's critical path. The done handshake above
	// orders every worker's (and comm goroutine's) writes before these
	// reads.
	var ph PhaseStats
	for w := range t.phases {
		ph.Compute = max(ph.Compute, t.phases[w].compute)
		ph.Comm = max(ph.Comm, t.phases[w].comm)
		ph.SyncWait = max(ph.SyncWait, t.phases[w].wait)
	}
	t.lastPhase = ph
	if t.dist {
		// Each worker already folded the rank-ordered global mean during
		// its in-step loss exchange; all local results are identical.
		return t.lossBuf[t.localWorkers[0]], nil
	}
	var mean float64
	for _, l := range t.lossBuf {
		mean += l
	}
	return mean / float64(t.workers), nil
}

// failStep handles a step error: in distributed mode the cluster cannot
// continue the current epoch (peers are blocked mid-protocol against
// this agent's ranks), so the fabric is torn down fail-stop before the
// error is surfaced; the trainer must not be stepped again. When the
// fabric recorded a rank-attributed peer failure, the returned error is
// upgraded to carry it — whatever local symptom arrived first (a closed
// conduit, an aborted server wait), the caller sees ErrPeerFailed with
// the failed rank, which is what recovery policies key on. The session
// layer may then rebuild a whole new trainer at the next epoch
// (DESIGN.md §12). Single-process errors pass through untouched —
// everything stays local and recoverable.
func (t *Trainer) failStep(err error) error {
	if t.dist {
		t.fab.Close()
		if fe := t.fab.Err(); fe != nil && !errors.Is(err, errs.ErrPeerFailed) {
			err = fmt.Errorf("%w (first local symptom: %v)", fe, err)
		}
		return err
	}
	// In-process fabrics report nothing here — except the chaos wrapper,
	// whose injected kill records a rank-attributed failure the caller
	// must see (the in-process analogue of a peer crash).
	if fe := t.fab.Err(); errors.Is(fe, errs.ErrPeerFailed) && !errors.Is(err, errs.ErrPeerFailed) {
		err = fmt.Errorf("%w (first local symptom: %v)", fe, err)
	}
	return err
}

// checkFeed verifies worker w's feed covers every graph input with the
// right size before the step is dispatched.
func (t *Trainer) checkFeed(w int, feed graph.Feed) error {
	for _, n := range t.inputs {
		if n.DType == graph.Int {
			v, ok := feed.Ints[n.Name]
			if !ok {
				return fmt.Errorf("transform: worker %d feed missing int input %q", w, n.Name)
			}
			if len(v) != n.Shape[0] {
				return fmt.Errorf("transform: worker %d feed %q has %d entries, want %d", w, n.Name, len(v), n.Shape[0])
			}
			continue
		}
		v, ok := feed.Floats[n.Name]
		if !ok {
			return fmt.Errorf("transform: worker %d feed missing float input %q", w, n.Name)
		}
		shape := v.Shape()
		badShape := len(shape) != len(n.Shape)
		for i := 0; !badShape && i < len(shape); i++ {
			badShape = shape[i] != n.Shape[i]
		}
		if badShape {
			return fmt.Errorf("transform: worker %d feed %q has shape %v, want %v", w, n.Name, shape, n.Shape)
		}
	}
	return nil
}

// resetSlots rewinds the local-aggregation slots for the next step. It
// runs between steps, when every worker is parked on its task channel, so
// the channel handshake orders these writes against the workers' accesses.
func (t *Trainer) resetSlots() {
	for ri := range t.slots {
		for m := range t.slots[ri] {
			s := &t.slots[ri][m]
			s.got = 0
			clear(s.sparse)
			clear(s.denseSrcs)
		}
	}
}

// workerStep is one worker's side of an iteration.
func (t *Trainer) workerStep(w, step int, feed graph.Feed) (float64, error) {
	exec := t.execs[w]
	ph := &t.phases[w]
	*ph = phaseTimes{}

	// Pull phase: fetch fresh PS values for this iteration (Fig 2(a)(b)'s
	// pull arrows), one batched call per server, all servers in parallel,
	// copying straight into the replica's variable storage through the
	// precomputed views. Version step means "after step updates have
	// applied".
	minVersion := int64(step)
	if t.opt.Async {
		minVersion = 0
	}
	pulls := 0
	for m := 0; m < t.machines && t.ps != nil; m++ {
		if len(t.pullReqs[w][m]) > 0 {
			t.pullCh[w][m] <- minVersion
			pulls++
		}
	}
	var pullErr error
	for i := 0; i < pulls; i++ {
		if err := <-t.pullDone[w]; err != nil && pullErr == nil {
			pullErr = err
		}
	}
	if pullErr != nil {
		return 0, pullErr
	}

	// Compute, streaming synchronization out of the backward pass: each
	// dense gradient is copied into its fusion view the moment it is
	// final, the bucket's collective is dispatched when its last view
	// fills, and sparse/PS gradients are handed off immediately — all
	// while the sweep continues toward the input layers.
	pending := t.bucketPending[w]
	for b := range pending {
		pending[b] = len(t.buckets[b].routes)
	}
	computeStart := time.Now() //parallax:allow(detsource) -- StepStats phase timing: observability only, never feeds control flow
	loss, _, err := exec.StepStream(feed, func(name string, d *tensor.Dense, sp *tensor.Sparse) {
		ri := t.routeIdx[name]
		switch t.routes[ri].assign.Method {
		case core.MethodAllReduce:
			view := t.fuseViews[w][ri]
			if d != nil {
				copy(view.Data(), d.Data())
			} else {
				// A sparse variable promoted to dense treatment (α
				// threshold): densify straight into the fusion view.
				view.Zero()
				sp.ToDenseInto(view)
			}
			t.bytesPushed.Add(view.Bytes())
			b := t.bucketOf[ri]
			if pending[b]--; pending[b] == 0 {
				t.comm[w] <- commTask{kind: commBucket, idx: b}
			}
		case core.MethodAllGatherv:
			t.bytesPushed.Add(sp.Bytes())
			t.comm[w] <- commTask{kind: commSparse, idx: ri, sparse: sp}
		case core.MethodPS:
			t.comm[w] <- commTask{kind: commPS, idx: ri, dense: d, sparse: sp}
		}
	})
	computeEnd := time.Now() //parallax:allow(detsource) -- StepStats phase timing: observability only, never feeds control flow
	ph.compute = computeEnd.Sub(computeStart)

	// Drain: wait for this worker's synchronization to finish. Whatever
	// comm time is left here was not hidden under compute.
	t.comm[w] <- commTask{kind: commFlush}
	commErr := <-t.commAck[w]
	ph.wait = time.Since(computeEnd) //parallax:allow(detsource) -- StepStats phase timing: observability only, never feeds control flow
	if err != nil {
		return 0, err
	}
	if commErr != nil {
		return 0, commErr
	}

	// Clipping: compute the global norm over *aggregated* gradients — AR
	// parts are replicated on every worker (read through the fusion
	// views), PS parts are read back from the servers (§5) — then scale
	// AR updates locally and have the chief apply scaled PS updates.
	scale := float32(1)
	if t.opt.ClipNorm > 0 && !t.opt.Async {
		var norm2 float64
		for ri, r := range t.routes {
			switch r.assign.Method {
			case core.MethodAllReduce:
				norm2 += t.fuseViews[w][ri].L2NormSquared()
			case core.MethodAllGatherv:
				// Coalesce once and keep the result: the norm needs the
				// deduplicated tensor, and the apply below would otherwise
				// re-coalesce the concatenated gradient.
				g := t.arSparse[w][ri].Coalesce()
				t.arSparse[w][ri] = g
				norm2 += g.Values.L2NormSquared()
			case core.MethodPS:
				for pi := range r.ranges {
					n2, err := t.ps[w][r.assign.Servers[pi]].WaitAggregatedNormSquared(r.psName, pi, int64(step+1))
					if err != nil {
						return 0, err
					}
					norm2 += n2
				}
			}
		}
		if norm := math.Sqrt(norm2); norm > t.opt.ClipNorm {
			scale = float32(t.opt.ClipNorm / norm)
		}
		if w == 0 { // the global chief worker triggers the deferred PS updates
			for _, r := range t.routes {
				if r.assign.Method != core.MethodPS {
					continue
				}
				for pi := range r.ranges {
					if err := t.ps[w][r.assign.Servers[pi]].ApplyUpdate(r.psName, pi, scale); err != nil {
						return 0, err
					}
				}
			}
		}
	}

	// Apply AR updates locally; every replica performs the identical
	// update, keeping replicas synchronized. The aggregated gradients
	// live in the worker-local fusion buffers, so clip scaling happens in
	// place.
	for ri, r := range t.routes {
		switch r.assign.Method {
		case core.MethodAllReduce:
			g := t.fuseViews[w][ri]
			if scale != 1 {
				g.Scale(scale)
			}
			t.arOpts[w].ApplyDense(r.v.Name, exec.VarValue(r.v.Name), g)
		case core.MethodAllGatherv:
			g := t.arSparse[w][ri]
			if scale != 1 {
				g.Scale(scale)
			}
			t.arOpts[w].ApplySparse(r.v.Name, exec.VarValue(r.v.Name), g)
			t.arSparse[w][ri] = nil
		}
	}

	// Distributed loss exchange: gather every worker's loss in rank
	// order and fold the global mean with the same summation order the
	// single-process driver uses, so the reported trajectory is bitwise
	// identical across deployment modes.
	if t.dist {
		gathered := t.lossGather[w]
		t.replicas[w].GatherScalars("loss", loss, gathered)
		var sum float64
		for _, l := range gathered {
			sum += l
		}
		loss = sum / float64(t.workers)
	}
	return loss, nil
}

// pushPS routes worker w's gradient for PS route ri: split by partition,
// optionally merge within the machine, push to the owning servers with
// one batched call per server. Dense partitions travel as zero-copy views
// (psrt borrows them only for the call — a wire push serializes them
// before its reply unblocks us); sparse partitions are freshly split and
// ownership transfers to the server. Runs on the worker's comm goroutine.
func (t *Trainer) pushPS(w, ri int, dense *tensor.Dense, sp *tensor.Sparse) error {
	r := &t.routes[ri]
	name := r.psName

	pushSparseParts := func(parts []*tensor.Sparse) error {
		// Data-plane quantization: the split copies are rounded onto the
		// codec grid before any push, colocated or remote, so the servers
		// aggregate identical bits on every fabric. (SplitSparse allocates
		// fresh value storage, so this never touches the exec's gradient.)
		if c := t.opt.Compression.PSSparse; c != transport.CodecF32 {
			for _, p := range parts {
				c.Quantize(p.Values.Data())
			}
		}
		for k, srv := range t.psServers[ri] {
			reqs := t.psSparseReqs[w][:0]
			for _, pi := range t.psParts[ri][k] {
				t.bytesPushed.Add(parts[pi].Bytes())
				reqs = append(reqs, psrt.SparsePush{Name: name, Part: pi, Grad: parts[pi]})
			}
			t.psSparseReqs[w] = reqs[:0]
			if err := t.ps[w][srv].PushSparseMany(reqs); err != nil {
				return err
			}
		}
		return nil
	}
	pushDenseParts := func(dense *tensor.Dense, views []*tensor.Dense) error {
		for k, srv := range t.psServers[ri] {
			reqs := t.psDenseReqs[w][:0]
			for _, pi := range t.psParts[ri][k] {
				rr := r.ranges[pi]
				part := dense
				if views != nil {
					part = views[pi]
				} else if rr.Start != 0 || rr.End != dense.Dim(0) {
					// Without local aggregation the gradient is a fresh
					// exec-owned tensor each step, so partition views cannot
					// be precomputed; the per-push SliceRows header is the
					// remaining (cheap) allocation on this non-default path.
					part = dense.SliceRows(rr.Start, rr.End)
				}
				t.bytesPushed.Add(part.Bytes())
				reqs = append(reqs, psrt.DensePush{Name: name, Part: pi, Grad: part})
			}
			t.psDenseReqs[w] = reqs[:0]
			if err := t.ps[w][srv].PushDenseMany(reqs); err != nil {
				return err
			}
		}
		return nil
	}

	if !t.opt.LocalAggregation {
		if r.assign.Sparse {
			return pushSparseParts(tensor.SplitSparse(sp, r.ranges))
		}
		// Quantize the gradient before it splits into partition views.
		// The buffer is the exec's gradient storage, dead until the next
		// backward pass overwrites it; PS routes never read it locally.
		t.opt.Compression.PSDense.Quantize(dense.Data())
		return pushDenseParts(dense, nil)
	}

	// Local aggregation: gradients park in GPU-rank-indexed slot entries
	// and the machine's last-arriving worker merges them in rank order
	// (see aggSlot) and pushes.
	machine := t.workerMachine[w]
	gpus := t.machineGPUs[machine]
	local := t.localGPU[w]
	slot := &t.slots[ri][machine]
	slot.mu.Lock()
	if r.assign.Sparse {
		slot.sparse[local] = sp
	} else {
		slot.denseSrcs[local] = dense
	}
	slot.got++
	doPush := slot.got == gpus
	var sparseMerged *tensor.Sparse
	if doPush {
		if r.assign.Sparse {
			sparseMerged = tensor.SumSparse(slot.sparse)
		} else {
			copy(slot.dense.Data(), slot.denseSrcs[0].Data())
			for i := 1; i < gpus; i++ {
				slot.dense.AddInto(slot.denseSrcs[i])
			}
		}
	}
	slot.mu.Unlock()
	if !doPush {
		return nil
	}
	if r.assign.Sparse {
		return pushSparseParts(tensor.SplitSparse(sparseMerged, r.ranges))
	}
	// Quantize the machine-merged gradient (the chief's exact f32 fold)
	// before the partition views ship it.
	t.opt.Compression.PSDense.Quantize(slot.dense.Data())
	return pushDenseParts(slot.dense, t.slotViews[ri][machine])
}

// VarValue reconstructs the current full value of a variable: from the
// servers for PS variables (local or over the wire), from the first
// local replica for AR variables.
func (t *Trainer) VarValue(name string) (*tensor.Dense, error) {
	w0 := t.localWorkers[0]
	for _, r := range t.routes {
		if r.v.Name != name {
			continue
		}
		if r.assign.Method != core.MethodPS {
			return t.execs[w0].VarValue(name).Clone(), nil
		}
		out := tensor.NewDense(r.v.Shape...)
		minVersion := int64(t.step)
		if t.opt.Async {
			minVersion = 0
		}
		for pi, rr := range r.ranges {
			if rr.Len() == 0 {
				continue
			}
			dst := out.SliceRows(rr.Start, rr.End)
			if err := t.ps[w0][r.assign.Servers[pi]].PullInto(r.psName, pi, minVersion, dst); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("transform: unknown variable %q", name)
}
