package transform

// Checkpoint support: the trainer-side state capture and install that
// the public Session.Save / OpenFromCheckpoint API is built on. Save
// reuses the live-resharding machinery (DESIGN.md §9 → §10): server
// partitions are read through psrt.Server.SnapshotPart — whose version
// wait doubles as the between-steps drain barrier — and restore installs
// state through psrt.Server.ReshardVar, which seeds partition versions
// and aggregation sequences to the restored step counter so the
// synchronous pull/clip protocol continues counting without a
// discontinuity. Replica-managed (AllReduce / AllGatherv) variables are
// bit-identical on every replica, so one copy per variable suffices;
// restore installs it into every local replica and clones the optimizer
// slot state per replica so instances never share tensors.
//
// All methods must run between steps (never concurrently with Step),
// the same quiescence Repartition requires.

import (
	"fmt"
	"slices"
	"strconv"

	"parallax/internal/core"
	"parallax/internal/errs"
	"parallax/internal/optim"
	"parallax/internal/tensor"
)

// VarState is one variable's (for replica-managed variables) or one
// partition's (for server-managed ones) captured training state: the
// value plus the optimizer slot tensors in SlotState.Slots order.
type VarState struct {
	Name string
	// Part is the partition index; -1 for replica-managed variables.
	Part      int
	Value     *tensor.Dense
	SlotNames []string
	Slots     []*tensor.Dense
}

// StepCount returns the number of completed training steps.
func (t *Trainer) StepCount() int { return t.step }

// SetStepCount installs a restored step counter. It must be called
// before the first Step and must match the version the server state was
// restored with (RestoreServerVars seeds partition versions from it).
func (t *Trainer) SetStepCount(n int) { t.step = n }

// LocalMachines returns the machine indices whose parameter servers
// this process hosts — every machine in single-process mode, exactly
// one under a distributed fabric. The caller must not mutate the
// result.
func (t *Trainer) LocalMachines() []int {
	var ms []int
	for m := 0; m < t.machines; m++ {
		if t.localMachine[m] {
			ms = append(ms, m)
		}
	}
	return ms
}

// replicaSlotState returns the slot-state view of a replica optimizer,
// nil for stateless ones.
func replicaSlotState(o optim.Optimizer) optim.SlotState {
	if ss, ok := o.(optim.SlotState); ok {
		return ss
	}
	return nil
}

// SnapshotReplicaVars captures every replica-managed (AllReduce /
// AllGatherv) variable from the first local replica: its value and its
// replica-optimizer slot state. Replicas perform identical updates, so
// the first replica's bits are the job's bits.
func (t *Trainer) SnapshotReplicaVars() ([]VarState, error) {
	if t.closed.Load() {
		return nil, fmt.Errorf("transform: snapshot on %w trainer", errs.ErrClosed)
	}
	w0 := t.localWorkers[0]
	ss := replicaSlotState(t.arOpts[w0])
	var out []VarState
	for _, r := range t.routes {
		if r.assign.Method == core.MethodPS {
			continue
		}
		st := VarState{Name: r.v.Name, Part: -1, Value: t.execs[w0].VarValue(r.v.Name).Clone()}
		if ss != nil {
			for _, slot := range ss.Slots() {
				st.SlotNames = append(st.SlotNames, slot)
				if sv := ss.SlotValue(slot, r.v.Name); sv != nil {
					st.Slots = append(st.Slots, sv.Clone())
				} else {
					// Never updated: a lazily created slot would be zeros.
					st.Slots = append(st.Slots, tensor.NewDense(r.v.Shape...))
				}
			}
		}
		out = append(out, st)
	}
	return out, nil
}

// SnapshotServerParts captures every parameter-server partition hosted
// by local machine m's server, drained to the current step: values and
// optimizer slot state in partition-local row coordinates. The
// underlying SnapshotPart blocks until each partition's version reaches
// the step counter, so a between-steps save never reads a half-applied
// update.
func (t *Trainer) SnapshotServerParts(m int) ([]VarState, error) {
	if t.closed.Load() {
		return nil, fmt.Errorf("transform: snapshot on %w trainer", errs.ErrClosed)
	}
	if m < 0 || m >= t.machines {
		return nil, fmt.Errorf("transform: machine %d out of range", m)
	}
	if t.servers == nil || t.servers[m] == nil {
		return nil, nil // no PS routes, or machine hosted by another agent
	}
	minV := int64(t.step)
	if t.opt.Async {
		minV = 0
	}
	slotNames := t.psAdmin(m).SlotNames()
	var out []VarState
	for _, r := range t.routes {
		if r.assign.Method != core.MethodPS {
			continue
		}
		for pi, rr := range r.ranges {
			if r.assign.Servers[pi] != m || rr.Len() == 0 {
				continue
			}
			// Snapshot under the served (namespace-qualified) name but
			// record the bare one: checkpoints stay job-portable between
			// resident and private deployments.
			val, slots, err := t.servers[m].SnapshotPart(r.psName, pi, minV)
			if err != nil {
				return nil, err
			}
			out = append(out, VarState{
				Name: r.v.Name, Part: pi, Value: val,
				SlotNames: slices.Clone(slotNames), Slots: slots,
			})
		}
	}
	return out, nil
}

// SnapshotResiduals captures the top-k error-feedback residuals of
// machine m's workers, one VarState per (worker, fusion bucket): Name
// is the worker's global rank in decimal, Part the bucket index. Nil
// when the compression policy keeps no residuals, so uncompressed jobs
// write checkpoints without residual records (and stay on the version-1
// format). Residuals live with the worker's machine, so each machine's
// checkpoint shard carries exactly its own workers' residuals.
func (t *Trainer) SnapshotResiduals(m int) ([]VarState, error) {
	if t.closed.Load() {
		return nil, fmt.Errorf("transform: snapshot on %w trainer", errs.ErrClosed)
	}
	if t.fuseResid == nil {
		return nil, nil
	}
	var out []VarState
	for _, w := range t.localWorkers {
		if t.workerMachine[w] != m {
			continue
		}
		for b, res := range t.fuseResid[w] {
			out = append(out, VarState{
				Name: strconv.Itoa(w), Part: b, Value: res.Clone(),
			})
		}
	}
	return out, nil
}

// RestoreResiduals installs checkpointed error-feedback residuals into
// this process's workers. Every record must address a local worker's
// existing residual buffer — the session layer has already verified the
// checkpoint's compression fingerprint matches the configured policy,
// so a mismatch here (residuals for a job without top-k, an unknown
// worker, a bucket outside the fusion schedule) is a topology error.
func (t *Trainer) RestoreResiduals(states []VarState) error {
	if t.closed.Load() {
		return fmt.Errorf("transform: restore on %w trainer", errs.ErrClosed)
	}
	if len(states) == 0 {
		return nil
	}
	if t.fuseResid == nil {
		return fmt.Errorf("transform: %w: checkpoint carries top-k residuals, policy keeps none",
			errs.ErrTopologyMismatch)
	}
	for _, st := range states {
		w, err := strconv.Atoi(st.Name)
		if err != nil || w < 0 || w >= t.workers {
			return fmt.Errorf("transform: %w: residual record names worker %q",
				errs.ErrTopologyMismatch, st.Name)
		}
		if !slices.Contains(t.localWorkers, w) {
			return fmt.Errorf("transform: %w: residual for worker %d, hosted by machine %d",
				errs.ErrTopologyMismatch, w, t.workerMachine[w])
		}
		if st.Part < 0 || st.Part >= len(t.fuseResid[w]) {
			return fmt.Errorf("transform: %w: residual bucket %d outside the %d-bucket fusion schedule",
				errs.ErrTopologyMismatch, st.Part, len(t.fuseResid[w]))
		}
		dst := t.fuseResid[w][st.Part]
		if st.Value.NumElements() != dst.NumElements() {
			return fmt.Errorf("transform: %w: residual %d/%d has %d elements, bucket has %d",
				errs.ErrTopologyMismatch, w, st.Part, st.Value.NumElements(), dst.NumElements())
		}
		copy(dst.Data(), st.Value.Data())
	}
	return nil
}

// RestoreReplicaVar installs a replica-managed variable's state into
// every local replica: the value is copied into each executor's
// variable storage and the slot tensors are cloned per replica into its
// optimizer, so replicas never share state tensors. The checkpoint's
// slot names must match the configured optimizer's — restoring momentum
// state into an SGD session (or vice versa) is a configuration
// mismatch, not a silent drop.
func (t *Trainer) RestoreReplicaVar(st VarState) error {
	if t.closed.Load() {
		return fmt.Errorf("transform: restore on %w trainer", errs.ErrClosed)
	}
	ri, ok := t.routeIdx[st.Name]
	if !ok {
		return fmt.Errorf("transform: %w: checkpoint variable %q not in graph", errs.ErrTopologyMismatch, st.Name)
	}
	r := &t.routes[ri]
	if r.assign.Method == core.MethodPS {
		return fmt.Errorf("transform: %w: checkpoint stores %q as a replica variable, plan serves it from parameter servers",
			errs.ErrTopologyMismatch, st.Name)
	}
	if int64(st.Value.NumElements()) != r.v.Elements() {
		return fmt.Errorf("transform: %w: checkpoint value for %q has %d elements, variable has %d",
			errs.ErrTopologyMismatch, st.Name, st.Value.NumElements(), r.v.Elements())
	}
	for _, w := range t.localWorkers {
		ss := replicaSlotState(t.arOpts[w])
		var want []string
		if ss != nil {
			want = ss.Slots()
		}
		if !slices.Equal(st.SlotNames, want) {
			return fmt.Errorf("transform: %w: checkpoint slots %v for %q, optimizer keeps %v",
				errs.ErrTopologyMismatch, st.SlotNames, st.Name, want)
		}
		copy(t.execs[w].VarValue(st.Name).Data(), st.Value.Data())
		for k, slot := range st.SlotNames {
			sv := tensor.NewDense(r.v.Shape...)
			copy(sv.Data(), st.Slots[k].Data())
			ss.SetSlot(slot, st.Name, sv)
		}
	}
	return nil
}

// RestoreServerVars installs parameter-server state from checkpoint
// partition records: the records (which cover at least every partition
// a local server owns) are assembled into full-variable tensors, and
// each local server re-installs its owned row ranges through
// psrt.Server.ReshardVar with versions seeded to version — exactly the
// install phase of a live reshard, minus the partitioning change.
func (t *Trainer) RestoreServerVars(states []VarState, version int64) error {
	if t.closed.Load() {
		return fmt.Errorf("transform: restore on %w trainer", errs.ErrClosed)
	}
	type assembled struct {
		value     *tensor.Dense
		slotNames []string
		slots     []*tensor.Dense
	}
	full := make(map[string]*assembled)
	for _, st := range states {
		ri, ok := t.routeIdx[st.Name]
		if !ok {
			return fmt.Errorf("transform: %w: checkpoint variable %q not in graph", errs.ErrTopologyMismatch, st.Name)
		}
		r := &t.routes[ri]
		if r.assign.Method != core.MethodPS {
			return fmt.Errorf("transform: %w: checkpoint stores %q as a server variable, plan replicates it",
				errs.ErrTopologyMismatch, st.Name)
		}
		if st.Part < 0 || st.Part >= len(r.ranges) {
			return fmt.Errorf("transform: %w: checkpoint partition %s/%d outside the plan's %d partitions",
				errs.ErrTopologyMismatch, st.Name, st.Part, len(r.ranges))
		}
		a := full[st.Name]
		if a == nil {
			a = &assembled{value: tensor.NewDense(r.v.Shape...), slotNames: st.SlotNames}
			for range st.SlotNames {
				a.slots = append(a.slots, tensor.NewDense(r.v.Shape...))
			}
			full[st.Name] = a
		}
		if !slices.Equal(st.SlotNames, a.slotNames) {
			return fmt.Errorf("transform: %w: checkpoint slots for %s/%d are %v, partition 0 had %v",
				errs.ErrTopologyMismatch, st.Name, st.Part, st.SlotNames, a.slotNames)
		}
		rr := r.ranges[st.Part]
		width := a.value.RowWidth()
		if st.Value.NumElements() != rr.Len()*width {
			return fmt.Errorf("transform: %w: checkpoint partition %s/%d has %d elements, plan's range has %d",
				errs.ErrTopologyMismatch, st.Name, st.Part, st.Value.NumElements(), rr.Len()*width)
		}
		copy(a.value.Data()[rr.Start*width:rr.End*width], st.Value.Data())
		for k := range st.Slots {
			copy(a.slots[k].Data()[rr.Start*width:rr.End*width], st.Slots[k].Data())
		}
	}
	// Install in sorted-name order: ReshardVar mutates server state, and
	// a map-ordered install would make the restore sequence differ run
	// to run (harmless today, but the §15 discipline is that nothing on
	// the restore path depends on map iteration order).
	names := make([]string, 0, len(full))
	for name := range full {
		names = append(names, name)
	}
	slices.Sort(names)
	for _, name := range names {
		a := full[name]
		r := &t.routes[t.routeIdx[name]]
		for _, m := range t.LocalMachines() {
			want := t.psAdmin(m).SlotNames()
			if !slices.Equal(a.slotNames, want) {
				return fmt.Errorf("transform: %w: checkpoint slots %v for %q, server optimizer keeps %v",
					errs.ErrTopologyMismatch, a.slotNames, name, want)
			}
			var owned []int
			for pi, srv := range r.assign.Servers {
				if srv == m {
					owned = append(owned, pi)
				}
			}
			if len(owned) == 0 {
				continue
			}
			if err := t.psAdmin(m).ReshardVar(name, a.value, r.ranges, owned,
				r.assign.Sparse, a.slots, version); err != nil {
				return err
			}
		}
	}
	return nil
}
