package transform

// Tests for the fused, overlapped synchronization schedule: fusion
// buckets must be semantically invisible (bit-identical variable
// trajectories vs the per-variable schedule), and the overlapped dispatch
// must preserve synchronous-training semantics under the race detector.

import (
	"testing"

	"parallax/internal/cluster"
	"parallax/internal/core"
	"parallax/internal/graph"
	"parallax/internal/models"
	"parallax/internal/optim"
	"parallax/internal/tensor"
)

// manySmallDense builds a deep MLP over token embeddings: one sparse
// embedding (AllGatherv under pure AR) plus 2·layers+2 small dense
// variables, all of which a pure-AR plan routes through fusion buckets.
func manySmallDense(layers int, seed int64) *graph.Graph {
	rng := tensor.NewRNG(seed)
	g := graph.New()
	tokens := g.Input("tokens", graph.Int, 8)
	labels := g.Input("labels", graph.Int, 8)
	emb := g.Variable("embedding", rng.RandN(0.2, 30, 12))
	h := g.Gather(emb, tokens)
	for l := 0; l < layers; l++ {
		w := g.Variable("w"+string(rune('a'+l)), rng.RandN(0.2, 12, 12))
		b := g.Variable("b"+string(rune('a'+l)), tensor.NewDense(12))
		h = g.Tanh(g.AddBias(g.MatMul(h, w), b))
	}
	wOut := g.Variable("softmax", rng.RandN(0.2, 12, 30))
	g.SoftmaxCE(g.MatMul(h, wOut), labels)
	return g
}

func feedsFor(workers, batch, vocab int, seed int64) []graph.Feed {
	rng := tensor.NewRNG(seed)
	feeds := make([]graph.Feed, workers)
	for w := range feeds {
		tok := make([]int, batch)
		lbl := make([]int, batch)
		for i := range tok {
			tok[i] = rng.Intn(vocab)
			lbl[i] = rng.Intn(vocab)
		}
		feeds[w] = graph.Feed{Ints: map[string][]int{"tokens": tok, "labels": lbl}}
	}
	return feeds
}

// trainAR runs a pure-AR trainer over the many-small-dense model and
// returns the final variable state. Pure AR is fully deterministic (the
// rank-ordered collective fold and rank-ordered AllGatherv concatenation
// leave no arrival-order nondeterminism), so the fused and unfused
// schedules must agree to the bit.
func trainAR(t *testing.T, ri cluster.ResourceInfo, fusionBytes int64, steps int, newOpt func() optim.Optimizer) map[string]*tensor.Dense {
	t.Helper()
	g := manySmallDense(6, 77)
	plan := planFor(t, g, core.ArchAR, ri.NumMachines(), 1)
	tr, err := New(g, Options{
		Plan: plan, Resource: ri,
		NewOptimizer: newOpt,
		DenseAgg:     optim.AggMean, SparseAgg: optim.AggMean,
		FusionBytes: fusionBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for s := 0; s < steps; s++ {
		if _, err := tr.Step(feedsFor(tr.Workers(), 8, 30, int64(500+s))); err != nil {
			t.Fatal(err)
		}
	}
	out := map[string]*tensor.Dense{}
	for _, v := range g.Variables() {
		val, err := tr.VarValue(v.Name)
		if err != nil {
			t.Fatal(err)
		}
		out[v.Name] = val
	}
	return out
}

// The tentpole equivalence claim: the fused schedule (one collective per
// bucket) produces BIT-identical variable state to the per-variable
// schedule, across cluster shapes, bucket size caps, and optimizers.
func TestFusedBitIdenticalToPerVariable(t *testing.T) {
	sgd := func() optim.Optimizer { return optim.NewSGD(0.3) }
	mom := func() optim.Optimizer { return optim.NewMomentum(0.2, 0.9) }
	for _, tc := range []struct {
		name   string
		ri     cluster.ResourceInfo
		fusion int64 // fused-side bucket cap
		newOpt func() optim.Optimizer
	}{
		{"1x2-default-bucket", cluster.Uniform(1, 2), 0, sgd},
		{"1x3-default-bucket", cluster.Uniform(1, 3), 0, sgd},
		{"2x2-default-bucket", cluster.Uniform(2, 2), 0, sgd},
		{"1x5-default-bucket", cluster.Uniform(1, 5), 0, sgd},
		{"2x2-tiny-buckets", cluster.Uniform(2, 2), 1 << 10, sgd}, // several buckets
		{"2x2-momentum", cluster.Uniform(2, 2), 0, mom},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fused := trainAR(t, tc.ri, tc.fusion, 4, tc.newOpt)
			unfused := trainAR(t, tc.ri, -1, 4, tc.newOpt)
			for name, want := range unfused {
				got := fused[name]
				if got.MaxAbsDiff(want) != 0 {
					t.Errorf("variable %s: fused differs from per-variable by %v (must be bit-identical)",
						name, got.MaxAbsDiff(want))
				}
			}
		})
	}
}

// A sub-variable bucket cap must actually split the schedule into
// multiple collectives (otherwise the tiny-buckets equivalence case above
// is vacuous), and the default cap must fuse everything into one.
func TestBucketPacking(t *testing.T) {
	g := manySmallDense(6, 11)
	ri := cluster.Uniform(1, 2)
	build := func(fusion int64) *Trainer {
		tr, err := New(g, Options{
			Plan: planFor(t, g, core.ArchAR, 1, 1), Resource: ri,
			NewOptimizer: func() optim.Optimizer { return optim.NewSGD(0.1) },
			DenseAgg:     optim.AggMean, SparseAgg: optim.AggMean,
			FusionBytes: fusion,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(tr.Close)
		return tr
	}
	if got := build(0).Buckets(); got != 1 {
		t.Errorf("default cap: %d buckets, want 1", got)
	}
	// All variables except the sparse embedding are dense AllReduce routes.
	if got, want := build(-1).Buckets(), len(g.Variables())-1; got != want {
		t.Errorf("fusion disabled: %d buckets, want one per dense variable (%d)", got, want)
	}
	if one, many := build(0).Buckets(), build(1<<10).Buckets(); many <= one {
		t.Errorf("1KiB cap produced %d buckets, want more than %d", many, one)
	}
}

// Overlapped dispatch under every concurrent mechanism at once: fusion
// with several buckets, AllGatherv, PS routes with local aggregation,
// deferred updates, and chief clipping — meaningful under `go test
// -race`. The result must still match the single-GPU clipped reference
// within float tolerance.
func TestRaceOverlappedClippedHybridMatchesSequential(t *testing.T) {
	cfg := models.TinyLMConfig{Vocab: 40, Dim: 6, Hidden: 8, Batch: 4, Seed: 9}
	const steps = 3
	const lr = 0.5
	const clip = 0.5
	const seed = 3000
	workers := 4

	big := cfg
	big.Batch = cfg.Batch * workers
	gs := models.BuildTinyLM(big)
	es, err := graph.NewExec(gs)
	if err != nil {
		t.Fatal(err)
	}
	opt := optim.NewSGD(lr)
	for s := 0; s < steps; s++ {
		_, feed := lmFeeds(workers, cfg.Batch, cfg.Vocab, seed+int64(s))
		_, grads, err := es.Step(feed)
		if err != nil {
			t.Fatal(err)
		}
		optim.ClipByGlobalNorm(grads, clip)
		for name, d := range grads.Dense {
			opt.ApplyDense(name, es.VarValue(name), d)
		}
		for name, sp := range grads.Sparse {
			opt.ApplySparse(name, es.VarValue(name), sp)
		}
	}

	gd := models.BuildTinyLM(cfg)
	ri := cluster.Uniform(2, 2)
	tr, err := New(gd, Options{
		Plan: planFor(t, gd, core.ArchHybrid, 2, 3), Resource: ri,
		NewOptimizer: func() optim.Optimizer { return optim.NewSGD(lr) },
		DenseAgg:     optim.AggMean, SparseAgg: optim.AggMean,
		LocalAggregation: true,
		ClipNorm:         clip,
		FusionBytes:      256, // force multiple buckets
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for s := 0; s < steps; s++ {
		feeds, _ := lmFeeds(workers, cfg.Batch, cfg.Vocab, seed+int64(s))
		if _, err := tr.Step(feeds); err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range gs.Variables() {
		got, err := tr.VarValue(v.Name)
		if err != nil {
			t.Fatal(err)
		}
		if diff := got.MaxAbsDiff(es.VarValue(v.Name)); diff > 5e-4 {
			t.Errorf("overlapped clipped training: variable %s diverged by %v", v.Name, diff)
		}
	}
}

// The fused schedule must report identical losses to the unfused one on a
// fixed seed — the convergence-equivalence acceptance check. Pure AR is
// the right arena: it is fully deterministic (no server-side arrival
// order), and fusion only ever touches AllReduce routes, so any loss
// divergence here would be a fusion bug rather than benign float
// reassociation.
func TestFusedLossTrajectoryMatchesUnfused(t *testing.T) {
	run := func(fusion int64) []float64 {
		g := manySmallDense(6, 21)
		tr, err := New(g, Options{
			Plan: planFor(t, g, core.ArchAR, 2, 1), Resource: cluster.Uniform(2, 2),
			NewOptimizer: func() optim.Optimizer { return optim.NewSGD(0.4) },
			DenseAgg:     optim.AggMean, SparseAgg: optim.AggMean,
			FusionBytes: fusion,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		var losses []float64
		for s := 0; s < 6; s++ {
			loss, err := tr.Step(feedsFor(tr.Workers(), 8, 30, int64(900+s)))
			if err != nil {
				t.Fatal(err)
			}
			losses = append(losses, loss)
		}
		return losses
	}
	fused, unfused := run(0), run(-1)
	for s := range fused {
		if fused[s] != unfused[s] {
			t.Errorf("step %d: fused loss %v != unfused loss %v", s, fused[s], unfused[s])
		}
	}
}

// Phase stats must be populated and consistent: compute > 0, and comm
// busy time present whenever something was synchronized.
func TestPhaseStatsPopulated(t *testing.T) {
	cfg := models.DefaultTinyLM()
	tr := newTrainer(t, cfg, core.ArchHybrid, cluster.Uniform(2, 2), 2, nil)
	feeds, _ := lmFeeds(tr.Workers(), cfg.Batch, cfg.Vocab, 5)
	if _, err := tr.Step(feeds); err != nil {
		t.Fatal(err)
	}
	ph := tr.PhaseStatsLastStep()
	if ph.Compute <= 0 {
		t.Errorf("Compute = %v, want > 0", ph.Compute)
	}
	if ph.Comm <= 0 {
		t.Errorf("Comm = %v, want > 0", ph.Comm)
	}
	if ph.SyncWait < 0 {
		t.Errorf("SyncWait = %v, want >= 0", ph.SyncWait)
	}
}
