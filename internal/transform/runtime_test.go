package transform

// Tests for the persistent runtime: long-lived worker goroutines, the
// index-addressed local-aggregation slots, and the buffer-reuse contract
// with the parameter servers. These are written to be meaningful under
// `go test -race`: they drive many steps through the concurrent paths
// (async pushes, multi-GPU local aggregation, clipping read-back) so the
// race detector sees the full channel/mutex choreography.

import (
	"testing"

	"parallax/internal/cluster"
	"parallax/internal/core"
	"parallax/internal/graph"
	"parallax/internal/models"
	"parallax/internal/optim"
)

func newTrainer(t *testing.T, cfg models.TinyLMConfig, arch core.Arch, ri cluster.ResourceInfo,
	parts int, mutate func(*Options)) *Trainer {
	t.Helper()
	g := models.BuildTinyLM(cfg)
	opts := Options{
		Plan:     planFor(t, g, arch, ri.NumMachines(), parts),
		Resource: ri,
		NewOptimizer: func() optim.Optimizer {
			return optim.NewSGD(0.2)
		},
		DenseAgg:  optim.AggMean,
		SparseAgg: optim.AggMean,
	}
	if mutate != nil {
		mutate(&opts)
	}
	tr, err := New(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tr.Close)
	return tr
}

// Async PS training across multiple machines: every push applies
// immediately under the partition lock while other workers pull, the most
// lock-contended configuration of the runtime.
func TestRaceAsyncSteps(t *testing.T) {
	cfg := models.DefaultTinyLM()
	tr := newTrainer(t, cfg, core.ArchNaivePS, cluster.Uniform(2, 2), 3,
		func(o *Options) { o.Async = true })
	for s := 0; s < 20; s++ {
		feeds, _ := lmFeeds(tr.Workers(), cfg.Batch, cfg.Vocab, int64(s))
		if _, err := tr.Step(feeds); err != nil {
			t.Fatal(err)
		}
	}
}

// Local aggregation with multiple GPUs per machine: the per-(route,
// machine) slots are hit by every worker of a machine each step, and the
// last arrival pushes merged zero-copy views to the servers.
func TestRaceLocalAggregationMultiGPU(t *testing.T) {
	cfg := models.DefaultTinyLM()
	tr := newTrainer(t, cfg, core.ArchHybrid, cluster.Uniform(2, 3), 4,
		func(o *Options) { o.LocalAggregation = true })
	var prev float64
	for s := 0; s < 20; s++ {
		feeds, _ := lmFeeds(tr.Workers(), cfg.Batch, cfg.Vocab, int64(s%4))
		loss, err := tr.Step(feeds)
		if err != nil {
			t.Fatal(err)
		}
		if s > 0 && loss == prev {
			// Losses on different batches almost surely differ; equal
			// values would suggest a step was dropped.
			t.Fatalf("step %d returned identical loss %v", s, loss)
		}
		prev = loss
	}
	if tr.BytesPushedLastStep() <= 0 {
		t.Fatal("BytesPushedLastStep not recorded")
	}
}

// Clipping combines every concurrent mechanism: deferred server updates,
// the chief-worker norm read-back, and the scaled apply path.
func TestRaceClippedHybridSteps(t *testing.T) {
	cfg := models.DefaultTinyLM()
	tr := newTrainer(t, cfg, core.ArchHybrid, cluster.Uniform(2, 2), 3,
		func(o *Options) {
			o.LocalAggregation = true
			o.ClipNorm = 0.5
		})
	for s := 0; s < 10; s++ {
		feeds, _ := lmFeeds(tr.Workers(), cfg.Batch, cfg.Vocab, int64(s))
		if _, err := tr.Step(feeds); err != nil {
			t.Fatal(err)
		}
	}
}

// The persistent workers survive many steps and Close is idempotent.
func TestPersistentWorkersAndClose(t *testing.T) {
	cfg := models.DefaultTinyLM()
	tr := newTrainer(t, cfg, core.ArchHybrid, cluster.Uniform(2, 2), 2, nil)
	for s := 0; s < 50; s++ {
		feeds, _ := lmFeeds(tr.Workers(), cfg.Batch, cfg.Vocab, int64(s))
		if _, err := tr.Step(feeds); err != nil {
			t.Fatal(err)
		}
	}
	tr.Close()
	tr.Close() // second Close must be a no-op
}

// The zero-copy pull path must route server state into the right replica
// rows. During the first step every worker pulls version 0 — the initial
// server values — so after that step each replica's PS-variable storage
// must be bitwise identical to the variable's Init tensor; a partition
// view with a wrong offset would corrupt exactly this.
func TestPullViewsMatchServerState(t *testing.T) {
	cfg := models.DefaultTinyLM()
	tr := newTrainer(t, cfg, core.ArchHybrid, cluster.Uniform(2, 2), 3,
		func(o *Options) { o.LocalAggregation = true })
	feeds, _ := lmFeeds(tr.Workers(), cfg.Batch, cfg.Vocab, 99)
	if _, err := tr.Step(feeds); err != nil {
		t.Fatal(err)
	}
	checkedPS := false
	for _, r := range tr.routes {
		if r.assign.Method != core.MethodPS {
			continue
		}
		checkedPS = true
		for w := 0; w < tr.Workers(); w++ {
			if diff := tr.execs[w].VarValue(r.v.Name).MaxAbsDiff(r.v.Init); diff != 0 {
				t.Errorf("worker %d replica of %s differs from pulled v0 state by %v", w, r.v.Name, diff)
			}
		}
		// The server, meanwhile, has applied the step's update: VarValue
		// must reconstruct a value that differs from Init.
		want, err := tr.VarValue(r.v.Name)
		if err != nil {
			t.Fatal(err)
		}
		if want.MaxAbsDiff(r.v.Init) == 0 {
			t.Errorf("server value of %s unchanged after a training step", r.v.Name)
		}
	}
	if !checkedPS {
		t.Fatal("plan routed no variable to PS; test is vacuous")
	}
}

// Bad feeds must be rejected before dispatch: a worker failing mid-step
// would strand its peers inside collectives, so Step validates up front
// and returns an error with the runtime still usable.
func TestBadFeedRejectedUpFront(t *testing.T) {
	cfg := models.DefaultTinyLM()
	tr := newTrainer(t, cfg, core.ArchHybrid, cluster.Uniform(2, 2), 2, nil)
	feeds, _ := lmFeeds(tr.Workers(), cfg.Batch, cfg.Vocab, 1)

	bad := make([]graph.Feed, len(feeds))
	copy(bad, feeds)
	bad[1] = graph.Feed{Ints: map[string][]int{"tokens": feeds[1].Ints["tokens"]}} // labels missing
	if _, err := tr.Step(bad); err == nil {
		t.Fatal("feed missing an input must fail")
	}
	bad[1] = graph.Feed{Ints: map[string][]int{"tokens": {1}, "labels": {2}}} // wrong batch size
	if _, err := tr.Step(bad); err == nil {
		t.Fatal("feed with wrong batch size must fail")
	}

	// The runtime must still work after rejected steps.
	if _, err := tr.Step(feeds); err != nil {
		t.Fatalf("valid step after rejected feeds: %v", err)
	}
}

func TestBytesPushedAccounting(t *testing.T) {
	cfg := models.DefaultTinyLM()
	tr := newTrainer(t, cfg, core.ArchHybrid, cluster.Uniform(2, 2), 2, nil)
	feeds, _ := lmFeeds(tr.Workers(), cfg.Batch, cfg.Vocab, 1)
	if _, err := tr.Step(feeds); err != nil {
		t.Fatal(err)
	}
	first := tr.BytesPushedLastStep()
	if first <= 0 {
		t.Fatalf("BytesPushedLastStep = %d, want > 0", first)
	}
	// Dense AR traffic is shape-determined, so a second step pushes at
	// least the dense payload again; the counter must reset, not grow
	// monotonically.
	feeds, _ = lmFeeds(tr.Workers(), cfg.Batch, cfg.Vocab, 2)
	if _, err := tr.Step(feeds); err != nil {
		t.Fatal(err)
	}
	second := tr.BytesPushedLastStep()
	if second <= 0 || second > 2*first {
		t.Fatalf("BytesPushedLastStep = %d after second step (first %d): counter did not reset", second, first)
	}
}
