// Package optim implements the optimizers and gradient utilities used by
// the training runtimes: plain SGD and momentum SGD, each supporting both
// dense gradients and sparse (IndexedSlices) gradients, plus global-norm
// clipping and the mean/sum aggregation policies exposed through
// ParallaxConfig (§4.1: "aggregation methods for each type of variable
// indicating whether to compute the average of gradients ... or the sum").
package optim

import (
	"fmt"
	"math"
	"slices"
	"sync"

	"parallax/internal/graph"
	"parallax/internal/tensor"
)

// Optimizer applies a gradient to a variable's storage. Implementations
// keep per-variable state keyed by name, so one optimizer instance serves a
// whole model.
type Optimizer interface {
	// ApplyDense performs an in-place update of v with dense gradient g.
	ApplyDense(name string, v *tensor.Dense, g *tensor.Dense)
	// ApplySparse performs an in-place update of v with sparse gradient g,
	// touching only the referenced rows.
	ApplySparse(name string, v *tensor.Dense, g *tensor.Sparse)
}

// SlotState is implemented by optimizers that keep per-key slot state
// (momentum velocity, Adam moments). The parameter-server runtime uses it
// to migrate accumulated state when a variable's partitioning changes at
// runtime (live resharding, DESIGN.md §9): the state of the old partition
// keys is exported row-by-row, reassembled, and imported under the new
// keys, so a resharded run continues bit-identically.
//
// Stateless optimizers (SGD) simply do not implement the interface; the
// migration then moves variable values only.
type SlotState interface {
	// Slots names the per-key state slots in a fixed order ("velocity").
	Slots() []string
	// SlotValue returns the live state tensor for (slot, key), nil if the
	// key has never been updated. The caller must not mutate or retain it
	// across updates; snapshot paths clone it while the key is quiescent.
	SlotValue(slot, key string) *tensor.Dense
	// SetSlot installs state for (slot, key), replacing any existing
	// tensor. The optimizer takes ownership of v.
	SetSlot(slot, key string, v *tensor.Dense)
	// DeleteKey drops all slot state of key (the old partition keys of a
	// resharded variable).
	DeleteKey(key string)
}

// SGD is stateless stochastic gradient descent: v -= lr * g.
type SGD struct {
	LR float32
}

// NewSGD returns an SGD optimizer with the given learning rate.
func NewSGD(lr float32) *SGD { return &SGD{LR: lr} }

// ApplyDense implements Optimizer.
func (s *SGD) ApplyDense(_ string, v *tensor.Dense, g *tensor.Dense) {
	v.AXPY(-s.LR, g)
}

// ApplySparse implements Optimizer. Duplicate rows accumulate, matching
// TensorFlow's scatter-sub semantics for IndexedSlices.
func (s *SGD) ApplySparse(_ string, v *tensor.Dense, g *tensor.Sparse) {
	tensor.ScatterAddSparse(v, -s.LR, g)
}

// Momentum is SGD with classical momentum. Sparse gradients update only the
// touched rows' velocity, the behaviour of TF's sparse momentum apply.
type Momentum struct {
	LR, Mu float32
	mu     sync.Mutex // guards the vel map (keys are updated under the
	// caller's per-key locks — psrt partition locks — but different keys'
	// applies run concurrently and must not race on the map itself)
	vel map[string]*tensor.Dense
}

// NewMomentum returns a momentum optimizer.
func NewMomentum(lr, mu float32) *Momentum {
	return &Momentum{LR: lr, Mu: mu, vel: make(map[string]*tensor.Dense)}
}

func (m *Momentum) velocity(name string, shape []int) *tensor.Dense {
	m.mu.Lock()
	v, ok := m.vel[name]
	if !ok {
		v = tensor.NewDense(shape...)
		m.vel[name] = v
	}
	m.mu.Unlock()
	return v
}

// Slots implements SlotState: momentum keeps one velocity slot per key.
func (m *Momentum) Slots() []string { return []string{"velocity"} }

// SlotValue implements SlotState.
func (m *Momentum) SlotValue(slot, key string) *tensor.Dense {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.vel[key]
}

// SetSlot implements SlotState.
func (m *Momentum) SetSlot(slot, key string, v *tensor.Dense) {
	m.mu.Lock()
	m.vel[key] = v
	m.mu.Unlock()
}

// DeleteKey implements SlotState.
func (m *Momentum) DeleteKey(key string) {
	m.mu.Lock()
	delete(m.vel, key)
	m.mu.Unlock()
}

// ApplyDense implements Optimizer.
func (m *Momentum) ApplyDense(name string, v *tensor.Dense, g *tensor.Dense) {
	vel := m.velocity(name, v.Shape())
	vel.Scale(m.Mu)
	vel.AddInto(g)
	v.AXPY(-m.LR, vel)
}

// ApplySparse implements Optimizer.
func (m *Momentum) ApplySparse(name string, v *tensor.Dense, g *tensor.Sparse) {
	vel := m.velocity(name, v.Shape())
	co := g.Coalesce()
	w := co.RowWidth()
	for i, r := range co.Rows {
		vrow := vel.Data()[r*w : (r+1)*w]
		grow := co.Values.Data()[i*w : (i+1)*w]
		dst := v.Data()[r*w : (r+1)*w]
		for j := range vrow {
			vrow[j] = m.Mu*vrow[j] + grow[j]
			dst[j] -= m.LR * vrow[j]
		}
	}
}

// AggMethod selects how gradients from N workers combine.
type AggMethod int

const (
	// AggMean divides the summed gradient by the worker count (the usual
	// synchronous-SGD convention).
	AggMean AggMethod = iota
	// AggSum keeps the raw sum.
	AggSum
)

func (a AggMethod) String() string {
	if a == AggSum {
		return "sum"
	}
	return "mean"
}

// FinalizeDense converts a summed dense gradient to the configured
// aggregation in place.
func FinalizeDense(g *tensor.Dense, workers int, m AggMethod) {
	if m == AggMean && workers > 1 {
		g.Scale(1 / float32(workers))
	}
}

// FinalizeSparse converts a concatenated/summed sparse gradient to the
// configured aggregation in place.
func FinalizeSparse(g *tensor.Sparse, workers int, m AggMethod) {
	if m == AggMean && workers > 1 {
		g.Scale(1 / float32(workers))
	}
}

// ClipByGlobalNorm scales all gradients in gs so their joint L2 norm does
// not exceed maxNorm, returning the pre-clip norm. This is the operation
// whose need for *aggregated* gradients forces the chief-worker read-back
// path in §5.
func ClipByGlobalNorm(gs *graph.GradSet, maxNorm float64) float64 {
	if maxNorm <= 0 {
		panic(fmt.Sprintf("optim: maxNorm %v", maxNorm))
	}
	// Collect in sorted-name order: GlobalNorm folds the squared norms
	// in slice order, and a map-ordered fold would make the clip scale
	// — and therefore every clipped bit — differ run to run.
	var denseNames, sparseNames []string
	for name := range gs.Dense {
		denseNames = append(denseNames, name)
	}
	slices.Sort(denseNames)
	for name := range gs.Sparse {
		sparseNames = append(sparseNames, name)
	}
	slices.Sort(sparseNames)
	dense := make([]*tensor.Dense, 0, len(denseNames))
	for _, name := range denseNames {
		dense = append(dense, gs.Dense[name])
	}
	sparse := make([]*tensor.Sparse, 0, len(sparseNames))
	for _, name := range sparseNames {
		sparse = append(sparse, gs.Sparse[name])
	}
	norm := tensor.GlobalNorm(dense, sparse)
	if norm > maxNorm && norm > 0 {
		scale := float32(maxNorm / norm)
		for _, d := range dense {
			d.Scale(scale)
		}
		for _, s := range sparse {
			s.Scale(scale)
		}
	}
	return norm
}

// LossIsFinite reports whether a loss value is usable (guards training
// loops against divergence).
func LossIsFinite(l float64) bool { return !math.IsNaN(l) && !math.IsInf(l, 0) }
