package optim

import (
	"math"
	"testing"

	"parallax/internal/graph"
	"parallax/internal/tensor"
)

func TestSGDDense(t *testing.T) {
	v := tensor.FromSlice([]float32{1, 2}, 2)
	g := tensor.FromSlice([]float32{10, 20}, 2)
	NewSGD(0.1).ApplyDense("v", v, g)
	if v.At(0) != 0 || v.At(1) != 0 {
		t.Fatalf("v = %v, want [0 0]", v.Data())
	}
}

func TestSGDSparseTouchesOnlyReferencedRows(t *testing.T) {
	v := tensor.NewDense(4, 2)
	v.Fill(1)
	sp := tensor.NewSparse([]int{2, 2}, tensor.FromSlice([]float32{1, 1, 1, 1}, 2, 2), 4)
	NewSGD(0.5).ApplySparse("v", v, sp)
	if v.At(2, 0) != 0 { // 1 - 0.5*(1+1)
		t.Fatalf("row 2 = %v, want 0", v.At(2, 0))
	}
	if v.At(0, 0) != 1 || v.At(3, 1) != 1 {
		t.Fatal("untouched rows modified")
	}
}

func TestMomentumAcceleratesDense(t *testing.T) {
	m := NewMomentum(0.1, 0.9)
	v := tensor.FromSlice([]float32{0}, 1)
	g := tensor.FromSlice([]float32{1}, 1)
	m.ApplyDense("v", v, g)
	first := -v.At(0) // step size of first update = lr*1
	m.ApplyDense("v", v, g)
	second := float64(-v.At(0)) - float64(first)
	if !(second > float64(first)) {
		t.Fatalf("momentum did not accelerate: first=%v second=%v", first, second)
	}
}

func TestMomentumSparseMatchesDenseEquivalent(t *testing.T) {
	// Applying a sparse gradient must equal applying its densified form
	// when every step touches the same rows.
	md := NewMomentum(0.1, 0.9)
	ms := NewMomentum(0.1, 0.9)
	rng := tensor.NewRNG(1)
	vd := rng.RandN(1, 5, 3)
	vs := vd.Clone()
	for step := 0; step < 4; step++ {
		sp := tensor.NewSparse([]int{1, 3}, rng.RandN(1, 2, 3), 5)
		md.ApplyDense("v", vd, sp.ToDense())
		ms.ApplySparse("v", vs, sp)
	}
	if vd.MaxAbsDiff(vs) > 1e-5 {
		t.Fatalf("sparse momentum diverged from dense by %v", vd.MaxAbsDiff(vs))
	}
}

func TestFinalizeMeanAndSum(t *testing.T) {
	g := tensor.FromSlice([]float32{8}, 1)
	FinalizeDense(g, 4, AggMean)
	if g.At(0) != 2 {
		t.Fatalf("mean = %v, want 2", g.At(0))
	}
	FinalizeDense(g, 4, AggSum)
	if g.At(0) != 2 {
		t.Fatal("sum must not rescale")
	}
	sp := tensor.NewSparse([]int{0}, tensor.FromSlice([]float32{8}, 1, 1), 2)
	FinalizeSparse(sp, 2, AggMean)
	if sp.Values.At(0, 0) != 4 {
		t.Fatalf("sparse mean = %v, want 4", sp.Values.At(0, 0))
	}
}

func TestClipByGlobalNorm(t *testing.T) {
	gs := graph.NewGradSet()
	gs.Dense["a"] = tensor.FromSlice([]float32{3}, 1)
	gs.Sparse["b"] = tensor.NewSparse([]int{0}, tensor.FromSlice([]float32{4}, 1, 1), 2)
	norm := ClipByGlobalNorm(gs, 1.0)
	if math.Abs(norm-5) > 1e-6 {
		t.Fatalf("pre-clip norm = %v, want 5", norm)
	}
	// After clipping, joint norm must be 1.
	var dense []*tensor.Dense
	var sparse []*tensor.Sparse
	for _, d := range gs.Dense {
		dense = append(dense, d)
	}
	for _, s := range gs.Sparse {
		sparse = append(sparse, s)
	}
	if got := tensor.GlobalNorm(dense, sparse); math.Abs(got-1) > 1e-5 {
		t.Fatalf("post-clip norm = %v, want 1", got)
	}
}

func TestClipNoOpBelowThreshold(t *testing.T) {
	gs := graph.NewGradSet()
	gs.Dense["a"] = tensor.FromSlice([]float32{0.3}, 1)
	ClipByGlobalNorm(gs, 10)
	if gs.Dense["a"].At(0) != 0.3 {
		t.Fatal("clip modified gradient below threshold")
	}
}

func TestLossIsFinite(t *testing.T) {
	if !LossIsFinite(1.5) || LossIsFinite(math.NaN()) || LossIsFinite(math.Inf(1)) {
		t.Fatal("LossIsFinite wrong")
	}
}
