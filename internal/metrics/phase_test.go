package metrics

import (
	"testing"
	"time"
)

func TestOverlapFraction(t *testing.T) {
	cases := []struct {
		comm, wait time.Duration
		want       float64
	}{
		{0, 0, 0},                      // no comm at all
		{100 * time.Millisecond, 0, 1}, // fully hidden
		{100 * time.Millisecond, 100 * time.Millisecond, 0}, // fully exposed
		{100 * time.Millisecond, 25 * time.Millisecond, 0.75},
		{100 * time.Millisecond, 150 * time.Millisecond, 0}, // wait > comm clamps
	}
	for _, c := range cases {
		s := StepStats{CommTime: c.comm, SyncWait: c.wait}
		if got := s.OverlapFraction(); got != c.want {
			t.Errorf("OverlapFraction(comm=%v wait=%v) = %v, want %v", c.comm, c.wait, got, c.want)
		}
	}
}

func TestLoopStatsAggregatesPhases(t *testing.T) {
	var l LoopStats
	l.Observe(StepStats{Loss: 1, ComputeTime: 10 * time.Millisecond, CommTime: 4 * time.Millisecond, SyncWait: 1 * time.Millisecond})
	l.Observe(StepStats{Loss: 2, ComputeTime: 20 * time.Millisecond, CommTime: 6 * time.Millisecond, SyncWait: 4 * time.Millisecond})
	if l.TotalCompute != 30*time.Millisecond || l.TotalComm != 10*time.Millisecond || l.TotalSyncWait != 5*time.Millisecond {
		t.Fatalf("totals = %v/%v/%v", l.TotalCompute, l.TotalComm, l.TotalSyncWait)
	}
	if got := l.OverlapFraction(); got != 0.5 {
		t.Fatalf("loop OverlapFraction = %v, want 0.5", got)
	}
}
