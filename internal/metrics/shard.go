package metrics

import (
	"fmt"
	"sort"
	"strings"

	"parallax/internal/core"
	"parallax/internal/partition"
	"parallax/internal/tensor"
)

// ShardRoute describes one variable's live sharding for reporting: which
// synchronization method it uses and, for parameter-server variables,
// how its rows are split into partitions and which machine owns each.
// The runner and parallax-info render these with FormatShardMap.
type ShardRoute struct {
	Var        string
	Method     string
	Partitions int
	// Rows[pi] is partition pi's row count; Servers[pi] its owning
	// machine. Both are empty for collective (replicated) routes.
	Rows    []int
	Servers []int
}

// ShardRoutes derives the reportable shard map from a plan's
// assignments: PS routes expand their row ranges partition by partition
// (tensor.PartitionRows, the layout the servers actually use),
// collective routes render as replicated. The runner's live ShardMap
// and parallax-info's static plan view share this one translation.
func ShardRoutes(assignments []core.Assignment) []ShardRoute {
	routes := make([]ShardRoute, 0, len(assignments))
	for _, a := range assignments {
		sr := ShardRoute{Var: a.Name, Method: a.Method.String(), Partitions: a.Partitions}
		if a.Method == core.MethodPS {
			for _, rr := range tensor.PartitionRows(int(a.Rows), a.Partitions) {
				sr.Rows = append(sr.Rows, rr.Len())
			}
			sr.Servers = a.Servers
		}
		routes = append(routes, sr)
	}
	return routes
}

// maxShardEntries bounds how many per-partition entries one route line
// prints before eliding (a 128-way embedding would otherwise drown the
// report); the per-server row totals always cover every partition.
const maxShardEntries = 8

// FormatShardMap renders the per-route shard map: one line per variable
// with its partition→machine assignment and per-server row totals.
func FormatShardMap(routes []ShardRoute) string {
	var b strings.Builder
	b.WriteString("shard map:\n")
	for _, r := range routes {
		if len(r.Servers) == 0 {
			fmt.Fprintf(&b, "  %-24s %-14s replicated on every worker\n", r.Var, r.Method)
			continue
		}
		fmt.Fprintf(&b, "  %-24s %-14s", r.Var, fmt.Sprintf("%s x%d", r.Method, r.Partitions))
		shown := len(r.Servers)
		if shown > maxShardEntries {
			shown = maxShardEntries
		}
		start := 0
		for pi := 0; pi < shown; pi++ {
			fmt.Fprintf(&b, " p%d[%d,%d)->m%d", pi, start, start+r.Rows[pi], r.Servers[pi])
			start += r.Rows[pi]
		}
		if shown < len(r.Servers) {
			fmt.Fprintf(&b, " ... (+%d more)", len(r.Servers)-shown)
		}
		perServer := map[int]int{}
		maxSrv := 0
		for pi, srv := range r.Servers {
			perServer[srv] += r.Rows[pi]
			if srv > maxSrv {
				maxSrv = srv
			}
		}
		b.WriteString("  rows/server:")
		for m := 0; m <= maxSrv; m++ {
			if n, ok := perServer[m]; ok {
				fmt.Fprintf(&b, " m%d=%d", m, n)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatPartitionDecision renders the §3.2 partition-count decision:
// whether P was fixed by configuration or found by the sampling search,
// and — for searched decisions — the sampled operating points, the
// fitted cost model θ, and the run budget consumed. res is nil for
// fixed decisions.
func FormatPartitionDecision(source string, p int, res *partition.SearchResult) string {
	if res == nil {
		return fmt.Sprintf("partitions: %d (%s)\n", p, source)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "partitions: %d (%s search, %d measurement runs)\n", p, source, res.Runs)
	samples := append([]partition.Sample(nil), res.Samples...)
	sort.Slice(samples, func(i, j int) bool { return samples[i].P < samples[j].P })
	b.WriteString("  sampled:")
	for _, s := range samples {
		fmt.Fprintf(&b, " P=%d:%.4gs", s.P, s.IterTime)
	}
	b.WriteByte('\n')
	m := res.Model
	if m.Theta0 == 0 && m.Theta1 == 0 && m.Theta2 == 0 {
		b.WriteString("  fit: degenerate bracket, kept the best sampled point\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  fitted theta0=%.4g theta1=%.4g theta2=%.4g", m.Theta0, m.Theta1, m.Theta2)
	if crit, ok := m.CriticalP(); ok {
		fmt.Fprintf(&b, "  critical P*=%.1f", crit)
	}
	b.WriteByte('\n')
	return b.String()
}
