package metrics

import (
	"strings"
	"testing"
)

func TestHumanize(t *testing.T) {
	cases := map[float64]string{
		274_000: "274k",
		98_900:  "98.9k",
		5_800:   "5.8k",
		191:     "191",
		0.5:     "0.50",
	}
	for v, want := range cases {
		if got := Humanize(v); got != want {
			t.Errorf("Humanize(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestHumanBytes(t *testing.T) {
	if got := HumanBytes(1.5e9); got != "1.50 GB" {
		t.Errorf("got %q", got)
	}
	if got := HumanBytes(2.5e6); got != "2.5 MB" {
		t.Errorf("got %q", got)
	}
	if got := HumanBytes(12); got != "12 B" {
		t.Errorf("got %q", got)
	}
}

func TestScalingEfficiency(t *testing.T) {
	// Paper §1: LM on TF with 48 GPUs has 7% scaling efficiency.
	if got := ScalingEfficiency(98_900, 29_100, 48); got < 0.06 || got > 0.08 {
		t.Fatalf("efficiency = %v, want ~0.07", got)
	}
	if ScalingEfficiency(1, 0, 4) != 0 {
		t.Fatal("zero baseline must give 0")
	}
}

func TestNormalizedThroughput(t *testing.T) {
	if got := NormalizedThroughput(7600, 191); got < 39 || got > 41 {
		t.Fatalf("normalized = %v, want ~39.8", got)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Table 1", "Model", "PS", "AR")
	tbl.AddRow("ResNet-50", "5.8k", "7.6k")
	tbl.AddRow("LM", "98.9k", "45.5k")
	tbl.AddNote("48 GPUs")
	s := tbl.String()
	for _, want := range []string{"== Table 1 ==", "Model", "ResNet-50", "98.9k", "note: 48 GPUs", "-----"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
	if tbl.Rows() != 2 {
		t.Fatalf("Rows = %d", tbl.Rows())
	}
	// Missing cells render empty, extra cells are dropped.
	tbl2 := NewTable("x", "a", "b")
	tbl2.AddRow("1")
	tbl2.AddRow("1", "2", "3")
	if !strings.Contains(tbl2.String(), "1") {
		t.Fatal("row lost")
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(274_000, 98_900); got != "2.77x" {
		t.Fatalf("Ratio = %q", got)
	}
	if Ratio(1, 0) != "n/a" {
		t.Fatal("division by zero not handled")
	}
}
