package metrics

import (
	"strings"
	"testing"

	"parallax/internal/partition"
)

func TestHumanize(t *testing.T) {
	cases := map[float64]string{
		274_000: "274k",
		98_900:  "98.9k",
		5_800:   "5.8k",
		191:     "191",
		0.5:     "0.50",
	}
	for v, want := range cases {
		if got := Humanize(v); got != want {
			t.Errorf("Humanize(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestHumanBytes(t *testing.T) {
	if got := HumanBytes(1.5e9); got != "1.50 GB" {
		t.Errorf("got %q", got)
	}
	if got := HumanBytes(2.5e6); got != "2.5 MB" {
		t.Errorf("got %q", got)
	}
	if got := HumanBytes(12); got != "12 B" {
		t.Errorf("got %q", got)
	}
}

func TestScalingEfficiency(t *testing.T) {
	// Paper §1: LM on TF with 48 GPUs has 7% scaling efficiency.
	if got := ScalingEfficiency(98_900, 29_100, 48); got < 0.06 || got > 0.08 {
		t.Fatalf("efficiency = %v, want ~0.07", got)
	}
	if ScalingEfficiency(1, 0, 4) != 0 {
		t.Fatal("zero baseline must give 0")
	}
}

func TestNormalizedThroughput(t *testing.T) {
	if got := NormalizedThroughput(7600, 191); got < 39 || got > 41 {
		t.Fatalf("normalized = %v, want ~39.8", got)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Table 1", "Model", "PS", "AR")
	tbl.AddRow("ResNet-50", "5.8k", "7.6k")
	tbl.AddRow("LM", "98.9k", "45.5k")
	tbl.AddNote("48 GPUs")
	s := tbl.String()
	for _, want := range []string{"== Table 1 ==", "Model", "ResNet-50", "98.9k", "note: 48 GPUs", "-----"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
	if tbl.Rows() != 2 {
		t.Fatalf("Rows = %d", tbl.Rows())
	}
	// Missing cells render empty, extra cells are dropped.
	tbl2 := NewTable("x", "a", "b")
	tbl2.AddRow("1")
	tbl2.AddRow("1", "2", "3")
	if !strings.Contains(tbl2.String(), "1") {
		t.Fatal("row lost")
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(274_000, 98_900); got != "2.77x" {
		t.Fatalf("Ratio = %q", got)
	}
	if Ratio(1, 0) != "n/a" {
		t.Fatal("division by zero not handled")
	}
}

func TestFormatShardMapAndDecision(t *testing.T) {
	out := FormatShardMap([]ShardRoute{
		{Var: "embedding", Method: "ps", Partitions: 3, Rows: []int{4, 3, 3}, Servers: []int{0, 1, 0}},
		{Var: "proj", Method: "allreduce"},
	})
	for _, want := range []string{"embedding", "ps x3", "p0[0,4)->m0", "p2[7,10)->m0",
		"rows/server: m0=7 m1=3", "proj", "replicated"} {
		if !strings.Contains(out, want) {
			t.Errorf("shard map missing %q:\n%s", want, out)
		}
	}
	// Long maps elide per-partition entries but keep full server totals.
	rows := make([]int, 20)
	servers := make([]int, 20)
	for i := range rows {
		rows[i], servers[i] = 2, i%2
	}
	out = FormatShardMap([]ShardRoute{{Var: "big", Method: "ps", Partitions: 20, Rows: rows, Servers: servers}})
	if !strings.Contains(out, "(+12 more)") || !strings.Contains(out, "m0=20 m1=20") {
		t.Errorf("elided shard map wrong:\n%s", out)
	}

	if out := FormatPartitionDecision("fixed", 8, nil); !strings.Contains(out, "partitions: 8 (fixed)") {
		t.Errorf("fixed decision: %q", out)
	}
	res := &partition.SearchResult{
		BestP:   4,
		Runs:    3,
		Samples: []partition.Sample{{P: 8, IterTime: 0.5}, {P: 2, IterTime: 0.4}, {P: 4, IterTime: 0.3}},
		Model:   partition.CostModel{Theta0: 0.1, Theta1: 0.8, Theta2: 0.05},
	}
	out = FormatPartitionDecision("online", 4, res)
	for _, want := range []string{"partitions: 4 (online search, 3 measurement runs)",
		"P=2:0.4s P=4:0.3s P=8:0.5s", "theta1=0.8", "critical P*=4.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("decision missing %q:\n%s", want, out)
		}
	}
	if out := FormatPartitionDecision("online", 2, &partition.SearchResult{
		BestP: 2, Runs: 2, Samples: []partition.Sample{{P: 2, IterTime: 1}},
	}); !strings.Contains(out, "degenerate bracket") {
		t.Errorf("degenerate fit not reported: %q", out)
	}
}
