package metrics

import (
	"strings"
	"testing"
)

func TestPromCounterGaugeText(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("parallax_steps_total", "Completed training steps.", "job", "tenant")
	g := r.NewGauge("parallax_jobs_running", "Jobs currently training.")
	c.Add(3, "j1", "acme")
	c.Inc("j1", "acme")
	c.Inc("j2", "zeta")
	g.Set(2)

	got := r.Text()
	want := strings.Join([]string{
		`# HELP parallax_steps_total Completed training steps.`,
		`# TYPE parallax_steps_total counter`,
		`parallax_steps_total{job="j1",tenant="acme"} 4`,
		`parallax_steps_total{job="j2",tenant="zeta"} 1`,
		`# HELP parallax_jobs_running Jobs currently training.`,
		`# TYPE parallax_jobs_running gauge`,
		`parallax_jobs_running 2`,
		``,
	}, "\n")
	if got != want {
		t.Errorf("text mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestPromHistogramText(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("parallax_step_seconds", "Step latency.", []float64{0.01, 0.1, 1}, "job")
	h.Observe(0.005, "j1")
	h.Observe(0.05, "j1")
	h.Observe(5, "j1")

	got := r.Text()
	want := strings.Join([]string{
		`# HELP parallax_step_seconds Step latency.`,
		`# TYPE parallax_step_seconds histogram`,
		`parallax_step_seconds_bucket{job="j1",le="0.01"} 1`,
		`parallax_step_seconds_bucket{job="j1",le="0.1"} 2`,
		`parallax_step_seconds_bucket{job="j1",le="1"} 2`,
		`parallax_step_seconds_bucket{job="j1",le="+Inf"} 3`,
		`parallax_step_seconds_sum{job="j1"} 5.055`,
		`parallax_step_seconds_count{job="j1"} 3`,
		``,
	}, "\n")
	if got != want {
		t.Errorf("text mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestPromDeterministicOrderAndEscaping(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("x_total", "X.", "l")
	c.Inc("b")
	c.Inc("a")
	c.Inc(`qu"ote\back`)
	got := r.Text()
	// Series sort by label value; quote and backslash are escaped.
	wantOrder := []string{`l="a"`, `l="b"`, `l="qu\"ote\\back"`}
	pos := -1
	for _, w := range wantOrder {
		p := strings.Index(got, w)
		if p < 0 {
			t.Fatalf("missing %s in:\n%s", w, got)
		}
		if p < pos {
			t.Errorf("series out of order: %s at %d before %d\n%s", w, p, pos, got)
		}
		pos = p
	}
	// Rendering twice is identical (deterministic).
	if again := r.Text(); again != got {
		t.Error("non-deterministic render")
	}
}

func TestPromEmptyFamilyOmitted(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("unused_total", "Never incremented.", "job")
	if got := r.Text(); got != "" {
		t.Errorf("empty family rendered: %q", got)
	}
}

func TestPromReregisterSameShape(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("dup_total", "Dup.", "j")
	b := r.NewCounter("dup_total", "Dup.", "j")
	a.Inc("x")
	b.Inc("x")
	if got := r.Text(); !strings.Contains(got, `dup_total{j="x"} 2`) {
		t.Errorf("re-registered counter did not share state:\n%s", got)
	}
}
