package metrics

import (
	"fmt"
	"time"
)

// StepStats is one training step's measurements, emitted by the persistent
// runtime's RunLoop for every iteration: the quantities the paper's
// evaluation tracks per step (loss curves in Fig. 7, step time behind the
// throughput tables, network transfer in Table 3).
type StepStats struct {
	// Step is the zero-based iteration number.
	Step int
	// Loss is the mean loss across workers.
	Loss float64
	// StepTime is the wall-clock duration of the synchronous step.
	StepTime time.Duration
	// BytesPushed counts the gradient payload bytes all workers handed to
	// the synchronization layer (ring collectives + parameter servers)
	// during the step.
	BytesPushed int64
}

// LoopStats aggregates StepStats over a training loop.
type LoopStats struct {
	// Steps is the number of observed steps.
	Steps int
	// FirstLoss and LastLoss bracket the loss trajectory; MeanLoss
	// averages it.
	FirstLoss, LastLoss, MeanLoss float64
	// TotalTime is the summed step wall-clock time.
	TotalTime time.Duration
	// TotalBytesPushed sums the per-step gradient traffic.
	TotalBytesPushed int64

	lossSum float64
}

// Observe folds one step's stats into the aggregate.
func (l *LoopStats) Observe(s StepStats) {
	if l.Steps == 0 {
		l.FirstLoss = s.Loss
	}
	l.Steps++
	l.LastLoss = s.Loss
	l.lossSum += s.Loss
	l.MeanLoss = l.lossSum / float64(l.Steps)
	l.TotalTime += s.StepTime
	l.TotalBytesPushed += s.BytesPushed
}

// StepsPerSec returns the observed step throughput.
func (l LoopStats) StepsPerSec() float64 {
	if l.TotalTime <= 0 {
		return 0
	}
	return float64(l.Steps) / l.TotalTime.Seconds()
}

// String renders a one-line summary.
func (l LoopStats) String() string {
	return fmt.Sprintf("%d steps in %v (%s steps/s), loss %.4f -> %.4f, pushed %s",
		l.Steps, l.TotalTime.Round(time.Millisecond), Humanize(l.StepsPerSec()),
		l.FirstLoss, l.LastLoss, HumanBytes(float64(l.TotalBytesPushed)))
}
