package metrics

import (
	"fmt"
	"time"
)

// StepStats is one training step's measurements, emitted by the persistent
// runtime's RunLoop for every iteration: the quantities the paper's
// evaluation tracks per step (loss curves in Fig. 7, step time behind the
// throughput tables, network transfer in Table 3).
type StepStats struct {
	// Step is the zero-based iteration number.
	Step int
	// Loss is the mean loss across workers.
	Loss float64
	// StepTime is the wall-clock duration of the synchronous step.
	StepTime time.Duration
	// BytesPushed counts the gradient payload bytes all workers handed to
	// the synchronization layer (ring collectives + parameter servers)
	// during the step.
	BytesPushed int64

	// WireSentBytes / WireRecvBytes count the framed bytes this process
	// actually moved over the wire transport during the step (zero for
	// single-process runs over the in-memory fabric; socket bytes for
	// multi-agent runs over transport.TCP, including serving traffic for
	// remote workers).
	WireSentBytes int64
	WireRecvBytes int64

	// WireSentBytesRaw / WireCompressedBytes break down the compressed
	// share of WireSentBytes under a wire-compression policy (DESIGN.md
	// §11): for every frame that traveled in a compressed encoding, Raw
	// accumulates what the classic f32 frame would have cost and
	// Compressed the bytes actually written. Both are zero for
	// uncompressed runs and for the in-memory fabric.
	WireSentBytesRaw    int64
	WireCompressedBytes int64

	// Per-phase breakdown (slowest worker per phase): ComputeTime is the
	// forward+backward wall clock, CommTime is synchronization busy time,
	// and SyncWait is the part of CommTime that was NOT hidden under
	// compute — the drain the worker paid after its backward pass
	// finished. CommTime−SyncWait is the overlap the fused schedule won.
	ComputeTime time.Duration
	CommTime    time.Duration
	SyncWait    time.Duration

	// Epoch is the fabric generation the step ran at: 0 until a failure
	// recovery, epoch+1 after each re-rendezvous (DESIGN.md §12).
	// RecoveryCount is the number of in-place recoveries the session has
	// performed so far. Both stay zero in single-process runs and in
	// distributed runs that never lost a peer.
	Epoch         int
	RecoveryCount int
}

// OverlapFraction is the share of synchronization time hidden under
// backward compute, in [0,1]; 0 when the step did no synchronization.
func (s StepStats) OverlapFraction() float64 {
	return overlapFraction(s.CommTime, s.SyncWait)
}

// CompressionRatio returns raw/compressed over the frames that traveled
// compressed this step — the payload reduction the wire-compression
// policy achieved — or 0 when nothing traveled compressed.
func (s StepStats) CompressionRatio() float64 {
	return compressionRatio(s.WireSentBytesRaw, s.WireCompressedBytes)
}

func compressionRatio(raw, comp int64) float64 {
	if comp <= 0 {
		return 0
	}
	return float64(raw) / float64(comp)
}

func overlapFraction(comm, wait time.Duration) float64 {
	if comm <= 0 {
		return 0
	}
	f := 1 - float64(wait)/float64(comm)
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// LoopStats aggregates StepStats over a training loop.
type LoopStats struct {
	// Steps is the number of observed steps.
	Steps int
	// FirstLoss and LastLoss bracket the loss trajectory; MeanLoss
	// averages it.
	FirstLoss, LastLoss, MeanLoss float64
	// TotalTime is the summed step wall-clock time.
	TotalTime time.Duration
	// TotalBytesPushed sums the per-step gradient traffic.
	TotalBytesPushed int64
	// TotalWireSent/TotalWireRecv sum the per-step wire bytes this
	// process exchanged with peer agents (zero for single-process runs).
	TotalWireSent int64
	TotalWireRecv int64
	// TotalWireRaw/TotalWireCompressed sum the per-step compression
	// accounting (see StepStats.WireSentBytesRaw).
	TotalWireRaw        int64
	TotalWireCompressed int64
	// TotalCompute/TotalComm/TotalSyncWait sum the per-step phase
	// breakdowns.
	TotalCompute  time.Duration
	TotalComm     time.Duration
	TotalSyncWait time.Duration

	lossSum float64
}

// OverlapFraction is the loop-wide share of synchronization time hidden
// under backward compute.
func (l LoopStats) OverlapFraction() float64 {
	return overlapFraction(l.TotalComm, l.TotalSyncWait)
}

// Observe folds one step's stats into the aggregate.
func (l *LoopStats) Observe(s StepStats) {
	if l.Steps == 0 {
		l.FirstLoss = s.Loss
	}
	l.Steps++
	l.LastLoss = s.Loss
	l.lossSum += s.Loss
	l.MeanLoss = l.lossSum / float64(l.Steps)
	l.TotalTime += s.StepTime
	l.TotalBytesPushed += s.BytesPushed
	l.TotalWireSent += s.WireSentBytes
	l.TotalWireRecv += s.WireRecvBytes
	l.TotalWireRaw += s.WireSentBytesRaw
	l.TotalWireCompressed += s.WireCompressedBytes
	l.TotalCompute += s.ComputeTime
	l.TotalComm += s.CommTime
	l.TotalSyncWait += s.SyncWait
}

// StepsPerSec returns the observed step throughput.
func (l LoopStats) StepsPerSec() float64 {
	if l.TotalTime <= 0 {
		return 0
	}
	return float64(l.Steps) / l.TotalTime.Seconds()
}

// String renders a one-line summary; wire traffic appears only when the
// run actually crossed a wire.
func (l LoopStats) String() string {
	s := fmt.Sprintf("%d steps in %v (%s steps/s), loss %.4f -> %.4f, pushed %s, %.0f%% comm overlapped",
		l.Steps, l.TotalTime.Round(time.Millisecond), Humanize(l.StepsPerSec()),
		l.FirstLoss, l.LastLoss, HumanBytes(float64(l.TotalBytesPushed)),
		100*l.OverlapFraction())
	if l.TotalWireSent > 0 || l.TotalWireRecv > 0 {
		s += fmt.Sprintf(", wire tx %s rx %s",
			HumanBytes(float64(l.TotalWireSent)), HumanBytes(float64(l.TotalWireRecv)))
	}
	if r := l.CompressionRatio(); r > 0 {
		s += fmt.Sprintf(", compressed %.1fx", r)
	}
	return s
}

// CompressionRatio is the loop-wide payload reduction over compressed
// frames (0 when nothing traveled compressed).
func (l LoopStats) CompressionRatio() float64 {
	return compressionRatio(l.TotalWireRaw, l.TotalWireCompressed)
}
