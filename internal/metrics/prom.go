// Prometheus text exposition, hand-rolled. The serving daemon exposes
// per-job training metrics at GET /metrics; this file is the whole
// machinery behind it — a small registry of counters, gauges, and
// histograms with label support, rendered in the Prometheus text format
// (version 0.0.4). The repo takes no dependencies, so the format is
// produced directly; output is deterministically ordered (families by
// name, series by label values) so scrapes and tests are stable.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// promKind is the metric family type, named as the TYPE line spells it.
type promKind string

const (
	kindCounter   promKind = "counter"
	kindGauge     promKind = "gauge"
	kindHistogram promKind = "histogram"
)

// promSeries is one labeled series within a family.
type promSeries struct {
	labelValues []string
	value       float64 // counter/gauge
	// histogram state
	buckets []float64 // cumulative counts aligned with family bounds
	sum     float64
	count   uint64
}

// promFamily is one metric family: name, help, type, label names, and
// the labeled series seen so far.
type promFamily struct {
	name       string
	help       string
	kind       promKind
	labelNames []string
	bounds     []float64 // histogram upper bounds, ascending, no +Inf
	series     map[string]*promSeries
}

// Registry holds metric families and renders them as Prometheus text.
// All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*promFamily
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*promFamily{}}
}

// register installs a family, panicking on redefinition with a
// different shape — metric names are code-level constants, so a clash
// is a programming error, not an input error.
func (r *Registry) register(name, help string, kind promKind, bounds []float64, labelNames []string) *promFamily {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labelNames) != len(labelNames) {
			panic(fmt.Sprintf("metrics: %s redefined with different shape", name))
		}
		return f
	}
	f := &promFamily{
		name: name, help: help, kind: kind,
		labelNames: append([]string(nil), labelNames...),
		bounds:     append([]float64(nil), bounds...),
		series:     map[string]*promSeries{},
	}
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

func (f *promFamily) get(labelValues []string) *promSeries {
	if len(labelValues) != len(f.labelNames) {
		panic(fmt.Sprintf("metrics: %s expects %d label values, got %d",
			f.name, len(f.labelNames), len(labelValues)))
	}
	key := strings.Join(labelValues, "\x00")
	s, ok := f.series[key]
	if !ok {
		s = &promSeries{labelValues: append([]string(nil), labelValues...)}
		if f.kind == kindHistogram {
			s.buckets = make([]float64, len(f.bounds))
		}
		f.series[key] = s
	}
	return s
}

// Counter is a monotonically increasing metric family.
type Counter struct {
	r *Registry
	f *promFamily
}

// NewCounter registers (or reuses) a counter family.
func (r *Registry) NewCounter(name, help string, labelNames ...string) *Counter {
	return &Counter{r: r, f: r.register(name, help, kindCounter, nil, labelNames)}
}

// Add increments the labeled series by v (v must be >= 0).
func (c *Counter) Add(v float64, labelValues ...string) {
	if v < 0 {
		panic("metrics: counter decrease")
	}
	c.r.mu.Lock()
	defer c.r.mu.Unlock()
	c.f.get(labelValues).value += v
}

// Inc increments the labeled series by one.
func (c *Counter) Inc(labelValues ...string) { c.Add(1, labelValues...) }

// Gauge is a metric family that can go up and down.
type Gauge struct {
	r *Registry
	f *promFamily
}

// NewGauge registers (or reuses) a gauge family.
func (r *Registry) NewGauge(name, help string, labelNames ...string) *Gauge {
	return &Gauge{r: r, f: r.register(name, help, kindGauge, nil, labelNames)}
}

// Set sets the labeled series to v.
func (g *Gauge) Set(v float64, labelValues ...string) {
	g.r.mu.Lock()
	defer g.r.mu.Unlock()
	g.f.get(labelValues).value = v
}

// Add adjusts the labeled series by v (may be negative).
func (g *Gauge) Add(v float64, labelValues ...string) {
	g.r.mu.Lock()
	defer g.r.mu.Unlock()
	g.f.get(labelValues).value += v
}

// Histogram is a cumulative-bucket histogram family.
type Histogram struct {
	r *Registry
	f *promFamily
}

// NewHistogram registers (or reuses) a histogram family with the given
// ascending upper bounds (the implicit +Inf bucket is added on render).
func (r *Registry) NewHistogram(name, help string, bounds []float64, labelNames ...string) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: %s bounds not ascending", name))
		}
	}
	return &Histogram{r: r, f: r.register(name, help, kindHistogram, bounds, labelNames)}
}

// Observe records one observation in the labeled series.
func (h *Histogram) Observe(v float64, labelValues ...string) {
	h.r.mu.Lock()
	defer h.r.mu.Unlock()
	s := h.f.get(labelValues)
	for i, b := range h.f.bounds {
		if v <= b {
			s.buckets[i]++
		}
	}
	s.sum += v
	s.count++
}

// WriteText renders every family in the text exposition format:
// families in registration order, series sorted by label values.
func (r *Registry) WriteText(w *strings.Builder) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		f := r.families[name]
		if len(f.series) == 0 {
			continue
		}
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			switch f.kind {
			case kindHistogram:
				for i, b := range f.bounds {
					fmt.Fprintf(w, "%s_bucket%s %s\n", f.name,
						labelString(f.labelNames, s.labelValues, "le", formatBound(b)),
						formatValue(s.buckets[i]))
				}
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
					labelString(f.labelNames, s.labelValues, "le", "+Inf"), s.count)
				fmt.Fprintf(w, "%s_sum%s %s\n", f.name,
					labelString(f.labelNames, s.labelValues, "", ""), formatValue(s.sum))
				fmt.Fprintf(w, "%s_count%s %d\n", f.name,
					labelString(f.labelNames, s.labelValues, "", ""), s.count)
			default:
				fmt.Fprintf(w, "%s%s %s\n", f.name,
					labelString(f.labelNames, s.labelValues, "", ""), formatValue(s.value))
			}
		}
	}
}

// Text renders the registry to a string.
func (r *Registry) Text() string {
	var b strings.Builder
	r.WriteText(&b)
	return b.String()
}

// labelString renders {k="v",...}, appending one extra pair (used for
// the histogram "le" label) when extraName is non-empty. Returns "" for
// a label-free series.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	// %q escapes backslash, quote, and newline exactly as the
	// exposition format requires.
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", n, values[i])
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraName, extraValue)
	}
	b.WriteByte('}')
	return b.String()
}

// formatBound renders a histogram upper bound the way Prometheus does.
func formatBound(b float64) string {
	if b == math.Trunc(b) && math.Abs(b) < 1e15 {
		return fmt.Sprintf("%g", b)
	}
	return fmt.Sprintf("%v", b)
}

// formatValue renders a sample value; integers render without exponent.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
