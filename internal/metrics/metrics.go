// Package metrics provides the measurement and reporting layer shared
// by the experiment harness and the live runtime: humanized throughput
// numbers (the paper reports "98.9k words/sec"), scaling efficiency (§1
// footnote 1), aligned paper-vs-measured tables, the per-step
// StepStats / per-loop LoopStats the persistent runtime emits (loss,
// step time, pushed and wire bytes, compute/comm/sync-wait phases,
// overlap fraction), and the shard-map / partition-decision renderers
// the runner and parallax-info print.
package metrics

import (
	"fmt"
	"strings"
)

// Humanize renders a throughput the way the paper's tables do: "5.8k",
// "274k", "437k", plain integers below 1000.
func Humanize(v float64) string {
	switch {
	case v >= 100_000:
		return fmt.Sprintf("%.0fk", v/1000)
	case v >= 10_000:
		return fmt.Sprintf("%.1fk", v/1000)
	case v >= 1_000:
		return fmt.Sprintf("%.1fk", v/1000)
	case v >= 10:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// HumanBytes renders byte counts ("1.2 GB").
func HumanBytes(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2f GB", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1f MB", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1f KB", v/1e3)
	default:
		return fmt.Sprintf("%.0f B", v)
	}
}

// ScalingEfficiency is the paper's footnote-1 metric: measured speedup over
// the ideal linear speedup, as a fraction in [0,1] (19% for NMT on 48 GPUs
// under TF, etc.).
func ScalingEfficiency(throughputN, throughput1 float64, n int) float64 {
	if throughput1 <= 0 || n <= 0 {
		return 0
	}
	return throughputN / (throughput1 * float64(n))
}

// NormalizedThroughput is Figure 9's y-axis: throughput relative to one
// GPU.
func NormalizedThroughput(throughputN, throughput1 float64) float64 {
	if throughput1 <= 0 {
		return 0
	}
	return throughputN / throughput1
}

// Table accumulates rows and renders an aligned plain-text table.
type Table struct {
	title   string
	headers []string
	rows    [][]string
	notes   []string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddNote appends a footnote line rendered under the table.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

// Rows returns the row count.
func (t *Table) Rows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	for _, n := range t.notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Ratio formats a speedup like the paper's "2.8x".
func Ratio(num, den float64) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2fx", num/den)
}
