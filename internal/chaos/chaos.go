// Package chaos is the deterministic fault-injection harness for the
// failure-recovery protocol (DESIGN.md §12). It wraps any
// transport.Fabric and injects faults at exact step boundaries, driven
// by a compact spec string — so a CI round can kill an agent at step 17,
// watch the cluster re-rendezvous at epoch+1, and assert the final loss
// bits equal an uninterrupted reference run.
//
// Faults are step-indexed, never timer-driven: the trainer reports each
// step index through the fabric's SetStep hook before any exchange of
// that step, and the injector fires exactly there. Two runs with the
// same spec and seed inject byte-identical fault schedules.
//
// Spec grammar (comma-separated faults):
//
//	kill@K          tear this process's fabric down at step K, as if the
//	                process crashed (no announcement; peers attribute the
//	                failure via broken connections). The process itself
//	                observes ErrPeerFailed for its own rank and can
//	                recover in place — a crash plus instant restart.
//	sever@K:P       close only the connection to peer process P at step K
//	crash@K         hard-exit the process (status 137) at step K
//	crash-before-save@K   hard-exit just before writing the
//	                auto-checkpoint at step K
//	crash-after-save@K    hard-exit just after writing it
//	delay@K:D       sleep duration D once, before step K (e.g. 50ms)
//	slow@K:D        from step K on, sleep a seed-jittered duration around
//	                D before every step (slow-peer throttling)
//	join@K          fire the OnJoin hook once at step K — the harness's
//	                cue to launch a joining agent against the elastic
//	                cluster (DESIGN.md §14)
//	leave@K:P       fire the OnLeave hook once at step K with machine P:
//	                the session requests a voluntary departure for P when
//	                P is the machine it hosts
//
// The injector is created once per process and survives fabric
// rebuilds: after an in-place recovery the session re-wraps the fresh
// fabric with the same injector, so a fault that already fired does not
// fire again when the replayed steps pass its index a second time.
package chaos

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"parallax/internal/errs"
	"parallax/internal/transport"
)

// Kinds of injectable faults.
const (
	faultKill = iota
	faultSever
	faultCrash
	faultCrashBeforeSave
	faultCrashAfterSave
	faultDelay
	faultSlow
	faultJoin
	faultLeave
)

// Fault is one scheduled fault.
type Fault struct {
	Kind  int
	Step  int           // step index the fault fires at (slow: fires from here on)
	Peer  int           // sever: peer process to cut
	Delay time.Duration // delay/slow: sleep duration
	fired bool
}

// Injector owns a process's fault schedule. Create one with Parse and
// wrap every fabric generation with Wrap; the fired-state carries over
// so replayed steps after a recovery do not re-trigger old faults.
type Injector struct {
	mu     sync.Mutex
	faults []Fault
	rng    *rand.Rand
	killed error // injected failure, reported via the wrapper's Err

	// Exit is called for crash faults; overridable in tests. Defaults to
	// os.Exit.
	Exit func(code int)

	// OnJoin receives join@K faults: the elastic-test harness's cue to
	// launch a joining agent. Set before the first step; may be nil.
	OnJoin func(step int)
	// OnLeave receives leave@K:P faults with the target machine; the
	// session's elastic arm turns a hit on its own machine into a
	// voluntary-leave request. Set before the first step; may be nil.
	OnLeave func(step, machine int)
}

// Parse builds an injector from a fault spec. The seed drives the
// jitter of slow-peer throttling; everything else is exact.
func Parse(spec string, seed int64) (*Injector, error) {
	inj := &Injector{rng: rand.New(rand.NewSource(seed)), Exit: os.Exit}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rest, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("chaos: fault %q missing '@step'", part)
		}
		stepStr, arg, hasArg := strings.Cut(rest, ":")
		step, err := strconv.Atoi(stepStr)
		if err != nil || step < 0 {
			return nil, fmt.Errorf("chaos: fault %q has bad step %q", part, stepStr)
		}
		f := Fault{Step: step}
		switch name {
		case "kill":
			f.Kind = faultKill
		case "join":
			f.Kind = faultJoin
		case "leave":
			f.Kind = faultLeave
			if !hasArg {
				return nil, fmt.Errorf("chaos: leave needs a machine: leave@K:P")
			}
			if f.Peer, err = strconv.Atoi(arg); err != nil || f.Peer < 0 {
				return nil, fmt.Errorf("chaos: leave machine %q", arg)
			}
		case "sever":
			f.Kind = faultSever
			if !hasArg {
				return nil, fmt.Errorf("chaos: sever needs a peer: sever@K:P")
			}
			if f.Peer, err = strconv.Atoi(arg); err != nil || f.Peer < 0 {
				return nil, fmt.Errorf("chaos: sever peer %q", arg)
			}
		case "crash":
			f.Kind = faultCrash
		case "crash-before-save":
			f.Kind = faultCrashBeforeSave
		case "crash-after-save":
			f.Kind = faultCrashAfterSave
		case "delay", "slow":
			if name == "delay" {
				f.Kind = faultDelay
			} else {
				f.Kind = faultSlow
			}
			if !hasArg {
				return nil, fmt.Errorf("chaos: %s needs a duration: %s@K:D", name, name)
			}
			if f.Delay, err = time.ParseDuration(arg); err != nil || f.Delay < 0 {
				return nil, fmt.Errorf("chaos: %s duration %q", name, arg)
			}
		default:
			return nil, fmt.Errorf("chaos: unknown fault %q", name)
		}
		inj.faults = append(inj.faults, f)
	}
	return inj, nil
}

// Wrap returns fab with this injector's faults armed. The wrapper is a
// transparent transport.Fabric; it additionally exposes SetStep (the
// trainer's step hook, where step-indexed faults fire) and the
// BeforeSave/AfterSave checkpoint hooks the session calls around
// auto-checkpoint writes.
func (inj *Injector) Wrap(fab transport.Fabric) *Fabric {
	// A wrap starts a fresh fabric generation: the fired-state of every
	// fault carries over (so replayed steps do not re-trigger), but the
	// previous generation's recorded kill does not — the new fabric is
	// healthy until a fault says otherwise.
	inj.mu.Lock()
	inj.killed = nil
	inj.mu.Unlock()
	return &Fabric{Fabric: fab, inj: inj}
}

// Fabric is a fault-injecting fabric wrapper; see Injector.Wrap.
type Fabric struct {
	transport.Fabric
	inj *Injector
}

// Unwrap returns the wrapped inner fabric — the session reaches the TCP
// fabric's elastic join endpoints through the chaos wrapper with it.
func (f *Fabric) Unwrap() transport.Fabric { return f.Fabric }

// Err reports the injected failure when one was recorded directly (the
// kill path for fabrics without their own attribution, i.e. in-process),
// otherwise the inner fabric's attributed failure. The injected error
// must win: after a kill the inner fabric only knows it was closed, not
// why.
func (f *Fabric) Err() error {
	f.inj.mu.Lock()
	killed := f.inj.killed
	f.inj.mu.Unlock()
	if killed != nil {
		return killed
	}
	return f.Fabric.Err()
}

// selfProcess locates the process index this fabric belongs to.
func (f *Fabric) selfProcess() int {
	topo := f.Topology()
	for p := 0; p < topo.Processes(); p++ {
		if topo.Machines > 0 && f.Local(topo.ServerEndpoint(p)) {
			return p
		}
	}
	return 0
}

// SetStep receives each step index from the trainer before the step's
// first exchange and fires every armed fault scheduled there.
func (f *Fabric) SetStep(step int) {
	if h, ok := f.Fabric.(interface{ SetStep(int) }); ok {
		h.SetStep(step)
	}
	inj := f.inj
	inj.mu.Lock()
	var fire []*Fault
	for i := range inj.faults {
		ft := &inj.faults[i]
		switch {
		case ft.Kind == faultSlow:
			if step >= ft.Step {
				fire = append(fire, ft)
			}
		case ft.fired || ft.Step != step:
		case ft.Kind == faultKill || ft.Kind == faultSever ||
			ft.Kind == faultCrash || ft.Kind == faultDelay ||
			ft.Kind == faultJoin || ft.Kind == faultLeave:
			ft.fired = true
			fire = append(fire, ft)
		}
	}
	// Draw slow-peer jitter under the lock so the schedule is a pure
	// function of (spec, seed, step sequence).
	var naps []time.Duration
	for _, ft := range fire {
		switch ft.Kind {
		case faultDelay:
			naps = append(naps, ft.Delay)
		case faultSlow:
			naps = append(naps, time.Duration((0.5+inj.rng.Float64())*float64(ft.Delay)))
		}
	}
	inj.mu.Unlock()

	for _, d := range naps {
		time.Sleep(d)
	}
	for _, ft := range fire {
		switch ft.Kind {
		case faultCrash:
			inj.Exit(137)
		case faultKill:
			f.kill(step)
		case faultSever:
			f.sever(ft.Peer)
		case faultJoin:
			if inj.OnJoin != nil {
				inj.OnJoin(step)
			}
		case faultLeave:
			if inj.OnLeave != nil {
				inj.OnLeave(step, ft.Peer)
			}
		}
	}
}

// kill simulates this process crashing at the given step: the fabric
// tears down abruptly with no peer-down announcement, and the local
// attribution is this process's own rank — matching what every remote
// survivor concludes from the broken connections.
func (f *Fabric) kill(step int) {
	self := f.selfProcess()
	cause := fmt.Errorf("chaos: injected kill at step %d", step)
	if t, ok := f.Fabric.(interface{ Fail(int, error) }); ok {
		t.Fail(self, cause)
		return
	}
	f.inj.mu.Lock()
	if f.inj.killed == nil {
		f.inj.killed = &errs.PeerFailure{Rank: self, Cause: cause}
	}
	f.inj.mu.Unlock()
	f.Fabric.Close()
}

func (f *Fabric) sever(peer int) {
	if t, ok := f.Fabric.(interface{ SeverPeer(int) error }); ok {
		t.SeverPeer(peer)
	}
}

// BeforeSave fires crash-before-save faults; the session calls it just
// before writing the auto-checkpoint for a step.
func (f *Fabric) BeforeSave(step int) { f.inj.saveHook(step, faultCrashBeforeSave) }

// AfterSave fires crash-after-save faults; the session calls it right
// after the auto-checkpoint for a step is durably on disk.
func (f *Fabric) AfterSave(step int) { f.inj.saveHook(step, faultCrashAfterSave) }

func (inj *Injector) saveHook(step, kind int) {
	inj.mu.Lock()
	exit := false
	for i := range inj.faults {
		ft := &inj.faults[i]
		if ft.Kind == kind && ft.Step == step && !ft.fired {
			ft.fired = true
			exit = true
		}
	}
	inj.mu.Unlock()
	if exit {
		inj.Exit(137)
	}
}
