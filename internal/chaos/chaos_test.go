package chaos

import (
	"errors"
	"testing"
	"time"

	"parallax/internal/errs"
	"parallax/internal/transport"
)

func testTopo() transport.Topology {
	return transport.Topology{Workers: 2, Machines: 2, MachineOfWorker: []int{0, 1}}
}

func TestParseSpecs(t *testing.T) {
	good := []string{
		"kill@17",
		"sever@3:1",
		"crash@5",
		"crash-before-save@10",
		"crash-after-save@10",
		"delay@2:50ms",
		"slow@4:10ms",
		"kill@1,sever@2:0,delay@3:1ms",
		"join@5",
		"leave@5:2",
		"join@3,leave@7:0",
		"", // empty spec = no faults
		"  kill@1 , crash@2  ",
	}
	for _, spec := range good {
		if _, err := Parse(spec, 1); err != nil {
			t.Errorf("Parse(%q) = %v, want ok", spec, err)
		}
	}
	bad := []string{
		"kill",            // missing @step
		"kill@x",          // bad step
		"kill@-1",         // negative step
		"sever@3",         // missing peer
		"sever@3:p",       // bad peer
		"delay@2",         // missing duration
		"delay@2:fast",    // bad duration
		"explode@1",       // unknown fault
		"kill@1,crash@zz", // one bad part poisons the spec
		"leave@5",         // missing machine
		"leave@5:x",       // bad machine
		"leave@5:-1",      // negative machine
		"join@x",          // bad step
	}
	for _, spec := range bad {
		if _, err := Parse(spec, 1); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

// A kill on a fabric with no attribution of its own (the in-process
// fabric) must record a rank-attributed ErrPeerFailed on the wrapper
// and tear the inner fabric down.
func TestKillAttributesAndCloses(t *testing.T) {
	inj, err := Parse("kill@2", 1)
	if err != nil {
		t.Fatal(err)
	}
	fab := inj.Wrap(transport.NewInproc(testTopo()))
	fab.SetStep(0)
	fab.SetStep(1)
	if fab.Err() != nil {
		t.Fatalf("fault fired early: %v", fab.Err())
	}
	fab.SetStep(2)
	e := fab.Err()
	if !errors.Is(e, errs.ErrPeerFailed) {
		t.Fatalf("after kill, Err() = %v, want ErrPeerFailed", e)
	}
	var pf *errs.PeerFailure
	if !errors.As(e, &pf) {
		t.Fatalf("after kill, Err() = %v, want *errs.PeerFailure", e)
	}
	select {
	case <-fab.Done():
	case <-time.After(time.Second):
		t.Fatal("inner fabric not closed by the kill")
	}
}

// crash faults call the injector's Exit hook (os.Exit in production,
// recorded here) with status 137.
func TestCrashCallsExit(t *testing.T) {
	inj, err := Parse("crash@3", 1)
	if err != nil {
		t.Fatal(err)
	}
	code := -1
	inj.Exit = func(c int) { code = c }
	fab := inj.Wrap(transport.NewInproc(testTopo()))
	defer fab.Close()
	fab.SetStep(2)
	if code != -1 {
		t.Fatalf("crash fired at step 2, want step 3")
	}
	fab.SetStep(3)
	if code != 137 {
		t.Fatalf("crash exit code %d, want 137", code)
	}
	// Fired once: the replayed step after a recovery must not crash again.
	code = -1
	fab.SetStep(3)
	if code != -1 {
		t.Fatalf("crash re-fired on a replayed step")
	}
}

// crash-before-save / crash-after-save fire through the checkpoint
// hooks, not SetStep, and each fires exactly once.
func TestCrashAroundSaveHooks(t *testing.T) {
	inj, err := Parse("crash-before-save@10,crash-after-save@20", 1)
	if err != nil {
		t.Fatal(err)
	}
	var codes []int
	inj.Exit = func(c int) { codes = append(codes, c) }
	fab := inj.Wrap(transport.NewInproc(testTopo()))
	defer fab.Close()

	fab.SetStep(10) // step hook must NOT fire save faults
	if len(codes) != 0 {
		t.Fatalf("save fault fired from SetStep")
	}
	fab.BeforeSave(9)
	fab.AfterSave(9)
	if len(codes) != 0 {
		t.Fatalf("save fault fired at the wrong step")
	}
	fab.BeforeSave(10)
	if len(codes) != 1 || codes[0] != 137 {
		t.Fatalf("crash-before-save codes %v, want [137]", codes)
	}
	fab.AfterSave(20)
	if len(codes) != 2 {
		t.Fatalf("crash-after-save codes %v, want two exits", codes)
	}
	fab.BeforeSave(10)
	fab.AfterSave(20)
	if len(codes) != 2 {
		t.Fatalf("save faults re-fired: %v", codes)
	}
}

// The injector outlives fabric generations: a fault that fired on one
// wrap must not fire again when the session re-wraps a fresh fabric
// after recovery and the replayed steps pass its index a second time.
func TestFiredFaultsSurviveRewrap(t *testing.T) {
	inj, err := Parse("kill@2", 1)
	if err != nil {
		t.Fatal(err)
	}
	fab1 := inj.Wrap(transport.NewInproc(testTopo()))
	fab1.SetStep(2)
	if !errors.Is(fab1.Err(), errs.ErrPeerFailed) {
		t.Fatalf("kill did not fire on the first generation: %v", fab1.Err())
	}

	// New fabric generation, same injector: Wrap clears the recorded
	// kill but keeps the fired-state.
	fab2 := inj.Wrap(transport.NewInproc(testTopo()))
	defer fab2.Close()
	fab2.SetStep(2) // the replayed step crosses the fault's index again
	if err := fab2.Err(); err != nil {
		t.Fatalf("fired fault re-triggered on re-wrap: %v", err)
	}
	select {
	case <-fab2.Done():
		t.Fatal("fired fault closed the second-generation fabric")
	default:
	}
}

// join@K and leave@K:P fire their hooks exactly once at step K, carry
// the right arguments, and never mark the fabric failed — membership
// churn is not a fault in the failure-attribution sense.
func TestJoinLeaveHooksFireOnce(t *testing.T) {
	inj, err := Parse("join@2,leave@4:1", 1)
	if err != nil {
		t.Fatal(err)
	}
	var joins []int
	var leaves [][2]int
	inj.OnJoin = func(step int) { joins = append(joins, step) }
	inj.OnLeave = func(step, machine int) { leaves = append(leaves, [2]int{step, machine}) }
	fab := inj.Wrap(transport.NewInproc(testTopo()))
	defer fab.Close()
	for s := 0; s < 6; s++ {
		fab.SetStep(s)
	}
	if len(joins) != 1 || joins[0] != 2 {
		t.Fatalf("OnJoin fired at %v, want exactly [2]", joins)
	}
	if len(leaves) != 1 || leaves[0] != [2]int{4, 1} {
		t.Fatalf("OnLeave fired with %v, want exactly [[4 1]]", leaves)
	}
	if err := fab.Err(); err != nil {
		t.Fatalf("join/leave marked the fabric failed: %v", err)
	}
	// Replayed steps after a rebuild must not re-fire membership cues —
	// a second join request for an already-admitted agent would be
	// rejected as a stale rejoin, but there is no reason to send one.
	fab2 := inj.Wrap(transport.NewInproc(testTopo()))
	defer fab2.Close()
	for s := 0; s < 6; s++ {
		fab2.SetStep(s)
	}
	if len(joins) != 1 || len(leaves) != 1 {
		t.Fatalf("membership cues re-fired on re-wrap: joins %v leaves %v", joins, leaves)
	}
}

// Nil hooks are legal: an agent without an elastic harness parses and
// runs a join/leave spec as a no-op instead of panicking.
func TestJoinLeaveNilHooks(t *testing.T) {
	inj, err := Parse("join@1,leave@1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	fab := inj.Wrap(transport.NewInproc(testTopo()))
	defer fab.Close()
	fab.SetStep(1)
	if err := fab.Err(); err != nil {
		t.Fatalf("nil-hook join/leave failed the fabric: %v", err)
	}
}

// delay and slow faults only sleep — the schedule is deterministic in
// (spec, seed), and neither marks the fabric failed.
func TestDelayAndSlowDoNotFail(t *testing.T) {
	inj, err := Parse("delay@1:1ms,slow@2:1ms", 7)
	if err != nil {
		t.Fatal(err)
	}
	fab := inj.Wrap(transport.NewInproc(testTopo()))
	defer fab.Close()
	for s := 0; s < 5; s++ {
		fab.SetStep(s)
	}
	if err := fab.Err(); err != nil {
		t.Fatalf("delay/slow marked the fabric failed: %v", err)
	}
}
