package graph

import (
	"strings"
	"testing"

	"parallax/internal/tensor"
)

func TestOpKindStrings(t *testing.T) {
	want := map[OpKind]string{
		OpInput: "Input", OpVariable: "Variable", OpGather: "Gather",
		OpMatMul: "MatMul", OpAddBias: "AddBias", OpAdd: "Add",
		OpRelu: "Relu", OpTanh: "Tanh", OpConcatCols: "ConcatCols",
		OpSoftmaxCE: "SoftmaxCE",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if !strings.Contains(OpKind(99).String(), "OpKind") {
		t.Error("unknown op kind string")
	}
	if GradDense.String() != "dense" || GradSparse.String() != "sparse" || GradNone.String() != "none" {
		t.Error("bad GradKind strings")
	}
}

func TestBuilderShapePanics(t *testing.T) {
	rng := tensor.NewRNG(1)
	cases := []func(g *Graph){
		func(g *Graph) { // gather on rank-1
			v := g.Variable("v", rng.RandN(1, 4))
			g.Gather(v, g.Input("i", Int, 2))
		},
		func(g *Graph) { // gather with float indices
			v := g.Variable("v", rng.RandN(1, 4, 2))
			g.Gather(v, g.Input("i", Float, 2))
		},
		func(g *Graph) { // matmul mismatch
			g.MatMul(g.Input("a", Float, 2, 3), g.Input("b", Float, 4, 5))
		},
		func(g *Graph) { // addbias mismatch
			g.AddBias(g.Input("a", Float, 2, 3), g.Input("b", Float, 4))
		},
		func(g *Graph) { // add mismatch
			g.Add(g.Input("a", Float, 2, 3), g.Input("b", Float, 3, 2))
		},
		func(g *Graph) { // concat rows mismatch
			g.ConcatCols(g.Input("a", Float, 2, 3), g.Input("b", Float, 3, 3))
		},
		func(g *Graph) { // softmax label mismatch
			g.SoftmaxCE(g.Input("a", Float, 2, 3), g.Input("l", Int, 4))
		},
		func(g *Graph) { // double loss
			l := g.Input("l", Int, 2)
			x := g.Input("x", Float, 2, 3)
			g.SoftmaxCE(x, l)
			g.SoftmaxCE(x, l)
		},
	}
	for i, build := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			build(New())
		}()
	}
}

func TestStepFeedErrors(t *testing.T) {
	rng := tensor.NewRNG(2)
	g := New()
	tokens := g.Input("tokens", Int, 2)
	labels := g.Input("labels", Int, 2)
	x := g.Input("x", Float, 2, 4)
	emb := g.Variable("emb", rng.RandN(0.1, 10, 4))
	h := g.Add(g.Gather(emb, tokens), x)
	w := g.Variable("w", rng.RandN(0.1, 4, 5))
	g.SoftmaxCE(g.MatMul(h, w), labels)
	e, err := NewExec(g)
	if err != nil {
		t.Fatal(err)
	}
	good := Feed{
		Ints:   map[string][]int{"tokens": {1, 2}, "labels": {0, 1}},
		Floats: map[string]*tensor.Dense{"x": rng.RandN(1, 2, 4)},
	}
	if _, _, err := e.Step(good); err != nil {
		t.Fatal(err)
	}
	// Missing int feed.
	if _, _, err := e.Step(Feed{
		Ints:   map[string][]int{"labels": {0, 1}},
		Floats: good.Floats,
	}); err == nil || !strings.Contains(err.Error(), "tokens") {
		t.Errorf("missing int feed: err = %v", err)
	}
	// Wrong-length int feed.
	if _, _, err := e.Step(Feed{
		Ints:   map[string][]int{"tokens": {1}, "labels": {0, 1}},
		Floats: good.Floats,
	}); err == nil {
		t.Error("wrong-length feed accepted")
	}
	// Missing float feed.
	if _, _, err := e.Step(Feed{Ints: good.Ints}); err == nil || !strings.Contains(err.Error(), "x") {
		t.Errorf("missing float feed: err = %v", err)
	}
}

func TestVarValueAccessors(t *testing.T) {
	rng := tensor.NewRNG(3)
	g := New()
	x := g.Input("x", Float, 1, 2)
	l := g.Input("l", Int, 1)
	w := g.Variable("w", rng.RandN(0.1, 2, 3))
	g.SoftmaxCE(g.MatMul(x, w), l)
	e, _ := NewExec(g)

	// SetVarValue round trip.
	nv := rng.RandN(1, 2, 3)
	e.SetVarValue("w", nv)
	if e.VarValue("w").MaxAbsDiff(nv) != 0 {
		t.Error("SetVarValue lost data")
	}
	// Shape mismatch panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on shape mismatch")
			}
		}()
		e.SetVarValue("w", tensor.NewDense(3, 2))
	}()
	// Unknown variable panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on unknown variable")
			}
		}()
		e.VarValue("nope")
	}()
	if w.Var.Node() != w {
		t.Error("Variable.Node mismatch")
	}
}

func TestGatherFromIntermediateTensorDensifies(t *testing.T) {
	// Gather whose table is a computed tensor (not a variable) must route
	// a dense gradient through the table expression.
	rng := tensor.NewRNG(4)
	g := New()
	tokens := g.Input("tokens", Int, 2)
	labels := g.Input("labels", Int, 2)
	a := g.Variable("a", rng.RandN(0.1, 5, 3))
	b := g.Variable("b", rng.RandN(0.1, 5, 3))
	table := g.Add(a, b) // intermediate tensor
	g.SoftmaxCE(g.Gather(table, tokens), labels)
	e, err := NewExec(g)
	if err != nil {
		t.Fatal(err)
	}
	_, grads, err := e.Step(Feed{Ints: map[string][]int{"tokens": {1, 3}, "labels": {0, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if grads.Dense["a"] == nil || grads.Dense["b"] == nil {
		t.Fatal("gather through intermediate did not produce dense grads")
	}
	// Both variables feed Add, so both must be classified dense.
	for _, v := range g.Variables() {
		if g.GradKind(v) != GradDense {
			t.Errorf("%s: kind %v, want dense", v.Name, g.GradKind(v))
		}
	}
}
