// Package graph implements the single-GPU computation graph abstraction the
// Parallax reproduction transforms for distributed execution.
//
// A Graph is a static dataflow description: inputs (fed each step),
// variables (trainable parameters), and operations, ending in a scalar
// loss. The executor (exec.go) runs forward and reverse-mode backward
// passes over real tensors. Mirroring TensorFlow — and this is the detail
// Parallax's sparsity detection rests on (§5, "Identifying the sparsity of
// a variable") — the *type* of a variable's gradient is determined by how
// the variable is consumed: a variable read only through Gather (embedding
// lookup) receives an IndexedSlices-style sparse gradient; any other use
// produces a dense gradient.
package graph

import (
	"fmt"

	"parallax/internal/tensor"
)

// OpKind enumerates the graph's operation set.
type OpKind int

const (
	// OpInput is a per-step placeholder (float tensor or int vector).
	OpInput OpKind = iota
	// OpVariable is a trainable parameter.
	OpVariable
	// OpGather looks up rows of a variable by an int-vector input
	// (embedding lookup). Its gradient w.r.t. the table is sparse.
	OpGather
	// OpMatMul multiplies two 2-D tensors.
	OpMatMul
	// OpAddBias adds a [n] bias to each row of a [m,n] tensor.
	OpAddBias
	// OpAdd adds two same-shape tensors element-wise.
	OpAdd
	// OpRelu applies max(x,0).
	OpRelu
	// OpTanh applies tanh(x).
	OpTanh
	// OpConcatCols concatenates two [m,a] and [m,b] tensors into [m,a+b].
	OpConcatCols
	// OpSoftmaxCE computes mean softmax cross-entropy of logits against an
	// int-vector label input; it is the loss node.
	OpSoftmaxCE
)

func (k OpKind) String() string {
	switch k {
	case OpInput:
		return "Input"
	case OpVariable:
		return "Variable"
	case OpGather:
		return "Gather"
	case OpMatMul:
		return "MatMul"
	case OpAddBias:
		return "AddBias"
	case OpAdd:
		return "Add"
	case OpRelu:
		return "Relu"
	case OpTanh:
		return "Tanh"
	case OpConcatCols:
		return "ConcatCols"
	case OpSoftmaxCE:
		return "SoftmaxCE"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// DType distinguishes float tensors from int-vector feeds.
type DType int

const (
	// Float is a float32 tensor.
	Float DType = iota
	// Int is an integer vector (token ids, labels).
	Int
)

// Node is one vertex of the graph.
type Node struct {
	ID     int
	Kind   OpKind
	Name   string
	Inputs []*Node
	DType  DType

	// Shape is the static output shape; the leading dimension may be the
	// batch size.
	Shape []int

	// Var is set for OpVariable nodes.
	Var *Variable
}

// Variable is a trainable parameter of the model.
type Variable struct {
	Name string
	// Init is the initial value; its shape is the variable's shape. In
	// accounting mode (paper-scale models) Init may be nil and only
	// Elements is meaningful.
	Init *tensor.Dense
	// Shape of the variable.
	Shape []int
	// PartitionScope is >= 0 if the variable was declared inside a
	// parallax.Partitioner scope (Fig. 3 line 9), marking it as a target
	// for sparse-variable partitioning; -1 otherwise.
	PartitionScope int

	node *Node
}

// Elements returns the variable's total element count.
func (v *Variable) Elements() int64 {
	n := int64(1)
	for _, d := range v.Shape {
		n *= int64(d)
	}
	return n
}

// Bytes returns the variable's wire size (4 bytes/element).
func (v *Variable) Bytes() int64 { return v.Elements() * 4 }

// Graph is a single-GPU computation graph under construction or ready for
// execution/transformation.
type Graph struct {
	nodes []*Node
	vars  []*Variable
	loss  *Node

	nextPartitionScope int
	inPartitionScope   int // current scope id, -1 when outside
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{inPartitionScope: -1}
}

// Nodes returns all nodes in creation (topological) order.
func (g *Graph) Nodes() []*Node { return g.nodes }

// Variables returns all variables in declaration order.
func (g *Graph) Variables() []*Variable { return g.vars }

// Loss returns the loss node, or nil if not set.
func (g *Graph) Loss() *Node { return g.loss }

func (g *Graph) add(n *Node) *Node {
	n.ID = len(g.nodes)
	g.nodes = append(g.nodes, n)
	return n
}

// Input declares a per-step placeholder with the given dtype and shape.
func (g *Graph) Input(name string, dt DType, shape ...int) *Node {
	return g.add(&Node{Kind: OpInput, Name: name, DType: dt, Shape: shape})
}

// Variable declares a trainable parameter with the given initial value.
func (g *Graph) Variable(name string, init *tensor.Dense) *Node {
	v := &Variable{
		Name:           name,
		Init:           init,
		Shape:          append([]int(nil), init.Shape()...),
		PartitionScope: g.inPartitionScope,
	}
	n := g.add(&Node{Kind: OpVariable, Name: name, DType: Float, Shape: v.Shape, Var: v})
	v.node = n
	g.vars = append(g.vars, v)
	return n
}

// VariableSpec declares a parameter by shape only (no storage), for
// accounting-mode graphs at paper scale.
func (g *Graph) VariableSpec(name string, shape ...int) *Node {
	v := &Variable{
		Name:           name,
		Shape:          append([]int(nil), shape...),
		PartitionScope: g.inPartitionScope,
	}
	n := g.add(&Node{Kind: OpVariable, Name: name, DType: Float, Shape: v.Shape, Var: v})
	v.node = n
	g.vars = append(g.vars, v)
	return n
}

// InPartitioner runs fn with a fresh partitioner scope active: variables
// declared inside are partition targets (Fig. 3's `with parallax.
// partitioner():`). Each call creates a distinct scope; all variables in
// one scope are partitioned into the same number of pieces (§4.1).
func (g *Graph) InPartitioner(fn func()) int {
	if g.inPartitionScope >= 0 {
		panic("graph: nested partitioner scopes are not supported")
	}
	id := g.nextPartitionScope
	g.nextPartitionScope++
	g.inPartitionScope = id
	defer func() { g.inPartitionScope = -1 }()
	fn()
	return id
}

// Gather looks up rows of table (a variable or float tensor with rank 2)
// using the int-vector indices node.
func (g *Graph) Gather(table, indices *Node) *Node {
	if table.DType != Float || len(table.Shape) != 2 {
		panic(fmt.Sprintf("graph: Gather table must be rank-2 float, got %v", table.Shape))
	}
	if indices.DType != Int || len(indices.Shape) != 1 {
		panic("graph: Gather indices must be an int vector")
	}
	return g.add(&Node{
		Kind:   OpGather,
		Name:   fmt.Sprintf("gather(%s)", table.Name),
		Inputs: []*Node{table, indices},
		DType:  Float,
		Shape:  []int{indices.Shape[0], table.Shape[1]},
	})
}

// MatMul multiplies a [m,k] node by a [k,n] node.
func (g *Graph) MatMul(a, b *Node) *Node {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[0] {
		panic(fmt.Sprintf("graph: MatMul shape mismatch %v x %v", a.Shape, b.Shape))
	}
	return g.add(&Node{
		Kind:   OpMatMul,
		Name:   fmt.Sprintf("matmul#%d", len(g.nodes)),
		Inputs: []*Node{a, b},
		DType:  Float,
		Shape:  []int{a.Shape[0], b.Shape[1]},
	})
}

// AddBias adds a [n] bias node to each row of a [m,n] node.
func (g *Graph) AddBias(x, bias *Node) *Node {
	if len(x.Shape) != 2 || len(bias.Shape) != 1 || x.Shape[1] != bias.Shape[0] {
		panic(fmt.Sprintf("graph: AddBias shape mismatch %v + %v", x.Shape, bias.Shape))
	}
	return g.add(&Node{
		Kind:   OpAddBias,
		Name:   fmt.Sprintf("addbias#%d", len(g.nodes)),
		Inputs: []*Node{x, bias},
		DType:  Float,
		Shape:  append([]int(nil), x.Shape...),
	})
}

// Add adds two same-shape nodes element-wise.
func (g *Graph) Add(a, b *Node) *Node {
	if len(a.Shape) != len(b.Shape) {
		panic(fmt.Sprintf("graph: Add shape mismatch %v + %v", a.Shape, b.Shape))
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			panic(fmt.Sprintf("graph: Add shape mismatch %v + %v", a.Shape, b.Shape))
		}
	}
	return g.add(&Node{
		Kind:   OpAdd,
		Name:   fmt.Sprintf("add#%d", len(g.nodes)),
		Inputs: []*Node{a, b},
		DType:  Float,
		Shape:  append([]int(nil), a.Shape...),
	})
}

// Relu applies max(x,0).
func (g *Graph) Relu(x *Node) *Node {
	return g.add(&Node{
		Kind: OpRelu, Name: fmt.Sprintf("relu#%d", len(g.nodes)),
		Inputs: []*Node{x}, DType: Float, Shape: append([]int(nil), x.Shape...),
	})
}

// Tanh applies tanh(x).
func (g *Graph) Tanh(x *Node) *Node {
	return g.add(&Node{
		Kind: OpTanh, Name: fmt.Sprintf("tanh#%d", len(g.nodes)),
		Inputs: []*Node{x}, DType: Float, Shape: append([]int(nil), x.Shape...),
	})
}

// ConcatCols concatenates [m,a] and [m,b] into [m,a+b].
func (g *Graph) ConcatCols(a, b *Node) *Node {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[0] != b.Shape[0] {
		panic(fmt.Sprintf("graph: ConcatCols shape mismatch %v ++ %v", a.Shape, b.Shape))
	}
	return g.add(&Node{
		Kind:   OpConcatCols,
		Name:   fmt.Sprintf("concat#%d", len(g.nodes)),
		Inputs: []*Node{a, b},
		DType:  Float,
		Shape:  []int{a.Shape[0], a.Shape[1] + b.Shape[1]},
	})
}

// SoftmaxCE declares the scalar loss: mean softmax cross-entropy of logits
// [m, classes] against int labels [m]. It must be the graph's single loss.
func (g *Graph) SoftmaxCE(logits, labels *Node) *Node {
	if len(logits.Shape) != 2 || labels.DType != Int || len(labels.Shape) != 1 ||
		logits.Shape[0] != labels.Shape[0] {
		panic(fmt.Sprintf("graph: SoftmaxCE shape mismatch %v vs %v", logits.Shape, labels.Shape))
	}
	n := g.add(&Node{
		Kind:   OpSoftmaxCE,
		Name:   "loss",
		Inputs: []*Node{logits, labels},
		DType:  Float,
		Shape:  []int{},
	})
	if g.loss != nil {
		panic("graph: loss already set")
	}
	g.loss = n
	return n
}

// Validate checks structural invariants: a loss exists, node inputs precede
// their consumers (the builder guarantees this; Validate re-checks), and
// every variable is consumed.
func (g *Graph) Validate() error {
	if g.loss == nil {
		return fmt.Errorf("graph: no loss node; call SoftmaxCE")
	}
	used := make(map[int]bool)
	for _, n := range g.nodes {
		for _, in := range n.Inputs {
			if in.ID >= n.ID {
				return fmt.Errorf("graph: node %d(%s) consumes later node %d", n.ID, n.Name, in.ID)
			}
			used[in.ID] = true
		}
	}
	for _, v := range g.vars {
		if !used[v.node.ID] {
			return fmt.Errorf("graph: variable %q is never used", v.Name)
		}
	}
	return nil
}

// VarNode returns the graph node for a variable.
func (v *Variable) Node() *Node { return v.node }
