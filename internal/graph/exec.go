package graph

import (
	"fmt"

	"parallax/internal/tensor"
)

// Feed supplies per-step input values by input-node name.
type Feed struct {
	Floats map[string]*tensor.Dense
	Ints   map[string][]int
}

// GradSet is the result of a backward pass: one gradient per variable,
// either dense or sparse according to the variable's usage. It is the Go
// analogue of the variable→gradient mapping Parallax records in
// MetaGraphDef (§5).
type GradSet struct {
	Dense  map[string]*tensor.Dense
	Sparse map[string]*tensor.Sparse
}

// NewGradSet returns an empty gradient set.
func NewGradSet() *GradSet {
	return &GradSet{Dense: map[string]*tensor.Dense{}, Sparse: map[string]*tensor.Sparse{}}
}

// Exec evaluates a graph with real tensors: it owns the variable storage
// and runs forward+backward steps. One Exec corresponds to one model
// replica (one "GPU" in the paper's terms). An Exec is a persistent
// runtime object: it keeps its per-step scratch tables between steps, so
// it must only be driven by one goroutine at a time.
type Exec struct {
	g      *Graph
	values map[string]*tensor.Dense // variable storage by name

	// Per-step scratch, reused across Step calls.
	floats    []*tensor.Dense
	ints      [][]int
	denseGrad []*tensor.Dense
	varSparse map[string][]*tensor.Sparse
	grads     *GradSet
	varAt     []*Variable // node ID -> variable, nil for non-variable nodes
}

// NewExec creates an executor with variables initialized from their Init
// tensors. It returns an error if the graph is invalid or a variable has
// no initial value (accounting-mode graphs cannot be executed).
func NewExec(g *Graph) (*Exec, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	vals := make(map[string]*tensor.Dense, len(g.vars))
	for _, v := range g.vars {
		if v.Init == nil {
			return nil, fmt.Errorf("graph: variable %q has no initial value; accounting-mode graphs are not executable", v.Name)
		}
		vals[v.Name] = v.Init.Clone()
	}
	return &Exec{g: g, values: vals}, nil
}

// Graph returns the executor's graph.
func (e *Exec) Graph() *Graph { return e.g }

// VarValue returns the current value of a variable (live storage, not a
// copy). The runtimes use it to apply updates and synchronize replicas.
func (e *Exec) VarValue(name string) *tensor.Dense {
	v, ok := e.values[name]
	if !ok {
		panic(fmt.Sprintf("graph: unknown variable %q", name))
	}
	return v
}

// SetVarValue replaces a variable's storage (used when pulling fresh values
// from a parameter server).
func (e *Exec) SetVarValue(name string, t *tensor.Dense) {
	cur, ok := e.values[name]
	if !ok {
		panic(fmt.Sprintf("graph: unknown variable %q", name))
	}
	if !cur.SameShape(t) {
		panic(fmt.Sprintf("graph: SetVarValue shape mismatch for %q: %v vs %v", name, cur.Shape(), t.Shape()))
	}
	e.values[name] = t
}

// GradReady observes one variable's gradient the moment the backward
// sweep finishes it: exactly one of dense/sparse is non-nil, and the
// tensors are the same ones placed in the step's GradSet. See StepStream
// for the ordering contract.
type GradReady func(name string, dense *tensor.Dense, sparse *tensor.Sparse)

// Step runs one forward+backward pass with the given feed and returns the
// loss and per-variable gradients.
//
// The returned GradSet is owned by the executor and reused: it is valid
// only until the next Step call. The gradient tensors inside it are
// freshly built each step, so callers may hand them off (e.g. transfer
// sparse gradients to a parameter server) — only the container is
// recycled.
func (e *Exec) Step(feed Feed) (float64, *GradSet, error) {
	return e.StepStream(feed, nil)
}

// StepStream is Step with a gradient-ready callback: onReady (when
// non-nil) fires for every variable as soon as its gradient is final,
// while the backward sweep over earlier layers is still running. This is
// the hook the distributed trainer uses to overlap gradient
// synchronization with the remaining backward compute (the paper's §4.3
// transformation made pipeline-aware).
//
// Contract: the sweep visits nodes in reverse construction order, and a
// variable's gradient receives contributions only from consumer nodes,
// which the builder guarantees come later in construction order — so when
// the sweep reaches the variable's own node, its gradient is complete.
// onReady therefore fires exactly once per variable, in reverse
// declaration order, synchronously on the calling goroutine. The same
// deterministic order holds on every replica of the graph, which is what
// lets every worker dispatch collectives in ready order without a
// schedule rendezvous.
func (e *Exec) StepStream(feed Feed, onReady GradReady) (float64, *GradSet, error) {
	if e.floats == nil {
		e.floats = make([]*tensor.Dense, len(e.g.nodes))
		e.ints = make([][]int, len(e.g.nodes))
		e.denseGrad = make([]*tensor.Dense, len(e.g.nodes))
		e.varSparse = make(map[string][]*tensor.Sparse)
		e.grads = NewGradSet()
		e.varAt = make([]*Variable, len(e.g.nodes))
		for _, v := range e.g.vars {
			e.varAt[v.node.ID] = v
		}
	}
	floats, ints := e.floats, e.ints
	clear(floats)
	clear(ints)

	// Forward pass in construction (topological) order.
	var loss float64
	var lossGrad *tensor.Dense // d(loss)/d(logits), computed with the loss
	for _, n := range e.g.nodes {
		switch n.Kind {
		case OpInput:
			if n.DType == Int {
				v, ok := feed.Ints[n.Name]
				if !ok {
					return 0, nil, fmt.Errorf("graph: missing int feed %q", n.Name)
				}
				if len(v) != n.Shape[0] {
					return 0, nil, fmt.Errorf("graph: feed %q has %d entries, want %d", n.Name, len(v), n.Shape[0])
				}
				ints[n.ID] = v
			} else {
				v, ok := feed.Floats[n.Name]
				if !ok {
					return 0, nil, fmt.Errorf("graph: missing float feed %q", n.Name)
				}
				floats[n.ID] = v
			}
		case OpVariable:
			floats[n.ID] = e.values[n.Name]
		case OpGather:
			floats[n.ID] = tensor.Gather(floats[n.Inputs[0].ID], ints[n.Inputs[1].ID])
		case OpMatMul:
			floats[n.ID] = tensor.MatMul(floats[n.Inputs[0].ID], floats[n.Inputs[1].ID])
		case OpAddBias:
			out := floats[n.Inputs[0].ID].Clone()
			tensor.AddBiasRows(out, floats[n.Inputs[1].ID])
			floats[n.ID] = out
		case OpAdd:
			out := floats[n.Inputs[0].ID].Clone()
			out.AddInto(floats[n.Inputs[1].ID])
			floats[n.ID] = out
		case OpRelu:
			floats[n.ID] = tensor.ReluForward(floats[n.Inputs[0].ID])
		case OpTanh:
			floats[n.ID] = tensor.TanhForward(floats[n.Inputs[0].ID])
		case OpConcatCols:
			a, b := floats[n.Inputs[0].ID], floats[n.Inputs[1].ID]
			m, wa, wb := a.Dim(0), a.Dim(1), b.Dim(1)
			out := tensor.NewDense(m, wa+wb)
			for i := 0; i < m; i++ {
				copy(out.Data()[i*(wa+wb):], a.Data()[i*wa:(i+1)*wa])
				copy(out.Data()[i*(wa+wb)+wa:], b.Data()[i*wb:(i+1)*wb])
			}
			floats[n.ID] = out
		case OpSoftmaxCE:
			logits := floats[n.Inputs[0].ID]
			labels := ints[n.Inputs[1].ID]
			loss, lossGrad = tensor.SoftmaxCrossEntropy(logits, labels)
		default:
			return 0, nil, fmt.Errorf("graph: cannot execute op %v", n.Kind)
		}
	}

	// Backward pass in reverse order. denseGrad[id] accumulates dense
	// output-gradients; sparse contributions flow straight into varSparse.
	denseGrad, varSparse := e.denseGrad, e.varSparse
	clear(denseGrad)
	for k, l := range varSparse {
		clear(l)
		varSparse[k] = l[:0]
	}
	addDense := func(n *Node, g *tensor.Dense) {
		if denseGrad[n.ID] == nil {
			denseGrad[n.ID] = g.Clone()
		} else {
			denseGrad[n.ID].AddInto(g)
		}
	}

	// Per-variable gradients are assembled inline, the moment the sweep
	// passes the variable's node (all its consumers are behind the sweep
	// by then), so onReady can stream them out mid-backprop.
	gs := e.grads
	clear(gs.Dense)
	clear(gs.Sparse)

	for i := len(e.g.nodes) - 1; i >= 0; i-- {
		n := e.g.nodes[i]
		if n.Kind == OpSoftmaxCE {
			addDense(n.Inputs[0], lossGrad)
			continue
		}
		if v := e.varAt[n.ID]; v != nil {
			e.assembleVarGrad(v, onReady)
			continue
		}
		dy := denseGrad[n.ID]
		if dy == nil {
			continue // node does not influence the loss
		}
		switch n.Kind {
		case OpInput:
			// leaf
		case OpGather:
			table, idx := n.Inputs[0], ints[n.Inputs[1].ID]
			sp := tensor.NewSparse(idx, dy.Clone(), table.Shape[0])
			if table.Kind == OpVariable {
				varSparse[table.Name] = append(varSparse[table.Name], sp)
			} else {
				// Gather from an intermediate tensor: densify.
				addDense(table, sp.ToDense())
			}
		case OpMatMul:
			a, b := floats[n.Inputs[0].ID], floats[n.Inputs[1].ID]
			addDense(n.Inputs[0], tensor.MatMulT2(dy, b))
			addDense(n.Inputs[1], tensor.MatMulT1(a, dy))
		case OpAddBias:
			addDense(n.Inputs[0], dy)
			addDense(n.Inputs[1], tensor.SumRows(dy))
		case OpAdd:
			addDense(n.Inputs[0], dy)
			addDense(n.Inputs[1], dy)
		case OpRelu:
			addDense(n.Inputs[0], tensor.ReluBackward(floats[n.Inputs[0].ID], dy))
		case OpTanh:
			addDense(n.Inputs[0], tensor.TanhBackward(floats[n.ID], dy))
		case OpConcatCols:
			a, b := n.Inputs[0], n.Inputs[1]
			m, wa, wb := a.Shape[0], a.Shape[1], b.Shape[1]
			da := tensor.NewDense(m, wa)
			db := tensor.NewDense(m, wb)
			for r := 0; r < m; r++ {
				copy(da.Data()[r*wa:(r+1)*wa], dy.Data()[r*(wa+wb):r*(wa+wb)+wa])
				copy(db.Data()[r*wb:(r+1)*wb], dy.Data()[r*(wa+wb)+wa:(r+1)*(wa+wb)])
			}
			addDense(a, da)
			addDense(b, db)
		default:
			return 0, nil, fmt.Errorf("graph: no backward for op %v", n.Kind)
		}
	}

	return loss, gs, nil
}

// assembleVarGrad finalizes one variable's gradient, honoring the static
// GradKind — a variable with any dense contribution gets a dense gradient
// (sparse parts densified), otherwise the concatenated sparse gradient —
// records it in the step's GradSet, and notifies onReady.
func (e *Exec) assembleVarGrad(v *Variable, onReady GradReady) {
	gs := e.grads
	d := e.denseGrad[v.node.ID]
	sps := e.varSparse[v.Name]
	switch {
	case d == nil && len(sps) == 0:
		// Variable did not influence this step's loss: contribute an
		// explicit zero so synchronization stays uniform.
		if e.g.GradKind(v) == GradSparse {
			gs.Sparse[v.Name] = tensor.NewSparse(nil, tensor.NewDense(0, v.Shape[1]), v.Shape[0])
		} else {
			gs.Dense[v.Name] = tensor.NewDense(v.Shape...)
		}
	case d == nil:
		gs.Sparse[v.Name] = tensor.ConcatSparse(sps)
	default:
		for _, sp := range sps {
			d.AddInto(sp.ToDense())
		}
		gs.Dense[v.Name] = d
	}
	if onReady != nil {
		onReady(v.Name, gs.Dense[v.Name], gs.Sparse[v.Name])
	}
}
