package graph

import (
	"fmt"

	"parallax/internal/tensor"
)

// Feed supplies per-step input values by input-node name.
type Feed struct {
	Floats map[string]*tensor.Dense
	Ints   map[string][]int
}

// GradSet is the result of a backward pass: one gradient per variable,
// either dense or sparse according to the variable's usage. It is the Go
// analogue of the variable→gradient mapping Parallax records in
// MetaGraphDef (§5).
type GradSet struct {
	Dense  map[string]*tensor.Dense
	Sparse map[string]*tensor.Sparse
}

// NewGradSet returns an empty gradient set.
func NewGradSet() *GradSet {
	return &GradSet{Dense: map[string]*tensor.Dense{}, Sparse: map[string]*tensor.Sparse{}}
}

// Exec evaluates a graph with real tensors: it owns the variable storage
// and runs forward+backward steps. One Exec corresponds to one model
// replica (one "GPU" in the paper's terms). An Exec is a persistent
// runtime object: it keeps its per-step scratch tables between steps, so
// it must only be driven by one goroutine at a time.
type Exec struct {
	g      *Graph
	values map[string]*tensor.Dense // variable storage by name

	// Per-step scratch, reused across Step calls.
	floats    []*tensor.Dense
	ints      [][]int
	denseGrad []*tensor.Dense
	varSparse map[string][]*tensor.Sparse
	grads     *GradSet
}

// NewExec creates an executor with variables initialized from their Init
// tensors. It returns an error if the graph is invalid or a variable has
// no initial value (accounting-mode graphs cannot be executed).
func NewExec(g *Graph) (*Exec, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	vals := make(map[string]*tensor.Dense, len(g.vars))
	for _, v := range g.vars {
		if v.Init == nil {
			return nil, fmt.Errorf("graph: variable %q has no initial value; accounting-mode graphs are not executable", v.Name)
		}
		vals[v.Name] = v.Init.Clone()
	}
	return &Exec{g: g, values: vals}, nil
}

// Graph returns the executor's graph.
func (e *Exec) Graph() *Graph { return e.g }

// VarValue returns the current value of a variable (live storage, not a
// copy). The runtimes use it to apply updates and synchronize replicas.
func (e *Exec) VarValue(name string) *tensor.Dense {
	v, ok := e.values[name]
	if !ok {
		panic(fmt.Sprintf("graph: unknown variable %q", name))
	}
	return v
}

// SetVarValue replaces a variable's storage (used when pulling fresh values
// from a parameter server).
func (e *Exec) SetVarValue(name string, t *tensor.Dense) {
	cur, ok := e.values[name]
	if !ok {
		panic(fmt.Sprintf("graph: unknown variable %q", name))
	}
	if !cur.SameShape(t) {
		panic(fmt.Sprintf("graph: SetVarValue shape mismatch for %q: %v vs %v", name, cur.Shape(), t.Shape()))
	}
	e.values[name] = t
}

// Step runs one forward+backward pass with the given feed and returns the
// loss and per-variable gradients.
//
// The returned GradSet is owned by the executor and reused: it is valid
// only until the next Step call. The gradient tensors inside it are
// freshly built each step, so callers may hand them off (e.g. transfer
// sparse gradients to a parameter server) — only the container is
// recycled.
func (e *Exec) Step(feed Feed) (float64, *GradSet, error) {
	if e.floats == nil {
		e.floats = make([]*tensor.Dense, len(e.g.nodes))
		e.ints = make([][]int, len(e.g.nodes))
		e.denseGrad = make([]*tensor.Dense, len(e.g.nodes))
		e.varSparse = make(map[string][]*tensor.Sparse)
		e.grads = NewGradSet()
	}
	floats, ints := e.floats, e.ints
	clear(floats)
	clear(ints)

	// Forward pass in construction (topological) order.
	var loss float64
	var lossGrad *tensor.Dense // d(loss)/d(logits), computed with the loss
	for _, n := range e.g.nodes {
		switch n.Kind {
		case OpInput:
			if n.DType == Int {
				v, ok := feed.Ints[n.Name]
				if !ok {
					return 0, nil, fmt.Errorf("graph: missing int feed %q", n.Name)
				}
				if len(v) != n.Shape[0] {
					return 0, nil, fmt.Errorf("graph: feed %q has %d entries, want %d", n.Name, len(v), n.Shape[0])
				}
				ints[n.ID] = v
			} else {
				v, ok := feed.Floats[n.Name]
				if !ok {
					return 0, nil, fmt.Errorf("graph: missing float feed %q", n.Name)
				}
				floats[n.ID] = v
			}
		case OpVariable:
			floats[n.ID] = e.values[n.Name]
		case OpGather:
			floats[n.ID] = tensor.Gather(floats[n.Inputs[0].ID], ints[n.Inputs[1].ID])
		case OpMatMul:
			floats[n.ID] = tensor.MatMul(floats[n.Inputs[0].ID], floats[n.Inputs[1].ID])
		case OpAddBias:
			out := floats[n.Inputs[0].ID].Clone()
			tensor.AddBiasRows(out, floats[n.Inputs[1].ID])
			floats[n.ID] = out
		case OpAdd:
			out := floats[n.Inputs[0].ID].Clone()
			out.AddInto(floats[n.Inputs[1].ID])
			floats[n.ID] = out
		case OpRelu:
			floats[n.ID] = tensor.ReluForward(floats[n.Inputs[0].ID])
		case OpTanh:
			floats[n.ID] = tensor.TanhForward(floats[n.Inputs[0].ID])
		case OpConcatCols:
			a, b := floats[n.Inputs[0].ID], floats[n.Inputs[1].ID]
			m, wa, wb := a.Dim(0), a.Dim(1), b.Dim(1)
			out := tensor.NewDense(m, wa+wb)
			for i := 0; i < m; i++ {
				copy(out.Data()[i*(wa+wb):], a.Data()[i*wa:(i+1)*wa])
				copy(out.Data()[i*(wa+wb)+wa:], b.Data()[i*wb:(i+1)*wb])
			}
			floats[n.ID] = out
		case OpSoftmaxCE:
			logits := floats[n.Inputs[0].ID]
			labels := ints[n.Inputs[1].ID]
			loss, lossGrad = tensor.SoftmaxCrossEntropy(logits, labels)
		default:
			return 0, nil, fmt.Errorf("graph: cannot execute op %v", n.Kind)
		}
	}

	// Backward pass in reverse order. denseGrad[id] accumulates dense
	// output-gradients; sparse contributions flow straight into varSparse.
	denseGrad, varSparse := e.denseGrad, e.varSparse
	clear(denseGrad)
	for k, l := range varSparse {
		clear(l)
		varSparse[k] = l[:0]
	}
	addDense := func(n *Node, g *tensor.Dense) {
		if denseGrad[n.ID] == nil {
			denseGrad[n.ID] = g.Clone()
		} else {
			denseGrad[n.ID].AddInto(g)
		}
	}

	for i := len(e.g.nodes) - 1; i >= 0; i-- {
		n := e.g.nodes[i]
		if n.Kind == OpSoftmaxCE {
			addDense(n.Inputs[0], lossGrad)
			continue
		}
		dy := denseGrad[n.ID]
		if dy == nil {
			continue // node does not influence the loss
		}
		switch n.Kind {
		case OpInput, OpVariable:
			// leaves
		case OpGather:
			table, idx := n.Inputs[0], ints[n.Inputs[1].ID]
			sp := tensor.NewSparse(idx, dy.Clone(), table.Shape[0])
			if table.Kind == OpVariable {
				varSparse[table.Name] = append(varSparse[table.Name], sp)
			} else {
				// Gather from an intermediate tensor: densify.
				addDense(table, sp.ToDense())
			}
		case OpMatMul:
			a, b := floats[n.Inputs[0].ID], floats[n.Inputs[1].ID]
			addDense(n.Inputs[0], tensor.MatMulT2(dy, b))
			addDense(n.Inputs[1], tensor.MatMulT1(a, dy))
		case OpAddBias:
			addDense(n.Inputs[0], dy)
			addDense(n.Inputs[1], tensor.SumRows(dy))
		case OpAdd:
			addDense(n.Inputs[0], dy)
			addDense(n.Inputs[1], dy)
		case OpRelu:
			addDense(n.Inputs[0], tensor.ReluBackward(floats[n.Inputs[0].ID], dy))
		case OpTanh:
			addDense(n.Inputs[0], tensor.TanhBackward(floats[n.ID], dy))
		case OpConcatCols:
			a, b := n.Inputs[0], n.Inputs[1]
			m, wa, wb := a.Shape[0], a.Shape[1], b.Shape[1]
			da := tensor.NewDense(m, wa)
			db := tensor.NewDense(m, wb)
			for r := 0; r < m; r++ {
				copy(da.Data()[r*wa:(r+1)*wa], dy.Data()[r*(wa+wb):r*(wa+wb)+wa])
				copy(db.Data()[r*wb:(r+1)*wb], dy.Data()[r*(wa+wb)+wa:(r+1)*(wa+wb)])
			}
			addDense(a, da)
			addDense(b, db)
		default:
			return 0, nil, fmt.Errorf("graph: no backward for op %v", n.Kind)
		}
	}

	// Assemble per-variable gradients, honoring the static GradKind: a
	// variable with any dense contribution gets a dense gradient (sparse
	// parts densified), otherwise the concatenated sparse gradient.
	gs := e.grads
	clear(gs.Dense)
	clear(gs.Sparse)
	for _, v := range e.g.vars {
		d := denseGrad[v.node.ID]
		sps := varSparse[v.Name]
		switch {
		case d == nil && len(sps) == 0:
			// Variable did not influence this step's loss: contribute an
			// explicit zero so synchronization stays uniform.
			if e.g.GradKind(v) == GradSparse {
				gs.Sparse[v.Name] = tensor.NewSparse(nil, tensor.NewDense(0, v.Shape[1]), v.Shape[0])
			} else {
				gs.Dense[v.Name] = tensor.NewDense(v.Shape...)
			}
		case d == nil:
			gs.Sparse[v.Name] = tensor.ConcatSparse(sps)
		default:
			for _, sp := range sps {
				d.AddInto(sp.ToDense())
			}
			gs.Dense[v.Name] = d
		}
	}
	return loss, gs, nil
}
