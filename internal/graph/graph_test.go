package graph

import (
	"math"
	"strings"
	"testing"

	"parallax/internal/tensor"
)

// buildTinyLM builds a small embedding -> hidden -> softmax model, the
// structural skeleton of the paper's LM: a sparse embedding variable plus
// dense projection variables.
func buildTinyLM(batch, vocab, dim, hidden int, rng *tensor.RNG) (*Graph, *Node, *Node) {
	g := New()
	tokens := g.Input("tokens", Int, batch)
	labels := g.Input("labels", Int, batch)
	var emb *Node
	g.InPartitioner(func() {
		emb = g.Variable("embedding", rng.RandN(0.1, vocab, dim))
	})
	w1 := g.Variable("w1", rng.RandN(0.1, dim, hidden))
	b1 := g.Variable("b1", tensor.NewDense(hidden))
	w2 := g.Variable("w2", rng.RandN(0.1, hidden, vocab))

	h := g.Gather(emb, tokens)
	h = g.AddBias(g.MatMul(h, w1), b1)
	h = g.Tanh(h)
	logits := g.MatMul(h, w2)
	g.SoftmaxCE(logits, labels)
	return g, tokens, labels
}

func TestValidateRequiresLoss(t *testing.T) {
	g := New()
	rng := tensor.NewRNG(1)
	x := g.Input("x", Float, 2, 3)
	w := g.Variable("w", rng.RandN(1, 3, 4))
	g.MatMul(x, w)
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "loss") {
		t.Fatalf("err = %v, want loss error", err)
	}
}

func TestValidateRejectsUnusedVariable(t *testing.T) {
	g := New()
	rng := tensor.NewRNG(1)
	x := g.Input("x", Float, 2, 3)
	w := g.Variable("w", rng.RandN(1, 3, 4))
	lbl := g.Input("y", Int, 2)
	g.Variable("orphan", rng.RandN(1, 2, 2))
	g.SoftmaxCE(g.MatMul(x, w), lbl)
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "orphan") {
		t.Fatalf("err = %v, want unused-variable error", err)
	}
}

func TestGradKindClassification(t *testing.T) {
	rng := tensor.NewRNG(2)
	g, _, _ := buildTinyLM(4, 20, 8, 6, rng)
	byName := map[string]*Variable{}
	for _, v := range g.Variables() {
		byName[v.Name] = v
	}
	if k := g.GradKind(byName["embedding"]); k != GradSparse {
		t.Fatalf("embedding grad kind = %v, want sparse", k)
	}
	for _, name := range []string{"w1", "b1", "w2"} {
		if k := g.GradKind(byName[name]); k != GradDense {
			t.Fatalf("%s grad kind = %v, want dense", name, k)
		}
	}
	if len(g.SparseVariables()) != 1 || len(g.DenseVariables()) != 3 {
		t.Fatalf("sparse=%d dense=%d", len(g.SparseVariables()), len(g.DenseVariables()))
	}
}

func TestMixedUseVariableIsDense(t *testing.T) {
	// A variable consumed by both Gather and MatMul must be classified
	// dense (any dense consumer wins), matching TF semantics.
	g := New()
	rng := tensor.NewRNG(3)
	tokens := g.Input("tokens", Int, 2)
	labels := g.Input("labels", Int, 2)
	x := g.Input("x", Float, 2, 10)
	emb := g.Variable("emb", rng.RandN(0.1, 10, 5))
	a := g.Gather(emb, tokens) // sparse use
	b := g.MatMul(x, emb)      // dense use
	logits := g.Add(a, b)
	g.SoftmaxCE(logits, labels)
	if k := g.GradKind(g.Variables()[0]); k != GradDense {
		t.Fatalf("mixed-use grad kind = %v, want dense", k)
	}
	// And the executor must deliver a dense gradient.
	e, err := NewExec(g)
	if err != nil {
		t.Fatal(err)
	}
	_, gs, err := e.Step(Feed{
		Ints:   map[string][]int{"tokens": {1, 2}, "labels": {0, 3}},
		Floats: map[string]*tensor.Dense{"x": rng.RandN(0.5, 2, 10)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := gs.Dense["emb"]; !ok {
		t.Fatal("mixed-use variable did not get dense gradient")
	}
}

func TestPartitionScopeMarksVariables(t *testing.T) {
	rng := tensor.NewRNG(4)
	g, _, _ := buildTinyLM(4, 20, 8, 6, rng)
	for _, v := range g.Variables() {
		if v.Name == "embedding" && v.PartitionScope != 0 {
			t.Fatalf("embedding scope = %d, want 0", v.PartitionScope)
		}
		if v.Name != "embedding" && v.PartitionScope != -1 {
			t.Fatalf("%s scope = %d, want -1", v.Name, v.PartitionScope)
		}
	}
}

func TestNestedPartitionerPanics(t *testing.T) {
	g := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on nested partitioner")
		}
	}()
	g.InPartitioner(func() { g.InPartitioner(func() {}) })
}

func TestStepLossDecreasesUnderSGD(t *testing.T) {
	rng := tensor.NewRNG(5)
	g, _, _ := buildTinyLM(8, 30, 8, 8, rng)
	e, err := NewExec(g)
	if err != nil {
		t.Fatal(err)
	}
	data := tensor.NewRNG(99)
	feed := Feed{Ints: map[string][]int{
		"tokens": randInts(data, 8, 30),
		"labels": randInts(data, 8, 30),
	}}
	var first, last float64
	const lr = 0.5
	for it := 0; it < 60; it++ {
		loss, gs, err := e.Step(feed)
		if err != nil {
			t.Fatal(err)
		}
		if it == 0 {
			first = loss
		}
		last = loss
		for name, d := range gs.Dense {
			e.VarValue(name).AXPY(-lr, d)
		}
		for name, sp := range gs.Sparse {
			tensor.ScatterAddSparse(e.VarValue(name), -lr, sp)
		}
	}
	if !(last < first*0.5) {
		t.Fatalf("loss did not halve under SGD on fixed batch: first=%v last=%v", first, last)
	}
}

func randInts(g *tensor.RNG, n, hi int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = g.Intn(hi)
	}
	return out
}

// Gradient check: every variable's analytic gradient matches central
// finite differences of the loss.
func TestGradientsMatchFiniteDifference(t *testing.T) {
	rng := tensor.NewRNG(6)
	g, _, _ := buildTinyLM(3, 12, 4, 5, rng)
	e, err := NewExec(g)
	if err != nil {
		t.Fatal(err)
	}
	feed := Feed{Ints: map[string][]int{
		"tokens": {1, 5, 1},
		"labels": {2, 0, 7},
	}}
	_, gs, err := e.Step(feed)
	if err != nil {
		t.Fatal(err)
	}
	// The GradSet is only valid until the next Step call, and the
	// finite-difference probes below re-run Step many times: snapshot the
	// analytic gradients densely first.
	analyticGrads := map[string]*tensor.Dense{}
	for _, v := range e.Graph().Variables() {
		if d, ok := gs.Dense[v.Name]; ok {
			analyticGrads[v.Name] = d.Clone()
		} else {
			analyticGrads[v.Name] = gs.Sparse[v.Name].ToDense()
		}
	}
	const eps = 1e-2
	lossAt := func() float64 {
		l, _, err := e.Step(feed)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	for _, v := range e.Graph().Variables() {
		val := e.VarValue(v.Name)
		dd := analyticGrads[v.Name]
		analytic := func(i int) float64 { return float64(dd.Data()[i]) }
		// Probe a handful of coordinates.
		probe := []int{0, 1, v.Init.NumElements() / 2, v.Init.NumElements() - 1}
		for _, i := range probe {
			orig := val.Data()[i]
			val.Data()[i] = orig + eps
			lp := lossAt()
			val.Data()[i] = orig - eps
			lm := lossAt()
			val.Data()[i] = orig
			fd := (lp - lm) / (2 * eps)
			if math.Abs(fd-analytic(i)) > 2e-2*(1+math.Abs(fd)) {
				t.Fatalf("var %s coord %d: analytic %v vs fd %v", v.Name, i, analytic(i), fd)
			}
		}
	}
}

func TestZeroGradForUntouchedStep(t *testing.T) {
	// All graph variables influence the loss here, but a sparse gradient
	// should only reference the gathered rows.
	rng := tensor.NewRNG(7)
	g, _, _ := buildTinyLM(2, 50, 4, 4, rng)
	e, _ := NewExec(g)
	_, gs, err := e.Step(Feed{Ints: map[string][]int{
		"tokens": {3, 3}, "labels": {1, 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	sp := gs.Sparse["embedding"]
	if sp.NNZRows() != 2 {
		t.Fatalf("nnz rows = %d, want 2", sp.NNZRows())
	}
	for _, r := range sp.Rows {
		if r != 3 {
			t.Fatalf("gradient row %d, want 3", r)
		}
	}
	if a := tensor.AlphaOf(sp.Rows, 50); math.Abs(a-0.02) > 1e-9 {
		t.Fatalf("alpha = %v, want 0.02", a)
	}
}

func TestModelAlphaWeighting(t *testing.T) {
	rng := tensor.NewRNG(8)
	g := New()
	tokens := g.Input("tokens", Int, 2)
	labels := g.Input("labels", Int, 2)
	emb := g.Variable("emb", rng.RandN(0.1, 100, 10)) // 1000 elements, sparse
	w := g.Variable("w", rng.RandN(0.1, 10, 10))      // 100 elements, dense
	h := g.Gather(emb, tokens)
	g.SoftmaxCE(g.MatMul(h, w), labels)
	// α_model = (0.5*1000 + 1.0*100) / 1100
	got := g.ModelAlpha(map[string]float64{"emb": 0.5})
	want := (0.5*1000 + 100) / 1100
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("ModelAlpha = %v, want %v", got, want)
	}
}

func TestConcatColsForwardBackward(t *testing.T) {
	rng := tensor.NewRNG(9)
	g := New()
	a := g.Input("a", Float, 2, 2)
	b := g.Input("b", Float, 2, 3)
	labels := g.Input("labels", Int, 2)
	w := g.Variable("w", rng.RandN(0.3, 5, 4))
	cat := g.ConcatCols(a, b)
	g.SoftmaxCE(g.MatMul(cat, w), labels)
	e, err := NewExec(g)
	if err != nil {
		t.Fatal(err)
	}
	loss, gs, err := e.Step(Feed{
		Floats: map[string]*tensor.Dense{
			"a": rng.RandN(1, 2, 2),
			"b": rng.RandN(1, 2, 3),
		},
		Ints: map[string][]int{"labels": {0, 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if loss <= 0 {
		t.Fatalf("loss = %v", loss)
	}
	if gs.Dense["w"] == nil {
		t.Fatal("missing dense grad for w")
	}
}

func TestVariableSpecNotExecutable(t *testing.T) {
	g := New()
	tokens := g.Input("tokens", Int, 2)
	labels := g.Input("labels", Int, 2)
	emb := g.VariableSpec("emb", 100, 10)
	w := g.VariableSpec("w", 10, 10)
	g.SoftmaxCE(g.MatMul(g.Gather(emb, tokens), w), labels)
	if _, err := NewExec(g); err == nil {
		t.Fatal("NewExec should reject spec-only variables")
	}
	// But sparsity classification still works.
	if k := g.GradKind(g.Variables()[0]); k != GradSparse {
		t.Fatalf("spec emb kind = %v", k)
	}
	if g.Variables()[0].Elements() != 1000 || g.Variables()[0].Bytes() != 4000 {
		t.Fatal("spec sizes wrong")
	}
}
