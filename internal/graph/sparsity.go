package graph

// GradKind classifies a variable's gradient type, the property Parallax's
// hybrid architecture dispatches on: dense gradients synchronize via
// AllReduce, sparse gradients via parameter servers (§3.1).
type GradKind int

const (
	// GradNone means the variable is unused (Validate rejects this).
	GradNone GradKind = iota
	// GradDense means at least one consumer produces a dense gradient.
	GradDense
	// GradSparse means every consumer is a Gather lookup, so the gradient
	// is IndexedSlices-shaped.
	GradSparse
)

func (k GradKind) String() string {
	switch k {
	case GradDense:
		return "dense"
	case GradSparse:
		return "sparse"
	default:
		return "none"
	}
}

// GradKind statically classifies v by inspecting its consumers, mirroring
// how TensorFlow chooses the gradient tensor type at graph-construction
// time ("TensorFlow creates a sparse type gradient tensor for a variable
// used in a sparse access operation, gather", §5).
func (g *Graph) GradKind(v *Variable) GradKind {
	kind := GradNone
	for _, n := range g.nodes {
		for slot, in := range n.Inputs {
			if in != v.node {
				continue
			}
			if n.Kind == OpGather && slot == 0 {
				if kind == GradNone {
					kind = GradSparse
				}
			} else {
				kind = GradDense
			}
		}
	}
	return kind
}

// DenseVariables returns variables with dense gradients, in declaration
// order.
func (g *Graph) DenseVariables() []*Variable {
	var out []*Variable
	for _, v := range g.vars {
		if g.GradKind(v) == GradDense {
			out = append(out, v)
		}
	}
	return out
}

// SparseVariables returns variables with sparse gradients, in declaration
// order.
func (g *Graph) SparseVariables() []*Variable {
	var out []*Variable
	for _, v := range g.vars {
		if g.GradKind(v) == GradSparse {
			out = append(out, v)
		}
	}
	return out
}

// ModelAlpha computes α_model as defined in §2.2: a weighted average of
// per-variable α values, each variable weighted by its element count.
// Dense variables have α = 1; sparse variables use the supplied per-
// variable α (the average fraction of rows touched per iteration, a
// property of the workload).
func (g *Graph) ModelAlpha(sparseAlpha map[string]float64) float64 {
	var num, den float64
	for _, v := range g.vars {
		e := float64(v.Elements())
		a := 1.0
		if g.GradKind(v) == GradSparse {
			a = sparseAlpha[v.Name]
		}
		num += a * e
		den += e
	}
	if den == 0 {
		return 0
	}
	return num / den
}
