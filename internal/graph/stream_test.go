package graph

import (
	"testing"

	"parallax/internal/tensor"
)

// StepStream must fire the gradient-ready callback exactly once per
// variable, in reverse declaration order, with the same tensors the
// returned GradSet holds — the contract the overlapped trainer builds its
// collective schedule on.
func TestStepStreamCallbackContract(t *testing.T) {
	rng := tensor.NewRNG(3)
	g := New()
	tokens := g.Input("tokens", Int, 4)
	labels := g.Input("labels", Int, 4)
	emb := g.Variable("emb", rng.RandN(0.1, 20, 6))
	w1 := g.Variable("w1", rng.RandN(0.1, 6, 8))
	b1 := g.Variable("b1", tensor.NewDense(8))
	w2 := g.Variable("w2", rng.RandN(0.1, 8, 20))
	h := g.Tanh(g.AddBias(g.MatMul(g.Gather(emb, tokens), w1), b1))
	g.SoftmaxCE(g.MatMul(h, w2), labels)

	e, err := NewExec(g)
	if err != nil {
		t.Fatal(err)
	}
	feed := Feed{Ints: map[string][]int{"tokens": {1, 5, 5, 9}, "labels": {0, 3, 7, 19}}}

	var order []string
	seenDense := map[string]*tensor.Dense{}
	seenSparse := map[string]*tensor.Sparse{}
	_, grads, err := e.StepStream(feed, func(name string, d *tensor.Dense, sp *tensor.Sparse) {
		order = append(order, name)
		if (d == nil) == (sp == nil) {
			t.Errorf("variable %s: exactly one of dense/sparse must be set (dense=%v sparse=%v)", name, d, sp)
		}
		seenDense[name] = d
		seenSparse[name] = sp
	})
	if err != nil {
		t.Fatal(err)
	}

	// Reverse declaration order: w2 (closest to the loss) first, emb last.
	want := []string{"w2", "b1", "w1", "emb"}
	if len(order) != len(want) {
		t.Fatalf("callback fired for %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("callback order %v, want %v", order, want)
		}
	}

	// The callback tensors are the GradSet tensors, not copies.
	for name, d := range grads.Dense {
		if seenDense[name] != d {
			t.Errorf("dense gradient for %s differs between callback and GradSet", name)
		}
	}
	for name, sp := range grads.Sparse {
		if seenSparse[name] != sp {
			t.Errorf("sparse gradient for %s differs between callback and GradSet", name)
		}
	}
	if grads.Sparse["emb"] == nil {
		t.Fatal("emb must receive a sparse gradient")
	}
}

// A streamed step must produce the same gradients as a plain Step.
func TestStepStreamMatchesStep(t *testing.T) {
	rng := tensor.NewRNG(8)
	g := New()
	x := g.Input("x", Float, 3, 5)
	labels := g.Input("labels", Int, 3)
	w := g.Variable("w", rng.RandN(0.3, 5, 7))
	b := g.Variable("b", tensor.NewDense(7))
	g.SoftmaxCE(g.AddBias(g.MatMul(x, w), b), labels)

	feed := Feed{
		Floats: map[string]*tensor.Dense{"x": rng.RandN(1, 3, 5)},
		Ints:   map[string][]int{"labels": {0, 2, 6}},
	}
	e1, _ := NewExec(g)
	_, g1, err := e1.Step(feed)
	if err != nil {
		t.Fatal(err)
	}
	w1 := g1.Dense["w"].Clone()
	b1 := g1.Dense["b"].Clone()

	e2, _ := NewExec(g)
	_, g2, err := e2.StepStream(feed, func(string, *tensor.Dense, *tensor.Sparse) {})
	if err != nil {
		t.Fatal(err)
	}
	if g2.Dense["w"].MaxAbsDiff(w1) != 0 || g2.Dense["b"].MaxAbsDiff(b1) != 0 {
		t.Fatal("StepStream gradients differ from Step")
	}
}
