package simnet

import (
	"math"
	"testing"

	"parallax/internal/cluster"
	"parallax/internal/sim"
)

func testHW() cluster.Hardware {
	hw := cluster.DefaultHardware()
	hw.NICBandwidth = 1000 // 1000 B/s for easy arithmetic
	hw.ProtocolEff = map[cluster.Protocol]float64{
		cluster.ProtoNCCL: 1.0,
		cluster.ProtoRPC:  0.5,
		cluster.ProtoMPI:  0.25,
	}
	hw.NetLatency = 0.001
	hw.LocalBusBandwidth = 1e6
	return hw
}

func TestTransferTiming(t *testing.T) {
	k := sim.NewKernel()
	f := New(k, 2, testHW())
	var at sim.Time
	f.Transfer(0, 1, 500, cluster.ProtoNCCL, func() { at = k.Now() })
	k.Run()
	// egress 0.5s + latency 0.001 + ingress 0.5s
	want := sim.Time(0.5 + 0.001 + 0.5)
	if math.Abs(float64(at-want)) > 1e-9 {
		t.Fatalf("delivery at %v, want %v", at, want)
	}
}

func TestProtocolBandwidthApplied(t *testing.T) {
	k := sim.NewKernel()
	f := New(k, 2, testHW())
	var nccl, rpc sim.Time
	f.Transfer(0, 1, 500, cluster.ProtoNCCL, func() { nccl = k.Now() })
	k.Run()
	k2 := sim.NewKernel()
	f2 := New(k2, 2, testHW())
	f2.Transfer(0, 1, 500, cluster.ProtoRPC, func() { rpc = k2.Now() })
	k2.Run()
	if !(rpc > nccl*1.5) {
		t.Fatalf("RPC transfer (%v) should be ~2x slower than NCCL (%v)", rpc, nccl)
	}
}

func TestEgressSerialization(t *testing.T) {
	// Two transfers from machine 0 to different destinations must
	// serialize on 0's egress NIC.
	k := sim.NewKernel()
	f := New(k, 3, testHW())
	var d1, d2 sim.Time
	f.Transfer(0, 1, 1000, cluster.ProtoNCCL, func() { d1 = k.Now() })
	f.Transfer(0, 2, 1000, cluster.ProtoNCCL, func() { d2 = k.Now() })
	k.Run()
	// first: egress [0,1], ingress [1.001, 2.001]
	// second: egress [1,2], ingress [2.001, 3.001]
	if math.Abs(float64(d1)-2.001) > 1e-9 || math.Abs(float64(d2)-3.001) > 1e-9 {
		t.Fatalf("d1=%v d2=%v, want 2.001, 3.001", d1, d2)
	}
}

func TestIngressContention(t *testing.T) {
	// Two senders to one receiver contend on the receiver's ingress NIC.
	k := sim.NewKernel()
	f := New(k, 3, testHW())
	var done []sim.Time
	f.Transfer(0, 2, 1000, cluster.ProtoNCCL, func() { done = append(done, k.Now()) })
	f.Transfer(1, 2, 1000, cluster.ProtoNCCL, func() { done = append(done, k.Now()) })
	k.Run()
	if len(done) != 2 {
		t.Fatalf("deliveries = %d", len(done))
	}
	// Both egress in parallel finish at 1; ingress serializes: 2.001, 3.001.
	if math.Abs(float64(done[0])-2.001) > 1e-9 || math.Abs(float64(done[1])-3.001) > 1e-9 {
		t.Fatalf("done = %v, want [2.001 3.001]", done)
	}
}

func TestFullDuplex(t *testing.T) {
	// A machine can send and receive simultaneously (ring AllReduce relies
	// on this).
	k := sim.NewKernel()
	f := New(k, 2, testHW())
	var d0, d1 sim.Time
	f.Transfer(0, 1, 1000, cluster.ProtoNCCL, func() { d0 = k.Now() })
	f.Transfer(1, 0, 1000, cluster.ProtoNCCL, func() { d1 = k.Now() })
	k.Run()
	if math.Abs(float64(d0)-2.001) > 1e-9 || math.Abs(float64(d1)-2.001) > 1e-9 {
		t.Fatalf("full duplex broken: d0=%v d1=%v", d0, d1)
	}
}

func TestLocalTransferBypassesNetwork(t *testing.T) {
	k := sim.NewKernel()
	f := New(k, 2, testHW())
	delivered := false
	f.Transfer(0, 0, 1<<20, cluster.ProtoRPC, func() { delivered = true })
	k.Run()
	if !delivered {
		t.Fatal("local transfer not delivered")
	}
	if f.SentBytes(0) != 0 || f.RecvBytes(0) != 0 {
		t.Fatal("local transfer counted as network bytes")
	}
}

func TestByteAccounting(t *testing.T) {
	k := sim.NewKernel()
	f := New(k, 3, testHW())
	f.Transfer(0, 1, 100, cluster.ProtoNCCL, nil)
	f.Transfer(0, 2, 50, cluster.ProtoRPC, nil)
	f.Transfer(2, 0, 25, cluster.ProtoRPC, nil)
	k.Run()
	if f.SentBytes(0) != 150 || f.RecvBytes(0) != 25 || f.TotalBytes(0) != 175 {
		t.Fatalf("m0 sent=%d recv=%d", f.SentBytes(0), f.RecvBytes(0))
	}
	if f.RecvBytes(1) != 100 || f.RecvBytes(2) != 50 {
		t.Fatal("receiver accounting wrong")
	}
	if f.BytesByProtocol(cluster.ProtoRPC) != 75 {
		t.Fatalf("rpc bytes = %d", f.BytesByProtocol(cluster.ProtoRPC))
	}
	if f.Transfers() != 3 {
		t.Fatalf("transfers = %d", f.Transfers())
	}
	f.ResetCounters()
	if f.TotalBytes(0) != 0 || f.Transfers() != 0 {
		t.Fatal("ResetCounters incomplete")
	}
}

func TestTransferFromFutureEvent(t *testing.T) {
	k := sim.NewKernel()
	f := New(k, 2, testHW())
	var at sim.Time
	k.After(5, func() {
		f.Transfer(0, 1, 1000, cluster.ProtoNCCL, func() { at = k.Now() })
	})
	k.Run()
	want := sim.Time(5 + 1 + 0.001 + 1)
	if math.Abs(float64(at-want)) > 1e-9 {
		t.Fatalf("delivery at %v, want %v", at, want)
	}
}

func TestLateReadyTransferDoesNotBlockEarlyOne(t *testing.T) {
	// A transfer that becomes ready at t=10 must not delay one ready at
	// t=0, even if the late one is *scheduled* first — the regression the
	// two-stage booking discipline prevents.
	k := sim.NewKernel()
	f := New(k, 3, testHW())
	var early, late sim.Time
	k.After(10, func() {
		f.Transfer(1, 2, 1000, cluster.ProtoNCCL, func() { late = k.Now() })
	})
	k.After(0, func() {
		f.Transfer(0, 2, 1000, cluster.ProtoNCCL, func() { early = k.Now() })
	})
	k.Run()
	if math.Abs(float64(early)-2.001) > 1e-9 {
		t.Fatalf("early delivery at %v, want 2.001", early)
	}
	if math.Abs(float64(late)-12.001) > 1e-9 {
		t.Fatalf("late delivery at %v, want 12.001", late)
	}
}

func TestLocalBusCost(t *testing.T) {
	k := sim.NewKernel()
	f := New(k, 1, testHW())
	var at sim.Time
	f.Local(0, 1_000_000, func() { at = k.Now() }) // 1e6 B at 1e6 B/s = 1s
	k.Run()
	if math.Abs(float64(at)-1) > 1e-9 {
		t.Fatalf("local bus completion %v, want 1", at)
	}
}

func TestHotSpotAsymmetry(t *testing.T) {
	// The PS hot-spot of §3.1: one machine serving a variable to N-1
	// pullers is bottlenecked on its egress; the same volume moved in a
	// balanced ring is not. With 4 machines and w bytes per pull, server
	// egress takes 3w/B while ring steps overlap across NICs.
	const w = 12000
	hw := testHW()
	hw.NetLatency = 0

	// Server pattern: machine 0 sends w to each of 1..3.
	k1 := sim.NewKernel()
	f1 := New(k1, 4, hw)
	n1 := sim.NewCounter(3, func() {})
	for d := 1; d < 4; d++ {
		f1.Transfer(0, d, w, cluster.ProtoNCCL, n1.Done)
	}
	serverTime := k1.Run()

	// Ring pattern: every machine sends w/4 to its successor, 2*(N-1)
	// rounds; all NICs busy in parallel.
	k2 := sim.NewKernel()
	f2 := New(k2, 4, hw)
	for step := 0; step < 6; step++ {
		for m := 0; m < 4; m++ {
			f2.Transfer(m, (m+1)%4, w/4, cluster.ProtoNCCL, nil)
		}
	}
	ringTime := k2.Run()

	if !(ringTime < serverTime) {
		t.Fatalf("ring (%v) should beat hot-spot server (%v) for same per-variable volume", ringTime, serverTime)
	}
}
