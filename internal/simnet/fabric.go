// Package simnet models the cluster network for the discrete-event
// simulation: one full-duplex NIC per machine (separate egress and ingress
// FIFO resources), per-protocol effective bandwidth, a fixed per-message
// latency, and byte accounting per machine.
//
// The byte counters are what Table 3 of the paper analyses: the amount of
// network transfer required per machine for each (variable type,
// architecture) combination. internal/experiments verifies the fabric's
// measured bytes against the paper's closed-form expressions.
//
// Booking discipline: a transfer occupies the sender's egress NIC starting
// at the moment Transfer is called (the caller invokes it at data-ready
// time, from inside an event), and the receiver's ingress NIC is booked in
// a *second* event at egress completion. This two-stage booking keeps both
// NICs' FIFO order equal to data-arrival order, so a transfer that becomes
// ready later can never block one that is ready now.
package simnet

import (
	"fmt"

	"parallax/internal/cluster"
	"parallax/internal/sim"
)

// Fabric is the simulated network connecting machines.
type Fabric struct {
	k  *sim.Kernel
	hw cluster.Hardware

	egress  []*sim.Resource
	ingress []*sim.Resource
	local   []*sim.Resource // intra-machine bus

	sent []int64 // network bytes out per machine
	recv []int64 // network bytes in per machine

	sentByProto map[cluster.Protocol]int64
	transfers   int64
}

// New returns a fabric for n machines on kernel k with hardware constants
// hw.
func New(k *sim.Kernel, n int, hw cluster.Hardware) *Fabric {
	if n <= 0 {
		panic(fmt.Sprintf("simnet: %d machines", n))
	}
	f := &Fabric{
		k:           k,
		hw:          hw,
		egress:      make([]*sim.Resource, n),
		ingress:     make([]*sim.Resource, n),
		local:       make([]*sim.Resource, n),
		sent:        make([]int64, n),
		recv:        make([]int64, n),
		sentByProto: make(map[cluster.Protocol]int64),
	}
	for i := 0; i < n; i++ {
		f.egress[i] = sim.NewResource(k, fmt.Sprintf("m%d/egress", i))
		f.ingress[i] = sim.NewResource(k, fmt.Sprintf("m%d/ingress", i))
		f.local[i] = sim.NewResource(k, fmt.Sprintf("m%d/localbus", i))
	}
	return f
}

// NumMachines returns the machine count.
func (f *Fabric) NumMachines() int { return len(f.egress) }

// Kernel returns the underlying event kernel.
func (f *Fabric) Kernel() *sim.Kernel { return f.k }

// Hardware returns the fabric's cost constants.
func (f *Fabric) Hardware() cluster.Hardware { return f.hw }

// Transfer moves bytes from machine src to machine dst over the given
// protocol and invokes deliver when the last byte arrives at dst. The data
// is taken to be ready *now* (call Transfer from the event at which the
// payload becomes available). Transfers between co-located endpoints
// (src == dst) use the machine-local bus and are not counted as network
// traffic, matching the paper's model where a worker and its machine's
// server communicate "locally within the machine without involving network
// communication" (§3.1).
func (f *Fabric) Transfer(src, dst int, bytes int64, proto cluster.Protocol, deliver func()) {
	if bytes < 0 {
		panic("simnet: negative transfer size")
	}
	f.transfers++
	if src == dst {
		dur := sim.Time(float64(bytes) / f.hw.LocalBusBandwidth)
		f.local[src].Use(dur, deliver)
		return
	}
	f.sent[src] += bytes
	f.recv[dst] += bytes
	f.sentByProto[proto] += bytes
	dur := sim.Time(float64(bytes) / f.hw.Bandwidth(proto))
	lat := sim.Time(f.hw.NetLatency)
	f.egress[src].Use(dur, func() {
		f.k.After(lat, func() {
			f.ingress[dst].Use(dur, deliver)
		})
	})
}

// Local occupies machine m's local bus (PCIe/NVLink class) for moving
// bytes, starting now, and invokes done at completion. Used for
// intra-machine gradient staging, local aggregation and broadcast.
func (f *Fabric) Local(m int, bytes int64, done func()) {
	if bytes < 0 {
		panic("simnet: negative local transfer size")
	}
	dur := sim.Time(float64(bytes) / f.hw.LocalBusBandwidth)
	f.local[m].Use(dur, done)
}

// SentBytes returns the network bytes machine m has sent since the last
// ResetCounters.
func (f *Fabric) SentBytes(m int) int64 { return f.sent[m] }

// RecvBytes returns the network bytes machine m has received since the last
// ResetCounters.
func (f *Fabric) RecvBytes(m int) int64 { return f.recv[m] }

// TotalBytes returns sent+received for machine m — the per-machine "amount
// of network transfer" of Table 3.
func (f *Fabric) TotalBytes(m int) int64 { return f.sent[m] + f.recv[m] }

// BytesByProtocol returns cumulative bytes sent over proto.
func (f *Fabric) BytesByProtocol(p cluster.Protocol) int64 { return f.sentByProto[p] }

// Transfers returns the number of Transfer calls (message count).
func (f *Fabric) Transfers() int64 { return f.transfers }

// ResetCounters zeroes all byte counters (NIC queues are unaffected). Used
// to measure steady-state iterations, discarding warm-up.
func (f *Fabric) ResetCounters() {
	for i := range f.sent {
		f.sent[i] = 0
		f.recv[i] = 0
	}
	f.sentByProto = make(map[cluster.Protocol]int64)
	f.transfers = 0
}

// EgressUtilization returns the busy fraction of machine m's egress NIC
// over the horizon.
func (f *Fabric) EgressUtilization(m int, horizon sim.Time) float64 {
	return f.egress[m].Utilization(horizon)
}
