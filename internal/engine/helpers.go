package engine

import (
	"parallax/internal/cluster"
	"parallax/internal/core"
	"parallax/internal/models"
)

// PlanVars converts a model spec's variables into planner inputs.
func PlanVars(spec *models.Spec) []core.VarInfo {
	out := make([]core.VarInfo, len(spec.Vars))
	for i, v := range spec.Vars {
		out[i] = core.VarInfo{
			Name: v.Name, Rows: v.Rows, Width: v.Width,
			Sparse: v.Sparse, Alpha: v.Alpha, PartitionTarget: v.PartitionTarget,
		}
	}
	return out
}

// DefaultIterations is the simulated iteration count used by RunArch; the
// first DefaultWarmup iterations are discarded.
const (
	DefaultIterations = 8
	DefaultWarmup     = 3
)

// RunArch plans and simulates spec under the given architecture with the
// conventions each baseline uses: smart placement and local aggregation for
// Parallax's OptPS and Hybrid, naive placement and per-worker communication
// for TF-PS, collectives only for Horovod.
func RunArch(spec *models.Spec, arch core.Arch, machines, gpus, parts int, hw cluster.Hardware) (Result, error) {
	plan, err := core.BuildPlan(PlanVars(spec), core.Options{
		Arch:             arch,
		NumMachines:      machines,
		SparsePartitions: parts,
		SmartPlacement:   arch == core.ArchOptPS || arch == core.ArchHybrid,
	})
	if err != nil {
		return Result{}, err
	}
	return Run(Config{
		Model:            spec,
		Plan:             plan,
		Machines:         machines,
		GPUsPerMachine:   gpus,
		HW:               hw,
		LocalAggregation: arch == core.ArchOptPS || arch == core.ArchHybrid,
		Iterations:       DefaultIterations,
		Warmup:           DefaultWarmup,
	})
}
