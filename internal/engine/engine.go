// Package engine simulates synchronous data-parallel training of a
// paper-scale model on the simulated cluster, producing step times,
// throughput and per-machine network-transfer measurements.
//
// The engine is fully event-driven on the sim kernel. Each worker is a
// small state machine: forward compute proceeds layer by layer, gated on
// the availability of each layer's variables for the current iteration;
// backward compute emits gradients in reverse layer order; each gradient
// triggers its variable's synchronization path (ring AllReduce, ring
// AllGatherv, or parameter-server push/aggregate/update/pull with optional
// local aggregation and partitioning); and the synchronized value's arrival
// unblocks the next iteration's forward pass. All queueing effects — NIC
// serialization at PS hot spots, CPU aggregation parallelism limits,
// compute/communication overlap across iterations — emerge from resource
// contention in virtual time rather than closed-form formulas, so the
// paper's Table 3 analysis can be *checked against* the simulation instead
// of being baked into it.
package engine

import (
	"fmt"

	"parallax/internal/cluster"
	"parallax/internal/core"
	"parallax/internal/models"
	"parallax/internal/sim"
	"parallax/internal/simnet"
)

// Config describes one simulated training run.
type Config struct {
	Model *models.Spec
	Plan  *core.Plan
	// Machines and GPUsPerMachine shape the cluster.
	Machines, GPUsPerMachine int
	HW                       cluster.Hardware
	// LocalAggregation enables intra-machine gradient aggregation before
	// pushing to servers (part of Parallax's optimized PS, §4.3/§5).
	LocalAggregation bool
	// Iterations and Warmup control measurement: Warmup iterations are
	// discarded (the paper discards the first 50 of 100 sampling
	// iterations, §3.2; scaled down here because the simulation reaches
	// steady state within a few steps).
	Iterations, Warmup int
}

// Result holds the measured steady-state behaviour.
type Result struct {
	// StepTime is the steady-state seconds per iteration.
	StepTime float64
	// Throughput is units/sec across the whole cluster (images/s or
	// words/s).
	Throughput float64
	// BytesPerMachine is the per-iteration network transfer (sent+recv)
	// per machine, averaged over measured iterations.
	BytesPerMachine []float64
	// MessagesPerIter is the per-iteration network message count.
	MessagesPerIter float64
}

// MaxMachineBytes returns the largest per-machine transfer.
func (r Result) MaxMachineBytes() float64 {
	m := 0.0
	for _, b := range r.BytesPerMachine {
		if b > m {
			m = b
		}
	}
	return m
}

// AvgMachineBytes returns the mean per-machine transfer.
func (r Result) AvgMachineBytes() float64 {
	if len(r.BytesPerMachine) == 0 {
		return 0
	}
	s := 0.0
	for _, b := range r.BytesPerMachine {
		s += b
	}
	return s / float64(len(r.BytesPerMachine))
}

// Run simulates the configured training and returns measurements.
func Run(cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	r := newRunner(cfg)
	return r.run(), nil
}

func (cfg Config) validate() error {
	if cfg.Model == nil || cfg.Plan == nil {
		return fmt.Errorf("engine: nil model or plan")
	}
	if err := cfg.Model.Validate(); err != nil {
		return err
	}
	if cfg.Machines <= 0 || cfg.GPUsPerMachine <= 0 {
		return fmt.Errorf("engine: bad cluster %dx%d", cfg.Machines, cfg.GPUsPerMachine)
	}
	if len(cfg.Plan.ServerBytes) != cfg.Machines {
		return fmt.Errorf("engine: plan built for %d machines, cluster has %d",
			len(cfg.Plan.ServerBytes), cfg.Machines)
	}
	if len(cfg.Plan.Assignments) != len(cfg.Model.Vars) {
		return fmt.Errorf("engine: plan has %d assignments, model has %d variables",
			len(cfg.Plan.Assignments), len(cfg.Model.Vars))
	}
	if cfg.Iterations <= cfg.Warmup {
		return fmt.Errorf("engine: iterations %d must exceed warmup %d", cfg.Iterations, cfg.Warmup)
	}
	return nil
}

// worker is the per-GPU training state machine.
type worker struct {
	id      int
	machine int
	iter    int // current iteration (0-based)
	layer   int // forward progress within iter
	inBwd   bool
	waiting bool // blocked on a variable pull/update
}

// runner holds the mutable simulation state.
type runner struct {
	cfg Config
	k   *sim.Kernel
	fab *simnet.Fabric

	workers int
	ws      []*worker
	gpus    []*sim.Resource
	// cpuStreams[m] are machine m's server-side aggregation streams.
	cpuStreams [][]*sim.Resource

	// availIter[w][vi] counts how many times variable vi's fresh value has
	// been delivered to worker w; iteration i's forward needs
	// availIter >= i (values flow from iteration i-1's synchronization).
	availIter [][]int

	// varsByLayer[l] lists variable indices in layer l.
	varsByLayer [][]int

	// boundaries[i] is the max backward-finish time over workers for
	// iteration i.
	boundaries []sim.Time
	bwdLeft    []int // workers still in backward for iteration i

	fwdPer, bwdPer sim.Time

	comm []*varComm
}

func newRunner(cfg Config) *runner {
	k := sim.NewKernel()
	r := &runner{
		cfg:     cfg,
		k:       k,
		fab:     simnet.New(k, cfg.Machines, cfg.HW),
		workers: cfg.Machines * cfg.GPUsPerMachine,
		fwdPer:  sim.Time(cfg.Model.FwdTime / float64(cfg.Model.Layers)),
		bwdPer:  sim.Time(cfg.Model.BwdTime / float64(cfg.Model.Layers)),
	}
	r.ws = make([]*worker, r.workers)
	r.gpus = make([]*sim.Resource, r.workers)
	r.availIter = make([][]int, r.workers)
	for w := 0; w < r.workers; w++ {
		r.ws[w] = &worker{id: w, machine: w / cfg.GPUsPerMachine}
		r.gpus[w] = sim.NewResource(k, fmt.Sprintf("gpu%d", w))
		r.availIter[w] = make([]int, len(cfg.Model.Vars))
		for vi := range r.availIter[w] {
			r.availIter[w][vi] = 1 // initial values are present everywhere
		}
	}
	r.cpuStreams = make([][]*sim.Resource, cfg.Machines)
	for m := range r.cpuStreams {
		streams := make([]*sim.Resource, cfg.HW.CPUAggParallelism)
		for i := range streams {
			streams[i] = sim.NewResource(k, fmt.Sprintf("m%d/cpu%d", m, i))
		}
		r.cpuStreams[m] = streams
	}
	r.varsByLayer = make([][]int, cfg.Model.Layers)
	for vi, v := range cfg.Model.Vars {
		r.varsByLayer[v.Layer] = append(r.varsByLayer[v.Layer], vi)
	}
	r.boundaries = make([]sim.Time, cfg.Iterations)
	r.bwdLeft = make([]int, cfg.Iterations)
	for i := range r.bwdLeft {
		r.bwdLeft[i] = r.workers
	}
	return r
}

// pickCPU returns the machine-m CPU stream that is free soonest.
func (r *runner) pickCPU(m int) *sim.Resource {
	best := r.cpuStreams[m][0]
	for _, s := range r.cpuStreams[m][1:] {
		if s.FreeAt() < best.FreeAt() {
			best = s
		}
	}
	return best
}

func (r *runner) run() Result {
	r.initComm()
	for w := 0; w < r.workers; w++ {
		r.advance(r.ws[w])
	}
	r.k.Run()

	cfg := r.cfg
	measured := float64(cfg.Iterations - cfg.Warmup)
	warmBoundary := r.boundaries[cfg.Warmup-1]
	lastBoundary := r.boundaries[cfg.Iterations-1]
	stepTime := float64(lastBoundary-warmBoundary) / measured

	// Every iteration synchronizes every variable exactly once and the
	// kernel drains fully, so per-iteration traffic is total/iterations —
	// no window-edge effects.
	iters := float64(cfg.Iterations)
	res := Result{
		StepTime:        stepTime,
		BytesPerMachine: make([]float64, cfg.Machines),
		MessagesPerIter: float64(r.fab.Transfers()) / iters,
	}
	if stepTime > 0 {
		res.Throughput = cfg.Model.UnitsPerStepPerGPU() * float64(r.workers) / stepTime
	}
	for m := range res.BytesPerMachine {
		res.BytesPerMachine[m] = float64(r.fab.TotalBytes(m)) / iters
	}
	return res
}

// advance drives worker w's state machine as far as data allows; it is
// called initially and whenever a variable the worker waits for arrives.
func (r *runner) advance(w *worker) {
	if w.iter >= r.cfg.Iterations || w.inBwd {
		return
	}
	// Check variable availability for the current forward layer.
	for _, vi := range r.varsByLayer[w.layer] {
		if r.availIter[w.id][vi] <= w.iter {
			w.waiting = true
			return
		}
	}
	w.waiting = false
	r.gpus[w.id].Use(r.fwdPer, func() { r.forwardDone(w) })
}

func (r *runner) forwardDone(w *worker) {
	w.layer++
	if w.layer < r.cfg.Model.Layers {
		r.advance(w)
		return
	}
	// Start backward, top layer first.
	w.inBwd = true
	r.backwardLayer(w, r.cfg.Model.Layers-1)
}

func (r *runner) backwardLayer(w *worker, l int) {
	r.gpus[w.id].Use(r.bwdPer, func() {
		for _, vi := range r.varsByLayer[l] {
			r.gradProduced(w, vi)
		}
		if l > 0 {
			r.backwardLayer(w, l-1)
			return
		}
		r.backwardFinished(w)
	})
}

func (r *runner) backwardFinished(w *worker) {
	it := w.iter
	if now := r.k.Now(); now > r.boundaries[it] {
		r.boundaries[it] = now
	}
	r.bwdLeft[it]--
	w.inBwd = false
	w.layer = 0
	w.iter++
	r.advance(w)
}

// deliverVar records that variable vi's synchronized value reached worker w
// and wakes the worker if it was blocked on it.
func (r *runner) deliverVar(wid, vi int) {
	r.availIter[wid][vi]++
	w := r.ws[wid]
	if w.waiting {
		r.advance(w)
	}
}
