package engine

import (
	"parallax/internal/cluster"
	"parallax/internal/core"
	"parallax/internal/models"
	"parallax/internal/sim"
)

// This file schedules per-variable gradient synchronization. Three paths,
// matching core.Method:
//
//   - ring AllReduce   (dense gradients, NCCL protocol)    — §2.1/Fig 2(c)
//   - ring AllGatherv  (sparse gradients, MPI protocol)    — §2.1/Fig 2(d)
//   - parameter server (pull/push, RPC protocol)           — §2.1/Fig 2(a,b)
//
// The PS path implements the paper's optimized PS when
// Config.LocalAggregation is set: gradients are merged inside each machine
// first and one per-machine push flows to each server ("local aggregation
// reduces the amount of data communication between workers and servers",
// §4.3); aggregation and update ops execute on the server that owns the
// variable partition (smart placement). Pulls are always per worker: each
// replica fetches the rows its own next batch needs.
//
// Because workers pipeline across iterations (a fast worker may start
// iteration i+1 while a slow one still synchronizes iteration i), per-
// variable communication state is keyed by iteration.

// varIterState tracks one variable's synchronization for one iteration.
type varIterState struct {
	// fan-in counters
	machineLeft []int // workers yet to produce grad, per machine
	ready       []bool
	recvCount   []int // ring rounds received, per machine
	nextSend    []int // next ring round to send, per machine
	partsLeft   []int // pushes outstanding per partition
	pullsLeft   []int // partition pulls outstanding per worker
	delivered   int   // workers that completed delivery
}

// varComm is the per-variable communication driver.
type varComm struct {
	vi    int
	a     core.Assignment
	iters map[int]*varIterState
}

func (r *runner) initComm() {
	r.comm = make([]*varComm, len(r.cfg.Model.Vars))
	for vi := range r.comm {
		r.comm[vi] = &varComm{vi: vi, a: r.cfg.Plan.Assignments[vi], iters: map[int]*varIterState{}}
	}
}

func (vc *varComm) state(r *runner, iter int) *varIterState {
	st, ok := vc.iters[iter]
	if !ok {
		st = &varIterState{
			machineLeft: make([]int, r.cfg.Machines),
			ready:       make([]bool, r.cfg.Machines),
			recvCount:   make([]int, r.cfg.Machines),
			nextSend:    make([]int, r.cfg.Machines),
			partsLeft:   make([]int, vc.a.Partitions),
			pullsLeft:   make([]int, r.workers),
		}
		for m := range st.machineLeft {
			st.machineLeft[m] = r.cfg.GPUsPerMachine
		}
		nSources := r.workers
		if r.cfg.LocalAggregation && vc.a.Method == core.MethodPS {
			nSources = r.cfg.Machines
		}
		for p := range st.partsLeft {
			st.partsLeft[p] = nSources
		}
		for w := range st.pullsLeft {
			st.pullsLeft[w] = vc.a.Partitions
		}
		vc.iters[iter] = st
	}
	return st
}

// gradProduced is invoked (at the current event time) when worker w's
// gradient for variable vi becomes ready in iteration w.iter.
func (r *runner) gradProduced(w *worker, vi int) {
	vc := r.comm[vi]
	iter := w.iter
	switch vc.a.Method {
	case core.MethodAllReduce, core.MethodAllGatherv:
		r.collectiveGrad(vc, iter, w)
	case core.MethodPS:
		if r.cfg.LocalAggregation {
			r.psMachineGrad(vc, iter, w)
		} else {
			r.psPush(vc, iter, w.machine, vc.a.Alpha)
		}
	}
}

// deliverAll finishes variable vi for one worker; when every worker has its
// fresh value the iteration state is garbage-collected.
func (r *runner) varDelivered(vc *varComm, iter, wid int) {
	st := vc.iters[iter]
	st.delivered++
	if st.delivered == r.workers {
		delete(vc.iters, iter)
	}
	r.deliverVar(wid, vc.vi)
}

// ---- collective paths (AllReduce / AllGatherv) ----

// collectiveGrad counts down a machine's workers; when all have produced
// their gradient, the machine-local merge is staged over the local bus and
// the machine joins the ring.
func (r *runner) collectiveGrad(vc *varComm, iter int, w *worker) {
	st := vc.state(r, iter)
	m := w.machine
	st.machineLeft[m]--
	if st.machineLeft[m] > 0 {
		return
	}
	stage := vc.blockBytes(r)
	if r.cfg.GPUsPerMachine > 1 && stage > 0 {
		r.fab.Local(m, stage, func() { r.machineReady(vc, iter, m) })
	} else {
		r.machineReady(vc, iter, m)
	}
}

// blockBytes is the per-machine payload circulating the ring: the full
// gradient for AllReduce (chunked by N inside the ring), or the machine's
// G·αw concatenated slices for AllGatherv.
func (vc *varComm) blockBytes(r *runner) int64 {
	if vc.a.Method == core.MethodAllGatherv {
		b := int64(vc.a.Alpha * float64(vc.a.Bytes()) * float64(r.cfg.GPUsPerMachine))
		if b < 1 {
			b = 1
		}
		return b
	}
	return vc.a.Bytes()
}

func (vc *varComm) ringRounds(r *runner) int {
	n := r.cfg.Machines
	if vc.a.Method == core.MethodAllGatherv {
		return n - 1
	}
	return 2 * (n - 1)
}

// chunkBytes is the per-round transfer size: w/N for the AllReduce ring
// (reduce-scatter + all-gather), a full machine block for AllGatherv.
func (vc *varComm) chunkBytes(r *runner) int64 {
	if vc.a.Method == core.MethodAllGatherv {
		return vc.blockBytes(r)
	}
	c := vc.a.Bytes() / int64(r.cfg.Machines)
	if c < 1 {
		c = 1
	}
	return c
}

func (vc *varComm) proto() cluster.Protocol {
	if vc.a.Method == core.MethodAllGatherv {
		return cluster.ProtoMPI
	}
	return cluster.ProtoNCCL
}

func (r *runner) machineReady(vc *varComm, iter, m int) {
	st := vc.state(r, iter)
	st.ready[m] = true
	if r.cfg.Machines == 1 {
		r.collectiveFinish(vc, iter, m)
		return
	}
	r.ringPump(vc, iter, m)
}

// ringPump issues machine m's next ring sends while their prerequisites
// hold: m has staged its gradient, sends go in round order, and round k
// requires round k-1 to have arrived.
func (r *runner) ringPump(vc *varComm, iter, m int) {
	st := vc.state(r, iter)
	rounds := vc.ringRounds(r)
	for st.ready[m] && st.nextSend[m] < rounds &&
		(st.nextSend[m] == 0 || st.recvCount[m] >= st.nextSend[m]) {
		k := st.nextSend[m]
		st.nextSend[m] = k + 1
		dst := (m + 1) % r.cfg.Machines
		r.fab.Transfer(m, dst, vc.chunkBytes(r), vc.proto(), func() {
			r.ringRecv(vc, iter, dst, k)
		})
	}
}

func (r *runner) ringRecv(vc *varComm, iter, d, k int) {
	st := vc.state(r, iter)
	st.recvCount[d]++
	if k == vc.ringRounds(r)-1 {
		r.collectiveFinish(vc, iter, d)
		return
	}
	r.ringPump(vc, iter, d)
}

// collectiveFinish broadcasts the aggregated gradient inside machine m and
// applies the update on each of its GPUs.
func (r *runner) collectiveFinish(vc *varComm, iter, m int) {
	hw := r.cfg.HW
	g := r.cfg.GPUsPerMachine
	var applyDur sim.Time
	if vc.a.Method == core.MethodAllGatherv {
		gathered := vc.a.Alpha * float64(g*r.cfg.Machines)
		applyDur = sim.Time(gathered*float64(vc.a.Elements())/hw.GPULocalReduceRate) +
			sim.Time(gathered*float64(vc.a.Rows)*hw.GPURowCost)
	} else {
		applyDur = sim.Time(float64(vc.a.Elements()) / hw.GPULocalReduceRate)
	}
	finish := func() {
		for gi := 0; gi < g; gi++ {
			wid := m*g + gi
			r.gpus[wid].Use(applyDur, func() { r.varDelivered(vc, iter, wid) })
		}
	}
	if g > 1 {
		bcast := vc.blockBytes(r)
		if vc.a.Method == core.MethodAllGatherv {
			bcast *= int64(r.cfg.Machines)
		}
		r.fab.Local(m, bcast, finish)
	} else {
		finish()
	}
}

// ---- parameter-server path ----

// psMachineGrad implements local aggregation: a machine's workers merge
// their gradients over the local bus, then one push per partition leaves
// the machine carrying the union of its workers' rows.
func (r *runner) psMachineGrad(vc *varComm, iter int, w *worker) {
	st := vc.state(r, iter)
	m := w.machine
	st.machineLeft[m]--
	if st.machineLeft[m] > 0 {
		return
	}
	g := r.cfg.GPUsPerMachine
	stage := int64(vc.a.Alpha * float64(vc.a.Bytes()) * float64(g))
	ua := models.UnionAlpha(vc.a.Alpha, g)
	if g > 1 && stage > 0 {
		r.fab.Local(m, stage, func() { r.psPush(vc, iter, m, ua) })
	} else {
		r.psPush(vc, iter, m, ua)
	}
}

// psPush sends one source's gradient slice to every partition's server.
func (r *runner) psPush(vc *varComm, iter, srcMachine int, alpha float64) {
	p := vc.a.Partitions
	for part := 0; part < p; part++ {
		part := part
		bytes := int64(alpha * float64(vc.a.Bytes()) / float64(p))
		if bytes < 1 {
			bytes = 1
		}
		r.fab.Transfer(srcMachine, vc.a.Servers[part], bytes, cluster.ProtoRPC, func() {
			r.psPushArrived(vc, iter, part, alpha)
		})
	}
}

// psPushArrived counts pushes into a partition; the last one triggers
// aggregation + update on the owning server's CPU streams.
func (r *runner) psPushArrived(vc *varComm, iter, part int, srcAlpha float64) {
	st := vc.state(r, iter)
	st.partsLeft[part]--
	if st.partsLeft[part] > 0 {
		return
	}
	hw := r.cfg.HW
	p := float64(vc.a.Partitions)
	nSources := r.workers
	if r.cfg.LocalAggregation {
		nSources = r.cfg.Machines
	}
	incomingElems := float64(nSources) * srcAlpha * float64(vc.a.Elements()) / p
	uniq := models.UnionAlpha(vc.a.Alpha, r.workers)
	work := sim.Time(incomingElems/hw.CPUAggRate) +
		sim.Time(uniq*float64(vc.a.Elements())/p/hw.UpdateRate) +
		sim.Time(float64(nSources+r.workers)*hw.RPCOverhead) +
		sim.Time(hw.PartitionOverhead)
	if vc.a.Sparse {
		work += sim.Time(uniq * float64(vc.a.Rows) / p * hw.RowUpdateCost)
	}
	server := vc.a.Servers[part]
	r.pickCPU(server).Use(work, func() { r.psUpdated(vc, iter, part) })
}

// psUpdated sends the partition's fresh values to every worker (pulls for
// the next iteration).
func (r *runner) psUpdated(vc *varComm, iter, part int) {
	server := vc.a.Servers[part]
	bytes := int64(vc.a.Alpha * float64(vc.a.Bytes()) / float64(vc.a.Partitions))
	if bytes < 1 {
		bytes = 1
	}
	for w := 0; w < r.workers; w++ {
		w := w
		r.fab.Transfer(server, r.ws[w].machine, bytes, cluster.ProtoRPC, func() {
			r.psPullArrived(vc, iter, w)
		})
	}
}

// psPullArrived counts partition arrivals at a worker; the last one pays
// the stitch cost (θ₂·P of Eq. 1) and unblocks the worker.
func (r *runner) psPullArrived(vc *varComm, iter, wid int) {
	st := vc.state(r, iter)
	st.pullsLeft[wid]--
	if st.pullsLeft[wid] > 0 {
		return
	}
	if p := vc.a.Partitions; p > 1 {
		stitch := sim.Time(float64(p) * r.cfg.HW.StitchCost)
		r.gpus[wid].Use(stitch, func() { r.varDelivered(vc, iter, wid) })
	} else {
		r.varDelivered(vc, iter, wid)
	}
}
