package engine

import (
	"math"
	"testing"

	"parallax/internal/cluster"
	"parallax/internal/core"
	"parallax/internal/models"
)

// runArch simulates spec on machines×gpus with the given architecture.
func runArch(t *testing.T, spec *models.Spec, arch core.Arch, machines, gpus, parts int) Result {
	t.Helper()
	res, err := RunArch(spec, arch, machines, gpus, parts, cluster.DefaultHardware())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestComputeBoundSingleMachine(t *testing.T) {
	// One machine, one GPU, AR: no network, no servers; step time must be
	// close to pure compute (update costs are the only addition).
	spec := models.ResNet50()
	res := runArch(t, spec, core.ArchAR, 1, 1, 1)
	compute := spec.FwdTime + spec.BwdTime
	if res.StepTime < compute {
		t.Fatalf("step %v below compute floor %v", res.StepTime, compute)
	}
	if res.StepTime > compute*1.15 {
		t.Fatalf("step %v too far above compute %v for a 1-GPU run", res.StepTime, compute)
	}
	if res.MessagesPerIter != 0 {
		// Local-bus staging is not a network message; a single machine
		// still uses Transfer for nothing.
		t.Fatalf("1-machine run sent %v network messages", res.MessagesPerIter)
	}
}

func TestDenseModelsPreferAR(t *testing.T) {
	// Table 1's left half: AR beats PS for ResNet-50 and Inception-v3.
	for _, spec := range []*models.Spec{models.ResNet50(), models.InceptionV3()} {
		ar := runArch(t, spec, core.ArchAR, 8, 6, 1)
		ps := runArch(t, spec, core.ArchNaivePS, 8, 6, 1)
		if !(ar.Throughput > ps.Throughput) {
			t.Errorf("%s: AR %v should beat PS %v", spec.Name, ar.Throughput, ps.Throughput)
		}
		// The gap is moderate (paper: 7.6k vs 5.8k ≈ 1.3x), not an order
		// of magnitude.
		if ar.Throughput > ps.Throughput*3 {
			t.Errorf("%s: AR/PS gap %v unrealistically large", spec.Name, ar.Throughput/ps.Throughput)
		}
	}
}

func TestSparseModelsPreferPS(t *testing.T) {
	// Table 1's right half: PS beats AR for LM and NMT.
	for _, tc := range []struct {
		spec  *models.Spec
		parts int
	}{{models.LM(), 128}, {models.NMT(), 64}} {
		ps := runArch(t, tc.spec, core.ArchNaivePS, 8, 6, tc.parts)
		ar := runArch(t, tc.spec, core.ArchAR, 8, 6, tc.parts)
		if !(ps.Throughput > ar.Throughput*1.5) {
			t.Errorf("%s: PS %v should clearly beat AR %v", tc.spec.Name, ps.Throughput, ar.Throughput)
		}
	}
}

func TestHybridBeatsBothPureArchitectures(t *testing.T) {
	// Table 4's headline: HYB >= OptPS >= NaivePS and HYB > AR on sparse
	// models.
	for _, tc := range []struct {
		spec  *models.Spec
		parts int
	}{{models.LM(), 128}, {models.NMT(), 64}} {
		ar := runArch(t, tc.spec, core.ArchAR, 8, 6, tc.parts)
		naive := runArch(t, tc.spec, core.ArchNaivePS, 8, 6, tc.parts)
		opt := runArch(t, tc.spec, core.ArchOptPS, 8, 6, tc.parts)
		hyb := runArch(t, tc.spec, core.ArchHybrid, 8, 6, tc.parts)
		if !(hyb.Throughput >= opt.Throughput && opt.Throughput >= naive.Throughput) {
			t.Errorf("%s: want HYB(%v) >= OptPS(%v) >= NaivePS(%v)",
				tc.spec.Name, hyb.Throughput, opt.Throughput, naive.Throughput)
		}
		if !(hyb.Throughput > ar.Throughput) {
			t.Errorf("%s: hybrid %v must beat AR %v", tc.spec.Name, hyb.Throughput, ar.Throughput)
		}
	}
}

func TestHybridMatchesAROnDenseModels(t *testing.T) {
	// Fig 8(a,b): Parallax == Horovod on dense models (hybrid degenerates
	// to pure AR when no sparse variables exist).
	spec := models.ResNet50()
	ar := runArch(t, spec, core.ArchAR, 8, 6, 1)
	hyb := runArch(t, spec, core.ArchHybrid, 8, 6, 1)
	if math.Abs(ar.Throughput-hyb.Throughput)/ar.Throughput > 0.01 {
		t.Fatalf("hybrid %v != AR %v on a dense model", hyb.Throughput, ar.Throughput)
	}
}

func TestPartitionSweepHasInteriorOptimum(t *testing.T) {
	// Table 2's shape: throughput rises from P=8, peaks at an interior P,
	// and falls by P=256 ("blindly increasing the number of partitions is
	// not optimal").
	spec := models.LM()
	var tp []float64
	ps := []int{8, 32, 128, 256}
	for _, p := range ps {
		tp = append(tp, runArch(t, spec, core.ArchNaivePS, 8, 6, p).Throughput)
	}
	if !(tp[1] > tp[0]) {
		t.Fatalf("throughput should rise from P=8 (%v) to P=32 (%v)", tp[0], tp[1])
	}
	best := 0
	for i, v := range tp {
		if v > tp[best] {
			best = i
		}
	}
	if ps[best] == 8 || ps[best] == 256 {
		t.Fatalf("optimum at boundary P=%d; want interior (throughputs %v)", ps[best], tp)
	}
}

func TestARScalesNearLinearlyOnDense(t *testing.T) {
	// Fig 9: ResNet-50 at 48 GPUs scales to ~40x of 1 GPU.
	spec := models.ResNet50()
	one := runArch(t, spec, core.ArchAR, 1, 1, 1)
	full := runArch(t, spec, core.ArchAR, 8, 6, 1)
	norm := full.Throughput / one.Throughput
	if norm < 35 || norm > 48 {
		t.Fatalf("ResNet-50 normalized throughput %v, want ~40 of 48", norm)
	}
}

func TestARSparseScalingCollapses(t *testing.T) {
	// Fig 9 / Fig 8(c): Horovod's LM throughput barely improves (even
	// degrades) with more machines.
	spec := models.LM()
	two := runArch(t, spec, core.ArchAR, 2, 6, 1)
	eight := runArch(t, spec, core.ArchAR, 8, 6, 1)
	if eight.Throughput > two.Throughput*2 {
		t.Fatalf("AR sparse scaling too good: 2 machines %v, 8 machines %v",
			two.Throughput, eight.Throughput)
	}
}

func TestNetworkBytesMatchTable3AllReduce(t *testing.T) {
	// One dense variable, 1 GPU/machine: Table 3 says each machine moves
	// 4w(N-1)/N bytes per iteration under AR.
	const n = 4
	spec := &models.Spec{
		Name: "one-dense", Unit: "units", BatchPerGPU: 1, UnitsPerExample: 1,
		FwdTime: 0.01, BwdTime: 0.02, Layers: 1,
		Vars: []models.VarSpec{{Name: "w", Rows: 1000, Width: 1000, Alpha: 1, Layer: 0}},
	}
	res := runArch(t, spec, core.ArchAR, n, 1, 1)
	w := float64(spec.Vars[0].Bytes())
	want := 4 * w * float64(n-1) / float64(n)
	got := res.AvgMachineBytes()
	if math.Abs(got-want)/want > 0.02 {
		t.Fatalf("AR bytes/machine = %v, Table 3 predicts %v", got, want)
	}
}

func TestNetworkBytesMatchTable3PS(t *testing.T) {
	// One sparse variable, 1 GPU/machine, PS: total traffic across all
	// machines is 2αw(N-1) worker-side... summed per-machine transfer
	// equals 4αw(N-1) (each byte counted at sender and receiver). The
	// machine hosting the variable carries the 2αw(N-1) hot-spot share.
	const n, alpha = 4, 0.25
	spec := &models.Spec{
		Name: "one-sparse", Unit: "units", BatchPerGPU: 1, UnitsPerExample: 1,
		FwdTime: 0.01, BwdTime: 0.02, Layers: 1,
		Vars: []models.VarSpec{{Name: "emb", Rows: 10000, Width: 100, Sparse: true, Alpha: alpha, Layer: 0}},
	}
	res := runArch(t, spec, core.ArchNaivePS, n, 1, 1)
	w := float64(spec.Vars[0].Bytes())
	wantTotal := 4 * alpha * w * float64(n-1)
	var gotTotal float64
	for _, b := range res.BytesPerMachine {
		gotTotal += b
	}
	if math.Abs(gotTotal-wantTotal)/wantTotal > 0.02 {
		t.Fatalf("PS total bytes = %v, Table 3 predicts %v", gotTotal, wantTotal)
	}
	// Hot spot (§3.1): the server machine handles 2αw(N-1) bytes, (N-1)×
	// the 2αw of a non-server machine.
	wantMax := 2 * alpha * w * float64(n-1)
	if math.Abs(res.MaxMachineBytes()-wantMax)/wantMax > 0.05 {
		t.Fatalf("server hot-spot bytes = %v, Table 3 predicts %v", res.MaxMachineBytes(), wantMax)
	}
}

func TestDeterministicResults(t *testing.T) {
	a := runArch(t, models.LM(), core.ArchHybrid, 4, 2, 16)
	b := runArch(t, models.LM(), core.ArchHybrid, 4, 2, 16)
	if a.StepTime != b.StepTime || a.Throughput != b.Throughput {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}

func TestConfigValidation(t *testing.T) {
	spec := models.LM()
	plan, err := core.BuildPlan(PlanVars(spec), core.Options{Arch: core.ArchAR, NumMachines: 2})
	if err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Model: nil, Plan: plan, Machines: 2, GPUsPerMachine: 1, Iterations: 5, Warmup: 2},
		{Model: spec, Plan: plan, Machines: 0, GPUsPerMachine: 1, Iterations: 5, Warmup: 2},
		{Model: spec, Plan: plan, Machines: 3, GPUsPerMachine: 1, Iterations: 5, Warmup: 2}, // plan/machines mismatch
		{Model: spec, Plan: plan, Machines: 2, GPUsPerMachine: 1, Iterations: 2, Warmup: 2},
	}
	for i, cfg := range bad {
		cfg.HW = cluster.DefaultHardware()
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d: expected error", i)
		}
	}
}

func TestMoreGPUsMoreThroughput(t *testing.T) {
	spec := models.InceptionV3()
	t1 := runArch(t, spec, core.ArchHybrid, 2, 2, 1).Throughput
	t2 := runArch(t, spec, core.ArchHybrid, 4, 6, 1).Throughput
	if !(t2 > t1*2) {
		t.Fatalf("scaling broken: 4 GPUs %v, 24 GPUs %v", t1, t2)
	}
}
