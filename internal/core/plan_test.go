package core

import (
	"testing"

	"parallax/internal/cluster"
)

func testVars() []VarInfo {
	return []VarInfo{
		{Name: "embedding", Rows: 1000, Width: 64, Sparse: true, Alpha: 0.02, PartitionTarget: true},
		{Name: "w1", Rows: 64, Width: 64, Alpha: 1},
		{Name: "w2", Rows: 64, Width: 32, Alpha: 1},
		{Name: "softmax", Rows: 1000, Width: 64, Sparse: true, Alpha: 0.05, PartitionTarget: true},
	}
}

func TestHybridSplitsByGradType(t *testing.T) {
	plan, err := BuildPlan(testVars(), Options{
		Arch: ArchHybrid, NumMachines: 4, SparsePartitions: 8, SmartPlacement: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range plan.Assignments {
		if a.Sparse && a.Method != MethodPS {
			t.Errorf("%s: sparse var got %v", a.Name, a.Method)
		}
		if !a.Sparse && a.Method != MethodAllReduce {
			t.Errorf("%s: dense var got %v", a.Name, a.Method)
		}
	}
	c := plan.CountByMethod()
	if c[MethodPS] != 2 || c[MethodAllReduce] != 2 {
		t.Fatalf("method counts = %v", c)
	}
}

func TestARUsesAllGathervForSparse(t *testing.T) {
	plan, err := BuildPlan(testVars(), Options{Arch: ArchAR, NumMachines: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range plan.Assignments {
		want := MethodAllReduce
		if a.Sparse {
			want = MethodAllGatherv
		}
		if a.Method != want {
			t.Errorf("%s: got %v, want %v", a.Name, a.Method, want)
		}
		if len(a.Servers) != 0 {
			t.Errorf("%s: collective method should have no servers", a.Name)
		}
	}
}

func TestPSArchsPutEverythingOnServers(t *testing.T) {
	for _, arch := range []Arch{ArchNaivePS, ArchOptPS} {
		plan, err := BuildPlan(testVars(), Options{Arch: arch, NumMachines: 4, SparsePartitions: 4})
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range plan.Assignments {
			if a.Method != MethodPS {
				t.Errorf("%v %s: got %v", arch, a.Name, a.Method)
			}
		}
	}
}

func TestPartitioningOnlyTargets(t *testing.T) {
	plan, _ := BuildPlan(testVars(), Options{
		Arch: ArchOptPS, NumMachines: 4, SparsePartitions: 8, SmartPlacement: true,
	})
	for _, a := range plan.Assignments {
		if a.PartitionTarget && a.Partitions != 8 {
			t.Errorf("%s: partitions = %d, want 8", a.Name, a.Partitions)
		}
		if !a.PartitionTarget && a.Partitions != 1 {
			t.Errorf("%s: partitions = %d, want 1", a.Name, a.Partitions)
		}
		if len(a.Servers) != a.Partitions {
			t.Errorf("%s: %d servers for %d partitions", a.Name, len(a.Servers), a.Partitions)
		}
	}
}

func TestSmartPlacementBalances(t *testing.T) {
	plan, _ := BuildPlan(testVars(), Options{
		Arch: ArchOptPS, NumMachines: 4, SparsePartitions: 16, SmartPlacement: true,
	})
	if imb := plan.MaxServerImbalance(); imb > 0.3 {
		t.Fatalf("smart placement imbalance %v too high (loads %v)", imb, plan.ServerBytes)
	}
}

func TestAlphaThresholdPromotesToDense(t *testing.T) {
	vars := []VarInfo{
		{Name: "hot_emb", Rows: 100, Width: 10, Sparse: true, Alpha: 0.9, PartitionTarget: true},
		{Name: "cold_emb", Rows: 100, Width: 10, Sparse: true, Alpha: 0.1, PartitionTarget: true},
		{Name: "w", Rows: 10, Width: 10, Alpha: 1},
	}
	plan, err := BuildPlan(vars, Options{
		Arch: ArchHybrid, NumMachines: 2, AlphaDenseThreshold: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Assignment{}
	for _, a := range plan.Assignments {
		byName[a.Name] = a
	}
	if a := byName["hot_emb"]; a.Method != MethodAllReduce || !a.TreatAsDense {
		t.Fatalf("hot_emb: %v treatAsDense=%v", a.Method, a.TreatAsDense)
	}
	if a := byName["cold_emb"]; a.Method != MethodPS || a.TreatAsDense {
		t.Fatalf("cold_emb: %v", a.Method)
	}
}

func TestDefaultAlphaThreshold(t *testing.T) {
	hw := cluster.DefaultHardware()
	th := DefaultAlphaThreshold(hw)
	if th <= 0 || th >= 1 {
		t.Fatalf("threshold = %v, want in (0,1)", th)
	}
	// With the default calibration RPC/NCCL ≈ 0.42.
	if th < 0.3 || th > 0.7 {
		t.Fatalf("threshold = %v, expected ~0.6 with the calibrated RPC/NCCL ratio", th)
	}
}

func TestBuildPlanErrors(t *testing.T) {
	if _, err := BuildPlan(nil, Options{Arch: ArchAR, NumMachines: 1}); err == nil {
		t.Fatal("want error for no vars")
	}
	if _, err := BuildPlan(testVars(), Options{Arch: ArchAR, NumMachines: 0}); err == nil {
		t.Fatal("want error for no machines")
	}
	bad := []VarInfo{{Name: "x", Rows: 1, Width: 1, Alpha: 0}}
	if _, err := BuildPlan(bad, Options{Arch: ArchAR, NumMachines: 1}); err == nil {
		t.Fatal("want error for alpha=0")
	}
}

func TestStringers(t *testing.T) {
	if ArchHybrid.String() != "Hybrid" || MethodPS.String() != "ps" || MethodAllGatherv.String() != "allgatherv" {
		t.Fatal("bad strings")
	}
}
