// Package core implements the paper's primary contribution: the
// sparsity-aware assignment of variables to synchronization architectures.
//
// Given the model's variables (with their gradient types and per-iteration
// element ratios α), a cluster size, and an architecture choice, BuildPlan
// decides per variable:
//
//   - synchronization method: AllReduce (dense path) or Parameter Server
//     (sparse path) — the hybrid architecture of §3.1;
//   - for PS variables, how many partitions to split the variable into and
//     which server machine owns each partition — §3.2's partitioning plus
//     §4.3's "evenly distributes variables across servers";
//   - the α-threshold special case of §3.1: a sparse variable whose α is
//     close enough to 1 is handled as dense, because AllReduce's efficient
//     bandwidth use beats the PS path despite moving 1/α× more bytes.
//
// The plan drives both the graph transformation (internal/transform) for
// real execution and the discrete-event engine (internal/engine) for
// paper-scale simulation.
package core

import (
	"fmt"

	"parallax/internal/cluster"
)

// Arch selects the overall training architecture. The four values match
// the systems compared in Table 4.
type Arch int

const (
	// ArchAR synchronizes everything with collectives (Horovod): AllReduce
	// for dense gradients, AllGatherv for sparse ones.
	ArchAR Arch = iota
	// ArchNaivePS synchronizes everything through parameter servers with
	// per-worker pull/push and no local aggregation (TF-PS).
	ArchNaivePS
	// ArchOptPS is Parallax's optimized PS: local aggregation and smart
	// operation placement, still PS for all variables.
	ArchOptPS
	// ArchHybrid is Parallax's default: AllReduce for dense variables,
	// optimized PS for sparse variables.
	ArchHybrid
)

func (a Arch) String() string {
	switch a {
	case ArchAR:
		return "AR"
	case ArchNaivePS:
		return "NaivePS"
	case ArchOptPS:
		return "OptPS"
	case ArchHybrid:
		return "Hybrid"
	default:
		return fmt.Sprintf("Arch(%d)", int(a))
	}
}

// Method is the per-variable synchronization mechanism.
type Method int

const (
	// MethodAllReduce replicates the variable on every worker and
	// aggregates dense gradients with ring AllReduce.
	MethodAllReduce Method = iota
	// MethodAllGatherv replicates the variable and aggregates sparse
	// gradients by concatenation (pure-AR architecture only).
	MethodAllGatherv
	// MethodPS stores the variable on parameter servers; workers pull
	// values and push gradients.
	MethodPS
)

func (m Method) String() string {
	switch m {
	case MethodAllReduce:
		return "allreduce"
	case MethodAllGatherv:
		return "allgatherv"
	case MethodPS:
		return "ps"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// VarInfo is the planner's view of one variable.
type VarInfo struct {
	Name  string
	Rows  int64
	Width int64
	// Sparse is the gradient type from graph.GradKind (or models.VarSpec).
	Sparse bool
	// Alpha is the per-worker element ratio (1 for dense).
	Alpha float64
	// PartitionTarget marks membership in a partitioner scope.
	PartitionTarget bool
}

// Elements returns Rows*Width.
func (v VarInfo) Elements() int64 { return v.Rows * v.Width }

// Bytes returns 4*Elements.
func (v VarInfo) Bytes() int64 { return v.Elements() * 4 }

// Assignment is the planner's decision for one variable.
type Assignment struct {
	VarInfo
	Method Method
	// Partitions is the number of pieces (1 = unpartitioned). Only PS
	// variables are partitioned.
	Partitions int
	// Servers holds the owning machine of each partition,
	// len == Partitions. Empty for collective methods.
	Servers []int
	// TreatAsDense is set when a sparse variable crossed the α threshold
	// and is synchronized as if dense (§3.1).
	TreatAsDense bool
}

// Plan is the full assignment for a model.
type Plan struct {
	Arch        Arch
	Assignments []Assignment
	// ServerBytes is the PS storage load per machine, for balance checks.
	ServerBytes []int64
}

// Options configures BuildPlan.
type Options struct {
	Arch        Arch
	NumMachines int
	// SparsePartitions is the partition count applied to partition-target
	// variables (all scopes use the same count, as each partitioner
	// partitions its variables uniformly; the optimal value comes from
	// internal/partition). 0 means 1 (unpartitioned).
	SparsePartitions int
	// AlphaDenseThreshold: sparse variables with α >= threshold are
	// treated as dense under ArchHybrid. <= 0 disables the rule.
	AlphaDenseThreshold float64
	// SmartPlacement balances PS variables across servers by bytes
	// (greedy least-loaded); otherwise variables are placed round-robin
	// by declaration order. Parallax uses smart placement (§4.3).
	SmartPlacement bool
}

// DefaultAlphaThreshold derives the α above which AllReduce beats PS for a
// sparse variable from the hardware's protocol efficiencies: AR moves
// ~4w(N−1)/N bytes per machine at NCCL speed, PS moves ~4αw(N−1)/N at RPC
// speed (Table 3, m-variables column), so AR wins when
// α > bw(RPC)/bw(NCCL).
func DefaultAlphaThreshold(hw cluster.Hardware) float64 {
	nccl := hw.Bandwidth(cluster.ProtoNCCL)
	if nccl == 0 {
		return 1
	}
	return hw.Bandwidth(cluster.ProtoRPC) / nccl
}

// BuildPlan assigns every variable a synchronization method and placement.
func BuildPlan(vars []VarInfo, opt Options) (*Plan, error) {
	if opt.NumMachines <= 0 {
		return nil, fmt.Errorf("core: %d machines", opt.NumMachines)
	}
	if len(vars) == 0 {
		return nil, fmt.Errorf("core: no variables")
	}
	p := opt.SparsePartitions
	if p <= 0 {
		p = 1
	}
	plan := &Plan{Arch: opt.Arch, ServerBytes: make([]int64, opt.NumMachines)}
	rr := 0 // round-robin cursor for naive placement

	for _, v := range vars {
		if v.Alpha <= 0 || v.Alpha > 1 {
			return nil, fmt.Errorf("core: variable %q alpha %v out of (0,1]", v.Name, v.Alpha)
		}
		a := Assignment{VarInfo: v, Partitions: 1}
		switch opt.Arch {
		case ArchAR:
			if v.Sparse {
				a.Method = MethodAllGatherv
			} else {
				a.Method = MethodAllReduce
			}
		case ArchNaivePS, ArchOptPS:
			a.Method = MethodPS
		case ArchHybrid:
			if v.Sparse && opt.AlphaDenseThreshold > 0 && v.Alpha >= opt.AlphaDenseThreshold {
				a.Method = MethodAllReduce
				a.TreatAsDense = true
			} else if v.Sparse {
				a.Method = MethodPS
			} else {
				a.Method = MethodAllReduce
			}
		default:
			return nil, fmt.Errorf("core: unknown arch %v", opt.Arch)
		}

		if a.Method == MethodPS {
			if v.PartitionTarget && v.Sparse {
				a.Partitions = p
			}
			a.Servers = make([]int, a.Partitions)
			perPart := v.Bytes() / int64(a.Partitions)
			if opt.SmartPlacement {
				// Greedy: place each partition on the currently
				// least-loaded server; equal loads break by index, which
				// spreads partitions of one variable across machines.
				for i := range a.Servers {
					best := 0
					for m := 1; m < opt.NumMachines; m++ {
						if plan.ServerBytes[m] < plan.ServerBytes[best] {
							best = m
						}
					}
					a.Servers[i] = best
					plan.ServerBytes[best] += perPart
				}
			} else {
				for i := range a.Servers {
					a.Servers[i] = rr % opt.NumMachines
					plan.ServerBytes[rr%opt.NumMachines] += perPart
					rr++
				}
			}
		}
		plan.Assignments = append(plan.Assignments, a)
	}
	return plan, nil
}

// PSBytes returns total bytes stored on parameter servers.
func (p *Plan) PSBytes() int64 {
	var n int64
	for _, b := range p.ServerBytes {
		n += b
	}
	return n
}

// CountByMethod returns how many variables use each method.
func (p *Plan) CountByMethod() map[Method]int {
	out := make(map[Method]int)
	for _, a := range p.Assignments {
		out[a.Method]++
	}
	return out
}

// MaxServerImbalance returns (max-min)/mean of ServerBytes, 0 when no PS
// variables exist.
func (p *Plan) MaxServerImbalance() float64 {
	total := p.PSBytes()
	if total == 0 {
		return 0
	}
	minB, maxB := p.ServerBytes[0], p.ServerBytes[0]
	for _, b := range p.ServerBytes {
		if b < minB {
			minB = b
		}
		if b > maxB {
			maxB = b
		}
	}
	mean := float64(total) / float64(len(p.ServerBytes))
	return float64(maxB-minB) / mean
}
