package psrt

// Per-tenant namespaces: the mechanism that lets many concurrent
// training jobs share one resident parameter-server fleet (the
// multi-tenant service of DESIGN.md §13) without their variables ever
// colliding. A Namespace is a registration handle on a Server: every
// variable added through it is stored under a qualified name
// ("tenant/job::var"), is updated by the namespace's OWN optimizer
// instance and aggregation config (two tenants may train with different
// learning rates, worker counts, or modes against the same server), and
// is released wholesale by DropNamespace when the job ends. The data
// plane is unchanged — workers push and pull through the ordinary
// Server surface using the qualified names, so the hot path pays one
// string it computed at build time and nothing else.
//
// A Fleet is the resident form of the paper's one-server-per-machine
// layout (§4.2): one long-lived Server per fleet machine, created once
// when the service starts and joined by each admitted job for the
// machines its plan spans. Fleet servers are namespace-only — they have
// no default config, so every variable carries its tenant's.

import (
	"fmt"
	"slices"
	"strings"
	"sync"

	"parallax/internal/tensor"
)

// nsSep separates a namespace from a variable name in qualified names.
// Variable names may contain '/' (scope paths), so the separator is a
// token that graph construction never produces.
const nsSep = "::"

// QualifiedName returns the name a variable is stored under on a server
// when registered through namespace ns ("" returns name unchanged).
func QualifiedName(ns, name string) string {
	if ns == "" {
		return name
	}
	return ns + nsSep + name
}

// Namespace is one tenant's registration handle on a Server: AddVar and
// ReshardVar register qualified variables governed by the namespace's
// config, Abort fails the namespace's blocked waits without touching
// other tenants, and Drop releases everything at once.
type Namespace struct {
	s    *Server
	name string
	cfg  Config

	abortMu  sync.Mutex
	abortErr error
}

// Namespace registers a tenant namespace on the server. cfg governs
// every variable added through the handle — sources, aggregation,
// update mode, and the optimizer instance (which the namespace owns
// exclusively, so tenants never share slot state). The name must be
// non-empty, must not contain the "::" separator, and must not already
// be registered.
func (s *Server) Namespace(name string, cfg Config) (*Namespace, error) {
	if name == "" {
		return nil, fmt.Errorf("psrt: empty namespace")
	}
	if strings.Contains(name, nsSep) {
		return nil, fmt.Errorf("psrt: namespace %q contains the reserved separator %q", name, nsSep)
	}
	if err := validateConfig(cfg); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.namespaces == nil {
		s.namespaces = map[string]*Namespace{}
	}
	if _, dup := s.namespaces[name]; dup {
		return nil, fmt.Errorf("psrt: namespace %q already registered", name)
	}
	n := &Namespace{s: s, name: name, cfg: cfg}
	s.namespaces[name] = n
	return n, nil
}

// Name returns the namespace's name.
func (n *Namespace) Name() string { return n.name }

// Qualify returns the server-side name of one of this namespace's
// variables — what the data plane must use in pull/push/snapshot calls.
func (n *Namespace) Qualify(name string) string { return QualifiedName(n.name, name) }

// AddVar registers a variable under this namespace; the arguments match
// Server.AddVar, with the name qualified and the namespace's config
// (sources, optimizer, aggregation, mode) attached.
func (n *Namespace) AddVar(name string, init *tensor.Dense, ranges []tensor.RowRange, owned []int, sparse bool) error {
	s := n.s
	s.mu.Lock()
	defer s.mu.Unlock()
	q := n.Qualify(name)
	if _, dup := s.vars[q]; dup {
		return fmt.Errorf("psrt: variable %q already registered", q)
	}
	_, err := s.addVarLocked(&n.cfg, n, q, init, ranges, owned, sparse)
	return err
}

// ReshardVar replaces one of this namespace's variables' partitioning
// in place — Server.ReshardVar scoped to the namespace, so live
// resharding and checkpoint restore work identically for resident
// tenants.
func (n *Namespace) ReshardVar(name string, init *tensor.Dense, ranges []tensor.RowRange, owned []int, sparse bool, slots []*tensor.Dense, version int64) error {
	return n.s.reshardVar(&n.cfg, n, n.Qualify(name), init, ranges, owned, sparse, slots, version)
}

// SlotNames returns the namespace optimizer's slot names in SlotState
// order (the per-tenant analogue of Server.SlotNames).
func (n *Namespace) SlotNames() []string { return slotNamesOf(n.cfg.Optimizer) }

// Abort fails every present and future blocking wait on THIS
// namespace's variables with err, leaving other tenants' waits — and
// the namespace's state, still readable for post-mortem snapshots —
// untouched. Idempotent; the first error wins.
func (n *Namespace) Abort(err error) {
	if err == nil {
		return
	}
	n.abortMu.Lock()
	if n.abortErr == nil {
		n.abortErr = err
	}
	n.abortMu.Unlock()
	s := n.s
	s.mu.Lock()
	vars := make([]*servedVar, 0, len(s.vars))
	for _, v := range s.vars {
		if v.ns == n {
			vars = append(vars, v) //parallax:orderinvariant -- wakeup set: the order of cond Broadcasts is unobservable
		}
	}
	s.mu.Unlock()
	broadcastParts(vars)
}

// aborted returns the namespace's Abort error, if any.
func (n *Namespace) aborted() error {
	n.abortMu.Lock()
	defer n.abortMu.Unlock()
	return n.abortErr
}

// Drop releases the namespace: every variable registered through it is
// removed from the server (with its optimizer slot state, which dies
// with the namespace's optimizer instance) and the name becomes
// available again. The caller must have quiesced the namespace's
// traffic first — dropping under in-flight pushes is a protocol
// violation, exactly like resharding under traffic.
func (n *Namespace) Drop() { n.s.DropNamespace(n.name) }

// DropNamespace removes namespace name and every variable registered
// through it. Unknown names are a no-op, so teardown paths can call it
// unconditionally.
func (s *Server) DropNamespace(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.namespaces[name]
	if !ok {
		return
	}
	delete(s.namespaces, name)
	for q, v := range s.vars {
		if v.ns == n {
			delete(s.vars, q)
		}
	}
}

// Namespaces returns the names of the currently registered namespaces
// in sorted order — the service's observability hook, so the output
// must not leak map-iteration jitter into logs or API responses.
func (s *Server) Namespaces() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.namespaces))
	for name := range s.namespaces {
		out = append(out, name)
	}
	slices.Sort(out)
	return out
}

// broadcastParts wakes every condition wait parked on the given vars.
func broadcastParts(vars []*servedVar) {
	for _, v := range vars {
		for _, p := range v.parts {
			if p == nil {
				continue
			}
			p.mu.Lock()
			p.cond.Broadcast()
			p.mu.Unlock()
		}
	}
}

// Fleet is a set of resident, namespace-only parameter servers — one
// per fleet machine — that outlives any single job. A multi-tenant
// service creates the fleet once; each admitted job joins the servers
// of the machines its plan spans under its own namespace and leaves
// them on completion. Fleet servers reject un-namespaced AddVar, so a
// tenant cannot accidentally claim global names.
type Fleet struct {
	servers []*Server
}

// NewFleet returns a resident fleet of one namespace-only server per
// machine.
func NewFleet(machines int) (*Fleet, error) {
	if machines < 1 {
		return nil, fmt.Errorf("psrt: fleet needs at least one machine, got %d", machines)
	}
	f := &Fleet{servers: make([]*Server, machines)}
	for m := range f.servers {
		f.servers[m] = NewResident()
	}
	return f, nil
}

// Machines returns the fleet's machine count.
func (f *Fleet) Machines() int { return len(f.servers) }

// Server returns machine m's resident server.
func (f *Fleet) Server(m int) *Server { return f.servers[m] }
