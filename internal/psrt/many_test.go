package psrt

import (
	"sync"
	"testing"

	"parallax/internal/optim"
	"parallax/internal/tensor"
)

// The batched APIs must be behaviorally identical to their per-partition
// counterparts: same accumulator semantics, same versioned-pull blocking.
func TestPushPullManyMatchSinglePartitionCalls(t *testing.T) {
	build := func() *Server {
		srv, err := NewServer(Config{
			Sources:   2,
			Optimizer: optim.NewSGD(0.5),
			DenseAgg:  optim.AggMean,
			SparseAgg: optim.AggMean,
		})
		if err != nil {
			t.Fatal(err)
		}
		init := tensor.NewRNG(4).RandN(1, 8, 3)
		ranges := tensor.PartitionRows(8, 4)
		if err := srv.AddVar("v", init, ranges, []int{0, 1, 2, 3}, false); err != nil {
			t.Fatal(err)
		}
		return srv
	}
	grad := func(w int) *tensor.Dense { return tensor.NewRNG(int64(10+w)).RandN(1, 8, 3) }
	ranges := tensor.PartitionRows(8, 4)

	single := build()
	for w := 0; w < 2; w++ {
		g := grad(w)
		for pi, rr := range ranges {
			if err := single.PushDense("v", pi, g.SliceRows(rr.Start, rr.End)); err != nil {
				t.Fatal(err)
			}
		}
	}
	many := build()
	for w := 0; w < 2; w++ {
		g := grad(w)
		reqs := make([]DensePush, len(ranges))
		for pi, rr := range ranges {
			reqs[pi] = DensePush{Name: "v", Part: pi, Grad: g.SliceRows(rr.Start, rr.End)}
		}
		if err := many.PushDenseMany(reqs); err != nil {
			t.Fatal(err)
		}
	}

	wantFull := tensor.NewDense(8, 3)
	gotFull := tensor.NewDense(8, 3)
	pulls := make([]PullReq, len(ranges))
	for pi, rr := range ranges {
		if err := single.PullInto("v", pi, 1, wantFull.SliceRows(rr.Start, rr.End)); err != nil {
			t.Fatal(err)
		}
		pulls[pi] = PullReq{Name: "v", Part: pi, Dst: gotFull.SliceRows(rr.Start, rr.End)}
	}
	if err := many.PullManyInto(1, pulls); err != nil {
		t.Fatal(err)
	}
	if gotFull.MaxAbsDiff(wantFull) != 0 {
		t.Fatalf("batched push/pull state differs from per-partition calls by %v", gotFull.MaxAbsDiff(wantFull))
	}
}

func TestPushSparseManyAggregates(t *testing.T) {
	srv, err := NewServer(Config{
		Sources:   2,
		Optimizer: optim.NewSGD(1),
		SparseAgg: optim.AggSum,
	})
	if err != nil {
		t.Fatal(err)
	}
	ranges := tensor.PartitionRows(6, 2)
	init := tensor.NewDense(6, 2)
	if err := srv.AddVar("e", init, ranges, []int{0, 1}, true); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 2; w++ {
		// Row 1 lands in partition 0, row 4 in partition 1 (local row 1).
		vals := tensor.NewDense(1, 2)
		vals.Fill(1)
		reqs := []SparsePush{
			{Name: "e", Part: 0, Grad: tensor.NewSparse([]int{1}, vals.Clone(), 3)},
			{Name: "e", Part: 1, Grad: tensor.NewSparse([]int{1}, vals.Clone(), 3)},
		}
		if err := srv.PushSparseMany(reqs); err != nil {
			t.Fatal(err)
		}
	}
	got, err := srv.Pull("e", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// SGD lr=1, sum aggregation over 2 workers pushing 1s: value = -2.
	if got.At(1, 0) != -2 {
		t.Fatalf("partition 0 row 1 = %v, want -2", got.At(1, 0))
	}
}

// PullManyInto must honor the versioned blocking of PullInto: a reader
// waiting for version 1 is released by the update that completes when the
// last source pushes.
func TestPullManyIntoBlocksUntilVersion(t *testing.T) {
	srv, err := NewServer(Config{Sources: 1, Optimizer: optim.NewSGD(0.1), DenseAgg: optim.AggSum})
	if err != nil {
		t.Fatal(err)
	}
	ranges := tensor.PartitionRows(4, 2)
	if err := srv.AddVar("v", tensor.NewDense(4, 1), ranges, []int{0, 1}, false); err != nil {
		t.Fatal(err)
	}
	released := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		dst := tensor.NewDense(4, 1)
		if err := srv.PullManyInto(1, []PullReq{
			{Name: "v", Part: 0, Dst: dst.SliceRows(0, 2)},
			{Name: "v", Part: 1, Dst: dst.SliceRows(2, 4)},
		}); err != nil {
			t.Error(err)
		}
		close(released)
	}()
	select {
	case <-released:
		t.Fatal("PullManyInto returned before any update")
	default:
	}
	g := tensor.NewDense(4, 1)
	g.Fill(1)
	if err := srv.PushDenseMany([]DensePush{
		{Name: "v", Part: 0, Grad: g.SliceRows(0, 2)},
		{Name: "v", Part: 1, Grad: g.SliceRows(2, 4)},
	}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

func TestPushManyUnknownVariableFails(t *testing.T) {
	srv, _ := NewServer(Config{Sources: 1, Optimizer: optim.NewSGD(0.1)})
	if err := srv.PushDenseMany([]DensePush{{Name: "nope", Part: 0, Grad: tensor.NewDense(1, 1)}}); err == nil {
		t.Fatal("push to unknown variable must fail")
	}
	if err := srv.PullManyInto(0, []PullReq{{Name: "nope", Part: 0, Dst: tensor.NewDense(1, 1)}}); err == nil {
		t.Fatal("pull of unknown variable must fail")
	}
}
