package psrt

// Unit tests for the resharding surface: SnapshotPart's value/slot
// export and ReshardVar's install semantics (version seeding, optimizer
// slot migration, old-key cleanup).

import (
	"math"
	"testing"

	"parallax/internal/optim"
	"parallax/internal/tensor"
)

// momentumServer builds a sync server with one source and a momentum
// optimizer, hosting "emb" split into parts partitions.
func momentumServer(t *testing.T, rows, width, parts int) (*Server, *tensor.Dense, []tensor.RowRange) {
	t.Helper()
	srv, err := NewServer(Config{
		Sources:   1,
		Optimizer: optim.NewMomentum(0.5, 0.9),
		DenseAgg:  optim.AggSum,
		SparseAgg: optim.AggSum,
	})
	if err != nil {
		t.Fatal(err)
	}
	init := tensor.NewRNG(7).RandN(0.2, rows, width)
	ranges := tensor.PartitionRows(rows, parts)
	owned := make([]int, parts)
	for i := range owned {
		owned[i] = i
	}
	if err := srv.AddVar("emb", init, ranges, owned, true); err != nil {
		t.Fatal(err)
	}
	return srv, init, ranges
}

// pushAll pushes one full sparse gradient (every row touched) split by
// the current ranges, applying one update per partition.
func pushAll(t *testing.T, srv *Server, ranges []tensor.RowRange, rows, width int, seed int64) {
	t.Helper()
	grad := &tensor.Sparse{Rows: make([]int, rows), Values: tensor.NewRNG(seed).RandN(1, rows, width), Dim0: rows}
	for i := range grad.Rows {
		grad.Rows[i] = i
	}
	for pi, part := range tensor.SplitSparse(grad, ranges) {
		if err := srv.PushSparse("emb", pi, part); err != nil {
			t.Fatal(err)
		}
	}
}

// fullValue assembles the variable from the server's partitions.
func fullValue(t *testing.T, srv *Server, ranges []tensor.RowRange, rows, width int, minVersion int64) *tensor.Dense {
	t.Helper()
	out := tensor.NewDense(rows, width)
	for pi, rr := range ranges {
		if rr.Len() == 0 {
			continue
		}
		if err := srv.PullInto("emb", pi, minVersion, out.SliceRows(rr.Start, rr.End)); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// TestSnapshotAndReshardRoundTrip pushes two updates (building momentum
// velocity), reshards 3→5 through the snapshot/reshard pair, and checks
// that values, velocity rows, and versions all moved losslessly: a third
// update after the reshard must produce the same variable a never-
// resharded server produces.
func TestSnapshotAndReshardRoundTrip(t *testing.T) {
	const rows, width = 20, 4

	// Reference: 5 partitions from the start, three updates.
	refSrv, _, refRanges := momentumServer(t, rows, width, 5)
	for u := 0; u < 3; u++ {
		pushAll(t, refSrv, refRanges, rows, width, int64(u))
	}
	want := fullValue(t, refSrv, refRanges, rows, width, 3)

	// Resharded: 3 partitions for two updates, then migrate to 5.
	srv, _, ranges := momentumServer(t, rows, width, 3)
	for u := 0; u < 2; u++ {
		pushAll(t, srv, ranges, rows, width, int64(u))
	}
	value := tensor.NewDense(rows, width)
	velocity := tensor.NewDense(rows, width)
	for pi, rr := range ranges {
		val, slots, err := srv.SnapshotPart("emb", pi, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(slots) != 1 {
			t.Fatalf("momentum snapshot has %d slots", len(slots))
		}
		copy(value.Data()[rr.Start*width:rr.End*width], val.Data())
		copy(velocity.Data()[rr.Start*width:rr.End*width], slots[0].Data())
	}
	newRanges := tensor.PartitionRows(rows, 5)
	owned := []int{0, 1, 2, 3, 4}
	if err := srv.ReshardVar("emb", value, newRanges, owned, true, []*tensor.Dense{velocity}, 2); err != nil {
		t.Fatal(err)
	}
	for pi := range newRanges {
		v, err := srv.Version("emb", pi)
		if err != nil {
			t.Fatal(err)
		}
		if v != 2 {
			t.Fatalf("partition %d version %d after reshard, want 2", pi, v)
		}
	}
	pushAll(t, srv, newRanges, rows, width, 2)
	got := fullValue(t, srv, newRanges, rows, width, 3)

	for i, x := range want.Data() {
		if math.Float32bits(x) != math.Float32bits(got.Data()[i]) {
			t.Fatalf("value[%d] = %x after reshard, want %x", i,
				math.Float32bits(got.Data()[i]), math.Float32bits(x))
		}
	}
}

// TestReshardValidation covers the error paths: slot-count mismatch,
// and dropping a variable entirely (owned empty) including its slot
// state.
func TestReshardValidation(t *testing.T) {
	const rows, width = 12, 2
	srv, init, ranges := momentumServer(t, rows, width, 3)
	pushAll(t, srv, ranges, rows, width, 1)

	newRanges := tensor.PartitionRows(rows, 2)
	if err := srv.ReshardVar("emb", init, newRanges, []int{0, 1}, true, nil, 1); err == nil {
		t.Fatal("reshard without slot tensors accepted for a stateful optimizer")
	}
	short := tensor.NewDense(rows-1, width)
	if err := srv.ReshardVar("emb", init, newRanges, []int{0, 1}, true, []*tensor.Dense{short}, 1); err == nil {
		t.Fatal("reshard with undersized slot tensor accepted")
	}

	// Drop the variable: the old partitions (and their velocity) go away.
	if err := srv.ReshardVar("emb", init, newRanges, nil, true, nil, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Version("emb", 0); err == nil {
		t.Fatal("dropped variable still served")
	}
	mom := srv.def.Optimizer.(*optim.Momentum)
	for _, key := range []string{"emb/part0", "emb/part1", "emb/part2"} {
		if mom.SlotValue("velocity", key) != nil {
			t.Fatalf("velocity for %s survived the drop", key)
		}
	}
}

// TestSnapshotStatelessOptimizer: SGD has no slot state, so snapshots
// carry the value only and reshard accepts nil slots.
func TestSnapshotStatelessOptimizer(t *testing.T) {
	srv, err := NewServer(Config{Sources: 1, Optimizer: optim.NewSGD(0.1)})
	if err != nil {
		t.Fatal(err)
	}
	init := tensor.NewDense(6, 2)
	ranges := tensor.PartitionRows(6, 2)
	if err := srv.AddVar("v", init, ranges, []int{0, 1}, false); err != nil {
		t.Fatal(err)
	}
	_, slots, err := srv.SnapshotPart("v", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(slots) != 0 {
		t.Fatalf("SGD snapshot has %d slots", len(slots))
	}
	if err := srv.ReshardVar("v", init, tensor.PartitionRows(6, 3), []int{0, 1, 2}, false, nil, 0); err != nil {
		t.Fatal(err)
	}
}
