// Package psrt is the parameter-server runtime: real variable storage
// sharded into row-range partitions across server processes, gradient
// accumulators with synchronous-training semantics, versioned pulls, and
// the chief-worker read-back path used for global-norm clipping (§5).
//
// One Server instance corresponds to one server process (the paper
// launches one per machine, colocated with that machine's workers, §4.3).
// Workers interact through Push/Pull; in synchronous mode an update
// applies when gradients from all expected sources have arrived — the
// accumulator mechanism of §5 ("we first place accumulators on servers
// ... each accumulator handles gradients of a single sparse variable") —
// and pulls for the next iteration block until the update lands.
//
// The partitioning is not fixed for the server's lifetime: SnapshotPart
// exports a partition's value and optimizer slot state, and ReshardVar
// replaces a variable's partitioning in place (live resharding,
// DESIGN.md §9), seeding versions so the synchronous protocol continues
// without a discontinuity.
//
// # Buffer ownership
//
// The runtime is allocation-disciplined so a persistent training loop does
// not churn the heap:
//
//   - PushDense borrows grad only for the duration of the call and never
//     mutates it. Callers may pass zero-copy views (tensor.SliceRows) of
//     live gradient buffers and reuse them immediately after the call
//     returns. Each partition keeps a preallocated accumulator that the
//     borrowed gradient is summed into.
//   - PushSparse takes ownership of grad: the server may retain and mutate
//     it until the partition's update has been applied. Callers must hand
//     over freshly built tensors (SplitSparse output qualifies) and not
//     touch them afterwards.
//   - Pull allocates a copy; PullInto copies into a caller-owned buffer
//     (typically a SliceRows view of replica storage) and is the
//     allocation-free path the persistent runtime uses.
package psrt

import (
	"fmt"
	"sync"

	"parallax/internal/optim"
	"parallax/internal/tensor"
)

// Mode selects update semantics.
type Mode int

const (
	// Sync applies an update once all sources' gradients arrive; pulls for
	// iteration i+1 wait for update i (synchronous training, §2.1).
	Sync Mode = iota
	// Async applies each source's gradient immediately on push; pulls
	// never wait (asynchronous training; staleness is the caller's
	// concern).
	Async
)

// Config configures a Server.
type Config struct {
	// Sources is the number of gradient pushes expected per partition per
	// step in Sync mode (workers, or machines under local aggregation).
	Sources int
	// Optimizer applies aggregated gradients to served variables. Each
	// server owns the update ops for its variables (smart placement).
	Optimizer optim.Optimizer
	DenseAgg  optim.AggMethod
	SparseAgg optim.AggMethod
	Mode      Mode
	// DeferUpdates holds aggregated gradients until ApplyUpdate is called
	// (the chief-worker clipping path). Only meaningful in Sync mode.
	DeferUpdates bool
	// MeanDivisor is the denominator used for AggMean finalization. Under
	// local aggregation each push already sums a whole machine's workers,
	// so the mean must divide by the total worker count, not by the number
	// of pushes. Zero means "use Sources".
	MeanDivisor int
}

// meanDiv returns the effective mean denominator.
func (c Config) meanDiv() int {
	if c.MeanDivisor > 0 {
		return c.MeanDivisor
	}
	return c.Sources
}

// Server hosts variable partitions.
type Server struct {
	// def is the server-wide default config that un-namespaced variables
	// are governed by; nil for resident (namespace-only) servers, which
	// require every variable to be registered through a Namespace.
	def  *Config
	mu   sync.Mutex
	vars map[string]*servedVar

	// namespaces tracks the registered tenant namespaces (namespace.go).
	namespaces map[string]*Namespace

	// abortErr, once set, wakes and fails every blocked version/
	// aggregation wait: the synchronous protocol's waits are satisfied by
	// peer pushes, so when the transport underneath dies mid-step the
	// missing pushes never arrive and only Abort can unpark the waiters.
	abortMu  sync.Mutex
	abortErr error
}

type servedVar struct {
	name   string
	sparse bool
	ranges []tensor.RowRange
	width  int
	dim0   int
	parts  []*part
	// keys[pi] is the optimizer state key for partition pi, precomputed so
	// the per-push apply path never formats strings.
	keys []string
	// cfg governs this variable's update semantics — the server default
	// for legacy variables, the tenant's own config (with its own
	// optimizer instance) for namespaced ones.
	cfg *Config
	// ns is the owning namespace, nil for un-namespaced variables.
	ns *Namespace
}

type part struct {
	mu   sync.Mutex
	cond *sync.Cond

	value *tensor.Dense // [range.Len(), width]

	// accDense is the partition's persistent dense gradient buffer: the
	// sync-mode accumulator, the async-mode scratch copy, and (between
	// aggregation and apply) the aggregated gradient. It is allocated once
	// in AddVar for dense variables and reused every step — the blocking
	// pull protocol guarantees step i+1's first push cannot arrive before
	// step i's update applied.
	accDense  *tensor.Dense
	accSparse []*tensor.Sparse // retained pushed gradients (ownership transferred)
	pushes    int

	aggregated bool // Sync+DeferUpdates: gradients aggregated, not applied
	aggDense   *tensor.Dense
	aggSparse  *tensor.Sparse
	aggSeq     int64   // completed aggregations
	aggNorm2   float64 // squared norm of the latest aggregated gradient

	version int64 // applied updates
}

// validateConfig checks the invariants shared by server defaults and
// namespace configs.
func validateConfig(cfg Config) error {
	if cfg.Mode == Sync && cfg.Sources <= 0 {
		return fmt.Errorf("psrt: sync server needs Sources > 0")
	}
	if cfg.Optimizer == nil {
		return fmt.Errorf("psrt: nil optimizer")
	}
	if cfg.Mode == Async && cfg.DeferUpdates {
		return fmt.Errorf("psrt: DeferUpdates requires Sync mode")
	}
	return nil
}

// NewServer creates an empty server with a server-wide default config.
func NewServer(cfg Config) (*Server, error) {
	if err := validateConfig(cfg); err != nil {
		return nil, err
	}
	return &Server{def: &cfg, vars: map[string]*servedVar{}}, nil
}

// NewResident creates a namespace-only server: it has no default config,
// so every variable must be registered through a Namespace handle and
// carries that tenant's config. This is the building block of a
// multi-tenant resident fleet (see Fleet).
func NewResident() *Server {
	return &Server{vars: map[string]*servedVar{}}
}

// AddVar registers a variable (or a subset of its partitions) on this
// server under the server default config. init is the full initial
// value; ranges lists the row ranges of ALL partitions (so indices agree
// across servers); owned lists which partition indices this server
// hosts. Resident servers reject AddVar — register through a Namespace.
func (s *Server) AddVar(name string, init *tensor.Dense, ranges []tensor.RowRange, owned []int, sparse bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.def == nil {
		return fmt.Errorf("psrt: resident server requires a namespace to register %q", name)
	}
	if _, dup := s.vars[name]; dup {
		return fmt.Errorf("psrt: variable %q already registered", name)
	}
	_, err := s.addVarLocked(s.def, nil, name, init, ranges, owned, sparse)
	return err
}

// addVarLocked builds and registers a servedVar governed by cfg (owned
// by namespace ns, nil for legacy variables); the caller holds s.mu.
func (s *Server) addVarLocked(cfg *Config, ns *Namespace, name string, init *tensor.Dense, ranges []tensor.RowRange, owned []int, sparse bool) (*servedVar, error) {
	if init.Rank() < 1 {
		return nil, fmt.Errorf("psrt: variable %q has rank 0", name)
	}
	width := init.RowWidth()
	v := &servedVar{
		name:   name,
		sparse: sparse,
		ranges: ranges,
		width:  width,
		dim0:   init.Dim(0),
		parts:  make([]*part, len(ranges)),
		keys:   make([]string, len(ranges)),
		cfg:    cfg,
		ns:     ns,
	}
	for _, pi := range owned {
		if pi < 0 || pi >= len(ranges) {
			return nil, fmt.Errorf("psrt: partition %d out of range for %q", pi, name)
		}
		rr := ranges[pi]
		val := tensor.NewDense(rr.Len(), width)
		copy(val.Data(), init.Data()[rr.Start*width:rr.End*width])
		p := &part{value: val}
		if !sparse {
			p.accDense = tensor.NewDense(rr.Len(), width)
		}
		p.cond = sync.NewCond(&p.mu)
		v.parts[pi] = p
		v.keys[pi] = fmt.Sprintf("%s/part%d", name, pi)
	}
	s.vars[name] = v
	return v, nil
}

// Abort fails every present and future blocking wait (Pull, PullInto,
// SnapshotPart, WaitAggregatedNormSquared) with err. The trainer calls
// it when the transport fabric dies so workers parked on a version wait
// — whose outstanding pushes will never arrive from the dead peer —
// fail fast with the fabric's attributed error instead of hanging on a
// condition variable forever. Idempotent; the first error wins.
// Non-blocking operations (pushes, resharding) are unaffected: the
// aborted server's state remains readable for post-mortem snapshots.
func (s *Server) Abort(err error) {
	if err == nil {
		return
	}
	s.abortMu.Lock()
	if s.abortErr == nil {
		s.abortErr = err
	}
	s.abortMu.Unlock()
	s.mu.Lock()
	vars := make([]*servedVar, 0, len(s.vars))
	for _, v := range s.vars {
		vars = append(vars, v) //parallax:orderinvariant -- wakeup set: the order of cond Broadcasts is unobservable
	}
	s.mu.Unlock()
	for _, v := range vars {
		for _, p := range v.parts {
			if p == nil {
				continue
			}
			p.mu.Lock()
			p.cond.Broadcast()
			p.mu.Unlock()
		}
	}
}

// aborted returns the Abort error, if any.
func (s *Server) aborted() error {
	s.abortMu.Lock()
	defer s.abortMu.Unlock()
	return s.abortErr
}

// abortedVar returns the error that should fail v's blocked waits: a
// server-wide Abort, or an Abort scoped to v's namespace.
func (s *Server) abortedVar(v *servedVar) error {
	if err := s.aborted(); err != nil {
		return err
	}
	if v.ns != nil {
		return v.ns.aborted()
	}
	return nil
}

func (s *Server) lookupVar(name string) (*servedVar, error) {
	s.mu.Lock()
	v, ok := s.vars[name]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("psrt: unknown variable %q", name)
	}
	return v, nil
}

func (s *Server) lookup(name string, pi int) (*servedVar, *part, error) {
	v, err := s.lookupVar(name)
	if err != nil {
		return nil, nil, err
	}
	if pi < 0 || pi >= len(v.parts) || v.parts[pi] == nil {
		return nil, nil, fmt.Errorf("psrt: variable %q partition %d not hosted here", name, pi)
	}
	return v, v.parts[pi], nil
}

func (v *servedVar) partAt(pi int) (*part, error) {
	if pi < 0 || pi >= len(v.parts) || v.parts[pi] == nil {
		return nil, fmt.Errorf("psrt: variable %q partition %d not hosted here", v.name, pi)
	}
	return v.parts[pi], nil
}

// PushDense delivers one source's dense gradient for a partition. The
// gradient must already be in partition-local coordinates (the full
// tensor for unpartitioned variables). grad is borrowed for the duration
// of the call only and is never mutated: zero-copy views of live buffers
// are fine, and the caller may reuse the buffer as soon as PushDense
// returns.
func (s *Server) PushDense(name string, pi int, grad *tensor.Dense) error {
	v, err := s.lookupVar(name)
	if err != nil {
		return err
	}
	return s.pushDensePart(v, pi, grad)
}

func (s *Server) pushDensePart(v *servedVar, pi int, grad *tensor.Dense) error {
	p, err := v.partAt(pi)
	if err != nil {
		return err
	}
	if v.sparse {
		return fmt.Errorf("psrt: dense push to sparse variable %q", v.name)
	}
	if grad.NumElements() != v.ranges[pi].Len()*v.width {
		return fmt.Errorf("psrt: dense push to %s/%d has %d elements, partition wants %d",
			v.name, pi, grad.NumElements(), v.ranges[pi].Len()*v.width)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if v.cfg.Mode == Async {
		copy(p.accDense.Data(), grad.Data())
		optim.FinalizeDense(p.accDense, v.cfg.meanDiv(), v.cfg.DenseAgg)
		v.cfg.Optimizer.ApplyDense(v.keys[pi], p.value, p.accDense)
		p.version++
		p.cond.Broadcast()
		return nil
	}
	if p.pushes == 0 {
		copy(p.accDense.Data(), grad.Data())
	} else {
		// Accumulate flat: the gradient may arrive with a different rank
		// than the [rows, width] accumulator (a rank-1 bias pushed as a
		// whole), and both layouts are row-major.
		tensor.AddTo(grad.Data(), p.accDense.Data())
	}
	p.pushes++
	if p.pushes == v.cfg.Sources {
		s.completeLocked(pi, v, p)
	}
	return nil
}

// PushSparse delivers one source's sparse gradient for a partition, rows in
// partition-local coordinates. Ownership of grad transfers to the server:
// it may be retained and mutated until the partition's update applies, so
// the caller must not touch it after the call.
func (s *Server) PushSparse(name string, pi int, grad *tensor.Sparse) error {
	v, err := s.lookupVar(name)
	if err != nil {
		return err
	}
	return s.pushSparsePart(v, pi, grad)
}

func (s *Server) pushSparsePart(v *servedVar, pi int, grad *tensor.Sparse) error {
	p, err := v.partAt(pi)
	if err != nil {
		return err
	}
	if !v.sparse {
		return fmt.Errorf("psrt: sparse push to dense variable %q", v.name)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if v.cfg.Mode == Async {
		optim.FinalizeSparse(grad, v.cfg.meanDiv(), v.cfg.SparseAgg)
		v.cfg.Optimizer.ApplySparse(v.keys[pi], p.value, grad)
		p.version++
		p.cond.Broadcast()
		return nil
	}
	p.accSparse = append(p.accSparse, grad)
	p.pushes++
	if p.pushes == v.cfg.Sources {
		s.completeLocked(pi, v, p)
	}
	return nil
}

// completeLocked aggregates the accumulator; with DeferUpdates it parks the
// aggregated gradient for the chief, otherwise applies immediately.
func (s *Server) completeLocked(pi int, v *servedVar, p *part) {
	if v.sparse {
		agg := tensor.SumSparse(p.accSparse)
		optim.FinalizeSparse(agg, v.cfg.meanDiv(), v.cfg.SparseAgg)
		p.aggSparse = agg
		clear(p.accSparse)
		p.accSparse = p.accSparse[:0]
	} else {
		optim.FinalizeDense(p.accDense, v.cfg.meanDiv(), v.cfg.DenseAgg)
		p.aggDense = p.accDense
	}
	p.pushes = 0
	p.aggregated = true
	p.aggSeq++
	if v.cfg.DeferUpdates {
		// The aggregated norm is only read through
		// WaitAggregatedNormSquared, which the chief-clipping path uses;
		// skip the O(elements) computation on the plain sync path.
		if v.sparse {
			p.aggNorm2 = p.aggSparse.L2NormSquared()
		} else {
			p.aggNorm2 = p.aggDense.L2NormSquared()
		}
	}
	if !v.cfg.DeferUpdates {
		s.applyLocked(pi, v, p, 1)
		return
	}
	p.cond.Broadcast() // wake WaitAggregated
}

func (s *Server) applyLocked(pi int, v *servedVar, p *part, scale float32) {
	if v.sparse {
		g := p.aggSparse
		if scale != 1 {
			g.Scale(scale)
		}
		v.cfg.Optimizer.ApplySparse(v.keys[pi], p.value, g)
	} else {
		g := p.aggDense
		if scale != 1 {
			g.Scale(scale)
		}
		v.cfg.Optimizer.ApplyDense(v.keys[pi], p.value, g)
	}
	p.aggSparse = nil
	p.aggDense = nil // the persistent accDense buffer itself is kept
	p.aggregated = false
	p.version++
	p.cond.Broadcast()
}

// WaitAggregatedNormSquared blocks until the partition's seq-th
// aggregation has completed (DeferUpdates mode; pass step+1 for the
// current step) and returns the squared L2 norm of that aggregated
// gradient — the chief-worker read-back of §5 ("to compute a global norm
// of gradients for clipping"). The norm is retained after the update
// applies, so non-chief workers can read it at any point of the step.
func (s *Server) WaitAggregatedNormSquared(name string, pi int, seq int64) (float64, error) {
	v, p, err := s.lookup(name, pi)
	if err != nil {
		return 0, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.aggSeq < seq {
		if aerr := s.abortedVar(v); aerr != nil {
			return 0, aerr
		}
		p.cond.Wait()
	}
	return p.aggNorm2, nil
}

// ApplyUpdate applies the parked aggregated gradient scaled by scale; only
// the chief worker calls this (DeferUpdates mode).
func (s *Server) ApplyUpdate(name string, pi int, scale float32) error {
	v, p, err := s.lookup(name, pi)
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.aggregated {
		return fmt.Errorf("psrt: ApplyUpdate before aggregation of %s/%d", name, pi)
	}
	s.applyLocked(pi, v, p, scale)
	return nil
}

// Pull returns a copy of the partition's value once its version is at least
// minVersion (pass the iteration number for synchronous training; 0 never
// waits).
func (s *Server) Pull(name string, pi int, minVersion int64) (*tensor.Dense, error) {
	v, p, err := s.lookup(name, pi)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.version < minVersion {
		if aerr := s.abortedVar(v); aerr != nil {
			return nil, aerr
		}
		p.cond.Wait()
	}
	return p.value.Clone(), nil
}

// PullInto copies the partition's value into dst — typically a SliceRows
// view of the caller's replica storage — once its version is at least
// minVersion. It is the allocation-free pull used by the persistent
// runtime. dst must have the partition's element count.
func (s *Server) PullInto(name string, pi int, minVersion int64, dst *tensor.Dense) error {
	v, err := s.lookupVar(name)
	if err != nil {
		return err
	}
	return s.pullIntoPart(v, pi, minVersion, dst)
}

func (s *Server) pullIntoPart(v *servedVar, pi int, minVersion int64, dst *tensor.Dense) error {
	p, err := v.partAt(pi)
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.version < minVersion {
		if aerr := s.abortedVar(v); aerr != nil {
			return aerr
		}
		p.cond.Wait()
	}
	if dst.NumElements() != p.value.NumElements() {
		return fmt.Errorf("psrt: PullInto %s/%d: dst has %d elements, partition has %d",
			v.name, pi, dst.NumElements(), p.value.NumElements())
	}
	copy(dst.Data(), p.value.Data())
	return nil
}

// PullReq is one partition read of a batched PullManyInto: copy partition
// Part of variable Name into the caller-owned view Dst.
type PullReq struct {
	Name string
	Part int
	Dst  *tensor.Dense
}

// DensePush is one partition write of a batched PushDenseMany. Grad
// follows the PushDense borrowing contract.
type DensePush struct {
	Name string
	Part int
	Grad *tensor.Dense
}

// SparsePush is one partition write of a batched PushSparseMany. Grad
// follows the PushSparse ownership-transfer contract.
type SparsePush struct {
	Name string
	Part int
	Grad *tensor.Sparse
}

// PullManyInto performs a batch of versioned partition reads with one
// call — the per-server pull a worker issues at the top of a step instead
// of one call per partition. Requests for the same variable should be
// adjacent: the variable lookup is amortized across consecutive requests.
// Each read blocks until that partition's version reaches minVersion.
func (s *Server) PullManyInto(minVersion int64, reqs []PullReq) error {
	var v *servedVar
	for i := range reqs {
		r := &reqs[i]
		if v == nil || v.name != r.Name {
			var err error
			if v, err = s.lookupVar(r.Name); err != nil {
				return err
			}
		}
		if err := s.pullIntoPart(v, r.Part, minVersion, r.Dst); err != nil {
			return err
		}
	}
	return nil
}

// PushDenseMany delivers a batch of dense partition gradients with one
// call (one call per server per route instead of one per partition).
// Requests for the same variable should be adjacent.
func (s *Server) PushDenseMany(reqs []DensePush) error {
	var v *servedVar
	for i := range reqs {
		r := &reqs[i]
		if v == nil || v.name != r.Name {
			var err error
			if v, err = s.lookupVar(r.Name); err != nil {
				return err
			}
		}
		if err := s.pushDensePart(v, r.Part, r.Grad); err != nil {
			return err
		}
	}
	return nil
}

// PushSparseMany is PushDenseMany for sparse partitions; each gradient's
// ownership transfers to the server.
func (s *Server) PushSparseMany(reqs []SparsePush) error {
	var v *servedVar
	for i := range reqs {
		r := &reqs[i]
		if v == nil || v.name != r.Name {
			var err error
			if v, err = s.lookupVar(r.Name); err != nil {
				return err
			}
		}
		if err := s.pushSparsePart(v, r.Part, r.Grad); err != nil {
			return err
		}
	}
	return nil
}

// Version returns the partition's applied-update count.
func (s *Server) Version(name string, pi int) (int64, error) {
	_, p, err := s.lookup(name, pi)
	if err != nil {
		return 0, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.version, nil
}

// SlotNames returns the server default optimizer's slot names in
// SlotState order (empty for stateless optimizers and resident servers)
// — the labels SnapshotPart's slot tensors carry in a checkpoint.
// Namespaced tenants read their own optimizer's via Namespace.SlotNames.
func (s *Server) SlotNames() []string {
	if s.def == nil {
		return nil
	}
	return slotNamesOf(s.def.Optimizer)
}

// slotNamesOf returns opt's slot names if it keeps slot state.
func slotNamesOf(opt optim.Optimizer) []string {
	if ss, ok := opt.(optim.SlotState); ok {
		return ss.Slots()
	}
	return nil
}

// SnapshotPart returns copies of one partition's value and of its
// optimizer slot state, once the partition's version reaches minVersion —
// the gather phase of live resharding (DESIGN.md §9). The slot tensors
// follow the optimizer's SlotState.Slots order; a slot the partition has
// never updated is returned as zeros of the partition shape, which is
// exactly the state a lazily created slot would have. Optimizers without
// slot state yield an empty slots list.
//
// The version wait makes the snapshot self-synchronizing: a remote
// agent's gather request blocks (on this server's serving loop) until
// every source's final pushes have been applied, so no separate drain
// protocol is needed before resharding.
func (s *Server) SnapshotPart(name string, pi int, minVersion int64) (*tensor.Dense, []*tensor.Dense, error) {
	v, err := s.lookupVar(name)
	if err != nil {
		return nil, nil, err
	}
	p, err := v.partAt(pi)
	if err != nil {
		return nil, nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.version < minVersion {
		if aerr := s.abortedVar(v); aerr != nil {
			return nil, nil, aerr
		}
		p.cond.Wait()
	}
	val := p.value.Clone()
	var slots []*tensor.Dense
	if ss, ok := v.cfg.Optimizer.(optim.SlotState); ok {
		for _, slot := range ss.Slots() {
			if sv := ss.SlotValue(slot, v.keys[pi]); sv != nil {
				slots = append(slots, sv.Clone())
			} else {
				slots = append(slots, tensor.NewDense(v.ranges[pi].Len(), v.width))
			}
		}
	}
	return val, slots, nil
}

// ReshardVar replaces a variable's partitioning in place — the install
// phase of live resharding. The old servedVar (if any) is dropped and its
// partitions' optimizer slot state deleted; if owned is non-empty a new
// servedVar is installed with values sliced from the assembled full value
// init, optimizer slots sliced from the assembled full slot tensors
// (SlotState.Slots order; pass nil for stateless optimizers), and every
// owned partition's version and aggregation sequence seeded to version,
// so the synchronous pull/clip protocol continues counting steps without
// a discontinuity.
//
// ReshardVar must only run while the variable is quiescent: no pushes,
// pulls, or snapshots in flight (the trainer guarantees this with its
// cross-agent resharding barriers).
func (s *Server) ReshardVar(name string, init *tensor.Dense, ranges []tensor.RowRange, owned []int, sparse bool, slots []*tensor.Dense, version int64) error {
	if s.def == nil {
		return fmt.Errorf("psrt: resident server requires a namespace to reshard %q", name)
	}
	return s.reshardVar(s.def, nil, name, init, ranges, owned, sparse, slots, version)
}

// reshardVar is ReshardVar with the governing config and owning
// namespace made explicit (Namespace.ReshardVar passes its own).
func (s *Server) reshardVar(cfg *Config, ns *Namespace, name string, init *tensor.Dense, ranges []tensor.RowRange, owned []int, sparse bool, slots []*tensor.Dense, version int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.vars[name]; ok {
		// Slot state lives in the OLD variable's optimizer (== cfg's for
		// same-tenant reshards, the only kind the trainer performs).
		if oss, ok := old.cfg.Optimizer.(optim.SlotState); ok {
			for pi, p := range old.parts {
				if p != nil {
					oss.DeleteKey(old.keys[pi])
				}
			}
		}
		delete(s.vars, name)
	}
	if len(owned) == 0 {
		return nil
	}
	ss, stateful := cfg.Optimizer.(optim.SlotState)
	if stateful && len(slots) != len(ss.Slots()) {
		return fmt.Errorf("psrt: reshard of %q has %d slot tensors, optimizer keeps %d slots",
			name, len(slots), len(ss.Slots()))
	}
	v, err := s.addVarLocked(cfg, ns, name, init, ranges, owned, sparse)
	if err != nil {
		return err
	}
	for _, pi := range owned {
		p := v.parts[pi]
		p.version = version
		p.aggSeq = version
		if !stateful || ranges[pi].Len() == 0 {
			continue
		}
		rr := ranges[pi]
		for k, slot := range ss.Slots() {
			if slots[k].NumElements() != v.dim0*v.width {
				return fmt.Errorf("psrt: reshard slot %q of %q has %d elements, variable has %d",
					slot, name, slots[k].NumElements(), v.dim0*v.width)
			}
			sv := tensor.NewDense(rr.Len(), v.width)
			copy(sv.Data(), slots[k].Data()[rr.Start*v.width:rr.End*v.width])
			ss.SetSlot(slot, v.keys[pi], sv)
		}
	}
	return nil
}
