package psrt

import (
	"errors"
	"fmt"

	"parallax/internal/errs"
	"parallax/internal/tensor"
	"parallax/internal/transport"
)

// Endpoint is the parameter-server surface the trainer drives: the
// batched pull/push calls of the hot loop, the chief-clipping read-back
// path, and the resharding snapshot read. *Server implements it with
// direct calls (the single-process path and an agent's own colocated
// server); *Client implements it over a transport conduit for servers
// hosted by other agent processes.
type Endpoint interface {
	PullManyInto(minVersion int64, reqs []PullReq) error
	PushDenseMany(reqs []DensePush) error
	PushSparseMany(reqs []SparsePush) error
	WaitAggregatedNormSquared(name string, pi int, seq int64) (float64, error)
	ApplyUpdate(name string, pi int, scale float32) error
	PullInto(name string, pi int, minVersion int64, dst *tensor.Dense) error
	SnapshotPart(name string, pi int, minVersion int64) (*tensor.Dense, []*tensor.Dense, error)
}

var (
	_ Endpoint = (*Server)(nil)
	_ Endpoint = (*Client)(nil)
)

// Tag is the rendezvous tag of all parameter-server wire traffic. One
// tag suffices: each (worker, server) endpoint pair carries exactly one
// request/reply stream, serialized by the trainer's step phases (pulls,
// then pushes, then clipping reads).
const Tag = "ps"

// Client is one worker endpoint's stub for a remote server. Every method
// is one request/reply round trip: the client encodes the batched
// request, the serving loop on the remote agent replays it against the
// real Server and answers. Because the client blocks for the reply
// before returning, borrowed dense views inside push requests follow the
// same borrowing contract as direct PushDenseMany calls.
//
// A Client must not be used concurrently with itself; the trainer's
// phase structure (one puller, one comm goroutine, the worker's clip
// path, strictly ordered within a step) guarantees that.
type Client struct {
	t      transport.Conduit
	server int // server endpoint rank

	// Wire-encoding hints stamped onto push requests (see
	// transport.PSMsg); zero values keep the classic frames.
	denseCodec  transport.Codec
	sparseCodec transport.Codec
	deltaIndex  bool
}

// NewClient returns a stub for the server at endpoint rank server,
// speaking over the worker's conduit t.
func NewClient(t transport.Conduit, server int) *Client {
	return &Client{t: t, server: server}
}

// SetCompression selects the wire encodings for this client's push
// requests: dense and sparse payload codecs plus delta-varint sparse row
// indices. The pushed values must already lie on the codec grids (the
// trainer quantizes in the data plane before pushing), so the compact
// encoding is lossless. Pull replies always travel exact f32.
func (c *Client) SetCompression(dense, sparse transport.Codec, delta bool) {
	c.denseCodec, c.sparseCodec, c.deltaIndex = dense, sparse, delta
}

// errClosed is returned when the fabric shut down mid-call; it wraps
// the shared sentinel so callers can match it with errors.Is.
var errClosed = fmt.Errorf("psrt: transport %w", errs.ErrClosed)

func (c *Client) call(req *transport.PSMsg) (*transport.PSMsg, error) {
	c.t.SendPS(c.server, Tag, req)
	rep := c.t.RecvPS(c.server, Tag)
	if rep == nil {
		return nil, errClosed
	}
	if rep.Err != "" {
		return nil, errors.New(rep.Err)
	}
	return rep, nil
}

// PullManyInto performs the batched versioned read over the wire and
// copies the returned partition values into the request destinations.
func (c *Client) PullManyInto(minVersion int64, reqs []PullReq) error {
	m := &transport.PSMsg{Op: transport.PSPullMany, Version: minVersion}
	for i := range reqs {
		m.Names = append(m.Names, reqs[i].Name)
		m.Parts = append(m.Parts, reqs[i].Part)
	}
	rep, err := c.call(m)
	if err != nil {
		return err
	}
	if len(rep.Dense) != len(reqs) {
		return fmt.Errorf("psrt: pull reply has %d tensors for %d requests", len(rep.Dense), len(reqs))
	}
	for i := range reqs {
		src, dst := rep.Dense[i], reqs[i].Dst
		if src.NumElements() != dst.NumElements() {
			return fmt.Errorf("psrt: pull reply %s/%d has %d elements, want %d",
				reqs[i].Name, reqs[i].Part, src.NumElements(), dst.NumElements())
		}
		copy(dst.Data(), src.Data())
	}
	return nil
}

// PushDenseMany ships a batch of dense partition gradients. The gradient
// views are borrowed only until the call returns (the request is
// serialized before the reply unblocks us).
func (c *Client) PushDenseMany(reqs []DensePush) error {
	m := &transport.PSMsg{Op: transport.PSPushDenseMany, DenseCodec: c.denseCodec}
	for i := range reqs {
		m.Names = append(m.Names, reqs[i].Name)
		m.Parts = append(m.Parts, reqs[i].Part)
		m.Dense = append(m.Dense, reqs[i].Grad)
	}
	_, err := c.call(m)
	return err
}

// PushSparseMany ships a batch of sparse partition gradients; ownership
// of the tensors transfers (to the wire here, to the remote server
// there), matching PushSparse's contract.
func (c *Client) PushSparseMany(reqs []SparsePush) error {
	m := &transport.PSMsg{
		Op:          transport.PSPushSparseMany,
		SparseCodec: c.sparseCodec,
		DeltaIndex:  c.deltaIndex,
	}
	for i := range reqs {
		m.Names = append(m.Names, reqs[i].Name)
		m.Parts = append(m.Parts, reqs[i].Part)
		m.Sparse = append(m.Sparse, reqs[i].Grad)
	}
	_, err := c.call(m)
	return err
}

// WaitAggregatedNormSquared is the chief-clipping read-back over the
// wire; it blocks (on the serving loop's side) until the partition's
// seq-th aggregation completes.
func (c *Client) WaitAggregatedNormSquared(name string, pi int, seq int64) (float64, error) {
	rep, err := c.call(&transport.PSMsg{
		Op: transport.PSNormSquared, Version: seq,
		Names: []string{name}, Parts: []int{pi},
	})
	if err != nil {
		return 0, err
	}
	return rep.Scalar, nil
}

// ApplyUpdate triggers the deferred scaled update (chief worker only).
func (c *Client) ApplyUpdate(name string, pi int, scale float32) error {
	_, err := c.call(&transport.PSMsg{
		Op: transport.PSApplyUpdate, Scale: scale,
		Names: []string{name}, Parts: []int{pi},
	})
	return err
}

// PullInto reads one partition into dst (cold path: VarValue assembly).
func (c *Client) PullInto(name string, pi int, minVersion int64, dst *tensor.Dense) error {
	return c.PullManyInto(minVersion, []PullReq{{Name: name, Part: pi, Dst: dst}})
}

// SnapshotPart reads one partition's value and optimizer slot state over
// the wire (live resharding's gather phase); the remote serving loop
// blocks inside Server.SnapshotPart until the partition's version
// reaches minVersion. The returned tensors arrive flattened to rank 1;
// the caller addresses them by element count.
func (c *Client) SnapshotPart(name string, pi int, minVersion int64) (*tensor.Dense, []*tensor.Dense, error) {
	rep, err := c.call(&transport.PSMsg{
		Op: transport.PSSnapshot, Version: minVersion,
		Names: []string{name}, Parts: []int{pi},
	})
	if err != nil {
		return nil, nil, err
	}
	if len(rep.Dense) < 1 {
		return nil, nil, fmt.Errorf("psrt: snapshot reply for %s/%d carries no value", name, pi)
	}
	return rep.Dense[0], rep.Dense[1:], nil
}

// ServeConduit answers one remote client's parameter-server requests
// against s until the fabric closes: the serving half of the wire
// protocol. The trainer runs one ServeConduit goroutine per (local
// server, remote worker) pair; requests from one client are strictly
// sequential (the client blocks for each reply), while different
// clients' loops run concurrently against the server's per-partition
// locks — the same concurrency profile as direct calls from in-process
// workers.
func ServeConduit(s *Server, t transport.Conduit, client int) {
	for {
		req := t.RecvPS(client, Tag)
		if req == nil {
			return // fabric closed
		}
		t.SendPS(client, Tag, handle(s, req))
	}
}

// handle replays one decoded request against the server and builds the
// reply. Errors travel as strings in the reply rather than tearing the
// connection down, mirroring the error returns of direct calls.
func handle(s *Server, req *transport.PSMsg) *transport.PSMsg {
	rep := &transport.PSMsg{Op: transport.PSReply}
	fail := func(err error) *transport.PSMsg {
		rep.Err = err.Error()
		return rep
	}
	if len(req.Parts) != len(req.Names) {
		return fail(fmt.Errorf("psrt: request has %d parts for %d names", len(req.Parts), len(req.Names)))
	}
	switch req.Op {
	case transport.PSPullMany:
		// Pull copies each partition into a fresh tensor under the
		// partition lock, so the serving loop never holds locks during
		// serialization.
		for i, name := range req.Names {
			val, err := s.Pull(name, req.Parts[i], req.Version)
			if err != nil {
				return fail(err)
			}
			rep.Dense = append(rep.Dense, val)
		}
	case transport.PSPushDenseMany:
		if len(req.Dense) != len(req.Names) {
			return fail(fmt.Errorf("psrt: dense push has %d tensors for %d names", len(req.Dense), len(req.Names)))
		}
		reqs := make([]DensePush, len(req.Names))
		for i := range req.Names {
			reqs[i] = DensePush{Name: req.Names[i], Part: req.Parts[i], Grad: req.Dense[i]}
		}
		if err := s.PushDenseMany(reqs); err != nil {
			return fail(err)
		}
	case transport.PSPushSparseMany:
		if len(req.Sparse) != len(req.Names) {
			return fail(fmt.Errorf("psrt: sparse push has %d tensors for %d names", len(req.Sparse), len(req.Names)))
		}
		reqs := make([]SparsePush, len(req.Names))
		for i := range req.Names {
			reqs[i] = SparsePush{Name: req.Names[i], Part: req.Parts[i], Grad: req.Sparse[i]}
		}
		if err := s.PushSparseMany(reqs); err != nil {
			return fail(err)
		}
	case transport.PSNormSquared:
		if len(req.Names) != 1 {
			return fail(fmt.Errorf("psrt: norm request has %d items", len(req.Names)))
		}
		n2, err := s.WaitAggregatedNormSquared(req.Names[0], req.Parts[0], req.Version)
		if err != nil {
			return fail(err)
		}
		rep.Scalar = n2
	case transport.PSApplyUpdate:
		if len(req.Names) != 1 {
			return fail(fmt.Errorf("psrt: apply request has %d items", len(req.Names)))
		}
		if err := s.ApplyUpdate(req.Names[0], req.Parts[0], req.Scale); err != nil {
			return fail(err)
		}
	case transport.PSSnapshot:
		if len(req.Names) != 1 {
			return fail(fmt.Errorf("psrt: snapshot request has %d items", len(req.Names)))
		}
		val, slots, err := s.SnapshotPart(req.Names[0], req.Parts[0], req.Version)
		if err != nil {
			return fail(err)
		}
		rep.Dense = append(append(rep.Dense, val), slots...)
	default:
		return fail(fmt.Errorf("psrt: unknown wire op %d", req.Op))
	}
	return rep
}
