package psrt

import (
	"errors"
	"testing"

	"parallax/internal/optim"
	"parallax/internal/tensor"
)

func denseOf(rows, width int, vals ...float32) *tensor.Dense {
	d := tensor.NewDense(rows, width)
	copy(d.Data(), vals)
	return d
}

// TestNamespaceIsolation is the multi-tenancy core claim: two tenants
// register a variable with the SAME name on one shared server, each
// under its own namespace with its own optimizer and learning rate, and
// neither pushes, pulls, slot state, nor drops of one ever leak into the
// other.
func TestNamespaceIsolation(t *testing.T) {
	srv := NewResident()
	nsA, err := srv.Namespace("tenantA/job1", Config{Sources: 1, Optimizer: optim.NewSGD(1)})
	if err != nil {
		t.Fatal(err)
	}
	nsB, err := srv.Namespace("tenantB/job9", Config{Sources: 1, Optimizer: optim.NewMomentum(0.5, 0.9)})
	if err != nil {
		t.Fatal(err)
	}

	ranges := []tensor.RowRange{{Start: 0, End: 2}}
	if err := nsA.AddVar("w", denseOf(2, 1, 10, 20), ranges, []int{0}, false); err != nil {
		t.Fatal(err)
	}
	if err := nsB.AddVar("w", denseOf(2, 1, 100, 200), ranges, []int{0}, false); err != nil {
		t.Fatal(err)
	}

	// Tenant A pushes a gradient; tenant B's value must not move.
	if err := srv.PushDense(nsA.Qualify("w"), 0, denseOf(2, 1, 1, 1)); err != nil {
		t.Fatal(err)
	}
	a, err := srv.Pull(nsA.Qualify("w"), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Data()[0] != 9 || a.Data()[1] != 19 {
		t.Fatalf("tenant A value = %v, want [9 19]", a.Data())
	}
	b, err := srv.Pull(nsB.Qualify("w"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Data()[0] != 100 || b.Data()[1] != 200 {
		t.Fatalf("tenant B value moved to %v after tenant A's push", b.Data())
	}

	// Slot state is per-tenant: A's SGD keeps none, B's momentum does.
	if got := nsA.SlotNames(); len(got) != 0 {
		t.Fatalf("tenant A slot names = %v, want none", got)
	}
	if got := nsB.SlotNames(); len(got) != 1 || got[0] != "velocity" {
		t.Fatalf("tenant B slot names = %v, want [velocity]", got)
	}
	if err := srv.PushDense(nsB.Qualify("w"), 0, denseOf(2, 1, 2, 2)); err != nil {
		t.Fatal(err)
	}
	_, slotsB, err := srv.SnapshotPart(nsB.Qualify("w"), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(slotsB) != 1 {
		t.Fatalf("tenant B snapshot has %d slot tensors, want 1", len(slotsB))
	}
	_, slotsA, err := srv.SnapshotPart(nsA.Qualify("w"), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(slotsA) != 0 {
		t.Fatalf("tenant A snapshot has %d slot tensors, want 0", len(slotsA))
	}

	// An un-qualified name resolves to neither tenant's variable.
	if _, err := srv.Pull("w", 0, 0); err == nil {
		t.Fatal("bare name resolved on a resident server")
	}

	// Dropping tenant A removes exactly its variables.
	srv.DropNamespace("tenantA/job1")
	if _, err := srv.Pull(nsA.Qualify("w"), 0, 0); err == nil {
		t.Fatal("tenant A variable survived DropNamespace")
	}
	if _, err := srv.Pull(nsB.Qualify("w"), 0, 1); err != nil {
		t.Fatalf("tenant B variable lost by tenant A's drop: %v", err)
	}
	// ... and frees the name for a successor job.
	if _, err := srv.Namespace("tenantA/job1", Config{Sources: 1, Optimizer: optim.NewSGD(1)}); err != nil {
		t.Fatalf("namespace not reusable after drop: %v", err)
	}
}

// TestNamespaceScopedAbort: aborting one tenant fails its blocked waits
// and leaves the other tenant's protocol running.
func TestNamespaceScopedAbort(t *testing.T) {
	srv := NewResident()
	nsA, err := srv.Namespace("a", Config{Sources: 1, Optimizer: optim.NewSGD(1)})
	if err != nil {
		t.Fatal(err)
	}
	nsB, err := srv.Namespace("b", Config{Sources: 1, Optimizer: optim.NewSGD(1)})
	if err != nil {
		t.Fatal(err)
	}
	ranges := []tensor.RowRange{{Start: 0, End: 1}}
	if err := nsA.AddVar("w", denseOf(1, 1, 1), ranges, []int{0}, false); err != nil {
		t.Fatal(err)
	}
	if err := nsB.AddVar("w", denseOf(1, 1, 1), ranges, []int{0}, false); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("tenant A died")
	done := make(chan error, 1)
	go func() {
		_, err := srv.Pull(nsA.Qualify("w"), 0, 99) // never satisfied
		done <- err
	}()
	nsA.Abort(boom)
	if err := <-done; !errors.Is(err, boom) {
		t.Fatalf("tenant A wait returned %v, want the abort error", err)
	}

	// Tenant B is unaffected: its push still satisfies its pull.
	if err := srv.PushDense(nsB.Qualify("w"), 0, denseOf(1, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Pull(nsB.Qualify("w"), 0, 1); err != nil {
		t.Fatalf("tenant B wait failed after tenant A abort: %v", err)
	}
}

// TestResidentServerRejectsBareRegistration: resident servers are
// namespace-only; bare AddVar/ReshardVar and malformed namespaces fail.
func TestResidentServerRejectsBareRegistration(t *testing.T) {
	srv := NewResident()
	ranges := []tensor.RowRange{{Start: 0, End: 1}}
	if err := srv.AddVar("w", denseOf(1, 1, 1), ranges, []int{0}, false); err == nil {
		t.Fatal("bare AddVar accepted on a resident server")
	}
	if err := srv.ReshardVar("w", denseOf(1, 1, 1), ranges, []int{0}, false, nil, 0); err == nil {
		t.Fatal("bare ReshardVar accepted on a resident server")
	}
	if _, err := srv.Namespace("", Config{Sources: 1, Optimizer: optim.NewSGD(1)}); err == nil {
		t.Fatal("empty namespace accepted")
	}
	if _, err := srv.Namespace("a::b", Config{Sources: 1, Optimizer: optim.NewSGD(1)}); err == nil {
		t.Fatal("namespace containing the separator accepted")
	}
	if _, err := srv.Namespace("a", Config{Sources: 1, Optimizer: nil}); err == nil {
		t.Fatal("namespace with nil optimizer accepted")
	}
	if _, err := srv.Namespace("a", Config{Sources: 1, Optimizer: optim.NewSGD(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Namespace("a", Config{Sources: 1, Optimizer: optim.NewSGD(1)}); err == nil {
		t.Fatal("duplicate namespace accepted")
	}
}

// TestNamespaceReshard: a namespaced variable reshards in place with its
// tenant's optimizer slot state, exactly like the legacy path.
func TestNamespaceReshard(t *testing.T) {
	srv := NewResident()
	ns, err := srv.Namespace("t", Config{Sources: 1, Optimizer: optim.NewMomentum(0.5, 0.9)})
	if err != nil {
		t.Fatal(err)
	}
	init := denseOf(4, 1, 1, 2, 3, 4)
	if err := ns.AddVar("emb", init, []tensor.RowRange{{Start: 0, End: 4}}, []int{0}, true); err != nil {
		t.Fatal(err)
	}
	// One sparse update to materialize velocity.
	g := tensor.NewSparse([]int{1}, denseOf(1, 1, 10), 4)
	if err := srv.PushSparse(ns.Qualify("emb"), 0, g); err != nil {
		t.Fatal(err)
	}
	val, slots, err := srv.SnapshotPart(ns.Qualify("emb"), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(slots) != 1 {
		t.Fatalf("snapshot has %d slot tensors, want 1", len(slots))
	}
	// Reinstall as two partitions seeded at version 1.
	newRanges := tensor.PartitionRows(4, 2)
	if err := ns.ReshardVar("emb", val, newRanges, []int{0, 1}, true, slots, 1); err != nil {
		t.Fatal(err)
	}
	got, err := srv.Pull(ns.Qualify("emb"), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Data()[1] != val.Data()[3] {
		t.Fatalf("resharded value mismatch: %v vs full %v", got.Data(), val.Data())
	}
	v2, slots2, err := srv.SnapshotPart(ns.Qualify("emb"), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	_ = v2
	if len(slots2) != 1 || slots2[0].Data()[1] != slots[0].Data()[3] {
		t.Fatalf("slot state did not follow the reshard: %v vs full %v", slots2[0].Data(), slots[0].Data())
	}
}
