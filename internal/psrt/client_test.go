package psrt

import (
	"strings"
	"testing"

	"parallax/internal/optim"
	"parallax/internal/tensor"
	"parallax/internal/transport"
)

// newWired builds a server hosting one 2-partition dense variable and
// one 2-partition sparse variable, served to a single remote client over
// an in-process conduit pair — the full wire protocol without sockets.
func newWired(t *testing.T, cfg Config) (*Client, *Server, func()) {
	t.Helper()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Worker endpoint 0, server endpoint 1.
	fab := transport.NewInproc(transport.Topology{Workers: 1, Machines: 1, MachineOfWorker: []int{0}})
	done := make(chan struct{})
	go func() {
		defer close(done)
		ServeConduit(srv, fab.Conduit(1), 0)
	}()
	stop := func() { fab.Close(); <-done }
	return NewClient(fab.Conduit(0), 1), srv, stop
}

func denseInit(rows, w int, base float32) *tensor.Dense {
	d := tensor.NewDense(rows, w)
	for i := range d.Data() {
		d.Data()[i] = base + float32(i)
	}
	return d
}

func TestClientPullPushDenseRoundTrip(t *testing.T) {
	client, srv, stop := newWired(t, Config{Sources: 1, Optimizer: optim.NewSGD(1)})
	defer stop()
	ranges := tensor.PartitionRows(4, 2)
	if err := srv.AddVar("w", denseInit(4, 3, 0), ranges, []int{0, 1}, false); err != nil {
		t.Fatal(err)
	}

	// Pull both partitions through the wire into caller-owned views.
	dst := tensor.NewDense(4, 3)
	reqs := []PullReq{
		{Name: "w", Part: 0, Dst: dst.SliceRows(0, 2)},
		{Name: "w", Part: 1, Dst: dst.SliceRows(2, 4)},
	}
	if err := client.PullManyInto(0, reqs); err != nil {
		t.Fatal(err)
	}
	if dst.At(3, 2) != 11 {
		t.Fatalf("pulled value %v", dst.At(3, 2))
	}

	// Push gradients (SGD lr 1, one source: value -= grad) and pull the
	// updated state back, waiting on version 1.
	g0 := tensor.NewDense(2, 3)
	g0.Fill(1)
	g1 := tensor.NewDense(2, 3)
	g1.Fill(2)
	if err := client.PushDenseMany([]DensePush{
		{Name: "w", Part: 0, Grad: g0}, {Name: "w", Part: 1, Grad: g1},
	}); err != nil {
		t.Fatal(err)
	}
	if err := client.PullManyInto(1, reqs); err != nil {
		t.Fatal(err)
	}
	if dst.At(0, 0) != -1 || dst.At(3, 2) != 9 {
		t.Fatalf("updated values %v %v", dst.At(0, 0), dst.At(3, 2))
	}
}

func TestClientSparsePushAndNormApply(t *testing.T) {
	client, srv, stop := newWired(t, Config{
		Sources: 1, Optimizer: optim.NewSGD(1), DeferUpdates: true,
	})
	defer stop()
	ranges := tensor.PartitionRows(4, 1)
	if err := srv.AddVar("emb", denseInit(4, 2, 0), ranges, []int{0}, true); err != nil {
		t.Fatal(err)
	}
	vals := tensor.NewDense(1, 2)
	vals.Data()[0], vals.Data()[1] = 3, 4
	if err := client.PushSparseMany([]SparsePush{{
		Name: "emb", Part: 0,
		Grad: tensor.NewSparse([]int{1}, vals, 4),
	}}); err != nil {
		t.Fatal(err)
	}
	n2, err := client.WaitAggregatedNormSquared("emb", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != 25 {
		t.Fatalf("norm² = %v, want 25", n2)
	}
	if err := client.ApplyUpdate("emb", 0, 0.5); err != nil {
		t.Fatal(err)
	}
	got := tensor.NewDense(4, 2)
	if err := client.PullInto("emb", 0, 1, got); err != nil {
		t.Fatal(err)
	}
	// row 1 was [2,3]; grad [3,4]*0.5 applied with lr 1 -> [0.5, 1].
	if got.At(1, 0) != 0.5 || got.At(1, 1) != 1 {
		t.Fatalf("row after scaled apply: %v %v", got.At(1, 0), got.At(1, 1))
	}
}

func TestClientErrorsTravelAsReplies(t *testing.T) {
	client, _, stop := newWired(t, Config{Sources: 1, Optimizer: optim.NewSGD(1)})
	defer stop()
	err := client.PullManyInto(0, []PullReq{{Name: "ghost", Part: 0, Dst: tensor.NewDense(1)}})
	if err == nil || !strings.Contains(err.Error(), "unknown variable") {
		t.Fatalf("err = %v", err)
	}
	// The serving loop must survive an erroneous request.
	err = client.ApplyUpdate("ghost", 0, 1)
	if err == nil || !strings.Contains(err.Error(), "unknown variable") {
		t.Fatalf("err after first error = %v", err)
	}
}

func TestClientClosedFabricReturnsError(t *testing.T) {
	client, _, stop := newWired(t, Config{Sources: 1, Optimizer: optim.NewSGD(1)})
	stop()
	if err := client.ApplyUpdate("w", 0, 1); err == nil {
		t.Fatal("call on closed fabric succeeded")
	}
}
