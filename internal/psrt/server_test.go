package psrt

import (
	"math"
	"sync"
	"testing"

	"parallax/internal/optim"
	"parallax/internal/tensor"
)

func fullRange(dim0 int) []tensor.RowRange { return tensor.PartitionRows(dim0, 1) }

func TestSyncDenseAggregatesMean(t *testing.T) {
	s, err := NewServer(Config{Sources: 2, Optimizer: optim.NewSGD(1), DenseAgg: optim.AggMean, SparseAgg: optim.AggMean})
	if err != nil {
		t.Fatal(err)
	}
	init := tensor.FromSlice([]float32{10, 10}, 2, 1)
	if err := s.AddVar("w", init, fullRange(2), []int{0}, false); err != nil {
		t.Fatal(err)
	}
	g1 := tensor.FromSlice([]float32{2, 2}, 2, 1)
	g2 := tensor.FromSlice([]float32{4, 4}, 2, 1)
	if err := s.PushDense("w", 0, g1); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Version("w", 0); v != 0 {
		t.Fatal("update applied before all pushes")
	}
	if err := s.PushDense("w", 0, g2); err != nil {
		t.Fatal(err)
	}
	got, err := s.Pull("w", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// mean grad = 3, lr = 1 -> 10 - 3 = 7
	if got.At(0, 0) != 7 {
		t.Fatalf("value = %v, want 7", got.At(0, 0))
	}
}

func TestSyncSparseAggregatesSum(t *testing.T) {
	s, _ := NewServer(Config{Sources: 2, Optimizer: optim.NewSGD(1), DenseAgg: optim.AggSum, SparseAgg: optim.AggSum})
	init := tensor.NewDense(4, 1)
	init.Fill(10)
	if err := s.AddVar("emb", init, fullRange(4), []int{0}, true); err != nil {
		t.Fatal(err)
	}
	sp1 := tensor.NewSparse([]int{1}, tensor.FromSlice([]float32{2}, 1, 1), 4)
	sp2 := tensor.NewSparse([]int{1, 3}, tensor.FromSlice([]float32{3, 5}, 2, 1), 4)
	if err := s.PushSparse("emb", 0, sp1); err != nil {
		t.Fatal(err)
	}
	if err := s.PushSparse("emb", 0, sp2); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Pull("emb", 0, 1)
	if got.At(1, 0) != 5 || got.At(3, 0) != 5 || got.At(0, 0) != 10 {
		t.Fatalf("value = %v", got.Data())
	}
}

func TestPartitionedVariableAcrossServers(t *testing.T) {
	// Two servers each own one partition of a 4-row variable.
	mk := func() *Server {
		s, _ := NewServer(Config{Sources: 1, Optimizer: optim.NewSGD(1), SparseAgg: optim.AggSum})
		return s
	}
	s0, s1 := mk(), mk()
	init := tensor.NewDense(4, 2)
	for i := 0; i < 4; i++ {
		init.Set(float32(i), i, 0)
	}
	ranges := tensor.PartitionRows(4, 2)
	if err := s0.AddVar("emb", init, ranges, []int{0}, true); err != nil {
		t.Fatal(err)
	}
	if err := s1.AddVar("emb", init, ranges, []int{1}, true); err != nil {
		t.Fatal(err)
	}
	// Each server got its slice of the initial value.
	v0, _ := s0.Pull("emb", 0, 0)
	v1, _ := s1.Pull("emb", 1, 0)
	if v0.At(0, 0) != 0 || v0.At(1, 0) != 1 || v1.At(0, 0) != 2 || v1.At(1, 0) != 3 {
		t.Fatalf("sharding wrong: %v %v", v0.Data(), v1.Data())
	}
	// A push to the wrong server errors.
	sp := tensor.NewSparse([]int{0}, tensor.NewDense(1, 2), 2)
	if err := s0.PushSparse("emb", 1, sp); err == nil {
		t.Fatal("expected error pushing to unowned partition")
	}
}

func TestAsyncAppliesImmediately(t *testing.T) {
	s, _ := NewServer(Config{Sources: 3, Optimizer: optim.NewSGD(1), Mode: Async, DenseAgg: optim.AggSum})
	init := tensor.FromSlice([]float32{10}, 1, 1)
	if err := s.AddVar("w", init, fullRange(1), []int{0}, false); err != nil {
		t.Fatal(err)
	}
	if err := s.PushDense("w", 0, tensor.FromSlice([]float32{1}, 1, 1)); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Pull("w", 0, 0)
	if got.At(0, 0) != 9 {
		t.Fatalf("async push not applied: %v", got.At(0, 0))
	}
}

func TestSyncPullBlocksUntilUpdate(t *testing.T) {
	s, _ := NewServer(Config{Sources: 1, Optimizer: optim.NewSGD(0.5), DenseAgg: optim.AggSum})
	init := tensor.FromSlice([]float32{4}, 1, 1)
	if err := s.AddVar("w", init, fullRange(1), []int{0}, false); err != nil {
		t.Fatal(err)
	}
	done := make(chan float32)
	go func() {
		v, err := s.Pull("w", 0, 1) // waits for first update
		if err != nil {
			t.Error(err)
		}
		done <- v.At(0, 0)
	}()
	if err := s.PushDense("w", 0, tensor.FromSlice([]float32{2}, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if got := <-done; got != 3 {
		t.Fatalf("pulled %v, want 3", got)
	}
}

func TestDeferUpdatesChiefClippingPath(t *testing.T) {
	s, _ := NewServer(Config{
		Sources: 1, Optimizer: optim.NewSGD(1), SparseAgg: optim.AggSum,
		DeferUpdates: true,
	})
	init := tensor.NewDense(2, 1)
	if err := s.AddVar("emb", init, fullRange(2), []int{0}, true); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	var norm2 float64
	go func() {
		defer wg.Done()
		n, err := s.WaitAggregatedNormSquared("emb", 0, 1)
		if err != nil {
			t.Error(err)
			return
		}
		norm2 = n
		if err := s.ApplyUpdate("emb", 0, 0.5); err != nil {
			t.Error(err)
		}
	}()
	sp := tensor.NewSparse([]int{0}, tensor.FromSlice([]float32{4}, 1, 1), 2)
	if err := s.PushSparse("emb", 0, sp); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if math.Abs(norm2-16) > 1e-6 {
		t.Fatalf("norm2 = %v, want 16", norm2)
	}
	got, _ := s.Pull("emb", 0, 1)
	if got.At(0, 0) != -2 { // 0 - 1*(4*0.5)
		t.Fatalf("value = %v, want -2", got.At(0, 0))
	}
}

func TestApplyUpdateBeforeAggregationErrors(t *testing.T) {
	s, _ := NewServer(Config{Sources: 1, Optimizer: optim.NewSGD(1), DeferUpdates: true})
	if err := s.AddVar("w", tensor.NewDense(1, 1), fullRange(1), []int{0}, false); err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyUpdate("w", 0, 1); err == nil {
		t.Fatal("expected error")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewServer(Config{Sources: 0, Optimizer: optim.NewSGD(1)}); err == nil {
		t.Fatal("sync without sources must fail")
	}
	if _, err := NewServer(Config{Sources: 1}); err == nil {
		t.Fatal("nil optimizer must fail")
	}
	if _, err := NewServer(Config{Mode: Async, DeferUpdates: true, Optimizer: optim.NewSGD(1)}); err == nil {
		t.Fatal("async + defer must fail")
	}
}

func TestTypeMismatchErrors(t *testing.T) {
	s, _ := NewServer(Config{Sources: 1, Optimizer: optim.NewSGD(1)})
	if err := s.AddVar("w", tensor.NewDense(2, 1), fullRange(2), []int{0}, false); err != nil {
		t.Fatal(err)
	}
	sp := tensor.NewSparse([]int{0}, tensor.NewDense(1, 1), 2)
	if err := s.PushSparse("w", 0, sp); err == nil {
		t.Fatal("sparse push to dense var must fail")
	}
	if err := s.PushDense("missing", 0, tensor.NewDense(1, 1)); err == nil {
		t.Fatal("unknown var must fail")
	}
	if err := s.AddVar("w", tensor.NewDense(2, 1), fullRange(2), []int{0}, false); err == nil {
		t.Fatal("duplicate var must fail")
	}
}

func TestConcurrentPushersRace(t *testing.T) {
	const sources = 8
	s, _ := NewServer(Config{Sources: sources, Optimizer: optim.NewSGD(1), SparseAgg: optim.AggSum})
	init := tensor.NewDense(16, 2)
	if err := s.AddVar("emb", init, fullRange(16), []int{0}, true); err != nil {
		t.Fatal(err)
	}
	const steps = 5
	var wg sync.WaitGroup
	for w := 0; w < sources; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; it < steps; it++ {
				sp := tensor.NewSparse([]int{w % 16, (w + it) % 16},
					tensor.FromSlice([]float32{1, 1, 1, 1}, 2, 2), 16)
				if err := s.PushSparse("emb", 0, sp); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Pull("emb", 0, int64(it+1)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if v, _ := s.Version("emb", 0); v != steps {
		t.Fatalf("version = %d, want %d", v, steps)
	}
}
