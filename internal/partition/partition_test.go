package partition

import (
	"math"
	"testing"
	"testing/quick"
)

func synthetic(th0, th1, th2 float64) Measure {
	return func(p int) float64 { return th0 + th1/float64(p) + th2*float64(p) }
}

func TestFitRecoversExactModel(t *testing.T) {
	m := synthetic(0.5, 12, 0.002)
	var samples []Sample
	for _, p := range []int{2, 8, 32, 128} {
		samples = append(samples, Sample{P: p, IterTime: m(p)})
	}
	got, err := Fit(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Theta0-0.5) > 1e-6 || math.Abs(got.Theta1-12) > 1e-5 || math.Abs(got.Theta2-0.002) > 1e-8 {
		t.Fatalf("fit = %+v", got)
	}
	crit, ok := got.CriticalP()
	want := math.Sqrt(12 / 0.002)
	if !ok || math.Abs(crit-want) > 0.1 {
		t.Fatalf("critical P = %v, want %v", crit, want)
	}
}

func TestFitRejectsDegenerateSamples(t *testing.T) {
	if _, err := Fit([]Sample{{P: 4, IterTime: 1}, {P: 4, IterTime: 1.1}, {P: 8, IterTime: 2}}); err == nil {
		t.Fatal("expected error for < 3 distinct P")
	}
	if _, err := Fit([]Sample{{P: 4, IterTime: 1}, {P: -1, IterTime: 1}, {P: 8, IterTime: 2}, {P: 2, IterTime: 2}}); err == nil {
		t.Fatal("expected error for non-positive P")
	}
}

func TestSearchFindsNearOptimalP(t *testing.T) {
	// True optimum at sqrt(10/0.001) = 100.
	m := synthetic(0.3, 10, 0.001)
	res, err := Search(m, 8, 4096)
	if err != nil {
		t.Fatal(err)
	}
	trueOpt := 100.0
	if math.Abs(float64(res.BestP)-trueOpt) > 40 {
		t.Fatalf("BestP = %d, want near %v (samples %v)", res.BestP, trueOpt, res.Samples)
	}
	// The predicted point must be no more than a few percent worse than
	// the true optimum (the paper's bar: within 5% of brute force).
	if m(res.BestP) > m(100)*1.05 {
		t.Fatalf("BestP=%d gives %v, optimum %v", res.BestP, m(res.BestP), m(100))
	}
}

func TestSearchUsesFewRuns(t *testing.T) {
	// §6.5: "Parallax spends at most 20 minutes to get sampling results of
	// at most 5 runs" — allow a little slack for the halving phase.
	m := synthetic(0.3, 10, 0.001)
	res, _ := Search(m, 8, 4096)
	if res.Runs > 8 {
		t.Fatalf("sampling search used %d runs, want <= 8", res.Runs)
	}
	brute := BruteForce(m, 2, 4096)
	if brute.Runs <= res.Runs*3 {
		t.Fatalf("brute force (%d runs) should need many times more runs than sampling (%d)",
			brute.Runs, res.Runs)
	}
}

func TestSearchMonotoneDecreasingPicksLargestSampled(t *testing.T) {
	// If time keeps dropping with P (θ2 = 0), search must pick something
	// at the top of its sampled bracket without extrapolating wildly.
	m := func(p int) float64 { return 1 + 100/float64(p) }
	res, err := Search(m, 4, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestP < 256 {
		t.Fatalf("BestP = %d, want near the top of the sampled range", res.BestP)
	}
}

func TestSearchOptimumAtStart(t *testing.T) {
	// Start point already optimal: both directions increase.
	m := synthetic(0.1, 0.8, 0.1) // optimum sqrt(8) ≈ 2.8
	res, err := Search(m, 4, 512)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestP < 1 || res.BestP > 8 {
		t.Fatalf("BestP = %d, want small", res.BestP)
	}
}

func TestBruteForceStopsAfterDegradation(t *testing.T) {
	m := synthetic(0.2, 5, 0.01) // optimum ~22
	res := BruteForce(m, 2, 4096)
	if m(res.BestP) > m(22)*1.02 {
		t.Fatalf("brute force best %d not near optimum 22", res.BestP)
	}
	// Must stop well before maxP thanks to the 10% rule.
	if res.Runs > 200 {
		t.Fatalf("brute force never stopped: %d runs", res.Runs)
	}
}

func TestPredictMatchesDefinition(t *testing.T) {
	m := CostModel{Theta0: 1, Theta1: 2, Theta2: 3}
	if got := m.Predict(2); math.Abs(got-(1+1+6)) > 1e-12 {
		t.Fatalf("Predict = %v", got)
	}
	if _, ok := (CostModel{Theta1: -1, Theta2: 1}).CriticalP(); ok {
		t.Fatal("no critical point expected for negative theta1")
	}
}

// Property: for random convex ground-truth models, Search's choice is never
// more than 10% worse than the true optimum over the feasible range.
func TestSearchQualityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := seedRand(seed)
		th0 := 0.05 + r()*0.5
		th1 := 1 + r()*20
		th2 := 0.0005 + r()*0.01
		m := synthetic(th0, th1, th2)
		res, err := Search(m, 8, 8192)
		if err != nil {
			return false
		}
		// true optimum over integers
		bestT := math.Inf(1)
		for p := 1; p <= 8192; p *= 2 {
			if v := m(p); v < bestT {
				bestT = v
			}
		}
		crit := int(math.Sqrt(th1 / th2))
		if crit >= 1 && crit <= 8192 {
			if v := m(crit); v < bestT {
				bestT = v
			}
		}
		return m(res.BestP) <= bestT*1.10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// seedRand returns a tiny deterministic PRNG in [0,1).
func seedRand(seed int64) func() float64 {
	s := uint64(seed)*2654435761 + 1
	return func() float64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return float64(s%1_000_000) / 1_000_000
	}
}

// TestSearchDegenerateBrackets covers the bracket edge cases the live
// runtime search can hit: a maxP too small to double even once, a
// monotone-increasing curve (the optimum sits below the start point),
// and a perfectly flat curve (the fit degenerates and the search must
// keep a sampled point rather than extrapolate).
func TestSearchDegenerateBrackets(t *testing.T) {
	t.Run("maxP below 2*start", func(t *testing.T) {
		// start=4, maxP=6: no doubling possible; the search can only
		// halve. It must terminate and pick a sampled point in [1, 6].
		calls := 0
		res, err := Search(func(p int) float64 {
			calls++
			return 1 + float64(p) // increasing: best is the smallest probed
		}, 4, 6)
		if err != nil {
			t.Fatal(err)
		}
		if res.BestP < 1 || res.BestP > 6 {
			t.Fatalf("BestP %d outside [1,6]", res.BestP)
		}
		if res.Runs != calls {
			t.Fatalf("Runs %d, measured %d times", res.Runs, calls)
		}
		for _, s := range res.Samples {
			if s.P > 6 {
				t.Fatalf("sampled P=%d beyond maxP", s.P)
			}
		}
	})

	t.Run("monotone increasing", func(t *testing.T) {
		res, err := Search(func(p int) float64 { return float64(p) }, 2, 1024)
		if err != nil {
			t.Fatal(err)
		}
		if res.BestP != 1 {
			t.Fatalf("BestP %d on a monotone-increasing curve, want 1", res.BestP)
		}
	})

	t.Run("flat curve", func(t *testing.T) {
		// Identical times everywhere: doubling never sees an increase, the
		// least-squares system is solvable but θ1=θ2=0 (no interior
		// minimum), and the result must still be a sampled point.
		res, err := Search(func(p int) float64 { return 0.5 }, 2, 64)
		if err != nil {
			t.Fatal(err)
		}
		sampled := map[int]bool{}
		for _, s := range res.Samples {
			sampled[s.P] = true
		}
		if !sampled[res.BestP] {
			t.Fatalf("BestP %d was never sampled", res.BestP)
		}
	})
}

// TestSearchNRespectsBudget pins the ≤5-run contract of the live
// runtime search: on a long decreasing curve the unbounded search would
// keep doubling, the budgeted one must stop at maxRuns measurements and
// still answer from what it saw.
func TestSearchNRespectsBudget(t *testing.T) {
	calls := 0
	res, err := SearchN(func(p int) float64 {
		calls++
		return 100 / float64(p) // keeps improving all the way to maxP
	}, 2, 1<<20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if calls > 5 || res.Runs > 5 {
		t.Fatalf("budgeted search ran %d times (Runs=%d)", calls, res.Runs)
	}
	if res.BestP < 1 {
		t.Fatalf("BestP %d", res.BestP)
	}
	best := res.Samples[0]
	for _, s := range res.Samples[1:] {
		if s.IterTime < best.IterTime {
			best = s
		}
	}
	if res.BestP != best.P {
		t.Fatalf("BestP %d is not the best sampled point %d", res.BestP, best.P)
	}
}
