// Package partition implements Parallax's automatic search for the number
// of sparse-variable partitions (§3.2):
//
//	iter_time(P) = θ0 + θ1/P + θ2·P               (Eq. 1)
//
// θ0 is fixed compute/communication, θ1 the work partitioning parallelizes
// (server-side aggregation and update), θ2 the per-partition overhead
// (stitching partial results, managing extra arrays).
//
// Parallax samples real iteration times at a few partition counts —
// starting from the machine count, doubling until time increases, then
// halving until it increases — fits Eq. 1 by least squares, and takes the
// model's critical point. Because Eq. 1 is convex in P and the critical
// point is bracketed by the sampled range, no extrapolation happens.
//
// The Measure callback decides what "run an iteration" means: the
// offline search plugs in the discrete-event engine, and the live
// runtime search (parallax.Config.AutoPartition) plugs in real training
// steps with live resharding between probes, budget-capped by SearchN.
//
// The package also provides the paper's §6.5 baselines: Min (smallest
// feasible P) and the brute-force search (increase P by 2 until throughput
// drops >10% from the best seen).
package partition

import (
	"fmt"
	"math"
	"sort"
)

// MaxSearchP caps the search's upper bracket regardless of how many
// rows the largest partition-target variable has, so degenerate graphs
// cannot explode the candidate space. Both the simulator-backed search
// and the live runtime search clamp with Bound.
const MaxSearchP = 2048

// Bound returns the search's upper bracket for a variable of the given
// row count: the rows themselves (a partition per row is the physical
// maximum), clamped to MaxSearchP and to at least 1.
func Bound(maxRows int) int {
	if maxRows < 1 {
		return 1
	}
	if maxRows > MaxSearchP {
		return MaxSearchP
	}
	return maxRows
}

// Sample is one measured operating point.
type Sample struct {
	P        int
	IterTime float64
}

// CostModel is the fitted Eq. 1.
type CostModel struct {
	Theta0, Theta1, Theta2 float64
}

// Predict evaluates the model at partition count p.
func (m CostModel) Predict(p float64) float64 {
	return m.Theta0 + m.Theta1/p + m.Theta2*p
}

// CriticalP returns the unconstrained minimizer √(θ1/θ2); it returns
// (0, false) when the fitted curve has no interior minimum (θ1 or θ2
// not strictly positive — NaN thetas from a degenerate fit land here
// too, since NaN fails every comparison).
func (m CostModel) CriticalP() (float64, bool) {
	if !(m.Theta1 > 0) || !(m.Theta2 > 0) {
		return 0, false
	}
	return math.Sqrt(m.Theta1 / m.Theta2), true
}

// Fit computes the least-squares fit of Eq. 1 over the samples (mean
// squared error on iteration time, as in the paper). Samples with a
// non-finite iteration time — failed or budget-skipped measurement runs
// — are ignored; the fit needs at least three distinct partition counts
// among the finite ones.
func Fit(samples []Sample) (CostModel, error) {
	distinct := map[int]bool{}
	for _, s := range samples {
		if isFinite(s.IterTime) {
			distinct[s.P] = true
		}
	}
	if len(distinct) < 3 {
		return CostModel{}, fmt.Errorf("partition: need >= 3 distinct P values with finite times, have %d", len(distinct))
	}
	// Normal equations A·θ = b over basis x = (1, 1/P, P).
	var a [3][3]float64
	var b [3]float64
	for _, s := range samples {
		if !isFinite(s.IterTime) {
			continue
		}
		if s.P <= 0 {
			return CostModel{}, fmt.Errorf("partition: sample with P=%d", s.P)
		}
		x := [3]float64{1, 1 / float64(s.P), float64(s.P)}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				a[i][j] += x[i] * x[j]
			}
			b[i] += x[i] * s.IterTime
		}
	}
	theta, err := solve3(a, b)
	if err != nil {
		return CostModel{}, err
	}
	return CostModel{Theta0: theta[0], Theta1: theta[1], Theta2: theta[2]}, nil
}

// isFinite reports whether a measured time is usable for fitting.
func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// solve3 solves a 3x3 linear system by Gaussian elimination with partial
// pivoting.
func solve3(a [3][3]float64, b [3]float64) ([3]float64, error) {
	for col := 0; col < 3; col++ {
		pivot := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return [3]float64{}, fmt.Errorf("partition: singular system (degenerate samples)")
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		for r := 0; r < 3; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / a[col][col]
			for c := col; c < 3; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	var x [3]float64
	for i := 0; i < 3; i++ {
		x[i] = b[i] / a[i][i]
	}
	return x, nil
}

// Measure runs (a few iterations of) training with the given partition
// count and returns the average iteration time in seconds. In the real
// system this launches workers and servers (§4.2, "worker processes
// transform the input graph to a distributed version and run for a small
// number of iterations"); in this reproduction it is backed by the
// discrete-event engine.
type Measure func(p int) float64

// SearchResult reports the sampling search's outcome.
type SearchResult struct {
	BestP   int
	Model   CostModel
	Samples []Sample
	// Runs is the number of measurement runs performed (the paper's §6.5
	// efficiency metric: "at most 5 runs" for Parallax vs "more than 50"
	// for brute force).
	Runs int
}

// Search implements Parallax's sampling procedure. start is the initial
// sample point (the number of machines, §3.2); maxP bounds the search
// (e.g. the variable's row count).
func Search(measure Measure, start, maxP int) (SearchResult, error) {
	return SearchN(measure, start, maxP, 0)
}

// SearchN is Search with a measurement-run budget: at most maxRuns
// distinct partition counts are measured (0 means unlimited). The budget
// is the paper's §6.5 efficiency claim — Parallax settles "within at most
// 5 runs" — and the live runtime search passes 5, so tuning on the real
// data plane consumes a bounded number of training steps even when the
// doubling sweep has room to keep descending.
func SearchN(measure Measure, start, maxP, maxRuns int) (SearchResult, error) {
	if start < 1 {
		start = 1
	}
	if maxP < start {
		maxP = start
	}
	res := SearchResult{}
	seen := map[int]float64{}
	canProbe := func(p int) bool {
		if _, ok := seen[p]; ok {
			return true // a cached read, not a new run
		}
		return maxRuns <= 0 || res.Runs < maxRuns
	}
	probe := func(p int) float64 {
		if t, ok := seen[p]; ok {
			return t
		}
		t := measure(p)
		seen[p] = t
		res.Runs++
		res.Samples = append(res.Samples, Sample{P: p, IterTime: t})
		return t
	}

	// Double from the start point until iteration time increases.
	cur := probe(start)
	p := start
	for p*2 <= maxP && canProbe(p*2) {
		next := probe(p * 2)
		p *= 2
		if next > cur {
			break
		}
		cur = next
	}
	// Halve from the start point until iteration time increases.
	cur = seen[start]
	p = start
	for p/2 >= 1 && canProbe(p/2) {
		next := probe(p / 2)
		p /= 2
		if next > cur {
			break
		}
		cur = next
	}

	sort.Slice(res.Samples, func(i, j int) bool { return res.Samples[i].P < res.Samples[j].P })

	model, err := Fit(res.Samples)
	if err != nil {
		// Fewer than three distinct samples means the minimum sat at the
		// first probe and its both neighbours increased; fall back to the
		// best sampled point.
		res.BestP = argminSample(res.Samples)
		return res, nil
	}
	res.Model = model

	lo := res.Samples[0].P
	hi := res.Samples[len(res.Samples)-1].P
	if crit, ok := model.CriticalP(); ok {
		// Clamp inside the sampled bracket: no extrapolation (§3.2).
		if crit < float64(lo) {
			crit = float64(lo)
		}
		if crit > float64(hi) {
			crit = float64(hi)
		}
		predicted := int(math.Round(crit))
		if predicted < 1 {
			predicted = 1
		}
		// Verify the model's prediction with one more measurement and keep
		// whichever sampled point is actually fastest — the fitted curve
		// can mispredict when the real curve has a knee (e.g. the CPU
		// parallelism cap) rather than a smooth minimum.
		if canProbe(predicted) {
			probe(predicted)
		}
		res.BestP = argminSample(res.Samples)
	} else {
		res.BestP = argminSample(res.Samples)
	}
	return res, nil
}

func argminSample(samples []Sample) int {
	best := samples[0]
	for _, s := range samples[1:] {
		if s.IterTime < best.IterTime {
			best = s
		}
	}
	return best.P
}

// BruteForce reproduces §6.5's baseline: start from minP (the smallest
// count that fits in memory), increase P by 2 each run, and stop when the
// iteration time is more than 10% worse than the best observed. It returns
// the best P and the number of runs consumed.
func BruteForce(measure Measure, minP, maxP int) SearchResult {
	res := SearchResult{}
	best := math.Inf(1)
	bestP := minP
	for p := minP; p <= maxP; p += 2 {
		t := measure(p)
		res.Runs++
		res.Samples = append(res.Samples, Sample{P: p, IterTime: t})
		if t < best {
			best = t
			bestP = p
		} else if t > best*1.10 {
			break
		}
	}
	res.BestP = bestP
	return res
}
