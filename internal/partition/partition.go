// Package partition implements Parallax's automatic search for the number
// of sparse-variable partitions (§3.2):
//
//	iter_time(P) = θ0 + θ1/P + θ2·P               (Eq. 1)
//
// θ0 is fixed compute/communication, θ1 the work partitioning parallelizes
// (server-side aggregation and update), θ2 the per-partition overhead
// (stitching partial results, managing extra arrays).
//
// Parallax samples real iteration times at a few partition counts —
// starting from the machine count, doubling until time increases, then
// halving until it increases — fits Eq. 1 by least squares, and takes the
// model's critical point. Because Eq. 1 is convex in P and the critical
// point is bracketed by the sampled range, no extrapolation happens.
//
// The package also provides the paper's §6.5 baselines: Min (smallest
// feasible P) and the brute-force search (increase P by 2 until throughput
// drops >10% from the best seen).
package partition

import (
	"fmt"
	"math"
	"sort"
)

// Sample is one measured operating point.
type Sample struct {
	P        int
	IterTime float64
}

// CostModel is the fitted Eq. 1.
type CostModel struct {
	Theta0, Theta1, Theta2 float64
}

// Predict evaluates the model at partition count p.
func (m CostModel) Predict(p float64) float64 {
	return m.Theta0 + m.Theta1/p + m.Theta2*p
}

// CriticalP returns the unconstrained minimizer √(θ1/θ2); it returns
// (0, false) when the fitted curve has no interior minimum (θ1 or θ2
// non-positive).
func (m CostModel) CriticalP() (float64, bool) {
	if m.Theta1 <= 0 || m.Theta2 <= 0 {
		return 0, false
	}
	return math.Sqrt(m.Theta1 / m.Theta2), true
}

// Fit computes the least-squares fit of Eq. 1 over the samples (mean
// squared error on iteration time, as in the paper). It needs at least
// three distinct partition counts.
func Fit(samples []Sample) (CostModel, error) {
	distinct := map[int]bool{}
	for _, s := range samples {
		distinct[s.P] = true
	}
	if len(distinct) < 3 {
		return CostModel{}, fmt.Errorf("partition: need >= 3 distinct P values, have %d", len(distinct))
	}
	// Normal equations A·θ = b over basis x = (1, 1/P, P).
	var a [3][3]float64
	var b [3]float64
	for _, s := range samples {
		if s.P <= 0 {
			return CostModel{}, fmt.Errorf("partition: sample with P=%d", s.P)
		}
		x := [3]float64{1, 1 / float64(s.P), float64(s.P)}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				a[i][j] += x[i] * x[j]
			}
			b[i] += x[i] * s.IterTime
		}
	}
	theta, err := solve3(a, b)
	if err != nil {
		return CostModel{}, err
	}
	return CostModel{Theta0: theta[0], Theta1: theta[1], Theta2: theta[2]}, nil
}

// solve3 solves a 3x3 linear system by Gaussian elimination with partial
// pivoting.
func solve3(a [3][3]float64, b [3]float64) ([3]float64, error) {
	for col := 0; col < 3; col++ {
		pivot := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return [3]float64{}, fmt.Errorf("partition: singular system (degenerate samples)")
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		for r := 0; r < 3; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / a[col][col]
			for c := col; c < 3; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	var x [3]float64
	for i := 0; i < 3; i++ {
		x[i] = b[i] / a[i][i]
	}
	return x, nil
}

// Measure runs (a few iterations of) training with the given partition
// count and returns the average iteration time in seconds. In the real
// system this launches workers and servers (§4.2, "worker processes
// transform the input graph to a distributed version and run for a small
// number of iterations"); in this reproduction it is backed by the
// discrete-event engine.
type Measure func(p int) float64

// SearchResult reports the sampling search's outcome.
type SearchResult struct {
	BestP   int
	Model   CostModel
	Samples []Sample
	// Runs is the number of measurement runs performed (the paper's §6.5
	// efficiency metric: "at most 5 runs" for Parallax vs "more than 50"
	// for brute force).
	Runs int
}

// Search implements Parallax's sampling procedure. start is the initial
// sample point (the number of machines, §3.2); maxP bounds the search
// (e.g. the variable's row count).
func Search(measure Measure, start, maxP int) (SearchResult, error) {
	if start < 1 {
		start = 1
	}
	if maxP < start {
		maxP = start
	}
	res := SearchResult{}
	seen := map[int]float64{}
	probe := func(p int) float64 {
		if t, ok := seen[p]; ok {
			return t
		}
		t := measure(p)
		seen[p] = t
		res.Runs++
		res.Samples = append(res.Samples, Sample{P: p, IterTime: t})
		return t
	}

	// Double from the start point until iteration time increases.
	cur := probe(start)
	p := start
	for p*2 <= maxP {
		next := probe(p * 2)
		p *= 2
		if next > cur {
			break
		}
		cur = next
	}
	// Halve from the start point until iteration time increases.
	cur = seen[start]
	p = start
	for p/2 >= 1 {
		next := probe(p / 2)
		p /= 2
		if next > cur {
			break
		}
		cur = next
	}

	sort.Slice(res.Samples, func(i, j int) bool { return res.Samples[i].P < res.Samples[j].P })

	model, err := Fit(res.Samples)
	if err != nil {
		// Fewer than three distinct samples means the minimum sat at the
		// first probe and its both neighbours increased; fall back to the
		// best sampled point.
		res.BestP = argminSample(res.Samples)
		return res, nil
	}
	res.Model = model

	lo := res.Samples[0].P
	hi := res.Samples[len(res.Samples)-1].P
	if crit, ok := model.CriticalP(); ok {
		// Clamp inside the sampled bracket: no extrapolation (§3.2).
		if crit < float64(lo) {
			crit = float64(lo)
		}
		if crit > float64(hi) {
			crit = float64(hi)
		}
		predicted := int(math.Round(crit))
		if predicted < 1 {
			predicted = 1
		}
		// Verify the model's prediction with one more measurement and keep
		// whichever sampled point is actually fastest — the fitted curve
		// can mispredict when the real curve has a knee (e.g. the CPU
		// parallelism cap) rather than a smooth minimum.
		if _, sampled := seen[predicted]; !sampled {
			probe(predicted)
		}
		res.BestP = argminSample(res.Samples)
	} else {
		res.BestP = argminSample(res.Samples)
	}
	return res, nil
}

func argminSample(samples []Sample) int {
	best := samples[0]
	for _, s := range samples[1:] {
		if s.IterTime < best.IterTime {
			best = s
		}
	}
	return best.P
}

// BruteForce reproduces §6.5's baseline: start from minP (the smallest
// count that fits in memory), increase P by 2 each run, and stop when the
// iteration time is more than 10% worse than the best observed. It returns
// the best P and the number of runs consumed.
func BruteForce(measure Measure, minP, maxP int) SearchResult {
	res := SearchResult{}
	best := math.Inf(1)
	bestP := minP
	for p := minP; p <= maxP; p += 2 {
		t := measure(p)
		res.Runs++
		res.Samples = append(res.Samples, Sample{P: p, IterTime: t})
		if t < best {
			best = t
			bestP = p
		} else if t > best*1.10 {
			break
		}
	}
	res.BestP = bestP
	return res
}
