// Package jobspec is the shared definition of the repository's standard
// training job — the hybrid LM workload every entry point runs. It
// owns the pieces parallax-train and parallax-agent used to duplicate
// inline (flag binding, deterministic graph construction, dataset and
// resource wiring, option assembly), and doubles as the wire format of
// the multi-tenant service: a Spec round-trips through JSON, so
// POST /jobs bodies and CLI flag sets build byte-identical jobs.
//
// Determinism is the package's contract. Graph always seeds its
// initializers with the same RNG seed and Dataset its Zipf stream with
// the same data seed, so any two holders of an equal Spec — two agent
// processes, or the service and a reference run — construct
// bit-identical jobs.
package jobspec

import (
	"flag"
	"fmt"

	"parallax"
	"parallax/internal/data"
)

// Graph construction constants: every entry point must build the
// identical graph (same seeds, same shapes), or distributed agents and
// service-vs-direct comparisons would diverge.
const (
	graphSeed = 42 // variable-initializer RNG
	dataSeed  = 7  // Zipf token stream
	embedDim  = 32
	hiddenDim = 64
)

// Spec describes one training job completely. The zero value is not
// runnable; start from Default.
type Spec struct {
	Machines int `json:"machines"`
	GPUs     int `json:"gpus"`
	Vocab    int `json:"vocab"`
	Batch    int `json:"batch"`
	Steps    int `json:"steps"`
	// Arch is the architecture name: hybrid|ar|ps|optps.
	Arch string  `json:"arch"`
	LR   float64 `json:"lr"`
	Clip float64 `json:"clip,omitempty"`
	// Partitions fixes the sparse partition count; 0 selects the
	// simulated search (or the online one under AutoPartition).
	Partitions    int  `json:"partitions,omitempty"`
	AutoPartition bool `json:"auto_partition,omitempty"`
	// Compression is the wire-compression policy name:
	// none|f16|bf16|topk[=FRAC].
	Compression string `json:"compression,omitempty"`
	Async       bool   `json:"async,omitempty"`
	// MeasureAlpha samples the dataset before opening to supply a
	// measured α hint for the embedding (parallax-train's behavior;
	// agents skip it so every agent plans from identical inputs).
	MeasureAlpha bool `json:"measure_alpha,omitempty"`
}

// Default returns the standard workload: the 2×2 hybrid LM.
func Default() Spec {
	return Spec{
		Machines: 2, GPUs: 2, Vocab: 2000, Batch: 32, Steps: 100,
		Arch: "hybrid", LR: 0.5, Compression: "none",
	}
}

// BindCommonFlags registers the model/training flags shared by every
// binary (vocab, batch, steps, arch, clip, lr, compression) on fs,
// writing into s. Cluster-shape and deployment flags (machines, gpus,
// partitions, async, checkpointing) stay with each binary — their
// defaults and help text are part of that binary's contract.
func (s *Spec) BindCommonFlags(fs *flag.FlagSet) {
	fs.IntVar(&s.Vocab, "vocab", s.Vocab, "vocabulary size")
	fs.IntVar(&s.Batch, "batch", s.Batch, "batch size per GPU")
	fs.IntVar(&s.Steps, "steps", s.Steps, "run until this many total steps have completed (checkpointed steps included)")
	fs.StringVar(&s.Arch, "arch", s.Arch, "architecture: hybrid|ar|ps|optps")
	fs.Float64Var(&s.Clip, "clip", s.Clip, "global-norm clip (0 = off)")
	fs.Float64Var(&s.LR, "lr", s.LR, "learning rate")
	fs.StringVar(&s.Compression, "compression", s.Compression,
		"wire compression: none|f16|bf16|topk[=FRAC] (part of job identity: every agent must pass the same value, and a -resume must match the checkpoint)")
}

// ArchValue resolves the architecture name.
func (s Spec) ArchValue() (parallax.Arch, error) {
	arch, ok := map[string]parallax.Arch{
		"hybrid": parallax.Hybrid, "ar": parallax.AllReduceOnly,
		"ps": parallax.PSOnly, "optps": parallax.OptimizedPS,
	}[s.Arch]
	if !ok {
		return 0, fmt.Errorf("jobspec: unknown architecture %q", s.Arch)
	}
	return arch, nil
}

// Validate checks the spec is runnable.
func (s Spec) Validate() error {
	if _, err := s.ArchValue(); err != nil {
		return err
	}
	if _, err := parallax.ParseCompression(s.Compression); err != nil {
		return err
	}
	switch {
	case s.Machines < 1:
		return fmt.Errorf("jobspec: machines must be >= 1, got %d", s.Machines)
	case s.GPUs < 1:
		return fmt.Errorf("jobspec: gpus must be >= 1, got %d", s.GPUs)
	case s.Vocab < 2:
		return fmt.Errorf("jobspec: vocab must be >= 2, got %d", s.Vocab)
	case s.Batch < 1:
		return fmt.Errorf("jobspec: batch must be >= 1, got %d", s.Batch)
	case s.Steps < 1:
		return fmt.Errorf("jobspec: steps must be >= 1, got %d", s.Steps)
	case s.LR <= 0:
		return fmt.Errorf("jobspec: lr must be > 0, got %g", s.LR)
	case s.Clip < 0:
		return fmt.Errorf("jobspec: clip must be >= 0, got %g", s.Clip)
	case s.Partitions < 0:
		return fmt.Errorf("jobspec: partitions must be >= 0, got %d", s.Partitions)
	}
	return nil
}

// Graph builds the standard LM graph: a partitioned sparse embedding,
// a tanh hidden layer, and a softmax cross-entropy head, with all
// initializers drawn from the fixed seed.
func (s Spec) Graph() *parallax.Graph {
	rng := parallax.NewRNG(graphSeed)
	g := parallax.NewGraph()
	tokens := g.Input("tokens", parallax.Int, s.Batch)
	labels := g.Input("labels", parallax.Int, s.Batch)
	var emb *parallax.Node
	g.InPartitioner(func() {
		emb = g.Variable("embedding", rng.RandN(0.1, s.Vocab, embedDim))
	})
	w1 := g.Variable("hidden/kernel", rng.RandN(0.1, embedDim, hiddenDim))
	b1 := g.Variable("hidden/bias", parallax.NewDense(hiddenDim))
	w2 := g.Variable("softmax/kernel", rng.RandN(0.1, hiddenDim, s.Vocab))
	h := g.Tanh(g.AddBias(g.MatMul(g.Gather(emb, tokens), w1), b1))
	g.SoftmaxCE(g.MatMul(h, w2), labels)
	return g
}

// Resources returns the uniform cluster shape the spec trains on.
func (s Spec) Resources() parallax.ResourceInfo {
	return parallax.Uniform(s.Machines, s.GPUs)
}

// Dataset returns a fresh, identically seeded token stream. Each
// consumer (the training loop, an α measurement pass) must take its
// own: the stream is a stateful cursor.
func (s Spec) Dataset() *data.ZipfText {
	return data.NewZipfText(s.Vocab, s.Batch, 1, 1.0, dataSeed)
}

// Options assembles the session options the spec encodes. The returned
// slice is safe to append deployment-specific options to (WithDist,
// WithAutoCheckpoint, WithResidentPS, ...).
func (s Spec) Options() ([]parallax.Option, error) {
	arch, err := s.ArchValue()
	if err != nil {
		return nil, err
	}
	policy, err := parallax.ParseCompression(s.Compression)
	if err != nil {
		return nil, err
	}
	lr := float32(s.LR)
	opts := []parallax.Option{
		parallax.WithArch(arch),
		parallax.WithOptimizer(func() parallax.Optimizer { return parallax.NewSGD(lr) }),
		parallax.WithClipNorm(s.Clip),
		parallax.WithCompression(policy),
	}
	if s.MeasureAlpha {
		alpha := parallax.MeasureAlpha(s.Dataset(), s.Vocab, 5)
		opts = append(opts, parallax.WithAlphaHints(map[string]float64{"embedding": alpha}))
	}
	switch {
	case s.AutoPartition:
		opts = append(opts, parallax.WithAutoPartition())
	case s.Partitions > 0:
		opts = append(opts, parallax.WithSparsePartitions(s.Partitions))
	}
	if s.Async {
		opts = append(opts, parallax.WithAsync())
	}
	return opts, nil
}

// Alpha returns the measured embedding α the MeasureAlpha path would
// use (for display), sampling a fresh dataset.
func (s Spec) Alpha() float64 {
	return parallax.MeasureAlpha(s.Dataset(), s.Vocab, 5)
}
