package jobspec

import (
	"encoding/json"
	"flag"
	"testing"
)

func TestSpecJSONRoundTrip(t *testing.T) {
	s := Default()
	s.Steps, s.Clip, s.Partitions, s.Compression = 42, 5, 16, "topk=0.1"
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Fatalf("round trip changed the spec: %+v != %+v", back, s)
	}
}

func TestPartialJSONInheritsDefaults(t *testing.T) {
	// The service decodes request bodies over Default(), so a partial
	// document is a complete job.
	s := Default()
	if err := json.Unmarshal([]byte(`{"steps": 7, "vocab": 300}`), &s); err != nil {
		t.Fatal(err)
	}
	if s.Steps != 7 || s.Vocab != 300 {
		t.Fatalf("overrides lost: %+v", s)
	}
	if s.Machines != 2 || s.Arch != "hybrid" || s.LR != 0.5 {
		t.Fatalf("defaults lost: %+v", s)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBindCommonFlags(t *testing.T) {
	s := Default()
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	s.BindCommonFlags(fs)
	if err := fs.Parse([]string{"-vocab", "500", "-steps", "9", "-arch", "ps", "-compression", "f16"}); err != nil {
		t.Fatal(err)
	}
	if s.Vocab != 500 || s.Steps != 9 || s.Arch != "ps" || s.Compression != "f16" {
		t.Fatalf("flags not bound: %+v", s)
	}
}

func TestValidateRejects(t *testing.T) {
	for _, mut := range []func(*Spec){
		func(s *Spec) { s.Arch = "bogus" },
		func(s *Spec) { s.Compression = "bogus" },
		func(s *Spec) { s.Machines = 0 },
		func(s *Spec) { s.GPUs = 0 },
		func(s *Spec) { s.Vocab = 1 },
		func(s *Spec) { s.Batch = 0 },
		func(s *Spec) { s.Steps = 0 },
		func(s *Spec) { s.LR = 0 },
		func(s *Spec) { s.Clip = -1 },
		func(s *Spec) { s.Partitions = -1 },
	} {
		s := Default()
		mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("spec %+v validated", s)
		}
	}
	if err := Default().Validate(); err != nil {
		t.Errorf("default spec invalid: %v", err)
	}
}

func TestGraphDeterministic(t *testing.T) {
	// Two holders of an equal spec must build byte-identical graphs;
	// the variable initializers are the part that could drift.
	s := Default()
	g1, g2 := s.Graph(), s.Graph()
	v1, v2 := g1.Variables(), g2.Variables()
	if len(v1) != len(v2) || len(v1) == 0 {
		t.Fatalf("variable sets differ: %d vs %d", len(v1), len(v2))
	}
	for i := range v1 {
		if v1[i].Name != v2[i].Name {
			t.Fatalf("variable order differs: %s vs %s", v1[i].Name, v2[i].Name)
		}
		av, bv := v1[i].Init.Data(), v2[i].Init.Data()
		if len(av) != len(bv) {
			t.Fatalf("%s: size differs", v1[i].Name)
		}
		for k := range av {
			if av[k] != bv[k] {
				t.Fatalf("%s: initializer differs at %d", v1[i].Name, k)
			}
		}
	}
}
