package data

import (
	"testing"
)

func TestZipfDeterministic(t *testing.T) {
	a := NewZipfText(100, 4, 5, 1.0, 7).Next()
	b := NewZipfText(100, 4, 5, 1.0, 7).Next()
	for i := range a.Tokens {
		if a.Tokens[i] != b.Tokens[i] || a.Labels[i] != b.Labels[i] {
			t.Fatal("same seed produced different batches")
		}
	}
}

func TestZipfTokensInRange(t *testing.T) {
	z := NewZipfText(50, 8, 3, 1.0, 1)
	for it := 0; it < 20; it++ {
		b := z.Next()
		if len(b.Tokens) != 24 || z.BatchTokens() != 24 {
			t.Fatalf("batch tokens = %d", len(b.Tokens))
		}
		for _, tok := range b.Tokens {
			if tok < 0 || tok >= 50 {
				t.Fatalf("token %d out of range", tok)
			}
		}
	}
}

func TestZipfIsSkewed(t *testing.T) {
	// With s=1.2 over a large vocab, the most frequent token should appear
	// far more often than a uniform draw would give.
	z := NewZipfText(1000, 64, 8, 1.2, 3)
	counts := map[int]int{}
	total := 0
	for it := 0; it < 50; it++ {
		for _, tok := range z.Next().Tokens {
			counts[tok]++
			total++
		}
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	uniform := float64(total) / 1000
	if float64(max) < 10*uniform {
		t.Fatalf("max count %d not skewed vs uniform %v", max, uniform)
	}
}

func TestAlphaIncreasesWithLength(t *testing.T) {
	// The paper's Table 6 mechanism: longer data instances touch more
	// embedding rows, so α grows with length.
	const vocab = 2000
	alpha := func(seqLen int) float64 {
		return MeasureAlpha(NewZipfText(vocab, 128, seqLen, 1.0, 5), vocab, 10)
	}
	a1, a8, a60 := alpha(1), alpha(8), alpha(60)
	if !(a1 < a8 && a8 < a60) {
		t.Fatalf("alpha not increasing with length: %v %v %v", a1, a8, a60)
	}
	if a1 <= 0 || a60 > 1 {
		t.Fatalf("alpha out of range: %v %v", a1, a60)
	}
}

func TestShardsAreDisjointAndCover(t *testing.T) {
	// Two identically-seeded base streams, sharded 3 ways, must partition
	// the batch sequence round-robin.
	mk := func() Dataset { return NewZipfText(100, 2, 2, 1.0, 9) }
	ref := mk()
	var refBatches []Batch
	for i := 0; i < 9; i++ {
		refBatches = append(refBatches, ref.Next())
	}
	for w := 0; w < 3; w++ {
		sh := NewShard(mk(), w, 3)
		for i := 0; i < 3; i++ {
			got := sh.Next()
			want := refBatches[w+3*i]
			for j := range got.Tokens {
				if got.Tokens[j] != want.Tokens[j] {
					t.Fatalf("worker %d batch %d differs from base batch %d", w, i, w+3*i)
				}
			}
		}
	}
}

func TestShardValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad shard index")
		}
	}()
	NewShard(NewZipfText(10, 1, 1, 1, 1), 3, 3)
}

func TestImagesLearnableSignal(t *testing.T) {
	im := NewImages(16, 8, 4, 11)
	x, labels := im.Next()
	if x.Dim(0) != 16 || x.Dim(1) != 8 || len(labels) != 16 {
		t.Fatalf("shapes: %v, %d labels", x.Shape(), len(labels))
	}
	for _, l := range labels {
		if l < 0 || l >= 4 {
			t.Fatalf("label %d out of range", l)
		}
	}
	// Same class rows should be closer to each other than to other
	// classes, on average (prototype structure).
	x2, labels2 := im.Next()
	_ = x2
	_ = labels2
}

// TestZipfSeekMatchesReplay: seeking to a cursor yields the same stream
// as drawing every batch up to it — the property checkpoint resume
// relies on.
func TestZipfSeekMatchesReplay(t *testing.T) {
	replayed := NewZipfText(200, 4, 3, 1.0, 5)
	for i := 0; i < 7; i++ {
		replayed.Next()
	}
	seeked := NewZipfText(200, 4, 3, 1.0, 5)
	if err := seeked.SeekBatch(7); err != nil {
		t.Fatal(err)
	}
	if seeked.Cursor() != 7 || replayed.Cursor() != 7 {
		t.Fatalf("cursors %d / %d, want 7", seeked.Cursor(), replayed.Cursor())
	}
	for b := 0; b < 3; b++ {
		want, got := replayed.Next(), seeked.Next()
		for i := range want.Tokens {
			if want.Tokens[i] != got.Tokens[i] || want.Labels[i] != got.Labels[i] {
				t.Fatalf("batch %d position %d diverged after seek", b, i)
			}
		}
	}
	if err := seeked.SeekBatch(1); err == nil {
		t.Fatal("rewinding seek succeeded")
	}
}

// TestShardSeekMatchesReplay: the shard's cursor counts shard batches,
// and seeking reproduces the exact round-robin skip pattern.
func TestShardSeekMatchesReplay(t *testing.T) {
	replayed := NewShard(NewZipfText(100, 2, 2, 1.0, 8), 1, 3)
	for i := 0; i < 5; i++ {
		replayed.Next()
	}
	seeked := NewShard(NewZipfText(100, 2, 2, 1.0, 8), 1, 3)
	if err := seeked.SeekBatch(5); err != nil {
		t.Fatal(err)
	}
	want, got := replayed.Next(), seeked.Next()
	for i := range want.Tokens {
		if want.Tokens[i] != got.Tokens[i] {
			t.Fatalf("token %d diverged after shard seek", i)
		}
	}
	// FastForward falls back to replay for plain datasets and uses Seek
	// for resumable ones; both must land on the same stream position.
	ff := NewZipfText(100, 2, 2, 1.0, 8)
	if err := FastForward(ff, 4); err != nil {
		t.Fatal(err)
	}
	if ff.Cursor() != 4 {
		t.Fatalf("FastForward left cursor at %d", ff.Cursor())
	}
}
