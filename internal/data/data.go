// Package data provides the synthetic workloads the reproduction trains
// on. The paper's datasets (ImageNet, One Billion Word, WMT En-De) are not
// available offline, and the only dataset property the evaluation depends
// on is the sparsity degree α it induces — the average fraction of
// embedding rows touched per iteration (§2.2, §6.6). The generators here
// produce token streams with a Zipfian vocabulary distribution (natural
// language's empirical shape), with α controlled by vocabulary size, batch
// size and sequence length exactly as in the paper's Table 6 experiment
// ("α_model is controlled by the number of words (length) in a data
// instance with the batch size fixed").
package data

import (
	"fmt"
	"math"

	"parallax/internal/tensor"
)

// Batch is one training step's worth of examples for a token model:
// Tokens feed embedding lookups, Labels feed the loss.
type Batch struct {
	Tokens []int
	Labels []int
}

// Dataset produces an endless, deterministic stream of batches.
type Dataset interface {
	// Next returns the next batch.
	Next() Batch
	// BatchTokens returns how many tokens each batch carries (batch size ×
	// sequence length), the unit of the paper's words/sec throughput.
	BatchTokens() int
}

// Resumable is a Dataset whose read position can be captured and
// restored — the dataset half of checkpoint/resume. The cursor is the
// number of batches drawn so far; restoring a job fast-forwards an
// identically constructed dataset to the saved cursor, after which the
// stream continues bit-identically to the uninterrupted run. Datasets
// without the interface are resumed by drawing and discarding batches,
// which is equivalent but pays the allocation; Seek exists to skip the
// batch assembly.
type Resumable interface {
	Dataset
	// Cursor returns the number of batches drawn so far.
	Cursor() int64
	// Seek advances the stream to an absolute cursor. Rewinding is not
	// supported (the generators are forward-only): seeking before the
	// current cursor is an error.
	SeekBatch(cursor int64) error
}

// FastForward advances ds to the given cursor: through Seek when the
// dataset is Resumable, by drawing and discarding batches otherwise.
func FastForward(ds Dataset, cursor int64) error {
	if r, ok := ds.(Resumable); ok {
		return r.SeekBatch(cursor)
	}
	for i := int64(0); i < cursor; i++ {
		ds.Next()
	}
	return nil
}

// ZipfText generates token batches with Zipf-distributed ids over a fixed
// vocabulary: rank-r word has probability ∝ 1/(r+q)^s.
type ZipfText struct {
	vocab     int
	batch     int
	seqLen    int
	rng       *tensor.RNG
	cum       []float64 // cumulative distribution over vocabulary ranks
	perm      []int     // rank -> token id shuffle, so hot ids are spread out
	drawn     int64     // batches drawn (the resume cursor)
	labelSkew bool
}

// NewZipfText creates a generator: batch sentences of seqLen words each,
// over the given vocabulary, Zipf exponent s (≈1.0 for natural language).
func NewZipfText(vocab, batch, seqLen int, s float64, seed int64) *ZipfText {
	if vocab <= 1 || batch <= 0 || seqLen <= 0 {
		panic(fmt.Sprintf("data: bad ZipfText params vocab=%d batch=%d seqLen=%d", vocab, batch, seqLen))
	}
	rng := tensor.NewRNG(seed)
	cum := make([]float64, vocab)
	var total float64
	for r := 0; r < vocab; r++ {
		total += 1 / math.Pow(float64(r+2), s)
		cum[r] = total
	}
	for r := range cum {
		cum[r] /= total
	}
	return &ZipfText{
		vocab: vocab, batch: batch, seqLen: seqLen,
		rng: rng, cum: cum, perm: rng.Perm(vocab),
	}
}

func (z *ZipfText) sample() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cum)
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= z.vocab {
		lo = z.vocab - 1
	}
	return z.perm[lo]
}

// Next implements Dataset.
func (z *ZipfText) Next() Batch {
	n := z.batch * z.seqLen
	b := Batch{Tokens: make([]int, n), Labels: make([]int, n)}
	for i := range b.Tokens {
		b.Tokens[i] = z.sample()
		b.Labels[i] = z.sample()
	}
	z.drawn++
	return b
}

// Cursor implements Resumable.
func (z *ZipfText) Cursor() int64 { return z.drawn }

// SeekBatch implements Resumable: the generator replays exactly the sample
// draws the skipped batches would have made (without assembling them),
// so the stream after Seek is bit-identical to one that actually drew
// every batch.
func (z *ZipfText) SeekBatch(cursor int64) error {
	if cursor < z.drawn {
		return fmt.Errorf("data: seek to batch %d behind cursor %d (forward-only stream)", cursor, z.drawn)
	}
	samples := 2 * z.batch * z.seqLen // tokens + labels per batch
	for ; z.drawn < cursor; z.drawn++ {
		for i := 0; i < samples; i++ {
			z.sample()
		}
	}
	return nil
}

// BatchTokens implements Dataset.
func (z *ZipfText) BatchTokens() int { return z.batch * z.seqLen }

// Vocab returns the vocabulary size.
func (z *ZipfText) Vocab() int { return z.vocab }

// MeasureAlpha empirically estimates the α a dataset induces on an
// embedding of the dataset's vocabulary: the mean over iters batches of
// (unique tokens in batch) / vocab. This is the quantity Parallax uses to
// decide dense-vs-sparse treatment when α approaches 1 (§3.1).
func MeasureAlpha(d Dataset, vocab, iters int) float64 {
	var sum float64
	for i := 0; i < iters; i++ {
		b := d.Next()
		sum += tensor.AlphaOf(b.Tokens, vocab)
	}
	return sum / float64(iters)
}

// Shard wraps a dataset so that worker w of n consumes a disjoint subset of
// the stream: the Go analogue of parallax.shard (Fig. 3 line 6). Each
// worker skips the batches belonging to other workers, so the union of all
// workers' streams is the original stream, disjointly.
type Shard struct {
	base    Dataset
	worker  int
	workers int
	drawn   int64
	started bool
}

// NewShard returns worker w's shard of d split n ways.
func NewShard(d Dataset, w, n int) *Shard {
	if n <= 0 || w < 0 || w >= n {
		panic(fmt.Sprintf("data: bad shard %d/%d", w, n))
	}
	return &Shard{base: d, worker: w, workers: n}
}

// Next implements Dataset: round-robin assignment of base batches.
func (s *Shard) Next() Batch {
	if !s.started {
		for i := 0; i < s.worker; i++ {
			s.base.Next()
		}
		s.started = true
	} else {
		for i := 0; i < s.workers-1; i++ {
			s.base.Next()
		}
	}
	s.drawn++
	return s.base.Next()
}

// BatchTokens implements Dataset.
func (s *Shard) BatchTokens() int { return s.base.BatchTokens() }

// Cursor implements Resumable: the number of shard batches this worker
// has drawn (not the base stream's position).
func (s *Shard) Cursor() int64 { return s.drawn }

// SeekBatch implements Resumable by drawing and discarding shard batches,
// which keeps the skip arithmetic (including the first-call offset) in
// one place; the base dataset's own Seek cannot be used directly
// because the shard interleaves skips with reads.
func (s *Shard) SeekBatch(cursor int64) error {
	if cursor < s.drawn {
		return fmt.Errorf("data: seek to batch %d behind cursor %d (forward-only stream)", cursor, s.drawn)
	}
	for s.drawn < cursor {
		s.Next()
	}
	return nil
}

// Images generates synthetic image-classification batches: feature tensors
// plus labels, for the dense-model examples.
type Images struct {
	batch, features, classes int
	rng                      *tensor.RNG
	protos                   *tensor.Dense // one prototype per class
}

// NewImages returns a generator of linearly-separable-ish synthetic data:
// each example is a noisy class prototype, so small models can actually
// learn (the convergence experiments need a learnable signal).
func NewImages(batch, features, classes int, seed int64) *Images {
	rng := tensor.NewRNG(seed)
	return &Images{
		batch: batch, features: features, classes: classes,
		rng:    rng,
		protos: rng.RandN(1, classes, features),
	}
}

// Next returns (features [batch, features], labels [batch]).
func (im *Images) Next() (*tensor.Dense, []int) {
	x := tensor.NewDense(im.batch, im.features)
	labels := make([]int, im.batch)
	for i := 0; i < im.batch; i++ {
		c := im.rng.Intn(im.classes)
		labels[i] = c
		row := x.Data()[i*im.features : (i+1)*im.features]
		proto := im.protos.Data()[c*im.features : (c+1)*im.features]
		for j := range row {
			row[j] = proto[j] + float32(im.rng.NormFloat64()*0.3)
		}
	}
	return x, labels
}
