// Cluster resource inventory for the multi-tenant serving daemon:
// admission control charges every job against it before a Session is
// opened, so concurrent tenants can never oversubscribe the fleet's
// GPUs (DESIGN.md §13). GPUs are exclusive — a job's workers own them
// for its lifetime. PS capacity is not a second axis: servers are
// resident (one per machine, shared by all tenants via namespaces), so
// a job only needs its machine count to fit the fleet.
package cluster

import (
	"fmt"
	"sync"
)

// Demand is the resource footprint of one job against an Inventory.
type Demand struct {
	// GPUs is the worker count: machines × gpus-per-machine.
	GPUs int
	// Machines is how many machines the job spans; its namespaces live
	// on that many resident servers. Must fit the inventory's machine
	// count but is not an exclusive charge.
	Machines int
}

// DemandOf computes the footprint of a job shaped machines × gpus.
func DemandOf(machines, gpus int) Demand {
	return Demand{GPUs: machines * gpus, Machines: machines}
}

// Inventory tracks the free share of a fixed cluster capacity. Safe for
// concurrent use.
type Inventory struct {
	mu       sync.Mutex
	machines int
	gpus     int // total across all machines
	freeGPUs int
}

// NewInventory creates an inventory for a cluster of machines × gpus.
func NewInventory(machines, gpusPerMachine int) (*Inventory, error) {
	if machines < 1 || gpusPerMachine < 1 {
		return nil, fmt.Errorf("cluster: inventory needs machines >= 1 and gpus >= 1, got %d x %d", machines, gpusPerMachine)
	}
	total := machines * gpusPerMachine
	return &Inventory{machines: machines, gpus: total, freeGPUs: total}, nil
}

// Machines returns the cluster's machine count.
func (inv *Inventory) Machines() int { return inv.machines }

// CapacityGPUs returns the total GPU count.
func (inv *Inventory) CapacityGPUs() int { return inv.gpus }

// FreeGPUs returns the currently unallocated GPU count.
func (inv *Inventory) FreeGPUs() int {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	return inv.freeGPUs
}

// Admits reports whether d could EVER be admitted — it fits the total
// capacity when the cluster is idle. A demand failing Admits is
// rejected outright; one passing it but exceeding the free share is
// queued.
func (inv *Inventory) Admits(d Demand) error {
	switch {
	case d.GPUs < 1 || d.Machines < 1:
		return fmt.Errorf("cluster: demand must be positive, got %d GPUs on %d machines", d.GPUs, d.Machines)
	case d.Machines > inv.machines:
		return fmt.Errorf("cluster: job spans %d machines, cluster has %d", d.Machines, inv.machines)
	case d.GPUs > inv.gpus:
		return fmt.Errorf("cluster: job needs %d GPUs, cluster has %d", d.GPUs, inv.gpus)
	}
	return nil
}

// TryAcquire charges d against the free share. It returns false —
// without charging anything — when the free share cannot cover d;
// callers queue and retry after a Release. An inadmissible demand
// (failing Admits) is never acquirable.
func (inv *Inventory) TryAcquire(d Demand) bool {
	if inv.Admits(d) != nil {
		return false
	}
	inv.mu.Lock()
	defer inv.mu.Unlock()
	if d.GPUs > inv.freeGPUs {
		return false
	}
	inv.freeGPUs -= d.GPUs
	return true
}

// Release returns d's charge to the free share. Releasing more than
// was acquired panics: it means the scheduler double-freed a job.
func (inv *Inventory) Release(d Demand) {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	inv.freeGPUs += d.GPUs
	if inv.freeGPUs > inv.gpus {
		panic("cluster: inventory release exceeds capacity")
	}
}
