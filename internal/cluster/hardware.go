package cluster

// Hardware holds the calibrated cost constants for the simulated cluster.
// All bandwidths are bytes/second, all times seconds, all rates per second.
//
// Calibration philosophy (see DESIGN.md §5): the reproduction targets the
// *shape* of the paper's results — which architecture wins for which model
// sparsity, where partition-count optima fall, how scaling curves bend —
// not the authors' absolute words/sec. Constants below are chosen so that
// single-GPU throughputs and the PS/AR gap land in the same range as the
// paper's Table 1 / Figure 8:
//
//   - NIC: 100 Gbps InfiniBand full duplex ⇒ 12.5 GB/s per direction.
//   - NCCL ring AllReduce with GPUDirect achieves a high fraction of line
//     rate (the paper: "highly optimized communication implementation");
//     we charge NCCL traffic at 72% efficiency.
//   - PS pull/push rides a gRPC-style RPC stack through host memory; public
//     measurements of TF's PS path put its effective per-flow goodput far
//     below line rate; we charge RPC traffic at 30% efficiency.
//   - OpenMPI AllGatherv (which Horovod had to use for sparse gradients,
//     §6.1: NCCL does not provide AllGatherv) is charged at 25%.
//
// These three protocol efficiencies are the only "who is faster at moving
// bytes" knobs; everything else (transfer volumes, hot spots, overlap,
// partition-aggregation parallelism) emerges from the event simulation.
type Hardware struct {
	// NICBandwidth is the per-direction line rate of each machine's NIC.
	NICBandwidth float64
	// ProtocolEff maps each wire protocol to its achievable fraction of
	// NICBandwidth.
	ProtocolEff map[Protocol]float64
	// NetLatency is the one-way message latency, including the software
	// stack (per message, not per byte).
	NetLatency float64
	// LocalBusBandwidth is intra-machine GPU<->GPU / GPU<->CPU bandwidth
	// (PCIe/NVLink class) used for local aggregation.
	LocalBusBandwidth float64
	// CPUAggRate is the server-side element summing speed (elements/s) for
	// aggregating incoming gradients: vectorized adds once indices are
	// grouped.
	CPUAggRate float64
	// CPUAggParallelism caps how many partition streams one machine's CPUs
	// can aggregate concurrently (2×18 cores on the testbed; aggregation
	// shares them with the TF runtime, so we use a lower effective value).
	CPUAggParallelism int
	// UpdateRate is the per-element variable-update speed on a server CPU.
	UpdateRate float64
	// RowUpdateCost is the per-unique-row fixed cost of a server-side
	// sparse update (index handling, row-granular scatter). This constant
	// is fit from the paper's own Table 2: solving iter = θ0 + θ1/P + θ2·P
	// on the LM rows gives θ1 ≈ 11.2 s over ~460K unique rows, and on the
	// NMT rows θ1 ≈ 1.7 s over ~73K unique rows — both ≈ 24 µs/row, which
	// is why one constant reproduces both models' partition sensitivity.
	RowUpdateCost float64
	// StitchCost is the per-partition, per-step, per-variable cost of
	// re-concatenating partitioned results into one tensor (θ2·P in Eq. 1;
	// fit from Table 2's θ2 ≈ 1 ms over the LM model's two partitioned
	// variables).
	StitchCost float64
	// PartitionOverhead is the fixed per-partition bookkeeping cost per
	// step (managing separate arrays, more ops in the graph).
	PartitionOverhead float64
	// RPCOverhead is the fixed server-side software cost per pull/push
	// message (gRPC marshalling plus TF rendezvous/accumulator
	// bookkeeping); it is what makes 48 per-worker flows expensive and
	// per-machine local aggregation cheap.
	RPCOverhead float64
	// GPULocalReduceRate is elements/second for on-GPU gradient reductions
	// and replica updates.
	GPULocalReduceRate float64
	// GPURowCost is the per-row cost of scattering a gathered sparse
	// gradient into a GPU replica (the AR-architecture sparse apply path).
	GPURowCost float64
}

// Protocol labels which software stack a transfer uses; the fabric charges
// bandwidth according to the protocol's efficiency.
type Protocol int

const (
	// ProtoNCCL is GPUDirect collective traffic (dense AllReduce).
	ProtoNCCL Protocol = iota
	// ProtoRPC is parameter-server pull/push traffic.
	ProtoRPC
	// ProtoMPI is OpenMPI collective traffic (sparse AllGatherv).
	ProtoMPI
)

// String returns the protocol name.
func (p Protocol) String() string {
	switch p {
	case ProtoNCCL:
		return "nccl"
	case ProtoRPC:
		return "rpc"
	case ProtoMPI:
		return "mpi"
	default:
		return "unknown"
	}
}

// DefaultHardware returns constants calibrated to the paper's testbed
// (8 machines × 6 TITAN Xp, 100 Gbps InfiniBand).
func DefaultHardware() Hardware {
	return Hardware{
		NICBandwidth: 12.5e9, // 100 Gbps
		ProtocolEff: map[Protocol]float64{
			ProtoNCCL: 0.72,
			ProtoRPC:  0.45,
			ProtoMPI:  0.08, // OpenMPI AllGatherv without GPUDirect (§6.1)
		},
		NetLatency:         30e-6,
		LocalBusBandwidth:  11e9, // PCIe 3.0 x16 class
		CPUAggRate:         4e9,
		CPUAggParallelism:  16,
		UpdateRate:         1e9,
		RowUpdateCost:      48e-6,
		StitchCost:         300e-6,
		PartitionOverhead:  35e-6,
		RPCOverhead:        2e-3,
		GPULocalReduceRate: 3e9,
		GPURowCost:         1e-6,
	}
}

// Bandwidth returns the effective bytes/second for a protocol.
func (h Hardware) Bandwidth(p Protocol) float64 {
	eff, ok := h.ProtocolEff[p]
	if !ok {
		eff = 1
	}
	return h.NICBandwidth * eff
}
