package cluster

import "testing"

func TestInventoryAdmits(t *testing.T) {
	inv, err := NewInventory(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := inv.Admits(DemandOf(2, 2)); err != nil {
		t.Errorf("full-cluster job should be admissible: %v", err)
	}
	if err := inv.Admits(DemandOf(3, 1)); err == nil {
		t.Error("3-machine job admitted on 2-machine cluster")
	}
	if err := inv.Admits(DemandOf(2, 3)); err == nil {
		t.Error("6-GPU job admitted on 4-GPU cluster")
	}
	if err := inv.Admits(Demand{}); err == nil {
		t.Error("zero demand admitted")
	}
}

func TestInventoryAcquireRelease(t *testing.T) {
	inv, _ := NewInventory(2, 2)
	d := DemandOf(1, 2) // 2 GPUs
	if !inv.TryAcquire(d) {
		t.Fatal("first acquire failed on idle cluster")
	}
	if !inv.TryAcquire(d) {
		t.Fatal("second acquire failed with 2 GPUs free")
	}
	if inv.FreeGPUs() != 0 {
		t.Fatalf("free = %d, want 0", inv.FreeGPUs())
	}
	// Admissible but no free share: queued, not rejected.
	if inv.TryAcquire(d) {
		t.Fatal("acquired past capacity")
	}
	inv.Release(d)
	if inv.FreeGPUs() != 2 {
		t.Fatalf("free = %d after release, want 2", inv.FreeGPUs())
	}
	if !inv.TryAcquire(d) {
		t.Fatal("acquire failed after release")
	}
}

func TestInventoryInadmissibleNeverAcquires(t *testing.T) {
	inv, _ := NewInventory(2, 2)
	if inv.TryAcquire(DemandOf(4, 4)) {
		t.Fatal("acquired a demand exceeding total capacity")
	}
	if inv.FreeGPUs() != 4 {
		t.Fatalf("failed acquire charged the inventory: free = %d", inv.FreeGPUs())
	}
}

func TestInventoryDoubleFreePanics(t *testing.T) {
	inv, _ := NewInventory(1, 1)
	defer func() {
		if recover() == nil {
			t.Error("over-release did not panic")
		}
	}()
	inv.Release(DemandOf(1, 1))
}
