package cluster

import (
	"strings"
	"testing"
)

func TestUniform(t *testing.T) {
	r := Uniform(8, 6)
	if r.NumMachines() != 8 || r.TotalGPUs() != 48 {
		t.Fatalf("machines=%d gpus=%d", r.NumMachines(), r.TotalGPUs())
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseValid(t *testing.T) {
	r, err := Parse("# comment\nnode-0: 0,1,2\n\nnode-1:3 ,4\n")
	if err != nil {
		t.Fatal(err)
	}
	if r.NumMachines() != 2 || r.TotalGPUs() != 5 {
		t.Fatalf("machines=%d gpus=%d", r.NumMachines(), r.TotalGPUs())
	}
	if r.Machines[0].Host != "node-0" || len(r.Machines[0].GPUs) != 3 {
		t.Fatalf("machine 0 = %+v", r.Machines[0])
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"hostonly",
		"host:",
		"host:a,b",
		"host:-1",
		":0,1",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestValidateRejectsDuplicates(t *testing.T) {
	r := ResourceInfo{Machines: []Machine{
		{Host: "a", GPUs: []int{0}},
		{Host: "a", GPUs: []int{0}},
	}}
	if err := r.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate host") {
		t.Fatalf("err = %v", err)
	}
	r2 := ResourceInfo{Machines: []Machine{{Host: "a", GPUs: []int{0, 0}}}}
	if err := r2.Validate(); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("err = %v", err)
	}
}

func TestWorkerRankMapping(t *testing.T) {
	r := Uniform(3, 4)
	if got := r.WorkerID(0, 0); got != 0 {
		t.Fatalf("WorkerID(0,0) = %d", got)
	}
	if got := r.WorkerID(2, 3); got != 11 {
		t.Fatalf("WorkerID(2,3) = %d, want 11", got)
	}
	for w := 0; w < 12; w++ {
		if got, want := r.MachineOfWorker(w), w/4; got != want {
			t.Fatalf("MachineOfWorker(%d) = %d, want %d", w, got, want)
		}
	}
}

func TestDefaultHardwareSane(t *testing.T) {
	h := DefaultHardware()
	if h.NICBandwidth != 12.5e9 {
		t.Fatalf("NIC bandwidth = %v, want 12.5e9 (100 Gbps)", h.NICBandwidth)
	}
	// NCCL must be charged faster than RPC, RPC faster or equal to MPI:
	// this ordering is what drives "AR wins dense, PS wins sparse".
	if !(h.Bandwidth(ProtoNCCL) > h.Bandwidth(ProtoRPC)) {
		t.Fatal("NCCL must beat RPC bandwidth")
	}
	if !(h.Bandwidth(ProtoRPC) >= h.Bandwidth(ProtoMPI)) {
		t.Fatal("RPC must be >= MPI bandwidth")
	}
	if h.Bandwidth(Protocol(99)) != h.NICBandwidth {
		t.Fatal("unknown protocol should default to line rate")
	}
}

func TestProtocolString(t *testing.T) {
	if ProtoNCCL.String() != "nccl" || ProtoRPC.String() != "rpc" || ProtoMPI.String() != "mpi" {
		t.Fatal("bad protocol names")
	}
	if Protocol(42).String() != "unknown" {
		t.Fatal("bad unknown name")
	}
}
