// Package cluster describes the training cluster: which machines exist,
// which GPUs they carry, and the calibrated hardware constants the
// discrete-event simulation uses for compute and communication costs.
//
// The paper's testbed (§6.1): 8 machines, each with two 18-core Xeon
// E5-2695 CPUs, 256 GB RAM and 6 TITAN Xp GPUs, connected by 100 Gbps
// InfiniBand, running NCCL v2.1 for AllReduce and OpenMPI v3.0.0 for
// AllGatherv. DefaultHardware encodes that testbed.
package cluster

import (
	"fmt"
	"strconv"
	"strings"
)

// Machine identifies one host and its GPUs.
type Machine struct {
	Host string
	GPUs []int // device ordinals on the host
}

// ResourceInfo is the cluster description a user hands to the runner, the
// Go analogue of Parallax's resource_info_file (Fig. 3).
type ResourceInfo struct {
	Machines []Machine
}

// Uniform returns a cluster of n identical machines with g GPUs each,
// named m0..m{n-1}.
func Uniform(n, g int) ResourceInfo {
	ms := make([]Machine, n)
	for i := range ms {
		gpus := make([]int, g)
		for j := range gpus {
			gpus[j] = j
		}
		ms[i] = Machine{Host: fmt.Sprintf("m%d", i), GPUs: gpus}
	}
	return ResourceInfo{Machines: ms}
}

// Parse reads a resource file in "host:gpu,gpu,..." line format, e.g.
//
//	node-0:0,1,2,3,4,5
//	node-1:0,1,2,3,4,5
//
// Blank lines and lines starting with '#' are ignored.
func Parse(text string) (ResourceInfo, error) {
	var ri ResourceInfo
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		host, gpuList, ok := strings.Cut(line, ":")
		if !ok {
			return ResourceInfo{}, fmt.Errorf("cluster: line %d: want host:gpus, got %q", ln+1, line)
		}
		host = strings.TrimSpace(host)
		if host == "" {
			return ResourceInfo{}, fmt.Errorf("cluster: line %d: empty host", ln+1)
		}
		var gpus []int
		for _, f := range strings.Split(gpuList, ",") {
			f = strings.TrimSpace(f)
			if f == "" {
				continue
			}
			id, err := strconv.Atoi(f)
			if err != nil || id < 0 {
				return ResourceInfo{}, fmt.Errorf("cluster: line %d: bad GPU id %q", ln+1, f)
			}
			gpus = append(gpus, id)
		}
		if len(gpus) == 0 {
			return ResourceInfo{}, fmt.Errorf("cluster: line %d: host %s has no GPUs", ln+1, host)
		}
		ri.Machines = append(ri.Machines, Machine{Host: host, GPUs: gpus})
	}
	if len(ri.Machines) == 0 {
		return ResourceInfo{}, fmt.Errorf("cluster: no machines in resource info")
	}
	return ri, nil
}

// NumMachines returns the machine count.
func (r ResourceInfo) NumMachines() int { return len(r.Machines) }

// TotalGPUs returns the total GPU (worker) count.
func (r ResourceInfo) TotalGPUs() int {
	n := 0
	for _, m := range r.Machines {
		n += len(m.GPUs)
	}
	return n
}

// GPUsPerMachine returns the GPU count of machine i.
func (r ResourceInfo) GPUsPerMachine(i int) int { return len(r.Machines[i].GPUs) }

// Validate checks the resource info is non-empty and GPU ids are unique per
// host.
func (r ResourceInfo) Validate() error {
	if len(r.Machines) == 0 {
		return fmt.Errorf("cluster: empty resource info")
	}
	hosts := make(map[string]bool, len(r.Machines))
	for _, m := range r.Machines {
		if hosts[m.Host] {
			return fmt.Errorf("cluster: duplicate host %q", m.Host)
		}
		hosts[m.Host] = true
		if len(m.GPUs) == 0 {
			return fmt.Errorf("cluster: host %q has no GPUs", m.Host)
		}
		seen := make(map[int]bool, len(m.GPUs))
		for _, g := range m.GPUs {
			if seen[g] {
				return fmt.Errorf("cluster: host %q lists GPU %d twice", m.Host, g)
			}
			seen[g] = true
		}
	}
	return nil
}

// WorkerID maps (machine, localGPU index) to a global worker rank, packing
// machines in order. It is the rank layout used by all runtimes.
func (r ResourceInfo) WorkerID(machine, localGPU int) int {
	id := 0
	for i := 0; i < machine; i++ {
		id += len(r.Machines[i].GPUs)
	}
	return id + localGPU
}

// WorkerMachines returns the machine index of every global worker rank,
// the worker→machine map the transport topology is built from.
func (r ResourceInfo) WorkerMachines() []int {
	out := make([]int, 0, r.TotalGPUs())
	for m, machine := range r.Machines {
		for range machine.GPUs {
			out = append(out, m)
		}
	}
	return out
}

// MachineOfWorker returns the machine index hosting global worker rank w.
func (r ResourceInfo) MachineOfWorker(w int) int {
	for i, m := range r.Machines {
		if w < len(m.GPUs) {
			return i
		}
		w -= len(m.GPUs)
	}
	panic(fmt.Sprintf("cluster: worker rank %d out of range", w))
}
