package checkpoint

import (
	"os"
	"path/filepath"
	"testing"

	"parallax/internal/transport"
)

func TestMembersRoundTrip(t *testing.T) {
	root := t.TempDir()
	if m, err := ReadMembers(root); err != nil || m != nil {
		t.Fatalf("fresh root: members %v err %v, want nil/nil", m, err)
	}
	want := &transport.Membership{
		Epoch: 2, Step: 30, Cursor: 120, Parts: 8, Joiner: 1,
		Members: []transport.Member{
			{Addr: "127.0.0.1:7001", GPUs: 2},
			{Addr: "127.0.0.1:7003", GPUs: 2},
		},
	}
	if err := WriteMembers(root, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMembers(root)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != want.Epoch || got.Joiner != want.Joiner || len(got.Members) != 2 ||
		got.Members[1].Addr != "127.0.0.1:7003" {
		t.Fatalf("ReadMembers = %+v", got)
	}
	// A corrupt record is an error, not a nil (the caller must not
	// silently fall back to launch flags on a torn root).
	if err := os.WriteFile(filepath.Join(root, membersFile), []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMembers(root); err == nil {
		t.Fatal("corrupt MEMBERS accepted")
	}
}

func TestMembershipRecords(t *testing.T) {
	root := t.TempDir()
	rec := func(epoch, proposer, n int) *transport.Membership {
		members := make([]transport.Member, n)
		for i := range members {
			members[i] = transport.Member{Addr: filepath.Join("m", string(rune('a'+i))), GPUs: 1}
		}
		return &transport.Membership{Epoch: epoch, Parts: 1, Joiner: -1, Members: members}
	}
	// Two proposers publish for the same epoch without clobbering.
	if err := WriteMembershipRecord(root, 0, rec(1, 0, 2)); err != nil {
		t.Fatal(err)
	}
	if err := WriteMembershipRecord(root, 1, rec(1, 1, 3)); err != nil {
		t.Fatal(err)
	}
	m0, err := ReadMembershipRecord(root, 1, 0)
	if err != nil || len(m0.Members) != 2 {
		t.Fatalf("proposer 0 record: %+v err %v", m0, err)
	}
	m1, err := ReadMembershipRecord(root, 1, 1)
	if err != nil || len(m1.Members) != 3 {
		t.Fatalf("proposer 1 record: %+v err %v", m1, err)
	}
	// Re-publishing overwrites (a retried proposal at the same epoch).
	if err := WriteMembershipRecord(root, 0, rec(1, 0, 3)); err != nil {
		t.Fatal(err)
	}
	if m0, err = ReadMembershipRecord(root, 1, 0); err != nil || len(m0.Members) != 3 {
		t.Fatalf("overwritten record: %+v err %v", m0, err)
	}
	if _, err := ReadMembershipRecord(root, 2, 0); err == nil {
		t.Fatal("missing record read succeeded")
	}
	// Pruning removes only strictly-older epochs.
	if err := WriteMembershipRecord(root, 0, rec(3, 0, 2)); err != nil {
		t.Fatal(err)
	}
	if err := PruneMembershipRecords(root, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMembershipRecord(root, 1, 0); err == nil {
		t.Fatal("pruned record still readable")
	}
	if _, err := ReadMembershipRecord(root, 3, 0); err != nil {
		t.Fatalf("current-epoch record pruned: %v", err)
	}
}
