package checkpoint

import (
	"errors"
	"math"
	"os"
	"testing"

	"parallax/internal/cluster"
	"parallax/internal/core"
	"parallax/internal/errs"
	"parallax/internal/tensor"
)

func sampleShard() (Meta, []Record) {
	meta := Meta{
		Machine: 1, Machines: 2, Step: 7, Cursor: 28, Parts: 3,
		DecisionSource: "online",
		TopoFP:         "machines=2 gpus=2,2",
		PlanFP:         "fnv64a:0123456789abcdef",
	}
	val := tensor.NewDense(4, 3)
	slot := tensor.NewDense(4, 3)
	for i := range val.Data() {
		val.Data()[i] = float32(i) * 0.5
		slot.Data()[i] = -float32(i)
	}
	bias := tensor.NewDense(5)
	for i := range bias.Data() {
		bias.Data()[i] = float32(math.Pi) * float32(i)
	}
	return meta, []Record{
		{Kind: KindServerPart, Name: "embedding", Part: 2, Value: val,
			SlotNames: []string{"velocity"}, Slots: []*tensor.Dense{slot}},
		{Kind: KindReplica, Name: "softmax/bias", Value: bias},
	}
}

// TestEncodeDecodeRoundTrip: a shard survives the codec bit-for-bit —
// metadata, shapes, values, and slot state.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	meta, recs := sampleShard()
	b, err := Encode(meta, recs)
	if err != nil {
		t.Fatal(err)
	}
	gotMeta, gotRecs, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta != meta {
		t.Fatalf("meta = %+v, want %+v", gotMeta, meta)
	}
	if len(gotRecs) != len(recs) {
		t.Fatalf("%d records, want %d", len(gotRecs), len(recs))
	}
	for i, want := range recs {
		got := gotRecs[i]
		if got.Kind != want.Kind || got.Name != want.Name || got.Part != want.Part {
			t.Fatalf("record %d header %+v, want %+v", i, got, want)
		}
		for j, v := range want.Value.Data() {
			if math.Float32bits(got.Value.Data()[j]) != math.Float32bits(v) {
				t.Fatalf("record %d value[%d] = %x, want %x", i, j,
					math.Float32bits(got.Value.Data()[j]), math.Float32bits(v))
			}
		}
		if len(got.Slots) != len(want.Slots) {
			t.Fatalf("record %d has %d slots, want %d", i, len(got.Slots), len(want.Slots))
		}
		for k := range want.Slots {
			if got.SlotNames[k] != want.SlotNames[k] {
				t.Fatalf("record %d slot %d named %q, want %q", i, k, got.SlotNames[k], want.SlotNames[k])
			}
			for j, v := range want.Slots[k].Data() {
				if math.Float32bits(got.Slots[k].Data()[j]) != math.Float32bits(v) {
					t.Fatalf("record %d slot %d[%d] mismatch", i, k, j)
				}
			}
		}
	}
}

// TestDecodeRejectsCorruption: every truncation of a valid shard and the
// classic corruptions (bad magic, future version, trailing garbage) are
// errors, not panics; version problems match errs.ErrCheckpointVersion.
func TestDecodeRejectsCorruption(t *testing.T) {
	meta, recs := sampleShard()
	b, err := Encode(meta, recs)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(b); n++ {
		if _, _, err := Decode(b[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded successfully", n, len(b))
		}
	}
	bad := append([]byte(nil), b...)
	bad[0] = 'X'
	if _, _, err := Decode(bad); !errors.Is(err, errs.ErrCheckpointVersion) {
		t.Fatalf("bad magic error = %v, want ErrCheckpointVersion", err)
	}
	bad = append([]byte(nil), b...)
	bad[7] = VersionCompressed + 1
	if _, _, err := Decode(bad); !errors.Is(err, errs.ErrCheckpointVersion) {
		t.Fatalf("future version error = %v, want ErrCheckpointVersion", err)
	}
	if _, _, err := Decode(append(append([]byte(nil), b...), 0xEE)); err == nil {
		t.Fatal("trailing byte decoded successfully")
	}
}

// TestWriteReadShard covers the file layer: atomic write, path scheme,
// machine cross-check.
func TestWriteReadShard(t *testing.T) {
	dir := t.TempDir()
	meta, recs := sampleShard()
	if err := WriteShard(dir, meta, recs); err != nil {
		t.Fatal(err)
	}
	gotMeta, gotRecs, err := ReadShard(dir, meta.Machine)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta != meta || len(gotRecs) != len(recs) {
		t.Fatalf("read back %+v / %d records", gotMeta, len(gotRecs))
	}
	if _, _, err := ReadShard(dir, 0); !os.IsNotExist(errUnwrapAll(err)) {
		t.Fatalf("missing shard error = %v", err)
	}
	// A shard renamed to the wrong machine slot is rejected.
	if err := os.Rename(ShardPath(dir, meta.Machine), ShardPath(dir, 0)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadShard(dir, 0); err == nil {
		t.Fatal("mis-slotted shard read successfully")
	}
}

func errUnwrapAll(err error) error {
	for {
		u := errors.Unwrap(err)
		if u == nil {
			return err
		}
		err = u
	}
}

// TestFingerprintsDiscriminate: the fingerprints change exactly when the
// topology or the plan changes.
func TestFingerprintsDiscriminate(t *testing.T) {
	if TopoFingerprint(cluster.Uniform(2, 2)) == TopoFingerprint(cluster.Uniform(2, 3)) {
		t.Fatal("topology fingerprint ignores GPU count")
	}
	if TopoFingerprint(cluster.Uniform(2, 2)) != TopoFingerprint(cluster.Uniform(2, 2)) {
		t.Fatal("topology fingerprint unstable")
	}
	mk := func(parts int) *core.Plan {
		return &core.Plan{Arch: core.ArchHybrid, Assignments: []core.Assignment{
			{VarInfo: core.VarInfo{Name: "emb", Sparse: true},
				Method: core.MethodPS, Partitions: parts, Servers: make([]int, parts)},
		}}
	}
	if PlanFingerprint(mk(2)) == PlanFingerprint(mk(3)) {
		t.Fatal("plan fingerprint ignores partition count")
	}
	if PlanFingerprint(mk(2)) != PlanFingerprint(mk(2)) {
		t.Fatal("plan fingerprint unstable")
	}
}

// TestVersionGating: uncompressed shards stay version 1, byte-identical
// to builds that predate wire compression; a compression fingerprint or
// residual records promote the file to version 2, which round-trips
// both.
func TestVersionGating(t *testing.T) {
	meta, recs := sampleShard()
	b1, err := Encode(meta, recs)
	if err != nil {
		t.Fatal(err)
	}
	if b1[7] != Version {
		t.Fatalf("uncompressed shard wrote version %d, want %d", b1[7], Version)
	}
	// "none" is the canonical uncompressed fingerprint — still version 1,
	// byte-identical.
	meta.Compression = "none"
	bNone, err := Encode(meta, recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(bNone) != len(b1) {
		t.Fatalf("Compression=\"none\" changed the encoding: %d vs %d bytes", len(bNone), len(b1))
	}
	for i := range b1 {
		if bNone[i] != b1[i] {
			t.Fatalf("Compression=\"none\" changed byte %d", i)
		}
	}

	meta.Compression = "dense=f16,topk=0.1,psdense=f32,pssparse=f32,delta=false"
	resid := tensor.NewDense(6)
	for i := range resid.Data() {
		resid.Data()[i] = float32(i) * 0.125
	}
	recs = append(recs, Record{Kind: KindResidual, Name: "0", Part: 1, Value: resid})
	b2, err := Encode(meta, recs)
	if err != nil {
		t.Fatal(err)
	}
	if b2[7] != VersionCompressed {
		t.Fatalf("compressed shard wrote version %d, want %d", b2[7], VersionCompressed)
	}
	meta2, recs2, err := Decode(b2)
	if err != nil {
		t.Fatal(err)
	}
	if meta2.Compression != meta.Compression {
		t.Fatalf("compression fingerprint = %q, want %q", meta2.Compression, meta.Compression)
	}
	last := recs2[len(recs2)-1]
	if last.Kind != KindResidual || last.Name != "0" || last.Part != 1 {
		t.Fatalf("residual record decoded as %+v", last)
	}
	for i, v := range resid.Data() {
		if math.Float32bits(last.Value.Data()[i]) != math.Float32bits(v) {
			t.Fatalf("residual element %d mismatch", i)
		}
	}
	// Residual records alone also force version 2...
	metaPlain, _ := sampleShard()
	bR, err := Encode(metaPlain, recs)
	if err != nil {
		t.Fatal(err)
	}
	if bR[7] != VersionCompressed {
		t.Fatalf("residual-bearing shard wrote version %d", bR[7])
	}
	// ...and a hand-built version-1 file may not carry them.
	bad := append([]byte(nil), bR...)
	bad[7] = Version
	if _, _, err := Decode(bad); err == nil {
		t.Fatal("version-1 file with residual records decoded successfully")
	}
}
