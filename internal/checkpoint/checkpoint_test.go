package checkpoint

import (
	"errors"
	"math"
	"os"
	"testing"

	"parallax/internal/cluster"
	"parallax/internal/core"
	"parallax/internal/errs"
	"parallax/internal/tensor"
)

func sampleShard() (Meta, []Record) {
	meta := Meta{
		Machine: 1, Machines: 2, Step: 7, Cursor: 28, Parts: 3,
		DecisionSource: "online",
		TopoFP:         "machines=2 gpus=2,2",
		PlanFP:         "fnv64a:0123456789abcdef",
	}
	val := tensor.NewDense(4, 3)
	slot := tensor.NewDense(4, 3)
	for i := range val.Data() {
		val.Data()[i] = float32(i) * 0.5
		slot.Data()[i] = -float32(i)
	}
	bias := tensor.NewDense(5)
	for i := range bias.Data() {
		bias.Data()[i] = float32(math.Pi) * float32(i)
	}
	return meta, []Record{
		{Kind: KindServerPart, Name: "embedding", Part: 2, Value: val,
			SlotNames: []string{"velocity"}, Slots: []*tensor.Dense{slot}},
		{Kind: KindReplica, Name: "softmax/bias", Value: bias},
	}
}

// TestEncodeDecodeRoundTrip: a shard survives the codec bit-for-bit —
// metadata, shapes, values, and slot state.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	meta, recs := sampleShard()
	b, err := Encode(meta, recs)
	if err != nil {
		t.Fatal(err)
	}
	gotMeta, gotRecs, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta != meta {
		t.Fatalf("meta = %+v, want %+v", gotMeta, meta)
	}
	if len(gotRecs) != len(recs) {
		t.Fatalf("%d records, want %d", len(gotRecs), len(recs))
	}
	for i, want := range recs {
		got := gotRecs[i]
		if got.Kind != want.Kind || got.Name != want.Name || got.Part != want.Part {
			t.Fatalf("record %d header %+v, want %+v", i, got, want)
		}
		for j, v := range want.Value.Data() {
			if math.Float32bits(got.Value.Data()[j]) != math.Float32bits(v) {
				t.Fatalf("record %d value[%d] = %x, want %x", i, j,
					math.Float32bits(got.Value.Data()[j]), math.Float32bits(v))
			}
		}
		if len(got.Slots) != len(want.Slots) {
			t.Fatalf("record %d has %d slots, want %d", i, len(got.Slots), len(want.Slots))
		}
		for k := range want.Slots {
			if got.SlotNames[k] != want.SlotNames[k] {
				t.Fatalf("record %d slot %d named %q, want %q", i, k, got.SlotNames[k], want.SlotNames[k])
			}
			for j, v := range want.Slots[k].Data() {
				if math.Float32bits(got.Slots[k].Data()[j]) != math.Float32bits(v) {
					t.Fatalf("record %d slot %d[%d] mismatch", i, k, j)
				}
			}
		}
	}
}

// TestDecodeRejectsCorruption: every truncation of a valid shard and the
// classic corruptions (bad magic, future version, trailing garbage) are
// errors, not panics; version problems match errs.ErrCheckpointVersion.
func TestDecodeRejectsCorruption(t *testing.T) {
	meta, recs := sampleShard()
	b, err := Encode(meta, recs)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(b); n++ {
		if _, _, err := Decode(b[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded successfully", n, len(b))
		}
	}
	bad := append([]byte(nil), b...)
	bad[0] = 'X'
	if _, _, err := Decode(bad); !errors.Is(err, errs.ErrCheckpointVersion) {
		t.Fatalf("bad magic error = %v, want ErrCheckpointVersion", err)
	}
	bad = append([]byte(nil), b...)
	bad[7] = Version + 1
	if _, _, err := Decode(bad); !errors.Is(err, errs.ErrCheckpointVersion) {
		t.Fatalf("future version error = %v, want ErrCheckpointVersion", err)
	}
	if _, _, err := Decode(append(append([]byte(nil), b...), 0xEE)); err == nil {
		t.Fatal("trailing byte decoded successfully")
	}
}

// TestWriteReadShard covers the file layer: atomic write, path scheme,
// machine cross-check.
func TestWriteReadShard(t *testing.T) {
	dir := t.TempDir()
	meta, recs := sampleShard()
	if err := WriteShard(dir, meta, recs); err != nil {
		t.Fatal(err)
	}
	gotMeta, gotRecs, err := ReadShard(dir, meta.Machine)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta != meta || len(gotRecs) != len(recs) {
		t.Fatalf("read back %+v / %d records", gotMeta, len(gotRecs))
	}
	if _, _, err := ReadShard(dir, 0); !os.IsNotExist(errUnwrapAll(err)) {
		t.Fatalf("missing shard error = %v", err)
	}
	// A shard renamed to the wrong machine slot is rejected.
	if err := os.Rename(ShardPath(dir, meta.Machine), ShardPath(dir, 0)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadShard(dir, 0); err == nil {
		t.Fatal("mis-slotted shard read successfully")
	}
}

func errUnwrapAll(err error) error {
	for {
		u := errors.Unwrap(err)
		if u == nil {
			return err
		}
		err = u
	}
}

// TestFingerprintsDiscriminate: the fingerprints change exactly when the
// topology or the plan changes.
func TestFingerprintsDiscriminate(t *testing.T) {
	if TopoFingerprint(cluster.Uniform(2, 2)) == TopoFingerprint(cluster.Uniform(2, 3)) {
		t.Fatal("topology fingerprint ignores GPU count")
	}
	if TopoFingerprint(cluster.Uniform(2, 2)) != TopoFingerprint(cluster.Uniform(2, 2)) {
		t.Fatal("topology fingerprint unstable")
	}
	mk := func(parts int) *core.Plan {
		return &core.Plan{Arch: core.ArchHybrid, Assignments: []core.Assignment{
			{VarInfo: core.VarInfo{Name: "emb", Sparse: true},
				Method: core.MethodPS, Partitions: parts, Servers: make([]int, parts)},
		}}
	}
	if PlanFingerprint(mk(2)) == PlanFingerprint(mk(3)) {
		t.Fatal("plan fingerprint ignores partition count")
	}
	if PlanFingerprint(mk(2)) != PlanFingerprint(mk(2)) {
		t.Fatal("plan fingerprint unstable")
	}
}
