package checkpoint

import (
	"os"
	"path/filepath"
	"testing"
)

// writeStep fabricates an auto-checkpoint step directory with shard
// files for the given machines (content is irrelevant to the directory
// protocol under test).
func writeStep(t *testing.T, root string, step int, machines ...int) string {
	t.Helper()
	dir := StepDir(root, step)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, m := range machines {
		if err := os.WriteFile(ShardPath(dir, m), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestStepDirFormat(t *testing.T) {
	got := StepDir("/auto", 17)
	want := filepath.Join("/auto", "step-00000017")
	if got != want {
		t.Fatalf("StepDir = %q, want %q", got, want)
	}
}

func TestLatestCompleteEmpty(t *testing.T) {
	root := t.TempDir()
	step, _, err := LatestComplete(root, 2)
	if err != nil || step != -1 {
		t.Fatalf("empty root: step %d err %v, want -1 nil", step, err)
	}
	// A missing root is the same as an empty one (first run).
	step, _, err = LatestComplete(filepath.Join(root, "absent"), 2)
	if err != nil || step != -1 {
		t.Fatalf("missing root: step %d err %v, want -1 nil", step, err)
	}
}

// LatestComplete must skip directories missing any machine's shard — a
// save a peer died in the middle of is not a restore point.
func TestLatestCompleteSkipsIncomplete(t *testing.T) {
	root := t.TempDir()
	writeStep(t, root, 10, 0, 1)
	writeStep(t, root, 20, 0, 1)
	writeStep(t, root, 30, 0) // machine 1's shard never landed

	step, dir, err := LatestComplete(root, 2)
	if err != nil {
		t.Fatal(err)
	}
	if step != 20 || dir != StepDir(root, 20) {
		t.Fatalf("latest complete = step %d dir %q, want 20 %q", step, dir, StepDir(root, 20))
	}
	// Junk that is not a step directory is ignored.
	if err := os.WriteFile(filepath.Join(root, "EPOCH"), []byte("1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(root, "notes"), 0o755); err != nil {
		t.Fatal(err)
	}
	if step, _, err = LatestComplete(root, 2); err != nil || step != 20 {
		t.Fatalf("with junk: step %d err %v, want 20 nil", step, err)
	}
}

// PruneAuto keeps the newest `keep` complete saves and sweeps both the
// older complete ones and incomplete debris left by crashed saves.
func TestPruneAuto(t *testing.T) {
	root := t.TempDir()
	for _, s := range []int{10, 20, 30, 40} {
		writeStep(t, root, s, 0, 1)
	}
	writeStep(t, root, 25, 0) // incomplete debris older than step 40

	if err := PruneAuto(root, 2, 2); err != nil {
		t.Fatal(err)
	}
	for _, s := range []int{30, 40} {
		if !stepComplete(StepDir(root, s), 2) {
			t.Fatalf("step %d pruned or truncated, want kept complete", s)
		}
	}
	for _, s := range []int{10, 20, 25} {
		if _, err := os.Stat(StepDir(root, s)); !os.IsNotExist(err) {
			t.Fatalf("step %d survived the prune (err %v)", s, err)
		}
	}
}

// An in-flight save (incomplete but NEWER than every complete save)
// must survive the prune: the peer writing it may still finish.
func TestPruneAutoKeepsNewestIncomplete(t *testing.T) {
	root := t.TempDir()
	writeStep(t, root, 10, 0, 1)
	writeStep(t, root, 20, 0) // a peer is mid-save right now

	if err := PruneAuto(root, 2, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(StepDir(root, 20)); err != nil {
		t.Fatalf("in-flight save at step 20 was pruned: %v", err)
	}
	if _, err := os.Stat(StepDir(root, 10)); err != nil {
		t.Fatalf("only complete save at step 10 was pruned: %v", err)
	}
}

func TestEpochRoundtrip(t *testing.T) {
	root := t.TempDir()
	// Absent file reads as epoch 0 — a fresh cluster.
	if e, err := ReadEpoch(root); err != nil || e != 0 {
		t.Fatalf("fresh root epoch %d err %v, want 0 nil", e, err)
	}
	for _, e := range []int{1, 2, 7} {
		if err := WriteEpoch(root, e); err != nil {
			t.Fatal(err)
		}
		got, err := ReadEpoch(root)
		if err != nil || got != e {
			t.Fatalf("epoch roundtrip: got %d err %v, want %d", got, err, e)
		}
	}
	// WriteEpoch creates the root if needed (first save may come later).
	fresh := filepath.Join(root, "sub")
	if err := WriteEpoch(fresh, 3); err != nil {
		t.Fatal(err)
	}
	if e, _ := ReadEpoch(fresh); e != 3 {
		t.Fatalf("epoch in created root = %d, want 3", e)
	}
}

func TestReadEpochMalformed(t *testing.T) {
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "EPOCH"), []byte("not-a-number\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadEpoch(root); err == nil {
		t.Fatal("malformed EPOCH file read without error")
	}
}
