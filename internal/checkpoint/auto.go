package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Auto-checkpoint layout: the session saves periodic full checkpoints
// under one root directory, one subdirectory per saved step —
//
//	root/
//	  EPOCH            current fabric generation (recovery protocol)
//	  step-00000010/   a normal checkpoint directory (machine-*.ckpt)
//	  step-00000020/
//
// A step directory is complete once every machine's shard is present;
// WriteShard's atomic rename makes each shard all-or-nothing, so "all
// files exist" is the completeness criterion. Survivors and restarted
// agents independently scan the root and restore from the latest
// complete step, then verify cluster-wide agreement on it over the
// fresh fabric.

const epochFile = "EPOCH"

// StepDir returns the auto-checkpoint directory for one saved step.
func StepDir(root string, step int) string {
	return filepath.Join(root, fmt.Sprintf("step-%08d", step))
}

// LatestComplete scans root for the newest step directory containing
// every machine's shard. It returns step = -1 (no error) when the root
// does not exist or holds no complete checkpoint.
func LatestComplete(root string, machines int) (step int, dir string, err error) {
	ents, rerr := os.ReadDir(root)
	if rerr != nil {
		if os.IsNotExist(rerr) {
			return -1, "", nil
		}
		return -1, "", rerr
	}
	steps := make([]int, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		n, ok := parseStepDir(e.Name())
		if !ok {
			continue
		}
		steps = append(steps, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(steps)))
	for _, n := range steps {
		d := StepDir(root, n)
		if stepComplete(d, machines) {
			return n, d, nil
		}
	}
	return -1, "", nil
}

func parseStepDir(name string) (int, bool) {
	rest, ok := strings.CutPrefix(name, "step-")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

func stepComplete(dir string, machines int) bool {
	for m := 0; m < machines; m++ {
		if _, err := os.Stat(ShardPath(dir, m)); err != nil {
			return false
		}
	}
	return true
}

// PruneAuto removes the oldest complete step directories beyond the
// newest keep, plus any incomplete directory older than the newest
// complete one (debris from a save interrupted by the very failure a
// later recovery restored past). Incomplete directories newer than the
// latest complete step are left alone — a peer may still be writing its
// shard there.
func PruneAuto(root string, machines, keep int) error {
	if keep < 1 {
		keep = 1
	}
	ents, err := os.ReadDir(root)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	var complete, incomplete []int
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		n, ok := parseStepDir(e.Name())
		if !ok {
			continue
		}
		if stepComplete(StepDir(root, n), machines) {
			complete = append(complete, n)
		} else {
			incomplete = append(incomplete, n)
		}
	}
	sort.Ints(complete)
	var firstErr error
	rm := func(step int) {
		if err := os.RemoveAll(StepDir(root, step)); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for len(complete) > keep {
		rm(complete[0])
		complete = complete[1:]
	}
	if len(complete) > 0 {
		newest := complete[len(complete)-1]
		for _, n := range incomplete {
			if n < newest {
				rm(n)
			}
		}
	}
	return firstErr
}

// ReadEpoch returns the fabric generation recorded in root, 0 when the
// root or the record does not exist yet (a fresh run's first epoch).
func ReadEpoch(root string) (int, error) {
	b, err := os.ReadFile(filepath.Join(root, epochFile))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	n, err := strconv.Atoi(strings.TrimSpace(string(b)))
	if err != nil || n < 0 {
		return 0, fmt.Errorf("checkpoint: malformed epoch record in %s: %q", root, b)
	}
	return n, nil
}

// WriteEpoch atomically records the fabric generation in root, creating
// the root if needed. Survivors write epoch+1 before re-dialing; a
// restarted agent reads it before joining, and re-reads on
// ErrEpochMismatch. Concurrent writers always write the same value
// (everyone computes lastEpoch+1 from the same record), so the atomic
// rename makes any interleaving safe.
func WriteEpoch(root string, epoch int) error {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(root, epochFile+".tmp*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.WriteString(strconv.Itoa(epoch) + "\n"); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Rename(name, filepath.Join(root, epochFile))
}
