package checkpoint

import "testing"

// FuzzCheckpointDecode feeds arbitrary bytes to the shard decoder: the
// contract under fuzz is "error or success, never panic, never an
// allocation larger than the input justifies". The seed corpus includes
// a valid shard so mutations explore deep record paths, not just the
// header checks.
func FuzzCheckpointDecode(f *testing.F) {
	meta, recs := sampleShard()
	if valid, err := Encode(meta, recs); err == nil {
		f.Add(valid)
		// A truncated and a bit-flipped variant seed the interesting
		// failure regions directly.
		f.Add(valid[:len(valid)/2])
		flipped := append([]byte(nil), valid...)
		flipped[len(flipped)/3] ^= 0x40
		f.Add(flipped)
	}
	f.Add([]byte("PLXCKPT"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		meta, recs, err := Decode(b)
		if err != nil {
			return
		}
		// A successful decode must be internally consistent enough to
		// re-encode.
		if _, err := Encode(meta, recs); err != nil {
			t.Fatalf("decoded shard does not re-encode: %v", err)
		}
	})
}
