package checkpoint

// Durable membership records for elastic clusters (DESIGN.md §14),
// living next to EPOCH in the auto-checkpoint root:
//
//	root/
//	  EPOCH                        current fabric generation
//	  MEMBERS                      agreed membership of that generation
//	  membership/
//	    epoch-00000002-from-001    machine 1's proposal for epoch 2
//
// MEMBERS is the authoritative member list: a restarted agent reads it
// before rendezvous and reindexes itself by its own address (or learns
// it was shrunk away). Proposal records are written by a proposer
// BEFORE its membership agreement round, so once the cluster max-folds
// a winner, every survivor can read the winner's full member list off
// the shared root — the scalar agreement only has to carry the winner's
// identity. All writes use the same atomic temp+rename as WriteEpoch;
// concurrent writers of MEMBERS write identical bytes (everyone adopts
// the same agreed record), so any interleaving is safe.

import (
	"fmt"
	"os"
	"path/filepath"

	"parallax/internal/transport"
)

const (
	membersFile   = "MEMBERS"
	membershipDir = "membership"
)

// ReadMembers returns the membership recorded in root, nil (no error)
// when none has been recorded yet — a cluster still running on its
// launch flags.
func ReadMembers(root string) (*transport.Membership, error) {
	b, err := os.ReadFile(filepath.Join(root, membersFile))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	m, err := transport.DecodeMembership(b)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: malformed MEMBERS record in %s: %w", root, err)
	}
	return m, nil
}

// WriteMembers atomically records the agreed membership in root.
func WriteMembers(root string, m *transport.Membership) error {
	return writeAtomic(root, membersFile, transport.AppendMembership(nil, m))
}

// recordName returns the proposal-record filename for one (epoch,
// proposer) pair; including the proposer keeps concurrent proposals for
// the same epoch from clobbering each other.
func recordName(epoch, proposer int) string {
	return fmt.Sprintf("epoch-%08d-from-%03d", epoch, proposer)
}

// WriteMembershipRecord durably publishes a machine's membership
// proposal for an epoch, before the agreement round that may elect it.
func WriteMembershipRecord(root string, proposer int, m *transport.Membership) error {
	dir := filepath.Join(root, membershipDir)
	return writeAtomic(dir, recordName(m.Epoch, proposer), transport.AppendMembership(nil, m))
}

// ReadMembershipRecord reads the proposal a machine published for an
// epoch — the step survivors take after the agreement elects a winner.
func ReadMembershipRecord(root string, epoch, proposer int) (*transport.Membership, error) {
	path := filepath.Join(root, membershipDir, recordName(epoch, proposer))
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m, err := transport.DecodeMembership(b)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: malformed membership record %s: %w", path, err)
	}
	return m, nil
}

// PruneMembershipRecords removes proposal records for epochs before the
// given one — transition debris no survivor can need again.
func PruneMembershipRecords(root string, beforeEpoch int) error {
	dir := filepath.Join(root, membershipDir)
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	var firstErr error
	for _, e := range ents {
		var epoch, proposer int
		if _, err := fmt.Sscanf(e.Name(), "epoch-%d-from-%d", &epoch, &proposer); err != nil {
			continue
		}
		if epoch < beforeEpoch {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// writeAtomic is the shared temp+rename write behind every control file
// in the root (see WriteEpoch).
func writeAtomic(dir, base string, data []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Rename(name, filepath.Join(dir, base))
}
