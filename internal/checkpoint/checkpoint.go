// Package checkpoint is the versioned on-disk format behind the public
// Session.Save / OpenFromCheckpoint API: a binary serialization of one
// training job's full state — variable values, optimizer slot state,
// the step counter, and the dataset cursor — sharded one file per
// cluster machine, so every agent of a distributed run writes exactly
// its own machine's state and a restore reassembles the job losslessly
// (bit-identical resume, DESIGN.md §10).
//
// # On-disk layout
//
// A checkpoint is a directory holding one shard per machine,
// machine-<m>.ckpt. Shard m carries the parameter-server partitions
// machine m's server hosts; shard 0 additionally carries the
// replica-managed (AllReduce / AllGatherv) variables, which are
// bit-identical on every replica and therefore stored once. Every shard
// repeats the job metadata (step, cursor, partition count, decision,
// fingerprints), so each shard is self-validating.
//
// A shard file is little-endian binary, reusing the wire codec's
// primitives (transport.AppendF32s / transport.Decoder — float payloads
// are the same IEEE-754 bit patterns the TCP fabric frames, which is
// what makes the save path serialize straight from snapshot tensors):
//
//	magic "PLXCKPT" | u8 version (=1, or 2 when compression state exists)
//	u32 machine | u32 machines | u64 step | u64 cursor | u32 parts
//	u8 decision flags (bit0: search still pending) | str source
//	str topoFP | str planFP
//	str compressionFP          (version 2 only)
//	u32 nrecords, each:
//	  u8 kind (1 replica variable, 2 server partition, 3 residual [v2])
//	  str name | u32 part (kind 2/3; 0 otherwise)
//	  u8 rank | rank × u32 dims
//	  u32 n | n × f32            (value)
//	  u32 nslots, each: str slot | u32 n | n × f32
//
// where str is u16 length + bytes. A job saved under CompressionNone
// with no error-feedback residuals writes version 1, byte-identical to
// builds that predate wire compression; a compressed job writes version
// 2, which appends the policy fingerprint to the metadata and may carry
// KindResidual records (one per worker × fusion bucket of top-k
// error-feedback state). Decoding validates every declared length
// against the remaining bytes before allocating, so truncated or corrupt
// files yield errors, never panics (FuzzCheckpointDecode pins this). An
// unrecognized magic or version fails with errs.ErrCheckpointVersion;
// topology/plan fingerprint mismatches are the caller's to check
// (errs.ErrTopologyMismatch), compression fingerprint mismatches
// likewise (errs.ErrCompressionMismatch).
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"strings"

	"parallax/internal/cluster"
	"parallax/internal/core"
	"parallax/internal/errs"
	"parallax/internal/tensor"
	"parallax/internal/transport"
)

// Version is the baseline checkpoint format version; VersionCompressed
// adds the compression fingerprint and residual records. Encode picks
// the lowest version that can represent the shard, so uncompressed jobs
// keep writing files older builds read.
const (
	Version           = 1
	VersionCompressed = 2
)

// magic opens every shard file.
var magic = [7]byte{'P', 'L', 'X', 'C', 'K', 'P', 'T'}

// maxRank bounds a serialized tensor's rank (graphs here are rank ≤ 2;
// the slack is format headroom, the bound is the decode-side guard).
const maxRank = 8

// RecordKind discriminates checkpoint records.
type RecordKind uint8

const (
	// KindReplica is a replica-managed (AllReduce / AllGatherv) variable:
	// the full value plus the replica optimizer's slot state, stored once
	// in shard 0 because every replica holds identical bits.
	KindReplica RecordKind = 1
	// KindServerPart is one parameter-server partition hosted by this
	// shard's machine: the partition value plus the server optimizer's
	// slot state, both in partition-local row coordinates.
	KindServerPart RecordKind = 2
	// KindResidual is one worker's top-k error-feedback residual for one
	// fusion bucket (Name is the worker's global rank in decimal, Part
	// the bucket index; no slots). Version 2 files only; each worker's
	// residuals live in its machine's shard.
	KindResidual RecordKind = 3
)

// Meta is the job-level state every shard repeats.
type Meta struct {
	// Machine is this shard's machine index; Machines the cluster size.
	Machine, Machines int
	// Step is the number of completed training steps.
	Step int64
	// Cursor is the number of dataset batches the step driver has drawn
	// (workers × steps for the built-in loop); restore fast-forwards an
	// identically seeded dataset to it.
	Cursor int64
	// Parts is the sparse partition count in effect at save time —
	// restore rebuilds the plan with exactly this count, even if the
	// original run searched for it.
	Parts int
	// DecisionSource / DecisionPending record how Parts was chosen
	// ("fixed", "simulated", "online") and whether an online search had
	// not yet run at save time.
	DecisionSource  string
	DecisionPending bool
	// TopoFP and PlanFP fingerprint the cluster layout and the
	// synchronization plan; restore recomputes both and refuses a
	// mismatch (errs.ErrTopologyMismatch).
	TopoFP, PlanFP string
	// Compression is the wire compression policy fingerprint
	// (transport.Policy.Fingerprint) the job trained under; "" or "none"
	// means uncompressed. Restore refuses a session configured with a
	// different policy (errs.ErrCompressionMismatch): the error-feedback
	// residuals and quantization grids are policy state, so silently
	// switching policies mid-run would corrupt the trajectory.
	Compression string
}

// Record is one variable's (or partition's) checkpoint payload.
type Record struct {
	Kind RecordKind
	Name string
	// Part is the partition index for KindServerPart records.
	Part int
	// Value is the stored tensor: the full variable for KindReplica, the
	// partition rows for KindServerPart.
	Value *tensor.Dense
	// SlotNames/Slots carry the optimizer slot state in the optimizer's
	// SlotState.Slots order; each slot tensor has Value's shape.
	SlotNames []string
	Slots     []*tensor.Dense
}

// TopoFingerprint renders the cluster layout (GPUs per machine, in
// machine order) as a stable string.
func TopoFingerprint(ri cluster.ResourceInfo) string {
	var b strings.Builder
	fmt.Fprintf(&b, "machines=%d gpus=", ri.NumMachines())
	for m := 0; m < ri.NumMachines(); m++ {
		if m > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", ri.GPUsPerMachine(m))
	}
	return b.String()
}

// PlanFingerprint hashes the synchronization plan — every variable's
// name, method, kind, partition count, and partition→machine assignment
// — so a restore into a session whose (deterministically rebuilt) plan
// differs is rejected instead of silently mis-assembling state.
func PlanFingerprint(p *core.Plan) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "arch=%v;", p.Arch)
	for _, a := range p.Assignments {
		fmt.Fprintf(h, "%s|%v|sparse=%t|dense=%t|parts=%d|servers=%v;",
			a.Name, a.Method, a.Sparse, a.TreatAsDense, a.Partitions, a.Servers)
	}
	return fmt.Sprintf("fnv64a:%016x", h.Sum64())
}

func appendStr(b []byte, s string) []byte {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

func appendTensor(b []byte, t *tensor.Dense) []byte {
	shape := t.Shape()
	b = append(b, byte(len(shape)))
	for _, d := range shape {
		b = binary.LittleEndian.AppendUint32(b, uint32(d))
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(t.NumElements()))
	return transport.AppendF32s(b, t.Data())
}

// Encode serializes one shard, at the lowest format version that can
// represent it: version 1 unless the meta carries a compression
// fingerprint or the records include residuals.
func Encode(meta Meta, recs []Record) ([]byte, error) {
	version := byte(Version)
	if meta.Compression != "" && meta.Compression != "none" {
		version = VersionCompressed
	}
	for _, r := range recs {
		if r.Kind == KindResidual {
			version = VersionCompressed
		}
	}
	b := append([]byte(nil), magic[:]...)
	b = append(b, version)
	b = binary.LittleEndian.AppendUint32(b, uint32(meta.Machine))
	b = binary.LittleEndian.AppendUint32(b, uint32(meta.Machines))
	b = binary.LittleEndian.AppendUint64(b, uint64(meta.Step))
	b = binary.LittleEndian.AppendUint64(b, uint64(meta.Cursor))
	b = binary.LittleEndian.AppendUint32(b, uint32(meta.Parts))
	var flags byte
	if meta.DecisionPending {
		flags |= 1
	}
	b = append(b, flags)
	b = appendStr(b, meta.DecisionSource)
	b = appendStr(b, meta.TopoFP)
	b = appendStr(b, meta.PlanFP)
	if version >= VersionCompressed {
		b = appendStr(b, meta.Compression)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(recs)))
	for _, r := range recs {
		if r.Kind != KindReplica && r.Kind != KindServerPart && r.Kind != KindResidual {
			return nil, fmt.Errorf("checkpoint: record %q has unknown kind %d", r.Name, r.Kind)
		}
		if r.Kind == KindResidual && len(r.Slots) != 0 {
			return nil, fmt.Errorf("checkpoint: residual record %q carries %d slots", r.Name, len(r.Slots))
		}
		if len(r.Value.Shape()) > maxRank {
			return nil, fmt.Errorf("checkpoint: record %q has rank %d, format caps at %d",
				r.Name, len(r.Value.Shape()), maxRank)
		}
		if len(r.Slots) != len(r.SlotNames) {
			return nil, fmt.Errorf("checkpoint: record %q has %d slots for %d slot names",
				r.Name, len(r.Slots), len(r.SlotNames))
		}
		b = append(b, byte(r.Kind))
		b = appendStr(b, r.Name)
		b = binary.LittleEndian.AppendUint32(b, uint32(r.Part))
		b = appendTensor(b, r.Value)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(r.Slots)))
		for k, s := range r.Slots {
			if s.NumElements() != r.Value.NumElements() {
				return nil, fmt.Errorf("checkpoint: record %q slot %q has %d elements, value has %d",
					r.Name, r.SlotNames[k], s.NumElements(), r.Value.NumElements())
			}
			b = appendStr(b, r.SlotNames[k])
			b = binary.LittleEndian.AppendUint32(b, uint32(s.NumElements()))
			b = transport.AppendF32s(b, s.Data())
		}
	}
	return b, nil
}

func decodeStr(d *transport.Decoder) (string, error) {
	n, err := d.U16()
	if err != nil {
		return "", err
	}
	s, err := d.Bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(s), nil
}

func decodeTensor(d *transport.Decoder) (*tensor.Dense, error) {
	rank, err := d.U8()
	if err != nil {
		return nil, err
	}
	if rank == 0 || rank > maxRank {
		return nil, fmt.Errorf("checkpoint: tensor rank %d outside [1,%d]", rank, maxRank)
	}
	shape := make([]int, rank)
	elems := uint64(1)
	for i := range shape {
		dim, err := d.U32()
		if err != nil {
			return nil, err
		}
		// Overflow-guard the product: a crafted shape like [2³²−1, 2³²−1, k]
		// must not wrap to a small element count and slip past the
		// cross-check below.
		if dim != 0 && elems > math.MaxUint64/uint64(dim) {
			return nil, fmt.Errorf("checkpoint: tensor shape %v overflows element count", shape[:i+1])
		}
		shape[i] = int(dim)
		elems *= uint64(dim)
	}
	n, err := d.Count(4) // rejects counts that cannot fit the remaining bytes
	if err != nil {
		return nil, err
	}
	if uint64(n) != elems {
		return nil, fmt.Errorf("checkpoint: tensor declares %d elements, shape %v has %d", n, shape, elems)
	}
	t := tensor.NewDense(shape...)
	if err := d.F32s(n, t.Data()); err != nil {
		return nil, err
	}
	return t, nil
}

// Decode parses one shard. Malformed input returns an error — wrapping
// errs.ErrCheckpointVersion when the magic or format version is not
// ours — and never panics.
func Decode(b []byte) (Meta, []Record, error) {
	var meta Meta
	d := transport.NewDecoder(b)
	head, err := d.Bytes(len(magic) + 1)
	if err != nil {
		return meta, nil, fmt.Errorf("checkpoint: %w: file too short for header", errs.ErrCheckpointVersion)
	}
	if [7]byte(head[:7]) != magic {
		return meta, nil, fmt.Errorf("checkpoint: %w: bad magic", errs.ErrCheckpointVersion)
	}
	version := head[7]
	if version != Version && version != VersionCompressed {
		return meta, nil, fmt.Errorf("checkpoint: %w: file version %d, this build reads %d and %d",
			errs.ErrCheckpointVersion, version, Version, VersionCompressed)
	}
	machine, err := d.U32()
	if err != nil {
		return meta, nil, err
	}
	machines, err := d.U32()
	if err != nil {
		return meta, nil, err
	}
	step, err := d.U64()
	if err != nil {
		return meta, nil, err
	}
	cursor, err := d.U64()
	if err != nil {
		return meta, nil, err
	}
	parts, err := d.U32()
	if err != nil {
		return meta, nil, err
	}
	flags, err := d.U8()
	if err != nil {
		return meta, nil, err
	}
	meta.Machine, meta.Machines = int(machine), int(machines)
	meta.Step, meta.Cursor = int64(step), int64(cursor)
	meta.Parts = int(parts)
	meta.DecisionPending = flags&1 != 0
	if meta.DecisionSource, err = decodeStr(d); err != nil {
		return meta, nil, err
	}
	if meta.TopoFP, err = decodeStr(d); err != nil {
		return meta, nil, err
	}
	if meta.PlanFP, err = decodeStr(d); err != nil {
		return meta, nil, err
	}
	if version >= VersionCompressed {
		if meta.Compression, err = decodeStr(d); err != nil {
			return meta, nil, err
		}
	}
	nrecs, err := d.Count(1)
	if err != nil {
		return meta, nil, err
	}
	recs := make([]Record, 0, nrecs)
	for i := 0; i < nrecs; i++ {
		var r Record
		kind, err := d.U8()
		if err != nil {
			return meta, nil, err
		}
		r.Kind = RecordKind(kind)
		switch r.Kind {
		case KindReplica, KindServerPart:
		case KindResidual:
			if version < VersionCompressed {
				return meta, nil, fmt.Errorf("checkpoint: record %d is a residual in a version-%d file", i, version)
			}
		default:
			return meta, nil, fmt.Errorf("checkpoint: record %d has unknown kind %d", i, kind)
		}
		if r.Name, err = decodeStr(d); err != nil {
			return meta, nil, err
		}
		part, err := d.U32()
		if err != nil {
			return meta, nil, err
		}
		r.Part = int(part)
		if r.Value, err = decodeTensor(d); err != nil {
			return meta, nil, err
		}
		nslots, err := d.Count(1)
		if err != nil {
			return meta, nil, err
		}
		for k := 0; k < nslots; k++ {
			name, err := decodeStr(d)
			if err != nil {
				return meta, nil, err
			}
			n, err := d.Count(4)
			if err != nil {
				return meta, nil, err
			}
			if n != r.Value.NumElements() {
				return meta, nil, fmt.Errorf("checkpoint: record %q slot %q has %d elements, value has %d",
					r.Name, name, n, r.Value.NumElements())
			}
			s := tensor.NewDense(r.Value.Shape()...)
			if err := d.F32s(n, s.Data()); err != nil {
				return meta, nil, err
			}
			r.SlotNames = append(r.SlotNames, name)
			r.Slots = append(r.Slots, s)
		}
		recs = append(recs, r)
	}
	if d.Remaining() != 0 {
		return meta, nil, fmt.Errorf("checkpoint: %d trailing bytes after last record", d.Remaining())
	}
	return meta, recs, nil
}

// ShardPath returns machine m's shard file inside a checkpoint
// directory.
func ShardPath(dir string, machine int) string {
	return filepath.Join(dir, fmt.Sprintf("machine-%d.ckpt", machine))
}

// WriteShard atomically writes meta.Machine's shard under dir (created
// if missing): the bytes land in a temp file first and are renamed into
// place, so a crash mid-save never leaves a truncated shard behind.
func WriteShard(dir string, meta Meta, recs []Record) error {
	b, err := Encode(meta, recs)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := ShardPath(dir, meta.Machine)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	// Sync before the rename: without it the rename can become durable
	// before the data blocks, and a crash would leave a truncated shard
	// under the final name — the torn save the temp-file dance exists to
	// prevent.
	if _, err := tmp.Write(b); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	// Make the rename itself durable.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// ReadShard reads and decodes machine m's shard from dir.
func ReadShard(dir string, machine int) (Meta, []Record, error) {
	b, err := os.ReadFile(ShardPath(dir, machine))
	if err != nil {
		return Meta{}, nil, err
	}
	meta, recs, err := Decode(b)
	if err != nil {
		return meta, recs, fmt.Errorf("%s: %w", ShardPath(dir, machine), err)
	}
	if meta.Machine != machine {
		return meta, recs, fmt.Errorf("checkpoint: %s claims machine %d", ShardPath(dir, machine), meta.Machine)
	}
	return meta, recs, nil
}
