package sim

import (
	"testing"
	"testing/quick"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	k := NewKernel()
	var order []int
	k.After(3, func() { order = append(order, 3) })
	k.After(1, func() { order = append(order, 1) })
	k.After(2, func() { order = append(order, 2) })
	end := k.Run()
	if end != 3 {
		t.Fatalf("final time = %v, want 3", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestTiesBreakBySchedulingOrder(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		k.At(1, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order = %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	k := NewKernel()
	var hits []Time
	k.After(1, func() {
		hits = append(hits, k.Now())
		k.After(1, func() { hits = append(hits, k.Now()) })
	})
	k.Run()
	if len(hits) != 2 || hits[0] != 1 || hits[1] != 2 {
		t.Fatalf("hits = %v", hits)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	k := NewKernel()
	k.After(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		k.At(1, func() {})
	})
	k.Run()
}

func TestRunUntilStopsAndAdvancesClock(t *testing.T) {
	k := NewKernel()
	fired := 0
	k.After(1, func() { fired++ })
	k.After(10, func() { fired++ })
	k.RunUntil(5)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if k.Now() != 5 {
		t.Fatalf("Now = %v, want 5", k.Now())
	}
	if k.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", k.Pending())
	}
	k.Run()
	if fired != 2 || k.Now() != 10 {
		t.Fatalf("after Run: fired=%d now=%v", fired, k.Now())
	}
}

func TestHaltStopsRun(t *testing.T) {
	k := NewKernel()
	fired := 0
	k.After(1, func() { fired++; k.Halt() })
	k.After(2, func() { fired++ })
	k.Run()
	if fired != 1 || k.Pending() != 1 {
		t.Fatalf("fired=%d pending=%d", fired, k.Pending())
	}
}

func TestResourceSerializesJobs(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "nic")
	var ends []Time
	// Three back-to-back 2s jobs submitted at t=0 should finish at 2, 4, 6.
	for i := 0; i < 3; i++ {
		r.Use(2, func() { ends = append(ends, k.Now()) })
	}
	k.Run()
	if len(ends) != 3 || ends[0] != 2 || ends[1] != 4 || ends[2] != 6 {
		t.Fatalf("ends = %v", ends)
	}
	if r.BusyTime() != 6 {
		t.Fatalf("BusyTime = %v, want 6", r.BusyTime())
	}
	if r.Utilization(6) != 1 {
		t.Fatalf("Utilization = %v, want 1", r.Utilization(6))
	}
}

func TestResourceIdleGapThenUse(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "nic")
	var start2 Time
	k.After(10, func() {
		s, e := r.Use(1, nil)
		start2 = s
		if e != 11 {
			t.Errorf("end = %v, want 11", e)
		}
	})
	k.Run()
	if start2 != 10 {
		t.Fatalf("start = %v, want 10 (resource must not start before now)", start2)
	}
}

func TestUseAfterRespectsReadyTime(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "gpu")
	s, e := r.UseAfter(5, 2, nil)
	if s != 5 || e != 7 {
		t.Fatalf("UseAfter start=%v end=%v, want 5,7", s, e)
	}
	// Queued behind the first job even though ready earlier.
	s2, e2 := r.UseAfter(0, 1, nil)
	if s2 != 7 || e2 != 8 {
		t.Fatalf("second job start=%v end=%v, want 7,8", s2, e2)
	}
}

func TestCounterFiresOnce(t *testing.T) {
	k := NewKernel()
	fired := 0
	c := NewCounter(3, func() { fired++ })
	k.After(1, c.Done)
	k.After(2, c.Done)
	k.After(3, c.Done)
	k.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on extra Done")
		}
	}()
	c.Done()
}

// Property: a resource's completion time for n sequential jobs equals the
// sum of their durations when submitted at t=0, regardless of order.
func TestResourceConservationProperty(t *testing.T) {
	f := func(durs []uint8) bool {
		k := NewKernel()
		r := NewResource(k, "x")
		var total Time
		for _, d := range durs {
			dur := Time(d) / 16
			total += dur
			r.Use(dur, nil)
		}
		end := k.Run()
		_ = end
		return r.FreeAt() == total && r.BusyTime() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		k := NewKernel()
		r := NewResource(k, "nic")
		var log []Time
		for i := 0; i < 10; i++ {
			d := Time(i%3) + 1
			k.After(Time(i)/2, func() {
				r.Use(d, func() { log = append(log, k.Now()) })
			})
		}
		k.Run()
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("non-deterministic event count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("timeline diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
