package sim

// Resource models an exclusive, FIFO-serialized facility in virtual time —
// a NIC direction, a CPU aggregation thread pool, a GPU. Work submitted to
// a Resource begins when all previously submitted work has drained, and
// occupies the resource for its duration.
//
// This is the mechanism that makes the paper's parameter-server hot-spot
// analysis (§3.1) emerge in simulation: a server machine whose egress NIC
// must ship w(N−1) bytes of one big variable serializes those transfers,
// while AllReduce's ring spreads w/N chunks across all NICs.
type Resource struct {
	k      *Kernel
	name   string
	freeAt Time
	busy   Time // total occupied time, for utilization accounting
	jobs   int64
}

// NewResource returns an idle resource on kernel k.
func NewResource(k *Kernel, name string) *Resource {
	return &Resource{k: k, name: name}
}

// Name returns the resource's identifier.
func (r *Resource) Name() string { return r.name }

// Use enqueues a job of the given duration and schedules done (if non-nil)
// at its completion time. It returns the job's start and end times. A
// negative duration panics; a zero duration claims the queue position
// without occupying time.
func (r *Resource) Use(dur Time, done func()) (start, end Time) {
	if dur < 0 {
		panic("sim: negative resource duration")
	}
	start = r.freeAt
	if now := r.k.Now(); start < now {
		start = now
	}
	end = start + dur
	r.freeAt = end
	r.busy += dur
	r.jobs++
	if done != nil {
		r.k.At(end, done)
	}
	return start, end
}

// UseAfter is like Use but the job cannot start before readyAt (e.g. data
// dependencies): it begins at max(readyAt, queue head, now).
func (r *Resource) UseAfter(readyAt Time, dur Time, done func()) (start, end Time) {
	if dur < 0 {
		panic("sim: negative resource duration")
	}
	start = r.freeAt
	if start < readyAt {
		start = readyAt
	}
	if now := r.k.Now(); start < now {
		start = now
	}
	end = start + dur
	r.freeAt = end
	r.busy += dur
	r.jobs++
	if done != nil {
		r.k.At(end, done)
	}
	return start, end
}

// FreeAt returns the time at which all queued work drains.
func (r *Resource) FreeAt() Time { return r.freeAt }

// BusyTime returns the cumulative occupied duration.
func (r *Resource) BusyTime() Time { return r.busy }

// Jobs returns the number of jobs processed.
func (r *Resource) Jobs() int64 { return r.jobs }

// Utilization returns busy/elapsed in [0,1] given a measurement horizon.
func (r *Resource) Utilization(horizon Time) float64 {
	if horizon <= 0 {
		return 0
	}
	u := float64(r.busy) / float64(horizon)
	if u > 1 {
		u = 1
	}
	return u
}

// Counter is a virtual-time countdown latch: when Add has been matched by
// the same number of Done calls, the callback fires immediately (in the
// current event). It coordinates fan-in joins such as "all workers pushed
// their gradients".
type Counter struct {
	remaining int
	fn        func()
	fired     bool
}

// NewCounter returns a latch expecting n Done calls before invoking fn.
// n must be positive.
func NewCounter(n int, fn func()) *Counter {
	if n <= 0 {
		panic("sim: counter with non-positive count")
	}
	return &Counter{remaining: n, fn: fn}
}

// Done decrements the latch; the final call fires the callback. Calling
// Done after firing panics — it indicates a double-completion bug.
func (c *Counter) Done() {
	if c.fired {
		panic("sim: counter completed twice")
	}
	c.remaining--
	if c.remaining == 0 {
		c.fired = true
		c.fn()
	}
}

// Remaining returns the outstanding count.
func (c *Counter) Remaining() int { return c.remaining }
