// Package sim provides a deterministic discrete-event simulation kernel.
//
// The Parallax reproduction has no GPU cluster, so distributed training runs
// against a simulated one: workers, parameter servers, NICs and GPUs are
// modelled as actors whose actions are events on a single virtual clock.
// Everything in internal/simnet and internal/engine is built on this kernel.
//
// Determinism: events at equal timestamps fire in scheduling order (a
// monotonically increasing sequence number breaks ties), so a given
// experiment configuration always produces exactly the same timeline.
package sim

import "container/heap"

// Time is virtual time in seconds.
type Time float64

// event is a scheduled callback.
type event struct {
	at  Time
	seq int64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event scheduler. The zero value is not usable; call
// NewKernel.
type Kernel struct {
	now    Time
	queue  eventHeap
	seq    int64
	fired  int64
	halted bool
}

// NewKernel returns a kernel with the clock at 0.
func NewKernel() *Kernel {
	k := &Kernel{}
	heap.Init(&k.queue)
	return k
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it indicates a logic error in the caller's timeline construction.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic("sim: scheduling event in the past")
	}
	k.seq++
	heap.Push(&k.queue, &event{at: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d seconds from now. Negative delays panic.
func (k *Kernel) After(d Time, fn func()) {
	if d < 0 {
		panic("sim: negative delay")
	}
	k.At(k.now+d, fn)
}

// Run executes events until the queue is empty or Halt is called, and
// returns the final virtual time.
func (k *Kernel) Run() Time {
	k.halted = false
	for k.queue.Len() > 0 && !k.halted {
		e := heap.Pop(&k.queue).(*event)
		k.now = e.at
		k.fired++
		e.fn()
	}
	return k.now
}

// RunUntil executes events with timestamps <= t (or until Halt), then
// advances the clock to t and returns it. Events after t stay queued.
func (k *Kernel) RunUntil(t Time) Time {
	k.halted = false
	for k.queue.Len() > 0 && !k.halted && k.queue[0].at <= t {
		e := heap.Pop(&k.queue).(*event)
		k.now = e.at
		k.fired++
		e.fn()
	}
	if !k.halted && t > k.now {
		k.now = t
	}
	return k.now
}

// Halt stops the currently executing Run/RunUntil after the current event
// handler returns. Queued events are preserved.
func (k *Kernel) Halt() { k.halted = true }

// Pending returns the number of queued events.
func (k *Kernel) Pending() int { return k.queue.Len() }

// Fired returns the total number of events executed so far (a determinism
// and progress diagnostic).
func (k *Kernel) Fired() int64 { return k.fired }
