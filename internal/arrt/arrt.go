// Package arrt is the AllReduce-architecture runtime: it synchronizes one
// model replica's gradients with the collective primitives (ring AllReduce
// for dense gradients, ring AllGatherv for sparse ones) and keeps replica
// variables identical across workers, the invariant that makes the AR
// architecture "simple ... because all workers always have the same
// variable values" (§2.1).
package arrt

import (
	"strconv"

	"parallax/internal/collective"
	"parallax/internal/optim"
	"parallax/internal/tensor"
	"parallax/internal/transport"
)

// Replica is one worker's endpoint of the AR runtime.
type Replica struct {
	comm      *collective.Comm
	denseAgg  optim.AggMethod
	sparseAgg optim.AggMethod
}

// New wraps a collective endpoint.
func New(c *collective.Comm, denseAgg, sparseAgg optim.AggMethod) *Replica {
	return &Replica{comm: c, denseAgg: denseAgg, sparseAgg: sparseAgg}
}

// Rank returns the worker's rank.
func (r *Replica) Rank() int { return r.comm.Rank() }

// BroadcastInit overwrites value with rank root's copy on all workers, so
// training starts from identical replicas.
func (r *Replica) BroadcastInit(name string, value *tensor.Dense, root int) {
	collective.Broadcast(r.comm, "init/"+name, value, root)
}

// SyncDense aggregates a dense gradient across all workers in place (sum
// via ring AllReduce, then the configured finalization). After it returns,
// every worker holds the identical aggregated gradient.
func (r *Replica) SyncDense(name string, step int, grad *tensor.Dense) {
	r.SyncDenseTagged(collective.TagsFor(tag(name, step)), grad)
}

// DenseTags precomputes the collective rendezvous tags for a dense route.
// The persistent trainer resolves them once at build time so the hot loop
// never concatenates tag strings; step numbers are unnecessary because the
// per-pair FIFO transport and the lockstep schedule already order steps.
func DenseTags(name string) collective.Tags {
	return collective.TagsFor("ar/" + name)
}

// SyncDenseTagged is SyncDense with caller-prepared tags — the hot path of
// the fused synchronization schedule (the "grad" may be a whole fusion
// bucket rather than a single variable's gradient).
func (r *Replica) SyncDenseTagged(tags collective.Tags, grad *tensor.Dense) {
	collective.AllReduceTagged(r.comm, tags, grad)
	optim.FinalizeDense(grad, r.comm.Size(), r.denseAgg)
}

// SyncDenseCompressed is SyncDenseTagged under a wire compression
// policy: DenseTopK > 0 routes through the top-k sparsified exchange
// with error feedback (res must have grad's length and persist across
// steps; scratch is the reusable selection workspace), otherwise the
// bucket travels under the policy's dense codec. Finalization is
// unchanged, so a CompressionNone policy is bit-identical to
// SyncDenseTagged.
func (r *Replica) SyncDenseCompressed(tags collective.Tags, grad *tensor.Dense, policy transport.Policy, res []float32, scratch *collective.TopKScratch) {
	if policy.DenseTopK > 0 {
		collective.AllReduceTopKTagged(r.comm, tags, grad, policy.DenseTopK, policy.Dense, res, scratch)
	} else {
		collective.AllReduceCodecTagged(r.comm, tags, grad, policy.Dense)
	}
	optim.FinalizeDense(grad, r.comm.Size(), r.denseAgg)
}

// SyncSparse aggregates a sparse gradient across all workers via
// AllGatherv (concatenation in rank order) and returns the aggregated
// gradient, identical on every worker.
func (r *Replica) SyncSparse(name string, step int, grad *tensor.Sparse) *tensor.Sparse {
	return r.SyncSparseTagged(tag(name, step)+"/agv", grad)
}

// SparseTag precomputes the AllGatherv rendezvous tag for a sparse route
// (build-time counterpart of DenseTags).
func SparseTag(name string) string { return "agv/" + name }

// SyncSparseTagged is SyncSparse with a caller-prepared tag.
func (r *Replica) SyncSparseTagged(tag string, grad *tensor.Sparse) *tensor.Sparse {
	out := collective.AllGathervTagged(r.comm, tag, grad)
	optim.FinalizeSparse(out, r.comm.Size(), r.sparseAgg)
	return out
}

// GatherScalars gathers every worker's v into out in rank order (out[r]
// holds rank r's value; len(out) must equal the worker count). The
// distributed trainer uses it to combine per-worker losses with a fixed
// summation order, keeping the reported mean bitwise identical to the
// single-process run.
func (r *Replica) GatherScalars(tag string, v float64, out []float64) {
	collective.AllGatherScalarsInto(r.comm, tag, v, out)
}

// SumScalar returns the sum of v across workers (loss averaging, norm
// exchange).
func (r *Replica) SumScalar(name string, step int, v float64) float64 {
	return collective.ReduceScalar(r.comm, tag(name, step), v)
}

// tag builds the per-variable per-step rendezvous tag. Plain concatenation
// with strconv keeps this off the fmt reflection path; it runs once per
// synchronized variable per worker per step.
func tag(name string, step int) string { return name + "@" + strconv.Itoa(step) }
