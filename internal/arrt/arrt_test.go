package arrt

import (
	"sync"
	"testing"

	"parallax/internal/collective"
	"parallax/internal/optim"
	"parallax/internal/tensor"
)

func TestReplicasStayIdenticalOverSteps(t *testing.T) {
	const n = 4
	finals := make([]*tensor.Dense, n)
	var mu sync.Mutex
	collective.RunWorld(n, func(c *collective.Comm) {
		r := New(c, optim.AggMean, optim.AggSum)
		rng := tensor.NewRNG(int64(100 + c.Rank())) // different init per rank
		v := rng.RandN(1, 6)
		r.BroadcastInit("v", v, 0)
		opt := optim.NewSGD(0.1)
		for step := 0; step < 5; step++ {
			g := tensor.NewRNG(int64(step*10+c.Rank())).RandN(1, 6)
			r.SyncDense("v", step, g)
			opt.ApplyDense("v", v, g)
		}
		mu.Lock()
		finals[c.Rank()] = v
		mu.Unlock()
	})
	for rank := 1; rank < n; rank++ {
		if finals[rank].MaxAbsDiff(finals[0]) > 1e-5 {
			t.Fatalf("replica %d diverged by %v", rank, finals[rank].MaxAbsDiff(finals[0]))
		}
	}
}

func TestSyncDenseMeanMatchesSequential(t *testing.T) {
	const n = 3
	grads := make([]*tensor.Dense, n)
	for i := range grads {
		grads[i] = tensor.NewRNG(int64(i)).RandN(1, 10)
	}
	want := tensor.NewDense(10)
	for _, g := range grads {
		want.AddInto(g)
	}
	want.Scale(1.0 / n)
	outs := make([]*tensor.Dense, n)
	collective.RunWorld(n, func(c *collective.Comm) {
		r := New(c, optim.AggMean, optim.AggMean)
		g := grads[c.Rank()].Clone()
		r.SyncDense("g", 0, g)
		outs[c.Rank()] = g
	})
	for i, o := range outs {
		if o.MaxAbsDiff(want) > 1e-5 {
			t.Fatalf("rank %d mean-aggregated grad wrong by %v", i, o.MaxAbsDiff(want))
		}
	}
}

func TestSyncSparseEquivalentToDenseSum(t *testing.T) {
	const n = 3
	outs := make([]*tensor.Sparse, n)
	grads := make([]*tensor.Sparse, n)
	for i := range grads {
		rng := tensor.NewRNG(int64(i + 7))
		rows := []int{rng.Intn(5), rng.Intn(5)}
		grads[i] = tensor.NewSparse(rows, rng.RandN(1, 2, 3), 5)
	}
	collective.RunWorld(n, func(c *collective.Comm) {
		outs[c.Rank()] = New(c, optim.AggSum, optim.AggSum).SyncSparse("e", 0, grads[c.Rank()])
	})
	want := tensor.NewDense(5, 3)
	for _, g := range grads {
		want.AddInto(g.ToDense())
	}
	for i, o := range outs {
		if o.ToDense().MaxAbsDiff(want) > 1e-5 {
			t.Fatalf("rank %d gathered grad wrong", i)
		}
	}
}

func TestSumScalar(t *testing.T) {
	const n = 5
	outs := make([]float64, n)
	collective.RunWorld(n, func(c *collective.Comm) {
		outs[c.Rank()] = New(c, optim.AggMean, optim.AggMean).SumScalar("loss", 3, float64(c.Rank()))
	})
	for i, v := range outs {
		if v != 10 {
			t.Fatalf("rank %d sum = %v, want 10", i, v)
		}
	}
}
