// Package buildinfo gives every binary and the service one consistent
// identity string: a semantic version plus whatever VCS metadata the Go
// toolchain stamped into the build. Binaries expose it behind -version;
// the daemon serves it at GET /version.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Version is the release version of this source tree. Bump alongside
// CHANGES.md entries that change a public surface.
const Version = "0.8.0"

// Info is the resolved build identity.
type Info struct {
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	Revision  string `json:"revision,omitempty"`
	Time      string `json:"build_time,omitempty"`
	Modified  bool   `json:"modified,omitempty"`
}

// Get resolves the build identity from the embedded build info.
func Get() Info {
	info := Info{Version: Version, GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.time":
			info.Time = s.Value
		case "vcs.modified":
			info.Modified = s.Value == "true"
		}
	}
	return info
}

// String renders the identity as the one-line form -version prints:
// "parallax <version> (<go version>[, <rev12>[ dirty]])".
func (i Info) String() string {
	s := fmt.Sprintf("parallax %s (%s", i.Version, i.GoVersion)
	if i.Revision != "" {
		rev := i.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += ", " + rev
		if i.Modified {
			s += " dirty"
		}
	}
	return s + ")"
}
