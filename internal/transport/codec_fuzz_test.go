package transport

import (
	"bytes"
	"math"
	"testing"

	"parallax/internal/tensor"
)

// seedFrames returns one well-formed encoded payload per frame kind,
// covering dense chunks, sparse IndexedSlices, scalars, and the batched
// parameter-server request/reply shapes.
func seedFrames() [][]byte {
	sparse := tensor.NewSparse([]int{0, 2, 2}, tensor.FromSlice([]float32{1, -2, 3, 4, 0, 6}, 3, 2), 5)
	frames := []message{
		{tag: "fuse/0/rs", kind: kindF32, f32: []float32{0, 1.5, float32(math.Inf(1)), -3}},
		{tag: "loss", kind: kindScalar, scalar: -123.456},
		{tag: "agv/embedding", kind: kindSparse, sparse: sparse},
		{tag: "ps", kind: kindPS, ps: &PSMsg{
			Op: PSPullMany, Version: 7,
			Names: []string{"embedding", "embedding"}, Parts: []int{0, 3},
		}},
		{tag: "ps", kind: kindPS, ps: &PSMsg{
			Op: PSPushDenseMany, Names: []string{"w"}, Parts: []int{1},
			Dense: []*tensor.Dense{tensor.FromSlice([]float32{9, 8, 7}, 3)},
		}},
		{tag: "ps", kind: kindPS, ps: &PSMsg{
			Op: PSPushSparseMany, Names: []string{"emb"}, Parts: []int{2},
			Sparse: []*tensor.Sparse{sparse},
		}},
		{tag: "ps", kind: kindPS, ps: &PSMsg{Op: PSReply, Err: "psrt: unknown variable", Scalar: 2.5}},
	}
	var out [][]byte
	for _, m := range frames {
		out = append(out, appendMessage(nil, 3, 5, m))
	}
	return out
}

// FuzzCodecRoundTrip feeds arbitrary bytes to the frame decoder: invalid
// input must be rejected with an error (never a panic or a huge
// allocation), and anything that decodes must re-encode and re-decode to
// the same frame — the canonical round-trip property the TCP fabric
// relies on.
func FuzzCodecRoundTrip(f *testing.F) {
	for _, b := range seedFrames() {
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 1, 0})
	f.Fuzz(func(t *testing.T, b []byte) {
		pool := newBufPool()
		src, dst, m, err := decodeMessage(b, pool)
		if err != nil {
			return // malformed input rejected; that is the contract
		}
		re := appendMessage(nil, src, dst, m)
		src2, dst2, m2, err := decodeMessage(re, pool)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if src2 != src || dst2 != dst {
			t.Fatalf("addressing changed: (%d,%d) -> (%d,%d)", src, dst, src2, dst2)
		}
		if !sameMessage(m, m2) {
			t.Fatalf("round trip changed frame:\n%+v\nvs\n%+v", m, m2)
		}
		// Re-encoding the re-decoded frame must be byte-stable.
		if !bytes.Equal(re, appendMessage(nil, src2, dst2, m2)) {
			t.Fatal("encoding not canonical")
		}
	})
}

// sameMessage compares frames by bit pattern (NaNs compare equal to
// themselves, as the wire preserves them).
func sameMessage(a, b message) bool {
	if a.tag != b.tag || a.kind != b.kind {
		return false
	}
	switch a.kind {
	case kindF32:
		return a.codec == b.codec && sameF32s(a.f32, b.f32)
	case kindScalar:
		return math.Float64bits(a.scalar) == math.Float64bits(b.scalar)
	case kindSparse:
		return sameSparse(a.sparse, b.sparse)
	case kindF32Sparse:
		x, y := a.topk, b.topk
		if x.Len != y.Len || x.Codec != y.Codec || len(x.Idx) != len(y.Idx) {
			return false
		}
		for i := range x.Idx {
			if x.Idx[i] != y.Idx[i] {
				return false
			}
		}
		return sameF32s(x.Vals, y.Vals)
	case kindPS:
		x, y := a.ps, b.ps
		if x.DenseCodec != y.DenseCodec || x.SparseCodec != y.SparseCodec || x.DeltaIndex != y.DeltaIndex {
			return false
		}
		if x.Op != y.Op || x.Version != y.Version || x.Err != y.Err ||
			math.Float32bits(x.Scale) != math.Float32bits(y.Scale) ||
			math.Float64bits(x.Scalar) != math.Float64bits(y.Scalar) ||
			len(x.Names) != len(y.Names) || len(x.Dense) != len(y.Dense) || len(x.Sparse) != len(y.Sparse) {
			return false
		}
		for i := range x.Names {
			if x.Names[i] != y.Names[i] || x.Parts[i] != y.Parts[i] {
				return false
			}
		}
		for i := range x.Dense {
			if !sameF32s(x.Dense[i].Data(), y.Dense[i].Data()) {
				return false
			}
		}
		for i := range x.Sparse {
			if !sameSparse(x.Sparse[i], y.Sparse[i]) {
				return false
			}
		}
		return true
	}
	return false
}

func sameF32s(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

func sameSparse(a, b *tensor.Sparse) bool {
	if a.Dim0 != b.Dim0 || len(a.Rows) != len(b.Rows) || a.RowWidth() != b.RowWidth() {
		return false
	}
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			return false
		}
	}
	return sameF32s(a.Values.Data(), b.Values.Data())
}

// TestCodecRejectsTruncation slices every seed frame at every boundary:
// all prefixes must decode with an error, not a panic.
func TestCodecRejectsTruncation(t *testing.T) {
	pool := newBufPool()
	for _, b := range seedFrames() {
		if _, _, _, err := decodeMessage(b, pool); err != nil {
			t.Fatalf("seed frame did not decode: %v", err)
		}
		for cut := 0; cut < len(b); cut++ {
			if _, _, _, err := decodeMessage(b[:cut], pool); err == nil {
				t.Fatalf("truncated frame (%d of %d bytes) decoded", cut, len(b))
			}
		}
		// Trailing garbage is rejected too: frames are canonical.
		if _, _, _, err := decodeMessage(append(append([]byte(nil), b...), 0), pool); err == nil {
			t.Fatal("frame with trailing byte decoded")
		}
	}
}

// TestCodecRejectsOversizedDeclarations forges a frame whose length
// fields promise far more data than present.
func TestCodecRejectsOversizedDeclarations(t *testing.T) {
	pool := newBufPool()
	// kindF32 header declaring 2^31 floats with an empty body.
	b := []byte{0, 0, 1, 0, byte(kindF32), 1, 't', 0, 0, 0, 0x80}
	if _, _, _, err := decodeMessage(b, pool); err == nil {
		t.Fatal("oversized f32 declaration decoded")
	}
	// Sparse frame declaring 2^30 rows.
	sp := []byte{0, 0, 1, 0, byte(kindSparse), 1, 't',
		5, 0, 0, 0 /*dim0*/, 2, 0, 0, 0 /*width*/, 0, 0, 0, 0x40 /*nrows*/}
	if _, _, _, err := decodeMessage(sp, pool); err == nil {
		t.Fatal("oversized sparse declaration decoded")
	}
}
