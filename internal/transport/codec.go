package transport

import (
	"encoding/binary"
	"fmt"
	"math"
	"slices"

	"parallax/internal/tensor"
)

// Binary codec for the TCP fabric's frames. A frame on the wire is
//
//	u32 length | payload
//
// where length counts the payload bytes and the payload is
//
//	u16 src | u16 dst | u8 kind | u8 tagLen | tag | body
//
// All integers are little-endian; floats travel as IEEE-754 bit
// patterns. Bodies:
//
//	kindF32:    u32 n | n × f32
//	kindScalar: u64 float64 bits
//	kindSparse: u32 dim0 | u32 width | u32 nrows | nrows × u32 | nrows*width × f32
//	kindPS:     u8 op | u64 version | u32 scale bits | u64 scalar bits
//	            | u16 errLen | err
//	            | u16 nItems | nItems × (u8 nameLen | name | u32 part)
//	            | u16 nDense | nDense × (u32 n | n × f32)
//	            | u16 nSparse | nSparse × sparse body
//
// The wire-compression layer (compress.go) adds:
//
//	kindF16:       u32 n | n × u16 binary16 bits
//	kindBF16:      u32 n | n × u16 bfloat16 bits
//	kindF32Sparse: u8 codec | u32 len | u32 nnz | delta-varint indices
//	               | nnz values under codec
//	kindPSC:       u8 denseCodec | u8 sparseCodec | u8 flags(bit0 delta)
//	               | the kindPS body with dense payloads under denseCodec
//	               and sparse bodies in the compressed form
//	               (u32 dim0 | u32 width | u8 idxMode | u32 nrows
//	               | rows | values under sparseCodec)
//
// Encoders append to a caller-owned scratch buffer (the TCP fabric
// reuses one per connection, so steady-state framing allocates nothing)
// and copy tensor data straight from the caller's views — fusion-bucket
// storage and SliceRows views serialize without intermediate tensors.
// Decoders validate every declared length against the remaining bytes
// and return errors (never panic) on truncated or oversized input.

// maxFrameDefault caps one frame at 1 GiB; DialTCP can lower it.
const maxFrameDefault = 1 << 30

// encoding limits imposed by the field widths above.
const (
	maxTagLen  = 255
	maxNameLen = 255
	maxItems   = math.MaxUint16
)

func appendU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

// AppendF32s bulk-encodes a float chunk as IEEE-754 little-endian bit
// patterns: grow once, then write with direct indexing — this is the
// multi-MB fusion-bucket path, so no per-element append bookkeeping.
// Exported for internal/checkpoint, which shares the wire encoding.
func AppendF32s(b []byte, data []float32) []byte {
	off := len(b)
	b = slices.Grow(b, 4*len(data))[:off+4*len(data)]
	for i, v := range data {
		binary.LittleEndian.PutUint32(b[off+4*i:], math.Float32bits(v))
	}
	return b
}

// appendMessage encodes one datagram payload (without the frame-length
// prefix). It panics on values that exceed the codec's field widths —
// tags and variable names longer than 255 bytes — which are build-time
// programming errors, not runtime conditions.
func appendMessage(b []byte, src, dst int, m message) []byte {
	if len(m.tag) > maxTagLen {
		panic(fmt.Sprintf("transport: tag %q exceeds %d bytes", m.tag, maxTagLen))
	}
	b = appendU16(b, uint16(src))
	b = appendU16(b, uint16(dst))
	b = append(b, byte(wireKind(m)), byte(len(m.tag)))
	b = append(b, m.tag...)
	switch m.kind {
	case kindF32:
		b = appendU32(b, uint32(len(m.f32)))
		b = appendCodec(b, m.f32, m.codec)
	case kindScalar:
		b = appendU64(b, math.Float64bits(m.scalar))
	case kindSparse:
		b = appendSparse(b, m.sparse)
	case kindPS:
		b = appendPSAuto(b, m.ps)
	case kindF32Sparse:
		b = appendF32Sparse(b, m.topk)
	default:
		panic(fmt.Sprintf("transport: encode unknown kind %d", m.kind))
	}
	return b
}

// wireKind maps a message to its frame kind byte: kindF32 frames with a
// half-precision codec travel as kindF16/kindBF16, PS messages with
// compression hints as kindPSC.
func wireKind(m message) kind {
	switch m.kind {
	case kindF32:
		switch m.codec {
		case CodecF16:
			return kindF16
		case CodecBF16:
			return kindBF16
		}
	case kindPS:
		if m.ps.DenseCodec != CodecF32 || m.ps.SparseCodec != CodecF32 || m.ps.DeltaIndex {
			return kindPSC
		}
	}
	return m.kind
}

// appendPSAuto picks the classic or compressed PS body from the
// message's encoding hints.
func appendPSAuto(b []byte, m *PSMsg) []byte {
	if m.DenseCodec == CodecF32 && m.SparseCodec == CodecF32 && !m.DeltaIndex {
		return appendPS(b, m)
	}
	flags := byte(0)
	if m.DeltaIndex {
		flags = 1
	}
	b = append(b, byte(m.DenseCodec), byte(m.SparseCodec), flags)
	return appendPSBody(b, m, m.DenseCodec, m.SparseCodec, m.DeltaIndex)
}

func appendSparse(b []byte, s *tensor.Sparse) []byte {
	w := s.RowWidth()
	b = appendU32(b, uint32(s.Dim0))
	b = appendU32(b, uint32(w))
	b = appendU32(b, uint32(len(s.Rows)))
	for _, r := range s.Rows {
		b = appendU32(b, uint32(r))
	}
	return AppendF32s(b, s.Values.Data())
}

func appendPS(b []byte, m *PSMsg) []byte {
	return appendPSBody(b, m, CodecF32, CodecF32, false)
}

// appendPSBody encodes the shared PS body; the classic kindPS frame is
// the (CodecF32, CodecF32, no-delta) instantiation, byte-identical to
// the uncompressed build.
func appendPSBody(b []byte, m *PSMsg, denseCodec, sparseCodec Codec, delta bool) []byte {
	if len(m.Names) > maxItems || len(m.Dense) > maxItems || len(m.Sparse) > maxItems {
		panic(fmt.Sprintf("transport: PS batch of %d/%d/%d items exceeds %d",
			len(m.Names), len(m.Dense), len(m.Sparse), maxItems))
	}
	b = append(b, byte(m.Op))
	b = appendU64(b, uint64(m.Version))
	b = appendU32(b, math.Float32bits(m.Scale))
	b = appendU64(b, math.Float64bits(m.Scalar))
	if len(m.Err) > math.MaxUint16 {
		m.Err = m.Err[:math.MaxUint16]
	}
	b = appendU16(b, uint16(len(m.Err)))
	b = append(b, m.Err...)
	b = appendU16(b, uint16(len(m.Names)))
	for i, name := range m.Names {
		if len(name) > maxNameLen {
			panic(fmt.Sprintf("transport: variable name %q exceeds %d bytes", name, maxNameLen))
		}
		b = append(b, byte(len(name)))
		b = append(b, name...)
		b = appendU32(b, uint32(m.Parts[i]))
	}
	b = appendU16(b, uint16(len(m.Dense)))
	for _, d := range m.Dense {
		b = appendU32(b, uint32(d.NumElements()))
		b = appendCodec(b, d.Data(), denseCodec)
	}
	// The frame kind decides the sparse body form: classic kindPS frames
	// (all hints zero) keep the original encoding, kindPSC frames use
	// the compressed one throughout.
	classic := denseCodec == CodecF32 && sparseCodec == CodecF32 && !delta
	b = appendU16(b, uint16(len(m.Sparse)))
	for _, s := range m.Sparse {
		if classic {
			b = appendSparse(b, s)
		} else {
			b = appendSparseC(b, s, sparseCodec, delta)
		}
	}
	return b
}

// Decoder walks a binary payload slice with bounds checking: every
// declared length is validated against the remaining bytes before any
// allocation, so truncated or hostile input yields an error, never a
// panic or an unbounded allocation. It decodes the wire frames here and
// is reused by internal/checkpoint for the on-disk checkpoint format.
type Decoder struct {
	b   []byte
	off int
}

// NewDecoder returns a Decoder positioned at the start of b.
func NewDecoder(b []byte) *Decoder { return &Decoder{b: b} }

// Remaining returns how many undecoded bytes are left.
func (d *Decoder) Remaining() int { return len(d.b) - d.off }

// Bytes consumes and returns the next n bytes (a view, not a copy).
func (d *Decoder) Bytes(n int) ([]byte, error) {
	if n < 0 || d.Remaining() < n {
		return nil, fmt.Errorf("transport: frame truncated: want %d bytes, have %d", n, d.Remaining())
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s, nil
}

// U8 consumes one byte.
func (d *Decoder) U8() (byte, error) {
	s, err := d.Bytes(1)
	if err != nil {
		return 0, err
	}
	return s[0], nil
}

// U16 consumes a little-endian uint16.
func (d *Decoder) U16() (uint16, error) {
	s, err := d.Bytes(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(s), nil
}

// U32 consumes a little-endian uint32.
func (d *Decoder) U32() (uint32, error) {
	s, err := d.Bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(s), nil
}

// U64 consumes a little-endian uint64.
func (d *Decoder) U64() (uint64, error) {
	s, err := d.Bytes(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(s), nil
}

// Count reads a u32 element count and rejects values that could not fit
// in the remaining bytes at elemSize bytes each — the oversized-frame
// guard that keeps a hostile length field from driving a huge
// allocation.
func (d *Decoder) Count(elemSize int) (int, error) {
	n, err := d.U32()
	if err != nil {
		return 0, err
	}
	if uint64(n)*uint64(elemSize) > uint64(d.Remaining()) {
		return 0, fmt.Errorf("transport: frame declares %d elements, only %d bytes remain", n, d.Remaining())
	}
	return int(n), nil
}

// F32s consumes n little-endian float32 values into dst.
func (d *Decoder) F32s(n int, dst []float32) error {
	s, err := d.Bytes(n * 4)
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(s[i*4:]))
	}
	return nil
}

// decodeMessage decodes one payload. Float chunk buffers come from pool
// (the receiver recycles them); sparse tensors and PS messages are
// freshly allocated and owned by the receiver. Trailing bytes after the
// body are an error: frames are canonical.
func decodeMessage(b []byte, pool *bufPool) (src, dst int, m message, err error) {
	d := NewDecoder(b)
	s16, err := d.U16()
	if err != nil {
		return 0, 0, m, err
	}
	d16, err := d.U16()
	if err != nil {
		return 0, 0, m, err
	}
	k, err := d.U8()
	if err != nil {
		return 0, 0, m, err
	}
	tagLen, err := d.U8()
	if err != nil {
		return 0, 0, m, err
	}
	tag, err := d.Bytes(int(tagLen))
	if err != nil {
		return 0, 0, m, err
	}
	m.tag = string(tag)
	m.kind = kind(k)
	switch m.kind {
	case kindF32, kindF16, kindBF16:
		// Half-precision frames expand back into f32 messages; the codec
		// is recorded so re-encoding stays canonical. A receiver sees
		// the same floats either way — the payload is on the grid.
		switch m.kind {
		case kindF16:
			m.codec = CodecF16
		case kindBF16:
			m.codec = CodecBF16
		}
		m.kind = kindF32
		n, err := d.Count(payloadElemSize(m.codec))
		if err != nil {
			return 0, 0, m, err
		}
		buf := pool.get(n)
		if err := d.floats(n, buf, m.codec); err != nil {
			pool.put(buf)
			return 0, 0, m, err
		}
		m.f32 = buf
	case kindScalar:
		bits, err := d.U64()
		if err != nil {
			return 0, 0, m, err
		}
		m.scalar = math.Float64frombits(bits)
	case kindSparse:
		m.sparse, err = decodeSparse(d)
		if err != nil {
			return 0, 0, m, err
		}
	case kindPS:
		m.ps, err = decodePS(d)
		if err != nil {
			return 0, 0, m, err
		}
	case kindF32Sparse:
		m.topk, err = decodeF32Sparse(d)
		if err != nil {
			return 0, 0, m, err
		}
	case kindPSC:
		m.kind = kindPS
		m.ps, err = decodePSC(d)
		if err != nil {
			return 0, 0, m, err
		}
	default:
		return 0, 0, m, fmt.Errorf("transport: unknown frame kind %d", k)
	}
	if d.Remaining() != 0 {
		return 0, 0, m, fmt.Errorf("transport: %d trailing bytes after frame body", d.Remaining())
	}
	return int(s16), int(d16), m, nil
}

func decodeSparse(d *Decoder) (*tensor.Sparse, error) {
	dim0, err := d.U32()
	if err != nil {
		return nil, err
	}
	width, err := d.U32()
	if err != nil {
		return nil, err
	}
	nrows, err := d.Count(4)
	if err != nil {
		return nil, err
	}
	rows := make([]int, nrows)
	for i := range rows {
		r, err := d.U32()
		if err != nil {
			return nil, err
		}
		if r >= dim0 {
			return nil, fmt.Errorf("transport: sparse row %d out of range [0,%d)", r, dim0)
		}
		rows[i] = int(r)
	}
	if uint64(nrows)*uint64(width)*4 > uint64(d.Remaining()) {
		return nil, fmt.Errorf("transport: sparse values %dx%d exceed remaining %d bytes",
			nrows, width, d.Remaining())
	}
	nvals := nrows * int(width)
	vals := tensor.NewDense(nrows, int(width))
	if err := d.F32s(nvals, vals.Data()); err != nil {
		return nil, err
	}
	return &tensor.Sparse{Rows: rows, Values: vals, Dim0: int(dim0)}, nil
}

func decodePS(d *Decoder) (*PSMsg, error) {
	return decodePSBody(d, CodecF32, CodecF32, false)
}

// decodePSC decodes the compressed PS frame: codec/flag bytes, then the
// shared body. All-zero hints are rejected — such a message encodes as
// classic kindPS, and accepting both forms would break canonicality.
func decodePSC(d *Decoder) (*PSMsg, error) {
	dc, err := d.U8()
	if err != nil {
		return nil, err
	}
	sc, err := d.U8()
	if err != nil {
		return nil, err
	}
	flags, err := d.U8()
	if err != nil {
		return nil, err
	}
	denseCodec, sparseCodec := Codec(dc), Codec(sc)
	if !denseCodec.valid() || !sparseCodec.valid() || flags > 1 {
		return nil, fmt.Errorf("transport: bad PS compression header %d/%d/%d", dc, sc, flags)
	}
	delta := flags == 1
	if denseCodec == CodecF32 && sparseCodec == CodecF32 && !delta {
		return nil, fmt.Errorf("transport: compressed PS frame without compression")
	}
	m, err := decodePSBody(d, denseCodec, sparseCodec, delta)
	if err != nil {
		return nil, err
	}
	m.DenseCodec, m.SparseCodec, m.DeltaIndex = denseCodec, sparseCodec, delta
	return m, nil
}

func decodePSBody(d *Decoder, denseCodec, sparseCodec Codec, delta bool) (*PSMsg, error) {
	m := &PSMsg{}
	op, err := d.U8()
	if err != nil {
		return nil, err
	}
	m.Op = PSOp(op)
	if m.Op == 0 || m.Op > PSReply {
		return nil, fmt.Errorf("transport: unknown PS op %d", op)
	}
	ver, err := d.U64()
	if err != nil {
		return nil, err
	}
	m.Version = int64(ver)
	scale, err := d.U32()
	if err != nil {
		return nil, err
	}
	m.Scale = math.Float32frombits(scale)
	scalar, err := d.U64()
	if err != nil {
		return nil, err
	}
	m.Scalar = math.Float64frombits(scalar)
	errLen, err := d.U16()
	if err != nil {
		return nil, err
	}
	errBytes, err := d.Bytes(int(errLen))
	if err != nil {
		return nil, err
	}
	m.Err = string(errBytes)
	nItems, err := d.U16()
	if err != nil {
		return nil, err
	}
	for i := 0; i < int(nItems); i++ {
		nameLen, err := d.U8()
		if err != nil {
			return nil, err
		}
		name, err := d.Bytes(int(nameLen))
		if err != nil {
			return nil, err
		}
		part, err := d.U32()
		if err != nil {
			return nil, err
		}
		m.Names = append(m.Names, string(name))
		m.Parts = append(m.Parts, int(part))
	}
	nDense, err := d.U16()
	if err != nil {
		return nil, err
	}
	for i := 0; i < int(nDense); i++ {
		n, err := d.Count(payloadElemSize(denseCodec))
		if err != nil {
			return nil, err
		}
		t := tensor.NewDense(n)
		if err := d.floats(n, t.Data(), denseCodec); err != nil {
			return nil, err
		}
		m.Dense = append(m.Dense, t)
	}
	classic := denseCodec == CodecF32 && sparseCodec == CodecF32 && !delta
	nSparse, err := d.U16()
	if err != nil {
		return nil, err
	}
	for i := 0; i < int(nSparse); i++ {
		var s *tensor.Sparse
		var err error
		if classic {
			s, err = decodeSparse(d)
		} else {
			s, err = decodeSparseC(d, sparseCodec, delta)
		}
		if err != nil {
			return nil, err
		}
		m.Sparse = append(m.Sparse, s)
	}
	return m, nil
}
