package transport

// Elastic membership frames (DESIGN.md §14). A cluster that runs with
// TCPConfig.Elastic keeps its rendezvous listener open after the fabric
// is up; a prospective member dials any running agent and performs the
// join handshake:
//
//	joiner                          member (listener)
//	  "PXJN" | u32 len | JoinRequest  ->
//	                                <-  1 ack byte (joinAckWait | joinAckBusy | ackPolicy)
//	  ... cluster agrees on admission at a step boundary ...
//	                                <-  u32 len | Membership
//
// The parked connection carries no training traffic — it exists only to
// deliver the admission offer (the new member list, the epoch to dial
// at, and the checkpoint step to restore). Everything after the offer
// rides the ordinary epoch-fenced rendezvous: the joiner dials the new
// epoch like any restarted agent.
//
// Both frame payloads follow the §8 codec discipline: length-prefixed,
// bounds-checked decode, error-not-panic, canonical (trailing bytes are
// an error). FuzzMembershipDecode pins that.

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"net"
	"time"

	"parallax/internal/errs"
)

// joinMagic opens a join handshake on the rendezvous listener, where
// handshakeMagic ("PXA2") opens a peer rendezvous.
var joinMagic = [4]byte{'P', 'X', 'J', 'N'}

const (
	// Join acks share the rendezvous ack byte space (ackPolicy/ackOK/
	// ackEpoch in tcp.go).
	joinAckWait = 3 // parked: an admission offer (or a teardown) follows
	joinAckBusy = 4 // another joiner is already parked; retry

	membershipVersion = 1
	// maxMembers bounds a decoded member list; a frame declaring more is
	// corrupt (or hostile), not a bigger cluster.
	maxMembers = 1024
	// maxJoinFrame bounds both handshake payloads. A full member list is
	// at most maxMembers * (1 addr byte + 255 addr + 2 gpus) plus the
	// fixed header, comfortably under this.
	maxJoinFrame = 1 << 20
	noJoiner     = 0xFFFF
)

// Member is one machine of an elastic cluster: the address its agent
// rendezvouses at and how many workers it hosts.
type Member struct {
	Addr string
	GPUs int
}

// Membership is the agreed cluster composition at an epoch: the full
// member list in machine order, the checkpoint step/cursor the epoch
// restores from, and — for an admission — which entry is the joiner.
// It is both the admission offer sent over a parked join connection and
// the durable MEMBERS record in the auto-checkpoint root.
type Membership struct {
	Epoch   int
	Step    int64
	Cursor  int64
	Parts   int
	Joiner  int // index into Members of the newly admitted machine; -1 = none
	Members []Member
}

// Addrs returns the member addresses in machine order.
func (m *Membership) Addrs() []string {
	a := make([]string, len(m.Members))
	for i, mem := range m.Members {
		a[i] = mem.Addr
	}
	return a
}

// IndexOf returns the machine index of the member with the given
// address, or -1 if it is not a member.
func (m *Membership) IndexOf(addr string) int {
	for i, mem := range m.Members {
		if mem.Addr == addr {
			return i
		}
	}
	return -1
}

// validate applies the structural invariants shared by encode and
// decode: a membership names at least one machine, every member has a
// non-empty unique address and at least one GPU, and the joiner index
// (when present) is in range. Duplicate addresses are the wire form of
// a duplicate rank — two machines claiming the same slot — and are
// rejected here rather than at rendezvous, where they would deadlock.
func (m *Membership) validate() error {
	if m.Epoch < 0 {
		return fmt.Errorf("transport: membership epoch %d negative", m.Epoch)
	}
	if m.Step < 0 || m.Cursor < 0 {
		return fmt.Errorf("transport: membership step %d / cursor %d negative", m.Step, m.Cursor)
	}
	if m.Parts < 1 {
		return fmt.Errorf("transport: membership with %d partitions", m.Parts)
	}
	if len(m.Members) < 1 || len(m.Members) > maxMembers {
		return fmt.Errorf("transport: membership with %d members (want 1..%d)", len(m.Members), maxMembers)
	}
	if m.Joiner != -1 && (m.Joiner < 0 || m.Joiner >= len(m.Members)) {
		return fmt.Errorf("transport: membership joiner %d out of range for %d members", m.Joiner, len(m.Members))
	}
	seen := make(map[string]bool, len(m.Members))
	for i, mem := range m.Members {
		if mem.Addr == "" || len(mem.Addr) > 255 {
			return fmt.Errorf("transport: member %d address length %d (want 1..255)", i, len(mem.Addr))
		}
		if mem.GPUs < 1 || mem.GPUs > 0xFFFF {
			return fmt.Errorf("transport: member %d with %d GPUs", i, mem.GPUs)
		}
		if seen[mem.Addr] {
			return fmt.Errorf("transport: duplicate member address %q (duplicate rank)", mem.Addr)
		}
		seen[mem.Addr] = true
	}
	return nil
}

// AppendMembership appends the canonical encoding of m to b. The
// membership must be valid (it panics otherwise — encoding an invalid
// membership is a programming error, unlike decoding one off the wire).
func AppendMembership(b []byte, m *Membership) []byte {
	if err := m.validate(); err != nil {
		panic(err)
	}
	b = append(b, membershipVersion)
	b = appendU32(b, uint32(m.Epoch))
	b = appendU64(b, uint64(m.Step))
	b = appendU64(b, uint64(m.Cursor))
	b = appendU32(b, uint32(m.Parts))
	joiner := uint16(noJoiner)
	if m.Joiner >= 0 {
		joiner = uint16(m.Joiner)
	}
	b = appendU16(b, joiner)
	b = appendU16(b, uint16(len(m.Members)))
	for _, mem := range m.Members {
		b = append(b, byte(len(mem.Addr)))
		b = append(b, mem.Addr...)
		b = appendU16(b, uint16(mem.GPUs))
	}
	return b
}

// DecodeMembership parses a membership frame. Any malformed input —
// truncation, oversized declarations, a stale/negative epoch encoding,
// duplicate member addresses, trailing bytes — returns an error; it
// never panics.
func DecodeMembership(b []byte) (*Membership, error) {
	d := NewDecoder(b)
	ver, err := d.U8()
	if err != nil {
		return nil, err
	}
	if ver != membershipVersion {
		return nil, fmt.Errorf("transport: membership frame version %d (want %d)", ver, membershipVersion)
	}
	epoch, err := d.U32()
	if err != nil {
		return nil, err
	}
	step, err := d.U64()
	if err != nil {
		return nil, err
	}
	cursor, err := d.U64()
	if err != nil {
		return nil, err
	}
	if step > 1<<62 || cursor > 1<<62 {
		return nil, fmt.Errorf("transport: membership step/cursor out of range")
	}
	parts, err := d.U32()
	if err != nil {
		return nil, err
	}
	joiner16, err := d.U16()
	if err != nil {
		return nil, err
	}
	n16, err := d.U16()
	if err != nil {
		return nil, err
	}
	n := int(n16)
	if n < 1 || n > maxMembers {
		return nil, fmt.Errorf("transport: membership frame declares %d members (want 1..%d)", n, maxMembers)
	}
	m := &Membership{
		Epoch:   int(epoch),
		Step:    int64(step),
		Cursor:  int64(cursor),
		Parts:   int(parts),
		Joiner:  -1,
		Members: make([]Member, n),
	}
	if joiner16 != noJoiner {
		m.Joiner = int(joiner16)
	}
	for i := range m.Members {
		alen, err := d.U8()
		if err != nil {
			return nil, err
		}
		addr, err := d.Bytes(int(alen))
		if err != nil {
			return nil, err
		}
		gpus, err := d.U16()
		if err != nil {
			return nil, err
		}
		m.Members[i] = Member{Addr: string(addr), GPUs: int(gpus)}
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("transport: membership frame has %d trailing bytes", d.Remaining())
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// JoinRequest is what a prospective member presents on a running
// agent's listener: the address it will rendezvous at once admitted,
// its worker count, and its compression-policy fingerprint (the same
// job-identity check the peer rendezvous enforces).
type JoinRequest struct {
	Addr        string
	GPUs        int
	Fingerprint string
}

func (r *JoinRequest) validate() error {
	if r.Addr == "" || len(r.Addr) > 255 {
		return fmt.Errorf("transport: join request address length %d (want 1..255)", len(r.Addr))
	}
	if r.GPUs < 1 || r.GPUs > 0xFFFF {
		return fmt.Errorf("transport: join request with %d GPUs", r.GPUs)
	}
	if len(r.Fingerprint) > 255 {
		return fmt.Errorf("transport: join request fingerprint length %d (max 255)", len(r.Fingerprint))
	}
	return nil
}

// AppendJoinRequest appends the canonical encoding of r to b; r must be
// valid (panic otherwise, matching AppendMembership).
func AppendJoinRequest(b []byte, r *JoinRequest) []byte {
	if err := r.validate(); err != nil {
		panic(err)
	}
	b = append(b, membershipVersion)
	b = appendU16(b, uint16(r.GPUs))
	b = append(b, byte(len(r.Addr)))
	b = append(b, r.Addr...)
	b = appendU16(b, uint16(len(r.Fingerprint)))
	b = append(b, r.Fingerprint...)
	return b
}

// DecodeJoinRequest parses a join-request frame with the same
// error-not-panic discipline as DecodeMembership.
func DecodeJoinRequest(b []byte) (*JoinRequest, error) {
	d := NewDecoder(b)
	ver, err := d.U8()
	if err != nil {
		return nil, err
	}
	if ver != membershipVersion {
		return nil, fmt.Errorf("transport: join request version %d (want %d)", ver, membershipVersion)
	}
	gpus, err := d.U16()
	if err != nil {
		return nil, err
	}
	alen, err := d.U8()
	if err != nil {
		return nil, err
	}
	addr, err := d.Bytes(int(alen))
	if err != nil {
		return nil, err
	}
	flen, err := d.U16()
	if err != nil {
		return nil, err
	}
	fp, err := d.Bytes(int(flen))
	if err != nil {
		return nil, err
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("transport: join request has %d trailing bytes", d.Remaining())
	}
	r := &JoinRequest{Addr: string(addr), GPUs: int(gpus), Fingerprint: string(fp)}
	if err := r.validate(); err != nil {
		return nil, err
	}
	return r, nil
}

// RequestJoin performs the joiner's half of the handshake: dial target,
// present the request, and wait — as long as the timeout allows — for
// the cluster to agree on admission and deliver the membership offer.
// Transient outcomes (connection refused while the cluster is between
// epochs, joinAckBusy while another joiner is parked, a parked
// connection torn down because a competing proposal won the round) are
// retried until the deadline. A fingerprint rejection is fatal: the
// joiner is running a different job.
func RequestJoin(ctx context.Context, target string, req JoinRequest, timeout time.Duration) (*Membership, error) {
	if err := req.validate(); err != nil {
		return nil, err
	}
	if timeout <= 0 {
		timeout = 2 * time.Minute
	}
	deadline := time.Now().Add(timeout) //parallax:allow(detsource) -- join rendezvous deadline is wall-clock by design; the admitted roster is epoch-fenced
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	rng := rand.New(rand.NewSource(int64(len(target))*7919 + 1))
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !time.Now().Before(deadline) { //parallax:allow(detsource) -- join retry budget is wall-clock by design; the admitted roster is epoch-fenced
			if lastErr == nil {
				lastErr = fmt.Errorf("no response")
			}
			return nil, fmt.Errorf("transport: join via %s timed out: %w", target, lastErr)
		}
		m, fatal, err := tryJoin(target, req, deadline)
		if err == nil {
			return m, nil
		}
		if fatal {
			return nil, err
		}
		lastErr = err
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(Backoff{}.delay(attempt, rng)): //parallax:allow(detsource) -- join retry backoff pacing; never in step control flow
		}
	}
}

// tryJoin is one join attempt; fatal marks errors no retry can fix.
func tryJoin(target string, req JoinRequest, deadline time.Time) (m *Membership, fatal bool, err error) {
	dialTO := time.Until(deadline) //parallax:allow(detsource) -- dial timeout derived from the wall-clock join budget
	if dialTO > 2*time.Second {
		dialTO = 2 * time.Second
	}
	conn, err := net.DialTimeout("tcp", target, dialTO)
	if err != nil {
		return nil, false, err
	}
	defer conn.Close()
	payload := AppendJoinRequest(nil, &req)
	buf := append([]byte(nil), joinMagic[:]...)
	buf = appendU32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, false, err
	}
	if _, err := conn.Write(buf); err != nil {
		return nil, false, err
	}
	var ack [1]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil {
		return nil, false, err
	}
	switch ack[0] {
	case joinAckWait:
	case joinAckBusy:
		return nil, false, fmt.Errorf("transport: %s has another joiner parked", target)
	case ackPolicy:
		return nil, true, fmt.Errorf("transport: %w: cluster at %s rejected compression fingerprint %q",
			errs.ErrCompressionMismatch, target, req.Fingerprint)
	default:
		return nil, false, fmt.Errorf("transport: unexpected join ack %d from %s", ack[0], target)
	}
	// Parked: the offer arrives when the cluster reaches a step boundary
	// and agrees on the admission. A close without an offer means the
	// holder's fabric tore down (a competing membership change won) —
	// retry against the new epoch's listener.
	var lenBuf [4]byte
	if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
		return nil, false, fmt.Errorf("transport: parked join connection closed before an offer: %w", err)
	}
	n := int(binary.LittleEndian.Uint32(lenBuf[:]))
	if n <= 0 || n > maxJoinFrame {
		return nil, true, fmt.Errorf("transport: join offer declares %d bytes (max %d)", n, maxJoinFrame)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(conn, payload); err != nil {
		return nil, false, err
	}
	m, err = DecodeMembership(payload)
	if err != nil {
		return nil, true, err
	}
	return m, false, nil
}
