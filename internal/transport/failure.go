package transport

import (
	"encoding/binary"
	"fmt"
	"net"
	"time"

	"parallax/internal/errs"
)

// ClosedPanic is the typed panic value every collective receive path
// raises when the fabric closes underneath it (peer death, Close racing
// an in-flight step). The data plane's hot loops stay panic-based — a
// closed fabric mid-collective has no local recovery — but the trainer's
// goroutine wrappers recover this one value into a step error, so a
// dead peer surfaces to the caller as ErrPeerFailed instead of a crash.
// Any other panic value is a genuine bug and propagates.
type ClosedPanic struct {
	// Err describes why the fabric is down; it wraps ErrPeerFailed when
	// a failure was attributed, ErrClosed otherwise.
	Err error
}

// Control frames ride the same length-prefixed stream as data frames,
// flagged by reserved values of the length word (real payloads are
// capped far below by MaxFrame):
//
//   - frameHeartbeat: empty keep-alive; the reader refreshes its read
//     deadline and moves on. Sent every HeartbeatInterval per
//     connection.
//   - framePeerDown: followed by the failed process index as u32. Sent
//     best-effort by the first process that observes a peer failure, so
//     every survivor attributes the SAME rank instead of blaming
//     whichever neighbor tears down first.
const (
	frameHeartbeat = 0xFFFFFFFF
	framePeerDown  = 0xFFFFFFFE
	frameCtrlMin   = framePeerDown // lowest reserved length value
)

// Epoch returns the fabric generation this process rendezvoused at.
func (f *TCP) Epoch() int { return f.epoch }

// Done is closed when the fabric shuts down, by Close or by a failure.
func (f *TCP) Done() <-chan struct{} { return f.closed }

// Err returns the rank-attributed failure that tore the fabric down, or
// nil while the fabric is healthy (or after an orderly Close). The
// returned error wraps errs.ErrPeerFailed via *errs.PeerFailure.
func (f *TCP) Err() error {
	f.failMu.Lock()
	defer f.failMu.Unlock()
	if f.failure == nil {
		return nil
	}
	return f.failure
}

// recordFailure stores the first failure observed; later symptoms of
// the same teardown are ignored so every caller sees one attribution.
func (f *TCP) recordFailure(rank int, cause error) {
	f.failMu.Lock()
	if f.failure == nil {
		f.failure = &errs.PeerFailure{Rank: rank, Epoch: f.epoch, Cause: cause}
	}
	f.failMu.Unlock()
}

// failPeer is the failure path: record the attribution, tell the other
// survivors who died (best-effort), then tear the fabric down so every
// blocked receive fails fast.
func (f *TCP) failPeer(rank int, cause error) {
	f.recordFailure(rank, cause)
	f.announcePeerDown(rank)
	f.shutdown()
}

// announcePeerDown broadcasts a framePeerDown control frame to every
// live peer except the failed one. Best-effort with a short write
// deadline: a peer that cannot be told will detect the cascade through
// its own read deadline.
func (f *TCP) announcePeerDown(rank int) {
	var frame [8]byte
	binary.LittleEndian.PutUint32(frame[:4], framePeerDown)
	binary.LittleEndian.PutUint32(frame[4:], uint32(rank))
	for p, wc := range f.conns {
		if wc == nil || p == rank {
			continue
		}
		wc.mu.Lock()
		wc.conn.SetWriteDeadline(time.Now().Add(time.Second)) //parallax:allow(detsource,lockheld) -- wc.mu serializes socket writes by design; the write deadline bounds the hold
		wc.conn.Write(frame[:])                               //parallax:allow(lockheld) -- deadline-bounded write under the per-connection write mutex
		wc.conn.SetWriteDeadline(time.Time{})                 //parallax:allow(lockheld) -- deadline reset under the same bounded hold
		wc.mu.Unlock()
	}
}

// readerFailed converts a reader's symptom into an attributed failure,
// unless the fabric is already closing (orderly teardown reads as
// connection errors too).
func (f *TCP) readerFailed(peer int, cause error) {
	select {
	case <-f.closed:
		return
	default:
	}
	if ne, ok := cause.(net.Error); ok && ne.Timeout() {
		cause = fmt.Errorf("no frames or heartbeats for %v: %w", f.hbTimeout, cause)
	}
	f.failPeer(peer, cause)
}

// Fail records an attributed failure and tears the fabric down abruptly
// — no peer-down announcement, no drain. This is the fault-injection
// hook (internal/chaos) simulating a crashed process: peers observe the
// closed connections exactly as they would a real crash and attribute
// the failure to this process themselves.
func (f *TCP) Fail(rank int, cause error) {
	f.recordFailure(rank, cause)
	f.shutdown()
}

// SeverPeer abruptly closes the connection to one peer without any
// announcement — the fault-injection hook for a single broken link.
// The local reader then attributes the peer as failed; the remote side
// observes a reset and attributes this process.
func (f *TCP) SeverPeer(peer int) error {
	if peer < 0 || peer >= len(f.conns) || f.conns[peer] == nil {
		return fmt.Errorf("transport: process %d has no connection to sever for peer %d", f.proc, peer)
	}
	return f.conns[peer].conn.Close()
}

// closedErr is the error a receive path reports when the fabric is
// down: the attributed peer failure when one exists, plain ErrClosed
// otherwise (orderly shutdown).
func (f *TCP) closedErr(rank int, tag string, src int) error {
	if err := f.Err(); err != nil {
		return fmt.Errorf("transport: endpoint %d recv %q from %d: %w", rank, tag, src, err)
	}
	return fmt.Errorf("transport: endpoint %d recv %q from %d on closed fabric: %w",
		rank, tag, src, errs.ErrClosed)
}

// heartbeatLoop writes one empty control frame per interval on one
// connection, so the peer's read deadline keeps sliding while the data
// plane is idle (startup, checkpoint writes, long compute phases).
func (f *TCP) heartbeatLoop(wc *wireConn) {
	defer f.readers.Done()
	t := time.NewTicker(f.hbInterval) //parallax:allow(detsource) -- heartbeat pacing is wall-clock liveness, outside the data path
	defer t.Stop()
	var frame [4]byte
	binary.LittleEndian.PutUint32(frame[:], frameHeartbeat)
	for {
		select {
		case <-f.closed:
			return
		case <-t.C:
			wc.mu.Lock()
			wc.conn.SetWriteDeadline(time.Now().Add(f.hbTimeout)) //parallax:allow(detsource,lockheld) -- wc.mu serializes socket writes by design; the write deadline bounds the hold
			_, err := wc.conn.Write(frame[:])                     //parallax:allow(lockheld) -- deadline-bounded write under the per-connection write mutex
			wc.conn.SetWriteDeadline(time.Time{})                 //parallax:allow(lockheld) -- deadline reset under the same bounded hold
			wc.mu.Unlock()
			if err != nil {
				// The reader on this connection observes the same broken
				// socket and attributes it; the sender just stops.
				return
			}
		}
	}
}
